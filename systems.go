package atmcac

import (
	"atmcac/internal/ablation"
	"atmcac/internal/experiments"
	"atmcac/internal/failover"
	"atmcac/internal/faultinject"
	"atmcac/internal/plan"
	"atmcac/internal/routing"
	"atmcac/internal/rtnet"
	"atmcac/internal/signaling"
	"atmcac/internal/sim"
	"atmcac/internal/topology"
	"atmcac/internal/wire"
)

// RTnet model (paper Section 5).
type (
	// RTnetConfig describes an RTnet instance (ring size, terminals per
	// node, queue sizes, CDV policy).
	RTnetConfig = rtnet.Config
	// RTnet is an RTnet instance: topology plus per-ring-node CAC state.
	RTnet = rtnet.Network
	// CyclicClass is one of RTnet's cyclic transmission service classes
	// (Table 1).
	CyclicClass = rtnet.CyclicClass
)

var (
	// NewRTnet builds an RTnet.
	NewRTnet = rtnet.New
	// CyclicClasses returns the three classes of Table 1.
	CyclicClasses = rtnet.Classes
	// RTnetSwitchName names ring node i.
	RTnetSwitchName = rtnet.SwitchName
)

// Distributed signaling (paper Section 4.1).
type (
	// SignalingFabric runs the distributed SETUP/REJECT/CONNECTED protocol
	// across per-node goroutines.
	SignalingFabric = signaling.Fabric
	// SignalingNode is one switching node of a fabric.
	SignalingNode = signaling.Node
	// SignalingResult is the outcome of a completed distributed setup.
	SignalingResult = signaling.Result
)

// NewSignalingFabric returns an empty fabric (nil policy means hard CDV).
var NewSignalingFabric = signaling.NewFabric

// Central CAC server over TCP (paper Section 4.3, discussion 3).
type (
	// CACServer serves admission requests against a Network.
	CACServer = wire.Server
	// CACClient is the matching TCP client.
	CACClient = wire.Client
)

var (
	// NewCACServer wraps a Network in a TCP server.
	NewCACServer = wire.NewServer
	// DialCAC connects to a CAC server.
	DialCAC = wire.Dial
)

// Cell-level simulation.
type (
	// SimNetwork is a cell-level discrete-time ATM network.
	SimNetwork = sim.Network
	// SimSwitch is a simulated priority-FIFO switch.
	SimSwitch = sim.Switch
	// SimSourceConfig describes a conforming traffic source.
	SimSourceConfig = sim.SourceConfig
	// SimStats is the result of a simulation run.
	SimStats = sim.Stats
)

// Simulation source modes.
const (
	// SimGreedy emits at the earliest conforming instants (worst case).
	SimGreedy = sim.Greedy
	// SimRandom inserts random idle gaps while staying conforming.
	SimRandom = sim.Random
)

// NewSimNetwork returns an empty simulated network.
var NewSimNetwork = sim.New

// Evaluation harness (paper Section 5).
type (
	// ExperimentSeries is one labelled curve of a figure.
	ExperimentSeries = experiments.Series
	// ValidationConfig parameterizes a CAC-versus-simulation run.
	ValidationConfig = experiments.ValidationConfig
	// ValidationResult reports the comparison.
	ValidationResult = experiments.ValidationResult
)

var (
	// Table1 computes the paper's Table 1 from first principles.
	Table1 = experiments.Table1
	// Failover runs the ring-wrap degraded-mode experiment.
	Failover = experiments.Failover
	// SoftRisk probes what the soft CAC risks relative to hard.
	SoftRisk = experiments.SoftRisk
	// Tightness sweeps analytic bounds against measured worst cases.
	Tightness = experiments.Tightness
	// Figure10 regenerates the symmetric delay-bound sweep.
	Figure10 = experiments.Figure10
	// Figure11 regenerates the asymmetric capacity sweep.
	Figure11 = experiments.Figure11
	// Figure12 regenerates the one-versus-two-priorities comparison.
	Figure12 = experiments.Figure12
	// Figure13 regenerates the soft-versus-hard CAC comparison.
	Figure13 = experiments.Figure13
	// ValidateRTnet runs the CAC-versus-simulation soundness experiment.
	ValidateRTnet = experiments.ValidateRTnet
	// WriteSeriesTSV renders figure series as gnuplot-friendly TSV.
	WriteSeriesTSV = experiments.WriteTSV
)

// Offline planning (the current RTnet's permanent-connection workflow).
type (
	// PlanScenario is a JSON-serializable offline planning problem in
	// physical units (Mbps, microseconds).
	PlanScenario = plan.Scenario
	// PlanReport is the outcome of running a scenario.
	PlanReport = plan.Report
)

var (
	// LoadPlan parses and validates a scenario document.
	LoadPlan = plan.Load
	// ExamplePlan returns a documented sample scenario.
	ExamplePlan = plan.Example
)

// Design-choice ablations (the paper's claimed refinements over prior
// maximum-rate-function CAC schemes).
type (
	// AblationVariant selects the modelling scheme under test.
	AblationVariant = ablation.Variant
	// AblationComparison reports the admissible-load gap per variant.
	AblationComparison = ablation.Comparison
)

// Ablation variants.
const (
	// AblationExact is the paper's full scheme.
	AblationExact = ablation.Exact
	// AblationNoFiltering disables the link filtering effect.
	AblationNoFiltering = ablation.NoFiltering
	// AblationCrudeDistortion replaces Algorithm 3.1 by a conservative
	// jitter-burst bound.
	AblationCrudeDistortion = ablation.CrudeDistortion
)

// CompareAblations runs every variant on one configuration.
var CompareAblations = ablation.Compare

// Topology modelling and route derivation for arbitrary networks.
type (
	// Topology is a directed multigraph of port-addressed nodes and links.
	Topology = topology.Graph
	// TopologyNodeID identifies a topology node.
	TopologyNodeID = topology.NodeID
	// TopologyLink is a directed link between two node ports.
	TopologyLink = topology.Link
)

// Topology node kinds.
const (
	// KindSwitch marks a queueing/forwarding node.
	KindSwitch = topology.KindSwitch
	// KindHost marks a connection endpoint.
	KindHost = topology.KindHost
)

var (
	// NewTopology returns an empty graph.
	NewTopology = topology.New
	// RouteBetween computes the minimum-hop CAC route between two hosts.
	RouteBetween = routing.Route
	// BuildNetworkFromTopology registers every switch of a graph on a
	// fresh CAC network.
	BuildNetworkFromTopology = routing.BuildNetwork
)

// Live failure handling (paper Section 5 degraded mode).
type (
	// FailoverEngine re-admits link-failure evictions over the wrapped
	// ring through the full CAC check.
	FailoverEngine = failover.Engine
	// FailoverOptions tunes the engine's bounded retry behaviour.
	FailoverOptions = failover.Options
	// FailoverReport is the outcome of handling one link failure.
	FailoverReport = failover.Report
	// FailoverOutcome is one connection's re-admission result.
	FailoverOutcome = failover.Outcome
	// FaultScript is a deterministic scripted failure/restore scenario.
	FaultScript = faultinject.Script
	// FaultEvent is one step of a fault script.
	FaultEvent = faultinject.Event
	// FaultHarness executes fault scripts and checks safety invariants.
	FaultHarness = faultinject.Harness
)

var (
	// NewFailoverEngine builds a wrapped-ring re-admission engine.
	NewFailoverEngine = failover.New
	// NewFaultHarness builds a fault-injection harness on a fresh RTnet.
	NewFaultHarness = faultinject.New
	// FaultReplayAgrees checks a script is deterministic across replicas.
	FaultReplayAgrees = faultinject.ReplayAgrees
)

// Persistence for the central CAC server.
type (
	// CACStateStore persists established connections across restarts.
	CACStateStore = wire.StateStore
)

var (
	// NewCACStateStore returns a store backed by a JSON file.
	NewCACStateStore = wire.NewStateStore
	// RestoreCACState re-establishes stored connections on a network.
	RestoreCACState = wire.Restore
)
