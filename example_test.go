package atmcac_test

import (
	"context"
	"fmt"

	"atmcac"
)

// The worst-case envelope of a VBR connection (Algorithm 2.1): one cell at
// link rate, the burst at PCR, then SCR forever.
func ExampleFromVBR() {
	s, err := atmcac.FromVBR(0.5, 0.1, 11)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(s)
	// Output: {(1,0),(0.5,1),(0.1,21)}
}

// Jitter clumping (Algorithm 3.1): after 2 cell times of upstream delay
// variation, the accumulated bits release at full link rate.
func ExampleStream_Delayed() {
	s := mustCBR(0.5) // {(1,0),(0.5,1)}
	d, err := s.Delayed(2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(d)
	// Output: {(1,0),(0.5,3)}
}

// mustCBR builds the CBR envelope used by the examples.
func mustCBR(pcr float64) atmcac.Stream {
	s, err := atmcac.FromVBR(pcr, pcr, 1)
	if err != nil {
		panic(err)
	}
	return s
}

// Filtering (Algorithm 3.4): a transmission link caps an aggregate at one
// cell per cell time, smoothing it for downstream queueing points.
func ExampleSumStreams() {
	one := mustCBR(0.3)
	agg := atmcac.SumStreams(one, one, one)
	fmt.Println("aggregate:", agg)
	fmt.Println("filtered: ", agg.Filtered())
	// Output:
	// aggregate: {(3,0),(0.9,1)}
	// filtered:  {(1,0),(0.9,21)}
}

// The worst-case queueing delay at a FIFO queueing point (Algorithm 4.1):
// two simultaneous 32-cell bursts on a unit link — the last cell waits 32
// cell times.
func ExampleDelayBound() {
	burst, err := atmcac.NewStream([]atmcac.Segment{{Start: 0, Rate: 2}, {Start: 32, Rate: 0}})
	if err != nil {
		fmt.Println(err)
		return
	}
	d, err := atmcac.DelayBound(burst, atmcac.ZeroStream())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.0f cell times\n", d)
	// Output: 32 cell times
}

// Admitting connections onto a switch until the FIFO budget rejects one.
func ExampleSwitch_Admit() {
	sw, err := atmcac.NewSwitch(atmcac.SwitchConfig{
		Name:       "node0",
		QueueCells: map[atmcac.Priority]float64{1: 4},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := 1; i <= 8; i++ {
		_, err := sw.Admit(atmcac.HopRequest{
			Conn: atmcac.ConnID(fmt.Sprintf("c%d", i)),
			Spec: atmcac.CBR(0.01),
			In:   atmcac.PortID(i), Out: 0, Priority: 1,
		})
		if err != nil {
			fmt.Printf("connection %d rejected\n", i)
			break
		}
	}
	fmt.Println("admitted:", sw.ConnectionCount())
	// Output:
	// connection 6 rejected
	// admitted: 5
}

// End-to-end setup across a two-switch network with a delay budget.
func ExampleNetwork_Setup() {
	n := atmcac.NewNetwork(atmcac.HardCDV{})
	for _, name := range []string{"a", "b"} {
		if _, err := n.AddSwitch(atmcac.SwitchConfig{
			Name: name, QueueCells: map[atmcac.Priority]float64{1: 32},
		}); err != nil {
			fmt.Println(err)
			return
		}
	}
	adm, err := n.Setup(context.Background(), atmcac.ConnRequest{
		ID:       "sensor",
		Spec:     atmcac.VBR(0.5, 0.05, 8),
		Priority: 1,
		Route: atmcac.Route{
			{Switch: "a", In: 1, Out: 0},
			{Switch: "b", In: 0, Out: 0},
		},
		DelayBound: 64,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("guaranteed end to end: %.0f cell times\n", adm.EndToEndGuaranteed)
	// Output: guaranteed end to end: 64 cell times
}

// Hard versus soft CDV accumulation over four 32-cell hops.
func ExampleSoftCDV() {
	bounds := []float64{32, 32, 32, 32}
	fmt.Printf("hard: %.0f\n", atmcac.HardCDV{}.Accumulate(bounds))
	fmt.Printf("soft: %.0f\n", atmcac.SoftCDV{}.Accumulate(bounds))
	// Output:
	// hard: 128
	// soft: 64
}

// A conforming source's greedy schedule: the MBS burst at PCR, then the
// sustainable rate.
func ExampleNewPacer() {
	p, err := atmcac.NewPacer(atmcac.VBR(0.5, 0.1, 3))
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < 5; i++ {
		fmt.Printf("%g ", p.NextAfter(0))
	}
	fmt.Println()
	// Output: 0 2 4 14 24
}
