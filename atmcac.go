package atmcac

import (
	"atmcac/internal/bitstream"
	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// Bit-stream traffic model (paper Sections 2-3 and 4.2).
type (
	// Stream is a worst-case traffic envelope: a monotone non-increasing
	// step function of rate over time (rates normalized to the link, time
	// in cell times).
	Stream = bitstream.Stream
	// Segment is one step of a Stream.
	Segment = bitstream.Segment
)

// Bit-stream constructors and algebra (Algorithms 2.1 and 3.1-3.4).
var (
	// NewStream validates and canonicalizes segments into a Stream.
	NewStream = bitstream.New
	// FromVBR is Algorithm 2.1: the envelope of a (PCR, SCR, MBS) source.
	FromVBR = bitstream.FromVBR
	// ZeroStream returns the empty stream.
	ZeroStream = bitstream.Zero
	// ConstantStream returns a constant-rate stream.
	ConstantStream = bitstream.Constant
	// AddStreams is Algorithm 3.2 (multiplexing).
	AddStreams = bitstream.Add
	// SumStreams multiplexes any number of streams in one pass.
	SumStreams = bitstream.Sum
	// SubStreams is Algorithm 3.3 (demultiplexing).
	SubStreams = bitstream.Sub
	// DelayBound is Algorithm 4.1: the worst-case queueing delay of an
	// aggregate at a static-priority FIFO queueing point.
	DelayBound = bitstream.DelayBound
	// MaxBacklog is the companion worst-case buffer occupancy bound.
	MaxBacklog = bitstream.MaxBacklog
)

// Sentinel errors of the bit-stream algebra.
var (
	// ErrUnstable reports an overloaded queueing point (unbounded delay).
	ErrUnstable = bitstream.ErrUnstable
	// ErrInvalidStream reports a malformed stream.
	ErrInvalidStream = bitstream.ErrInvalidStream
	// ErrNotComponent reports an invalid demultiplexing.
	ErrNotComponent = bitstream.ErrNotComponent
)

// Traffic descriptors and units (paper Section 2 and the RTnet evaluation).
type (
	// TrafficSpec is the (PCR, SCR, MBS) descriptor of a connection.
	TrafficSpec = traffic.Spec
	// Link converts between physical link units and cell times.
	Link = traffic.Link
	// Pacer emits the earliest-conforming cell schedule of a source.
	Pacer = traffic.Pacer
	// ConformanceChecker verifies an arrival sequence against a descriptor.
	ConformanceChecker = traffic.Checker
)

var (
	// CBR returns a constant-bit-rate descriptor.
	CBR = traffic.CBR
	// VBR returns a variable-bit-rate descriptor.
	VBR = traffic.VBR
	// NewPacer returns a conforming source pacer.
	NewPacer = traffic.NewPacer
	// NewConformanceChecker returns a GCRA conformance checker.
	NewConformanceChecker = traffic.NewChecker
	// OC3 is the 155.52 Mbps link of RTnet (one cell time is about 2.7us).
	OC3 = traffic.OC3
)

// CAC engine (paper Section 4.3).
type (
	// Priority is a static transmission priority; 1 is highest.
	Priority = core.Priority
	// PortID identifies a switch port.
	PortID = core.PortID
	// ConnID identifies a connection network-wide.
	ConnID = core.ConnID
	// SwitchConfig configures a switch's real-time FIFO queues.
	SwitchConfig = core.SwitchConfig
	// Switch holds one switching node's admission state.
	Switch = core.Switch
	// HopRequest is a per-switch admission request.
	HopRequest = core.HopRequest
	// HopResult reports a successful per-switch check.
	HopResult = core.HopResult
	// Hop is one queueing point of a route.
	Hop = core.Hop
	// Route is an ordered list of queueing points.
	Route = core.Route
	// ConnRequest is a network-level setup request: the paper's
	// (PCR, SCR, MBS, D) plus route and priority.
	ConnRequest = core.ConnRequest
	// Admission summarizes a successful end-to-end setup.
	Admission = core.Admission
	// Violation is a queue found over budget by Network.Audit.
	Violation = core.Violation
	// Network is a set of CAC switches with a CDV policy.
	Network = core.Network
	// CDVPolicy accumulates upstream delay bounds into a CDV.
	CDVPolicy = core.CDVPolicy
	// HardCDV is the worst-case (sum) accumulation policy.
	HardCDV = core.HardCDV
	// SoftCDV is the square-root-sum accumulation policy for soft
	// real-time connections.
	SoftCDV = core.SoftCDV
	// RejectionError explains a CAC rejection.
	RejectionError = core.RejectionError
	// SetupOption customizes one Network.Setup call (trace sink, retry
	// budget) via functional options.
	SetupOption = core.SetupOption
)

var (
	// NewSwitch returns a CAC switch.
	NewSwitch = core.NewSwitch
	// NewNetwork returns an empty CAC network (nil policy means hard).
	NewNetwork = core.NewNetwork
	// WithTracer attaches a per-call trace sink to a Setup.
	WithTracer = core.WithTracer
	// WithRetryBudget allows whole-setup re-attempts after CAC rejections.
	WithRetryBudget = core.WithRetryBudget
	// ErrorCode maps an admission-plane error chain onto its stable
	// machine-readable code (the code= field of wire error responses).
	ErrorCode = core.ErrorCode
)

// Sentinel errors of the CAC engine.
var (
	// ErrRejected reports a connection that failed the CAC check.
	ErrRejected = core.ErrRejected
	// ErrDuplicateConn reports an already-admitted connection ID.
	ErrDuplicateConn = core.ErrDuplicateConn
	// ErrUnknownConn reports an operation on an unknown connection.
	ErrUnknownConn = core.ErrUnknownConn
)
