package failover

import (
	"context"
	"errors"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
)

func newRing(t *testing.T, nodes int) *rtnet.Network {
	t.Helper()
	n, err := rtnet.New(rtnet.Config{RingNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// admitBroadcast sets up a live broadcast connection from every origin.
func admitBroadcast(t *testing.T, n *rtnet.Network, load float64) {
	t.Helper()
	nodes := n.Config().RingNodes
	pcr := load / float64(nodes)
	for origin := 0; origin < nodes; origin++ {
		route, err := n.BroadcastRoute(origin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Core().Setup(context.Background(), core.ConnRequest{
			ID: rtnet.ConnectionID(origin, 0), Spec: traffic.CBR(pcr), Priority: 1, Route: route,
		}); err != nil {
			t.Fatalf("admit broadcast from %d: %v", origin, err)
		}
	}
}

func TestHandlePrimaryLinkFailureReadmitsAll(t *testing.T) {
	const (
		nodes  = 6
		failed = 2
	)
	n := newRing(t, nodes)
	admitBroadcast(t, n, 0.3)

	eng := New(n, Options{})
	rep, err := eng.HandlePrimaryLinkFailure(failed)
	if err != nil {
		t.Fatal(err)
	}
	if want := (core.Link{From: rtnet.SwitchName(failed), To: rtnet.SwitchName(failed + 1)}); rep.FailedLink != want {
		t.Errorf("FailedLink = %v, want %v", rep.FailedLink, want)
	}
	// Every broadcast uses the failed link except the one from failed+1.
	if len(rep.Outcomes) != nodes-1 {
		t.Fatalf("outcomes = %+v, want %d evictions", rep.Outcomes, nodes-1)
	}
	if rep.Readmitted() != nodes-1 || rep.Rejected() != 0 {
		t.Fatalf("readmitted=%d rejected=%d, want %d/0: %+v",
			rep.Readmitted(), rep.Rejected(), nodes-1, rep.Outcomes)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("Report.Err() = %v", err)
	}
	for _, o := range rep.Outcomes {
		if o.Attempts != 1 {
			t.Errorf("%s: %d attempts, want 1", o.ID, o.Attempts)
		}
		if len(o.Route) < nodes-1 {
			t.Errorf("%s: wrapped route only %d hops", o.ID, len(o.Route))
		}
	}
	// Untouched connection plus all re-admissions are live and consistent.
	if got := len(n.Core().Connections()); got != nodes {
		t.Fatalf("admitted after recovery = %d, want %d", got, nodes)
	}
	if v, err := n.Core().Audit(); err != nil || len(v) > 0 {
		t.Fatalf("audit after recovery: %v %v", v, err)
	}
	// No re-admitted route traverses the dead link.
	for _, req := range n.Core().AdmittedRequests() {
		for i := 0; i+1 < len(req.Route); i++ {
			if req.Route[i].Switch == rep.FailedLink.From && req.Route[i+1].Switch == rep.FailedLink.To {
				t.Errorf("connection %s re-admitted over the dead link", req.ID)
			}
		}
	}
}

// TestReadmitPreservesHardBound: a connection whose DelayBound fits the
// healthy route but not the longer wrapped route must be rejected in
// degraded mode — the guarantee is never silently weakened.
func TestReadmitPreservesHardBound(t *testing.T) {
	const failed = 2
	n := newRing(t, 6)
	// Broadcast from failed+2 wraps to 9 queueing points (9*32 = 288
	// guaranteed), while the healthy route has 5 (160). A 200-cell budget
	// admits healthy but not wrapped.
	route, err := n.BroadcastRoute(failed+2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Core().Setup(context.Background(), core.ConnRequest{
		ID: "tight", Spec: traffic.CBR(0.01), Priority: 1, Route: route, DelayBound: 200,
	}); err != nil {
		t.Fatal(err)
	}

	var slept []time.Duration
	eng := New(n, Options{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	rep, err := eng.HandlePrimaryLinkFailure(failed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 1 {
		t.Fatalf("outcomes = %+v", rep.Outcomes)
	}
	o := rep.Outcomes[0]
	if o.Readmitted || !errors.Is(o.Err, core.ErrRejected) {
		t.Fatalf("outcome = %+v, want rejected-degraded with ErrRejected", o)
	}
	if o.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (CAC rejections retry)", o.Attempts)
	}
	// Exponential backoff between the three attempts.
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want [1ms 2ms]", slept)
	}
	if err := rep.Err(); err == nil {
		t.Error("Report.Err() = nil for a rejected connection")
	}
	if got := len(n.Core().Connections()); got != 0 {
		t.Errorf("%d connections admitted, want 0 — the bound must hold or the conn stays down", got)
	}
}

// TestReadmitRetrySucceedsWhenCapacityFrees: the first re-admission attempt
// hits an unstable queue occupied by another connection; freeing it between
// attempts (via the injected Sleep) lets the retry succeed.
func TestReadmitRetrySucceedsWhenCapacityFrees(t *testing.T) {
	const failed = 2
	n := newRing(t, 6)
	// Evicted connection: broadcast from node 0 (wraps over the secondary
	// ports of ring05 among others).
	route, err := n.BroadcastRoute(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Core().Setup(context.Background(), core.ConnRequest{
		ID: "victim", Spec: traffic.CBR(0.2), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	// Blocker: saturates the secondary output of ring05, which the wrapped
	// route needs. 0.95 + 0.2 > 1 makes the queue unstable, a hard CAC
	// rejection.
	if _, err := n.Core().Setup(context.Background(), core.ConnRequest{
		ID: "blocker", Spec: traffic.CBR(0.95), Priority: 1,
		Route: core.Route{{Switch: rtnet.SwitchName(5), In: 1, Out: rtnet.SecondaryRingOutPort}},
	}); err != nil {
		t.Fatal(err)
	}

	eng := New(n, Options{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Sleep: func(time.Duration) {
			if err := n.Core().Teardown("blocker"); err != nil && !errors.Is(err, core.ErrUnknownConn) {
				t.Errorf("teardown blocker: %v", err)
			}
		},
	})
	rep, err := eng.HandlePrimaryLinkFailure(failed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 1 {
		t.Fatalf("outcomes = %+v", rep.Outcomes)
	}
	o := rep.Outcomes[0]
	if !o.Readmitted || o.ID != "victim" {
		t.Fatalf("outcome = %+v (err=%v), want victim re-admitted", o, o.Err)
	}
	if o.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (reject, free capacity, succeed)", o.Attempts)
	}
}

// TestReadmitUnclassifiableRoute: a request whose route cannot be mapped
// back to ring terms yields a per-connection error, not a panic or a silent
// drop.
func TestReadmitUnclassifiableRoute(t *testing.T) {
	n := newRing(t, 6)
	eng := New(n, Options{})
	link, err := n.PrimaryLink(2)
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Readmit([]core.ConnRequest{{
		ID: "weird", Spec: traffic.CBR(0.01), Priority: 1,
		Route: core.Route{{Switch: "not-a-ring-node", In: 1, Out: 0}},
	}}, 2, link)
	if len(rep.Outcomes) != 1 {
		t.Fatalf("outcomes = %+v", rep.Outcomes)
	}
	o := rep.Outcomes[0]
	if o.Readmitted || o.Err == nil || o.Attempts != 0 {
		t.Fatalf("outcome = %+v, want classification error before any attempt", o)
	}
}

func TestHandlePrimaryLinkFailureValidates(t *testing.T) {
	n := newRing(t, 4)
	eng := New(n, Options{})
	if _, err := eng.HandlePrimaryLinkFailure(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := eng.HandlePrimaryLinkFailure(4); err == nil {
		t.Error("out-of-range node accepted")
	}
	// Failing an already-failed link is a no-op pass with no outcomes.
	if _, err := eng.HandlePrimaryLinkFailure(1); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.HandlePrimaryLinkFailure(1)
	if err != nil || len(rep.Outcomes) != 0 {
		t.Fatalf("second failure: rep=%+v err=%v", rep, err)
	}
}

// TestReadmitUnicast: an evicted unicast segment is re-admitted over
// WrappedRouteTo, reaching the same destination the long way round.
func TestReadmitUnicast(t *testing.T) {
	const failed = 1
	n := newRing(t, 6)
	// Two-hop segment 1 -> 3 crossing the failed link 1 -> 2.
	route, err := n.SegmentRoute(failed, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Core().Setup(context.Background(), core.ConnRequest{
		ID: "seg", Spec: traffic.CBR(0.05), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	eng := New(n, Options{})
	rep, err := eng.HandlePrimaryLinkFailure(failed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 1 || !rep.Outcomes[0].Readmitted {
		t.Fatalf("outcomes = %+v", rep.Outcomes)
	}
	wrapped := rep.Outcomes[0].Route
	// Still starts at the origin's terminal and avoids the dead link.
	if wrapped[0].Switch != rtnet.SwitchName(failed) || wrapped[0].In != rtnet.TerminalPort(0) {
		t.Errorf("wrapped route starts at %+v", wrapped[0])
	}
	if len(wrapped) <= len(route) {
		t.Errorf("wrapped route (%d hops) not longer than healthy (%d) — it cannot avoid the link otherwise",
			len(wrapped), len(route))
	}
	for i := 0; i+1 < len(wrapped); i++ {
		if wrapped[i].Switch == rep.FailedLink.From && wrapped[i+1].Switch == rep.FailedLink.To {
			t.Error("wrapped unicast route crosses the dead link")
		}
	}
}
