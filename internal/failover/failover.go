// Package failover re-admits connections evicted by a ring link failure
// over the wrapped (degraded) topology of paper Section 5.
//
// When a primary ring link fails, core.Network.FailLink atomically evicts
// every admitted connection traversing it and returns their requests. The
// Engine maps each evicted healthy-ring route back to ring terms
// (rtnet.RouteEndpoints), recomputes the equivalent wrapped route
// (rtnet.WrappedBroadcastRoute / WrappedRouteTo), and replays the full
// Algorithm 4.1 admission check over the longer route. Degradation is
// never silent: the original DelayBound travels with the re-admission
// request, so a connection whose hard guarantee cannot be met on the
// wrapped ring is rejected — with the reason recorded — rather than
// re-admitted with a weaker bound.
package failover

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
)

// Options tunes the re-admission loop.
type Options struct {
	// MaxAttempts bounds how often a CAC-rejected connection is retried
	// (capacity may free up as other teardowns complete). Default 3.
	MaxAttempts int
	// Backoff is the sleep before the first retry; it doubles per attempt.
	// Default 10ms.
	Backoff time.Duration
	// Sleep is called between attempts; tests inject a recorder. Default
	// time.Sleep.
	Sleep func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 10 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Engine re-admits evicted connections over the wrapped ring.
type Engine struct {
	net *rtnet.Network
	opt Options
}

// New builds an Engine over the live RTnet network.
func New(net *rtnet.Network, opt Options) *Engine {
	return &Engine{net: net, opt: opt.withDefaults()}
}

// Outcome is the per-connection result of a re-admission pass. Exactly one
// of Readmitted or Err is meaningful: a connection is either carried again
// (over Route, with its original guarantees) or rejected-degraded with the
// reason preserved.
type Outcome struct {
	ID         core.ConnID
	Readmitted bool
	// Route is the wrapped route the connection was re-admitted over.
	Route core.Route
	// Attempts is how many Setup calls were made (>= 1 unless the route
	// could not even be recomputed).
	Attempts int
	// Err is the final error for connections that were not re-admitted.
	Err error
}

// Report aggregates one failure-handling pass.
type Report struct {
	// FailedLink is the directed primary link that went down.
	FailedLink core.Link
	// Outcomes holds one entry per evicted connection, in ID order.
	Outcomes []Outcome
}

// Readmitted counts connections carried again after the failure.
func (r Report) Readmitted() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Readmitted {
			n++
		}
	}
	return n
}

// Rejected counts connections that could not be re-admitted in degraded
// mode.
func (r Report) Rejected() int { return len(r.Outcomes) - r.Readmitted() }

// Err summarises the pass: nil when every evicted connection was
// re-admitted, otherwise an error naming the rejected connections.
func (r Report) Err() error {
	var ids []core.ConnID
	for _, o := range r.Outcomes {
		if !o.Readmitted {
			ids = append(ids, o.ID)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	return fmt.Errorf("failover: %d of %d connections not re-admitted in degraded mode: %v",
		len(ids), len(r.Outcomes), ids)
}

// HandlePrimaryLinkFailure fails primary ring link from -> from+1 on the
// live network and runs the re-admission pass for everything it evicted.
// The error is non-nil only when the failure event itself is invalid
// (unknown node, already-failed link is fine); per-connection rejections
// are reported in the Report, not as an error.
func (e *Engine) HandlePrimaryLinkFailure(from int) (Report, error) {
	link, err := e.net.PrimaryLink(from)
	if err != nil {
		return Report{}, err
	}
	evicted, err := e.net.FailPrimaryLink(from)
	if err != nil {
		return Report{}, err
	}
	return e.Readmit(evicted, from, link), nil
}

// Readmit re-admits the evicted connections over wrapped routes avoiding
// the failed primary link failedFrom -> failedFrom+1. Connections are
// processed in ID order so replays are deterministic; CAC rejections are
// retried with exponential backoff (capacity can free up while other
// evictions tear down), every other error is final.
func (e *Engine) Readmit(evicted []core.ConnRequest, failedFrom int, link core.Link) Report {
	reqs := append([]core.ConnRequest(nil), evicted...)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].ID < reqs[j].ID })
	rep := Report{FailedLink: link, Outcomes: make([]Outcome, 0, len(reqs))}
	for _, req := range reqs {
		rep.Outcomes = append(rep.Outcomes, e.readmitOne(req, failedFrom))
	}
	return rep
}

// readmitOne maps one evicted healthy-ring request to its wrapped
// equivalent and replays admission.
func (e *Engine) readmitOne(req core.ConnRequest, failedFrom int) Outcome {
	out := Outcome{ID: req.ID}
	info, err := e.net.RouteEndpoints(req.Route)
	if err != nil {
		out.Err = fmt.Errorf("failover: cannot classify route of %q: %w", req.ID, err)
		return out
	}
	var route core.Route
	if info.Broadcast {
		route, err = e.net.WrappedBroadcastRoute(info.Origin, info.Terminal, failedFrom)
	} else {
		route, err = e.net.WrappedRouteTo(info.Origin, info.Terminal, info.Dest, failedFrom)
	}
	if err != nil {
		out.Err = fmt.Errorf("failover: no wrapped route for %q: %w", req.ID, err)
		return out
	}
	// Everything but the route — ID, traffic spec, priority, and crucially
	// the hard DelayBound — is preserved, so Algorithm 4.1 decides whether
	// the original guarantee still holds over the longer route.
	req.Route = route
	backoff := e.opt.Backoff
	for attempt := 1; ; attempt++ {
		out.Attempts = attempt
		_, err := e.net.Core().Setup(context.Background(), req)
		if err == nil {
			out.Readmitted = true
			out.Route = route
			return out
		}
		out.Err = err
		if !errors.Is(err, core.ErrRejected) || attempt >= e.opt.MaxAttempts {
			return out
		}
		e.opt.Sleep(backoff)
		backoff *= 2
	}
}
