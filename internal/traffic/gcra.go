package traffic

import (
	"fmt"
	"math"
)

// bucketDepth returns the token-bucket depth that makes "MBS cells at PCR,
// then cells at SCR" the exact greedy worst case of a (PCR, SCR, MBS)
// source, consistent with the paper's Figure 1 and Algorithm 2.1.
//
// This is the standard ATM Forum GCRA equivalence: the burst tolerance is
// tau = (MBS-1)(1/SCR - 1/PCR), i.e. a bucket of depth
//
//	B = 1 + tau*SCR = 1 + (MBS-1)(1 - SCR/PCR)
//
// replenished at SCR with one token consumed per cell. Note the paper's own
// prose ("a token count ... increased at a rate of SCR up to a maximum value
// of MBS") would allow PCR-bursts longer than MBS cells (tokens replenish
// during the burst), contradicting its stated worst case; we implement the
// consistent GCRA semantics so that every conforming schedule is bounded by
// the Algorithm 2.1 envelope. (The paper's equation (1) also writes
// C_k = max{MBS, ...} where a bucket cap must be a min.)
func bucketDepth(s Spec) float64 {
	return 1 + (s.MBS-1)*(1-s.SCR/s.PCR)
}

// Pacer generates the earliest-conforming cell emission schedule of a
// CBR/VBR source under the discrete generation model of the paper's
// equation (1): the k-th cell may be sent at
//
//	t(k) >= t(k-1) + 1/PCR  while tokens remain
//	t(k) >= t(k-1) + 1/SCR  otherwise
//
// Driving Pacer greedily (NextAfter(0) repeatedly) produces the worst-case
// generation pattern of Figure 1: MBS cells at PCR, then cells at SCR.
type Pacer struct {
	spec   Spec
	depth  float64
	tokens float64
	last   float64
	sent   int
}

// NewPacer returns a pacer for the given descriptor.
func NewPacer(spec Spec) (*Pacer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	depth := bucketDepth(spec)
	return &Pacer{spec: spec, depth: depth, tokens: depth, last: math.Inf(-1)}, nil
}

// Spec returns the descriptor the pacer enforces.
func (p *Pacer) Spec() Spec { return p.spec }

// Sent returns how many cells have been scheduled so far.
func (p *Pacer) Sent() int { return p.sent }

// NextAfter returns the earliest conforming emission time at or after
// earliest (cell times), and commits the emission. The very first cell may
// be emitted at earliest itself.
func (p *Pacer) NextAfter(earliest float64) float64 {
	t := earliest
	if p.sent > 0 {
		// Hard peak-rate spacing.
		if min := p.last + 1/p.spec.PCR; t < min {
			t = min
		}
		// Token availability: one full token is needed; tokens replenish
		// at SCR, so wait until the bucket refills to 1 if necessary.
		if p.tokensAt(t) < 1 {
			refill := p.last + (1-p.tokens)/p.spec.SCR
			if refill > t {
				t = refill
			}
		}
	}
	p.tokens = p.tokensAt(t) - 1
	p.last = t
	p.sent++
	return t
}

// tokensAt returns the token level at time t (before emission).
func (p *Pacer) tokensAt(t float64) float64 {
	if p.sent == 0 {
		return p.depth
	}
	return math.Min(p.depth, p.tokens+(t-p.last)*p.spec.SCR)
}

// Checker verifies that an observed cell arrival sequence conforms to a
// descriptor — a continuous-time GCRA with the burst tolerance implied by
// MBS. It is used by tests and by the simulator's source self-checks.
type Checker struct {
	spec   Spec
	depth  float64
	tokens float64
	last   float64
	seen   int
	tol    float64
}

// NewChecker returns a conformance checker with numerical tolerance tol
// (cell times).
func NewChecker(spec Spec, tol float64) (*Checker, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tol < 0 {
		return nil, fmt.Errorf("%w: negative tolerance %g", ErrInvalidSpec, tol)
	}
	depth := bucketDepth(spec)
	return &Checker{spec: spec, depth: depth, tokens: depth, tol: tol}, nil
}

// Observe records a cell arriving at time t (cell times, non-decreasing) and
// reports whether it conforms.
func (c *Checker) Observe(t float64) (bool, error) {
	if c.seen > 0 && t < c.last-c.tol {
		return false, fmt.Errorf("%w: arrival time %g before previous %g", ErrInvalidSpec, t, c.last)
	}
	ok := true
	if c.seen > 0 {
		if t < c.last+1/c.spec.PCR-c.tol {
			ok = false
		}
		c.tokens = math.Min(c.depth, c.tokens+(t-c.last)*c.spec.SCR)
	}
	if c.tokens < 1-c.tol {
		ok = false
	}
	if ok {
		c.tokens--
	}
	c.last = t
	c.seen++
	return ok, nil
}
