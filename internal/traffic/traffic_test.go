package traffic

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"atmcac/internal/bitstream"
)

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantErr bool
	}{
		{"valid VBR", VBR(0.5, 0.1, 10), false},
		{"valid CBR", CBR(0.25), false},
		{"full-rate CBR", CBR(1), false},
		{"zero PCR", VBR(0, 0.1, 10), true},
		{"PCR above one", VBR(1.5, 0.1, 10), true},
		{"zero SCR", VBR(0.5, 0, 10), true},
		{"SCR above PCR", VBR(0.5, 0.6, 10), true},
		{"MBS below one", VBR(0.5, 0.1, 0.5), true},
		{"NaN PCR", VBR(math.NaN(), 0.1, 10), true},
		{"NaN MBS", VBR(0.5, 0.1, math.NaN()), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate(%v) error = %v, wantErr %v", tt.spec, err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrInvalidSpec) {
				t.Errorf("error %v does not wrap ErrInvalidSpec", err)
			}
		})
	}
}

func TestCBRIsSpecialCase(t *testing.T) {
	c := CBR(0.3)
	if !c.IsCBR() {
		t.Error("CBR(0.3).IsCBR() = false")
	}
	if VBR(0.5, 0.1, 4).IsCBR() {
		t.Error("VBR with SCR<PCR reported as CBR")
	}
}

func TestSpecStream(t *testing.T) {
	s, err := VBR(0.5, 0.1, 11).Stream()
	if err != nil {
		t.Fatal(err)
	}
	want := bitstream.MustNew([]bitstream.Segment{{Start: 0, Rate: 1}, {Start: 1, Rate: 0.5}, {Start: 21, Rate: 0.1}})
	if !s.Equal(want, 1e-12) {
		t.Fatalf("Stream() = %v, want %v", s, want)
	}
	if _, err := VBR(0, 0, 0).Stream(); err == nil {
		t.Error("Stream() on invalid spec succeeded")
	}
}

func TestSpecString(t *testing.T) {
	if got := CBR(0.25).String(); !strings.HasPrefix(got, "CBR") {
		t.Errorf("CBR String = %q", got)
	}
	if got := VBR(0.5, 0.1, 4).String(); !strings.HasPrefix(got, "VBR") {
		t.Errorf("VBR String = %q", got)
	}
}

func TestOC3CellTime(t *testing.T) {
	// The paper: "At a 155 Mbps transmission speed, one cell time is about
	// 2.7 microseconds."
	ct := OC3.CellTime()
	if ct < 2600*time.Nanosecond || ct > 2800*time.Nanosecond {
		t.Fatalf("OC3 cell time = %v, want about 2.7us", ct)
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	bps := 32e6
	r := OC3.Normalize(bps)
	if got := OC3.Denormalize(r); math.Abs(got-bps) > 1 {
		t.Fatalf("denormalize(normalize(%g)) = %g", bps, got)
	}
	if r <= 0.2 || r >= 0.21 {
		t.Fatalf("32 Mbps on OC3 normalized to %g, want about 0.206", r)
	}
}

func TestCellTimesDurationRoundTrip(t *testing.T) {
	d := 1 * time.Millisecond
	cells := OC3.CellTimes(d)
	// The paper: a 1 ms budget is about 370 cell times (they round from
	// 366.8).
	if cells < 360 || cells < 1 || cells > 375 {
		t.Fatalf("1ms = %g cell times on OC3, want about 367", cells)
	}
	back := OC3.Duration(cells)
	if diff := back - d; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("Duration(CellTimes(1ms)) = %v", back)
	}
}

func TestCellsForBytes(t *testing.T) {
	tests := []struct {
		bytes int
		want  int
	}{
		{0, 0}, {1, 1}, {48, 1}, {49, 2}, {4096, 86},
	}
	for _, tt := range tests {
		got, err := CellsForBytes(tt.bytes)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("CellsForBytes(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
	if _, err := CellsForBytes(-1); err == nil {
		t.Error("CellsForBytes(-1) succeeded")
	}
}

func TestPayloadBandwidthTable1(t *testing.T) {
	// The paper's Table 1 bandwidths (raw payload accounting):
	// high speed: 4 KB / 1 ms = 32 Mbps; medium: 64 KB / 30 ms = 17.5 Mbps;
	// low: 128 KB / 150 ms = 6.8 Mbps. (The paper quotes KB as 2^10 bytes.)
	tests := []struct {
		bytes  int
		period time.Duration
		want   float64 // Mbps
	}{
		{4 * 1024, time.Millisecond, 32},
		{64 * 1024, 30 * time.Millisecond, 17.5},
		{128 * 1024, 150 * time.Millisecond, 6.8},
	}
	for _, tt := range tests {
		got, err := PayloadBandwidth(tt.bytes, tt.period)
		if err != nil {
			t.Fatal(err)
		}
		gotMbps := got / 1e6
		if math.Abs(gotMbps-tt.want)/tt.want > 0.05 {
			t.Errorf("PayloadBandwidth(%dB, %v) = %.2f Mbps, want about %g",
				tt.bytes, tt.period, gotMbps, tt.want)
		}
	}
	if _, err := PayloadBandwidth(-1, time.Second); err == nil {
		t.Error("negative bytes accepted")
	}
	if _, err := PayloadBandwidth(1, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestWireBandwidthExceedsPayload(t *testing.T) {
	p, err := PayloadBandwidth(4096, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WireBandwidth(4096, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if w <= p {
		t.Fatalf("wire bandwidth %g <= payload bandwidth %g", w, p)
	}
	// 53/48 overhead ratio, within one cell of rounding.
	if ratio := w / p; ratio < 1.10 || ratio > 1.12 {
		t.Fatalf("overhead ratio = %g, want about 53/48", ratio)
	}
	if _, err := WireBandwidth(10, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestPacerGreedyMatchesFigure1(t *testing.T) {
	// Greedy emission of VBR(0.5, 0.1, 3): three cells at 1/PCR = 2 apart
	// (the MBS burst), then SCR pacing. Cell k >= 3 is budget-limited by
	// k+1 = B + SCR*t with bucket depth B = 1+(MBS-1)(1-SCR/PCR) = 2.6,
	// i.e. t = 10k - 16: exactly the Algorithm 2.1 envelope.
	p, err := NewPacer(VBR(0.5, 0.1, 3))
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	for i := 0; i < 6; i++ {
		times = append(times, p.NextAfter(0))
	}
	want := []float64{0, 2, 4, 14, 24, 34}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-9 {
			t.Fatalf("greedy emission times = %v, want %v", times, want)
		}
	}
	if p.Sent() != 6 {
		t.Fatalf("Sent = %d, want 6", p.Sent())
	}
}

func TestPacerCBR(t *testing.T) {
	p, err := NewPacer(CBR(0.25))
	if err != nil {
		t.Fatal(err)
	}
	prev := p.NextAfter(0)
	for i := 0; i < 10; i++ {
		next := p.NextAfter(0)
		if math.Abs(next-prev-4) > 1e-9 {
			t.Fatalf("CBR(0.25) spacing = %g, want 4", next-prev)
		}
		prev = next
	}
}

func TestPacerRespectsEarliest(t *testing.T) {
	p, err := NewPacer(CBR(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NextAfter(7); got != 7 {
		t.Fatalf("first emission at %g, want 7", got)
	}
	if got := p.NextAfter(7.5); math.Abs(got-9) > 1e-9 {
		t.Fatalf("second emission at %g, want 9 (peak spacing)", got)
	}
	if got := p.NextAfter(100); got != 100 {
		t.Fatalf("idle source emission at %g, want 100", got)
	}
}

func TestPacerInvalidSpec(t *testing.T) {
	if _, err := NewPacer(VBR(0, 0, 0)); err == nil {
		t.Error("NewPacer with invalid spec succeeded")
	}
}

func TestCheckerAcceptsPacer(t *testing.T) {
	spec := VBR(0.5, 0.05, 8)
	p, err := NewPacer(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(spec, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		at := p.NextAfter(0)
		ok, err := c.Observe(at)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("cell %d at t=%g flagged non-conforming", i, at)
		}
	}
}

func TestCheckerRejectsBurstAbovePCR(t *testing.T) {
	c, err := NewChecker(CBR(0.5), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Observe(0); !ok {
		t.Fatal("first cell rejected")
	}
	ok, err := c.Observe(1) // spacing 1 < 1/PCR = 2
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("cell violating peak spacing accepted")
	}
}

func TestCheckerRejectsSustainedOverload(t *testing.T) {
	// VBR(1, 0.1, 4): after the 4-cell burst at full rate, cells every
	// 1 cell time violate SCR.
	c, err := NewChecker(VBR(1, 0.1, 4), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	for i := 0; i < 20; i++ {
		ok, err := c.Observe(float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("sustained overload never flagged")
	}
	// The first MBS cells must conform.
	c2, _ := NewChecker(VBR(1, 0.1, 4), 1e-9)
	for i := 0; i < 4; i++ {
		if ok, _ := c2.Observe(float64(i)); !ok {
			t.Fatalf("cell %d of initial burst rejected", i)
		}
	}
}

func TestCheckerRejectsTimeTravel(t *testing.T) {
	c, err := NewChecker(CBR(0.5), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Observe(10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Observe(5); err == nil {
		t.Fatal("decreasing arrival times accepted")
	}
}

func TestCheckerInvalid(t *testing.T) {
	if _, err := NewChecker(VBR(0, 0, 0), 0); err == nil {
		t.Error("NewChecker with invalid spec succeeded")
	}
	if _, err := NewChecker(CBR(0.5), -1); err == nil {
		t.Error("NewChecker with negative tolerance succeeded")
	}
}

// randomSpec generates valid specs for property tests.
type randomSpec struct{ S Spec }

func (randomSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	pcr := 0.02 + 0.98*r.Float64()
	scr := pcr * (0.05 + 0.95*r.Float64())
	mbs := 1 + math.Floor(32*r.Float64())
	return reflect.ValueOf(randomSpec{S: Spec{PCR: pcr, SCR: scr, MBS: mbs}})
}

// TestPropPacerConformsToChecker: every greedy schedule passes its own
// conformance check, and every schedule with random extra idle time does
// too (a source that under-uses its allocation stays conforming).
func TestPropPacerConformsToChecker(t *testing.T) {
	f := func(rs randomSpec, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, err := NewPacer(rs.S)
		if err != nil {
			return false
		}
		c, err := NewChecker(rs.S, 1e-9)
		if err != nil {
			return false
		}
		at := 0.0
		for i := 0; i < 60; i++ {
			at = p.NextAfter(at + 5*rng.Float64()*float64(rng.Intn(2)))
			ok, err := c.Observe(at)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropPacerWithinEnvelope: the cumulative cell count of any conforming
// schedule stays within the bit-stream envelope of Algorithm 2.1, which is
// the soundness property the whole CAC rests on.
func TestPropPacerWithinEnvelope(t *testing.T) {
	f := func(rs randomSpec, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, err := NewPacer(rs.S)
		if err != nil {
			return false
		}
		env, err := rs.S.Stream()
		if err != nil {
			return false
		}
		at := 0.0
		for i := 0; i < 80; i++ {
			gap := 0.0
			if rng.Intn(3) == 0 {
				gap = 10 * rng.Float64()
			}
			at = p.NextAfter(at + gap)
			// i+1 cells have been emitted by time at; the envelope must
			// account for them within one cell transmission time.
			if env.CumAt(at+1) < float64(i+1)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpecCDVT(t *testing.T) {
	base := VBR(0.5, 0.05, 8)
	env, err := base.Stream()
	if err != nil {
		t.Fatal(err)
	}
	jittered, err := base.WithCDVT(32).Stream()
	if err != nil {
		t.Fatal(err)
	}
	// The CDVT envelope equals the Algorithm 3.1 clumping of the base.
	want, err := env.Delayed(32)
	if err != nil {
		t.Fatal(err)
	}
	if !jittered.Equal(want, 1e-12) {
		t.Fatalf("CDVT envelope = %v, want %v", jittered, want)
	}
	// CDVT only dominates: cumulative never shrinks.
	for _, at := range []float64{0.5, 1, 5, 20, 100} {
		if jittered.CumAt(at) < env.CumAt(at)-1e-9 {
			t.Errorf("CDVT envelope below base at t=%g", at)
		}
	}
	if err := base.WithCDVT(-1).Validate(); err == nil {
		t.Error("negative CDVT accepted")
	}
	if err := base.WithCDVT(math.NaN()).Validate(); err == nil {
		t.Error("NaN CDVT accepted")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		CBR(0.25),
		VBR(0.5, 0.05, 8),
		VBR(0.5, 0.05, 8).WithCDVT(32),
	}
	for _, want := range specs {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		var got Spec
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("round trip %v -> %s -> %v", want, data, got)
		}
	}
	// CDVT is omitted from the encoding when zero.
	data, err := json.Marshal(CBR(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "cdvt") {
		t.Errorf("zero CDVT encoded: %s", data)
	}
}
