package traffic

import (
	"errors"
	"fmt"
	"time"
)

// ATM framing constants.
const (
	// CellBytes is the size of an ATM cell on the wire.
	CellBytes = 53
	// PayloadBytes is the usable payload of an ATM cell (AAL overhead not
	// accounted; the paper quotes raw application bandwidths).
	PayloadBytes = 48
	// CellBits is the cell size in bits.
	CellBits = CellBytes * 8
)

// Link describes a physical transmission link by its line rate in bits per
// second. All analysis is performed in cell times normalized to one link.
type Link struct {
	BitsPerSecond float64
}

// OC3 is the 155.52 Mbps SONET link RTnet uses between ring nodes. One cell
// time is about 2.7 microseconds, matching the paper's Section 5.
var OC3 = Link{BitsPerSecond: 155.52e6}

// ErrBadUnit reports a conversion with a non-positive quantity where a
// positive one is required.
var ErrBadUnit = errors.New("traffic: invalid unit conversion")

// CellTime returns the duration of one cell time on the link.
func (l Link) CellTime() time.Duration {
	return time.Duration(float64(time.Second) * CellBits / l.BitsPerSecond)
}

// CellTimeSeconds returns one cell time in seconds as a float.
func (l Link) CellTimeSeconds() float64 {
	return CellBits / l.BitsPerSecond
}

// CellsPerSecond returns the link bandwidth in cells per second.
func (l Link) CellsPerSecond() float64 {
	return l.BitsPerSecond / CellBits
}

// Normalize converts a bandwidth in bits per second into a normalized cell
// rate (cells per cell time) on this link.
func (l Link) Normalize(bitsPerSecond float64) float64 {
	return bitsPerSecond / l.BitsPerSecond
}

// Denormalize converts a normalized cell rate back to bits per second.
func (l Link) Denormalize(rate float64) float64 {
	return rate * l.BitsPerSecond
}

// CellTimes converts a wall-clock duration into cell times on this link.
func (l Link) CellTimes(d time.Duration) float64 {
	return d.Seconds() / l.CellTimeSeconds()
}

// Duration converts cell times on this link into a wall-clock duration.
func (l Link) Duration(cellTimes float64) time.Duration {
	return time.Duration(cellTimes * float64(l.CellTime()))
}

// CellsForBytes returns the number of ATM cells needed to carry n payload
// bytes (each cell carries PayloadBytes of payload).
func CellsForBytes(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: %d bytes", ErrBadUnit, n)
	}
	return (n + PayloadBytes - 1) / PayloadBytes, nil
}

// PayloadBandwidth returns the application-level bandwidth in bits per
// second required to deliver payloadBytes every period (raw payload bits,
// the accounting the paper's Table 1 uses).
func PayloadBandwidth(payloadBytes int, period time.Duration) (float64, error) {
	if payloadBytes < 0 || period <= 0 {
		return 0, fmt.Errorf("%w: %d bytes per %v", ErrBadUnit, payloadBytes, period)
	}
	return float64(payloadBytes) * 8 / period.Seconds(), nil
}

// WireBandwidth returns the on-the-wire bandwidth in bits per second needed
// to deliver payloadBytes every period, including cell header overhead.
func WireBandwidth(payloadBytes int, period time.Duration) (float64, error) {
	cells, err := CellsForBytes(payloadBytes)
	if err != nil {
		return 0, err
	}
	if period <= 0 {
		return 0, fmt.Errorf("%w: period %v", ErrBadUnit, period)
	}
	return float64(cells) * CellBits / period.Seconds(), nil
}
