// Package traffic defines ATM connection traffic descriptors (the VBR model
// of ATM Forum TM 4.0 used by the paper), unit conversions between physical
// link units and the normalized cell-time units of the analysis, and the
// GCRA-style token-bucket machinery used by the cell-level simulator.
package traffic

import (
	"errors"
	"fmt"
	"math"

	"atmcac/internal/bitstream"
)

// ErrInvalidSpec reports a traffic descriptor outside the model's domain.
var ErrInvalidSpec = errors.New("traffic: invalid spec")

// Spec is the VBR traffic descriptor (PCR, SCR, MBS) of Section 2 of the
// paper, extended with the ATM Forum TM 4.0 cell delay variation tolerance
// CDVT. Rates are normalized to the link bandwidth (1 = one cell per cell
// time); MBS is the maximum burst size in cells; CDVT is in cell times. A
// CBR connection has SCR == PCR.
//
// CDVT loosens the peak-rate policing at the UNI: cells may arrive up to
// CDVT earlier than strict 1/PCR spacing allows (e.g. because the terminal's
// own multiplexing jitters them). In the worst-case envelope this is
// exactly an Algorithm 3.1 clumping of the source stream by CDVT.
type Spec struct {
	PCR  float64 `json:"pcr"`            // peak cell rate, (0, 1]
	SCR  float64 `json:"scr"`            // sustainable cell rate, (0, PCR]
	MBS  float64 `json:"mbs"`            // maximum burst size in cells, >= 1
	CDVT float64 `json:"cdvt,omitempty"` // cell delay variation tolerance, >= 0 cell times
}

// CBR returns the descriptor of a constant-bit-rate connection with peak
// cell rate pcr. Per the paper, CBR is the special case SCR = PCR, MBS = 1.
func CBR(pcr float64) Spec {
	return Spec{PCR: pcr, SCR: pcr, MBS: 1}
}

// VBR returns the descriptor of a variable-bit-rate connection.
func VBR(pcr, scr, mbs float64) Spec {
	return Spec{PCR: pcr, SCR: scr, MBS: mbs}
}

// Validate reports whether the descriptor is inside the model's domain:
// 0 < SCR <= PCR <= 1, MBS >= 1 and CDVT >= 0.
func (s Spec) Validate() error {
	switch {
	case math.IsNaN(s.PCR) || !(s.PCR > 0) || s.PCR > 1:
		return fmt.Errorf("%w: PCR %g not in (0, 1]", ErrInvalidSpec, s.PCR)
	case math.IsNaN(s.SCR) || !(s.SCR > 0) || s.SCR > s.PCR:
		return fmt.Errorf("%w: SCR %g not in (0, PCR=%g]", ErrInvalidSpec, s.SCR, s.PCR)
	case math.IsNaN(s.MBS) || !(s.MBS >= 1):
		return fmt.Errorf("%w: MBS %g < 1", ErrInvalidSpec, s.MBS)
	case math.IsNaN(s.CDVT) || s.CDVT < 0:
		return fmt.Errorf("%w: CDVT %g < 0", ErrInvalidSpec, s.CDVT)
	}
	return nil
}

// WithCDVT returns a copy of the descriptor with the given cell delay
// variation tolerance.
func (s Spec) WithCDVT(cdvt float64) Spec {
	s.CDVT = cdvt
	return s
}

// IsCBR reports whether the descriptor degenerates to constant bit rate.
func (s Spec) IsCBR() bool { return s.SCR == s.PCR }

// Stream returns the worst-case bit-stream envelope of the connection at
// its source: the Algorithm 2.1 envelope, clumped by CDVT (Algorithm 3.1)
// when the descriptor tolerates source-side delay variation.
func (s Spec) Stream() (bitstream.Stream, error) {
	if err := s.Validate(); err != nil {
		return bitstream.Stream{}, err
	}
	env, err := bitstream.FromVBR(s.PCR, s.SCR, s.MBS)
	if err != nil {
		return bitstream.Stream{}, err
	}
	if s.CDVT > 0 {
		return env.Delayed(s.CDVT)
	}
	return env, nil
}

// String renders the descriptor in the paper's (PCR, SCR, MBS) notation.
func (s Spec) String() string {
	if s.IsCBR() {
		return fmt.Sprintf("CBR(PCR=%.6g)", s.PCR)
	}
	return fmt.Sprintf("VBR(PCR=%.6g, SCR=%.6g, MBS=%g)", s.PCR, s.SCR, s.MBS)
}
