package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total"); again != c {
		t.Fatalf("same (name, labels) returned a different counter")
	}
	if other := r.Counter("test_total", L("op", "x")); other == c {
		t.Fatalf("different labels returned the same counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	r.GaugeFunc("test_fn", func() float64 { return 7 })
	if got := r.Snapshot()["test_fn"]; got != 7 {
		t.Fatalf("gauge func snapshot = %v, want 7", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_total")
}

// TestHistogramBucketBoundaries is the bucket-boundary property test: for
// random bucket layouts and random observations (with values placed exactly
// on boundaries), every observation must land in the first bucket whose
// upper bound is >= the value (le inclusive), cumulative exposition counts
// must be monotonic and end at the total, and count/sum must match.
func TestHistogramBucketBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nb := 1 + rng.Intn(12)
		bounds := make([]float64, 0, nb)
		x := rng.Float64()
		for i := 0; i < nb; i++ {
			bounds = append(bounds, x)
			x += 0.01 + rng.Float64()
		}
		r := NewRegistry()
		h := r.Histogram("test_seconds", bounds)

		want := make([]uint64, len(bounds)+1)
		var wantSum float64
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			var v float64
			switch rng.Intn(3) {
			case 0: // exactly on a boundary: must land in that bucket (inclusive le)
				v = bounds[rng.Intn(len(bounds))]
			case 1: // beyond the last bound: must land in +Inf
				v = bounds[len(bounds)-1] + rng.Float64() + 0.001
			default:
				v = rng.Float64() * (bounds[len(bounds)-1] + 1)
			}
			h.Observe(v)
			wantSum += v
			idx := len(bounds) // +Inf
			for j, b := range bounds {
				if v <= b {
					idx = j
					break
				}
			}
			want[idx]++
		}

		got := h.BucketCounts()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: bucket %d = %d, want %d (bounds %v)", trial, i, got[i], want[i], bounds)
			}
		}
		if h.Count() != uint64(n) {
			t.Fatalf("trial %d: count = %d, want %d", trial, h.Count(), n)
		}
		if math.Abs(h.Sum()-wantSum) > 1e-9*math.Max(1, math.Abs(wantSum)) {
			t.Fatalf("trial %d: sum = %v, want %v", trial, h.Sum(), wantSum)
		}

		// Cumulative exposition: monotonic, +Inf equals count.
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		var prev, last uint64
		lines := 0
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.HasPrefix(line, "test_seconds_bucket") {
				continue
			}
			lines++
			var cum uint64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &cum); err != nil {
				t.Fatalf("trial %d: bad bucket line %q: %v", trial, line, err)
			}
			if cum < prev {
				t.Fatalf("trial %d: cumulative counts not monotonic: %q", trial, line)
			}
			prev, last = cum, cum
		}
		if lines != len(bounds)+1 {
			t.Fatalf("trial %d: %d bucket lines, want %d", trial, lines, len(bounds)+1)
		}
		if last != uint64(n) {
			t.Fatalf("trial %d: +Inf bucket = %d, want %d", trial, last, n)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", L("op", "y")).Add(2)
	r.Counter("b_total", L("op", "x")).Inc()
	r.Help("b_total", "ops by kind.")
	r.Gauge("a_gauge").Set(0.25)
	h := r.Histogram("c_seconds", []float64{0.01, 0.1})
	h.Observe(0.01) // boundary: le="0.01" is inclusive
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE a_gauge gauge",
		"a_gauge 0.25",
		"# HELP b_total ops by kind.",
		"# TYPE b_total counter",
		`b_total{op="x"} 1`,
		`b_total{op="y"} 2`,
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="0.01"} 1`,
		`c_seconds_bucket{le="0.1"} 2`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_sum 5.06",
		"c_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestHandlerAndVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", L("q", `a"b\c`)).Inc()
	r.Histogram("test_seconds", []float64{1}).Observe(0.5)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `test_total{q="a\"b\\c"} 1`) {
		t.Fatalf("label escaping broken:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.VarsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var snap map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if snap["test_seconds_count"] != 1 || snap["test_seconds_sum"] != 0.5 {
		t.Fatalf("vars snapshot = %v", snap)
	}
}

// TestConcurrentObserveScrape drives writers against scrapers; run under
// -race -count=3 this is the registry's data-race certification.
func TestConcurrentObserveScrape(t *testing.T) {
	r := NewRegistry()
	tr := NewMetricsTracer(r)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			kinds := []Kind{KindSetup, KindHopCheck, KindTeardown, KindShed, KindJournalAppend, KindRequest, KindReadmit}
			outcomes := []string{OutcomeAccepted, OutcomeRejected, OutcomeError, OutcomeOK}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.Trace(Event{
					Kind:     kinds[rng.Intn(len(kinds))],
					Outcome:  outcomes[rng.Intn(len(outcomes))],
					Code:     fmt.Sprintf("code-%d", rng.Intn(5)),
					Op:       fmt.Sprintf("op-%d", rng.Intn(3)),
					Class:    "setup-low",
					Duration: time.Duration(rng.Intn(1000)) * time.Microsecond,
					Slack:    rng.Float64() * 100,
					Bytes:    int64(rng.Intn(512)),
					Retries:  rng.Intn(2),
				})
			}
		}(int64(w))
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				_ = r.Snapshot()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Internal consistency after the dust settles: setup outcomes sum to
	// the setup latency histogram count.
	snap := r.Snapshot()
	var outcomes float64
	for k, v := range snap {
		if strings.HasPrefix(k, "atmcac_admission_setups_total") {
			outcomes += v
		}
	}
	if outcomes != snap["atmcac_admission_setup_seconds_count"] {
		t.Fatalf("setup outcomes (%v) != setup histogram count (%v)", outcomes, snap["atmcac_admission_setup_seconds_count"])
	}
}

func TestMetricsTracerMapping(t *testing.T) {
	r := NewRegistry()
	tr := NewMetricsTracer(r)
	tr.Trace(Event{Kind: KindSetup, Outcome: OutcomeAccepted, Hops: 3, Duration: time.Millisecond})
	tr.Trace(Event{Kind: KindSetup, Outcome: OutcomeRejected, Code: "delay-bound", Retries: 2})
	tr.Trace(Event{Kind: KindHopCheck, Outcome: OutcomeAccepted, Slack: 4, Duration: time.Microsecond})
	tr.Trace(Event{Kind: KindHopCheck, Outcome: OutcomeRejected, Code: "queue-unstable"})
	tr.Trace(Event{Kind: KindTeardown, Outcome: OutcomeOK})
	tr.Trace(Event{Kind: KindFailLink, Evicted: 5})
	tr.Trace(Event{Kind: KindReadmit, Outcome: OutcomeAccepted, Crankback: 4, Retries: 1})
	tr.Trace(Event{Kind: KindReadmit, Outcome: OutcomeError})
	tr.Trace(Event{Kind: KindShed, Op: "setup", Class: "setup-low", Code: "overloaded-rate"})
	tr.Trace(Event{Kind: KindJournalAppend, Outcome: OutcomeOK, Duration: 40 * time.Microsecond, SyncDuration: 30 * time.Microsecond, Bytes: 128})
	tr.Trace(Event{Kind: KindJournalAppend, Outcome: OutcomeError})
	tr.Trace(Event{Kind: KindReplay, Restored: 7, Failed: 1, Records: 9})
	tr.Trace(Event{Kind: KindAudit, Violations: 2, Duration: time.Millisecond})

	snap := r.Snapshot()
	want := map[string]float64{
		`atmcac_admission_setups_total{outcome="accepted"}`:     1,
		`atmcac_admission_setups_total{outcome="rejected"}`:     1,
		`atmcac_admission_rejections_total{code="delay-bound"}`: 1,
		"atmcac_admission_setup_retries_total":                  2,
		"atmcac_admission_hop_check_seconds_count":              2,
		"atmcac_admission_hop_slack_cells_count":                1, // only the accepted hop
		`atmcac_admission_teardowns_total{outcome="ok"}`:        1,
		"atmcac_failover_faillink_total":                        1,
		"atmcac_failover_evicted_total":                         5,
		"atmcac_failover_readmitted_total":                      1,
		"atmcac_failover_down_total":                            1,
		"atmcac_failover_readmit_attempts_total":                3, // (1+1) + (1+0)
		"atmcac_failover_crankback_hops_total":                  4,
		`atmcac_overload_shed_total{class="setup-low"}`:         1,
		"atmcac_journal_append_seconds_count":                   1,
		"atmcac_journal_fsync_seconds_count":                    1,
		"atmcac_journal_append_bytes_total":                     128,
		"atmcac_journal_append_errors_total":                    1,
		"atmcac_recovery_restored_total":                        7,
		"atmcac_recovery_failed_total":                          1,
		"atmcac_recovery_journal_records_total":                 9,
		"atmcac_audit_violations":                               2,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("%s = %v, want %v", k, snap[k], v)
		}
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatalf("Multi of no live tracers should be nil")
	}
	var a, b int
	ta := TracerFunc(func(Event) { a++ })
	tb := TracerFunc(func(Event) { b++ })
	if got := Multi(nil, ta); got == nil {
		t.Fatalf("Multi(nil, ta) = nil")
	} else {
		got.Trace(Event{})
	}
	m := Multi(ta, tb)
	m.Trace(Event{})
	if a != 2 || b != 1 {
		t.Fatalf("fan-out counts a=%d b=%d, want 2, 1", a, b)
	}
}
