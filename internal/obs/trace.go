package obs

import (
	"sync"
	"time"
)

// Kind discriminates trace events.
type Kind string

// Event kinds. One event is emitted per admission-plane decision or
// persistence step; the emitting layer fills only the fields its kind
// documents.
const (
	// KindSetup is one end-to-end connection setup decision (core).
	// Fields: Conn, Outcome, Code, Hops, Retries, Duration.
	KindSetup Kind = "setup"
	// KindHopCheck is one per-hop Algorithm 4.1 check (core).
	// Fields: Conn, Switch, Outcome, Code, Duration, Slack (accepted only).
	KindHopCheck Kind = "hop-check"
	// KindTeardown is one connection release (core).
	// Fields: Conn, Outcome, Code, Duration.
	KindTeardown Kind = "teardown"
	// KindFailLink is one link-failure eviction pass (core).
	// Fields: Link, Evicted, Duration.
	KindFailLink Kind = "fail-link"
	// KindRestoreLink is one link repair (core). Fields: Link, Outcome.
	KindRestoreLink Kind = "restore-link"
	// KindReadmit is one evicted connection's crankback re-admission
	// outcome after a link failure (wire). Fields: Conn, Outcome,
	// Crankback (wrapped-route hops), Retries (setup attempts).
	KindReadmit Kind = "readmit"
	// KindAudit is one full network audit (core).
	// Fields: Duration, Violations.
	KindAudit Kind = "audit"
	// KindRequest is one wire request (wire). Fields: Op, Outcome
	// ("ok", "error" or "shed"), Code, Class (when classified), Duration.
	KindRequest Kind = "request"
	// KindShed is a request shed by overload control before any work
	// (wire). Fields: Op, Class, Code ("overloaded-rate" or
	// "overloaded-concurrency").
	KindShed Kind = "shed"
	// KindJournalAppend is one write-ahead journal append (journal, via
	// wire). Fields: Outcome, Duration (whole append), SyncDuration
	// (fsync share; zero outside journal-sync mode), Bytes.
	KindJournalAppend Kind = "journal-append"
	// KindCompaction is one journal fold-into-snapshot (wire).
	// Fields: Outcome, Duration.
	KindCompaction Kind = "compaction"
	// KindSnapshot is one full snapshot rewrite in snapshot mode (wire).
	// Fields: Outcome, Duration.
	KindSnapshot Kind = "snapshot"
	// KindReplay is the one recovery pass at boot (wire).
	// Fields: Restored, Failed, Records (journal records past the
	// watermark), Duration.
	KindReplay Kind = "replay"
	// KindReplShip is one journal record shipped to the standby (replica).
	// Fields: Outcome, Duration (write-to-stream latency), Bytes, Epoch.
	KindReplShip Kind = "repl-ship"
	// KindReplAck is one standby acknowledgement observed by the primary
	// (replica). Fields: Duration (append-to-ack latency), Epoch.
	KindReplAck Kind = "repl-ack"
	// KindPromote is one standby promotion to primary (wire).
	// Fields: Epoch (the new term), Outcome.
	KindPromote Kind = "promote"
	// KindFence is an ex-primary refusing writes after observing a higher
	// term (wire). Fields: Epoch (the fencing term).
	KindFence Kind = "fence"
	// KindShardPrepare is phase 1 of a cross-shard admission on a shard
	// (wire). Fields: Conn, Outcome, Code, Duration.
	KindShardPrepare Kind = "shard-prepare"
	// KindShardCommit is phase 2 commit on a shard (wire).
	// Fields: Conn, Outcome, Code, Duration.
	KindShardCommit Kind = "shard-commit"
	// KindShardAbort is a coordinator abort or unwind on a shard (wire).
	// Fields: Conn, Outcome, Duration.
	KindShardAbort Kind = "shard-abort"
	// KindShardReap is one orphan-reaper pass expiring prepared holds
	// whose TTL lapsed without a decision (wire). Fields: Evicted (holds
	// reaped this pass).
	KindShardReap Kind = "shard-reap"
	// KindInDoubt is one in-doubt transaction resolved by a recovering
	// coordinator from its intent log (shard). Fields: Conn (transaction
	// ID), Outcome ("accepted" re-driven commit, "rejected" abort).
	KindInDoubt Kind = "in-doubt"
	// KindShardFailover is the coordinator re-pointing a shard pair at
	// its surviving member after the active one stopped answering
	// (shard). Fields: Op (shard ID), Outcome, Epoch (the survivor's
	// term after promotion).
	KindShardFailover Kind = "shard-failover"
	// KindCoordPromote is a standby coordinator taking over the intent
	// log at a bumped term (shard). Fields: Epoch (the new coordinator
	// term), Outcome.
	KindCoordPromote Kind = "coord-promote"
	// KindGroupCommit is one group-commit fsync covering the journal
	// records of one or more coalesced operations (wire). Fields:
	// Records (operations covered by this one fsync), Outcome, Duration.
	KindGroupCommit Kind = "group-commit"
	// KindBatch is one batch-setup or batch-teardown request (wire).
	// Fields: Op, Records (items in the batch), Outcome, Duration.
	KindBatch Kind = "batch"
)

// Outcome values shared by event kinds.
const (
	OutcomeAccepted = "accepted"
	OutcomeRejected = "rejected"
	OutcomeError    = "error"
	OutcomeOK       = "ok"
	OutcomeShed     = "shed"
)

// Event is one structured trace record. Which fields are meaningful
// depends on Kind (see the kind constants); unset fields are zero.
type Event struct {
	Kind    Kind
	Conn    string // connection ID
	Switch  string // hop switch name
	Link    string // "from->to" for link events
	Op      string // wire operation
	Class   string // overload class
	Outcome string // accepted | rejected | error | ok | shed
	Code    string // stable error taxonomy code (empty on success)

	Hops       int // route length of a setup
	Crankback  int // wrapped-route hops of a re-admission
	Retries    int // extra attempts beyond the first
	Evicted    int // connections evicted by a fail-link
	Violations int // audit violations found
	Restored   int // recovery: connections re-admitted
	Failed     int // recovery: connections no longer admissible
	Records    int // recovery: journal records replayed

	Duration     time.Duration // whole-operation latency
	SyncDuration time.Duration // fsync share of a journal append
	Slack        float64       // guarantee minus computed bound, cell times
	Bytes        int64         // journal append frame size
	Epoch        uint64        // replication term of a ship/promote/fence
}

// Tracer receives trace events. Implementations must be safe for
// concurrent use and must not block: tracers run inline on the admission
// path.
type Tracer interface {
	Trace(Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Trace implements Tracer.
func (f TracerFunc) Trace(ev Event) { f(ev) }

// Multi fans one event out to several tracers, skipping nils. A nil or
// empty result means "no tracing" and is represented as nil so emitters
// can keep their fast-path nil check.
func Multi(tracers ...Tracer) Tracer {
	live := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

// Trace implements Tracer.
func (m multiTracer) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// MetricsTracer folds trace events into a Registry under the atmcac_*
// naming convention. It is the single place events become metrics: core,
// wire and journal all emit Events, and every counter the daemon exports
// is derived here.
type MetricsTracer struct {
	reg *Registry

	setups         map[string]*Counter // by outcome
	rejections     map[string]*Counter // by code
	teardowns      map[string]*Counter // by outcome
	setupSeconds   *Histogram
	hopSeconds     *Histogram
	hopSlack       *Histogram
	setupRetries   *Counter
	faillinks      *Counter
	evicted        *Counter
	restorelinks   *Counter
	readmitted     *Counter
	readmitDown    *Counter
	readmitTries   *Counter
	crankbackHops  *Counter
	auditSeconds   *Histogram
	auditViol      *Gauge
	appendSeconds  *Histogram
	fsyncSeconds   *Histogram
	appendBytes    *Counter
	appendErrors   *Counter
	compactions    map[string]*Counter // by outcome
	compactSecs    *Histogram
	snapshotSecs   *Histogram
	snapshots      map[string]*Counter // by outcome
	shipSeconds    *Histogram
	shipBytes      *Counter
	shipErrors     *Counter
	ackSeconds     *Histogram
	promotions     *Counter
	fences         *Counter
	epochGauge     *Gauge
	shardPrepares  map[string]*Counter // by outcome
	shardCommits   map[string]*Counter // by outcome
	shardAborts    *Counter
	orphansReaped  *Counter
	inDoubt        *Counter
	shardFailovers *Counter
	coordPromotes  *Counter
	coordEpochG    *Gauge
	groupCommits   map[string]*Counter // by outcome
	groupCommitOps *Histogram
	groupCommitSec *Histogram
	batchItems     *Histogram

	mu sync.Mutex // guards rejections (open code vocabulary)
}

// NewMetricsTracer returns a tracer writing into reg.
func NewMetricsTracer(reg *Registry) *MetricsTracer {
	t := &MetricsTracer{reg: reg}
	t.setups = map[string]*Counter{
		OutcomeAccepted: reg.Counter("atmcac_admission_setups_total", L("outcome", OutcomeAccepted)),
		OutcomeRejected: reg.Counter("atmcac_admission_setups_total", L("outcome", OutcomeRejected)),
		OutcomeError:    reg.Counter("atmcac_admission_setups_total", L("outcome", OutcomeError)),
	}
	reg.Help("atmcac_admission_setups_total", "End-to-end connection setup decisions by outcome.")
	t.rejections = map[string]*Counter{}
	reg.Help("atmcac_admission_rejections_total", "CAC rejections by stable taxonomy code.")
	t.teardowns = map[string]*Counter{
		OutcomeOK:    reg.Counter("atmcac_admission_teardowns_total", L("outcome", OutcomeOK)),
		OutcomeError: reg.Counter("atmcac_admission_teardowns_total", L("outcome", OutcomeError)),
	}
	reg.Help("atmcac_admission_teardowns_total", "Connection releases by outcome.")
	t.setupSeconds = reg.Histogram("atmcac_admission_setup_seconds", DefLatencyBuckets)
	reg.Help("atmcac_admission_setup_seconds", "End-to-end setup latency (all outcomes).")
	t.hopSeconds = reg.Histogram("atmcac_admission_hop_check_seconds", DefLatencyBuckets)
	reg.Help("atmcac_admission_hop_check_seconds", "Per-hop Algorithm 4.1 check duration.")
	t.hopSlack = reg.Histogram("atmcac_admission_hop_slack_cells", DefSlackBuckets)
	reg.Help("atmcac_admission_hop_slack_cells", "Queueing-bound slack D(j,p)-D'(j,p) of accepted hops, cell times.")
	t.setupRetries = reg.Counter("atmcac_admission_setup_retries_total")
	reg.Help("atmcac_admission_setup_retries_total", "Whole-setup retries consumed from WithRetryBudget.")
	t.faillinks = reg.Counter("atmcac_failover_faillink_total")
	t.evicted = reg.Counter("atmcac_failover_evicted_total")
	t.restorelinks = reg.Counter("atmcac_failover_restorelink_total")
	t.readmitted = reg.Counter("atmcac_failover_readmitted_total")
	t.readmitDown = reg.Counter("atmcac_failover_down_total")
	reg.Help("atmcac_failover_down_total", "Evicted connections not re-admitted in degraded mode.")
	t.readmitTries = reg.Counter("atmcac_failover_readmit_attempts_total")
	t.crankbackHops = reg.Counter("atmcac_failover_crankback_hops_total")
	reg.Help("atmcac_failover_crankback_hops_total", "Total wrapped-route hops traversed by re-admissions.")
	t.auditSeconds = reg.Histogram("atmcac_audit_seconds", DefLatencyBuckets)
	t.auditViol = reg.Gauge("atmcac_audit_violations")
	reg.Help("atmcac_audit_violations", "Violations found by the most recent audit.")
	t.appendSeconds = reg.Histogram("atmcac_journal_append_seconds", DefLatencyBuckets)
	reg.Help("atmcac_journal_append_seconds", "Write-ahead journal append latency (including fsync share).")
	t.fsyncSeconds = reg.Histogram("atmcac_journal_fsync_seconds", DefLatencyBuckets)
	reg.Help("atmcac_journal_fsync_seconds", "Journal fsyncs: per-record syncs and shared group commits alike.")
	t.appendBytes = reg.Counter("atmcac_journal_append_bytes_total")
	t.appendErrors = reg.Counter("atmcac_journal_append_errors_total")
	t.compactions = map[string]*Counter{
		OutcomeOK:    reg.Counter("atmcac_journal_compactions_total", L("outcome", OutcomeOK)),
		OutcomeError: reg.Counter("atmcac_journal_compactions_total", L("outcome", OutcomeError)),
	}
	t.compactSecs = reg.Histogram("atmcac_journal_compaction_seconds", DefLatencyBuckets)
	t.snapshotSecs = reg.Histogram("atmcac_persist_snapshot_seconds", DefLatencyBuckets)
	t.snapshots = map[string]*Counter{
		OutcomeOK:    reg.Counter("atmcac_persist_snapshots_total", L("outcome", OutcomeOK)),
		OutcomeError: reg.Counter("atmcac_persist_snapshots_total", L("outcome", OutcomeError)),
	}
	t.shipSeconds = reg.Histogram("atmcac_repl_ship_seconds", DefLatencyBuckets)
	reg.Help("atmcac_repl_ship_seconds", "Journal record ship latency to the standby (mode-dependent: includes the ack wait in sync mode).")
	t.shipBytes = reg.Counter("atmcac_repl_shipped_bytes_total")
	reg.Help("atmcac_repl_shipped_bytes_total", "Journal payload bytes shipped to the standby.")
	t.shipErrors = reg.Counter("atmcac_repl_ship_errors_total")
	reg.Help("atmcac_repl_ship_errors_total", "Records that could not be shipped (standby down or stream error).")
	t.ackSeconds = reg.Histogram("atmcac_repl_ack_seconds", DefLatencyBuckets)
	reg.Help("atmcac_repl_ack_seconds", "Standby acknowledgement latency per shipped record.")
	t.promotions = reg.Counter("atmcac_failover_promotions_total")
	reg.Help("atmcac_failover_promotions_total", "Standby promotions to primary.")
	t.fences = reg.Counter("atmcac_repl_fenced_total")
	reg.Help("atmcac_repl_fenced_total", "Times this node fenced itself after observing a higher term.")
	t.epochGauge = reg.Gauge("atmcac_repl_epoch")
	reg.Help("atmcac_repl_epoch", "Current replication epoch (term) of this node.")
	t.shardPrepares = map[string]*Counter{
		OutcomeAccepted: reg.Counter("atmcac_shard_prepares_total", L("outcome", OutcomeAccepted)),
		OutcomeRejected: reg.Counter("atmcac_shard_prepares_total", L("outcome", OutcomeRejected)),
	}
	reg.Help("atmcac_shard_prepares_total", "Cross-shard phase-1 reservations by outcome.")
	t.shardCommits = map[string]*Counter{
		OutcomeOK:    reg.Counter("atmcac_shard_commits_total", L("outcome", OutcomeOK)),
		OutcomeError: reg.Counter("atmcac_shard_commits_total", L("outcome", OutcomeError)),
	}
	reg.Help("atmcac_shard_commits_total", "Cross-shard phase-2 commits by outcome.")
	t.shardAborts = reg.Counter("atmcac_shard_aborts_total")
	reg.Help("atmcac_shard_aborts_total", "Cross-shard aborts applied (coordinator abort or unwind).")
	t.orphansReaped = reg.Counter("atmcac_shard_orphans_reaped_total")
	reg.Help("atmcac_shard_orphans_reaped_total", "Prepared holds expired by the orphan reaper after their TTL.")
	t.inDoubt = reg.Counter("atmcac_shard_indoubt_resolutions_total")
	reg.Help("atmcac_shard_indoubt_resolutions_total", "In-doubt transactions resolved from the coordinator intent log.")
	t.shardFailovers = reg.Counter("atmcac_shard_failovers_total")
	reg.Help("atmcac_shard_failovers_total", "Shard pairs re-pointed at their surviving member by the coordinator.")
	t.coordPromotes = reg.Counter("atmcac_coord_promotions_total")
	reg.Help("atmcac_coord_promotions_total", "Standby coordinator takeovers of the intent log.")
	t.coordEpochG = reg.Gauge("atmcac_coord_observed_epoch")
	reg.Help("atmcac_coord_observed_epoch", "Coordinator term of the most recent takeover observed by this tracer.")
	t.groupCommits = map[string]*Counter{
		OutcomeOK:    reg.Counter("atmcac_journal_group_commits_total", L("outcome", OutcomeOK)),
		OutcomeError: reg.Counter("atmcac_journal_group_commits_total", L("outcome", OutcomeError)),
	}
	reg.Help("atmcac_journal_group_commits_total", "Group-commit fsyncs by outcome.")
	t.groupCommitOps = reg.Histogram("atmcac_journal_group_commit_ops", DefCountBuckets)
	reg.Help("atmcac_journal_group_commit_ops", "Operations coalesced under one group-commit fsync.")
	t.groupCommitSec = reg.Histogram("atmcac_journal_group_commit_seconds", DefLatencyBuckets)
	reg.Help("atmcac_journal_group_commit_seconds", "Group-commit fsync latency.")
	t.batchItems = reg.Histogram("atmcac_wire_batch_items", DefCountBuckets)
	reg.Help("atmcac_wire_batch_items", "Items per batch-setup/batch-teardown request.")
	return t
}

// Registry returns the backing registry.
func (t *MetricsTracer) Registry() *Registry { return t.reg }

// outcomeCounter resolves an outcome in a pre-seeded map, falling back to
// the registry for vocabulary the seed did not anticipate.
func (t *MetricsTracer) outcomeCounter(seeded map[string]*Counter, name, outcome string) *Counter {
	if c, ok := seeded[outcome]; ok {
		return c
	}
	return t.reg.Counter(name, L("outcome", outcome))
}

// Trace implements Tracer.
func (t *MetricsTracer) Trace(ev Event) {
	switch ev.Kind {
	case KindSetup:
		t.outcomeCounter(t.setups, "atmcac_admission_setups_total", ev.Outcome).Inc()
		t.setupSeconds.Observe(ev.Duration.Seconds())
		if ev.Outcome == OutcomeRejected {
			code := ev.Code
			if code == "" {
				code = "rejected"
			}
			t.mu.Lock()
			c, ok := t.rejections[code]
			if !ok {
				c = t.reg.Counter("atmcac_admission_rejections_total", L("code", code))
				t.rejections[code] = c
			}
			t.mu.Unlock()
			c.Inc()
		}
		t.setupRetries.Add(ev.Retries)
	case KindHopCheck:
		t.hopSeconds.Observe(ev.Duration.Seconds())
		if ev.Outcome == OutcomeAccepted {
			t.hopSlack.Observe(ev.Slack)
		}
	case KindTeardown:
		t.outcomeCounter(t.teardowns, "atmcac_admission_teardowns_total", ev.Outcome).Inc()
	case KindFailLink:
		t.faillinks.Inc()
		t.evicted.Add(ev.Evicted)
	case KindRestoreLink:
		t.restorelinks.Inc()
	case KindReadmit:
		t.readmitTries.Add(1 + ev.Retries)
		if ev.Outcome == OutcomeAccepted {
			t.readmitted.Inc()
			t.crankbackHops.Add(ev.Crankback)
		} else {
			t.readmitDown.Inc()
		}
	case KindAudit:
		t.auditSeconds.Observe(ev.Duration.Seconds())
		t.auditViol.Set(float64(ev.Violations))
	case KindRequest:
		t.reg.Counter("atmcac_requests_total", L("op", ev.Op), L("outcome", ev.Outcome)).Inc()
		t.reg.Histogram("atmcac_request_seconds", DefLatencyBuckets, L("op", ev.Op)).Observe(ev.Duration.Seconds())
	case KindShed:
		t.reg.Counter("atmcac_overload_shed_total", L("class", ev.Class)).Inc()
	case KindJournalAppend:
		if ev.Outcome == OutcomeError {
			t.appendErrors.Inc()
			return
		}
		t.appendSeconds.Observe(ev.Duration.Seconds())
		if ev.SyncDuration > 0 {
			t.fsyncSeconds.Observe(ev.SyncDuration.Seconds())
		}
		t.appendBytes.Add(int(ev.Bytes))
	case KindCompaction:
		t.outcomeCounter(t.compactions, "atmcac_journal_compactions_total", ev.Outcome).Inc()
		if ev.Outcome == OutcomeOK {
			t.compactSecs.Observe(ev.Duration.Seconds())
		}
	case KindSnapshot:
		t.outcomeCounter(t.snapshots, "atmcac_persist_snapshots_total", ev.Outcome).Inc()
		if ev.Outcome == OutcomeOK {
			t.snapshotSecs.Observe(ev.Duration.Seconds())
		}
	case KindReplay:
		t.reg.Counter("atmcac_recovery_restored_total").Add(ev.Restored)
		t.reg.Counter("atmcac_recovery_failed_total").Add(ev.Failed)
		t.reg.Counter("atmcac_recovery_journal_records_total").Add(ev.Records)
	case KindReplShip:
		if ev.Outcome == OutcomeError {
			t.shipErrors.Inc()
			return
		}
		t.shipSeconds.Observe(ev.Duration.Seconds())
		t.shipBytes.Add(int(ev.Bytes))
	case KindReplAck:
		t.ackSeconds.Observe(ev.Duration.Seconds())
	case KindPromote:
		if ev.Outcome == OutcomeOK {
			t.promotions.Inc()
			t.epochGauge.Set(float64(ev.Epoch))
		}
	case KindFence:
		t.fences.Inc()
		t.epochGauge.Set(float64(ev.Epoch))
	case KindShardPrepare:
		t.outcomeCounter(t.shardPrepares, "atmcac_shard_prepares_total", ev.Outcome).Inc()
	case KindShardCommit:
		t.outcomeCounter(t.shardCommits, "atmcac_shard_commits_total", ev.Outcome).Inc()
	case KindShardAbort:
		t.shardAborts.Inc()
	case KindShardReap:
		t.orphansReaped.Add(ev.Evicted)
	case KindInDoubt:
		t.inDoubt.Inc()
	case KindShardFailover:
		if ev.Outcome == OutcomeOK {
			t.shardFailovers.Inc()
		}
	case KindCoordPromote:
		if ev.Outcome == OutcomeOK {
			t.coordPromotes.Inc()
			t.coordEpochG.Set(float64(ev.Epoch))
		}
	case KindGroupCommit:
		t.outcomeCounter(t.groupCommits, "atmcac_journal_group_commits_total", ev.Outcome).Inc()
		t.groupCommitOps.Observe(float64(ev.Records))
		if ev.Outcome == OutcomeOK {
			t.groupCommitSec.Observe(ev.Duration.Seconds())
			// A group commit is one journal fsync covering Records
			// appends; feed the fsync histogram so its count stays the
			// number of fsyncs issued, whichever path issued them.
			t.fsyncSeconds.Observe(ev.Duration.Seconds())
		}
	case KindBatch:
		t.reg.Counter("atmcac_wire_batches_total", L("op", ev.Op)).Inc()
		t.batchItems.Observe(float64(ev.Records))
	}
}
