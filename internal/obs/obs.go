// Package obs is the dependency-free observability layer of the CAC
// daemon: a metrics registry (atomic counters, gauges and fixed-bucket
// histograms with Prometheus text exposition) and a structured per-admission
// trace API (see trace.go).
//
// The paper's admission procedure (Section 4.3) is judged by its measured
// behavior — utilization, rejection rates, per-hop check cost — so every
// admission decision the daemon makes flows through one obs.Tracer and
// lands in one Registry. Nothing here imports another atmcac package, so
// core, wire, journal and overload can all emit into it without cycles, and
// nothing external is required: the exposition is plain Prometheus text
// over net/http from the standard library.
//
// Metric naming convention: atmcac_<subsystem>_<quantity>[_<unit>], with
// _total for counters, _seconds for latency histograms, and label values
// drawn from the stable taxonomies (rejection codes, overload classes).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Label sets are small and fixed (outcome,
// code, class, op); the registry canonicalizes them into the series key.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency/size distribution. Observations are
// lock-free; the bucket layout is immutable after creation. Buckets follow
// the Prometheus convention: an observation lands in the first bucket whose
// upper bound is >= the value (le is inclusive), and exposition emits
// cumulative counts plus the implicit +Inf bucket, _sum and _count.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (tens); linear scan beats binary search at this size
	// and keeps the hot path branch-predictable.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the non-cumulative per-bucket counts; the final
// element is the +Inf bucket. The slice is a snapshot, not live.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	for i := range h.bounds {
		out[i] = h.buckets[i].Load()
	}
	out[len(h.bounds)] = h.inf.Load()
	return out
}

// DefLatencyBuckets spans 1µs to 2.5s: the fast path (lock-free CAC checks,
// journal appends) sits in the low microseconds, snapshot rewrites and
// fsyncs in the milliseconds, and full-ring admissions under churn can
// reach high milliseconds.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// DefSlackBuckets grades queueing-bound slack in cell times: how far the
// computed bound D'(j,p) sat below the guarantee D(j,p) at admission.
var DefSlackBuckets = []float64{0, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// DefCountBuckets grades small cardinalities: operations coalesced per
// group-commit fsync, items per batch request.
var DefCountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// metricKind discriminates the exposition type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// family is one named metric with all its label series.
type family struct {
	name   string
	kind   metricKind
	help   string
	series map[string]any // canonical label string -> *Counter/*Gauge/*Histogram/func() float64
}

// Registry holds metric families. All methods are safe for concurrent use;
// metric lookup takes a short lock, while updating a retrieved metric is
// lock-free. Keep the returned handles when the call site is hot.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order is not stable; exposition sorts
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// canonLabels renders labels in sorted-key Prometheus form: {k="v",...}.
func canonLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the series slot for (name, labels), creating family and
// series as needed. A name registered with one kind cannot be reused with
// another; that is a programming error and panics early.
func (r *Registry) lookup(name string, kind metricKind, labels []Label, make func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: map[string]any{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
	}
	key := canonLabels(labels)
	m, ok := f.series[key]
	if !ok {
		m = make()
		f.series[key] = m
	}
	return m
}

// Counter returns (creating on first use) the counter series for the name
// and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, kindCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) the gauge series.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, kindGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read by calling fn at scrape
// time — for state that already has an authoritative owner (limiter token
// level, journal size) where mirroring into a stored gauge would race the
// owner. fn must be safe for concurrent use. Re-registering the same
// (name, labels) replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kindGaugeFunc, series: map[string]any{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kindGaugeFunc {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
	}
	f.series[canonLabels(labels)] = fn
}

// Histogram returns (creating on first use) the histogram series with the
// given bucket upper bounds. bounds must be sorted ascending; they are
// fixed by the first registration of the family and later calls reuse them.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return r.lookup(name, kindHistogram, labels, func() any {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Uint64, len(h.bounds))
		return h
	}).(*Histogram)
}

// Help sets the HELP line of a family (optional; families without help
// expose only the TYPE line).
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	}
}

// snapshotFamilies copies the family table so exposition can run without
// holding the registry lock while formatting (metric reads are atomic).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// seriesKeys returns a family's label keys in sorted order.
func (f *family) seriesKeys() []string {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and series in deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		typ := "untyped"
		switch f.kind {
		case kindCounter:
			typ = "counter"
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, key := range f.seriesKeys() {
			if err := writeSeries(w, f, key); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one label series of a family.
func writeSeries(w io.Writer, f *family, key string) error {
	switch m := f.series[key].(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, key, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatFloat(m.Value()))
		return err
	case func() float64:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatFloat(m()))
		return err
	case *Histogram:
		// Cumulative buckets; le labels merge with the series labels.
		counts := m.BucketCounts()
		var cum uint64
		for i, b := range m.Bounds() {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, mergeLE(key, formatFloat(b)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLE(key, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, key, formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, key, m.Count())
		return err
	}
	return nil
}

// mergeLE inserts the le label into a canonical label string.
func mergeLE(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return key[:len(key)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float compactly ("0.005", not "5e-03") while
// keeping full precision, matching common Prometheus client output.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Snapshot flattens the registry into metric-name -> value: counters and
// gauges directly, histograms as <name>_count and <name>_sum. It backs the
// health operation's counter snapshot and /debug/vars.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.snapshotFamilies() {
		for _, key := range f.seriesKeys() {
			switch m := f.series[key].(type) {
			case *Counter:
				out[f.name+key] = float64(m.Value())
			case *Gauge:
				out[f.name+key] = m.Value()
			case func() float64:
				out[f.name+key] = m()
			case *Histogram:
				out[f.name+key+"_count"] = float64(m.Count())
				out[f.name+key+"_sum"] = m.Sum()
			}
		}
	}
	return out
}

// Handler serves the Prometheus text exposition (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// VarsHandler serves the flattened snapshot as JSON (mount at /debug/vars).
// Keys are written in sorted order so scrapes diff cleanly.
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := r.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "{")
		for i, k := range keys {
			comma := ","
			if i == len(keys)-1 {
				comma = ""
			}
			fmt.Fprintf(w, "  %q: %s%s\n", k, formatFloat(snap[k]), comma)
		}
		fmt.Fprintln(w, "}")
	})
}
