// Binary framing and the per-connection session loop shared by the CAC
// server and the shard coordinator's wire front end.
//
// The wire protocol starts every connection in the newline-delimited
// JSON codec it has always spoken. A client that wants the binary
// framing sends a hello line ({"op":"hello","proto":"binary"}); if the
// server accepts, both sides switch and every subsequent request and
// response is one length-prefixed frame:
//
//	[4B big-endian payload length][4B IEEE CRC32(payload)][8B tag][payload]
//
// — the journal's CRC32 record framing (internal/journal) extended with
// a tag. The payload stays the same JSON object the line protocol
// carries; what the framing buys is integrity (CRC), no line-scanning,
// and above all pipelining: the tag names the request, responses echo
// it, and may arrive out of order. Old clients never send hello and stay
// on JSON; old servers answer hello with unknown-op, which new clients
// treat as "stay on JSON" — either side can lag the other.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// Protocol names negotiated by the hello exchange.
const (
	ProtoJSON   = "json"
	ProtoBinary = "binary"
)

// OpHello negotiates the connection's framing. It is handled by the
// session loop itself, before dispatch: a hello never reaches the
// overload limiter or the admission plane.
const OpHello = "hello"

// CodeUnsupportedProto marks a hello naming a framing this server does
// not speak (or refuses, e.g. -wire-proto=json). The response is always
// sent in the JSON codec and the connection stays on JSON, so an old or
// degraded peer keeps working instead of hanging on a binary frame.
const CodeUnsupportedProto = "unsupported-proto"

// Binary frame header layout: 4B payload length, 4B CRC32, 8B tag.
const (
	binLenOff  = 0
	binCRCOff  = 4
	binTagOff  = 8
	binHdrSize = 16
)

// defaultPipelineDepth bounds concurrently-executing requests per binary
// connection; excess frames wait in the reader.
const defaultPipelineDepth = 32

var errFrameTooLong = fmt.Errorf("%w: frame exceeds %d bytes", ErrProtocol, MaxLineBytes)

// appendBinFrame appends one binary frame carrying payload under tag.
func appendBinFrame(dst []byte, tag uint64, payload []byte) []byte {
	var hdr [binHdrSize]byte
	binary.BigEndian.PutUint32(hdr[binLenOff:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[binCRCOff:], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint64(hdr[binTagOff:], tag)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readBinFrame reads one binary frame. A corrupt or oversized frame is a
// hard protocol error: unlike the journal's torn-tail scan there is no
// "rest of file" to preserve — the stream position is lost, so the
// connection must die.
func readBinFrame(br *bufio.Reader) (tag uint64, payload []byte, err error) {
	var hdr [binHdrSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[binLenOff:])
	if n > MaxLineBytes {
		return 0, nil, errFrameTooLong
	}
	tag = binary.BigEndian.Uint64(hdr[binTagOff:])
	payload = make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame: %v", ErrProtocol, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(hdr[binCRCOff:]); got != want {
		return 0, nil, fmt.Errorf("%w: frame crc mismatch (got %08x want %08x)", ErrProtocol, got, want)
	}
	return tag, payload, nil
}

// SessionOptions configures ServeSession.
type SessionOptions struct {
	// IOTimeout bounds each request read and response write; zero means
	// no deadline.
	IOTimeout time.Duration
	// JSONOnly refuses binary hellos with CodeUnsupportedProto (the
	// -wire-proto=json escape hatch).
	JSONOnly bool
	// MaxPipeline bounds concurrently-executing requests on a binary
	// connection; zero selects defaultPipelineDepth. JSON connections
	// are always serial.
	MaxPipeline int
}

// ServeSession runs one connection's request loop against handle,
// including the hello negotiation: it starts in the JSON line codec and
// switches to binary framing when the client asks and the options allow.
// JSON requests are handled serially in arrival order (the legacy
// contract); binary requests are pipelined — a reader goroutine decodes
// frames and fans them out to bounded concurrent handler goroutines, and
// a writer goroutine serializes responses back as they finish, each
// echoing its request's tag. ServeSession returns when the connection
// errors or closes; closing the conn from another goroutine (server
// shutdown) unblocks it.
func ServeSession(conn net.Conn, handle func(Request) Response, opts SessionOptions) {
	br := bufio.NewReaderSize(conn, 64<<10)
	enc := json.NewEncoder(conn)
	for {
		if opts.IOTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(opts.IOTimeout))
		}
		line, err := readLimitedLine(br)
		if err != nil {
			// An oversized line gets an explicit protocol error before
			// the connection closes — never a silent truncation or hang.
			if errors.Is(err, bufio.ErrTooLong) {
				_ = enc.Encode(Response{
					Error: fmt.Sprintf("request too large: line exceeds %d bytes", MaxLineBytes),
					Code:  CodeProtocol,
				})
			}
			return
		}
		var req Request
		resp := Response{}
		parseErr := json.Unmarshal(line, &req)
		switch {
		case parseErr != nil:
			resp.Error = fmt.Sprintf("malformed request: %v", parseErr)
			resp.Code = CodeProtocol
		case req.Op == OpHello:
			var switching bool
			resp, switching = helloResponse(req, opts)
			if switching {
				if opts.IOTimeout > 0 {
					_ = conn.SetWriteDeadline(time.Now().Add(opts.IOTimeout))
				}
				if err := enc.Encode(resp); err != nil {
					return
				}
				// The bufio.Reader carries over: bytes the client
				// pipelined behind its hello are already binary frames.
				serveBinary(conn, br, handle, opts)
				return
			}
		default:
			resp = handle(req)
		}
		if opts.IOTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(opts.IOTimeout))
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// helloResponse answers one hello request and reports whether the
// connection switches to binary framing after the response is written.
func helloResponse(req Request, opts SessionOptions) (Response, bool) {
	switch req.Proto {
	case "", ProtoJSON:
		return Response{OK: true, Proto: ProtoJSON}, false
	case ProtoBinary:
		if opts.JSONOnly {
			return Response{
				Error: "binary framing disabled on this server",
				Code:  CodeUnsupportedProto,
				Proto: ProtoJSON,
			}, false
		}
		return Response{OK: true, Proto: ProtoBinary}, true
	default:
		return Response{
			Error: fmt.Sprintf("unsupported protocol %q", req.Proto),
			Code:  CodeUnsupportedProto,
			Proto: ProtoJSON,
		}, false
	}
}

// readLimitedLine reads one newline-terminated line of at most
// MaxLineBytes, returning bufio.ErrTooLong beyond that (mirroring the
// bufio.Scanner contract serveConn historically relied on). A final
// unterminated line before EOF is returned as-is.
func readLimitedLine(br *bufio.Reader) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		// ReadSlice's return is only valid until the next read; the line
		// must be accumulated when it spans buffer fills.
		if buf == nil && err == nil {
			return chunk, nil
		}
		buf = append(buf, chunk...)
		switch {
		case err == nil:
			return buf, nil
		case errors.Is(err, bufio.ErrBufferFull):
			// A full buffer with no newline at the cap is oversized: the
			// scanner this replaced errored as soon as its MaxLineBytes
			// buffer filled, so waiting for more bytes here would hang a
			// peer that stopped exactly at the limit.
			if len(buf) >= MaxLineBytes {
				return nil, bufio.ErrTooLong
			}
		case errors.Is(err, io.EOF) && len(buf) > 0:
			return buf, nil
		default:
			return nil, err
		}
	}
}

// taggedResponse pairs a finished response with the request tag it
// answers.
type taggedResponse struct {
	tag  uint64
	resp Response
}

// serveBinary runs the pipelined binary loop: this goroutine reads and
// decodes frames, a bounded pool of handler goroutines executes them
// concurrently, and one writer goroutine serializes completed responses
// back in completion order.
func serveBinary(conn net.Conn, br *bufio.Reader, handle func(Request) Response, opts SessionOptions) {
	depth := opts.MaxPipeline
	if depth <= 0 {
		depth = defaultPipelineDepth
	}
	out := make(chan taggedResponse, depth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var frame []byte
		for tr := range out {
			payload, err := json.Marshal(tr.resp)
			if err != nil {
				// An unencodable response kills the connection, exactly
				// as in the JSON loop; the fuzzer pins that responses
				// always encode.
				_ = conn.Close()
				continue // drain the channel so handlers never block
			}
			frame = appendBinFrame(frame[:0], tr.tag, payload)
			if opts.IOTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(opts.IOTimeout))
			}
			if _, err := conn.Write(frame); err != nil {
				// Reader sees the closed conn and stops feeding us.
				_ = conn.Close()
			}
		}
	}()

	var wg sync.WaitGroup
	sem := make(chan struct{}, depth)
	for {
		if opts.IOTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(opts.IOTimeout))
		}
		tag, payload, err := readBinFrame(br)
		if err != nil {
			break
		}
		var req Request
		if uerr := json.Unmarshal(payload, &req); uerr != nil {
			out <- taggedResponse{tag, Response{
				Error: fmt.Sprintf("malformed request: %v", uerr),
				Code:  CodeProtocol,
			}}
			continue
		}
		if req.Op == OpHello {
			// Re-negotiation inside a binary stream is meaningless;
			// answer in-band rather than killing the pipeline.
			resp, _ := helloResponse(req, opts)
			resp.Proto = ProtoBinary
			out <- taggedResponse{tag, resp}
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(tag uint64, req Request) {
			defer wg.Done()
			resp := handle(req)
			<-sem
			out <- taggedResponse{tag, resp}
		}(tag, req)
	}
	wg.Wait()
	close(out)
	<-writerDone
}
