package wire

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/obs"
)

// DurabilityMode selects how the server makes admission state survive a
// crash. The modes trade per-op cost against the crash window:
//
//   - snapshot: the legacy mode — every mutation rewrites the full
//     snapshot (O(n) per op); a failed write warns and retries in the
//     background, so a crash between the ack and a completed snapshot can
//     lose acked mutations.
//   - journal: every mutation appends one O(1) journal record before the
//     ack; a failed append fails (and rolls back) the operation. Survives
//     a process crash exactly; a power loss can still lose the
//     OS-buffered tail.
//   - journal-sync: journal plus an fsync per record before the ack — an
//     acked mutation survives power loss. The strongest contract, tested
//     by the crash-point harness in internal/faultinject.
type DurabilityMode string

const (
	DurabilitySnapshot    DurabilityMode = "snapshot"
	DurabilityJournal     DurabilityMode = "journal"
	DurabilityJournalSync DurabilityMode = "journal-sync"
)

// ParseDurabilityMode validates a mode flag value.
func ParseDurabilityMode(s string) (DurabilityMode, error) {
	switch DurabilityMode(s) {
	case DurabilitySnapshot, DurabilityJournal, DurabilityJournalSync:
		return DurabilityMode(s), nil
	}
	return "", fmt.Errorf("wire: unknown durability mode %q (want snapshot, journal, or journal-sync)", s)
}

// Default compaction triggers: the journal folds into a fresh snapshot
// once it holds this many records or bytes, keeping replay time and disk
// growth bounded while the per-op cost stays O(1) amortized.
const (
	DefaultCompactRecords = 1024
	DefaultCompactBytes   = 1 << 20
)

// DurableConfig configures OpenDurable.
type DurableConfig struct {
	// StatePath is the snapshot file (cacd -state).
	StatePath string
	// JournalPath is the write-ahead log; empty means StatePath+".journal".
	JournalPath string
	// Mode defaults to DurabilitySnapshot.
	Mode DurabilityMode
	// FS defaults to the real filesystem; the crash harness injects here.
	FS journal.FS
	// CompactRecords and CompactBytes override the compaction triggers;
	// zero means the default.
	CompactRecords int
	CompactBytes   int64
}

// Durable binds a snapshot store and (in the journaled modes) a
// write-ahead log into one persistence component. Build it with
// OpenDurable, recover the network through Recover, then attach it to the
// server with SetDurable — appends happen under the server's persistence
// mutex, before each operation's ack.
type Durable struct {
	mode           DurabilityMode
	store          *StateStore
	fsys           journal.FS
	journalPath    string
	log            *journal.Log
	compactRecords int
	compactBytes   int64

	// viewConns/viewLinks mirror the durable admission state: the last
	// snapshot plus every journal record appended since (plus acked
	// warning-only link records whose append failed). Compaction in the
	// journaled modes folds this view — never the live network — into the
	// next snapshot. Capturing the live network would race with an
	// operation that has committed in memory but not yet appended: if its
	// append then fails and it rolls back, the refused mutation would
	// already sit in a durable snapshot and be resurrected by a crash.
	// Guarded by the server's persistMu; initialized by Recover.
	viewConns map[core.ConnID]core.ConnRequest
	viewLinks map[core.Link]struct{}

	// recoveredEpoch is the replication term Recover found on disk (the
	// snapshot trailer, raised by any higher record epoch in the
	// journal); SetDurable adopts it as the server's term.
	recoveredEpoch uint64
	// snapSeq is the watermark of the last written snapshot: journal
	// records at or below it are folded in and no longer available for
	// incremental catch-up. Guarded by the server's persistMu.
	snapSeq uint64
}

// initView seeds the durable view from the recovered state, at the point
// where the live network and the on-disk state are identical.
func (d *Durable) initView(conns []core.ConnRequest, links []core.Link) {
	d.viewConns = make(map[core.ConnID]core.ConnRequest, len(conns))
	for _, req := range conns {
		d.viewConns[req.ID] = req
	}
	d.viewLinks = make(map[core.Link]struct{}, len(links))
	for _, l := range links {
		d.viewLinks[l] = struct{}{}
	}
}

// applyView folds one journal record into the durable view, with the same
// idempotent semantics journal.Replay uses. Caller holds persistMu.
func (d *Durable) applyView(rec *journal.Record) {
	switch rec.Op {
	case journal.OpSetup:
		if rec.Request != nil {
			d.viewConns[rec.Request.ID] = *rec.Request
		}
	case journal.OpTeardown:
		delete(d.viewConns, rec.ID)
	case journal.OpFailLink:
		for _, id := range rec.Evicted {
			delete(d.viewConns, id)
		}
		for _, req := range rec.Readmitted {
			d.viewConns[req.ID] = req
		}
		d.viewLinks[core.Link{From: rec.From, To: rec.To}] = struct{}{}
	case journal.OpRestoreLink:
		delete(d.viewLinks, core.Link{From: rec.From, To: rec.To})
	case journal.OpShardPrepare:
		// Prepared holds are capacity in flight, not durable admitted
		// state: the self-contained commit record is what lands in the
		// view, so compaction folding the prepare away is harmless.
	case journal.OpShardCommit:
		if rec.Request != nil {
			d.viewConns[rec.Request.ID] = *rec.Request
		}
	case journal.OpShardAbort:
		if rec.ID != "" {
			delete(d.viewConns, rec.ID)
		}
	}
}

// viewState materializes the durable view in the snapshot's canonical
// order. Caller holds persistMu.
func (d *Durable) viewState() ([]core.ConnRequest, []core.Link) {
	conns := make([]core.ConnRequest, 0, len(d.viewConns))
	for _, req := range d.viewConns {
		conns = append(conns, req)
	}
	sort.Slice(conns, func(i, j int) bool { return conns[i].ID < conns[j].ID })
	links := make([]core.Link, 0, len(d.viewLinks))
	for l := range d.viewLinks {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	return conns, links
}

// OpenDurable validates cfg and builds the component. In the journaled
// modes the journal itself is opened (and a torn tail repaired) inside
// Recover, which must run before the server serves.
func OpenDurable(cfg DurableConfig) (*Durable, error) {
	if cfg.StatePath == "" {
		return nil, fmt.Errorf("wire: durable state requires a snapshot path")
	}
	mode := cfg.Mode
	if mode == "" {
		mode = DurabilitySnapshot
	}
	if _, err := ParseDurabilityMode(string(mode)); err != nil {
		return nil, err
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = journal.OSFS{}
	}
	jpath := cfg.JournalPath
	if jpath == "" {
		jpath = cfg.StatePath + ".journal"
	}
	records := cfg.CompactRecords
	if records <= 0 {
		records = DefaultCompactRecords
	}
	bytes := cfg.CompactBytes
	if bytes <= 0 {
		bytes = DefaultCompactBytes
	}
	return &Durable{
		mode:           mode,
		store:          NewStateStoreFS(cfg.StatePath, fsys),
		fsys:           fsys,
		journalPath:    jpath,
		compactRecords: records,
		compactBytes:   bytes,
	}, nil
}

// Mode returns the configured durability mode.
func (d *Durable) Mode() DurabilityMode { return d.mode }

// Store returns the snapshot store.
func (d *Durable) Store() *StateStore { return d.store }

// Close releases the journal handle; call it after the server is done.
func (d *Durable) Close() error {
	if d.log == nil {
		return nil
	}
	return d.log.Close()
}

// RecoveryReport summarizes one Recover pass.
type RecoveryReport struct {
	// Restored counts connections re-admitted through the full CAC check.
	Restored int
	// Failed lists connections that no longer fit (reported once; the
	// post-recovery compaction prunes them from the next snapshot).
	Failed []RestoreFailure
	// FailedLinks are the links restored as failed.
	FailedLinks []core.Link
	// JournalRecords counts valid journal records replayed past the
	// snapshot watermark.
	JournalRecords int
	// TornPath, when non-empty, is where a torn journal tail was
	// preserved before the journal was truncated at the last valid frame.
	TornPath string
	// ReapedPrepares lists shard transactions whose prepared hold was
	// found unresolved in the journal — the crash landed between the
	// prepare and the coordinator's decision. The holds are expired
	// (presumed abort): they are never re-admitted, and the coordinator
	// re-drives or aborts the transaction from its own intent log.
	ReapedPrepares []string
	// Warnings carries non-fatal findings (legacy snapshot without a
	// checksum, a link that could not be re-failed, ...).
	Warnings []string
}

// Recover rebuilds the network's admission state: load the snapshot,
// replay journal records past its watermark, re-fail the recorded links,
// then re-admit every surviving connection through the full CAC check —
// recovery must re-earn the paper's guarantees, not assume them. In the
// journaled modes the journal is then opened for appending and the
// replayed state is immediately compacted into a fresh snapshot, so
// failed re-admissions are pruned rather than re-persisted forever.
func (d *Durable) Recover(network *core.Network) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	st, warning, err := d.store.LoadState()
	if err != nil {
		return nil, err
	}
	if warning != "" {
		rep.Warnings = append(rep.Warnings, warning)
	}
	final := journal.State{Requests: st.Connections, FailedLinks: st.FailedLinks}
	d.recoveredEpoch = st.Epoch
	d.snapSeq = st.LastSeq
	journaled := d.mode != DurabilitySnapshot
	if journaled {
		log, scan, tornPath, err := journal.Open(d.fsys, d.journalPath)
		if err != nil {
			return nil, err
		}
		d.log = log
		rep.TornPath = tornPath
		if tornPath != "" {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("wire: journal %s had a torn tail; preserved at %s, truncated at byte %d",
					d.journalPath, tornPath, scan.Valid))
		}
		for _, rec := range scan.Records {
			if rec.Seq > st.LastSeq {
				rep.JournalRecords++
			}
			// The journal can outrun the snapshot's term: records appended
			// after a promotion whose compaction never landed. Recovery
			// must resume at the highest term ever persisted, or a
			// restarted node could ship records at a fenced epoch.
			if rec.Epoch > d.recoveredEpoch {
				d.recoveredEpoch = rec.Epoch
			}
		}
		final = journal.Replay(final, st.LastSeq, scan.Records)
		log.SetNextSeq(st.LastSeq + 1)
		rep.ReapedPrepares = final.ReapedPrepares
	}
	for _, l := range final.FailedLinks {
		if _, err := network.FailLink(l.From, l.To); err != nil {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("wire: recorded failed link %s could not be restored as failed: %v", l, err))
			continue
		}
		rep.FailedLinks = append(rep.FailedLinks, l)
	}
	for _, req := range final.Requests {
		if _, err := network.Setup(context.Background(), req); err != nil {
			rep.Failed = append(rep.Failed, RestoreFailure{ID: req.ID, Err: err})
			continue
		}
		rep.Restored++
	}
	// Fold the replayed state into a fresh snapshot: the journal empties,
	// failed re-admissions are pruned, and legacy array snapshots are
	// rewritten in the current format. Snapshot mode compacts only when
	// there was something to normalize, so a cold start does not create
	// an empty file.
	if journaled || len(rep.Failed) > 0 {
		st := PersistentState{
			Connections: network.AdmittedRequests(),
			FailedLinks: network.FailedLinks(),
			Epoch:       d.recoveredEpoch,
		}
		if d.log != nil {
			st.LastSeq = d.log.LastSeq()
		}
		if journaled {
			// Seed the durable view here, the one moment where memory and
			// disk provably agree (nothing serves yet).
			d.initView(st.Connections, st.FailedLinks)
		}
		if err := d.store.SaveState(st); err != nil {
			return nil, fmt.Errorf("wire: post-recovery compaction: %w", err)
		}
		if d.log != nil {
			if err := d.log.Reset(); err != nil {
				return nil, fmt.Errorf("wire: post-recovery compaction: %w", err)
			}
		}
		d.snapSeq = st.LastSeq
	}
	return rep, nil
}

// SetDurable attaches the persistence component: every successful setup,
// teardown, fail-link and restore-link is journaled or snapshotted
// (by mode) before the response acks. It must be called before Serve,
// after Recover. The server adopts the replication term recovery found
// on disk.
func (s *Server) SetDurable(d *Durable) {
	s.dur = d
	s.persistMu.Lock()
	if d != nil && d.recoveredEpoch > s.epoch {
		s.epoch = d.recoveredEpoch
	}
	s.persistMu.Unlock()
}

// journaled reports whether per-op persistence appends to the journal.
func (d *Durable) journaled() bool {
	return d.log != nil && d.mode != DurabilitySnapshot
}

// appendLocked appends one record (fsynced in journal-sync mode), ships
// it to the standby when a shipper is attached, and compacts when the
// journal outgrows its triggers. The caller holds persistMu. The
// returned warning flags a deferred compaction or ship; the error means
// the record is not durable — or, wrapped in ErrNotReplicated, that it
// landed locally but the replication mode refused it and a compensating
// invert record was appended — and the operation must not ack.
//
// invert, when non-nil, is the record's logical inverse (teardown for a
// setup, setup for a teardown). A ship failure appends it so the local
// journal's replay equals the rolled-back memory state: without it, a
// crash after the refused op would resurrect a mutation the client was
// told did not happen. Warning-only operations pass nil and degrade a
// ship failure to a warning (standby catch-up heals the gap).
func (s *Server) appendLocked(rec, invert *journal.Record) (string, error) {
	op := string(rec.Op)
	if cp := s.crashPoints; cp != nil && cp.PreAppend != nil {
		cp.PreAppend(op)
	}
	rec.Epoch = s.epoch
	payload, err := s.dur.log.AppendPayload(rec, s.dur.mode == DurabilityJournalSync)
	if err != nil {
		return "", err
	}
	s.dur.applyView(rec)
	if cp := s.crashPoints; cp != nil && cp.PostAppend != nil {
		cp.PostAppend(op, rec.Seq)
	}
	var warnings []string
	if sh := s.shipper; sh != nil {
		if serr := sh.Ship(rec.Seq, rec.Epoch, payload); serr != nil {
			if invert != nil {
				s.compensateLocked(invert)
				return "", fmt.Errorf("%w: %v", ErrNotReplicated, serr)
			}
			warnings = append(warnings,
				fmt.Sprintf("replication of %s seq %d deferred (standby catch-up will heal): %v", op, rec.Seq, serr))
		} else if cp := s.crashPoints; cp != nil && cp.PostShip != nil {
			cp.PostShip(op, rec.Seq)
		}
	}
	if s.dur.log.Count() >= s.dur.compactRecords || s.dur.log.Size() >= s.dur.compactBytes {
		if err := s.compactLocked(); err != nil {
			if errors.Is(err, errJournalReset) {
				// The snapshot saved, so this record (and everything
				// before it) is durable under the watermark. Only the
				// journal itself is out of service; no retry would help.
				warnings = append(warnings, fmt.Sprintf("journal out of service after compaction: %v", err))
			} else {
				// The record itself is durable; only the fold-in is deferred.
				s.scheduleRetry()
				warnings = append(warnings, fmt.Sprintf("journal compaction deferred (will retry): %v", err))
			}
		}
	}
	return strings.Join(warnings, "; "), nil
}

// compensateLocked appends the inverse of a locally durable record whose
// replication was refused, so journal replay matches the rolled-back
// memory. The compensation is also shipped best-effort: in semi-sync
// mode the original may have reached (and been applied by) the standby
// even though its confirmation did not arrive in time, and the invert
// undoes it there too — with standby catch-up as the backstop, since the
// invert is in the journal. If even the compensating append fails the
// log is marked broken: recovery must rescan rather than trust a journal
// whose replay no longer matches what clients were told.
func (s *Server) compensateLocked(invert *journal.Record) {
	invert.Epoch = s.epoch
	payload, err := s.dur.log.AppendPayload(invert, s.dur.mode == DurabilityJournalSync)
	if err != nil {
		s.dur.log.MarkBroken()
		return
	}
	s.dur.applyView(invert)
	if sh := s.shipper; sh != nil {
		sh.ShipBestEffort(invert.Seq, invert.Epoch, payload)
	}
}

// persistSnapshotWarn is the legacy warning-only snapshot path: on
// failure the operation still succeeded — admission state is
// authoritative in memory — so a background retry is scheduled and the
// warning tells the client the snapshot is deferred.
func (s *Server) persistSnapshotWarn() string {
	if err := s.snapshot(); err != nil {
		s.scheduleRetry()
		return fmt.Sprintf("state snapshot deferred (will retry): %v", err)
	}
	return ""
}

// persistSetup makes an admitted setup durable before its ack. In the
// journaled modes a failed append — or an unsatisfied replication mode —
// is returned as an error: the caller rolls the in-memory admission
// back, because acking a setup that a crash (or a failover) would erase
// violates the durability contract.
func (s *Server) persistSetup(req core.ConnRequest) (string, error) {
	if s.dur == nil {
		return "", nil
	}
	if !s.dur.journaled() {
		return s.persistSnapshotWarn(), nil
	}
	rec := &journal.Record{Op: journal.OpSetup, Request: &req}
	invert := &journal.Record{Op: journal.OpTeardown, ID: req.ID}
	if s.groupCommitEnabled() {
		return s.persistGrouped(rec, invert)
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.appendLocked(rec, invert)
}

// persistTeardown makes a teardown durable before its ack; same error
// contract as persistSetup. undo, when known, is the torn-down request,
// used as the compensating record if replication refuses the teardown.
func (s *Server) persistTeardown(id core.ConnID, undo *core.ConnRequest) (string, error) {
	if s.dur == nil {
		return "", nil
	}
	if !s.dur.journaled() {
		return s.persistSnapshotWarn(), nil
	}
	var invert *journal.Record
	if undo != nil {
		invert = &journal.Record{Op: journal.OpSetup, Request: undo}
	}
	rec := &journal.Record{Op: journal.OpTeardown, ID: id}
	if s.groupCommitEnabled() && invert != nil {
		return s.persistGrouped(rec, invert)
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.appendLocked(rec, invert)
}

// groupCommitEnabled reports whether per-op fsyncs may coalesce into
// shared group commits. Only the journal-sync mode fsyncs per ack, and
// only without a replication shipper: shipping must follow a successful
// fsync in journal order under persistMu, which the deferred group
// fsync would reorder, so replicated setups keep the per-record path.
func (s *Server) groupCommitEnabled() bool {
	return s.dur.mode == DurabilityJournalSync && s.shipper == nil
}

// commitGroup is one group-commit accumulator generation: the set of
// operations whose unsynced journal records the next fsync will cover.
// Members register the view-level inverse of their record when they
// join; a failed group fsync truncates every member's record from the
// journal, and the leader applies the inverts in the same persistMu
// critical section so the durable view never disagrees with the journal
// across a snapshot.
type commitGroup struct {
	done    chan struct{}
	inverts []*journal.Record
	err     error
}

// persistGrouped appends one record without its own fsync and waits for
// the shared group commit covering it, so concurrent pipelined
// operations coalesce into a single fsync. The append, the view
// application and the group registration share one persistMu critical
// section. The group's creator is its leader: it re-acquires persistMu,
// freezes the group's membership and pays the one fsync for everyone.
// Operations arriving while the leader holds persistMu queue behind it
// and become the next group — coalescing emerges from the fsync latency
// itself, with no timer and no background goroutine.
//
// Because joins are frozen under the same lock the fsync runs under,
// the journal's unsynced tail at fsync time is exactly the group's
// record set. On failure the journal truncates that tail (journal.Sync)
// and the leader applies every member's view invert before releasing
// persistMu, so no snapshot can fold a connection whose record the
// failed fsync just erased. The returned error then makes each member
// roll back its network mutation and refuse with not-durable — the
// group-wide error fan-out the durability contract requires.
func (s *Server) persistGrouped(rec, invert *journal.Record) (string, error) {
	op := string(rec.Op)
	if cp := s.crashPoints; cp != nil && cp.PreAppend != nil {
		cp.PreAppend(op)
	}
	s.persistMu.Lock()
	rec.Epoch = s.epoch
	if _, err := s.dur.log.AppendPayload(rec, false); err != nil {
		s.persistMu.Unlock()
		return "", err
	}
	s.dur.applyView(rec)
	g := s.gcPending
	leader := g == nil
	if leader {
		g = &commitGroup{done: make(chan struct{})}
		s.gcPending = g
	}
	g.inverts = append(g.inverts, invert)
	s.persistMu.Unlock()
	if cp := s.crashPoints; cp != nil && cp.PostAppend != nil {
		cp.PostAppend(op, rec.Seq)
	}
	if leader {
		start := time.Now()
		s.persistMu.Lock()
		s.gcPending = nil // freeze membership; later arrivals form the next group
		err := s.dur.log.Sync()
		if err != nil {
			for _, inv := range g.inverts {
				s.dur.applyView(inv)
			}
		}
		s.persistMu.Unlock()
		g.err = err
		close(g.done)
		if tr := s.tracer; tr != nil {
			ev := obs.Event{
				Kind:     obs.KindGroupCommit,
				Records:  len(g.inverts),
				Duration: time.Since(start),
				Outcome:  obs.OutcomeOK,
			}
			if err != nil {
				ev.Outcome = obs.OutcomeError
			}
			tr.Trace(ev)
		}
	}
	<-g.done
	if g.err != nil {
		return "", g.err
	}
	// The record is durable; check the compaction triggers exactly as
	// the per-record path does after its fsync.
	var warning string
	s.persistMu.Lock()
	if s.dur.log.Count() >= s.dur.compactRecords || s.dur.log.Size() >= s.dur.compactBytes {
		if err := s.compactLocked(); err != nil {
			if errors.Is(err, errJournalReset) {
				warning = fmt.Sprintf("journal out of service after compaction: %v", err)
			} else {
				s.scheduleRetry()
				warning = fmt.Sprintf("journal compaction deferred (will retry): %v", err)
			}
		}
	}
	s.persistMu.Unlock()
	return warning, nil
}

// persistFailLink records a link failure with its evictions and wrapped
// re-admissions. Fail-link is recovery-class: the link is already failed
// and the evictions already happened, so a persistence failure degrades
// to a warning plus the background retry (which snapshots the live state
// and thus converges), never a refusal to heal.
func (s *Server) persistFailLink(from, to string, evicted []core.ConnID, readmitted []core.ConnRequest) string {
	if s.dur == nil {
		return ""
	}
	if !s.dur.journaled() {
		return s.persistSnapshotWarn()
	}
	rec := &journal.Record{
		Op: journal.OpFailLink, From: from, To: to,
		Evicted: evicted, Readmitted: readmitted,
	}
	s.persistMu.Lock()
	warning, err := s.appendLocked(rec, nil)
	if err != nil {
		// The op stays acked even though its record did not land, so fold
		// it into the durable view by hand — the background retry
		// snapshots the view and thus converges on it.
		s.dur.applyView(rec)
	}
	s.persistMu.Unlock()
	if err != nil {
		s.scheduleRetry()
		return fmt.Sprintf("fail-link journal append deferred (will retry as snapshot): %v", err)
	}
	return warning
}

// persistRestoreLink records a healed link; warning-only like
// persistFailLink.
func (s *Server) persistRestoreLink(from, to string) string {
	if s.dur == nil {
		return ""
	}
	if !s.dur.journaled() {
		return s.persistSnapshotWarn()
	}
	rec := &journal.Record{Op: journal.OpRestoreLink, From: from, To: to}
	s.persistMu.Lock()
	warning, err := s.appendLocked(rec, nil)
	if err != nil {
		// Acked warning-only op: fold into the view despite the failed
		// append, as in persistFailLink.
		s.dur.applyView(rec)
	}
	s.persistMu.Unlock()
	if err != nil {
		s.scheduleRetry()
		return fmt.Sprintf("restore-link journal append deferred (will retry as snapshot): %v", err)
	}
	return warning
}
