package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// startServerWith runs a CAC server on a loopback listener after applying
// configure, returning a connected client and the server.
func startServerWith(t *testing.T, configure func(*Server)) (*Client, *Server, core.Route) {
	t.Helper()
	network := core.NewNetwork(core.HardCDV{})
	route := make(core.Route, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("sw%d", i)
		if _, err := network.AddSwitch(core.SwitchConfig{
			Name: name, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
		route[i] = core.Hop{Switch: name, In: 1, Out: 0}
	}
	srv := NewServer(network)
	if configure != nil {
		configure(srv)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		<-done
	})
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client, srv, route
}

// TestOversizedRequestGetsError: a line beyond MaxLineBytes draws an
// explicit protocol error response before the connection closes — not a
// silent disconnect.
func TestOversizedRequestGetsError(t *testing.T) {
	client, _, _ := startServerWith(t, nil)
	conn, err := net.Dial("tcp", clientAddr(t, client))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Exactly MaxLineBytes with no newline fills the scanner's buffer, which
	// is the oversized condition; not writing more avoids racing the close.
	huge := make([]byte, MaxLineBytes)
	for i := range huge {
		huge[i] = 'x'
	}
	if _, err := conn.Write(huge); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReaderSize(conn, 4096).ReadString('\n')
	if err != nil {
		t.Fatalf("no response before close: %v", err)
	}
	if !strings.Contains(line, "request too large") {
		t.Errorf("response = %q, want request-too-large error", line)
	}
}

func TestFailLinkRestoreLinkHealthOps(t *testing.T) {
	var handled []core.ConnID
	client, _, route := startServerWith(t, func(s *Server) {
		s.SetFailoverHandler(func(from, to string, evicted []core.ConnRequest) []ReadmitOutcome {
			outs := make([]ReadmitOutcome, 0, len(evicted))
			for _, r := range evicted {
				handled = append(handled, r.ID)
				outs = append(outs, ReadmitOutcome{ID: r.ID, Readmitted: true, Attempts: 1})
			}
			return outs
		})
	})
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Connections != 1 || len(h.FailedLinks) != 0 || h.Violations != 0 || h.Draining {
		t.Fatalf("health = %+v", h)
	}
	report, err := client.FailLink(context.Background(), "sw0", "sw1")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != 1 || report.Outcomes[0].ID != "c1" || !report.Outcomes[0].Readmitted {
		t.Fatalf("report = %+v", report)
	}
	if len(handled) != 1 || handled[0] != "c1" {
		t.Fatalf("handler saw %v", handled)
	}
	h, err = client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.FailedLinks) != 1 || h.FailedLinks[0] != (core.Link{From: "sw0", To: "sw1"}) {
		t.Fatalf("health after failure = %+v", h)
	}
	if err := client.RestoreLink(context.Background(), "sw0", "sw1"); err != nil {
		t.Fatal(err)
	}
	if err := client.RestoreLink(context.Background(), "sw0", "sw1"); err == nil {
		t.Error("restoring a healthy link succeeded")
	}
	if _, err := client.FailLink(context.Background(), "sw0", "sw0"); err == nil {
		t.Error("failing a self-link succeeded")
	}
	h, err = client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.FailedLinks) != 0 {
		t.Fatalf("health after restore = %+v", h)
	}
}

func TestFailLinkWithoutHandlerReportsDown(t *testing.T) {
	client, _, route := startServerWith(t, nil)
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	report, err := client.FailLink(context.Background(), "sw0", "sw1")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != 1 || report.Outcomes[0].Readmitted ||
		!strings.Contains(report.Outcomes[0].Error, "no failover handler") {
		t.Fatalf("report = %+v", report)
	}
}

// TestShutdownDrains: Shutdown unblocks idle sessions, stops the accept
// loop, and writes a final state snapshot.
func TestShutdownDrains(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	client, srv, route := startServerWith(t, func(s *Server) {
		s.SetStateStore(NewStateStore(statePath))
	})
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "keep", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot so only Shutdown's final write can fix it.
	if err := os.WriteFile(statePath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The idle client's next round-trip fails cleanly.
	if _, err := client.List(context.Background()); err == nil {
		t.Error("client still served after drain")
	}
	reqs, _, err := NewStateStore(statePath).Load()
	if err != nil {
		t.Fatalf("final snapshot unreadable: %v", err)
	}
	if len(reqs) != 1 || reqs[0].ID != "keep" {
		t.Fatalf("final snapshot = %+v", reqs)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestPersistFailureWarnsAndRetries: a failing snapshot does not fail the
// operation; the response carries a warning and a background retry
// eventually lands the state once the store becomes writable.
func TestPersistFailureWarnsAndRetries(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "missing", "state.json")
	client, _, route := startServerWith(t, func(s *Server) {
		s.SetStateStore(NewStateStore(statePath))
	})
	resp, err := client.call(context.Background(), Request{Op: OpSetup, Request: &core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Admission == nil {
		t.Fatalf("setup failed outright: %+v", resp)
	}
	if !strings.Contains(resp.Warning, "deferred") {
		t.Fatalf("warning = %q, want deferred-snapshot warning", resp.Warning)
	}
	// Make the directory appear; the background retry should now succeed.
	if err := os.MkdirAll(filepath.Dir(statePath), 0o755); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if reqs, _, err := NewStateStore(statePath).Load(); err == nil && len(reqs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background persist retry never landed the snapshot")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestIOTimeoutDropsIdleConnection: with an IO timeout set, a client that
// never sends a request is disconnected instead of pinning a handler
// goroutine forever.
func TestIOTimeoutDropsIdleConnection(t *testing.T) {
	client, _, _ := startServerWith(t, func(s *Server) {
		s.SetIOTimeout(500 * time.Millisecond)
	})
	addr := clientAddr(t, client)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection not dropped")
	}
	// A client that sends within the deadline still works.
	fresh, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.List(context.Background()); err != nil {
		t.Fatalf("active client dropped: %v", err)
	}
}
