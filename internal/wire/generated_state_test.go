package wire

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/routing"
	"atmcac/internal/topology"
	"atmcac/internal/workload"
)

// generatedStateCase builds a generated topology, routes a sampled fleet
// across it host-to-host, and returns the network plus the admissible
// requests — the inputs the state codec must preserve exactly. Everything
// derives from the fixed seed, so the same case reproduces bit-identically
// in the fuzz corpus and the round-trip test.
func generatedStateCase(tb testing.TB, seed uint64) (*core.Network, []core.ConnRequest) {
	tb.Helper()
	g, err := topology.Campus(topology.CampusConfig{
		Buildings: 2, FloorsPerBuilding: 2, HostsPerFloor: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	n, err := routing.BuildNetwork(g, map[core.Priority]float64{1: 32, 2: 128}, core.HardCDV{})
	if err != nil {
		tb.Fatal(err)
	}
	fleet, err := workload.SampleFleet(seed, workload.FleetConfig{}, 24)
	if err != nil {
		tb.Fatal(err)
	}
	// Host endpoints in fixed pair order; templates cycle across them.
	var hosts []topology.NodeID
	for b := 0; b < 2; b++ {
		for f := 0; f < 2; f++ {
			hosts = append(hosts, topology.CampusHost(b, f, 0))
		}
	}
	var admitted []core.ConnRequest
	for i, tmpl := range fleet {
		from := hosts[i%len(hosts)]
		to := hosts[(i+1)%len(hosts)]
		route, err := routing.Route(g, from, to)
		if err != nil {
			tb.Fatalf("route %s -> %s: %v", from, to, err)
		}
		req := core.ConnRequest{
			ID:         core.ConnID(fmt.Sprintf("gen-%d", i)),
			Spec:       tmpl.Spec,
			Priority:   tmpl.Priority,
			Route:      route,
			DelayBound: 512,
		}
		if _, err := n.Setup(context.Background(), req); err != nil {
			continue // fleet member rejected by CAC; snapshot holds admitted only
		}
		admitted = append(admitted, req)
	}
	if len(admitted) == 0 {
		tb.Fatal("generated case admitted no connections; seed or fleet config degenerate")
	}
	return n, admitted
}

// TestStateRoundTripGeneratedTopology runs a generated-campus admission
// state through the codec: Save, Load, and Restore onto a freshly built
// network of the same topology must reproduce the connection set exactly.
func TestStateRoundTripGeneratedTopology(t *testing.T) {
	_, admitted := generatedStateCase(t, 42)
	t.Logf("generated case admitted %d/24 fleet members", len(admitted))

	store := NewStateStore(filepath.Join(t.TempDir(), "state.json"))
	if err := store.Save(admitted); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, _, err := store.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(back) != len(admitted) {
		t.Fatalf("round trip changed length: %d -> %d", len(admitted), len(back))
	}
	for i := range admitted {
		if back[i].ID != admitted[i].ID ||
			back[i].Spec != admitted[i].Spec ||
			back[i].Priority != admitted[i].Priority ||
			back[i].DelayBound != admitted[i].DelayBound ||
			len(back[i].Route) != len(admitted[i].Route) {
			t.Fatalf("round trip drifted at %d:\n  sent %+v\n  got  %+v", i, admitted[i], back[i])
		}
		for h := range admitted[i].Route {
			if back[i].Route[h] != admitted[i].Route[h] {
				t.Fatalf("route hop %d of %s drifted: %+v -> %+v",
					h, admitted[i].ID, admitted[i].Route[h], back[i].Route[h])
			}
		}
	}

	// Restore onto a fresh network of the same generated topology: every
	// request that was admissible originally must be admissible again.
	g, err := topology.Campus(topology.CampusConfig{Buildings: 2, FloorsPerBuilding: 2, HostsPerFloor: 1})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := routing.BuildNetwork(g, map[core.Priority]float64{1: 32, 2: 128}, core.HardCDV{})
	if err != nil {
		t.Fatal(err)
	}
	restored, failed, _, err := Restore(empty, store)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if len(failed) != 0 || restored != len(admitted) {
		t.Fatalf("Restore recovered %d with %d failures, want %d with 0", restored, len(failed), len(admitted))
	}
	if viols, err := empty.Audit(); err != nil || len(viols) != 0 {
		t.Fatalf("restored network audit: %d violations, err=%v", len(viols), err)
	}
}

// generatedCorpusSeed serializes the generated-topology admitted set for
// the FuzzStateRoundTrip corpus. Corpus generation must never fail, so it
// uses a throwaway testing.T via a subtest-free fuzz seed path.
func generatedCorpusSeed(f *testing.F, seed uint64) []byte {
	f.Helper()
	_, admitted := generatedStateCase(f, seed)
	data, err := json.Marshal(admitted)
	if err != nil {
		f.Fatal(err)
	}
	return data
}
