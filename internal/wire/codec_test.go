package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// oneShot runs a single-request session against a fresh server over an
// in-memory pipe and returns the response, once through the JSON line
// codec and once through the negotiated binary framing, so the two
// transports can be compared byte for byte.
func oneShot(tb testing.TB, line []byte, binaryFraming bool) (Response, error) {
	tb.Helper()
	cli, srvConn := net.Pipe()
	defer cli.Close()
	srv := NewServer(fuzzNetwork(tb))
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeSession(srvConn, srv.dispatch, SessionOptions{})
	}()
	defer func() { _ = srvConn.Close(); <-done }()
	_ = cli.SetDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(cli)
	if !binaryFraming {
		if _, err := cli.Write(append(append([]byte(nil), line...), '\n')); err != nil {
			return Response{}, err
		}
		respLine, err := readLimitedLine(br)
		if err != nil {
			return Response{}, err
		}
		var resp Response
		if err := json.Unmarshal(respLine, &resp); err != nil {
			return Response{}, err
		}
		return resp, nil
	}
	if _, err := fmt.Fprintf(cli, "{\"op\":\"hello\",\"proto\":\"binary\"}\n"); err != nil {
		return Response{}, err
	}
	helloLine, err := readLimitedLine(br)
	if err != nil {
		return Response{}, err
	}
	var hello Response
	if err := json.Unmarshal(helloLine, &hello); err != nil {
		return Response{}, err
	}
	if !hello.OK || hello.Proto != ProtoBinary {
		return Response{}, fmt.Errorf("hello refused: %+v", hello)
	}
	const tag = 7
	if _, err := cli.Write(appendBinFrame(nil, tag, line)); err != nil {
		return Response{}, err
	}
	gotTag, payload, err := readBinFrame(br)
	if err != nil {
		return Response{}, err
	}
	if gotTag != tag {
		return Response{}, fmt.Errorf("response tag %d, want %d", gotTag, tag)
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// FuzzCodecParity is the differential fuzzer pinning the tentpole's
// compatibility claim: for any request payload, the JSON line codec and
// the negotiated binary framing produce the same response from the same
// server state. The transports may differ only in framing, never in
// meaning.
func FuzzCodecParity(f *testing.F) {
	f.Add([]byte(`{"op": "setup", "request": {"id": "press-42", "spec": {"pcr": 0.5, "scr": 0.05, "mbs": 8, "cdvt": 12}, "priority": 1, "route": [{"switch": "ring00", "in": 1, "out": 0}, {"switch": "ring01", "in": 0, "out": 0}], "delayBound": 64, "sourceCDV": 0}}`))
	f.Add([]byte(`{"op": "teardown", "id": "conn-id"}`))
	f.Add([]byte(`{"op": "list"}`))
	f.Add([]byte(`{"op": "bound", "route": [{"switch": "ring00", "in": 1, "out": 0}], "priority": 1}`))
	f.Add([]byte(`{"op": "inspect"}`))
	f.Add([]byte(`{"op": "audit"}`))
	f.Add([]byte(`{"op": "health"}`))
	f.Add([]byte(`{"op": "batch-setup", "requests": [{"id": "a", "spec": {"pcr": 0.1}, "priority": 1, "route": [{"switch": "ring00", "in": 1, "out": 0}]}]}`))
	f.Add([]byte(`{"op": "batch-teardown", "ids": ["a", "b"]}`))
	f.Add([]byte(`{"op": "setup"}`))
	f.Add([]byte(`{"op": ""}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte("\x00\xff{"))

	f.Fuzz(func(t *testing.T, line []byte) {
		if len(line) == 0 || len(line) >= MaxLineBytes || bytes.ContainsAny(line, "\n\r") {
			// A newline is framing on the JSON side and payload on the
			// binary side; parity is only defined for one-line payloads.
			return
		}
		var probe Request
		if err := json.Unmarshal(line, &probe); err == nil {
			if probe.Op == OpHello {
				// Negotiation is transport-specific by design: the JSON
				// loop switches codecs, the binary loop answers in-band.
				return
			}
			if probe.TimeoutMillis != 0 {
				// A propagated deadline races the handler; outcomes are
				// legitimately timing-dependent.
				return
			}
		}
		jsonResp, jsonErr := oneShot(t, line, false)
		binResp, binErr := oneShot(t, line, true)
		if (jsonErr == nil) != (binErr == nil) {
			t.Fatalf("transport divergence for %q: json err=%v, binary err=%v", line, jsonErr, binErr)
		}
		if jsonErr != nil {
			return
		}
		jb, err := json.Marshal(jsonResp)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := json.Marshal(binResp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jb, bb) {
			t.Fatalf("codec parity broken for %q:\n  json:   %s\n  binary: %s", line, jb, bb)
		}
	})
}

// TestHelloNegotiatesBinary: Dial against a default server lands on the
// binary framing and the client works end to end on it.
func TestHelloNegotiatesBinary(t *testing.T) {
	client, route := startServer(t, nil)
	if client.Proto() != ProtoBinary {
		t.Fatalf("negotiated proto = %q, want binary", client.Proto())
	}
	adm, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adm.ID != "c1" {
		t.Fatalf("admission = %+v", adm)
	}
	if err := client.Teardown(context.Background(), "c1"); err != nil {
		t.Fatal(err)
	}
}

// TestHelloRefusedByJSONOnlyServer: a -wire-proto=json server answers the
// hello with unsupported-proto and the client transparently stays on the
// JSON codec — old clients and pinned servers keep interoperating.
func TestHelloRefusedByJSONOnlyServer(t *testing.T) {
	client, _, route := startServerWith(t, func(s *Server) { s.SetJSONOnly(true) })
	if client.Proto() != ProtoJSON {
		t.Fatalf("proto against JSON-only server = %q, want json", client.Proto())
	}
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	// The refusal itself carries the stable code for raw-protocol peers.
	conn, err := net.Dial("tcp", clientAddr(t, client))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "{\"op\":\"hello\",\"proto\":\"binary\"}\n"); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeUnsupportedProto || resp.Proto != ProtoJSON {
		t.Fatalf("refusal = %+v, want code %q proto json", resp, CodeUnsupportedProto)
	}
}

// TestHelloUnknownProtoRefused: an unrecognized protocol name draws
// unsupported-proto, and the connection stays usable on JSON.
func TestHelloUnknownProtoRefused(t *testing.T) {
	client, _ := startServer(t, nil)
	conn, err := net.Dial("tcp", clientAddr(t, client))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := fmt.Fprintf(conn, "{\"op\":\"hello\",\"proto\":\"carrier-pigeon\"}\n"); err != nil {
		t.Fatal(err)
	}
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, CodeUnsupportedProto) {
		t.Fatalf("response = %q, want %s", line, CodeUnsupportedProto)
	}
	if _, err := fmt.Fprintf(conn, "{\"op\":\"list\"}\n"); err != nil {
		t.Fatal(err)
	}
	line, err = br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, `"ok":true`) {
		t.Fatalf("connection unusable after refused hello: %q", line)
	}
}

// TestDialJSONAgainstBinaryDefaultServer: a client that never sends the
// hello gets the full legacy JSON contract from a binary-default server.
func TestDialJSONAgainstBinaryDefaultServer(t *testing.T) {
	client, route := startServer(t, nil)
	jc, err := DialJSON(clientAddr(t, client))
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	if jc.Proto() != ProtoJSON {
		t.Fatalf("DialJSON proto = %q", jc.Proto())
	}
	if _, err := jc.Setup(context.Background(), core.ConnRequest{
		ID: "legacy", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	ids, err := jc.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "legacy" {
		t.Fatalf("List = %v", ids)
	}
	if err := jc.Teardown(context.Background(), "legacy"); err != nil {
		t.Fatal(err)
	}
}

// TestDialFallsBackOnSilentServer: a listener that accepts but never
// answers the hello must not hang Dial forever — the client falls back
// to a JSON connection and the caller's per-call deadlines take over.
func TestDialFallsBackOnSilentServer(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the hello timeout")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()
	start := time.Now()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatalf("Dial = %v, want JSON fallback", err)
	}
	defer client.Close()
	if client.Proto() != ProtoJSON {
		t.Fatalf("proto after silent hello = %q, want json", client.Proto())
	}
	if elapsed := time.Since(start); elapsed > helloTimeout+5*time.Second {
		t.Fatalf("Dial took %v, want ~%v", elapsed, helloTimeout)
	}
}

// TestPipelinedClientConcurrency hammers one binary connection from many
// goroutines: every request must get its own response back (tags never
// cross-wire) with no head-of-line blocking deadlocks.
func TestPipelinedClientConcurrency(t *testing.T) {
	client, route := startServer(t, map[core.Priority]float64{1: 1 << 20})
	if client.Proto() != ProtoBinary {
		t.Fatalf("proto = %q, want binary", client.Proto())
	}
	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				id := core.ConnID(fmt.Sprintf("p%d-%d", w, k))
				r := make(core.Route, len(route))
				copy(r, route)
				for h := range r {
					r[h].In = core.PortID(w + 1)
				}
				adm, err := client.Setup(context.Background(), core.ConnRequest{
					ID: id, Spec: traffic.CBR(0.0001), Priority: 1, Route: r,
				})
				if err != nil {
					errs <- fmt.Errorf("setup %s: %w", id, err)
					return
				}
				if adm.ID != id {
					errs <- fmt.Errorf("tag cross-wire: asked %s, got admission for %s", id, adm.ID)
					return
				}
				if err := client.Teardown(context.Background(), id); err != nil {
					errs <- fmt.Errorf("teardown %s: %w", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("connections left behind: %v", ids)
	}
}

// TestPipelinedCancellationLeavesConnectionUsable: abandoning a waiter on
// context cancellation must not kill the binary connection (unlike the
// JSON codec, where a cut read desyncs the stream).
func TestPipelinedCancellationLeavesConnectionUsable(t *testing.T) {
	client, route := startServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Setup(ctx, core.ConnRequest{
		ID: "gone", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled setup = %v, want context.Canceled", err)
	}
	// The connection still works; the abandoned response was dropped.
	for i := 0; i < 3; i++ {
		if _, err := client.List(context.Background()); err != nil {
			t.Fatalf("connection dead after cancellation: %v", err)
		}
	}
}

// TestBinaryCorruptFrameKillsConnection: a frame whose CRC does not match
// its payload is a hard protocol error — the stream position is gone, so
// the server must drop the connection rather than guess.
func TestBinaryCorruptFrameKillsConnection(t *testing.T) {
	client, _ := startServer(t, nil)
	conn, err := net.Dial("tcp", clientAddr(t, client))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := fmt.Fprintf(conn, "{\"op\":\"hello\",\"proto\":\"binary\"}\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := readLimitedLine(br); err != nil {
		t.Fatal(err)
	}
	frame := appendBinFrame(nil, 1, []byte(`{"op":"list"}`))
	frame[binCRCOff] ^= 0xff
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, _, err := readBinFrame(br); err == nil {
		t.Fatal("server answered a corrupt frame")
	}
}

// TestBinaryOversizedFrameRefused: a length prefix beyond MaxLineBytes is
// refused without allocating or reading the payload.
func TestBinaryOversizedFrameRefused(t *testing.T) {
	client, _ := startServer(t, nil)
	conn, err := net.Dial("tcp", clientAddr(t, client))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := fmt.Fprintf(conn, "{\"op\":\"hello\",\"proto\":\"binary\"}\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := readLimitedLine(br); err != nil {
		t.Fatal(err)
	}
	var hdr [binHdrSize]byte
	binary.BigEndian.PutUint32(hdr[binLenOff:], MaxLineBytes+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, _, err := readBinFrame(br); err == nil {
		t.Fatal("server accepted an oversized frame header")
	}
}

// TestBinFrameRoundTrip pins the frame layout: length, CRC and tag are
// big-endian at fixed offsets, and a frame survives append/read.
func TestBinFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"op":"list"}`)
	frame := appendBinFrame(nil, 0xdeadbeefcafe, payload)
	if len(frame) != binHdrSize+len(payload) {
		t.Fatalf("frame length %d, want %d", len(frame), binHdrSize+len(payload))
	}
	if got := binary.BigEndian.Uint32(frame[binLenOff:]); got != uint32(len(payload)) {
		t.Fatalf("length field = %d", got)
	}
	tag, back, err := readBinFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if tag != 0xdeadbeefcafe || !bytes.Equal(back, payload) {
		t.Fatalf("round trip: tag=%x payload=%q", tag, back)
	}
}
