package wire

import (
	"errors"
	"fmt"

	"atmcac/internal/journal"
	"atmcac/internal/obs"
)

// Replication protocol operations.
const (
	// OpPromote asks this node to take over as primary at a new epoch.
	// Sent to a standby (cacctl promote) it completes a failover; a
	// fenced ex-primary refuses it.
	OpPromote = "promote"
	// OpReplication reports the node's replication role, epoch and
	// stream status.
	OpReplication = "replication"
)

// Replication error codes, part of the stable response vocabulary.
const (
	// CodeStandby marks a write refused because this node is a warm
	// standby: it serves reads but mutations must go to the primary (or
	// wait for promotion).
	CodeStandby = "standby-readonly"
	// CodeFenced marks a write refused because this node observed a
	// higher replication epoch — it is a partitioned ex-primary, and
	// accepting the write would be a split-brain mutation.
	CodeFenced = "split-brain-fenced"
	// CodeNotReplicated marks a setup or teardown refused (and rolled
	// back) because the configured replication mode could not confirm it
	// on the standby before the ack.
	CodeNotReplicated = "not-replicated"
)

var (
	// ErrNotReplicated reports a record the replication mode could not
	// confirm on the standby; the operation that appended it is rolled
	// back and refused.
	ErrNotReplicated = errors.New("wire: not replicated")
	// ErrStaleEpoch reports a replication message carrying an epoch below
	// the local term — the sender is a fenced ex-primary (or the local
	// node was promoted past it).
	ErrStaleEpoch = errors.New("wire: stale replication epoch")
)

// Shipper forwards freshly appended journal records to the standby. The
// wire layer calls it under persistMu, immediately after the local append
// and before the operation acks, so record order on the stream equals
// journal order. internal/replica implements it; the wire package stays
// free of any transport knowledge beyond this seam.
type Shipper interface {
	// Ship forwards one record and blocks until the configured
	// replication mode is satisfied (async: queued; semi-sync: standby
	// lag within bound; sync: this record acknowledged). A non-nil error
	// means the mode could not be satisfied — for ack-gated operations
	// the caller compensates and refuses.
	Ship(seq, epoch uint64, payload []byte) error
	// ShipBestEffort forwards one record without waiting for any
	// acknowledgement and never fails: records that do not make it are
	// healed by standby catch-up. Used for warning-only operations and
	// compensation records.
	ShipBestEffort(seq, epoch uint64, payload []byte)
}

// CrashPoints lets the fault-injection harness kill the primary at the
// replication-critical instants that no filesystem boundary exposes:
// just before the local append, between append and ship, and between
// ship and ack. Production servers leave it nil.
type CrashPoints struct {
	PreAppend  func(op string)
	PostAppend func(op string, seq uint64)
	PostShip   func(op string, seq uint64)
}

// SetCrashPoints installs the crash hooks. Must be called before Serve.
func (s *Server) SetCrashPoints(cp *CrashPoints) { s.crashPoints = cp }

// SetShipper attaches the replication shipper; every journaled mutation
// is shipped before its ack. Must be called before Serve.
func (s *Server) SetShipper(sh Shipper) { s.shipper = sh }

// SetStandby marks the node a warm standby: mutations are refused with
// CodeStandby until Promote. Reads, health and replication status stay
// served, so a standby is observable and can answer queries.
func (s *Server) SetStandby(standby bool) {
	s.replMu.Lock()
	s.standby = standby
	s.replMu.Unlock()
}

// SetReplicationStatus installs a decorator that enriches replication
// reports with stream-level fields (mode, connection state, acked seq,
// lag) the wire layer cannot see. internal/replica installs it.
func (s *Server) SetReplicationStatus(fn func(*ReplicationReport)) {
	s.replStatus = fn
}

// Epoch returns the node's current replication term.
func (s *Server) Epoch() uint64 {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.epoch
}

// JournalWatermark returns the highest journal sequence assigned so far,
// or zero when the node has no journal. A standby reports it in its
// replication handshake so the primary ships only the missing delta.
func (s *Server) JournalWatermark() uint64 {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.dur == nil || !s.dur.journaled() {
		return 0
	}
	return s.dur.log.LastSeq()
}

// Fence marks this node a fenced ex-primary: it observed newEpoch, a
// term higher than its own, so a newer primary exists and every further
// mutation here would be a split-brain write. Fencing is one-way; only a
// restart (with a fresh resync) clears it.
func (s *Server) Fence(newEpoch uint64) {
	s.replMu.Lock()
	first := !s.fenced
	s.fenced = true
	if newEpoch > s.fencedBy {
		s.fencedBy = newEpoch
	}
	s.replMu.Unlock()
	if first {
		if tr := s.tracer; tr != nil {
			tr.Trace(obs.Event{Kind: obs.KindFence, Epoch: newEpoch})
		}
	}
}

// Fenced reports whether the node refused itself out of the write path,
// and the epoch that fenced it.
func (s *Server) Fenced() (bool, uint64) {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	return s.fenced, s.fencedBy
}

// Promote makes this node the primary at a new, higher epoch. The bump
// is persisted (snapshot trailer) before the standby gate opens, so a
// crash straight after promotion still recovers into the new term and
// the fenced ex-primary stays fenced. Returns the new epoch.
func (s *Server) Promote() (uint64, error) {
	s.replMu.RLock()
	fenced, by := s.fenced, s.fencedBy
	s.replMu.RUnlock()
	if fenced {
		return 0, fmt.Errorf("%w: fenced at epoch %d, refusing promotion", ErrStaleEpoch, by)
	}
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.persistMu.Lock()
	s.epoch++
	epoch := s.epoch
	if s.dur != nil {
		if err := s.compactLocked(); err != nil && !errors.Is(err, errJournalReset) {
			s.epoch--
			s.persistMu.Unlock()
			return 0, fmt.Errorf("wire: promote: persist epoch %d: %w", epoch, err)
		}
	}
	s.persistMu.Unlock()
	s.replMu.Lock()
	s.standby = false
	s.replMu.Unlock()
	if tr := s.tracer; tr != nil {
		tr.Trace(obs.Event{Kind: obs.KindPromote, Outcome: obs.OutcomeOK, Epoch: epoch})
	}
	return epoch, nil
}

// ApplyShipped is the standby's ingestion path for one shipped record:
// persist the payload byte-identically under the primary's sequence,
// fold it into the durable view, and apply it to the warm network —
// idempotently, so at-least-once delivery after a reconnect is safe. A
// stale-epoch record is refused with ErrStaleEpoch (the sender must
// fence); an apply failure is returned wrapped in journal.ErrApply and
// means the standby diverged and needs a full resync.
func (s *Server) ApplyShipped(rec journal.Record, payload []byte) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.dur == nil || !s.dur.journaled() {
		return fmt.Errorf("wire: apply shipped record: node has no journal")
	}
	if rec.Epoch < s.epoch {
		return fmt.Errorf("%w: record epoch %d below local term %d", ErrStaleEpoch, rec.Epoch, s.epoch)
	}
	if rec.Epoch > s.epoch {
		s.epoch = rec.Epoch
	}
	if rec.Seq <= s.dur.log.LastSeq() {
		// Already persisted (and therefore already applied): a duplicate
		// from a reconnect replay.
		return nil
	}
	if err := s.dur.log.AppendEntry(rec.Seq, payload, s.dur.mode == DurabilityJournalSync); err != nil {
		return err
	}
	s.dur.applyView(&rec)
	if err := journal.ApplyToNetwork(s.network, rec); err != nil {
		return err
	}
	if s.dur.log.Count() >= s.dur.compactRecords || s.dur.log.Size() >= s.dur.compactBytes {
		if err := s.compactLocked(); err != nil && !errors.Is(err, errJournalReset) {
			s.scheduleRetry()
		}
	}
	return nil
}

// CatchUp feeds a (re)connecting standby everything it is missing and
// atomically activates its live stream. It runs entirely under persistMu:
// no record can be appended between the read of the backlog and the
// activation, so the standby sees every record exactly once — either in
// the catch-up batch or on the live stream. When the standby's watermark
// predates the last compaction the journal no longer holds its delta —
// or force is set because the standby diverged (failed apply, epoch
// change) — the full durable state is sent instead.
func (s *Server) CatchUp(afterSeq uint64, force bool, full func(PersistentState) error, incremental func([]journal.Entry) error, activate func()) error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.dur == nil || !s.dur.journaled() {
		return fmt.Errorf("wire: replication catch-up: node has no journal")
	}
	if force || afterSeq < s.dur.snapSeq {
		conns, links := s.dur.viewState()
		st := PersistentState{
			LastSeq:     s.dur.log.LastSeq(),
			Connections: conns,
			FailedLinks: links,
			Epoch:       s.epoch,
		}
		if err := full(st); err != nil {
			return err
		}
	} else {
		entries, err := journal.EntriesSince(s.dur.fsys, s.dur.journalPath, afterSeq)
		if err != nil {
			return err
		}
		if err := incremental(entries); err != nil {
			return err
		}
	}
	if activate != nil {
		activate()
	}
	return nil
}

// InstallState replaces the standby's entire admission state with the
// primary's — the full-resync path when the journal delta is gone (the
// standby predates a compaction) or the standby diverged (an apply
// failed, or it rejoins from a lower epoch after a fenced stint as
// primary). Memory is rebuilt first, then snapshot and journal are reset
// to the new watermark, so a crash mid-install recovers into the old
// state and simply resyncs again.
func (s *Server) InstallState(st PersistentState) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if st.Epoch < s.epoch {
		return fmt.Errorf("%w: state epoch %d below local term %d", ErrStaleEpoch, st.Epoch, s.epoch)
	}
	for _, id := range s.network.Connections() {
		if err := s.network.Teardown(id); err != nil {
			return fmt.Errorf("wire: install state: clear %q: %w", id, err)
		}
	}
	for _, l := range s.network.FailedLinks() {
		if err := s.network.RestoreLink(l.From, l.To); err != nil {
			return fmt.Errorf("wire: install state: clear failed link %s: %w", l, err)
		}
	}
	for _, l := range st.FailedLinks {
		if _, err := s.network.FailLink(l.From, l.To); err != nil {
			return fmt.Errorf("wire: install state: fail link %s: %w", l, err)
		}
	}
	for _, req := range st.Connections {
		if err := s.network.Install(req); err != nil {
			return fmt.Errorf("wire: install state: install %q: %w", req.ID, err)
		}
	}
	s.epoch = st.Epoch
	if s.dur != nil && s.dur.journaled() {
		s.dur.initView(st.Connections, st.FailedLinks)
		// Adopt the primary's numbering outright: this node's own journal
		// (possibly ahead of the primary by never-acked orphans) is
		// discarded by the Reset below, so a lower next-seq cannot collide.
		s.dur.log.ForceNextSeq(st.LastSeq + 1)
		if err := s.dur.store.SaveState(st); err != nil {
			return fmt.Errorf("wire: install state: %w", err)
		}
		if err := s.dur.log.Reset(); err != nil {
			return fmt.Errorf("wire: install state: %w", err)
		}
		s.dur.snapSeq = st.LastSeq
	}
	return nil
}

// ReplicationReport is the transport form of a node's replication
// status. Role is "primary", "standby" or "fenced"; the stream fields
// are filled by the replica layer's status decorator when replication is
// attached.
type ReplicationReport struct {
	Role     string `json:"role"`
	Epoch    uint64 `json:"epoch"`
	FencedBy uint64 `json:"fencedBy,omitempty"`
	// LastSeq is the node's journal watermark.
	LastSeq uint64 `json:"lastSeq,omitempty"`
	// Mode is the configured replication mode (async, semi-sync, sync).
	Mode string `json:"mode,omitempty"`
	// Connected reports a live replication stream.
	Connected bool `json:"connected,omitempty"`
	// AckedSeq is the highest sequence the peer has acknowledged (on a
	// primary) or this node has applied (on a standby).
	AckedSeq uint64 `json:"ackedSeq,omitempty"`
	// Lag is LastSeq-AckedSeq on the primary: records shipped or pending
	// that the standby has not confirmed.
	Lag uint64 `json:"lag,omitempty"`
}

// replicationReport assembles the node-local fields and lets the replica
// layer decorate the stream-level ones.
func (s *Server) replicationReport() *ReplicationReport {
	rep := &ReplicationReport{Role: "primary", Epoch: s.Epoch()}
	s.replMu.RLock()
	if s.fenced {
		rep.Role = "fenced"
		rep.FencedBy = s.fencedBy
	} else if s.standby {
		rep.Role = "standby"
	}
	s.replMu.RUnlock()
	if s.dur != nil && s.dur.journaled() {
		s.persistMu.Lock()
		rep.LastSeq = s.dur.log.LastSeq()
		s.persistMu.Unlock()
	}
	if s.replStatus != nil {
		s.replStatus(rep)
	}
	return rep
}

// writeGate refuses mutations on nodes that must not mutate: fenced
// ex-primaries (split-brain guard) and unpromoted standbys.
func (s *Server) writeGate(op string) *Response {
	s.replMu.RLock()
	standby, fenced, by := s.standby, s.fenced, s.fencedBy
	s.replMu.RUnlock()
	if fenced {
		return &Response{
			Error: fmt.Sprintf("%s refused: node fenced at epoch %d (a newer primary exists; split-brain guard)", op, by),
			Code:  CodeFenced,
		}
	}
	if standby {
		return &Response{
			Error: fmt.Sprintf("%s refused: node is a warm standby (read-only until promoted)", op),
			Code:  CodeStandby,
		}
	}
	return nil
}
