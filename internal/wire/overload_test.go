package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/overload"
	"atmcac/internal/traffic"
)

// TestOverloadStorm hammers a server whose limiter admits one in-flight
// request at a time with many concurrent setup clients, each retrying
// under backoff. Every client must eventually get through and the server
// must carry exactly one connection per client — overload shedding plus
// retry may delay admissions but can never lose or duplicate one.
// CI reruns it (-run TestOverloadStorm -count=3 -race) as a flake probe.
func TestOverloadStorm(t *testing.T) {
	client, srv, route := startServerWith(t, func(s *Server) {
		s.SetLimiter(overload.NewLimiter(overload.LimiterConfig{MaxInFlight: 1}))
	})
	addr := clientAddr(t, client)

	const clients = 12
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			r := make(core.Route, len(route))
			copy(r, route)
			for h := range r {
				r[h].In = core.PortID(i + 1)
			}
			_, errs[i] = c.SetupWithRetry(ctx, core.ConnRequest{
				ID: core.ConnID(fmt.Sprintf("storm-%d", i)), Spec: traffic.CBR(0.001),
				Priority: 1, Route: r,
			}, &overload.Backoff{Base: time.Millisecond, Max: 100 * time.Millisecond})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	ids := srv.network.Connections()
	if len(ids) != clients {
		t.Fatalf("server carries %d connections after the storm, want %d", len(ids), clients)
	}
	seen := make(map[core.ConnID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicated admission %q", id)
		}
		seen[id] = true
	}
	// The in-flight gauge has drained; nothing is stuck holding a slot.
	if st := srv.limiter.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight gauge = %d after the storm, want 0", st.InFlight)
	}
}

// TestSetupWithRetryHonorsRetryAfterHint drains a one-token bucket
// refilling at 20 tokens/s, so the shed response hints 50ms: the retry
// must not fire before the hint even though its own backoff base is far
// smaller, and must then succeed against the refilled bucket.
func TestSetupWithRetryHonorsRetryAfterHint(t *testing.T) {
	client, _, route := startServerWith(t, func(s *Server) {
		s.SetLimiter(overload.NewLimiter(overload.LimiterConfig{Rate: 20, Burst: 1}))
	})
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "first", Spec: traffic.CBR(0.001), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	// The bucket is empty: an immediate plain setup is shed with the hint.
	r2 := make(core.Route, len(route))
	copy(r2, route)
	for h := range r2 {
		r2[h].In = 2
	}
	_, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "second", Spec: traffic.CBR(0.001), Priority: 1, Route: r2,
	})
	var oe *OverloadError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("setup against empty bucket = %v, want *OverloadError", err)
	}
	if oe.RetryAfter < 40*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ~50ms for a 1-token bucket at 20/s", oe.RetryAfter)
	}
	// Retry with a tiny backoff base: the server hint must dominate.
	start := time.Now()
	policy := &overload.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond}
	if _, err := client.SetupWithRetry(context.Background(), core.ConnRequest{
		ID: "second", Spec: traffic.CBR(0.001), Priority: 1, Route: r2,
	}, policy); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("retry fired after %v, before the ~50ms retry-after hint", elapsed)
	}
	if policy.Attempts() == 0 {
		t.Fatal("retry succeeded without backing off; the bucket should have been empty")
	}
}

// TestSetupContextDeadlineCutsStalledExchange points a client at a
// listener that accepts and reads but never answers: SetupContext must
// return context.DeadlineExceeded promptly instead of hanging on the
// dead read.
func TestSetupContextDeadlineCutsStalledExchange(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Swallow the request, never respond.
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.SetupContext(ctx, core.ConnRequest{
		ID: "stalled", Spec: traffic.CBR(0.001), Priority: 1,
		Route: core.Route{{Switch: "sw0", In: 1, Out: 0}},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("setup against stalled server = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline cut the exchange only after %v", elapsed)
	}
}

// TestDeadlinePropagatesToServer: a client deadline travels as
// timeoutMs and the server refuses to start work on an already-expired
// budget, answering with the context error rather than admitting.
func TestDeadlinePropagatesToServer(t *testing.T) {
	_, srv, route := startServerWith(t, nil)
	resp := srv.dispatch(Request{
		Op: OpSetup, TimeoutMillis: 1,
		Request: &core.ConnRequest{
			ID: "late", Spec: traffic.CBR(0.001), Priority: 1, Route: route,
		},
	})
	// A 1ms budget may or may not expire before the admission finishes;
	// both outcomes are legal, but an expired budget must not leave a
	// half-admitted connection behind.
	if resp.OK {
		if len(srv.network.Connections()) != 1 {
			t.Fatal("OK response without an admitted connection")
		}
		return
	}
	if len(srv.network.Connections()) != 0 {
		t.Fatalf("failed setup left connections behind: %v", srv.network.Connections())
	}
}

// TestShedRequestIsTyped asserts the shape of the shed response on the
// wire: overloaded flag, retry-after hint, and an error naming the class
// and limit — the contract PROTOCOL.md documents.
func TestShedRequestIsTyped(t *testing.T) {
	client, _, _ := startServerWith(t, func(s *Server) {
		// A one-token bucket leaves reads permanently under their 0.5
		// reserve threshold, so the first read already sheds.
		s.SetLimiter(overload.NewLimiter(overload.LimiterConfig{Rate: 0.001, Burst: 1}))
	})
	_, err := client.List(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("list against empty bucket = %v, want *OverloadError", err)
	}
	if oe.Op != OpList || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v, want op list with a positive hint", oe)
	}
	// Recovery traffic still flows on the same empty bucket.
	if _, err := client.Health(context.Background()); err != nil {
		t.Fatalf("health during overload = %v, want success (recovery class)", err)
	}
}
