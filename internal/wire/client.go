// Client side of the wire protocol: the context-first API, the
// negotiated binary pipelined transport, call options and client-side
// batching.
//
// Every method takes a context first and optional CallOptions last —
// the PR-5 core.Setup unification applied to the client: one method per
// operation instead of drifted Foo/FooContext pairs. The former pairs
// survive as thin deprecated wrappers.
package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/overload"
)

// Client is a CAC client over one TCP connection; safe for concurrent
// use. On the JSON codec its methods serialize requests; after Dial
// negotiates the binary framing they pipeline — each in-flight request
// owns a tag, a background reader matches responses (which may arrive
// out of order) back to their waiters, and concurrent calls share the
// connection without head-of-line blocking on the server's handling.
type Client struct {
	conn  net.Conn
	proto string // ProtoJSON or ProtoBinary, fixed after negotiation

	// JSON transport (also carries the hello exchange): one serialized
	// request/response round trip under mu.
	mu  sync.Mutex
	br  *bufio.Reader
	enc *json.Encoder

	// Binary pipelined transport.
	tags       atomic.Uint64
	wmu        sync.Mutex // serializes frame writes
	pmu        sync.Mutex // guards pending and readErr
	pending    map[uint64]chan Response
	readErr    error
	readerDone chan struct{}

	// coordEpoch, when non-zero, is stamped on every shard 2PC request
	// (see Request.CoordEpoch). Set by a coordinator after dialing.
	coordEpoch atomic.Uint64

	// batch is the WithBatch coalescer, created on first use.
	bmu   sync.Mutex
	batch *batcher
}

// helloTimeout bounds the Dial negotiation round trip: a server that
// cannot answer a hello in this long gets the legacy no-handshake
// treatment instead of hanging the dial.
const helloTimeout = 3 * time.Second

// Dial connects to a CAC server and negotiates the binary framing,
// falling back to the JSON line codec when the server declines (an older
// daemon answering unknown-op, or one pinned with -wire-proto=json).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	if err := c.negotiate(); err != nil {
		// The hello never completed, so this connection's framing state
		// is unknown — a reply arriving later would desync the JSON
		// stream. Close it and fall back to a fresh JSON-only connection,
		// preserving the legacy contract that Dial itself does no
		// protocol I/O a peer must answer.
		_ = conn.Close()
		return DialJSON(addr)
	}
	return c, nil
}

// DialJSON connects without negotiating: the connection speaks the JSON
// line codec for its lifetime. For debugging and for peers predating the
// hello exchange.
func DialJSON(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection in the JSON codec without
// negotiating (callers holding both ends of a pipe, tests).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:  conn,
		proto: ProtoJSON,
		br:    bufio.NewReaderSize(conn, 64<<10),
		enc:   json.NewEncoder(conn),
	}
}

// negotiate sends the hello. Any refusal — unknown-op from an old
// server, unsupported-proto from a pinned one — keeps the JSON codec;
// only a transport failure is an error.
func (c *Client) negotiate() error {
	ctx, cancel := context.WithTimeout(context.Background(), helloTimeout)
	defer cancel()
	resp, err := c.roundTripJSON(ctx, Request{Op: OpHello, Proto: ProtoBinary})
	if err != nil {
		return fmt.Errorf("wire: hello: %w", err)
	}
	if resp.OK && resp.Proto == ProtoBinary {
		c.proto = ProtoBinary
		c.pending = make(map[uint64]chan Response)
		c.readerDone = make(chan struct{})
		go c.readLoop()
	}
	return nil
}

// Proto reports the codec this connection negotiated.
func (c *Client) Proto() string { return c.proto }

// SetShardCoordEpoch makes the client stamp every shard 2PC operation
// with the coordinator term e; zero clears the stamp.
func (c *Client) SetShardCoordEpoch(e uint64) { c.coordEpoch.Store(e) }

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTripJSON sends one request and decodes one response on the JSON
// codec, bounded by ctx: the remaining deadline is propagated in the
// request (so the server bounds its handling too), the connection I/O is
// cut when ctx ends, and a typed overloaded response is surfaced as
// *OverloadError. After a deadline or cancellation cuts the I/O
// mid-exchange the connection is out of sync and should not be reused.
func (c *Client) roundTripJSON(ctx context.Context, req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if err := stampDeadline(ctx, &req); err != nil {
		return Response{}, err
	}
	// Unblock the read when ctx ends; restore the idle state after.
	stop := context.AfterFunc(ctx, func() { _ = c.conn.SetDeadline(time.Now()) })
	defer func() {
		if stop() {
			return
		}
		// AfterFunc already ran: clear the poisoned deadline so a caller
		// that retries on a fresh context is not instantly expired.
		_ = c.conn.SetDeadline(time.Time{})
	}()
	if err := c.enc.Encode(req); err != nil {
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
		return Response{}, fmt.Errorf("wire: send: %w", err)
	}
	line, err := readLimitedLine(c.br)
	if err != nil {
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Response{}, fmt.Errorf("wire: receive: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	return finishResponse(req.Op, resp)
}

// stampDeadline propagates ctx's remaining deadline into the request.
func stampDeadline(ctx context.Context, req *Request) error {
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	remaining := time.Until(dl)
	if remaining <= 0 {
		return context.DeadlineExceeded
	}
	req.TimeoutMillis = int64(remaining / time.Millisecond)
	return nil
}

// finishResponse lifts a typed overloaded response into *OverloadError.
func finishResponse(op string, resp Response) (Response, error) {
	if resp.Overloaded {
		return resp, &OverloadError{
			Op:         op,
			RetryAfter: time.Duration(resp.RetryAfterMillis) * time.Millisecond,
			Msg:        resp.Error,
		}
	}
	return resp, nil
}

// readLoop is the binary transport's reader: it matches each arriving
// frame to the waiter that sent its tag. On any read error the
// connection is dead — every current and future waiter fails.
func (c *Client) readLoop() {
	for {
		tag, payload, err := readBinFrame(c.br)
		var resp Response
		if err == nil {
			if uerr := json.Unmarshal(payload, &resp); uerr != nil {
				err = fmt.Errorf("%w: %v", ErrProtocol, uerr)
			}
		}
		if err != nil {
			c.pmu.Lock()
			c.readErr = err
			c.pending = nil
			c.pmu.Unlock()
			close(c.readerDone)
			return
		}
		c.pmu.Lock()
		ch := c.pending[tag]
		delete(c.pending, tag)
		c.pmu.Unlock()
		if ch != nil {
			ch <- resp // buffered; an abandoned waiter never blocks us
		}
	}
}

// callBinary sends one pipelined request and waits for its tagged
// response. A cancelled context abandons the waiter — the connection
// stays healthy and the late response is discarded, unlike the JSON
// codec where cancellation poisons the stream.
func (c *Client) callBinary(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if err := stampDeadline(ctx, &req); err != nil {
		return Response{}, err
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return Response{}, fmt.Errorf("wire: encode: %w", err)
	}
	tag := c.tags.Add(1)
	ch := make(chan Response, 1)
	c.pmu.Lock()
	if c.readErr != nil {
		rerr := c.readErr
		c.pmu.Unlock()
		return Response{}, fmt.Errorf("wire: receive: %w", rerr)
	}
	c.pending[tag] = ch
	c.pmu.Unlock()
	frame := appendBinFrame(nil, tag, payload)
	c.wmu.Lock()
	_, werr := c.conn.Write(frame)
	c.wmu.Unlock()
	if werr != nil {
		c.forget(tag)
		return Response{}, fmt.Errorf("wire: send: %w", werr)
	}
	select {
	case resp := <-ch:
		return finishResponse(req.Op, resp)
	case <-ctx.Done():
		c.forget(tag)
		return Response{}, ctx.Err()
	case <-c.readerDone:
		// The response may have been delivered right before the reader
		// died; prefer it.
		select {
		case resp := <-ch:
			return finishResponse(req.Op, resp)
		default:
		}
		c.pmu.Lock()
		rerr := c.readErr
		c.pmu.Unlock()
		return Response{}, fmt.Errorf("wire: receive: %w", rerr)
	}
}

// forget abandons a pending tag.
func (c *Client) forget(tag uint64) {
	c.pmu.Lock()
	delete(c.pending, tag)
	c.pmu.Unlock()
}

// call routes one request through the negotiated transport.
func (c *Client) call(ctx context.Context, req Request) (Response, error) {
	if c.proto == ProtoBinary {
		return c.callBinary(ctx, req)
	}
	return c.roundTripJSON(ctx, req)
}

// CallOption tunes one client call; see WithTimeout, WithRetry and
// WithBatch.
type CallOption func(*callOptions)

type callOptions struct {
	timeout time.Duration
	retry   bool
	policy  *overload.Backoff
	batch   bool
}

// WithTimeout bounds the call by d (a derived context deadline, also
// propagated to the server), composing with any deadline already on ctx.
func WithTimeout(d time.Duration) CallOption {
	return func(o *callOptions) { o.timeout = d }
}

// WithRetry retries the call under bounded exponential backoff with
// jitter when the server sheds it: overloaded responses are retried
// after max(backoff, server retry-after hint) until the context ends;
// every other outcome — success, CAC rejection, transport error —
// returns immediately. A shed request changed no server state, so the
// retry cannot duplicate an admission. A nil policy uses defaults; a
// non-nil policy is shared, so its backoff state carries across calls.
func WithRetry(policy *overload.Backoff) CallOption {
	return func(o *callOptions) { o.retry, o.policy = true, policy }
}

// WithBatch coalesces the call with concurrent WithBatch calls on the
// same client into one batch-setup/batch-teardown request, sharing the
// server's single batch fsync. Only Setup and Teardown honor it; other
// operations ignore it.
func WithBatch() CallOption {
	return func(o *callOptions) { o.batch = true }
}

func evalOptions(opts []CallOption) callOptions {
	var o callOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// withOptions applies the timeout option and returns the possibly-derived
// context plus its cancel (always non-nil).
func (o *callOptions) withContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.timeout > 0 {
		return context.WithTimeout(ctx, o.timeout)
	}
	return ctx, func() {}
}

// do runs one request with the evaluated options applied.
func (c *Client) do(ctx context.Context, req Request, o callOptions) (Response, error) {
	ctx, cancel := o.withContext(ctx)
	defer cancel()
	if !o.retry {
		return c.call(ctx, req)
	}
	policy := o.policy
	if policy == nil {
		policy = &overload.Backoff{}
	}
	for {
		resp, err := c.call(ctx, req)
		var oe *OverloadError
		if !errors.As(err, &oe) {
			return resp, err
		}
		if serr := overload.Sleep(ctx, policy.Next(oe.RetryAfter)); serr != nil {
			// Out of time: surface the overload, not the bare ctx error,
			// so the caller knows why the budget was spent.
			return Response{}, fmt.Errorf("%w (deadline while backing off: %v)", err, serr)
		}
	}
}

// Setup requests a connection establishment. CAC rejections are returned
// as errors matching core.ErrRejected; shed requests match
// ErrOverloaded. The remaining ctx deadline travels with the request and
// bounds the server-side admission as well.
func (c *Client) Setup(ctx context.Context, req core.ConnRequest, opts ...CallOption) (*Admission, error) {
	o := evalOptions(opts)
	if o.batch {
		return c.batchedSetup(ctx, req, o)
	}
	resp, err := c.do(ctx, Request{Op: OpSetup, Request: &req}, o)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr("setup", resp)
	}
	if resp.Admission == nil {
		return nil, fmt.Errorf("%w: setup response without admission", ErrProtocol)
	}
	return resp.Admission, nil
}

// Teardown releases a connection.
func (c *Client) Teardown(ctx context.Context, id core.ConnID, opts ...CallOption) error {
	o := evalOptions(opts)
	if o.batch {
		return c.batchedTeardown(ctx, id, o)
	}
	resp, err := c.do(ctx, Request{Op: OpTeardown, ID: id}, o)
	if err != nil {
		return err
	}
	if !resp.OK {
		return remoteErr("teardown", resp)
	}
	return nil
}

// BatchSetup admits every request in one batch-setup call: the server
// takes its operation locks once and, in journal-sync mode, covers the
// whole batch with a single fsync. Items succeed and fail independently;
// the returned results are in request order.
func (c *Client) BatchSetup(ctx context.Context, reqs []core.ConnRequest, opts ...CallOption) ([]BatchResult, error) {
	resp, err := c.do(ctx, Request{Op: OpBatchSetup, Requests: reqs}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr(OpBatchSetup, resp)
	}
	if len(resp.Results) != len(reqs) {
		return nil, fmt.Errorf("%w: batch-setup returned %d results for %d requests", ErrProtocol, len(resp.Results), len(reqs))
	}
	return resp.Results, nil
}

// BatchTeardown releases every named connection in one batch-teardown
// call; semantics mirror BatchSetup.
func (c *Client) BatchTeardown(ctx context.Context, ids []core.ConnID, opts ...CallOption) ([]BatchResult, error) {
	resp, err := c.do(ctx, Request{Op: OpBatchTeardown, IDs: ids}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr(OpBatchTeardown, resp)
	}
	if len(resp.Results) != len(ids) {
		return nil, fmt.Errorf("%w: batch-teardown returned %d results for %d ids", ErrProtocol, len(resp.Results), len(ids))
	}
	return resp.Results, nil
}

// List returns the established connection IDs.
func (c *Client) List(ctx context.Context, opts ...CallOption) ([]core.ConnID, error) {
	resp, err := c.do(ctx, Request{Op: OpList}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr("list", resp)
	}
	return resp.Connections, nil
}

// RouteBound queries the current end-to-end computed bound of a route.
func (c *Client) RouteBound(ctx context.Context, route core.Route, p core.Priority, opts ...CallOption) (float64, error) {
	resp, err := c.do(ctx, Request{Op: OpBound, Route: route, Priority: p}, evalOptions(opts))
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, remoteErr("bound", resp)
	}
	return resp.Bound, nil
}

// Audit recomputes every loaded queue's bound server-side and returns the
// queues over budget (empty means the configuration is sound).
func (c *Client) Audit(ctx context.Context, opts ...CallOption) ([]ViolationReport, error) {
	resp, err := c.do(ctx, Request{Op: OpAudit}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr("audit", resp)
	}
	return resp.Violations, nil
}

// Inspect reports the state of every loaded queue of one switch (or all
// switches when switchName is empty): bounds, backlogs, budgets and the
// assembled arrival envelopes.
func (c *Client) Inspect(ctx context.Context, switchName string, opts ...CallOption) ([]PortReport, error) {
	resp, err := c.do(ctx, Request{Op: OpInspect, Switch: switchName}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr("inspect", resp)
	}
	return resp.Ports, nil
}

// FailLink declares the directed link from -> to failed. The server evicts
// every traversing connection, runs its re-admission handler and reports
// the per-connection outcomes.
func (c *Client) FailLink(ctx context.Context, from, to string, opts ...CallOption) (*FailoverReport, error) {
	resp, err := c.do(ctx, Request{Op: OpFailLink, From: from, To: to}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr("fail-link", resp)
	}
	if resp.Failover == nil {
		return nil, fmt.Errorf("%w: fail-link response without report", ErrProtocol)
	}
	return resp.Failover, nil
}

// RestoreLink clears a failed link so new setups may use it again.
func (c *Client) RestoreLink(ctx context.Context, from, to string, opts ...CallOption) error {
	resp, err := c.do(ctx, Request{Op: OpRestoreLink, From: from, To: to}, evalOptions(opts))
	if err != nil {
		return err
	}
	if !resp.OK {
		return remoteErr("restore-link", resp)
	}
	return nil
}

// Health reports daemon liveness and link state.
func (c *Client) Health(ctx context.Context, opts ...CallOption) (*HealthReport, error) {
	resp, err := c.do(ctx, Request{Op: OpHealth}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr("health", resp)
	}
	if resp.Health == nil {
		return nil, fmt.Errorf("%w: health response without report", ErrProtocol)
	}
	return resp.Health, nil
}

// Promote asks the node to take over as primary at a new epoch.
func (c *Client) Promote(ctx context.Context, opts ...CallOption) (*ReplicationReport, error) {
	resp, err := c.do(ctx, Request{Op: OpPromote}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr("promote", resp)
	}
	if resp.Replication == nil {
		return nil, fmt.Errorf("%w: promote response without report", ErrProtocol)
	}
	return resp.Replication, nil
}

// Replication queries the node's replication role and stream status.
func (c *Client) Replication(ctx context.Context, opts ...CallOption) (*ReplicationReport, error) {
	resp, err := c.do(ctx, Request{Op: OpReplication}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr("replication", resp)
	}
	if resp.Replication == nil {
		return nil, fmt.Errorf("%w: replication response without report", ErrProtocol)
	}
	return resp.Replication, nil
}

// ShardPrepare asks a shard to reserve the route hops of req under txn,
// holding them for ttl (zero selects the server default).
func (c *Client) ShardPrepare(ctx context.Context, txn string, req core.ConnRequest, ttl time.Duration) (*PrepareReport, error) {
	resp, err := c.call(ctx, Request{
		Op: OpShardPrepare, Txn: txn, Request: &req,
		TTLMillis:  int64(ttl / time.Millisecond),
		CoordEpoch: c.coordEpoch.Load(),
	})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr(OpShardPrepare, resp)
	}
	if resp.Prepared == nil {
		return nil, fmt.Errorf("%w: shard-prepare response without report", ErrProtocol)
	}
	return resp.Prepared, nil
}

// ShardCommit asks a shard to promote the prepared hold of txn. req must
// be the same shard-local request that was prepared (it drives the
// recovery re-admission when the hold was reaped); prepareEpoch echoes
// the epoch from the prepare report so a promoted shard can fence.
func (c *Client) ShardCommit(ctx context.Context, txn string, req core.ConnRequest, prepareEpoch uint64) (*Admission, string, error) {
	resp, err := c.call(ctx, Request{
		Op: OpShardCommit, Txn: txn, Request: &req, PrepareEpoch: prepareEpoch,
		CoordEpoch: c.coordEpoch.Load(),
	})
	if err != nil {
		return nil, "", err
	}
	if !resp.OK {
		return nil, "", remoteErr(OpShardCommit, resp)
	}
	return resp.Admission, resp.Warning, nil
}

// ShardAbort releases txn's hold (or unwinds its commit) on a shard.
func (c *Client) ShardAbort(ctx context.Context, txn string, req *core.ConnRequest) error {
	wr := Request{Op: OpShardAbort, Txn: txn, Request: req, CoordEpoch: c.coordEpoch.Load()}
	if req != nil {
		wr.ID = req.ID
	}
	resp, err := c.call(ctx, wr)
	if err != nil {
		return err
	}
	if !resp.OK {
		return remoteErr(OpShardAbort, resp)
	}
	return nil
}

// ShardReap forces one orphan-reaper pass and returns the expired
// transactions.
func (c *Client) ShardReap(ctx context.Context, opts ...CallOption) ([]string, error) {
	resp, err := c.do(ctx, Request{Op: OpShardReap, CoordEpoch: c.coordEpoch.Load()}, evalOptions(opts))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr(OpShardReap, resp)
	}
	if resp.Shard == nil {
		return nil, fmt.Errorf("%w: shard-reap response without report", ErrProtocol)
	}
	return resp.Shard.Reaped, nil
}

// ShardStatus reports the shard identity, role, epoch and live holds.
func (c *Client) ShardStatus(ctx context.Context, opts ...CallOption) (*ShardStatusReport, error) {
	st, _, _, err := c.ShardStatusFleet(ctx, opts...)
	return st, err
}

// ShardStatusFleet is ShardStatus plus the coordinator's per-pair fleet
// reports — empty when the peer is a plain shard — and any degradation
// warning (a dead pair downgrades the fleet fan-out to identity-only).
func (c *Client) ShardStatusFleet(ctx context.Context, opts ...CallOption) (*ShardStatusReport, []ShardStatusReport, string, error) {
	resp, err := c.do(ctx, Request{Op: OpShardStatus}, evalOptions(opts))
	if err != nil {
		return nil, nil, "", err
	}
	if !resp.OK {
		return nil, nil, "", remoteErr(OpShardStatus, resp)
	}
	if resp.Shard == nil {
		return nil, nil, "", fmt.Errorf("%w: shard-status response without report", ErrProtocol)
	}
	return resp.Shard, resp.Shards, resp.Warning, nil
}

// Deprecated compatibility wrappers for the pre-context-first API. Each
// forwards to its context-first replacement.

// SetupContext is a deprecated alias for Setup.
//
// Deprecated: use Setup — every method now takes a context first.
func (c *Client) SetupContext(ctx context.Context, req core.ConnRequest) (*Admission, error) {
	return c.Setup(ctx, req)
}

// SetupWithRetry is Setup under the WithRetry option.
//
// Deprecated: use Setup(ctx, req, WithRetry(policy)).
func (c *Client) SetupWithRetry(ctx context.Context, req core.ConnRequest, policy *overload.Backoff) (*Admission, error) {
	return c.Setup(ctx, req, WithRetry(policy))
}

// TeardownContext is a deprecated alias for Teardown.
//
// Deprecated: use Teardown — every method now takes a context first.
func (c *Client) TeardownContext(ctx context.Context, id core.ConnID) error {
	return c.Teardown(ctx, id)
}

// ListContext is a deprecated alias for List.
//
// Deprecated: use List — every method now takes a context first.
func (c *Client) ListContext(ctx context.Context) ([]core.ConnID, error) {
	return c.List(ctx)
}

// ShardReapContext is a deprecated alias for ShardReap.
//
// Deprecated: use ShardReap — every method now takes a context first.
func (c *Client) ShardReapContext(ctx context.Context) ([]string, error) {
	return c.ShardReap(ctx)
}

// ShardStatusContext is a deprecated alias for ShardStatus.
//
// Deprecated: use ShardStatus — every method now takes a context first.
func (c *Client) ShardStatusContext(ctx context.Context) (*ShardStatusReport, error) {
	return c.ShardStatus(ctx)
}

// ShardStatusFleetContext is a deprecated alias for ShardStatusFleet.
//
// Deprecated: use ShardStatusFleet — every method now takes a context
// first.
func (c *Client) ShardStatusFleetContext(ctx context.Context) (*ShardStatusReport, []ShardStatusReport, string, error) {
	return c.ShardStatusFleet(ctx)
}

// batcher coalesces concurrent WithBatch setups and teardowns on one
// client into batch requests: the first enqueuer starts a flusher
// goroutine that drains the queue in MaxBatchOps-sized chunks until it
// runs dry, so operations arriving while a batch is in flight form the
// next one — the client-side mirror of the server's group commit.
type batcher struct {
	c         *Client
	mu        sync.Mutex
	setups    []clientBatchOp
	teardowns []clientBatchOp
	flushing  bool
}

type clientBatchOp struct {
	req  *core.ConnRequest // setup payload (nil for teardown)
	id   core.ConnID       // teardown target
	done chan clientBatchOutcome
}

type clientBatchOutcome struct {
	res BatchResult
	err error
}

func (c *Client) batcher() *batcher {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	if c.batch == nil {
		c.batch = &batcher{c: c}
	}
	return c.batch
}

// batchedSetup enqueues one setup on the coalescer and waits for its
// batch's outcome. The flusher runs on its own context: a caller
// abandoning its wait does not cancel the batch its siblings share.
func (c *Client) batchedSetup(ctx context.Context, req core.ConnRequest, o callOptions) (*Admission, error) {
	ctx, cancel := o.withContext(ctx)
	defer cancel()
	b := c.batcher()
	op := clientBatchOp{req: &req, done: make(chan clientBatchOutcome, 1)}
	b.enqueue(op, false)
	select {
	case out := <-op.done:
		if out.err != nil {
			return nil, out.err
		}
		if !out.res.OK {
			return nil, &RemoteError{Op: "setup", Code: out.res.Code, Msg: out.res.Error, rejected: out.res.Rejected}
		}
		if out.res.Admission == nil {
			return nil, fmt.Errorf("%w: batch result without admission", ErrProtocol)
		}
		return out.res.Admission, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// batchedTeardown is batchedSetup for teardowns.
func (c *Client) batchedTeardown(ctx context.Context, id core.ConnID, o callOptions) error {
	ctx, cancel := o.withContext(ctx)
	defer cancel()
	b := c.batcher()
	op := clientBatchOp{id: id, done: make(chan clientBatchOutcome, 1)}
	b.enqueue(op, true)
	select {
	case out := <-op.done:
		if out.err != nil {
			return out.err
		}
		if !out.res.OK {
			return &RemoteError{Op: "teardown", Code: out.res.Code, Msg: out.res.Error}
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *batcher) enqueue(op clientBatchOp, teardown bool) {
	b.mu.Lock()
	if teardown {
		b.teardowns = append(b.teardowns, op)
	} else {
		b.setups = append(b.setups, op)
	}
	kick := !b.flushing
	if kick {
		b.flushing = true
	}
	b.mu.Unlock()
	if kick {
		go b.flushLoop()
	}
}

func (b *batcher) flushLoop() {
	for {
		b.mu.Lock()
		setups, teardowns := b.setups, b.teardowns
		b.setups, b.teardowns = nil, nil
		if len(setups) == 0 && len(teardowns) == 0 {
			b.flushing = false
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		b.flushSetups(setups)
		b.flushTeardowns(teardowns)
	}
}

func (b *batcher) flushSetups(ops []clientBatchOp) {
	for len(ops) > 0 {
		chunk := ops
		if len(chunk) > MaxBatchOps {
			chunk = chunk[:MaxBatchOps]
		}
		ops = ops[len(chunk):]
		reqs := make([]core.ConnRequest, len(chunk))
		for i, op := range chunk {
			reqs[i] = *op.req
		}
		results, err := b.c.BatchSetup(context.Background(), reqs)
		for i, op := range chunk {
			out := clientBatchOutcome{err: err}
			if err == nil {
				out.res = results[i]
			}
			op.done <- out
		}
	}
}

func (b *batcher) flushTeardowns(ops []clientBatchOp) {
	for len(ops) > 0 {
		chunk := ops
		if len(chunk) > MaxBatchOps {
			chunk = chunk[:MaxBatchOps]
		}
		ops = ops[len(chunk):]
		ids := make([]core.ConnID, len(chunk))
		for i, op := range chunk {
			ids[i] = op.id
		}
		results, err := b.c.BatchTeardown(context.Background(), ids)
		for i, op := range chunk {
			out := clientBatchOutcome{err: err}
			if err == nil {
				out.res = results[i]
			}
			op.done <- out
		}
	}
}
