package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/obs"
)

// checksumPrefix introduces the legacy (v1) integrity trailer of a
// snapshot file: one final line "#crc32:<8 hex digits>" over every byte
// before it. The '#' keeps the trailer out of the JSON payload, so files
// from before the trailer existed (plain JSON arrays) still load.
const checksumPrefix = "#crc32:"

// trailerV2Prefix introduces the current, versioned trailer:
// "#trailer:v2 crc32=<8 hex> epoch=<decimal>". Versioning the trailer is
// what lets replication stamp the primary epoch into snapshots without
// breaking older files: a v1 trailer still verifies (epoch 0, with a
// legacy warning), and future fields extend the v2 line instead of
// inventing a third format.
const trailerV2Prefix = "#trailer:v2 "

// ErrCorruptState reports a snapshot whose checksum did not match; the
// file has been quarantined rather than restored.
var ErrCorruptState = errors.New("wire: corrupt state snapshot")

// PersistentState is the on-disk snapshot payload. LastSeq is the journal
// sequence watermark folded into the snapshot: recovery replays only
// journal records past it. Legacy snapshots — a bare JSON array of
// connection requests — load as a state with watermark 0 and no failed
// links.
type PersistentState struct {
	LastSeq     uint64             `json:"lastSeq,omitempty"`
	Connections []core.ConnRequest `json:"connections"`
	FailedLinks []core.Link        `json:"failedLinks,omitempty"`
	// Epoch is the replication term the snapshot was written under. It
	// travels in the trailer line, not the JSON payload, so the payload
	// stays readable by pre-replication tooling; files with a v1 or
	// missing trailer load as epoch 0.
	Epoch uint64 `json:"-"`
}

// StateStore persists the admission state as a JSON file so a central CAC
// server can be restarted without losing its admissions — required for
// the permanent real-time connections RTnet manages. Writes are atomic
// and durable (temp file, fsync, rename, directory fsync) and carry a
// CRC32 trailer; a snapshot that fails verification is quarantined to a
// fresh <path>.corrupt evidence path instead of restoring garbage into
// the admission state.
type StateStore struct {
	path string
	fsys journal.FS
}

// NewStateStore returns a store backed by path on the real filesystem.
func NewStateStore(path string) *StateStore {
	return NewStateStoreFS(path, journal.OSFS{})
}

// NewStateStoreFS returns a store writing through fsys — the seam the
// crash-point harness uses to kill the persistence path at every
// write/sync/rename boundary.
func NewStateStoreFS(path string, fsys journal.FS) *StateStore {
	return &StateStore{path: path, fsys: fsys}
}

// Path returns the backing file path.
func (s *StateStore) Path() string { return s.path }

// QuarantinePath is the base path corrupt snapshots are moved to for
// inspection. When it is already occupied by earlier evidence, the next
// quarantine lands on <path>.corrupt.1, .2, ... — a second corruption
// must never overwrite the proof of the first.
func (s *StateStore) QuarantinePath() string { return s.path + ".corrupt" }

// Load reads and verifies the stored connection requests, quarantining a
// corrupt file. It is ReadState reduced to the connection set, kept for
// callers that predate failed-link persistence.
func (s *StateStore) Load() (reqs []core.ConnRequest, warning string, err error) {
	st, warning, err := s.LoadState()
	return st.Connections, warning, err
}

// LoadState reads and verifies the stored state. A missing file is an
// empty store, not an error. A file without a checksum trailer (written
// before trailers existed) is accepted and flagged through the warning. A
// file whose trailer does not match its content — or whose JSON does not
// parse — is moved to QuarantinePath and reported as ErrCorruptState: a
// torn or tampered snapshot must never silently restore a wrong admission
// set.
func (s *StateStore) LoadState() (PersistentState, string, error) {
	st, warning, reason, err := s.readState()
	if reason != "" {
		return PersistentState{}, "", s.quarantine(reason)
	}
	return st, warning, err
}

// ReadState is LoadState without the quarantine side effect: a corrupt
// file stays in place and is reported as ErrCorruptState with the reason.
// Offline inspection (cacctl state verify) uses it so looking at a file
// never moves it.
func (s *StateStore) ReadState() (PersistentState, string, error) {
	st, warning, reason, err := s.readState()
	if reason != "" {
		return PersistentState{}, "", fmt.Errorf("%w: %s: %s", ErrCorruptState, s.path, reason)
	}
	return st, warning, err
}

// readState parses the file; a non-empty reason marks corruption the
// caller turns into either a quarantine or a plain error.
func (s *StateStore) readState() (st PersistentState, warning, reason string, err error) {
	data, err := s.fsys.ReadFile(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return PersistentState{}, "", "", nil
	}
	if err != nil {
		return PersistentState{}, "", "", fmt.Errorf("wire: load state: %w", err)
	}
	payload, sum, epoch, version := splitTrailer(data)
	switch version {
	case 2:
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return PersistentState{}, "", fmt.Sprintf("checksum mismatch: file says %08x, content is %08x", sum, got), nil
		}
	case 1:
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return PersistentState{}, "", fmt.Sprintf("checksum mismatch: file says %08x, content is %08x", sum, got), nil
		}
		warning = fmt.Sprintf("wire: state %s has a legacy v1 crc-only trailer (no epoch field); epoch assumed 0", s.path)
	default:
		warning = fmt.Sprintf("wire: state %s has no checksum trailer (pre-checksum snapshot); accepted unverified", s.path)
	}
	trimmed := bytes.TrimLeft(payload, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		if jerr := json.Unmarshal(payload, &st); jerr != nil {
			return PersistentState{}, "", fmt.Sprintf("invalid JSON: %v", jerr), nil
		}
		st.Epoch = epoch
		return st, warning, "", nil
	}
	// Legacy layout: a bare array of connection requests.
	if jerr := json.Unmarshal(payload, &st.Connections); jerr != nil {
		return PersistentState{}, "", fmt.Sprintf("invalid JSON: %v", jerr), nil
	}
	st.Epoch = epoch
	return st, warning, "", nil
}

// quarantine moves the corrupt snapshot aside and returns the load error.
func (s *StateStore) quarantine(reason string) error {
	qpath := journal.EvidencePath(s.fsys, s.QuarantinePath())
	if err := s.fsys.Rename(s.path, qpath); err != nil {
		return fmt.Errorf("%w: %s: %s (quarantine to %s failed: %v)",
			ErrCorruptState, s.path, reason, qpath, err)
	}
	return fmt.Errorf("%w: %s: %s (quarantined to %s)", ErrCorruptState, s.path, reason, qpath)
}

// splitTrailer separates the payload from the trailer line and reports
// which trailer generation it found: 2 for the versioned
// "#trailer:v2 crc32=... epoch=..." line, 1 for the legacy "#crc32:"
// line, 0 for no (or unparseable) trailer. With version 0 the returned
// payload is the whole input: if the final line was a mangled trailer,
// the JSON parse behind it fails and the file is quarantined as corrupt,
// which is the right verdict for a damaged integrity line.
func splitTrailer(data []byte) (payload []byte, sum uint32, epoch uint64, version int) {
	trimmed := bytes.TrimRight(data, "\n")
	i := bytes.LastIndexByte(trimmed, '\n')
	line := trimmed[i+1:]
	if bytes.HasPrefix(line, []byte(trailerV2Prefix)) {
		if _, err := fmt.Sscanf(string(line[len(trailerV2Prefix):]), "crc32=%08x epoch=%d", &sum, &epoch); err != nil {
			return data, 0, 0, 0
		}
		return data[:i+1], sum, epoch, 2
	}
	if bytes.HasPrefix(line, []byte(checksumPrefix)) {
		if _, err := fmt.Sscanf(string(line[len(checksumPrefix):]), "%08x", &sum); err != nil {
			return data, 0, 0, 0
		}
		return data[:i+1], sum, 0, 1
	}
	return data, 0, 0, 0
}

// Save atomically writes the connection requests with a CRC32 trailer.
func (s *StateStore) Save(reqs []core.ConnRequest) error {
	return s.SaveState(PersistentState{Connections: reqs})
}

// SaveState writes the state so that a crash or power loss at any point
// leaves either the old file or the new one, never a torn or empty
// snapshot: the temp file is fsynced before the rename (otherwise the
// rename can land while the data has not), and the parent directory is
// fsynced after it (otherwise the rename itself can be rolled back).
func (s *StateStore) SaveState(st PersistentState) error {
	if st.Connections == nil {
		st.Connections = []core.ConnRequest{}
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("wire: save state: %w", err)
	}
	data = append(data, '\n')
	data = append(data, fmt.Sprintf("%scrc32=%08x epoch=%d\n", trailerV2Prefix, crc32.ChecksumIEEE(data), st.Epoch)...)
	tmpName := s.path + ".tmp"
	tmp, err := s.fsys.OpenFile(tmpName, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("wire: save state: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = s.fsys.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = s.fsys.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = s.fsys.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := s.fsys.Rename(tmpName, s.path); err != nil {
		_ = s.fsys.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := s.fsys.SyncDir(s.path); err != nil {
		return fmt.Errorf("wire: save state: sync dir: %w", err)
	}
	return nil
}

// RestoreFailure reports one stored connection that could not be
// re-admitted during Restore, with the admission error preserved.
type RestoreFailure struct {
	ID  core.ConnID
	Err error
}

// Restore re-establishes every stored connection on the network through
// the full CAC check. It returns a per-connection failure record for each
// that could not be re-admitted (e.g. because the network shape changed);
// the caller decides whether that is fatal. The warning, when non-empty,
// flags a pre-checksum snapshot that was accepted unverified. Failed
// connections are reported once and stay out of the admitted set, so the
// next snapshot prunes them instead of re-persisting them forever.
func Restore(network *core.Network, store *StateStore) (restored int, failed []RestoreFailure, warning string, err error) {
	reqs, warning, err := store.Load()
	if err != nil {
		return 0, nil, warning, err
	}
	for _, req := range reqs {
		if _, err := network.Setup(context.Background(), req); err != nil {
			failed = append(failed, RestoreFailure{ID: req.ID, Err: err})
			continue
		}
		restored++
	}
	return restored, failed, warning, nil
}

// SetStateStore attaches snapshot-per-mutation persistence — the legacy
// durability mode; see SetDurable for the journaled modes. It must be
// called before Serve.
func (s *Server) SetStateStore(store *StateStore) {
	s.dur = &Durable{mode: DurabilitySnapshot, store: store}
}

// persistRetryBase is the first retry delay after a failed snapshot; it
// doubles per attempt up to persistRetryMax.
const (
	persistRetryBase = 50 * time.Millisecond
	persistRetryMax  = 5 * time.Second
)

// errJournalReset marks a compaction whose snapshot saved but whose
// journal truncation then failed. State is fully durable at that point —
// the fresh snapshot's watermark makes every stale journal record inert —
// so retry loops treat it as convergence instead of rewriting the same
// snapshot forever, while append paths still see the broken journal and
// refuse (and roll back) further journaled mutations.
var errJournalReset = errors.New("wire: journal reset failed after snapshot save")

// snapshot folds the current admission state into the snapshot file as
// one atomic step and, in the journaled modes, resets the journal.
// Without the serialization, two concurrent operations could write their
// captures out of order and leave a stale set on disk.
func (s *Server) snapshot() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.compactLocked()
}

// compactLocked writes the admission state as the new snapshot; the
// journal, when present, is truncated after. The order is what makes a
// crash in between harmless: the freshly renamed snapshot carries the
// watermark of every journal record it folded in, so a replay of the
// not-yet-truncated journal skips them all.
//
// In the journaled modes the state written is the durable view (snapshot
// plus appended records), not the live network: a concurrent operation
// may have committed its network mutation while its journal append is
// still waiting on persistMu — if that append then fails and the
// operation rolls back, a live capture would have leaked the refused
// mutation into a durable snapshot, resurrecting it after a crash.
// Snapshot mode has no append/ack boundary to respect and captures the
// live network as before.
//
// The caller holds persistMu. A Reset failure after a successful save is
// reported as errJournalReset (see there).
//
// Each run is traced: KindCompaction in the journaled modes (the fold-in
// is what bounds replay time), KindSnapshot in snapshot mode (the full
// rewrite is the per-op persistence cost).
func (s *Server) compactLocked() error {
	tr := s.tracer
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	err := s.writeSnapshotLocked()
	if tr != nil {
		kind := obs.KindSnapshot
		if s.dur.journaled() {
			kind = obs.KindCompaction
		}
		ev := obs.Event{Kind: kind, Outcome: obs.OutcomeOK, Duration: time.Since(start)}
		if err != nil {
			ev.Outcome = obs.OutcomeError
		}
		tr.Trace(ev)
	}
	return err
}

// writeSnapshotLocked is the untraced body of compactLocked.
func (s *Server) writeSnapshotLocked() error {
	st := PersistentState{Epoch: s.epoch}
	if s.dur.journaled() {
		st.Connections, st.FailedLinks = s.dur.viewState()
		st.LastSeq = s.dur.log.LastSeq()
	} else {
		st.Connections = s.network.AdmittedRequests()
		st.FailedLinks = s.network.FailedLinks()
	}
	if err := s.dur.store.SaveState(st); err != nil {
		return err
	}
	s.dur.snapSeq = st.LastSeq
	if s.dur.log != nil {
		if err := s.dur.log.Reset(); err != nil {
			return fmt.Errorf("%w: %v", errJournalReset, err)
		}
	}
	return nil
}

// persistNow snapshots without scheduling retries — used for the final
// write during shutdown. The caller must have drained the retry loop
// first (see drainRetry), so this write is the last one. A failed
// journal reset after a saved snapshot is not an error here: the state
// is durable, and the next boot's recovery rescans the journal anyway.
func (s *Server) persistNow() error {
	if s.dur == nil {
		return nil
	}
	if err := s.snapshot(); err != nil && !errors.Is(err, errJournalReset) {
		return err
	}
	return nil
}

// scheduleRetry starts the single-flight background persist loop. Each
// attempt snapshots the admission state current at that moment (the
// durable view in the journaled modes, the live network in snapshot
// mode), so the loop converges on the latest state no matter how many
// operations failed to persist in between.
func (s *Server) scheduleRetry() {
	s.mu.Lock()
	if s.retrying || s.closed {
		s.mu.Unlock()
		return
	}
	s.retrying = true
	s.retryWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer func() {
			s.mu.Lock()
			s.retrying = false
			s.mu.Unlock()
			s.retryWG.Done()
		}()
		delay := persistRetryBase
		for {
			select {
			case <-s.stop:
				// Shutdown/Close take over; Shutdown writes the final
				// snapshot itself after draining this loop.
				return
			case <-time.After(delay):
			}
			// A saved snapshot is convergence even when the journal reset
			// behind it failed: the watermark already covers every stale
			// record, so there is nothing left for this loop to make
			// durable — looping on the broken journal would rewrite the
			// same snapshot every few seconds for the life of the process.
			if err := s.snapshot(); err == nil || errors.Is(err, errJournalReset) {
				return
			}
			if delay *= 2; delay > persistRetryMax {
				delay = persistRetryMax
			}
		}
	}()
}

// drainRetry waits for the background persist loop to observe the closed
// stop channel and exit. Shutdown calls this before the final snapshot so
// a last failed retry cannot race the process exit and leave stale state
// on disk.
func (s *Server) drainRetry() {
	s.retryWG.Wait()
}
