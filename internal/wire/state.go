package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"atmcac/internal/core"
)

// checksumPrefix introduces the integrity trailer of a snapshot file:
// one final line "#crc32:<8 hex digits>" over every byte before it. The
// '#' keeps the trailer out of the JSON payload, so files from before
// the trailer existed (plain JSON arrays) still load.
const checksumPrefix = "#crc32:"

// ErrCorruptState reports a snapshot whose checksum did not match; the
// file has been quarantined rather than restored.
var ErrCorruptState = errors.New("wire: corrupt state snapshot")

// StateStore persists the set of established connections as a JSON file so
// a central CAC server can be restarted without losing its admissions —
// required for the permanent real-time connections RTnet manages.
// Writes are atomic (temp file + rename) and carry a CRC32 trailer; a
// snapshot that fails verification is quarantined to <path>.corrupt
// instead of restoring garbage into the admission state.
type StateStore struct {
	path string
}

// NewStateStore returns a store backed by path.
func NewStateStore(path string) *StateStore {
	return &StateStore{path: path}
}

// Path returns the backing file path.
func (s *StateStore) Path() string { return s.path }

// QuarantinePath is where a corrupt snapshot is moved for inspection.
func (s *StateStore) QuarantinePath() string { return s.path + ".corrupt" }

// Load reads and verifies the stored connection requests. A missing file
// is an empty store, not an error. A file without a checksum trailer
// (written before trailers existed) is accepted and flagged through the
// warning. A file whose trailer does not match its content — or whose
// JSON does not parse — is moved to QuarantinePath and reported as
// ErrCorruptState: a torn or tampered snapshot must never silently
// restore a wrong admission set.
func (s *StateStore) Load() (reqs []core.ConnRequest, warning string, err error) {
	data, err := os.ReadFile(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, "", nil
	}
	if err != nil {
		return nil, "", fmt.Errorf("wire: load state: %w", err)
	}
	payload, sum, hasSum := splitChecksum(data)
	if hasSum {
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, "", s.quarantine(fmt.Sprintf("checksum mismatch: file says %08x, content is %08x", sum, got))
		}
	} else {
		warning = fmt.Sprintf("wire: state %s has no checksum trailer (pre-checksum snapshot); accepted unverified", s.path)
	}
	if err := json.Unmarshal(payload, &reqs); err != nil {
		return nil, "", s.quarantine(fmt.Sprintf("invalid JSON: %v", err))
	}
	return reqs, warning, nil
}

// quarantine moves the corrupt snapshot aside and returns the load error.
func (s *StateStore) quarantine(reason string) error {
	qpath := s.QuarantinePath()
	if err := os.Rename(s.path, qpath); err != nil {
		return fmt.Errorf("%w: %s: %s (quarantine to %s failed: %v)",
			ErrCorruptState, s.path, reason, qpath, err)
	}
	return fmt.Errorf("%w: %s: %s (quarantined to %s)", ErrCorruptState, s.path, reason, qpath)
}

// splitChecksum separates the payload from the "#crc32:" trailer line.
func splitChecksum(data []byte) (payload []byte, sum uint32, ok bool) {
	trimmed := bytes.TrimRight(data, "\n")
	i := bytes.LastIndexByte(trimmed, '\n')
	line := trimmed[i+1:]
	if !bytes.HasPrefix(line, []byte(checksumPrefix)) {
		return data, 0, false
	}
	if _, err := fmt.Sscanf(string(line[len(checksumPrefix):]), "%08x", &sum); err != nil {
		return data, 0, false
	}
	return data[:i+1], sum, true
}

// Save atomically writes the connection requests with a CRC32 trailer.
func (s *StateStore) Save(reqs []core.ConnRequest) error {
	data, err := json.MarshalIndent(reqs, "", "  ")
	if err != nil {
		return fmt.Errorf("wire: save state: %w", err)
	}
	data = append(data, '\n')
	data = append(data, fmt.Sprintf("%s%08x\n", checksumPrefix, crc32.ChecksumIEEE(data))...)
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".cacd-state-*")
	if err != nil {
		return fmt.Errorf("wire: save state: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	return nil
}

// RestoreFailure reports one stored connection that could not be
// re-admitted during Restore, with the admission error preserved.
type RestoreFailure struct {
	ID  core.ConnID
	Err error
}

// Restore re-establishes every stored connection on the network through
// the full CAC check. It returns a per-connection failure record for each
// that could not be re-admitted (e.g. because the network shape changed);
// the caller decides whether that is fatal. The warning, when non-empty,
// flags a pre-checksum snapshot that was accepted unverified.
func Restore(network *core.Network, store *StateStore) (restored int, failed []RestoreFailure, warning string, err error) {
	reqs, warning, err := store.Load()
	if err != nil {
		return 0, nil, warning, err
	}
	for _, req := range reqs {
		if _, err := network.Setup(req); err != nil {
			failed = append(failed, RestoreFailure{ID: req.ID, Err: err})
			continue
		}
		restored++
	}
	return restored, failed, warning, nil
}

// SetStateStore attaches a persistence store: after every successful setup
// or teardown the server snapshots the network's admitted connections. It
// must be called before Serve.
func (s *Server) SetStateStore(store *StateStore) {
	s.store = store
}

// persistRetryBase is the first retry delay after a failed snapshot; it
// doubles per attempt up to persistRetryMax.
const (
	persistRetryBase = 50 * time.Millisecond
	persistRetryMax  = 5 * time.Second
)

// persist snapshots the network state synchronously. On failure the
// operation still succeeded — admission state is authoritative in memory —
// so instead of failing the response, a background retry with exponential
// backoff is scheduled and the returned warning tells the client the
// snapshot is deferred. An empty return means the state is durably saved.
func (s *Server) persist() string {
	if s.store == nil {
		return ""
	}
	if err := s.snapshot(); err != nil {
		s.scheduleRetry()
		return fmt.Sprintf("state snapshot deferred (will retry): %v", err)
	}
	return ""
}

// snapshot captures and writes the admitted set as one atomic step.
// Without the serialization, two concurrent operations could write their
// captures out of order and leave a stale set on disk.
func (s *Server) snapshot() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.store.Save(s.network.AdmittedRequests())
}

// persistNow snapshots without scheduling retries — used for the final
// write during shutdown. The caller must have drained the retry loop
// first (see drainRetry), so this write is the last one.
func (s *Server) persistNow() error {
	if s.store == nil {
		return nil
	}
	return s.snapshot()
}

// scheduleRetry starts the single-flight background persist loop. Each
// attempt snapshots the network state current at that moment, so the loop
// converges on the latest state no matter how many operations failed to
// persist in between.
func (s *Server) scheduleRetry() {
	s.mu.Lock()
	if s.retrying || s.closed {
		s.mu.Unlock()
		return
	}
	s.retrying = true
	s.retryWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer func() {
			s.mu.Lock()
			s.retrying = false
			s.mu.Unlock()
			s.retryWG.Done()
		}()
		delay := persistRetryBase
		for {
			select {
			case <-s.stop:
				// Shutdown/Close take over; Shutdown writes the final
				// snapshot itself after draining this loop.
				return
			case <-time.After(delay):
			}
			if err := s.snapshot(); err == nil {
				return
			}
			if delay *= 2; delay > persistRetryMax {
				delay = persistRetryMax
			}
		}
	}()
}

// drainRetry waits for the background persist loop to observe the closed
// stop channel and exit. Shutdown calls this before the final snapshot so
// a last failed retry cannot race the process exit and leave stale state
// on disk.
func (s *Server) drainRetry() {
	s.retryWG.Wait()
}
