package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"atmcac/internal/core"
)

// StateStore persists the set of established connections as a JSON file so
// a central CAC server can be restarted without losing its admissions —
// required for the permanent real-time connections RTnet manages.
// Writes are atomic (temp file + rename).
type StateStore struct {
	path string
}

// NewStateStore returns a store backed by path.
func NewStateStore(path string) *StateStore {
	return &StateStore{path: path}
}

// Path returns the backing file path.
func (s *StateStore) Path() string { return s.path }

// Load reads the stored connection requests. A missing file is an empty
// store, not an error.
func (s *StateStore) Load() ([]core.ConnRequest, error) {
	data, err := os.ReadFile(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wire: load state: %w", err)
	}
	var reqs []core.ConnRequest
	if err := json.Unmarshal(data, &reqs); err != nil {
		return nil, fmt.Errorf("wire: load state %s: %w", s.path, err)
	}
	return reqs, nil
}

// Save atomically writes the connection requests.
func (s *StateStore) Save(reqs []core.ConnRequest) error {
	data, err := json.MarshalIndent(reqs, "", "  ")
	if err != nil {
		return fmt.Errorf("wire: save state: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".cacd-state-*")
	if err != nil {
		return fmt.Errorf("wire: save state: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	return nil
}

// RestoreFailure reports one stored connection that could not be
// re-admitted during Restore, with the admission error preserved.
type RestoreFailure struct {
	ID  core.ConnID
	Err error
}

// Restore re-establishes every stored connection on the network through
// the full CAC check. It returns a per-connection failure record for each
// that could not be re-admitted (e.g. because the network shape changed);
// the caller decides whether that is fatal.
func Restore(network *core.Network, store *StateStore) (restored int, failed []RestoreFailure, err error) {
	reqs, err := store.Load()
	if err != nil {
		return 0, nil, err
	}
	for _, req := range reqs {
		if _, err := network.Setup(req); err != nil {
			failed = append(failed, RestoreFailure{ID: req.ID, Err: err})
			continue
		}
		restored++
	}
	return restored, failed, nil
}

// SetStateStore attaches a persistence store: after every successful setup
// or teardown the server snapshots the network's admitted connections. It
// must be called before Serve.
func (s *Server) SetStateStore(store *StateStore) {
	s.store = store
}

// persistRetryBase is the first retry delay after a failed snapshot; it
// doubles per attempt up to persistRetryMax.
const (
	persistRetryBase = 50 * time.Millisecond
	persistRetryMax  = 5 * time.Second
)

// persist snapshots the network state synchronously. On failure the
// operation still succeeded — admission state is authoritative in memory —
// so instead of failing the response, a background retry with exponential
// backoff is scheduled and the returned warning tells the client the
// snapshot is deferred. An empty return means the state is durably saved.
func (s *Server) persist() string {
	if s.store == nil {
		return ""
	}
	if err := s.snapshot(); err != nil {
		s.scheduleRetry()
		return fmt.Sprintf("state snapshot deferred (will retry): %v", err)
	}
	return ""
}

// snapshot captures and writes the admitted set as one atomic step.
// Without the serialization, two concurrent operations could write their
// captures in the opposite order and leave a stale set on disk.
func (s *Server) snapshot() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.store.Save(s.network.AdmittedRequests())
}

// persistNow snapshots without scheduling retries — used for the final
// write during shutdown.
func (s *Server) persistNow() error {
	if s.store == nil {
		return nil
	}
	return s.snapshot()
}

// scheduleRetry starts the single-flight background persist loop. Each
// attempt snapshots the network state current at that moment, so the loop
// converges on the latest state no matter how many operations failed to
// persist in between.
func (s *Server) scheduleRetry() {
	s.mu.Lock()
	if s.retrying || s.closed {
		s.mu.Unlock()
		return
	}
	s.retrying = true
	s.mu.Unlock()
	go func() {
		defer func() {
			s.mu.Lock()
			s.retrying = false
			s.mu.Unlock()
		}()
		delay := persistRetryBase
		for {
			select {
			case <-s.stop:
				// Shutdown/Close take over; Shutdown writes the final
				// snapshot itself.
				return
			case <-time.After(delay):
			}
			if err := s.snapshot(); err == nil {
				return
			}
			if delay *= 2; delay > persistRetryMax {
				delay = persistRetryMax
			}
		}
	}()
}
