package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"atmcac/internal/core"
)

// StateStore persists the set of established connections as a JSON file so
// a central CAC server can be restarted without losing its admissions —
// required for the permanent real-time connections RTnet manages.
// Writes are atomic (temp file + rename).
type StateStore struct {
	path string
}

// NewStateStore returns a store backed by path.
func NewStateStore(path string) *StateStore {
	return &StateStore{path: path}
}

// Path returns the backing file path.
func (s *StateStore) Path() string { return s.path }

// Load reads the stored connection requests. A missing file is an empty
// store, not an error.
func (s *StateStore) Load() ([]core.ConnRequest, error) {
	data, err := os.ReadFile(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wire: load state: %w", err)
	}
	var reqs []core.ConnRequest
	if err := json.Unmarshal(data, &reqs); err != nil {
		return nil, fmt.Errorf("wire: load state %s: %w", s.path, err)
	}
	return reqs, nil
}

// Save atomically writes the connection requests.
func (s *StateStore) Save(reqs []core.ConnRequest) error {
	data, err := json.MarshalIndent(reqs, "", "  ")
	if err != nil {
		return fmt.Errorf("wire: save state: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".cacd-state-*")
	if err != nil {
		return fmt.Errorf("wire: save state: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("wire: save state: %w", err)
	}
	return nil
}

// Restore re-establishes every stored connection on the network through
// the full CAC check. It returns the IDs that could not be re-admitted
// (e.g. because the network shape changed); the caller decides whether
// that is fatal.
func Restore(network *core.Network, store *StateStore) (restored int, failed []core.ConnID, err error) {
	reqs, err := store.Load()
	if err != nil {
		return 0, nil, err
	}
	for _, req := range reqs {
		if _, err := network.Setup(req); err != nil {
			failed = append(failed, req.ID)
			continue
		}
		restored++
	}
	return restored, failed, nil
}

// SetStateStore attaches a persistence store: after every successful setup
// or teardown the server snapshots the network's admitted connections. It
// must be called before Serve.
func (s *Server) SetStateStore(store *StateStore) {
	s.store = store
}

// persist snapshots the network state; failures are reported to the client
// as operational errors on the next response rather than silently dropped.
func (s *Server) persist() error {
	if s.store == nil {
		return nil
	}
	return s.store.Save(s.network.AdmittedRequests())
}
