package wire

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

func shardReq(id string, route core.Route) core.ConnRequest {
	return core.ConnRequest{ID: core.ConnID(id), Spec: traffic.CBR(0.1), Priority: 1, Route: route}
}

// remoteCode extracts the typed code from a client error.
func remoteCode(t *testing.T, err error) string {
	t.Helper()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a RemoteError", err)
	}
	return re.Code
}

func TestShardPrepareCommitRoundTrip(t *testing.T) {
	client, srv, route := startServerWith(t, func(s *Server) { s.SetShardID("s0") })
	ctx := context.Background()

	rep, err := client.ShardPrepare(ctx, "t1", shardReq("c1", route), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Txn != "t1" || rep.Admission == nil || rep.Admission.ID != "c1" {
		t.Fatalf("prepare report = %+v", rep)
	}
	// The hold consumes capacity but is not an admitted connection.
	if ids, err := client.List(context.Background()); err != nil || len(ids) != 0 {
		t.Fatalf("List during hold = %v, %v; want empty", ids, err)
	}
	st, err := client.ShardStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardID != "s0" || st.Role != "primary" || len(st.Prepared) != 1 || st.Prepared[0].Txn != "t1" {
		t.Fatalf("status = %+v", st)
	}
	// Health reports the shard identity alongside role and epoch.
	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "primary" || h.ShardID != "s0" || h.Prepared != 1 {
		t.Fatalf("health = %+v", h)
	}

	adm, warning, err := client.ShardCommit(ctx, "t1", shardReq("c1", route), rep.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if warning != "" {
		t.Fatalf("unexpected commit warning %q", warning)
	}
	if adm == nil || adm.ID != "c1" || adm.EndToEndGuaranteed <= 0 {
		t.Fatalf("commit admission = %+v", adm)
	}
	if ids, err := client.List(context.Background()); err != nil || len(ids) != 1 || ids[0] != "c1" {
		t.Fatalf("List after commit = %v, %v", ids, err)
	}
	if srv.preparedCount() != 0 {
		t.Fatalf("hold survived its commit")
	}
	// The committed connection tears down through the ordinary path.
	if err := client.Teardown(context.Background(), "c1"); err != nil {
		t.Fatal(err)
	}
}

func TestShardPrepareIdempotentResend(t *testing.T) {
	client, srv, route := startServerWith(t, nil)
	ctx := context.Background()
	first, err := client.ShardPrepare(ctx, "t1", shardReq("c1", route), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// A coordinator retrying a lost response re-sends the same prepare; it
	// must get the original report back, not a duplicate-ID rejection.
	again, err := client.ShardPrepare(ctx, "t1", shardReq("c1", route), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if again.Epoch != first.Epoch || again.Admission.ID != first.Admission.ID {
		t.Fatalf("resend report %+v != original %+v", again, first)
	}
	if srv.preparedCount() != 1 {
		t.Fatalf("prepared holds = %d, want 1", srv.preparedCount())
	}
	// A different transaction reusing the same connection ID is refused
	// while the hold is live.
	if _, err := client.ShardPrepare(ctx, "t2", shardReq("c1", route), time.Minute); err == nil {
		t.Fatal("conflicting prepare for a held ID succeeded")
	}
	// The same transaction with a *different* sub-request is a coordinator
	// bug (a shard sees one merged leg per transaction): it must be
	// refused, not silently answered with the original hold's report.
	divergent := shardReq("c1", route[:1])
	_, err = client.ShardPrepare(ctx, "t1", divergent, time.Minute)
	if err == nil {
		t.Fatal("divergent prepare under a held txn succeeded")
	}
	if code := remoteCode(t, err); code != CodeProtocol {
		t.Fatalf("divergent prepare code = %q, want %q", code, CodeProtocol)
	}
	if srv.preparedCount() != 1 {
		t.Fatalf("prepared holds after divergent prepare = %d, want 1", srv.preparedCount())
	}
}

// TestShardPrepareDivergentConnIDRefused pins the other divergence: a
// re-prepare under a held transaction with a *different* connection ID.
// Falling through to a fresh prepare would overwrite the registered hold
// and permanently strand its hop reservations — neither abort nor the
// reaper could ever find them again.
func TestShardPrepareDivergentConnIDRefused(t *testing.T) {
	client, srv, route := startServerWith(t, nil)
	ctx := context.Background()
	if _, err := client.ShardPrepare(ctx, "t1", shardReq("c1", route), time.Minute); err != nil {
		t.Fatal(err)
	}
	_, err := client.ShardPrepare(ctx, "t1", shardReq("c2", route), time.Minute)
	if err == nil {
		t.Fatal("re-prepare with a different connection ID succeeded")
	}
	if code := remoteCode(t, err); code != CodeProtocol {
		t.Fatalf("divergent-ID prepare code = %q, want %q", code, CodeProtocol)
	}
	if srv.preparedCount() != 1 {
		t.Fatalf("prepared holds = %d, want 1", srv.preparedCount())
	}
	// The original hold is still the registered one: aborting the
	// transaction releases it, and the ID admits fresh afterwards.
	if err := client.ShardAbort(ctx, "t1", nil); err != nil {
		t.Fatal(err)
	}
	if srv.preparedCount() != 0 {
		t.Fatalf("hold survived its abort")
	}
	if _, err := client.Setup(context.Background(), shardReq("c1", route)); err != nil {
		t.Fatalf("setup after release: %v", err)
	}
}

// TestShardContextVariantsHonorCancellation pins that the list, status
// and reap clients propagate their context, so a hung shard cannot block
// a coordinator that wrapped them in a timeout.
func TestShardContextVariantsHonorCancellation(t *testing.T) {
	client, _, _ := startServerWith(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.ListContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ListContext error = %v, want context.Canceled", err)
	}
	if _, err := client.ShardStatusContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ShardStatusContext error = %v, want context.Canceled", err)
	}
	if _, err := client.ShardReapContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ShardReapContext error = %v, want context.Canceled", err)
	}
}

func TestShardAbortIdempotent(t *testing.T) {
	client, srv, route := startServerWith(t, nil)
	ctx := context.Background()
	req := shardReq("c1", route)
	if _, err := client.ShardPrepare(ctx, "t1", req, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := client.ShardAbort(ctx, "t1", &req); err != nil {
		t.Fatal(err)
	}
	if srv.preparedCount() != 0 {
		t.Fatal("hold survived its abort")
	}
	// Aborting again — or aborting a transaction this shard never saw —
	// is OK: presumed abort makes the release idempotent.
	if err := client.ShardAbort(ctx, "t1", &req); err != nil {
		t.Fatalf("second abort: %v", err)
	}
	if err := client.ShardAbort(ctx, "t-unknown", nil); err != nil {
		t.Fatalf("abort of unknown txn: %v", err)
	}
	// The capacity came back: a fresh ordinary setup of the same ID admits.
	if _, err := client.Setup(context.Background(), req); err != nil {
		t.Fatalf("setup after abort: %v", err)
	}
}

func TestShardAbortUnwindsCommit(t *testing.T) {
	client, _, route := startServerWith(t, nil)
	ctx := context.Background()
	req := shardReq("c1", route)
	rep, err := client.ShardPrepare(ctx, "t1", req, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.ShardCommit(ctx, "t1", req, rep.Epoch); err != nil {
		t.Fatal(err)
	}
	// Another shard refused, so the coordinator aborts everywhere — the
	// unwind must tear the committed connection back down.
	if err := client.ShardAbort(ctx, "t1", &req); err != nil {
		t.Fatal(err)
	}
	if ids, err := client.List(context.Background()); err != nil || len(ids) != 0 {
		t.Fatalf("List after unwind = %v, %v; want empty", ids, err)
	}
	// But an unwind must never touch an unrelated reuse of the ID: admit a
	// different connection under the same ID and re-send the abort.
	other := shardReq("c1", route)
	other.Priority = 1
	other.Route = core.Route{route[0]}
	if _, err := client.Setup(context.Background(), other); err != nil {
		t.Fatal(err)
	}
	if err := client.ShardAbort(ctx, "t1", &req); err != nil {
		t.Fatal(err)
	}
	if ids, err := client.List(context.Background()); err != nil || len(ids) != 1 {
		t.Fatalf("unrelated connection torn down by abort replay: %v, %v", ids, err)
	}
}

func TestShardCommitDuplicateIdempotent(t *testing.T) {
	client, _, route := startServerWith(t, nil)
	ctx := context.Background()
	req := shardReq("c1", route)
	rep, err := client.ShardPrepare(ctx, "t1", req, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.ShardCommit(ctx, "t1", req, rep.Epoch); err != nil {
		t.Fatal(err)
	}
	_, warning, err := client.ShardCommit(ctx, "t1", req, rep.Epoch)
	if err != nil {
		t.Fatalf("duplicate commit: %v", err)
	}
	if warning != "commit already applied" {
		t.Fatalf("duplicate commit warning = %q", warning)
	}
	if ids, err := client.List(context.Background()); err != nil || len(ids) != 1 {
		t.Fatalf("List = %v, %v", ids, err)
	}
}

func TestShardReapExpiresOverdueHolds(t *testing.T) {
	client, srv, route := startServerWith(t, nil)
	ctx := context.Background()
	req := shardReq("c1", route)
	if _, err := client.ShardPrepare(ctx, "t1", req, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	reaped, err := client.ShardReap(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(reaped) != 1 || reaped[0] != "t1" {
		t.Fatalf("reaped = %v, want [t1]", reaped)
	}
	if srv.preparedCount() != 0 {
		t.Fatal("reaped hold still registered")
	}
	// The released capacity is usable again.
	if _, err := client.Setup(context.Background(), req); err != nil {
		t.Fatalf("setup after reap: %v", err)
	}
	if err := client.Teardown(context.Background(), req.ID); err != nil {
		t.Fatal(err)
	}

	// A commit arriving after the reap re-earns the reservation through
	// the full CAC check when capacity allows...
	if _, err := client.ShardPrepare(ctx, "t2", req, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := client.ShardReap(context.Background()); err != nil {
		t.Fatal(err)
	}
	adm, warning, err := client.ShardCommit(ctx, "t2", req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if adm == nil || adm.ID != "c1" {
		t.Fatalf("recovery admission = %+v", adm)
	}
	if warning != "prepared hold expired; re-admitted through full CAC" {
		t.Fatalf("recovery warning = %q", warning)
	}
	if err := client.Teardown(context.Background(), req.ID); err != nil {
		t.Fatal(err)
	}

	// ...and refuses with the typed code when it no longer does.
	if _, err := client.ShardPrepare(ctx, "t3", req, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := client.ShardReap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.network.FailLink("sw0", "sw1"); err != nil {
		t.Fatal(err)
	}
	_, _, err = client.ShardCommit(ctx, "t3", req, 0)
	if err == nil {
		t.Fatal("commit with route down succeeded")
	}
	if code := remoteCode(t, err); code != CodePrepareExpired {
		t.Fatalf("code = %q, want %q", code, CodePrepareExpired)
	}
	if ids, _ := client.List(context.Background()); len(ids) != 0 {
		t.Fatalf("refused recovery commit left residue: %v", ids)
	}
}

func TestShardCommitEpochFence(t *testing.T) {
	client, srv, route := startServerWith(t, nil)
	ctx := context.Background()
	req := shardReq("c1", route)
	rep, err := client.ShardPrepare(ctx, "t1", req, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The shard's term moves (promotion after a failover) between the
	// prepare and the commit.
	if _, err := srv.Promote(); err != nil {
		t.Fatal(err)
	}
	_, _, err = client.ShardCommit(ctx, "t1", req, rep.Epoch)
	if err == nil {
		t.Fatal("commit of a stale-epoch prepare succeeded")
	}
	if code := remoteCode(t, err); code != CodeStalePrepare {
		t.Fatalf("code = %q, want %q", code, CodeStalePrepare)
	}
	// The fenced hold is released outright: no residue, capacity free.
	if srv.preparedCount() != 0 {
		t.Fatal("fenced hold still registered")
	}
	if ids, _ := client.List(context.Background()); len(ids) != 0 {
		t.Fatalf("fenced commit admitted: %v", ids)
	}
	if _, err := client.Setup(context.Background(), req); err != nil {
		t.Fatalf("setup after fence: %v", err)
	}
}

func TestShardWriteGateOnStandby(t *testing.T) {
	client, srv, route := startServerWith(t, nil)
	srv.SetStandby(true)
	ctx := context.Background()
	req := shardReq("c1", route)
	if _, err := client.ShardPrepare(ctx, "t1", req, time.Minute); err == nil {
		t.Fatal("standby accepted a shard-prepare")
	} else if code := remoteCode(t, err); code != CodeStandby {
		t.Fatalf("code = %q, want %q", code, CodeStandby)
	}
	// shard-status stays readable on a standby.
	st, err := client.ShardStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "standby" {
		t.Fatalf("status role = %q", st.Role)
	}
	// A standby's reaper pass is a no-op rather than a split-brain write.
	if got := srv.ReapOrphans(time.Now().Add(time.Hour)); got != nil {
		t.Fatalf("standby reaped %v", got)
	}
}

// TestShardPrepareCrashReplaysToReaped boots a journaled shard, prepares a
// hold, crashes before any decision, and checks recovery reports the
// transaction reaped — with the capacity released, never admitted.
func TestShardPrepareCrashReplaysToReaped(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	client, _, stop := bootDurable(t, statePath, DurabilityJournal, 1000)
	route := core.Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	req := shardReq("c1", route)
	ctx := context.Background()
	if _, err := client.ShardPrepare(ctx, "t1", req, time.Minute); err != nil {
		stop()
		t.Fatal(err)
	}
	stop() // crash: no decision ever journaled

	client2, rep, stop2 := bootDurable(t, statePath, DurabilityJournal, 1000)
	defer stop2()
	if fmt.Sprint(rep.ReapedPrepares) != "[t1]" {
		t.Fatalf("recovery reaped prepares = %v, want [t1]", rep.ReapedPrepares)
	}
	if ids, err := client2.List(context.Background()); err != nil || len(ids) != 0 {
		t.Fatalf("crashed prepare replayed to admitted connections: %v, %v", ids, err)
	}
	// The hold's capacity did not survive the crash.
	if _, err := client2.Setup(context.Background(), req); err != nil {
		t.Fatalf("setup after crash recovery: %v", err)
	}
}

// TestShardCommitCrashReplaysToAdmitted is the other side of the boundary:
// once the commit record is durable, recovery must admit the connection.
func TestShardCommitCrashReplaysToAdmitted(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	client, _, stop := bootDurable(t, statePath, DurabilityJournal, 1000)
	route := core.Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	req := shardReq("c1", route)
	ctx := context.Background()
	rep1, err := client.ShardPrepare(ctx, "t1", req, time.Minute)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	if _, _, err := client.ShardCommit(ctx, "t1", req, rep1.Epoch); err != nil {
		stop()
		t.Fatal(err)
	}
	stop() // crash immediately after the commit ack

	client2, rep, stop2 := bootDurable(t, statePath, DurabilityJournal, 1000)
	defer stop2()
	if len(rep.ReapedPrepares) != 0 {
		t.Fatalf("committed transaction reported reaped: %v", rep.ReapedPrepares)
	}
	ids, err := client2.List(context.Background())
	if err != nil || len(ids) != 1 || ids[0] != "c1" {
		t.Fatalf("List after commit recovery = %v, %v; want [c1]", ids, err)
	}
}
