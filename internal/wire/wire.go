// Package wire implements a central connection admission control server
// over TCP — the deployment the paper plans for the next version of RTnet,
// where switched real-time connections are set up and torn down on-line by
// a central connection management server (Section 4.3, discussion 3, and
// Section 5).
//
// The protocol is newline-delimited JSON: each request and response is one
// JSON object on one line. Operations: setup, teardown, list, bound (query
// the current end-to-end computed bound of a route), inspect (per-queue
// bounds, backlogs and arrival envelopes), and audit (re-validate every
// queue). With a StateStore attached, established connections survive
// server restarts.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"atmcac/internal/bitstream"
	"atmcac/internal/core"
)

// Protocol operations.
const (
	OpSetup    = "setup"
	OpTeardown = "teardown"
	OpList     = "list"
	OpBound    = "bound"
	OpInspect  = "inspect"
	OpAudit    = "audit"
)

// MaxLineBytes caps the size of one protocol line.
const MaxLineBytes = 1 << 20

var (
	// ErrProtocol reports a malformed request or response.
	ErrProtocol = errors.New("wire: protocol error")
	// ErrServerClosed reports use of a closed server.
	ErrServerClosed = errors.New("wire: server closed")
)

// Request is a client request.
type Request struct {
	Op string `json:"op"`
	// Request carries the connection parameters for setup.
	Request *core.ConnRequest `json:"request,omitempty"`
	// ID identifies the connection for teardown.
	ID core.ConnID `json:"id,omitempty"`
	// Route and Priority parameterize bound queries.
	Route    core.Route    `json:"route,omitempty"`
	Priority core.Priority `json:"priority,omitempty"`
	// Switch restricts inspect to one switch; empty means all.
	Switch string `json:"switch,omitempty"`
}

// PortReport describes the state of one (switch, output port, priority)
// queue for the inspect operation.
type PortReport struct {
	Switch   string        `json:"switch"`
	Out      core.PortID   `json:"out"`
	Priority core.Priority `json:"priority"`
	// Bound and Backlog are the computed worst cases; Limit is the FIFO
	// budget. Unstable marks a queue whose delay is unbounded.
	Bound    float64 `json:"bound"`
	Backlog  float64 `json:"backlog"`
	Limit    float64 `json:"limit"`
	Unstable bool    `json:"unstable,omitempty"`
	// Envelope is the aggregated same-priority arrival stream Soa(j,p) in
	// the paper's {(rate, time)} notation.
	Envelope []bitstream.Segment `json:"envelope,omitempty"`
}

// Admission mirrors core.Admission for transport.
type Admission struct {
	ID                 core.ConnID `json:"id"`
	PerHopGuaranteed   []float64   `json:"perHopGuaranteed"`
	PerHopComputed     []float64   `json:"perHopComputed"`
	EndToEndGuaranteed float64     `json:"endToEndGuaranteed"`
	EndToEndComputed   float64     `json:"endToEndComputed"`
}

// Response is a server response.
type Response struct {
	OK bool `json:"ok"`
	// Error is set when OK is false; Rejected distinguishes CAC rejections
	// from operational errors.
	Error    string `json:"error,omitempty"`
	Rejected bool   `json:"rejected,omitempty"`
	// Admission reports a successful setup.
	Admission *Admission `json:"admission,omitempty"`
	// Connections reports a list result.
	Connections []core.ConnID `json:"connections,omitempty"`
	// Bound reports a bound query result (cell times).
	Bound float64 `json:"bound,omitempty"`
	// Ports reports an inspect result.
	Ports []PortReport `json:"ports,omitempty"`
	// Violations reports an audit result (empty means every queue is
	// within its guarantee).
	Violations []ViolationReport `json:"violations,omitempty"`
}

// ViolationReport mirrors core.Violation for transport.
type ViolationReport struct {
	Switch   string        `json:"switch"`
	Out      core.PortID   `json:"out"`
	Priority core.Priority `json:"priority"`
	Bound    float64       `json:"bound"`
	Limit    float64       `json:"limit"`
}

// Server serves CAC requests against a core.Network.
type Server struct {
	network *core.Network
	store   *StateStore

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server managing the given network.
func NewServer(network *core.Network) *Server {
	return &Server{network: network, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until Close. It always returns a non-nil
// error (ErrServerClosed after a clean shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every client connection, and waits for
// handler goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		var req Request
		resp := Response{}
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			resp.Error = fmt.Sprintf("malformed request: %v", err)
		} else {
			resp = s.handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req Request) Response {
	switch req.Op {
	case OpSetup:
		if req.Request == nil {
			return Response{Error: "setup requires a request body"}
		}
		adm, err := s.network.Setup(*req.Request)
		if err != nil {
			return Response{Error: err.Error(), Rejected: errors.Is(err, core.ErrRejected)}
		}
		if err := s.persist(); err != nil {
			// The admission stands; surface the persistence failure.
			return Response{Error: fmt.Sprintf("admitted but state not persisted: %v", err)}
		}
		return Response{OK: true, Admission: &Admission{
			ID:                 adm.ID,
			PerHopGuaranteed:   adm.PerHopGuaranteed,
			PerHopComputed:     adm.PerHopComputed,
			EndToEndGuaranteed: adm.EndToEndGuaranteed,
			EndToEndComputed:   adm.EndToEndComputed,
		}}
	case OpTeardown:
		if err := s.network.Teardown(req.ID); err != nil {
			return Response{Error: err.Error()}
		}
		if err := s.persist(); err != nil {
			return Response{Error: fmt.Sprintf("released but state not persisted: %v", err)}
		}
		return Response{OK: true}
	case OpList:
		return Response{OK: true, Connections: s.network.Connections()}
	case OpBound:
		d, err := s.network.RouteBound(req.Route, req.Priority)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Bound: d}
	case OpInspect:
		ports, err := s.inspect(req.Switch)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Ports: ports}
	case OpAudit:
		violations, err := s.network.Audit()
		if err != nil {
			return Response{Error: err.Error()}
		}
		reports := make([]ViolationReport, 0, len(violations))
		for _, v := range violations {
			reports = append(reports, ViolationReport{
				Switch: v.Switch, Out: v.Out, Priority: v.Priority,
				Bound: v.Bound, Limit: v.Limit,
			})
		}
		return Response{OK: true, Violations: reports}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// inspect assembles port reports for one switch or, with an empty name,
// every switch carrying traffic.
func (s *Server) inspect(switchName string) ([]PortReport, error) {
	names := s.network.SwitchNames()
	if switchName != "" {
		if _, ok := s.network.Switch(switchName); !ok {
			return nil, fmt.Errorf("%w: %q", core.ErrUnknownSwitch, switchName)
		}
		names = []string{switchName}
	}
	var reports []PortReport
	for _, name := range names {
		sw, ok := s.network.Switch(name)
		if !ok {
			continue
		}
		for _, out := range sw.OutPorts() {
			for _, p := range sw.Priorities() {
				limit, _ := sw.GuaranteedBoundAt(out, p)
				soa, sof, err := sw.PortEnvelope(out, p)
				if err != nil {
					return nil, err
				}
				if soa.IsZero() {
					continue
				}
				report := PortReport{
					Switch: name, Out: out, Priority: p,
					Limit:    limit,
					Envelope: soa.Segments(),
				}
				bound, err := bitstream.DelayBound(soa, sof)
				switch {
				case errors.Is(err, bitstream.ErrUnstable):
					report.Unstable = true
				case err != nil:
					return nil, err
				default:
					report.Bound = bound
					backlog, err := bitstream.MaxBacklog(soa, sof)
					if err != nil && !errors.Is(err, bitstream.ErrUnstable) {
						return nil, err
					}
					report.Backlog = backlog
				}
				reports = append(reports, report)
			}
		}
	}
	return reports, nil
}

// Client is a CAC client over one TCP connection. Its methods serialize
// requests; it is safe for concurrent use.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	scanner *bufio.Scanner
	enc     *json.Encoder
}

// Dial connects to a CAC server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	return &Client{conn: conn, scanner: scanner, enc: json.NewEncoder(conn)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes one response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("wire: send: %w", err)
	}
	if !c.scanner.Scan() {
		if err := c.scanner.Err(); err != nil {
			return Response{}, fmt.Errorf("wire: receive: %w", err)
		}
		return Response{}, fmt.Errorf("wire: receive: %w", io.ErrUnexpectedEOF)
	}
	var resp Response
	if err := json.Unmarshal(c.scanner.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	return resp, nil
}

// Setup requests a connection establishment. CAC rejections are returned
// as errors matching core.ErrRejected.
func (c *Client) Setup(req core.ConnRequest) (*Admission, error) {
	resp, err := c.roundTrip(Request{Op: OpSetup, Request: &req})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		if resp.Rejected {
			return nil, fmt.Errorf("%w: %s", core.ErrRejected, resp.Error)
		}
		return nil, fmt.Errorf("wire: setup: %s", resp.Error)
	}
	if resp.Admission == nil {
		return nil, fmt.Errorf("%w: setup response without admission", ErrProtocol)
	}
	return resp.Admission, nil
}

// Teardown releases a connection.
func (c *Client) Teardown(id core.ConnID) error {
	resp, err := c.roundTrip(Request{Op: OpTeardown, ID: id})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("wire: teardown: %s", resp.Error)
	}
	return nil
}

// List returns the established connection IDs.
func (c *Client) List() ([]core.ConnID, error) {
	resp, err := c.roundTrip(Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("wire: list: %s", resp.Error)
	}
	return resp.Connections, nil
}

// RouteBound queries the current end-to-end computed bound of a route.
func (c *Client) RouteBound(route core.Route, p core.Priority) (float64, error) {
	resp, err := c.roundTrip(Request{Op: OpBound, Route: route, Priority: p})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("wire: bound: %s", resp.Error)
	}
	return resp.Bound, nil
}

// Audit recomputes every loaded queue's bound server-side and returns the
// queues over budget (empty means the configuration is sound).
func (c *Client) Audit() ([]ViolationReport, error) {
	resp, err := c.roundTrip(Request{Op: OpAudit})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("wire: audit: %s", resp.Error)
	}
	return resp.Violations, nil
}

// Inspect reports the state of every loaded queue of one switch (or all
// switches when switchName is empty): bounds, backlogs, budgets and the
// assembled arrival envelopes.
func (c *Client) Inspect(switchName string) ([]PortReport, error) {
	resp, err := c.roundTrip(Request{Op: OpInspect, Switch: switchName})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("wire: inspect: %s", resp.Error)
	}
	return resp.Ports, nil
}
