// Package wire implements a central connection admission control server
// over TCP — the deployment the paper plans for the next version of RTnet,
// where switched real-time connections are set up and torn down on-line by
// a central connection management server (Section 4.3, discussion 3, and
// Section 5).
//
// The protocol is newline-delimited JSON: each request and response is one
// JSON object on one line. Operations: setup, teardown, list, bound (query
// the current end-to-end computed bound of a route), inspect (per-queue
// bounds, backlogs and arrival envelopes), and audit (re-validate every
// queue). With a StateStore attached, established connections survive
// server restarts.
package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"atmcac/internal/bitstream"
	"atmcac/internal/core"
	"atmcac/internal/obs"
	"atmcac/internal/overload"
)

// Protocol operations.
const (
	OpSetup    = "setup"
	OpTeardown = "teardown"
	OpList     = "list"
	OpBound    = "bound"
	OpInspect  = "inspect"
	OpAudit    = "audit"
	// OpFailLink marks a directed inter-switch link as failed, evicts the
	// traversing connections and runs the configured re-admission handler.
	OpFailLink = "fail-link"
	// OpRestoreLink clears a failed link.
	OpRestoreLink = "restore-link"
	// OpHealth reports daemon liveness: admitted connections, failed
	// links, audit violations and drain state.
	OpHealth = "health"
)

// MaxLineBytes caps the size of one protocol line.
const MaxLineBytes = 1 << 20

// Wire-level error codes. Together with the core admission taxonomy
// (core.ErrorCode) they form the stable machine-readable vocabulary of
// the response code field: core codes name why the admission plane said
// no, these name conditions only the transport or persistence layer can
// produce. docs/PROTOCOL.md lists the full vocabulary.
const (
	// CodeNotDurable marks a setup or teardown refused (and rolled back)
	// because its journal record could not be written before the ack.
	CodeNotDurable = "not-durable"
	// CodeOverloadedRate and CodeOverloadedConcurrency mark requests shed
	// by overload control before any work was done.
	CodeOverloadedRate        = "overloaded-rate"
	CodeOverloadedConcurrency = "overloaded-concurrency"
	// CodeProtocol marks a request the server could not parse.
	CodeProtocol = "protocol"
	// CodeUnknownOp marks a well-formed request naming no operation.
	CodeUnknownOp = "unknown-op"
)

// idLockStripes sizes the per-connection-ID lock pool; see Server.idLocks.
const idLockStripes = 64

var (
	// ErrProtocol reports a malformed request or response.
	ErrProtocol = errors.New("wire: protocol error")
	// ErrServerClosed reports use of a closed server.
	ErrServerClosed = errors.New("wire: server closed")
	// ErrOverloaded reports a request shed by the server's overload
	// control. Match with errors.Is; the concrete *OverloadError carries
	// the server's retry-after hint.
	ErrOverloaded = errors.New("wire: server overloaded")
)

// OverloadError is the client-side form of a typed overloaded response:
// the server shed the request before doing any work, and RetryAfter
// hints when the operation's class is likely admissible again.
type OverloadError struct {
	Op         string
	RetryAfter time.Duration
	Msg        string
}

// Error renders the overload with its hint.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("wire: %s overloaded (retry after %v): %s", e.Op, e.RetryAfter, e.Msg)
}

// Unwrap lets errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// RemoteError is a typed server error response. Op names the operation,
// Code carries the server's stable machine-readable code field, Msg the
// human-readable message. It renders exactly like the untyped errors it
// replaced — "wire: <op>: <msg>", or the core rejection wrapping for CAC
// rejections — so string matchers and errors.Is(err, core.ErrRejected)
// keep working, while errors.As gives programmatic access to the code.
type RemoteError struct {
	Op       string
	Code     string
	Msg      string
	rejected bool
}

// Error renders the server message under the operation it answered.
func (e *RemoteError) Error() string {
	if e.rejected {
		return fmt.Sprintf("%v: %s", core.ErrRejected, e.Msg)
	}
	return fmt.Sprintf("wire: %s: %s", e.Op, e.Msg)
}

// Unwrap lets CAC rejections match errors.Is(err, core.ErrRejected).
func (e *RemoteError) Unwrap() error {
	if e.rejected {
		return core.ErrRejected
	}
	return nil
}

// remoteErr lifts a failed response into the typed client error.
func remoteErr(op string, resp Response) error {
	return &RemoteError{Op: op, Code: resp.Code, Msg: resp.Error, rejected: resp.Rejected}
}

// Request is a client request.
type Request struct {
	Op string `json:"op"`
	// Request carries the connection parameters for setup.
	Request *core.ConnRequest `json:"request,omitempty"`
	// ID identifies the connection for teardown.
	ID core.ConnID `json:"id,omitempty"`
	// Route and Priority parameterize bound queries.
	Route    core.Route    `json:"route,omitempty"`
	Priority core.Priority `json:"priority,omitempty"`
	// Switch restricts inspect to one switch; empty means all.
	Switch string `json:"switch,omitempty"`
	// From and To name the link endpoints for fail-link / restore-link.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// TimeoutMillis propagates the client's remaining deadline: the
	// server bounds its handling of this request by a context expiring
	// after that many milliseconds. Zero means no deadline.
	TimeoutMillis int64 `json:"timeoutMs,omitempty"`
	// Txn names the coordinator transaction for the shard 2PC ops.
	Txn string `json:"txn,omitempty"`
	// TTLMillis bounds a shard-prepare hold's lifetime; zero selects the
	// server default.
	TTLMillis int64 `json:"ttlMs,omitempty"`
	// PrepareEpoch echoes the epoch from the prepare report on a
	// shard-commit so an epoch-bumped shard can fence stale prepares.
	PrepareEpoch uint64 `json:"prepareEpoch,omitempty"`
	// CoordEpoch is the coordinator term stamped on every shard 2PC
	// operation. Shards ratchet the highest term they have seen and
	// refuse lower ones (CodeStaleCoordinator), so a superseded
	// coordinator can never drive a transaction divergently from its
	// successor. Zero means unversioned (direct cacctl use) and always
	// passes.
	CoordEpoch uint64 `json:"coordEpoch,omitempty"`
	// Proto names the framing the client proposes on a hello exchange
	// (ProtoJSON or ProtoBinary); empty means json. Only meaningful with
	// OpHello.
	Proto string `json:"proto,omitempty"`
	// Requests carries the connection parameter list for batch-setup.
	Requests []core.ConnRequest `json:"requests,omitempty"`
	// IDs identifies the connections for batch-teardown.
	IDs []core.ConnID `json:"ids,omitempty"`
}

// ReadmitOutcome is the transport form of one re-admission result after a
// link failure.
type ReadmitOutcome struct {
	ID         core.ConnID `json:"id"`
	Readmitted bool        `json:"readmitted"`
	Attempts   int         `json:"attempts,omitempty"`
	// Hops is the wrapped-route length the connection was re-admitted
	// over — the crankback cost of surviving the failure.
	Hops int `json:"hops,omitempty"`
	// Error preserves the rejection reason for connections that stayed
	// down — degradation is reported, never silent.
	Error string `json:"error,omitempty"`
}

// FailoverReport is the transport form of a fail-link result.
type FailoverReport struct {
	Link core.Link `json:"link"`
	// Outcomes holds one entry per evicted connection, in ID order.
	Outcomes []ReadmitOutcome `json:"outcomes,omitempty"`
}

// HealthReport answers the health operation.
type HealthReport struct {
	Connections int         `json:"connections"`
	FailedLinks []core.Link `json:"failedLinks,omitempty"`
	Violations  int         `json:"violations"`
	Draining    bool        `json:"draining,omitempty"`
	// Role and Epoch surface the replication state directly in health so
	// an operator can tell primary from fenced standby in one command.
	Role  string `json:"role,omitempty"`
	Epoch uint64 `json:"epoch"`
	// ShardID names this instance's shard; Prepared counts live 2PC
	// holds (both zero-valued on an unsharded deployment).
	ShardID  string `json:"shardId,omitempty"`
	Prepared int    `json:"prepared,omitempty"`
	// Overload carries the limiter's shed/admitted counters when
	// overload control is configured — visible while an overload
	// happens, because health is never shed.
	Overload *overload.Stats `json:"overload,omitempty"`
	// Metrics is a flat snapshot of the server's metrics registry (see
	// SetObservability): counter and gauge values keyed by metric name
	// plus canonical labels, histograms reduced to _count and _sum. It
	// lets cacctl read the counters over the CAC protocol itself when no
	// scrape endpoint is exposed.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// PortReport describes the state of one (switch, output port, priority)
// queue for the inspect operation.
type PortReport struct {
	Switch   string        `json:"switch"`
	Out      core.PortID   `json:"out"`
	Priority core.Priority `json:"priority"`
	// Bound and Backlog are the computed worst cases; Limit is the FIFO
	// budget. Unstable marks a queue whose delay is unbounded.
	Bound    float64 `json:"bound"`
	Backlog  float64 `json:"backlog"`
	Limit    float64 `json:"limit"`
	Unstable bool    `json:"unstable,omitempty"`
	// Envelope is the aggregated same-priority arrival stream Soa(j,p) in
	// the paper's {(rate, time)} notation.
	Envelope []bitstream.Segment `json:"envelope,omitempty"`
}

// Admission mirrors core.Admission for transport.
type Admission struct {
	ID                 core.ConnID `json:"id"`
	PerHopGuaranteed   []float64   `json:"perHopGuaranteed"`
	PerHopComputed     []float64   `json:"perHopComputed"`
	EndToEndGuaranteed float64     `json:"endToEndGuaranteed"`
	EndToEndComputed   float64     `json:"endToEndComputed"`
}

// Response is a server response.
type Response struct {
	OK bool `json:"ok"`
	// Error is set when OK is false; Rejected distinguishes CAC rejections
	// from operational errors.
	Error    string `json:"error,omitempty"`
	Rejected bool   `json:"rejected,omitempty"`
	// Code is the stable machine-readable form of Error: a core admission
	// taxonomy code (core.ErrorCode) or a wire-level code (CodeNotDurable,
	// CodeOverloadedRate, ...). Empty on success. Clients surface it
	// through RemoteError.
	Code string `json:"code,omitempty"`
	// Admission reports a successful setup.
	Admission *Admission `json:"admission,omitempty"`
	// Connections reports a list result.
	Connections []core.ConnID `json:"connections,omitempty"`
	// Bound reports a bound query result (cell times).
	Bound float64 `json:"bound,omitempty"`
	// Ports reports an inspect result.
	Ports []PortReport `json:"ports,omitempty"`
	// Violations reports an audit result (empty means every queue is
	// within its guarantee).
	Violations []ViolationReport `json:"violations,omitempty"`
	// Warning flags a non-fatal condition on an otherwise successful
	// operation (e.g. state persistence deferred to a background retry).
	Warning string `json:"warning,omitempty"`
	// Overloaded marks a request shed by overload control before any
	// work was done; RetryAfterMillis hints when to retry. Clients map
	// this to ErrOverloaded.
	Overloaded       bool  `json:"overloaded,omitempty"`
	RetryAfterMillis int64 `json:"retryAfterMs,omitempty"`
	// Failover reports a fail-link result.
	Failover *FailoverReport `json:"failover,omitempty"`
	// Health reports a health result.
	Health *HealthReport `json:"health,omitempty"`
	// Replication reports a replication or promote result.
	Replication *ReplicationReport `json:"replication,omitempty"`
	// Prepared reports a shard-prepare result.
	Prepared *PrepareReport `json:"prepared,omitempty"`
	// Shard reports a shard-status or shard-reap result.
	Shard *ShardStatusReport `json:"shard,omitempty"`
	// Shards reports a fleet-wide shard-status result: one report per
	// shard pair, in map order, answered by a coordinator.
	Shards []ShardStatusReport `json:"shards,omitempty"`
	// Proto confirms the framing a hello exchange negotiated.
	Proto string `json:"proto,omitempty"`
	// Results reports the per-item outcomes of a batch op, in request
	// order. The batch carrier itself succeeding (OK true) says nothing
	// about the items: each result carries its own ok/error/code.
	Results []BatchResult `json:"results,omitempty"`
}

// ViolationReport mirrors core.Violation for transport.
type ViolationReport struct {
	Switch   string        `json:"switch"`
	Out      core.PortID   `json:"out"`
	Priority core.Priority `json:"priority"`
	Bound    float64       `json:"bound"`
	Limit    float64       `json:"limit"`
}

// FailoverHandler runs topology-specific re-admission after the directed
// link from -> to has been failed on the network (evicted lists what
// FailLink tore down). It returns one outcome per evicted connection. The
// wire layer stays decoupled from any particular topology: cacd plugs in
// the RTnet wrapped-ring engine here.
type FailoverHandler func(from, to string, evicted []core.ConnRequest) []ReadmitOutcome

// Server serves CAC requests against a core.Network.
type Server struct {
	network  *core.Network
	dur      *Durable
	failover FailoverHandler
	// limiter, when set, sheds requests under control-plane overload in
	// degradation order (reads first, then low-priority setups; teardown
	// and link repair never).
	limiter *overload.Limiter
	// ioTimeout bounds each read of a request line and write of a
	// response; zero means no deadline.
	ioTimeout time.Duration
	// jsonOnly refuses binary-framing hellos (SetJSONOnly).
	jsonOnly bool
	// reg and tracer are the observability attachments (SetObservability):
	// reg answers scrape-time gauge reads and health metric snapshots,
	// tracer receives one event per request, persistence step and
	// re-admission. Both are set before Serve and never mutated after.
	reg    *obs.Registry
	tracer obs.Tracer

	// persistMu makes each state snapshot (capture + write) atomic, so
	// concurrent operations cannot write their captures out of order, and
	// serializes journal appends.
	persistMu sync.Mutex

	// gcPending is the group-commit accumulator (durable.go): concurrent
	// journal-sync setups and teardowns append without fsync and wait on
	// one shared commit group whose single fsync covers them all. Guarded
	// by persistMu — a member joins in the same critical section its
	// record is appended in, so a failed group fsync rolls back exactly
	// the members whose records it truncates.
	gcPending *commitGroup

	// opMu orders admission mutations against their journal records.
	// Setup and teardown hold it shared (their mutation+append pair is
	// made atomic per connection ID by idLocks); fail-link and
	// restore-link hold it exclusively, because their records name whole
	// sets of connections. Without this, a mutation committed to the
	// network whose record is appended later could land in the journal
	// after a younger mutation of the same ID, and replay would restore
	// the wrong final state — resurrecting an acked teardown or dropping
	// an acked setup.
	opMu sync.RWMutex
	// idLocks stripes the per-connection-ID ordering: client-chosen IDs
	// hash onto a fixed pool, so a setup and a teardown of the same ID
	// can never interleave between network commit and journal append,
	// while operations on distinct IDs (modulo stripe collisions) keep
	// running their admission math concurrently.
	idLocks [idLockStripes]sync.Mutex
	// testHookPreAppend, when non-nil, runs between an operation's
	// network mutation and its journal append. The window is a few
	// hundred nanoseconds in production; ordering tests install a hook
	// here to widen it and prove the discipline above actually holds.
	testHookPreAppend func(op string, id core.ConnID)

	// epoch is the replication term, guarded by persistMu (it is stamped
	// into journal records and snapshot trailers on the persist path).
	// Zero until recovery or promotion raises it.
	epoch uint64
	// replMu guards the replication role flags below; they are read on
	// every dispatched mutation.
	replMu sync.RWMutex
	// standby refuses mutations with CodeStandby until Promote.
	standby bool
	// fenced refuses mutations with CodeFenced forever: the node saw the
	// higher term fencedBy, so a newer primary owns the state.
	fenced   bool
	fencedBy uint64
	// shipper, when set, receives every appended journal record before
	// the operation acks (see Shipper).
	shipper Shipper
	// crashPoints, when set, lets the fault harness kill the process at
	// replication boundaries (see CrashPoints).
	crashPoints *CrashPoints
	// replStatus decorates replication reports with stream-level status.
	replStatus func(*ReplicationReport)

	// shard holds the cross-shard 2PC state: the shard identity and the
	// live prepared holds (see shard.go).
	shard shardState

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	retrying bool
	stop     chan struct{}
	wg       sync.WaitGroup
	// retryWG tracks the background persist retry goroutine so shutdown
	// can drain it before writing the final snapshot.
	retryWG sync.WaitGroup
}

// NewServer returns a server managing the given network.
func NewServer(network *core.Network) *Server {
	return &Server{
		network: network,
		conns:   make(map[net.Conn]struct{}),
		stop:    make(chan struct{}),
	}
}

// SetFailoverHandler installs the re-admission handler run by fail-link.
// Must be called before Serve. Without a handler, evicted connections are
// reported as not re-admitted.
func (s *Server) SetFailoverHandler(h FailoverHandler) { s.failover = h }

// SetIOTimeout bounds each request read and response write on every client
// connection. Must be called before Serve; zero disables deadlines.
func (s *Server) SetIOTimeout(d time.Duration) { s.ioTimeout = d }

// SetJSONOnly pins the server to the JSON line codec: binary hellos are
// refused with CodeUnsupportedProto and clients fall back. Must be
// called before Serve. This is the -wire-proto=json escape hatch for
// debugging with line-oriented tools (nc, socat).
func (s *Server) SetJSONOnly(jsonOnly bool) { s.jsonOnly = jsonOnly }

// SetLimiter installs control-plane overload protection. Must be called
// before Serve; nil disables shedding.
func (s *Server) SetLimiter(l *overload.Limiter) { s.limiter = l }

// SetObservability attaches the metrics registry and trace sink. The
// tracer is installed on the network (admission events) and on the
// journal (append latency), and receives every wire-level event —
// requests, sheds, compactions, snapshots, re-admissions. The registry
// gains scrape-time gauges over the live server state: admitted
// connections, failed links, journal size, limiter tokens and in-flight
// count. Must be called before Serve and after SetLimiter/SetDurable, so
// the gauges see the final configuration; either argument may be nil.
func (s *Server) SetObservability(reg *obs.Registry, tracer obs.Tracer) {
	s.reg = reg
	s.tracer = tracer
	if tracer != nil {
		s.network.SetTracer(tracer)
		if s.dur != nil && s.dur.log != nil {
			s.dur.log.SetAppendObserver(func(total, syncDur time.Duration, bytes int, err error) {
				ev := obs.Event{
					Kind:         obs.KindJournalAppend,
					Outcome:      obs.OutcomeOK,
					Duration:     total,
					SyncDuration: syncDur,
					Bytes:        int64(bytes),
				}
				if err != nil {
					ev.Outcome = obs.OutcomeError
					ev.Code = CodeNotDurable
				}
				tracer.Trace(ev)
			})
		}
	}
	if reg == nil {
		return
	}
	reg.GaugeFunc("atmcac_admission_connections", func() float64 {
		return float64(len(s.network.Connections()))
	})
	reg.Help("atmcac_admission_connections", "Currently admitted connections.")
	reg.GaugeFunc("atmcac_failover_links_down", func() float64 {
		return float64(len(s.network.FailedLinks()))
	})
	reg.Help("atmcac_failover_links_down", "Links currently marked failed.")
	if s.dur != nil && s.dur.log != nil {
		reg.GaugeFunc("atmcac_journal_size_bytes", func() float64 {
			s.persistMu.Lock()
			defer s.persistMu.Unlock()
			return float64(s.dur.log.Size())
		})
		reg.Help("atmcac_journal_size_bytes", "Write-ahead journal length since the last compaction.")
		reg.GaugeFunc("atmcac_journal_records", func() float64 {
			s.persistMu.Lock()
			defer s.persistMu.Unlock()
			return float64(s.dur.log.Count())
		})
		reg.Help("atmcac_journal_records", "Journal records since the last compaction.")
	}
	if s.limiter != nil {
		reg.GaugeFunc("atmcac_overload_tokens", func() float64 { return s.limiter.TokensNow() })
		reg.Help("atmcac_overload_tokens", "Token-bucket level of the overload limiter.")
		reg.GaugeFunc("atmcac_overload_inflight", func() float64 { return float64(s.limiter.InFlight()) })
		reg.Help("atmcac_overload_inflight", "Admitted non-recovery requests currently executing.")
	}
	reg.GaugeFunc("atmcac_shard_prepared_holds", func() float64 { return float64(s.preparedCount()) })
	reg.Help("atmcac_shard_prepared_holds", "Live phase-1 reservations awaiting a coordinator decision.")
}

// Classify maps a request to its shedding class: teardown, fail-link,
// restore-link and health are recovery (never shed — the control plane
// must always be able to unload itself and be observed); setups split on
// priority (1 is hard real-time); everything else is a read-only query,
// shed first.
func Classify(req Request) overload.Class {
	switch req.Op {
	case OpTeardown, OpBatchTeardown, OpFailLink, OpRestoreLink, OpHealth, OpPromote, OpReplication,
		OpShardCommit, OpShardAbort, OpShardReap:
		// The shard commit/abort/reap ops are recovery-class too: they
		// finalize or release capacity already held, so shedding them
		// could only strand reservations.
		return overload.ClassRecovery
	case OpSetup, OpShardPrepare:
		if req.Request != nil && req.Request.Priority > 1 {
			return overload.ClassSetupLow
		}
		return overload.ClassSetupHigh
	case OpBatchSetup:
		// A batch is classified by its most urgent member: one hard
		// real-time item makes the whole batch high class.
		for _, r := range req.Requests {
			if r.Priority <= 1 {
				return overload.ClassSetupHigh
			}
		}
		return overload.ClassSetupLow
	default:
		return overload.ClassRead
	}
}

// Serve accepts connections on l until Close. It always returns a non-nil
// error (ErrServerClosed after a clean shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every client connection, and waits for
// handler goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	s.drainRetry()
	return err
}

// Shutdown drains the server gracefully: it stops accepting, lets every
// in-flight request finish and its response flush, then closes the
// connections and snapshots the final state. Clients blocked waiting for a
// next request are unblocked immediately (their read fails, which ends the
// session cleanly). If ctx expires first, remaining connections are closed
// hard, like Close. The final state snapshot is written in both cases.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	close(s.stop)
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	// Expire pending reads so idle sessions end now; a handler mid-request
	// still writes its response (only the read side is cut).
	for _, c := range conns {
		_ = c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	}
	// Drain the background persist loop before the final snapshot, so a
	// last failed retry cannot land after (or instead of) it and leave
	// stale state on disk when the process exits.
	s.drainRetry()
	if err := s.persistNow(); err != nil {
		return err
	}
	return drainErr
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	ServeSession(conn, s.dispatch, SessionOptions{
		IOTimeout: s.ioTimeout,
		JSONOnly:  s.jsonOnly,
	})
}

// dispatch applies the overload policy around one request: classify,
// acquire (or shed with a typed overloaded response and retry-after
// hint), derive the request-bounded context from the propagated client
// deadline, then handle. Shedding happens before any network state is
// touched, so a shed setup is never half-admitted.
func (s *Server) dispatch(req Request) Response {
	tr := s.tracer
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	className := ""
	if s.limiter != nil {
		class := Classify(req)
		className = class.String()
		d, release := s.limiter.Acquire(class)
		if !d.Admitted {
			code := "overloaded-" + d.Reason
			if tr != nil {
				tr.Trace(obs.Event{Kind: obs.KindShed, Op: req.Op, Class: className, Code: code})
				tr.Trace(obs.Event{
					Kind: obs.KindRequest, Op: req.Op, Class: className,
					Outcome: obs.OutcomeShed, Code: code, Duration: time.Since(start),
				})
			}
			return Response{
				Error: fmt.Sprintf("overloaded: %s request shed (%s limit)",
					class, d.Reason),
				Code:             code,
				Overloaded:       true,
				RetryAfterMillis: int64(d.RetryAfter / time.Millisecond),
			}
		}
		defer release()
	}
	ctx := context.Background()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	resp := s.handle(ctx, req)
	if tr != nil {
		outcome := obs.OutcomeOK
		if !resp.OK {
			outcome = obs.OutcomeError
		}
		tr.Trace(obs.Event{
			Kind: obs.KindRequest, Op: req.Op, Class: className,
			Outcome: outcome, Code: resp.Code, Duration: time.Since(start),
		})
	}
	return resp
}

// idLock returns the stripe serializing mutations of one connection ID
// (FNV-1a over the ID).
func (s *Server) idLock(id core.ConnID) *sync.Mutex {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &s.idLocks[h%idLockStripes]
}

// handleSetup admits a connection and makes it durable before the ack.
// The mutation and its journal append run under the connection's ID
// stripe (and opMu shared), so a concurrent teardown of the same ID
// cannot journal in the opposite order of the in-memory mutations.
func (s *Server) handleSetup(ctx context.Context, req Request) Response {
	if req.Request == nil {
		return Response{Error: "setup requires a request body", Code: CodeProtocol}
	}
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	lock := s.idLock(req.Request.ID)
	lock.Lock()
	defer lock.Unlock()
	adm, err := s.network.Setup(ctx, *req.Request)
	if err != nil {
		return Response{
			Error:    err.Error(),
			Rejected: errors.Is(err, core.ErrRejected),
			Code:     core.ErrorCode(err),
		}
	}
	if s.testHookPreAppend != nil {
		s.testHookPreAppend(OpSetup, adm.ID)
	}
	warning, perr := s.persistSetup(*req.Request)
	if perr != nil {
		// The journal (or the replication mode) refused the record, so an
		// ack here could be erased by a crash or a failover. Roll the
		// in-memory admission back and refuse: the client knows the setup
		// did not happen.
		_ = s.network.Teardown(adm.ID)
		if errors.Is(perr, ErrNotReplicated) {
			return Response{Error: fmt.Sprintf("setup %q not replicated: %v", adm.ID, perr), Code: CodeNotReplicated}
		}
		return Response{Error: fmt.Sprintf("setup %q not durable: %v", adm.ID, perr), Code: CodeNotDurable}
	}
	return Response{OK: true, Warning: warning, Admission: &Admission{
		ID:                 adm.ID,
		PerHopGuaranteed:   adm.PerHopGuaranteed,
		PerHopComputed:     adm.PerHopComputed,
		EndToEndGuaranteed: adm.EndToEndGuaranteed,
		EndToEndComputed:   adm.EndToEndComputed,
	}}
}

// handleTeardown releases a connection under the same ordering discipline
// as handleSetup.
func (s *Server) handleTeardown(req Request) Response {
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	lock := s.idLock(req.ID)
	lock.Lock()
	defer lock.Unlock()
	undo, known := s.network.AdmittedRequest(req.ID)
	if err := s.network.Teardown(req.ID); err != nil {
		return Response{Error: err.Error(), Code: core.ErrorCode(err)}
	}
	if s.testHookPreAppend != nil {
		s.testHookPreAppend(OpTeardown, req.ID)
	}
	var undoRec *core.ConnRequest
	if known {
		undoRec = &undo
	}
	warning, perr := s.persistTeardown(req.ID, undoRec)
	if perr != nil {
		// Mirror the setup path: un-ack by re-admitting the identical
		// request (its capacity was just freed, so the CAC re-check
		// succeeds unless a concurrent setup raced it away).
		code := CodeNotDurable
		verb := "durable"
		if errors.Is(perr, ErrNotReplicated) {
			code = CodeNotReplicated
			verb = "replicated"
		}
		msg := fmt.Sprintf("teardown %q not %s: %v", req.ID, verb, perr)
		if known {
			if _, rerr := s.network.Setup(context.Background(), undo); rerr != nil {
				msg = fmt.Sprintf("%s (rollback failed: %v)", msg, rerr)
			}
		}
		return Response{Error: msg, Code: code}
	}
	return Response{OK: true, Warning: warning}
}

// handleFailLink fails a link, runs re-admission and journals the result.
// It holds opMu exclusively: the record captures the evicted IDs and the
// wrapped re-admissions, so no setup or teardown may slip between the
// network mutation and the append — a record appended out of order would
// replay the pre-failure routes over the degraded ones.
func (s *Server) handleFailLink(req Request) Response {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	evicted, err := s.network.FailLink(req.From, req.To)
	if err != nil {
		return Response{Error: err.Error(), Code: core.ErrorCode(err)}
	}
	report := &FailoverReport{Link: core.Link{From: req.From, To: req.To}}
	if s.failover != nil {
		report.Outcomes = s.failover(req.From, req.To, evicted)
	} else {
		for _, r := range evicted {
			report.Outcomes = append(report.Outcomes, ReadmitOutcome{
				ID: r.ID, Error: "no failover handler configured",
			})
		}
	}
	if tr := s.tracer; tr != nil {
		for _, o := range report.Outcomes {
			ev := obs.Event{Kind: obs.KindReadmit, Conn: string(o.ID)}
			if o.Attempts > 0 {
				ev.Retries = o.Attempts - 1
			}
			if o.Readmitted {
				ev.Outcome = obs.OutcomeAccepted
				ev.Crankback = o.Hops
			} else {
				ev.Outcome = obs.OutcomeRejected
			}
			tr.Trace(ev)
		}
	}
	// The journal record carries what the failure did to the admitted
	// set: the evicted IDs plus the re-admissions with their new
	// wrapped routes, read back from the network so replay restores
	// the degraded-mode routes, not the pre-failure ones.
	evictedIDs := make([]core.ConnID, 0, len(evicted))
	for _, r := range evicted {
		evictedIDs = append(evictedIDs, r.ID)
	}
	var readmitted []core.ConnRequest
	for _, o := range report.Outcomes {
		if !o.Readmitted {
			continue
		}
		if req, ok := s.network.AdmittedRequest(o.ID); ok {
			readmitted = append(readmitted, req)
		}
	}
	return Response{OK: true, Warning: s.persistFailLink(req.From, req.To, evictedIDs, readmitted), Failover: report}
}

// handleRestoreLink clears a failed link; exclusive like handleFailLink.
func (s *Server) handleRestoreLink(req Request) Response {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if err := s.network.RestoreLink(req.From, req.To); err != nil {
		return Response{Error: err.Error(), Code: core.ErrorCode(err)}
	}
	return Response{OK: true, Warning: s.persistRestoreLink(req.From, req.To)}
}

func (s *Server) handle(ctx context.Context, req Request) Response {
	switch req.Op {
	case OpSetup, OpTeardown, OpBatchSetup, OpBatchTeardown, OpFailLink, OpRestoreLink,
		OpShardPrepare, OpShardCommit, OpShardAbort, OpShardReap:
		// Standby and fenced nodes never mutate; reads, health, promote
		// and replication status stay served.
		if resp := s.writeGate(req.Op); resp != nil {
			return *resp
		}
	}
	switch req.Op {
	case OpShardPrepare, OpShardCommit, OpShardAbort, OpShardReap:
		// A stamped coordinator term below the ratchet is a superseded
		// coordinator; refuse before touching any hold.
		if resp := s.coordGate(req); resp != nil {
			return *resp
		}
	}
	switch req.Op {
	case OpSetup:
		return s.handleSetup(ctx, req)
	case OpShardPrepare:
		return s.handleShardPrepare(ctx, req)
	case OpShardCommit:
		return s.handleShardCommit(ctx, req)
	case OpShardAbort:
		return s.handleShardAbort(req)
	case OpShardReap:
		return s.handleShardReap()
	case OpShardStatus:
		return s.handleShardStatus()
	case OpTeardown:
		return s.handleTeardown(req)
	case OpBatchSetup:
		return s.handleBatchSetup(ctx, req)
	case OpBatchTeardown:
		return s.handleBatchTeardown(req)
	case OpList:
		return Response{OK: true, Connections: s.network.Connections()}
	case OpBound:
		d, err := s.network.RouteBound(req.Route, req.Priority)
		if err != nil {
			return Response{Error: err.Error(), Code: core.ErrorCode(err)}
		}
		return Response{OK: true, Bound: d}
	case OpInspect:
		ports, err := s.inspect(req.Switch)
		if err != nil {
			return Response{Error: err.Error(), Code: core.ErrorCode(err)}
		}
		return Response{OK: true, Ports: ports}
	case OpAudit:
		violations, err := s.network.Audit()
		if err != nil {
			return Response{Error: err.Error(), Code: core.ErrorCode(err)}
		}
		reports := make([]ViolationReport, 0, len(violations))
		for _, v := range violations {
			reports = append(reports, ViolationReport{
				Switch: v.Switch, Out: v.Out, Priority: v.Priority,
				Bound: v.Bound, Limit: v.Limit,
			})
		}
		return Response{OK: true, Violations: reports}
	case OpFailLink:
		return s.handleFailLink(req)
	case OpRestoreLink:
		return s.handleRestoreLink(req)
	case OpHealth:
		violations, err := s.network.Audit()
		if err != nil {
			return Response{Error: err.Error(), Code: core.ErrorCode(err)}
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		health := &HealthReport{
			Connections: len(s.network.Connections()),
			FailedLinks: s.network.FailedLinks(),
			Violations:  len(violations),
			Draining:    draining,
			Role:        s.role(),
			Epoch:       s.Epoch(),
			ShardID:     s.shard.shardID,
			Prepared:    s.preparedCount(),
		}
		if s.limiter != nil {
			st := s.limiter.Stats()
			health.Overload = &st
		}
		if s.reg != nil {
			health.Metrics = s.reg.Snapshot()
		}
		return Response{OK: true, Health: health}
	case OpPromote:
		if _, err := s.Promote(); err != nil {
			code := CodeNotDurable
			if errors.Is(err, ErrStaleEpoch) {
				code = CodeFenced
			}
			return Response{Error: err.Error(), Code: code}
		}
		return Response{OK: true, Replication: s.replicationReport()}
	case OpReplication:
		return Response{OK: true, Replication: s.replicationReport()}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op), Code: CodeUnknownOp}
	}
}

// inspect assembles port reports for one switch or, with an empty name,
// every switch carrying traffic.
func (s *Server) inspect(switchName string) ([]PortReport, error) {
	names := s.network.SwitchNames()
	if switchName != "" {
		if _, ok := s.network.Switch(switchName); !ok {
			return nil, fmt.Errorf("%w: %q", core.ErrUnknownSwitch, switchName)
		}
		names = []string{switchName}
	}
	var reports []PortReport
	for _, name := range names {
		sw, ok := s.network.Switch(name)
		if !ok {
			continue
		}
		for _, out := range sw.OutPorts() {
			for _, p := range sw.Priorities() {
				limit, _ := sw.GuaranteedBoundAt(out, p)
				soa, sof, err := sw.PortEnvelope(out, p)
				if err != nil {
					return nil, err
				}
				if soa.IsZero() {
					continue
				}
				report := PortReport{
					Switch: name, Out: out, Priority: p,
					Limit:    limit,
					Envelope: soa.Segments(),
				}
				bound, err := bitstream.DelayBound(soa, sof)
				switch {
				case errors.Is(err, bitstream.ErrUnstable):
					report.Unstable = true
				case err != nil:
					return nil, err
				default:
					report.Bound = bound
					backlog, err := bitstream.MaxBacklog(soa, sof)
					if err != nil && !errors.Is(err, bitstream.ErrUnstable) {
						return nil, err
					}
					report.Backlog = backlog
				}
				reports = append(reports, report)
			}
		}
	}
	return reports, nil
}
