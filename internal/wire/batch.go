// First-class batch operations: batch-setup and batch-teardown admit or
// release many connections in one request, taking the operation locks
// once and — in journal-sync mode — amortizing a single journal fsync
// across the whole batch instead of paying one per item.
package wire

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/obs"
)

// Batch protocol operations.
const (
	OpBatchSetup    = "batch-setup"
	OpBatchTeardown = "batch-teardown"
)

// MaxBatchOps caps the items in one batch request; larger batches are a
// protocol error. The cap bounds how long the batch holds the exclusive
// operation lock.
const MaxBatchOps = 128

// BatchResult is the per-item outcome of a batch operation. Items fail
// independently: a CAC rejection or unknown connection in one item never
// fails its siblings, so the fields mirror the single-op Response.
type BatchResult struct {
	ID       core.ConnID `json:"id"`
	OK       bool        `json:"ok"`
	Error    string      `json:"error,omitempty"`
	Rejected bool        `json:"rejected,omitempty"`
	Code     string      `json:"code,omitempty"`
	// Admission reports a successful batch-setup item.
	Admission *Admission `json:"admission,omitempty"`
	// Warning flags a non-fatal condition on a successful item.
	Warning string `json:"warning,omitempty"`
}

// handleBatchSetup admits every item, then makes the admitted subset
// durable with one persistence pass. It holds opMu exclusively — like
// fail-link, the batch's record set must not interleave with other
// mutations, and a single exclusive hold also sidesteps ordering the
// per-ID stripe locks of an arbitrary ID set.
func (s *Server) handleBatchSetup(ctx context.Context, req Request) Response {
	n := len(req.Requests)
	if n == 0 {
		return Response{Error: "batch-setup requires a requests list", Code: CodeProtocol}
	}
	if n > MaxBatchOps {
		return Response{Error: fmt.Sprintf("batch of %d exceeds %d items", n, MaxBatchOps), Code: CodeProtocol}
	}
	var start time.Time
	if s.tracer != nil {
		start = time.Now()
	}
	s.opMu.Lock()
	defer s.opMu.Unlock()
	results := make([]BatchResult, n)
	var admitted []int
	var recs, inverts []*journal.Record
	for i := range req.Requests {
		r := &req.Requests[i]
		results[i].ID = r.ID
		adm, err := s.network.Setup(ctx, *r)
		if err != nil {
			results[i].Error = err.Error()
			results[i].Rejected = errors.Is(err, core.ErrRejected)
			results[i].Code = core.ErrorCode(err)
			continue
		}
		results[i].OK = true
		results[i].Admission = &Admission{
			ID:                 adm.ID,
			PerHopGuaranteed:   adm.PerHopGuaranteed,
			PerHopComputed:     adm.PerHopComputed,
			EndToEndGuaranteed: adm.EndToEndGuaranteed,
			EndToEndComputed:   adm.EndToEndComputed,
		}
		admitted = append(admitted, i)
		recs = append(recs, &journal.Record{Op: journal.OpSetup, Request: r})
		inverts = append(inverts, &journal.Record{Op: journal.OpTeardown, ID: r.ID})
	}
	var warning string
	if len(admitted) > 0 {
		durable, perr := s.persistBatch(recs, inverts, &warning)
		if perr != nil {
			// Items whose record never became durable are rolled back and
			// refused individually; items before the failure point keep
			// their ack — their records are fsynced (or compensated for by
			// appendLocked's replication unwind) exactly as if they had
			// been issued one by one.
			code := CodeNotDurable
			verb := "durable"
			if errors.Is(perr, ErrNotReplicated) {
				code = CodeNotReplicated
				verb = "replicated"
			}
			for _, i := range admitted[durable:] {
				_ = s.network.Teardown(req.Requests[i].ID)
				results[i] = BatchResult{
					ID:    req.Requests[i].ID,
					Error: fmt.Sprintf("setup %q not %s: %v", req.Requests[i].ID, verb, perr),
					Code:  code,
				}
			}
		}
	}
	if tr := s.tracer; tr != nil {
		tr.Trace(obs.Event{
			Kind: obs.KindBatch, Op: OpBatchSetup, Records: n,
			Outcome: obs.OutcomeOK, Duration: time.Since(start),
		})
	}
	return Response{OK: true, Warning: warning, Results: results}
}

// handleBatchTeardown releases every named connection, then persists the
// batch with one pass; locking mirrors handleBatchSetup.
func (s *Server) handleBatchTeardown(req Request) Response {
	n := len(req.IDs)
	if n == 0 {
		return Response{Error: "batch-teardown requires an ids list", Code: CodeProtocol}
	}
	if n > MaxBatchOps {
		return Response{Error: fmt.Sprintf("batch of %d exceeds %d items", n, MaxBatchOps), Code: CodeProtocol}
	}
	var start time.Time
	if s.tracer != nil {
		start = time.Now()
	}
	s.opMu.Lock()
	defer s.opMu.Unlock()
	results := make([]BatchResult, n)
	var torn []int
	var undos []*core.ConnRequest
	var recs, inverts []*journal.Record
	for i, id := range req.IDs {
		results[i].ID = id
		undo, known := s.network.AdmittedRequest(id)
		if err := s.network.Teardown(id); err != nil {
			results[i].Error = err.Error()
			results[i].Code = core.ErrorCode(err)
			continue
		}
		results[i].OK = true
		torn = append(torn, i)
		rec := &journal.Record{Op: journal.OpTeardown, ID: id}
		recs = append(recs, rec)
		if known {
			u := undo
			undos = append(undos, &u)
			inverts = append(inverts, &journal.Record{Op: journal.OpSetup, Request: &u})
		} else {
			undos = append(undos, nil)
			inverts = append(inverts, nil)
		}
	}
	var warning string
	if len(torn) > 0 {
		durable, perr := s.persistBatch(recs, inverts, &warning)
		if perr != nil {
			code := CodeNotDurable
			verb := "durable"
			if errors.Is(perr, ErrNotReplicated) {
				code = CodeNotReplicated
				verb = "replicated"
			}
			for k := durable; k < len(torn); k++ {
				i := torn[k]
				msg := fmt.Sprintf("teardown %q not %s: %v", req.IDs[i], verb, perr)
				// Un-ack by re-admitting, as the single-op path does.
				if undos[k] != nil {
					if _, rerr := s.network.Setup(context.Background(), *undos[k]); rerr != nil {
						msg = fmt.Sprintf("%s (rollback failed: %v)", msg, rerr)
					}
				}
				results[i] = BatchResult{ID: req.IDs[i], Error: msg, Code: code}
			}
		}
	}
	if tr := s.tracer; tr != nil {
		tr.Trace(obs.Event{
			Kind: obs.KindBatch, Op: OpBatchTeardown, Records: n,
			Outcome: obs.OutcomeOK, Duration: time.Since(start),
		})
	}
	return Response{OK: true, Warning: warning, Results: results}
}

// persistBatch makes a batch's record set durable, returning how many
// leading records are durable (the rest — and only the rest — must be
// rolled back when err is non-nil). Caller holds opMu exclusively, which
// also guarantees no group-commit member is in flight, so the journal's
// unsynced tail is this batch's alone.
//
// Without a replication shipper in journal-sync mode, the records are
// appended unsynced and covered by one final fsync — the batch's whole
// point. With a shipper (or in write-behind mode) each record takes the
// ordinary per-record path, so every replication guarantee is preserved
// at the cost of unamortized fsyncs.
func (s *Server) persistBatch(recs, inverts []*journal.Record, warning *string) (durable int, err error) {
	if s.dur == nil {
		return len(recs), nil
	}
	if !s.dur.journaled() {
		*warning = s.persistSnapshotWarn()
		return len(recs), nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if !s.groupCommitEnabled() {
		var warnings []string
		for i := range recs {
			w, aerr := s.appendLocked(recs[i], inverts[i])
			if aerr != nil {
				// Item i was unwound by appendLocked itself (never
				// applied, or compensated); items after it were never
				// appended.
				*warning = strings.Join(warnings, "; ")
				return i, aerr
			}
			if w != "" {
				warnings = append(warnings, w)
			}
		}
		*warning = strings.Join(warnings, "; ")
		return len(recs), nil
	}
	// Amortized path: encode and append the whole batch in one write,
	// fsync once. The batch append is all-or-nothing — on error nothing
	// was appended and no view was touched, so every item rolls back.
	for _, rec := range recs {
		rec.Epoch = s.epoch
	}
	if _, aerr := s.dur.log.AppendAll(recs); aerr != nil {
		return 0, aerr
	}
	for _, rec := range recs {
		s.dur.applyView(rec)
	}
	start := time.Now()
	if serr := s.dur.log.Sync(); serr != nil {
		// The group-commit error fan-out: one failed fsync fails every
		// item whose record it covered, and journal.Sync has already
		// truncated their records away.
		for _, inv := range inverts {
			if inv != nil {
				s.dur.applyView(inv)
			}
		}
		return 0, serr
	}
	if tr := s.tracer; tr != nil {
		tr.Trace(obs.Event{
			Kind: obs.KindGroupCommit, Records: len(recs),
			Outcome: obs.OutcomeOK, Duration: time.Since(start),
		})
	}
	if s.dur.log.Count() >= s.dur.compactRecords || s.dur.log.Size() >= s.dur.compactBytes {
		if cerr := s.compactLocked(); cerr != nil {
			if errors.Is(cerr, errJournalReset) {
				*warning = fmt.Sprintf("journal out of service after compaction: %v", cerr)
			} else {
				s.scheduleRetry()
				*warning = fmt.Sprintf("journal compaction deferred (will retry): %v", cerr)
			}
		}
	}
	return len(recs), nil
}
