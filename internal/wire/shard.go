package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/obs"
)

// Shard-side half of the cross-shard two-phase admission protocol. A
// coordinator (internal/shard) splits a multi-hop route by switch
// ownership and drives each owning shard through:
//
//	shard-prepare  phase 1: reserve the shard-local hops through the
//	               full CAC check and journal a prepare record with a
//	               TTL; the hold consumes capacity but is not admitted.
//	shard-commit   phase 2: promote the hold into an admitted
//	               connection, journaling a self-contained commit
//	               record (it embeds the request, so compaction may
//	               fold the prepare away).
//	shard-abort    release the hold — or unwind a commit the
//	               coordinator decided against — idempotently.
//	shard-reap     expire prepared holds whose TTL lapsed with no
//	               decision: the orphan reaper that keeps a dead
//	               coordinator from permanently stranding bandwidth.
//	shard-status   report the shard ID, epoch, role and live holds.
//
// Crash safety is presumed abort: journal replay never turns a prepare
// into an admission (see journal.Replay), so a shard that dies between
// prepare and commit recovers with the hold expired, and the
// coordinator's intent log decides whether to re-drive the commit
// (through a fresh CAC check) or abort everywhere.

// Shard protocol operations.
const (
	OpShardPrepare = "shard-prepare"
	OpShardCommit  = "shard-commit"
	OpShardAbort   = "shard-abort"
	OpShardReap    = "shard-reap"
	OpShardStatus  = "shard-status"
)

// Shard protocol error codes.
const (
	// CodePrepareExpired marks a commit that found no prepared hold and
	// could not re-admit the connection: the hold was reaped (or never
	// landed) and its capacity has been given away.
	CodePrepareExpired = "shard-prepare-expired"
	// CodeStalePrepare marks a commit or prepare fenced by an epoch
	// change: the hold was created under an older term than the shard
	// (or the coordinator) is now at, so a restarted/promoted shard
	// refuses to honor it.
	CodeStalePrepare = "stale-prepare-fenced"
	// CodeInDoubt marks a cross-shard setup whose commit decision is
	// durable but could not be driven to every shard before retries were
	// exhausted; a recovering coordinator resolves it from the intent
	// log.
	CodeInDoubt = "in-doubt"
	// CodeStaleCoordinator marks a shard 2PC operation stamped with a
	// coordinator term lower than one this shard has already served: a
	// standby coordinator was promoted, and the superseded coordinator
	// must fence itself instead of driving transactions divergently.
	CodeStaleCoordinator = "stale-coordinator-fenced"
)

// DefaultPrepareTTL bounds a prepared hold's lifetime when the
// coordinator does not specify one.
const DefaultPrepareTTL = 5 * time.Second

// preparedHold is one live phase-1 reservation.
type preparedHold struct {
	txn      string
	req      core.ConnRequest
	epoch    uint64
	deadline time.Time
	adm      *Admission
}

// shardState groups the server's 2PC fields; embedded in Server.
type shardState struct {
	shardID string
	// prepMu guards prepared. It is a leaf lock: never held across a
	// network mutation or a journal append.
	prepMu   sync.Mutex
	prepared map[string]*preparedHold
	// coordEpoch is the highest coordinator term seen on any 2PC
	// operation; lower stamped terms are refused (CodeStaleCoordinator).
	// In-memory only: after a shard restart the ratchet re-arms on the
	// live coordinator's next operation, and the one coordinator that
	// could slip a stale term into the gap is also fenced by every other
	// shard that kept its ratchet.
	coordEpoch uint64
}

// coordGate ratchets the coordinator term carried by a shard 2PC request
// and refuses a stale one. Zero (unversioned, e.g. direct cacctl use)
// always passes and never ratchets.
func (s *Server) coordGate(req Request) *Response {
	if req.CoordEpoch == 0 {
		return nil
	}
	s.shard.prepMu.Lock()
	defer s.shard.prepMu.Unlock()
	if req.CoordEpoch < s.shard.coordEpoch {
		return &Response{
			Error: fmt.Sprintf("%s refused: coordinator term %d superseded by %d",
				req.Op, req.CoordEpoch, s.shard.coordEpoch),
			Code: CodeStaleCoordinator,
		}
	}
	s.shard.coordEpoch = req.CoordEpoch
	return nil
}

// coordEpochSeen returns the highest coordinator term this shard served.
func (s *Server) coordEpochSeen() uint64 {
	s.shard.prepMu.Lock()
	defer s.shard.prepMu.Unlock()
	return s.shard.coordEpoch
}

// SetShardID names this instance in a shard map. Must be called before
// Serve; it is reported by shard-status and health.
func (s *Server) SetShardID(id string) { s.shard.shardID = id }

// ShardID returns the configured shard name (empty when unsharded).
func (s *Server) ShardID() string { return s.shard.shardID }

// preparedCount returns the number of live holds.
func (s *Server) preparedCount() int {
	s.shard.prepMu.Lock()
	defer s.shard.prepMu.Unlock()
	return len(s.shard.prepared)
}

// lookupHold returns the hold for txn, if any.
func (s *Server) lookupHold(txn string) (*preparedHold, bool) {
	s.shard.prepMu.Lock()
	defer s.shard.prepMu.Unlock()
	h, ok := s.shard.prepared[txn]
	return h, ok
}

// registerHold indexes a new hold by transaction.
func (s *Server) registerHold(h *preparedHold) {
	s.shard.prepMu.Lock()
	if s.shard.prepared == nil {
		s.shard.prepared = make(map[string]*preparedHold)
	}
	s.shard.prepared[h.txn] = h
	s.shard.prepMu.Unlock()
}

// dropHold removes a hold; it reports whether it was present.
func (s *Server) dropHold(txn string) bool {
	s.shard.prepMu.Lock()
	defer s.shard.prepMu.Unlock()
	if _, ok := s.shard.prepared[txn]; !ok {
		return false
	}
	delete(s.shard.prepared, txn)
	return true
}

// PrepareReport answers a shard-prepare: the transaction, the epoch the
// hold was created under (the coordinator echoes it on commit so a
// promoted shard can fence stale prepares), and the shard-local
// admission bounds.
type PrepareReport struct {
	Txn       string     `json:"txn"`
	Epoch     uint64     `json:"epoch"`
	Admission *Admission `json:"admission"`
}

// PreparedHoldReport describes one live hold for shard-status.
type PreparedHoldReport struct {
	Txn string      `json:"txn"`
	ID  core.ConnID `json:"id"`
	// ExpiresInMillis is the remaining TTL; negative means the hold is
	// overdue and the next reaper pass will expire it.
	ExpiresInMillis int64 `json:"expiresInMs"`
}

// ShardStatusReport answers shard-status and shard-reap. A coordinator
// answering for a replicated pair fills the pair fields: Addr is the
// member it currently drives, Peer* describe the other member (probed
// best-effort), and StandbyLag is the active primary's replication lag
// in records.
type ShardStatusReport struct {
	ShardID  string               `json:"shardId,omitempty"`
	Role     string               `json:"role"`
	Epoch    uint64               `json:"epoch"`
	Prepared []PreparedHoldReport `json:"prepared,omitempty"`
	// Reaped lists the transactions expired by a shard-reap request.
	Reaped []string `json:"reaped,omitempty"`
	// CoordEpoch is the highest coordinator term this node has served
	// (on a shard), or the coordinator's own term (on a coordinator).
	CoordEpoch uint64 `json:"coordEpoch,omitempty"`
	// InDoubt counts unresolved transactions on a coordinator report.
	InDoubt int `json:"inDoubt,omitempty"`
	// Pair fields, filled by a coordinator's fleet status.
	Addr       string `json:"addr,omitempty"`
	PeerAddr   string `json:"peerAddr,omitempty"`
	PeerRole   string `json:"peerRole,omitempty"`
	PeerEpoch  uint64 `json:"peerEpoch,omitempty"`
	StandbyLag uint64 `json:"standbyLag,omitempty"`
}

// toWireAdmission converts a core admission for transport.
func toWireAdmission(adm *core.Admission) *Admission {
	return &Admission{
		ID:                 adm.ID,
		PerHopGuaranteed:   adm.PerHopGuaranteed,
		PerHopComputed:     adm.PerHopComputed,
		EndToEndGuaranteed: adm.EndToEndGuaranteed,
		EndToEndComputed:   adm.EndToEndComputed,
	}
}

// traceShard emits one shard 2PC event.
func (s *Server) traceShard(kind obs.Kind, conn core.ConnID, outcome, code string, start time.Time) {
	if tr := s.tracer; tr != nil {
		tr.Trace(obs.Event{
			Kind: kind, Conn: string(conn), Outcome: outcome, Code: code,
			Duration: time.Since(start),
		})
	}
}

// handleShardPrepare runs phase 1: reserve the shard-local hops, journal
// the prepare, register the TTL-bounded hold. Re-sending a prepare for a
// registered transaction returns the original report (the coordinator
// retries on lost responses).
func (s *Server) handleShardPrepare(ctx context.Context, req Request) Response {
	start := time.Now()
	if req.Request == nil || req.Txn == "" {
		return Response{Error: "shard-prepare requires a request body and txn", Code: CodeProtocol}
	}
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	lock := s.idLock(req.Request.ID)
	lock.Lock()
	defer lock.Unlock()
	if h, ok := s.lookupHold(req.Txn); ok {
		if !requestsEquivalent(h.req, *req.Request) {
			// Same transaction, different sub-request — whether a changed
			// leg or a different connection ID altogether: a coordinator
			// bug (a shard must see one merged leg per transaction, never
			// two). Answering with the original hold's report would
			// silently leave the divergent leg unreserved, and falling
			// through to a fresh prepare would overwrite the registered
			// hold, permanently stranding its hop reservations.
			s.traceShard(obs.KindShardPrepare, req.Request.ID, obs.OutcomeError, CodeProtocol, start)
			return Response{
				Error: fmt.Sprintf("prepare %q: transaction already holds a different request for %q", req.Txn, h.req.ID),
				Code:  CodeProtocol,
			}
		}
		return Response{OK: true, Prepared: &PrepareReport{Txn: h.txn, Epoch: h.epoch, Admission: h.adm}}
	}
	adm, err := s.network.PrepareSetup(ctx, *req.Request)
	if err != nil {
		code := core.ErrorCode(err)
		s.traceShard(obs.KindShardPrepare, req.Request.ID, obs.OutcomeRejected, code, start)
		return Response{
			Error:    err.Error(),
			Rejected: errors.Is(err, core.ErrRejected),
			Code:     code,
		}
	}
	ttl := time.Duration(req.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultPrepareTTL
	}
	if s.testHookPreAppend != nil {
		s.testHookPreAppend(OpShardPrepare, req.Request.ID)
	}
	warning, perr := s.persistShardPrepare(req.Txn, *req.Request, ttl)
	if perr != nil {
		// The prepare is not durable: a crash would reap a hold the
		// coordinator believes exists, so refuse and release now.
		_ = s.network.AbortPrepared(*req.Request)
		code := CodeNotDurable
		if errors.Is(perr, ErrNotReplicated) {
			code = CodeNotReplicated
		}
		s.traceShard(obs.KindShardPrepare, req.Request.ID, obs.OutcomeError, code, start)
		return Response{Error: fmt.Sprintf("prepare %q not durable: %v", req.Txn, perr), Code: code}
	}
	hold := &preparedHold{
		txn: req.Txn, req: *req.Request, epoch: s.Epoch(),
		deadline: time.Now().Add(ttl), adm: toWireAdmission(adm),
	}
	s.registerHold(hold)
	s.traceShard(obs.KindShardPrepare, req.Request.ID, obs.OutcomeAccepted, "", start)
	return Response{OK: true, Warning: warning, Prepared: &PrepareReport{Txn: hold.txn, Epoch: hold.epoch, Admission: hold.adm}}
}

// handleShardCommit runs phase 2. With the hold present (and not fenced
// by an epoch change) it promotes it; with the hold gone it either
// recognizes an already-applied commit (idempotent retry) or attempts a
// fresh full-CAC admission — the recovery path for a shard that crashed
// after its prepare was reaped — refusing with CodePrepareExpired when
// the capacity is no longer there.
func (s *Server) handleShardCommit(ctx context.Context, req Request) Response {
	start := time.Now()
	if req.Txn == "" || req.Request == nil {
		return Response{Error: "shard-commit requires a txn and the request body", Code: CodeProtocol}
	}
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	lock := s.idLock(req.Request.ID)
	lock.Lock()
	defer lock.Unlock()

	if hold, ok := s.lookupHold(req.Txn); ok && hold.req.ID == req.Request.ID {
		if hold.epoch < s.Epoch() || (req.PrepareEpoch != 0 && req.PrepareEpoch != hold.epoch) {
			// The shard's term moved since the prepare (promotion or
			// restart): the hold belongs to a fenced incarnation. Refuse
			// with the typed code and release the hold — it can never
			// legitimately commit, and the coordinator will abort.
			_ = s.network.AbortPrepared(hold.req)
			s.dropHold(req.Txn)
			s.persistShardAbortWarn(req.Txn, hold.req.ID)
			s.traceShard(obs.KindShardCommit, hold.req.ID, obs.OutcomeError, CodeStalePrepare, start)
			return Response{
				Error: fmt.Sprintf("commit %q refused: prepare made at epoch %d, shard now at %d",
					req.Txn, hold.epoch, s.Epoch()),
				Code: CodeStalePrepare,
			}
		}
		if err := s.network.CommitPrepared(hold.req); err != nil {
			// A route link failed while the hold was pending; the commit
			// released everything.
			s.dropHold(req.Txn)
			s.persistShardAbortWarn(req.Txn, hold.req.ID)
			s.traceShard(obs.KindShardCommit, hold.req.ID, obs.OutcomeError, core.ErrorCode(err), start)
			return Response{Error: err.Error(), Code: core.ErrorCode(err)}
		}
		if s.testHookPreAppend != nil {
			s.testHookPreAppend(OpShardCommit, hold.req.ID)
		}
		warning, perr := s.persistShardCommit(req.Txn, hold.req)
		if perr != nil {
			// Not durable: un-admit and keep the hold? No — the safe
			// rollback is a full release; the coordinator's retry (or the
			// recovery path below) re-admits through CAC.
			_ = s.network.Teardown(hold.req.ID)
			s.dropHold(req.Txn)
			code := CodeNotDurable
			if errors.Is(perr, ErrNotReplicated) {
				code = CodeNotReplicated
			}
			s.traceShard(obs.KindShardCommit, hold.req.ID, obs.OutcomeError, code, start)
			return Response{Error: fmt.Sprintf("commit %q not durable: %v", req.Txn, perr), Code: code}
		}
		s.dropHold(req.Txn)
		s.traceShard(obs.KindShardCommit, hold.req.ID, obs.OutcomeOK, "", start)
		return Response{OK: true, Warning: warning, Admission: hold.adm}
	}

	// No hold. An identical admitted connection means this commit already
	// applied (retry after a lost response, or replayed recovery).
	if have, ok := s.network.AdmittedRequest(req.Request.ID); ok && requestsEquivalent(have, *req.Request) {
		s.traceShard(obs.KindShardCommit, req.Request.ID, obs.OutcomeOK, "", start)
		return Response{OK: true, Warning: "commit already applied"}
	}

	// Recovery: the hold was reaped (shard crash or TTL). The decision to
	// commit is durable at the coordinator, so try to re-earn the
	// reservation through the full CAC check.
	adm, err := s.network.Setup(ctx, *req.Request)
	if err != nil {
		s.traceShard(obs.KindShardCommit, req.Request.ID, obs.OutcomeError, CodePrepareExpired, start)
		return Response{
			Error: fmt.Sprintf("commit %q: prepared hold expired and re-admission failed: %v", req.Txn, err),
			Code:  CodePrepareExpired,
		}
	}
	if s.testHookPreAppend != nil {
		s.testHookPreAppend(OpShardCommit, req.Request.ID)
	}
	warning, perr := s.persistShardCommit(req.Txn, *req.Request)
	if perr != nil {
		_ = s.network.Teardown(req.Request.ID)
		code := CodeNotDurable
		if errors.Is(perr, ErrNotReplicated) {
			code = CodeNotReplicated
		}
		s.traceShard(obs.KindShardCommit, req.Request.ID, obs.OutcomeError, code, start)
		return Response{Error: fmt.Sprintf("commit %q not durable: %v", req.Txn, perr), Code: code}
	}
	if warning == "" {
		warning = "prepared hold expired; re-admitted through full CAC"
	}
	s.traceShard(obs.KindShardCommit, req.Request.ID, obs.OutcomeOK, "", start)
	return Response{OK: true, Warning: warning, Admission: toWireAdmission(adm)}
}

// requestsEquivalent reports whether two connection requests describe the
// same admission (the idempotency guard for duplicate commits and for
// aborts that must not tear down an unrelated reuse of the ID).
func requestsEquivalent(a, b core.ConnRequest) bool {
	if a.ID != b.ID || a.Priority != b.Priority || len(a.Route) != len(b.Route) {
		return false
	}
	for i := range a.Route {
		if a.Route[i] != b.Route[i] {
			return false
		}
	}
	return true
}

// handleShardAbort releases a prepared hold, or unwinds a commit the
// coordinator decided against, idempotently: aborting a transaction this
// shard has no trace of is OK.
func (s *Server) handleShardAbort(req Request) Response {
	start := time.Now()
	if req.Txn == "" {
		return Response{Error: "shard-abort requires a txn", Code: CodeProtocol}
	}
	id := req.ID
	if h, ok := s.lookupHold(req.Txn); ok {
		id = h.req.ID
	} else if id == "" && req.Request != nil {
		id = req.Request.ID
	}
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	lock := s.idLock(id)
	lock.Lock()
	defer lock.Unlock()

	if hold, ok := s.lookupHold(req.Txn); ok {
		aerr := s.network.AbortPrepared(hold.req)
		s.dropHold(req.Txn)
		if aerr != nil {
			return Response{Error: aerr.Error(), Code: core.ErrorCode(aerr)}
		}
		warning := s.persistShardAbortWarn(req.Txn, hold.req.ID)
		s.traceShard(obs.KindShardAbort, hold.req.ID, obs.OutcomeOK, "", start)
		return Response{OK: true, Warning: warning}
	}

	// Unwind: the commit applied here but the coordinator aborted the
	// transaction (another shard refused). Only tear down a connection
	// that matches the transaction's request — never an unrelated reuse
	// of the ID.
	if req.Request != nil {
		if have, ok := s.network.AdmittedRequest(req.Request.ID); ok && requestsEquivalent(have, *req.Request) {
			if err := s.network.Teardown(req.Request.ID); err != nil && !errors.Is(err, core.ErrUnknownConn) {
				return Response{Error: err.Error(), Code: core.ErrorCode(err)}
			}
			warning := s.persistShardAbortWarn(req.Txn, req.Request.ID)
			s.traceShard(obs.KindShardAbort, req.Request.ID, obs.OutcomeOK, "", start)
			return Response{OK: true, Warning: warning}
		}
	}
	s.traceShard(obs.KindShardAbort, id, obs.OutcomeOK, "", start)
	return Response{OK: true}
}

// handleShardReap forces one orphan-reaper pass and reports the expired
// transactions.
func (s *Server) handleShardReap() Response {
	reaped := s.ReapOrphans(time.Now())
	return Response{OK: true, Shard: &ShardStatusReport{
		ShardID:    s.shard.shardID,
		Role:       s.role(),
		Epoch:      s.Epoch(),
		CoordEpoch: s.coordEpochSeen(),
		Reaped:     reaped,
	}}
}

// handleShardStatus reports the shard identity and live holds.
func (s *Server) handleShardStatus() Response {
	now := time.Now()
	s.shard.prepMu.Lock()
	holds := make([]PreparedHoldReport, 0, len(s.shard.prepared))
	for _, h := range s.shard.prepared {
		holds = append(holds, PreparedHoldReport{
			Txn: h.txn, ID: h.req.ID,
			ExpiresInMillis: int64(h.deadline.Sub(now) / time.Millisecond),
		})
	}
	s.shard.prepMu.Unlock()
	return Response{OK: true, Shard: &ShardStatusReport{
		ShardID:    s.shard.shardID,
		Role:       s.role(),
		Epoch:      s.Epoch(),
		CoordEpoch: s.coordEpochSeen(),
		Prepared:   holds,
	}}
}

// role returns the replication role string without the full report.
func (s *Server) role() string {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	switch {
	case s.fenced:
		return "fenced"
	case s.standby:
		return "standby"
	}
	return "primary"
}

// ReapOrphans expires every prepared hold whose deadline is at or before
// now, releasing its hop reservations and journaling the abort. It
// returns the expired transactions. A standby or fenced node skips the
// pass (it holds nothing it may mutate).
func (s *Server) ReapOrphans(now time.Time) []string {
	if s.writeGate(OpShardReap) != nil {
		return nil
	}
	s.shard.prepMu.Lock()
	var due []*preparedHold
	for _, h := range s.shard.prepared {
		if !h.deadline.After(now) {
			due = append(due, h)
		}
	}
	s.shard.prepMu.Unlock()
	if len(due) == 0 {
		return nil
	}
	var reaped []string
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	for _, h := range due {
		lock := s.idLock(h.req.ID)
		lock.Lock()
		// Re-check under the ID lock: a commit or abort may have resolved
		// the hold while the pass was collecting.
		if cur, ok := s.lookupHold(h.txn); !ok || cur != h {
			lock.Unlock()
			continue
		}
		_ = s.network.AbortPrepared(h.req)
		s.dropHold(h.txn)
		s.persistShardAbortWarn(h.txn, h.req.ID)
		lock.Unlock()
		reaped = append(reaped, h.txn)
	}
	if len(reaped) > 0 {
		if tr := s.tracer; tr != nil {
			tr.Trace(obs.Event{Kind: obs.KindShardReap, Evicted: len(reaped)})
		}
	}
	return reaped
}

// StartOrphanReaper runs ReapOrphans every interval until the returned
// stop function is called. cacd wires it when -shard-id is set.
func (s *Server) StartOrphanReaper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-s.stop:
				return
			case now := <-t.C:
				s.ReapOrphans(now)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// persistShardPrepare journals the phase-1 record before the prepare
// acks; a refused append means the hold must not exist.
func (s *Server) persistShardPrepare(txn string, req core.ConnRequest, ttl time.Duration) (string, error) {
	if s.dur == nil {
		return "", nil
	}
	if !s.dur.journaled() {
		return s.persistSnapshotWarn(), nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.appendLocked(
		&journal.Record{Op: journal.OpShardPrepare, Txn: txn, Request: &req, TTLMillis: int64(ttl / time.Millisecond)},
		&journal.Record{Op: journal.OpShardAbort, Txn: txn, ID: req.ID})
}

// persistShardCommit journals the phase-2 record (self-contained: it
// embeds the request) before the commit acks.
func (s *Server) persistShardCommit(txn string, req core.ConnRequest) (string, error) {
	if s.dur == nil {
		return "", nil
	}
	if !s.dur.journaled() {
		return s.persistSnapshotWarn(), nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.appendLocked(
		&journal.Record{Op: journal.OpShardCommit, Txn: txn, Request: &req},
		&journal.Record{Op: journal.OpShardAbort, Txn: txn, ID: req.ID})
}

// persistShardAbortWarn journals an abort, warning-only: the release
// already happened in memory, and replay treats an unresolved prepare as
// reaped anyway, so a missing abort record cannot resurrect the hold.
func (s *Server) persistShardAbortWarn(txn string, id core.ConnID) string {
	if s.dur == nil {
		return ""
	}
	if !s.dur.journaled() {
		return s.persistSnapshotWarn()
	}
	rec := &journal.Record{Op: journal.OpShardAbort, Txn: txn, ID: id}
	s.persistMu.Lock()
	warning, err := s.appendLocked(rec, nil)
	if err != nil {
		// Acked warning-only op: fold into the view despite the failed
		// append, as in persistRestoreLink.
		s.dur.applyView(rec)
	}
	s.persistMu.Unlock()
	if err != nil {
		s.scheduleRetry()
		return fmt.Sprintf("shard-abort journal append deferred (will retry as snapshot): %v", err)
	}
	return warning
}
