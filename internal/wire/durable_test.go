package wire

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/traffic"
)

// bootDurable recovers a fresh two-switch network from statePath in the
// given mode and serves it; the returned stop closes everything without
// a final snapshot (crash-like), leaving the journal authoritative.
func bootDurable(t *testing.T, statePath string, mode DurabilityMode, compactRecords int) (*Client, *RecoveryReport, func()) {
	t.Helper()
	network, _ := twoSwitchNetwork(t)
	dur, err := OpenDurable(DurableConfig{
		StatePath: statePath, Mode: mode, CompactRecords: compactRecords,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dur.Recover(network)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network)
	srv.SetDurable(dur)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	stop := func() {
		_ = client.Close()
		_ = srv.Close()
		<-done
		_ = dur.Close()
	}
	return client, rep, stop
}

func TestParseDurabilityMode(t *testing.T) {
	for _, mode := range []string{"snapshot", "journal", "journal-sync"} {
		if _, err := ParseDurabilityMode(mode); err != nil {
			t.Errorf("ParseDurabilityMode(%q) = %v", mode, err)
		}
	}
	if _, err := ParseDurabilityMode("paranoid"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestJournalModeSurvivesRestart drives every journaled op kind over the
// wire, "crashes" (no final snapshot), and checks the replayed state.
func TestJournalModeSurvivesRestart(t *testing.T) {
	for _, mode := range []DurabilityMode{DurabilityJournal, DurabilityJournalSync} {
		t.Run(string(mode), func(t *testing.T) {
			statePath := filepath.Join(t.TempDir(), "state.json")
			client, _, stop := bootDurable(t, statePath, mode, 0)
			route := core.Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
			for i := 0; i < 3; i++ {
				r := append(core.Route(nil), route...)
				r[0].In = core.PortID(i + 1)
				r[1].In = core.PortID(i + 1)
				if _, err := client.Setup(core.ConnRequest{
					ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.01),
					Priority: 1, Route: r,
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := client.Teardown("c1"); err != nil {
				t.Fatal(err)
			}
			// Fail sw0->sw1: evicts the remaining connections (no failover
			// handler re-admits them) and records the link down.
			if _, err := client.FailLink("sw0", "sw1"); err != nil {
				t.Fatal(err)
			}
			// One connection admitted in degraded mode, on sw0 only.
			if _, err := client.Setup(core.ConnRequest{
				ID: "deg", Spec: traffic.CBR(0.01), Priority: 1,
				Route: core.Route{{Switch: "sw0", In: 4, Out: 1}},
			}); err != nil {
				t.Fatal(err)
			}
			stop()

			client2, rep, stop2 := bootDurable(t, statePath, mode, 0)
			defer stop2()
			if rep.Restored != 1 || len(rep.Failed) != 0 {
				t.Fatalf("recovery = %+v, want exactly the degraded connection", rep)
			}
			ids, err := client2.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 1 || ids[0] != "deg" {
				t.Fatalf("after restart List = %v, want [deg]", ids)
			}
			if len(rep.FailedLinks) != 1 || rep.FailedLinks[0].From != "sw0" {
				t.Fatalf("failed links after restart = %+v", rep.FailedLinks)
			}
			// Restore the link, restart again: the restore must persist too.
			if err := client2.RestoreLink("sw0", "sw1"); err != nil {
				t.Fatal(err)
			}
			stop2()
			_, rep3, stop3 := bootDurable(t, statePath, mode, 0)
			defer stop3()
			if len(rep3.FailedLinks) != 0 {
				t.Fatalf("restored link came back failed: %+v", rep3.FailedLinks)
			}
		})
	}
}

// TestJournalCompactionFoldsIntoSnapshot forces compaction every two
// records and checks the journal empties while the snapshot carries the
// state and the sequence watermark.
func TestJournalCompactionFoldsIntoSnapshot(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	client, _, stop := bootDurable(t, statePath, DurabilityJournalSync, 2)
	defer stop()
	route := core.Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	for i := 0; i < 5; i++ {
		r := append(core.Route(nil), route...)
		r[0].In = core.PortID(i + 1)
		r[1].In = core.PortID(i + 1)
		if _, err := client.Setup(core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.01),
			Priority: 1, Route: r,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// 5 appends with a trigger of 2: compactions at 2 and 4, one record
	// pending in the journal.
	scan, err := journal.ScanFile(journal.OSFS{}, statePath+".journal")
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 1 {
		t.Fatalf("journal holds %d records after compactions, want 1", len(scan.Records))
	}
	if scan.Records[0].Seq != 5 {
		t.Fatalf("pending record seq = %d, want 5", scan.Records[0].Seq)
	}
	st, _, err := NewStateStore(statePath).LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Connections) != 4 || st.LastSeq != 4 {
		t.Fatalf("snapshot holds %d connections at watermark %d, want 4 at 4",
			len(st.Connections), st.LastSeq)
	}
}

// TestRecoverRepairsTornJournal damages the journal tail and checks
// recovery preserves the evidence, truncates, and replays the prefix.
func TestRecoverRepairsTornJournal(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	client, _, stop := bootDurable(t, statePath, DurabilityJournalSync, 0)
	route := core.Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	if _, err := client.Setup(core.ConnRequest{
		ID: "keep", Spec: traffic.CBR(0.01), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	stop()
	jpath := statePath + ".journal"
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 9, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	client2, rep, stop2 := bootDurable(t, statePath, DurabilityJournalSync, 0)
	defer stop2()
	if rep.TornPath != jpath+".torn" {
		t.Fatalf("TornPath = %q, want %q", rep.TornPath, jpath+".torn")
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "torn tail") {
			found = true
		}
	}
	if !found {
		t.Errorf("no torn-tail warning in %v", rep.Warnings)
	}
	if _, err := os.Stat(rep.TornPath); err != nil {
		t.Errorf("torn evidence missing: %v", err)
	}
	ids, err := client2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "keep" {
		t.Fatalf("after torn repair List = %v, want [keep]", ids)
	}
}

// TestRecoverPrunesFailedReadmissions is the regression for re-admission
// failures at recovery: they are reported once and compacted out of the
// next snapshot, so a later restart does not re-report the same ghosts.
func TestRecoverPrunesFailedReadmissions(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	store := NewStateStore(statePath)
	if err := store.SaveState(PersistentState{Connections: []core.ConnRequest{
		{ID: "ok", Spec: traffic.CBR(0.01), Priority: 1,
			Route: core.Route{{Switch: "sw0", In: 1, Out: 0}}},
		{ID: "ghost", Spec: traffic.CBR(0.1), Priority: 1,
			Route: core.Route{{Switch: "no-such-switch", In: 1, Out: 0}}},
	}}); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []DurabilityMode{DurabilitySnapshot, DurabilityJournalSync} {
		t.Run(string(mode), func(t *testing.T) {
			network, _ := twoSwitchNetwork(t)
			dur, err := OpenDurable(DurableConfig{StatePath: statePath, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := dur.Recover(network)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Restored != 1 || len(rep.Failed) != 1 || rep.Failed[0].ID != "ghost" {
				t.Fatalf("first recovery = %+v, want ok restored and ghost failed once", rep)
			}
			_ = dur.Close()

			network2, _ := twoSwitchNetwork(t)
			dur2, err := OpenDurable(DurableConfig{StatePath: statePath, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer dur2.Close()
			rep2, err := dur2.Recover(network2)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep2.Failed) != 0 {
				t.Fatalf("second recovery still reports failures: %+v", rep2.Failed)
			}
			if rep2.Restored != 1 {
				t.Fatalf("second recovery restored %d, want 1", rep2.Restored)
			}
			// Re-seed the snapshot for the next mode's subtest.
			if err := store.SaveState(PersistentState{Connections: []core.ConnRequest{
				{ID: "ok", Spec: traffic.CBR(0.01), Priority: 1,
					Route: core.Route{{Switch: "sw0", In: 1, Out: 0}}},
				{ID: "ghost", Spec: traffic.CBR(0.1), Priority: 1,
					Route: core.Route{{Switch: "no-such-switch", In: 1, Out: 0}}},
			}}); err != nil {
				t.Fatal(err)
			}
			_ = os.Remove(statePath + ".journal")
		})
	}
}

// TestJournalRefusedSetupRollsBack starves the journal (its file is a
// directory, so appends fail) and checks the op is refused AND the
// in-memory admission rolled back — acked and durable stay equivalent.
func TestJournalRefusedSetupRollsBack(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")
	network, route := twoSwitchNetwork(t)
	dur, err := OpenDurable(DurableConfig{
		StatePath: statePath, Mode: DurabilityJournalSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dur.Recover(network); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network)
	srv.SetDurable(dur)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = client.Close()
		_ = srv.Close()
		<-done
		_ = dur.Close()
	}()
	// Admit one connection cleanly, then break the journal file handle by
	// replacing the file with an unwritable state: close the handle via a
	// forced broken append. Simplest reliable breakage: remove write
	// permission is racy under root, so instead mark the log broken by
	// exhausting it — replace the file with a directory is not possible
	// while open. Use the documented ErrBroken path: truncate failure.
	if _, err := client.Setup(core.ConnRequest{
		ID: "good", Spec: traffic.CBR(0.01), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	// Force the broken state directly (in-package test): a broken log
	// refuses appends, so the next setup must be refused and rolled back.
	srv.dur.log.MarkBroken()
	r2 := append(core.Route(nil), route...)
	r2[0].In, r2[1].In = 7, 7
	if _, err := client.Setup(core.ConnRequest{
		ID: "refused", Spec: traffic.CBR(0.01), Priority: 1, Route: r2,
	}); err == nil {
		t.Fatal("setup acked with a broken journal")
	} else if !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("refusal = %v, want a durability error", err)
	}
	// Rolled back: the connection is not admitted in memory either.
	ids, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "good" {
		t.Fatalf("List after refused setup = %v, want [good]", ids)
	}
	// Teardown of the good connection is likewise refused and rolled back.
	if err := client.Teardown("good"); err == nil {
		t.Fatal("teardown acked with a broken journal")
	}
	ids, err = client.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "good" {
		t.Fatalf("List after refused teardown = %v, want [good]", ids)
	}
}

// BenchmarkPersistSetup compares the per-admission persistence cost of
// the three modes with 500 established connections: the snapshot mode
// rewrites all 500 every time, the journal appends one record.
func BenchmarkPersistSetup(b *testing.B) {
	mkNetwork := func(b *testing.B) (*core.Network, core.ConnRequest) {
		b.Helper()
		n := core.NewNetwork(core.HardCDV{})
		route := make(core.Route, 2)
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("sw%d", i)
			if _, err := n.AddSwitch(core.SwitchConfig{
				Name: name, QueueCells: map[core.Priority]float64{1: 1 << 20},
			}); err != nil {
				b.Fatal(err)
			}
			route[i] = core.Hop{Switch: name, In: 1, Out: 0}
		}
		for i := 0; i < 500; i++ {
			r := append(core.Route(nil), route...)
			r[0].In = core.PortID(i + 1)
			r[1].In = core.PortID(i + 1)
			if _, err := n.Setup(core.ConnRequest{
				ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.0001),
				Priority: 1, Route: r,
			}); err != nil {
				b.Fatal(err)
			}
		}
		sample := core.ConnRequest{
			ID: "bench", Spec: traffic.CBR(0.0001), Priority: 1, Route: route,
		}
		return n, sample
	}
	for _, mode := range []DurabilityMode{DurabilitySnapshot, DurabilityJournal, DurabilityJournalSync} {
		b.Run(string(mode), func(b *testing.B) {
			network, sample := mkNetwork(b)
			dur, err := OpenDurable(DurableConfig{
				StatePath: filepath.Join(b.TempDir(), "state.json"),
				Mode:      mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer dur.Close()
			if _, err := dur.Recover(network); err != nil {
				b.Fatal(err)
			}
			srv := NewServer(network)
			srv.SetDurable(dur)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.persistSetup(sample); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
