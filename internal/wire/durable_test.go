package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/traffic"
)

// bootDurable recovers a fresh two-switch network from statePath in the
// given mode and serves it; the returned stop closes everything without
// a final snapshot (crash-like), leaving the journal authoritative.
func bootDurable(t *testing.T, statePath string, mode DurabilityMode, compactRecords int) (*Client, *RecoveryReport, func()) {
	t.Helper()
	network, _ := twoSwitchNetwork(t)
	dur, err := OpenDurable(DurableConfig{
		StatePath: statePath, Mode: mode, CompactRecords: compactRecords,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dur.Recover(network)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network)
	srv.SetDurable(dur)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	stop := func() {
		_ = client.Close()
		_ = srv.Close()
		<-done
		_ = dur.Close()
	}
	return client, rep, stop
}

func TestParseDurabilityMode(t *testing.T) {
	for _, mode := range []string{"snapshot", "journal", "journal-sync"} {
		if _, err := ParseDurabilityMode(mode); err != nil {
			t.Errorf("ParseDurabilityMode(%q) = %v", mode, err)
		}
	}
	if _, err := ParseDurabilityMode("paranoid"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestJournalModeSurvivesRestart drives every journaled op kind over the
// wire, "crashes" (no final snapshot), and checks the replayed state.
func TestJournalModeSurvivesRestart(t *testing.T) {
	for _, mode := range []DurabilityMode{DurabilityJournal, DurabilityJournalSync} {
		t.Run(string(mode), func(t *testing.T) {
			statePath := filepath.Join(t.TempDir(), "state.json")
			client, _, stop := bootDurable(t, statePath, mode, 0)
			route := core.Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
			for i := 0; i < 3; i++ {
				r := append(core.Route(nil), route...)
				r[0].In = core.PortID(i + 1)
				r[1].In = core.PortID(i + 1)
				if _, err := client.Setup(context.Background(), core.ConnRequest{
					ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.01),
					Priority: 1, Route: r,
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := client.Teardown(context.Background(), "c1"); err != nil {
				t.Fatal(err)
			}
			// Fail sw0->sw1: evicts the remaining connections (no failover
			// handler re-admits them) and records the link down.
			if _, err := client.FailLink(context.Background(), "sw0", "sw1"); err != nil {
				t.Fatal(err)
			}
			// One connection admitted in degraded mode, on sw0 only.
			if _, err := client.Setup(context.Background(), core.ConnRequest{
				ID: "deg", Spec: traffic.CBR(0.01), Priority: 1,
				Route: core.Route{{Switch: "sw0", In: 4, Out: 1}},
			}); err != nil {
				t.Fatal(err)
			}
			stop()

			client2, rep, stop2 := bootDurable(t, statePath, mode, 0)
			defer stop2()
			if rep.Restored != 1 || len(rep.Failed) != 0 {
				t.Fatalf("recovery = %+v, want exactly the degraded connection", rep)
			}
			ids, err := client2.List(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 1 || ids[0] != "deg" {
				t.Fatalf("after restart List = %v, want [deg]", ids)
			}
			if len(rep.FailedLinks) != 1 || rep.FailedLinks[0].From != "sw0" {
				t.Fatalf("failed links after restart = %+v", rep.FailedLinks)
			}
			// Restore the link, restart again: the restore must persist too.
			if err := client2.RestoreLink(context.Background(), "sw0", "sw1"); err != nil {
				t.Fatal(err)
			}
			stop2()
			_, rep3, stop3 := bootDurable(t, statePath, mode, 0)
			defer stop3()
			if len(rep3.FailedLinks) != 0 {
				t.Fatalf("restored link came back failed: %+v", rep3.FailedLinks)
			}
		})
	}
}

// TestJournalCompactionFoldsIntoSnapshot forces compaction every two
// records and checks the journal empties while the snapshot carries the
// state and the sequence watermark.
func TestJournalCompactionFoldsIntoSnapshot(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	client, _, stop := bootDurable(t, statePath, DurabilityJournalSync, 2)
	defer stop()
	route := core.Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	for i := 0; i < 5; i++ {
		r := append(core.Route(nil), route...)
		r[0].In = core.PortID(i + 1)
		r[1].In = core.PortID(i + 1)
		if _, err := client.Setup(context.Background(), core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.01),
			Priority: 1, Route: r,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// 5 appends with a trigger of 2: compactions at 2 and 4, one record
	// pending in the journal.
	scan, err := journal.ScanFile(journal.OSFS{}, statePath+".journal")
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 1 {
		t.Fatalf("journal holds %d records after compactions, want 1", len(scan.Records))
	}
	if scan.Records[0].Seq != 5 {
		t.Fatalf("pending record seq = %d, want 5", scan.Records[0].Seq)
	}
	st, _, err := NewStateStore(statePath).LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Connections) != 4 || st.LastSeq != 4 {
		t.Fatalf("snapshot holds %d connections at watermark %d, want 4 at 4",
			len(st.Connections), st.LastSeq)
	}
}

// TestRecoverRepairsTornJournal damages the journal tail and checks
// recovery preserves the evidence, truncates, and replays the prefix.
func TestRecoverRepairsTornJournal(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	client, _, stop := bootDurable(t, statePath, DurabilityJournalSync, 0)
	route := core.Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "keep", Spec: traffic.CBR(0.01), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	stop()
	jpath := statePath + ".journal"
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 9, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	client2, rep, stop2 := bootDurable(t, statePath, DurabilityJournalSync, 0)
	defer stop2()
	if rep.TornPath != jpath+".torn" {
		t.Fatalf("TornPath = %q, want %q", rep.TornPath, jpath+".torn")
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "torn tail") {
			found = true
		}
	}
	if !found {
		t.Errorf("no torn-tail warning in %v", rep.Warnings)
	}
	if _, err := os.Stat(rep.TornPath); err != nil {
		t.Errorf("torn evidence missing: %v", err)
	}
	ids, err := client2.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "keep" {
		t.Fatalf("after torn repair List = %v, want [keep]", ids)
	}
}

// TestRecoverPrunesFailedReadmissions is the regression for re-admission
// failures at recovery: they are reported once and compacted out of the
// next snapshot, so a later restart does not re-report the same ghosts.
func TestRecoverPrunesFailedReadmissions(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	store := NewStateStore(statePath)
	if err := store.SaveState(PersistentState{Connections: []core.ConnRequest{
		{ID: "ok", Spec: traffic.CBR(0.01), Priority: 1,
			Route: core.Route{{Switch: "sw0", In: 1, Out: 0}}},
		{ID: "ghost", Spec: traffic.CBR(0.1), Priority: 1,
			Route: core.Route{{Switch: "no-such-switch", In: 1, Out: 0}}},
	}}); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []DurabilityMode{DurabilitySnapshot, DurabilityJournalSync} {
		t.Run(string(mode), func(t *testing.T) {
			network, _ := twoSwitchNetwork(t)
			dur, err := OpenDurable(DurableConfig{StatePath: statePath, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := dur.Recover(network)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Restored != 1 || len(rep.Failed) != 1 || rep.Failed[0].ID != "ghost" {
				t.Fatalf("first recovery = %+v, want ok restored and ghost failed once", rep)
			}
			_ = dur.Close()

			network2, _ := twoSwitchNetwork(t)
			dur2, err := OpenDurable(DurableConfig{StatePath: statePath, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer dur2.Close()
			rep2, err := dur2.Recover(network2)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep2.Failed) != 0 {
				t.Fatalf("second recovery still reports failures: %+v", rep2.Failed)
			}
			if rep2.Restored != 1 {
				t.Fatalf("second recovery restored %d, want 1", rep2.Restored)
			}
			// Re-seed the snapshot for the next mode's subtest.
			if err := store.SaveState(PersistentState{Connections: []core.ConnRequest{
				{ID: "ok", Spec: traffic.CBR(0.01), Priority: 1,
					Route: core.Route{{Switch: "sw0", In: 1, Out: 0}}},
				{ID: "ghost", Spec: traffic.CBR(0.1), Priority: 1,
					Route: core.Route{{Switch: "no-such-switch", In: 1, Out: 0}}},
			}}); err != nil {
				t.Fatal(err)
			}
			_ = os.Remove(statePath + ".journal")
		})
	}
}

// TestJournalRefusedSetupRollsBack starves the journal (its file is a
// directory, so appends fail) and checks the op is refused AND the
// in-memory admission rolled back — acked and durable stay equivalent.
func TestJournalRefusedSetupRollsBack(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")
	network, route := twoSwitchNetwork(t)
	dur, err := OpenDurable(DurableConfig{
		StatePath: statePath, Mode: DurabilityJournalSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dur.Recover(network); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network)
	srv.SetDurable(dur)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = client.Close()
		_ = srv.Close()
		<-done
		_ = dur.Close()
	}()
	// Admit one connection cleanly, then break the journal file handle by
	// replacing the file with an unwritable state: close the handle via a
	// forced broken append. Simplest reliable breakage: remove write
	// permission is racy under root, so instead mark the log broken by
	// exhausting it — replace the file with a directory is not possible
	// while open. Use the documented ErrBroken path: truncate failure.
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "good", Spec: traffic.CBR(0.01), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	// Force the broken state directly (in-package test): a broken log
	// refuses appends, so the next setup must be refused and rolled back.
	srv.dur.log.MarkBroken()
	r2 := append(core.Route(nil), route...)
	r2[0].In, r2[1].In = 7, 7
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "refused", Spec: traffic.CBR(0.01), Priority: 1, Route: r2,
	}); err == nil {
		t.Fatal("setup acked with a broken journal")
	} else if !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("refusal = %v, want a durability error", err)
	}
	// Rolled back: the connection is not admitted in memory either.
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "good" {
		t.Fatalf("List after refused setup = %v, want [good]", ids)
	}
	// Teardown of the good connection is likewise refused and rolled back.
	if err := client.Teardown(context.Background(), "good"); err == nil {
		t.Fatal("teardown acked with a broken journal")
	}
	ids, err = client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "good" {
		t.Fatalf("List after refused teardown = %v, want [good]", ids)
	}
}

// TestJournalOrderMatchesMutationOrder is the regression for the
// mutation/append ordering race: concurrent setups and teardowns of the
// SAME client-chosen IDs — plus link failures, whose records name whole
// connection sets — must leave a journal whose replay equals the live
// admission state. Without the per-ID ordering discipline a
// teardown+setup pair could journal in the opposite order of its network
// mutations, so replay would resurrect the torn-down connection or drop
// the admitted one. The small compaction trigger also exercises
// snapshots taken mid-churn. Run with -race.
func TestJournalOrderMatchesMutationOrder(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	network, route := twoSwitchNetwork(t)
	dur, err := OpenDurable(DurableConfig{
		StatePath: statePath, Mode: DurabilityJournal, CompactRecords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	if _, err := dur.Recover(network); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network)
	srv.SetDurable(dur)
	// Widen the mutation→append window from nanoseconds to something the
	// scheduler can actually interleave in; without this the race the
	// test guards against is too narrow to hit reliably.
	srv.testHookPreAppend = func(string, core.ConnID) {
		time.Sleep(20 * time.Microsecond)
	}

	const workers, rounds, sharedIDs = 8, 50, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				idx := (w + i) % sharedIDs
				id := core.ConnID(fmt.Sprintf("shared%d", idx))
				if w%2 == 0 {
					r := append(core.Route(nil), route...)
					r[0].In = core.PortID(idx + 1)
					r[1].In = core.PortID(idx + 1)
					req := core.ConnRequest{
						ID: id, Spec: traffic.CBR(0.001), Priority: 1, Route: r,
					}
					srv.dispatch(Request{Op: OpSetup, Request: &req})
				} else {
					srv.dispatch(Request{Op: OpTeardown, ID: id})
				}
			}
		}(w)
	}
	// Churn the link both routes cross: fail-link evicts whole connection
	// sets in one record, so its ordering against concurrent setups
	// matters just as much as the per-ID races above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			srv.dispatch(Request{Op: OpFailLink, From: "sw0", To: "sw1"})
			srv.dispatch(Request{Op: OpRestoreLink, From: "sw0", To: "sw1"})
		}
	}()
	wg.Wait()

	// Quiesced: what a crash right now would recover must equal memory.
	st, _, err := dur.Store().LoadState()
	if err != nil {
		t.Fatal(err)
	}
	scan, err := journal.ScanFile(journal.OSFS{}, statePath+".journal")
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn {
		t.Fatal("journal has a torn tail after clean churn")
	}
	replayed := journal.Replay(
		journal.State{Requests: st.Connections, FailedLinks: st.FailedLinks},
		st.LastSeq, scan.Records)

	idsOf := func(reqs []core.ConnRequest) string {
		ids := make([]string, 0, len(reqs))
		for _, req := range reqs {
			ids = append(ids, string(req.ID))
		}
		sort.Strings(ids)
		return strings.Join(ids, ",")
	}
	if got, want := idsOf(replayed.Requests), idsOf(network.AdmittedRequests()); got != want {
		t.Errorf("replayed connections = [%s], memory has [%s]", got, want)
	}
	linksOf := func(links []core.Link) string {
		ss := make([]string, 0, len(links))
		for _, l := range links {
			ss = append(ss, l.From+">"+l.To)
		}
		sort.Strings(ss)
		return strings.Join(ss, ",")
	}
	if got, want := linksOf(replayed.FailedLinks), linksOf(network.FailedLinks()); got != want {
		t.Errorf("replayed failed links = [%s], memory has [%s]", got, want)
	}
}

// TestTeardownSetupSameIDOrdering pins the ordering discipline
// deterministically: a setup of an ID must not be able to run inside
// another operation's mutation→append window for the same ID. The test
// parks a teardown in that window via the pre-append hook and checks the
// racing setup blocks until the teardown's record is on disk — so the
// journal can never carry them in the opposite order of the in-memory
// mutations.
func TestTeardownSetupSameIDOrdering(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	network, route := twoSwitchNetwork(t)
	dur, err := OpenDurable(DurableConfig{StatePath: statePath, Mode: DurabilityJournal})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	if _, err := dur.Recover(network); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network)
	srv.SetDurable(dur)
	req := core.ConnRequest{ID: "dup", Spec: traffic.CBR(0.01), Priority: 1, Route: route}
	if resp := srv.dispatch(Request{Op: OpSetup, Request: &req}); resp.Error != "" {
		t.Fatal(resp.Error)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testHookPreAppend = func(op string, id core.ConnID) {
		if op == OpTeardown && id == "dup" {
			once.Do(func() {
				close(entered)
				<-release
			})
		}
	}
	teardownDone := make(chan Response, 1)
	go func() { teardownDone <- srv.dispatch(Request{Op: OpTeardown, ID: "dup"}) }()
	<-entered // teardown committed in memory, its append still pending

	setupDone := make(chan Response, 1)
	go func() { setupDone <- srv.dispatch(Request{Op: OpSetup, Request: &req}) }()
	select {
	case <-setupDone:
		t.Fatal("setup of the same ID completed inside the teardown's mutation→append window")
	case <-time.After(100 * time.Millisecond):
		// Blocked on the ID stripe: the discipline holds.
	}
	close(release)
	if resp := <-teardownDone; resp.Error != "" {
		t.Fatalf("teardown = %v", resp.Error)
	}
	if resp := <-setupDone; resp.Error != "" {
		t.Fatalf("re-setup after teardown = %v", resp.Error)
	}

	// Memory ends with "dup" admitted; the journal must replay to the same.
	st, _, err := dur.Store().LoadState()
	if err != nil {
		t.Fatal(err)
	}
	scan, err := journal.ScanFile(journal.OSFS{}, statePath+".journal")
	if err != nil {
		t.Fatal(err)
	}
	replayed := journal.Replay(
		journal.State{Requests: st.Connections, FailedLinks: st.FailedLinks},
		st.LastSeq, scan.Records)
	if len(replayed.Requests) != 1 || replayed.Requests[0].ID != "dup" {
		t.Fatalf("replayed state = %+v, memory has [dup]", replayed.Requests)
	}
}

// TestBrokenJournalSnapshotConverges is the regression for the endless
// retry loop: with a broken journal, compactLocked saves the snapshot
// and only then fails to truncate the journal. The saved snapshot's
// watermark already makes every stale record inert, so that outcome is
// convergence — the background retry must stop, and shutdown's
// persistNow must not report an error.
func TestBrokenJournalSnapshotConverges(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	network, route := twoSwitchNetwork(t)
	dur, err := OpenDurable(DurableConfig{
		StatePath: statePath, Mode: DurabilityJournalSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	if _, err := dur.Recover(network); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network)
	srv.SetDurable(dur)
	req := core.ConnRequest{ID: "keep", Spec: traffic.CBR(0.01), Priority: 1, Route: route}
	if resp := srv.dispatch(Request{Op: OpSetup, Request: &req}); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	srv.dur.log.MarkBroken()
	err = srv.snapshot()
	if err == nil || !errors.Is(err, errJournalReset) {
		t.Fatalf("snapshot with broken journal = %v, want errJournalReset", err)
	}
	// The snapshot itself landed, state and watermark included.
	st, _, err := dur.Store().LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Connections) != 1 || st.Connections[0].ID != "keep" || st.LastSeq != 1 {
		t.Fatalf("snapshot despite reset failure = %d conns, watermark %d; want [keep] at 1",
			len(st.Connections), st.LastSeq)
	}
	// The retry loop treats the saved snapshot as done and exits after its
	// first attempt instead of spinning for the life of the process.
	srv.scheduleRetry()
	drained := make(chan struct{})
	go func() { srv.drainRetry(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("retry loop still spinning on the broken journal")
	}
	if err := srv.persistNow(); err != nil {
		t.Fatalf("persistNow with broken journal = %v, want nil (state is durable)", err)
	}
}

// BenchmarkPersistSetup compares the per-admission persistence cost of
// the three modes with 500 established connections: the snapshot mode
// rewrites all 500 every time, the journal appends one record.
func BenchmarkPersistSetup(b *testing.B) {
	mkNetwork := func(b *testing.B) (*core.Network, core.ConnRequest) {
		b.Helper()
		n := core.NewNetwork(core.HardCDV{})
		route := make(core.Route, 2)
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("sw%d", i)
			if _, err := n.AddSwitch(core.SwitchConfig{
				Name: name, QueueCells: map[core.Priority]float64{1: 1 << 20},
			}); err != nil {
				b.Fatal(err)
			}
			route[i] = core.Hop{Switch: name, In: 1, Out: 0}
		}
		for i := 0; i < 500; i++ {
			r := append(core.Route(nil), route...)
			r[0].In = core.PortID(i + 1)
			r[1].In = core.PortID(i + 1)
			if _, err := n.Setup(context.Background(), core.ConnRequest{
				ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.0001),
				Priority: 1, Route: r,
			}); err != nil {
				b.Fatal(err)
			}
		}
		sample := core.ConnRequest{
			ID: "bench", Spec: traffic.CBR(0.0001), Priority: 1, Route: route,
		}
		return n, sample
	}
	for _, mode := range []DurabilityMode{DurabilitySnapshot, DurabilityJournal, DurabilityJournalSync} {
		b.Run(string(mode), func(b *testing.B) {
			network, sample := mkNetwork(b)
			dur, err := OpenDurable(DurableConfig{
				StatePath: filepath.Join(b.TempDir(), "state.json"),
				Mode:      mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer dur.Close()
			if _, err := dur.Recover(network); err != nil {
				b.Fatal(err)
			}
			srv := NewServer(network)
			srv.SetDurable(dur)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.persistSetup(sample); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
