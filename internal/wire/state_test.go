package wire

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

func twoSwitchNetwork(t *testing.T) (*core.Network, core.Route) {
	t.Helper()
	n := core.NewNetwork(core.HardCDV{})
	route := make(core.Route, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("sw%d", i)
		if _, err := n.AddSwitch(core.SwitchConfig{
			Name: name, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
		route[i] = core.Hop{Switch: name, In: 1, Out: 0}
	}
	return n, route
}

func TestStateStoreRoundTrip(t *testing.T) {
	store := NewStateStore(filepath.Join(t.TempDir(), "state.json"))
	// Missing file loads empty.
	reqs, _, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 0 {
		t.Fatalf("missing file loaded %v", reqs)
	}
	want := []core.ConnRequest{
		{ID: "a", Spec: traffic.CBR(0.1), Priority: 1,
			Route: core.Route{{Switch: "sw0", In: 1, Out: 0}}, DelayBound: 64},
		{ID: "b", Spec: traffic.VBR(0.5, 0.05, 8), Priority: 2,
			Route: core.Route{{Switch: "sw1", In: 2, Out: 3}}, SourceCDV: 16},
	}
	if err := store.Save(want); err != nil {
		t.Fatal(err)
	}
	got, _, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "a" || got[1].Spec.MBS != 8 ||
		got[0].DelayBound != 64 || got[1].SourceCDV != 16 ||
		got[1].Route[0].Out != 3 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestStateStoreCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(path, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewStateStore(path).Load(); err == nil {
		t.Fatal("corrupt state accepted")
	}
}

func TestStateStoreChecksumMismatchQuarantines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	store := NewStateStore(path)
	if err := store.Save([]core.ConnRequest{
		{ID: "a", Spec: traffic.CBR(0.1), Priority: 1,
			Route: core.Route{{Switch: "sw0", In: 1, Out: 0}}},
	}); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte without touching the trailer.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[2] ^= 0x01
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	_, _, err = store.Load()
	if !errors.Is(err, ErrCorruptState) {
		t.Fatalf("Load of corrupted snapshot = %v, want ErrCorruptState", err)
	}
	// The corrupt file has been moved aside, not left in place.
	if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
		t.Errorf("corrupt snapshot still at %s (stat: %v)", path, serr)
	}
	if _, serr := os.Stat(store.QuarantinePath()); serr != nil {
		t.Errorf("quarantined snapshot missing: %v", serr)
	}
	// A reload after quarantine is an empty store, not a repeat error.
	reqs, _, err := store.Load()
	if err != nil || len(reqs) != 0 {
		t.Errorf("Load after quarantine = %v, %v; want empty, nil", reqs, err)
	}
}

// TestStateStoreQuarantineKeepsEveryCorpse corrupts the snapshot twice:
// the second quarantine must not overwrite the first's evidence, it gets
// a counter-suffixed path.
func TestStateStoreQuarantineKeepsEveryCorpse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	store := NewStateStore(path)
	corruptOnce := func(marker byte) {
		t.Helper()
		if err := store.Save([]core.ConnRequest{
			{ID: "a", Spec: traffic.CBR(0.1), Priority: 1,
				Route: core.Route{{Switch: "sw0", In: 1, Out: 0}}},
		}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[2] = marker
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, _, err := store.Load(); !errors.Is(err, ErrCorruptState) {
			t.Fatalf("Load of corrupted snapshot = %v, want ErrCorruptState", err)
		}
	}
	corruptOnce(0xAA)
	corruptOnce(0xBB)
	first, err := os.ReadFile(store.QuarantinePath())
	if err != nil {
		t.Fatalf("first quarantine evidence missing: %v", err)
	}
	second, err := os.ReadFile(store.QuarantinePath() + ".1")
	if err != nil {
		t.Fatalf("second quarantine evidence missing: %v", err)
	}
	if first[2] != 0xAA || second[2] != 0xBB {
		t.Errorf("quarantine evidence shuffled: first[2]=%#x second[2]=%#x", first[2], second[2])
	}
}

func TestStateStoreLegacyFileAcceptedWithWarning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	// A pre-checksum snapshot: plain JSON array, no trailer.
	legacy := `[{"id": "old", "spec": {"pcr": 0.1}, "priority": 1,
		"route": [{"switch": "sw0", "in": 1, "out": 0}]}]`
	if err := os.WriteFile(path, []byte(legacy), 0o600); err != nil {
		t.Fatal(err)
	}
	reqs, warning, err := NewStateStore(path).Load()
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if len(reqs) != 1 || reqs[0].ID != "old" {
		t.Fatalf("legacy snapshot loaded %+v", reqs)
	}
	if warning == "" {
		t.Error("legacy snapshot accepted without a warning")
	}
}

// TestStateStoreV1TrailerVerifiedWithWarning pins the trailer migration
// contract: a snapshot bearing the legacy crc-only "#crc32:" trailer
// still checksum-verifies, loads with epoch 0, and is flagged through
// the warning channel so operators know the file predates replication.
func TestStateStoreV1TrailerVerifiedWithWarning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	payload := []byte(`[{"id": "v1", "spec": {"pcr": 0.1}, "priority": 1,
		"route": [{"switch": "sw0", "in": 1, "out": 0}]}]` + "\n")
	data := append([]byte{}, payload...)
	data = append(data, fmt.Sprintf("%s%08x\n", checksumPrefix, crc32.ChecksumIEEE(payload))...)
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	st, warning, err := NewStateStore(path).LoadState()
	if err != nil {
		t.Fatalf("v1-trailer snapshot rejected: %v", err)
	}
	if len(st.Connections) != 1 || st.Connections[0].ID != "v1" {
		t.Fatalf("v1-trailer snapshot loaded %+v", st.Connections)
	}
	if st.Epoch != 0 {
		t.Fatalf("v1 trailer carries no epoch, loaded epoch %d", st.Epoch)
	}
	if warning == "" {
		t.Error("v1-trailer snapshot accepted without a warning")
	}
	// The checksum still protects the payload: a flipped byte must be
	// detected, not silently loaded as epoch-0 state.
	data[2] ^= 0x01
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewStateStore(path).LoadState(); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("corrupted v1-trailer snapshot loaded: %v", err)
	}
}

// TestStateStoreTrailerCarriesEpoch pins the v2 trailer round-trip: the
// replication epoch travels in the trailer line, outside the JSON
// payload, and survives save/load without a warning.
func TestStateStoreTrailerCarriesEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	store := NewStateStore(path)
	if err := store.SaveState(PersistentState{Epoch: 7, LastSeq: 42}); err != nil {
		t.Fatal(err)
	}
	st, warning, err := store.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 7 || st.LastSeq != 42 {
		t.Fatalf("round-trip lost the watermark: epoch %d lastSeq %d", st.Epoch, st.LastSeq)
	}
	if warning != "" {
		t.Fatalf("current-format snapshot loaded with warning %q", warning)
	}
}

// TestShutdownDrainsPersistRetry starves the store so an operation's
// snapshot fails and the background retry loop starts, then shuts the
// server down: Shutdown must wait the retry loop out and write the final
// snapshot itself, so the state on disk after exit is current, not stale.
func TestShutdownDrainsPersistRetry(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "sub", "state.json")
	network, route := twoSwitchNetwork(t)
	srv := NewServer(network)
	// The parent directory does not exist, so every snapshot fails and
	// each mutation arms the background retry.
	srv.SetStateStore(NewStateStore(statePath))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "durable", Spec: traffic.CBR(0.05), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	// Make the store writable again, then shut down: the final snapshot
	// must land and no retry goroutine may linger past Shutdown.
	if err := os.MkdirAll(filepath.Dir(statePath), 0o700); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	<-done
	reqs, _, err := NewStateStore(statePath).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].ID != "durable" {
		t.Fatalf("state after drained shutdown = %+v, want the admitted connection", reqs)
	}
}

func TestRestoreReestablishesConnections(t *testing.T) {
	store := NewStateStore(filepath.Join(t.TempDir(), "state.json"))
	n1, route := twoSwitchNetwork(t)
	for i := 0; i < 3; i++ {
		r := make(core.Route, len(route))
		copy(r, route)
		for h := range r {
			r[h].In = core.PortID(i + 1)
		}
		if _, err := n1.Setup(context.Background(), core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.01),
			Priority: 1, Route: r,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Save(n1.AdmittedRequests()); err != nil {
		t.Fatal(err)
	}
	// "Restart": a fresh network restored from the store.
	n2, _ := twoSwitchNetwork(t)
	restored, failed, _, err := Restore(n2, store)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 || len(failed) != 0 {
		t.Fatalf("restored %d failed %v", restored, failed)
	}
	if got := len(n2.Connections()); got != 3 {
		t.Fatalf("restored network carries %d connections", got)
	}
	// Bounds agree with the original network.
	d1, err := n1.RouteBound(route, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := n2.RouteBound(route, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("restored bound %g != original %g", d2, d1)
	}
}

func TestRestoreReportsFailures(t *testing.T) {
	store := NewStateStore(filepath.Join(t.TempDir(), "state.json"))
	if err := store.Save([]core.ConnRequest{
		{ID: "ghost", Spec: traffic.CBR(0.1), Priority: 1,
			Route: core.Route{{Switch: "no-such-switch", In: 1, Out: 0}}},
	}); err != nil {
		t.Fatal(err)
	}
	n, _ := twoSwitchNetwork(t)
	restored, failed, _, err := Restore(n, store)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 || len(failed) != 1 || failed[0].ID != "ghost" || failed[0].Err == nil {
		t.Fatalf("restored %d failed %v", restored, failed)
	}
}

// TestServerPersistsAcrossRestart drives the full lifecycle over TCP: a
// server with a state store admits connections, is shut down, and a new
// server restores them from disk.
func TestServerPersistsAcrossRestart(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")

	boot := func() (*Server, *Client, func()) {
		network, _ := twoSwitchNetwork(t)
		store := NewStateStore(statePath)
		if _, _, _, err := Restore(network, store); err != nil {
			t.Fatal(err)
		}
		srv := NewServer(network)
		srv.SetStateStore(store)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(l)
		}()
		client, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		stop := func() {
			_ = client.Close()
			_ = srv.Close()
			<-done
		}
		return srv, client, stop
	}

	_, client, stop := boot()
	route := core.Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "persist-me", Spec: traffic.CBR(0.05), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	stop()

	_, client2, stop2 := boot()
	defer stop2()
	ids, err := client2.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "persist-me" {
		t.Fatalf("after restart List = %v", ids)
	}
	if err := client2.Teardown(context.Background(), "persist-me"); err != nil {
		t.Fatal(err)
	}
	// The teardown is persisted too.
	reqs, _, err := NewStateStore(statePath).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 0 {
		t.Fatalf("state after teardown = %+v", reqs)
	}
}
