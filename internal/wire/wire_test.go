package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// startServer runs a CAC server on a loopback listener and returns a
// connected client.
func startServer(t *testing.T, queues map[core.Priority]float64) (*Client, core.Route) {
	t.Helper()
	if queues == nil {
		queues = map[core.Priority]float64{1: 32}
	}
	network := core.NewNetwork(core.HardCDV{})
	route := make(core.Route, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("sw%d", i)
		if _, err := network.AddSwitch(core.SwitchConfig{Name: name, QueueCells: queues}); err != nil {
			t.Fatal(err)
		}
		route[i] = core.Hop{Switch: name, In: 1, Out: 0}
	}
	srv := NewServer(network)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		<-done
	})
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client, route
}

func TestSetupTeardownList(t *testing.T) {
	client, route := startServer(t, nil)
	adm, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adm.ID != "c1" || adm.EndToEndGuaranteed != 64 {
		t.Errorf("admission = %+v", adm)
	}
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "c1" {
		t.Errorf("List = %v", ids)
	}
	d, err := client.RouteBound(context.Background(), route, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 {
		t.Errorf("RouteBound = %g", d)
	}
	if err := client.Teardown(context.Background(), "c1"); err != nil {
		t.Fatal(err)
	}
	ids, err = client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("List after teardown = %v", ids)
	}
}

func TestSetupRejectionMapsToErrRejected(t *testing.T) {
	client, route := startServer(t, map[core.Priority]float64{1: 2})
	admitted := 0
	var lastErr error
	for i := 0; i < 16; i++ {
		r := make(core.Route, len(route))
		copy(r, route)
		for h := range r {
			r[h].In = core.PortID(i + 1)
		}
		_, err := client.Setup(context.Background(), core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.01),
			Priority: 1, Route: r,
		})
		if err != nil {
			lastErr = err
			break
		}
		admitted++
	}
	if lastErr == nil {
		t.Fatal("no rejection on a 2-cell queue")
	}
	if !errors.Is(lastErr, core.ErrRejected) {
		t.Fatalf("rejection error = %v, want core.ErrRejected", lastErr)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
}

func TestOperationalErrors(t *testing.T) {
	client, route := startServer(t, nil)
	if err := client.Teardown(context.Background(), "nope"); err == nil || errors.Is(err, core.ErrRejected) {
		t.Errorf("teardown of unknown conn error = %v", err)
	}
	if _, err := client.Setup(context.Background(), core.ConnRequest{ID: "x", Spec: traffic.CBR(0.1), Priority: 1,
		Route: core.Route{{Switch: "nope"}}}); err == nil {
		t.Error("setup through unknown switch succeeded")
	}
	if _, err := client.RouteBound(context.Background(), core.Route{{Switch: "nope"}}, 1); err == nil {
		t.Error("bound query for unknown switch succeeded")
	}
	_ = route
}

func TestConcurrentClients(t *testing.T) {
	client, route := startServer(t, nil)
	_ = client
	addr := clientAddr(t, client)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for k := 0; k < 4; k++ {
				id := core.ConnID(fmt.Sprintf("w%d-k%d", w, k))
				r := make(core.Route, len(route))
				copy(r, route)
				for h := range r {
					r[h].In = core.PortID(w + 1)
				}
				if _, err := c.Setup(context.Background(), core.ConnRequest{ID: id, Spec: traffic.CBR(0.001), Priority: 1, Route: r}); err != nil {
					errs <- err
					return
				}
				if err := c.Teardown(context.Background(), id); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// clientAddr extracts the server address from an established client.
func clientAddr(t *testing.T, c *Client) string {
	t.Helper()
	return c.conn.RemoteAddr().String()
}

func TestMalformedRequest(t *testing.T) {
	client, _ := startServer(t, nil)
	conn, err := net.Dial("tcp", clientAddr(t, client))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, "this is not json"); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "malformed") {
		t.Errorf("response = %q, want malformed-request error", line)
	}
	// The connection survives a malformed request.
	if _, err := fmt.Fprintln(conn, `{"op":"list"}`); err != nil {
		t.Fatal(err)
	}
	line, err = bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, `"ok":true`) {
		t.Errorf("response = %q, want ok list", line)
	}
}

func TestUnknownOp(t *testing.T) {
	client, _ := startServer(t, nil)
	resp, err := client.call(context.Background(), Request{Op: "frobnicate"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Errorf("response = %+v", resp)
	}
}

func TestSetupWithoutBody(t *testing.T) {
	client, _ := startServer(t, nil)
	resp, err := client.call(context.Background(), Request{Op: OpSetup})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == "" {
		t.Errorf("response = %+v", resp)
	}
}

func TestClientAfterServerClose(t *testing.T) {
	network := core.NewNetwork(nil)
	if _, err := network.AddSwitch(core.SwitchConfig{Name: "sw", QueueCells: map[core.Priority]float64{1: 8}}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(l)
	}()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.List(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if _, err := client.List(context.Background()); err == nil {
		t.Error("request after server close succeeded")
	}
	// Double close is a no-op.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// Serve on a closed server fails fast.
	if err := srv.Serve(l); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after Close = %v", err)
	}
}

func TestInspect(t *testing.T) {
	client, route := startServer(t, nil)
	// Empty network: no loaded queues.
	reports, err := client.Inspect(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("empty network reports %v", reports)
	}
	for i := 0; i < 3; i++ {
		r := make(core.Route, len(route))
		copy(r, route)
		for h := range r {
			r[h].In = core.PortID(i + 1)
		}
		if _, err := client.Setup(context.Background(), core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.VBR(0.3, 0.02, 4),
			Priority: 1, Route: r,
		}); err != nil {
			t.Fatal(err)
		}
	}
	reports, err = client.Inspect(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 { // one loaded port per switch
		t.Fatalf("reports = %+v, want 2", reports)
	}
	for _, r := range reports {
		if r.Unstable {
			t.Errorf("queue %s:%d reported unstable", r.Switch, r.Out)
		}
		if r.Bound <= 0 || r.Bound > r.Limit {
			t.Errorf("queue %s:%d bound %g outside (0, %g]", r.Switch, r.Out, r.Bound, r.Limit)
		}
		if r.Backlog > r.Bound+1e-9 {
			t.Errorf("queue %s:%d backlog %g above bound %g", r.Switch, r.Out, r.Backlog, r.Bound)
		}
		if len(r.Envelope) == 0 {
			t.Errorf("queue %s:%d has no envelope", r.Switch, r.Out)
		}
	}
	// Restricted to one switch.
	reports, err = client.Inspect(context.Background(), "sw1")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Switch != "sw1" {
		t.Fatalf("restricted inspect = %+v", reports)
	}
	// Unknown switch.
	if _, err := client.Inspect(context.Background(), "nope"); err == nil {
		t.Error("inspect of unknown switch succeeded")
	}
}

func TestAuditOp(t *testing.T) {
	client, route := startServer(t, nil)
	violations, err := client.Audit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("empty network audit = %v", violations)
	}
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	violations, err = client.Audit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("admitted set audit = %v", violations)
	}
}
