package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/obs"
	"atmcac/internal/traffic"
)

// syncCtl injects failures into the journal file's fsync (only the
// journal: snapshot writes pass through untouched, so recovery and
// compaction keep working while the group-commit path is under test).
type syncCtl struct {
	fail atomic.Bool
}

type ctlFS struct {
	journal.FS
	ctl *syncCtl
}

func (f *ctlFS) OpenFile(name string, flag int, perm os.FileMode) (journal.File, error) {
	inner, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if !strings.Contains(name, ".journal") {
		return inner, nil
	}
	return &ctlFile{File: inner, ctl: f.ctl}, nil
}

type ctlFile struct {
	journal.File
	ctl *syncCtl
}

func (f *ctlFile) Sync() error {
	if f.ctl.fail.Load() {
		return errors.New("injected fsync failure")
	}
	return f.File.Sync()
}

// eventCapture is a concurrency-safe obs.Tracer recording every event.
type eventCapture struct {
	mu  sync.Mutex
	evs []obs.Event
}

func (c *eventCapture) Trace(ev obs.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *eventCapture) byKind(k obs.Kind) []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []obs.Event
	for _, ev := range c.evs {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// startDurableServer runs a journal-sync server (big queues, fsync
// through ctl when non-nil) on a loopback listener and returns a
// negotiated client, the server, a 2-hop route and the event capture.
func startDurableServer(t *testing.T, ctl *syncCtl) (*Client, *Server, core.Route, *eventCapture) {
	t.Helper()
	network := core.NewNetwork(core.HardCDV{})
	route := make(core.Route, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("sw%d", i)
		if _, err := network.AddSwitch(core.SwitchConfig{
			Name: name, QueueCells: map[core.Priority]float64{1: 1 << 20},
		}); err != nil {
			t.Fatal(err)
		}
		route[i] = core.Hop{Switch: name, In: 1, Out: 0}
	}
	var fsys journal.FS = journal.OSFS{}
	if ctl != nil {
		fsys = &ctlFS{FS: journal.OSFS{}, ctl: ctl}
	}
	dur, err := OpenDurable(DurableConfig{
		StatePath: filepath.Join(t.TempDir(), "state.json"),
		Mode:      DurabilityJournalSync,
		FS:        fsys,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dur.Close() })
	if _, err := dur.Recover(network); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network)
	srv.SetDurable(dur)
	capture := &eventCapture{}
	srv.SetObservability(nil, capture)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		<-done
	})
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client, srv, route, capture
}

func batchRoute(route core.Route, port int) core.Route {
	r := append(core.Route(nil), route...)
	for h := range r {
		r[h].In = core.PortID(port)
	}
	return r
}

// TestBatchSetupTeardownEndToEnd: a batch admits its items independently
// — one bad item never fails its siblings — and batch-teardown mirrors
// that, all over the negotiated binary transport with journal-sync
// durability underneath.
func TestBatchSetupTeardownEndToEnd(t *testing.T) {
	client, _, route, capture := startDurableServer(t, nil)
	reqs := []core.ConnRequest{
		{ID: "b0", Spec: traffic.CBR(0.01), Priority: 1, Route: batchRoute(route, 1)},
		{ID: "b1", Spec: traffic.CBR(0.01), Priority: 1, Route: core.Route{{Switch: "nope", In: 1, Out: 0}}},
		{ID: "b2", Spec: traffic.VBR(0.3, 0.02, 4), Priority: 1, Route: batchRoute(route, 2)},
	}
	results, err := client.BatchSetup(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	if !results[0].OK || results[0].Admission == nil || results[0].ID != "b0" {
		t.Fatalf("item 0 = %+v", results[0])
	}
	if results[1].OK || results[1].Error == "" {
		t.Fatalf("unknown-switch item = %+v", results[1])
	}
	if !results[2].OK || results[2].Admission == nil {
		t.Fatalf("item 2 = %+v, want admitted despite failed sibling", results[2])
	}
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("List = %v, want [b0 b2]", ids)
	}

	tds, err := client.BatchTeardown(context.Background(), []core.ConnID{"b0", "ghost", "b2"})
	if err != nil {
		t.Fatal(err)
	}
	if !tds[0].OK || !tds[2].OK {
		t.Fatalf("teardown results = %+v", tds)
	}
	if tds[1].OK || tds[1].Error == "" {
		t.Fatalf("unknown-conn item = %+v", tds[1])
	}
	ids, err = client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("List after batch teardown = %v", ids)
	}
	for _, op := range []string{OpBatchSetup, OpBatchTeardown} {
		found := false
		for _, ev := range capture.byKind(obs.KindBatch) {
			if ev.Op == op {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s batch event traced", op)
		}
	}
}

// TestBatchLimits: an empty batch and one beyond MaxBatchOps are protocol
// errors carrying the stable code, with no partial execution.
func TestBatchLimits(t *testing.T) {
	client, _, route, _ := startDurableServer(t, nil)
	var re *RemoteError
	if _, err := client.BatchSetup(context.Background(), nil); !errors.As(err, &re) || re.Code != CodeProtocol {
		t.Fatalf("empty batch-setup = %v, want protocol error", err)
	}
	big := make([]core.ConnID, MaxBatchOps+1)
	for i := range big {
		big[i] = core.ConnID(fmt.Sprintf("x%d", i))
	}
	if _, err := client.BatchTeardown(context.Background(), big); !errors.As(err, &re) || re.Code != CodeProtocol {
		t.Fatalf("oversized batch-teardown = %v, want protocol error", err)
	}
	reqs := make([]core.ConnRequest, MaxBatchOps+1)
	for i := range reqs {
		reqs[i] = core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("x%d", i)), Spec: traffic.CBR(0.0001),
			Priority: 1, Route: batchRoute(route, i+1),
		}
	}
	if _, err := client.BatchSetup(context.Background(), reqs); !errors.As(err, &re) || re.Code != CodeProtocol {
		t.Fatalf("oversized batch-setup = %v, want protocol error", err)
	}
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("oversized batch partially executed: %v", ids)
	}
}

// TestBatchSetupFsyncFailureFansOut: one failed batch fsync fails EVERY
// item whose record it covered — each is rolled back and refused with
// not-durable — and a crash at that point recovers none of them.
func TestBatchSetupFsyncFailureFansOut(t *testing.T) {
	ctl := &syncCtl{}
	client, srv, route, _ := startDurableServer(t, ctl)
	// A connection admitted before the failure must survive it.
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "keep", Spec: traffic.CBR(0.01), Priority: 1, Route: batchRoute(route, 99),
	}); err != nil {
		t.Fatal(err)
	}
	ctl.fail.Store(true)
	reqs := make([]core.ConnRequest, 4)
	for i := range reqs {
		reqs[i] = core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("doomed%d", i)), Spec: traffic.CBR(0.01),
			Priority: 1, Route: batchRoute(route, i+1),
		}
	}
	results, err := client.BatchSetup(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.OK || res.Code != CodeNotDurable {
			t.Errorf("item %d = %+v, want not-durable", i, res)
		}
	}
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "keep" {
		t.Fatalf("List after failed batch = %v, want [keep]", ids)
	}
	// Crash boundary: recover the on-disk state into a fresh network —
	// only the pre-failure connection may come back.
	network2 := core.NewNetwork(core.HardCDV{})
	for i := 0; i < 2; i++ {
		if _, err := network2.AddSwitch(core.SwitchConfig{
			Name: fmt.Sprintf("sw%d", i), QueueCells: map[core.Priority]float64{1: 1 << 20},
		}); err != nil {
			t.Fatal(err)
		}
	}
	dur2, err := OpenDurable(DurableConfig{
		StatePath: srv.dur.store.Path(), JournalPath: srv.dur.journalPath,
		Mode: DurabilityJournalSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur2.Close()
	rep, err := dur2.Recover(network2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 1 || len(network2.Connections()) != 1 {
		t.Fatalf("recovery after failed batch fsync restored %d conns (%v), want only keep",
			rep.Restored, network2.Connections())
	}
}

// TestGroupCommitCoalescesConcurrentOps pins the leader-based group
// commit deterministically: the leader is parked at the post-append
// crash point while three more pipelined setups append and join its
// group, so all four records are covered by ONE fsync.
func TestGroupCommitCoalescesConcurrentOps(t *testing.T) {
	client, srv, route, capture := startDurableServer(t, nil)
	var appended atomic.Int32
	leaderGate := make(chan struct{})
	srv.SetCrashPoints(&CrashPoints{
		PostAppend: func(op string, seq uint64) {
			if appended.Add(1) == 1 {
				<-leaderGate // park the leader until the group fills
			}
		},
	})
	const members = 4
	errs := make(chan error, members)
	for i := 0; i < members; i++ {
		go func(i int) {
			_, err := client.Setup(context.Background(), core.ConnRequest{
				ID: core.ConnID(fmt.Sprintf("g%d", i)), Spec: traffic.CBR(0.01),
				Priority: 1, Route: batchRoute(route, i+1),
			})
			errs <- err
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for appended.Load() < members {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d appends joined the group", appended.Load(), members)
		}
		time.Sleep(time.Millisecond)
	}
	close(leaderGate)
	for i := 0; i < members; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	srv.SetCrashPoints(nil)
	commits := capture.byKind(obs.KindGroupCommit)
	if len(commits) != 1 {
		t.Fatalf("group commits = %d (%+v), want exactly 1 covering all %d ops",
			len(commits), commits, members)
	}
	if commits[0].Records != members || commits[0].Outcome != obs.OutcomeOK {
		t.Fatalf("group commit = %+v, want %d records ok", commits[0], members)
	}
}

// TestGroupCommitFsyncFailureFansOut is the crash-boundary pin for the
// group-commit error fan-out: when the shared fsync fails, every
// coalesced operation is rolled back and refused with not-durable, and
// recovery from the on-disk state resurrects none of them.
func TestGroupCommitFsyncFailureFansOut(t *testing.T) {
	ctl := &syncCtl{}
	client, srv, route, capture := startDurableServer(t, ctl)
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "keep", Spec: traffic.CBR(0.01), Priority: 1, Route: batchRoute(route, 99),
	}); err != nil {
		t.Fatal(err)
	}
	// Park the first (leader) op past its append so the others coalesce
	// into the same doomed group.
	var appended atomic.Int32
	leaderGate := make(chan struct{})
	srv.SetCrashPoints(&CrashPoints{
		PostAppend: func(op string, seq uint64) {
			if appended.Add(1) == 1 {
				<-leaderGate
			}
		},
	})
	ctl.fail.Store(true)
	const members = 4
	errs := make(chan error, members)
	for i := 0; i < members; i++ {
		go func(i int) {
			_, err := client.Setup(context.Background(), core.ConnRequest{
				ID: core.ConnID(fmt.Sprintf("d%d", i)), Spec: traffic.CBR(0.01),
				Priority: 1, Route: batchRoute(route, i+1),
			})
			errs <- err
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for appended.Load() < members {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d appends joined the group", appended.Load(), members)
		}
		time.Sleep(time.Millisecond)
	}
	close(leaderGate)
	for i := 0; i < members; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("a member of the failed group was acked")
		}
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != CodeNotDurable {
			t.Fatalf("member error = %v, want not-durable", err)
		}
	}
	srv.SetCrashPoints(nil)
	var failed bool
	for _, ev := range capture.byKind(obs.KindGroupCommit) {
		if ev.Outcome == obs.OutcomeError {
			failed = true
		}
	}
	if !failed {
		t.Error("no failed group-commit event traced")
	}
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "keep" {
		t.Fatalf("List after failed group = %v, want [keep]", ids)
	}
	// Crash boundary: the journal truncated the group's records, so
	// recovery sees only the pre-failure connection.
	network2 := core.NewNetwork(core.HardCDV{})
	for i := 0; i < 2; i++ {
		if _, err := network2.AddSwitch(core.SwitchConfig{
			Name: fmt.Sprintf("sw%d", i), QueueCells: map[core.Priority]float64{1: 1 << 20},
		}); err != nil {
			t.Fatal(err)
		}
	}
	dur2, err := OpenDurable(DurableConfig{
		StatePath: srv.dur.store.Path(), JournalPath: srv.dur.journalPath,
		Mode: DurabilityJournalSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur2.Close()
	rep, err := dur2.Recover(network2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 1 || len(network2.Connections()) != 1 {
		t.Fatalf("recovery after failed group fsync restored %d conns, want only keep", rep.Restored)
	}
}

// TestWithBatchCoalescesClientSide: concurrent Setup(..., WithBatch())
// calls on one client coalesce into batch-setup requests while an
// earlier flush is in flight, and each caller still gets its own
// admission (or error) back.
func TestWithBatchCoalescesClientSide(t *testing.T) {
	client, _, route, capture := startDurableServer(t, nil)
	const ops = 24
	var wg sync.WaitGroup
	errs := make(chan error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			adm, err := client.Setup(context.Background(), core.ConnRequest{
				ID: core.ConnID(fmt.Sprintf("wb%d", i)), Spec: traffic.CBR(0.001),
				Priority: 1, Route: batchRoute(route, i+1),
			}, WithBatch())
			if err != nil {
				errs <- err
				return
			}
			if adm.ID != core.ConnID(fmt.Sprintf("wb%d", i)) {
				errs <- fmt.Errorf("admission for %q answered call %d", adm.ID, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != ops {
		t.Fatalf("List = %d ids, want %d", len(ids), ops)
	}
	var batches, items int
	for _, ev := range capture.byKind(obs.KindBatch) {
		if ev.Op == OpBatchSetup {
			batches++
			items += ev.Records
		}
	}
	if items != ops {
		t.Fatalf("batch items = %d, want %d", items, ops)
	}
	if batches == 0 || batches > ops {
		t.Fatalf("batches = %d for %d ops", batches, ops)
	}
	// Teardown through the coalescer too.
	var tg sync.WaitGroup
	terrs := make(chan error, ops)
	for i := 0; i < ops; i++ {
		tg.Add(1)
		go func(i int) {
			defer tg.Done()
			terrs <- client.Teardown(context.Background(), core.ConnID(fmt.Sprintf("wb%d", i)), WithBatch())
		}(i)
	}
	tg.Wait()
	close(terrs)
	for err := range terrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	ids, err = client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("List after batched teardown = %v", ids)
	}
}

// TestWithBatchReportsItemErrors: a WithBatch setup that the CAC rejects
// surfaces the rejection to its caller alone, matching single-op error
// taxonomy (errors.Is core.ErrRejected).
func TestWithBatchReportsItemErrors(t *testing.T) {
	client, _, route, _ := startDurableServer(t, nil)
	good := make(chan error, 1)
	bad := make(chan error, 1)
	go func() {
		_, err := client.Setup(context.Background(), core.ConnRequest{
			ID: "ok", Spec: traffic.CBR(0.01), Priority: 1, Route: batchRoute(route, 1),
		}, WithBatch())
		good <- err
	}()
	go func() {
		_, err := client.Setup(context.Background(), core.ConnRequest{
			ID: "bad", Spec: traffic.CBR(0.01), Priority: 1,
			Route: core.Route{{Switch: "nope", In: 1, Out: 0}},
		}, WithBatch())
		bad <- err
	}()
	if err := <-good; err != nil {
		t.Fatalf("good item = %v", err)
	}
	if err := <-bad; err == nil {
		t.Fatal("bad item acked through the batcher")
	}
	if err := client.Teardown(context.Background(), "ghost", WithBatch()); err == nil {
		t.Fatal("batched teardown of unknown conn succeeded")
	}
}

// TestPipelinedChurnSoak is the CI soak target: sustained concurrent
// churn over one pipelined binary connection against a journal-sync
// server, mixing single ops, WithBatch ops and explicit batches. Run
// under -race it doubles as the pipelining data-race check.
func TestPipelinedChurnSoak(t *testing.T) {
	client, _, route, _ := startDurableServer(t, nil)
	const workers = 8
	iters := 20
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				id := core.ConnID(fmt.Sprintf("soak-w%d-k%d", w, k))
				r := batchRoute(route, w+1)
				var err error
				switch k % 3 {
				case 0:
					_, err = client.Setup(context.Background(), core.ConnRequest{
						ID: id, Spec: traffic.CBR(0.0001), Priority: 1, Route: r,
					})
					if err == nil {
						err = client.Teardown(context.Background(), id)
					}
				case 1:
					_, err = client.Setup(context.Background(), core.ConnRequest{
						ID: id, Spec: traffic.CBR(0.0001), Priority: 1, Route: r,
					}, WithBatch())
					if err == nil {
						err = client.Teardown(context.Background(), id, WithBatch())
					}
				default:
					ids := []core.ConnID{id + "-a", id + "-b"}
					reqs := []core.ConnRequest{
						{ID: ids[0], Spec: traffic.CBR(0.0001), Priority: 1, Route: r},
						{ID: ids[1], Spec: traffic.CBR(0.0001), Priority: 1, Route: r},
					}
					var results []BatchResult
					results, err = client.BatchSetup(context.Background(), reqs)
					if err == nil {
						for _, res := range results {
							if !res.OK {
								err = fmt.Errorf("batch item %s: %s", res.ID, res.Error)
							}
						}
					}
					if err == nil {
						_, err = client.BatchTeardown(context.Background(), ids)
					}
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("connections leaked by churn: %v", ids)
	}
}

// countingDial wraps Dial with an attempt counter for the pool tests.
func countingDial(dials *atomic.Int32) func(string) (*Client, error) {
	return func(addr string) (*Client, error) {
		dials.Add(1)
		return Dial(addr)
	}
}

// TestPoolReusesIdleConnection: Get-Put-Get reuses the parked connection
// instead of redialing, newest first.
func TestPoolReusesIdleConnection(t *testing.T) {
	client, _ := startServer(t, nil)
	var dials atomic.Int32
	p := NewPool(PoolConfig{Addr: clientAddr(t, client), Dial: countingDial(&dials)})
	defer p.Close()
	cl, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Put(cl)
	again, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again != cl {
		t.Error("idle connection not reused")
	}
	if dials.Load() != 1 {
		t.Errorf("dials = %d, want 1", dials.Load())
	}
	if _, err := again.List(context.Background()); err != nil {
		t.Fatalf("pooled connection unusable: %v", err)
	}
	p.Discard(again)
	fresh, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Put(fresh)
	if dials.Load() != 2 {
		t.Errorf("dials after discard = %d, want 2", dials.Load())
	}
}

// TestPoolHealthChecksStaleIdle: a connection that died while parked is
// detected by the checkout health ping and replaced by a fresh dial —
// the caller never sees the dead one.
func TestPoolHealthChecksStaleIdle(t *testing.T) {
	client, _ := startServer(t, nil)
	var dials atomic.Int32
	p := NewPool(PoolConfig{
		Addr: clientAddr(t, client), Dial: countingDial(&dials),
		HealthAfter: time.Nanosecond, // every reuse is "stale"
	})
	defer p.Close()
	cl, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Put(cl)
	_ = cl.Close() // the peer died while the connection sat idle
	got, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Put(got)
	if got == cl {
		t.Fatal("pool handed out the dead idle connection")
	}
	if dials.Load() != 2 {
		t.Errorf("dials = %d, want 2 (dead idle replaced)", dials.Load())
	}
	if _, err := got.List(context.Background()); err != nil {
		t.Fatalf("replacement connection unusable: %v", err)
	}
}

// TestPoolDialGateOnlyGatesFreshDials: the gate suppresses new dials (the
// coordinator's reconnect backoff) but an idle connection is handed out
// without consulting it.
func TestPoolDialGateOnlyGatesFreshDials(t *testing.T) {
	client, _ := startServer(t, nil)
	errGate := errors.New("backoff window open")
	var gated atomic.Bool
	p := NewPool(PoolConfig{
		Addr: clientAddr(t, client),
		DialGate: func() error {
			if gated.Load() {
				return errGate
			}
			return nil
		},
	})
	defer p.Close()
	cl, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Put(cl)
	gated.Store(true)
	reused, err := p.Get(context.Background())
	if err != nil {
		t.Fatalf("idle checkout consulted the dial gate: %v", err)
	}
	p.Discard(reused)
	if _, err := p.Get(context.Background()); !errors.Is(err, errGate) {
		t.Fatalf("gated fresh dial = %v, want gate error", err)
	}
}

// TestPoolClose: Get fails after Close, returned connections are closed
// rather than parked, and MaxIdle caps the idle set.
func TestPoolClose(t *testing.T) {
	client, _ := startServer(t, nil)
	var dials atomic.Int32
	p := NewPool(PoolConfig{Addr: clientAddr(t, client), Dial: countingDial(&dials), MaxIdle: 1})
	a, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Put(a)
	p.Put(b) // over MaxIdle: closed, not parked
	if _, err := b.List(context.Background()); err == nil {
		t.Error("connection over MaxIdle was not closed")
	}
	p.Close()
	if _, err := p.Get(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Get after Close = %v, want ErrPoolClosed", err)
	}
	if _, err := a.List(context.Background()); err == nil {
		t.Error("idle connection not closed by Close")
	}
}

// benchDurableServer is startDurableServer without the testing.T-only
// plumbing, for benchmarks.
func benchDurableServer(b *testing.B) (*Client, *Server, core.Route) {
	b.Helper()
	network := core.NewNetwork(core.HardCDV{})
	route := make(core.Route, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("sw%d", i)
		if _, err := network.AddSwitch(core.SwitchConfig{
			Name: name, QueueCells: map[core.Priority]float64{1: 1 << 20},
		}); err != nil {
			b.Fatal(err)
		}
		route[i] = core.Hop{Switch: name, In: 1, Out: 0}
	}
	dur, err := OpenDurable(DurableConfig{
		StatePath: filepath.Join(b.TempDir(), "state.json"),
		Mode:      DurabilityJournalSync,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = dur.Close() })
	if _, err := dur.Recover(network); err != nil {
		b.Fatal(err)
	}
	srv := NewServer(network)
	srv.SetDurable(dur)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	b.Cleanup(func() { _ = srv.Close() })
	client, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })
	return client, srv, route
}

// BenchmarkBatchedSetup measures per-connection admission latency at the
// server dispatch level (the layer BENCH_5's BenchmarkPersistSetup
// established at ~229µs/op with one fsync per op) as the batch size
// grows: a batch admits every item and pays ONE journal fsync, so
// per-item cost should fall toward the fsync-free floor. Each item gets
// a disjoint single-hop route — the paper's admission test is per-hop
// arithmetic that scales with hops and with the connections sharing a
// switch, so disjoint minimal routes keep the figure a wire/durability
// measurement rather than a CAC-scan one. Teardown resets state between
// iterations off the clock. Reported ns/item is the per-connection
// figure.
func BenchmarkBatchedSetup(b *testing.B) {
	const fabric = 32
	for _, size := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("%d", size), func(b *testing.B) {
			network := core.NewNetwork(core.HardCDV{})
			routes := make([]core.Route, fabric)
			for i := 0; i < fabric; i++ {
				name := fmt.Sprintf("fsw%d", i)
				if _, err := network.AddSwitch(core.SwitchConfig{
					Name: name, QueueCells: map[core.Priority]float64{1: 1 << 20},
				}); err != nil {
					b.Fatal(err)
				}
				routes[i] = core.Route{{Switch: name, In: 1, Out: 0}}
			}
			dur, err := OpenDurable(DurableConfig{
				StatePath: filepath.Join(b.TempDir(), "state.json"),
				Mode:      DurabilityJournalSync,
				// Compaction is orthogonal tuning; keep its cost out of
				// the per-op figure for every batch size alike.
				CompactRecords: 1 << 30, CompactBytes: 1 << 40,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer dur.Close()
			if _, err := dur.Recover(network); err != nil {
				b.Fatal(err)
			}
			srv := NewServer(network)
			srv.SetDurable(dur)
			reqs := make([]core.ConnRequest, size)
			ids := make([]core.ConnID, size)
			for i := range reqs {
				ids[i] = core.ConnID(fmt.Sprintf("bench%d", i))
				reqs[i] = core.ConnRequest{
					ID: ids[i], Spec: traffic.CBR(0.0001),
					Priority: 1, Route: routes[i],
				}
			}
			setup := Request{Op: OpBatchSetup, Requests: reqs}
			reset := Request{Op: OpBatchTeardown, IDs: ids}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp := srv.dispatch(setup)
				if resp.Error != "" {
					b.Fatal(resp.Error)
				}
				for _, res := range resp.Results {
					if !res.OK {
						b.Fatalf("item %s: %s", res.ID, res.Error)
					}
				}
				b.StopTimer()
				if resp := srv.dispatch(reset); resp.Error != "" {
					b.Fatal(resp.Error)
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/item")
		})
	}
}

// BenchmarkPipelinedClient measures setup+teardown round-trip throughput
// with many requests in flight on ONE binary connection: pipelining lets
// independent journal-sync ops share group-commit fsyncs.
func BenchmarkPipelinedClient(b *testing.B) {
	client, _, route := benchDurableServer(b)
	var seq atomic.Uint64
	ctx := context.Background()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			id := core.ConnID(fmt.Sprintf("p%d", n))
			r := batchRoute(route, int(n%1024)+1)
			if _, err := client.Setup(ctx, core.ConnRequest{
				ID: id, Spec: traffic.CBR(0.0001), Priority: 1, Route: r,
			}); err != nil {
				b.Fatal(err)
			}
			if err := client.Teardown(ctx, id); err != nil {
				b.Fatal(err)
			}
		}
	})
}
