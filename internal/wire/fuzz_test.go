package wire

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// fuzzNetwork builds a small two-switch line the decoded requests are
// executed against, so the fuzzer exercises the full server handling path
// (decode -> validate -> admit/query -> encode), not just json.Unmarshal.
func fuzzNetwork(tb testing.TB) *core.Network {
	tb.Helper()
	n := core.NewNetwork(core.HardCDV{})
	for _, name := range []string{"ring00", "ring01"} {
		if _, err := n.AddSwitch(core.SwitchConfig{
			Name:       name,
			QueueCells: map[core.Priority]float64{1: 32, 2: 128},
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return n
}

// FuzzDecodeRequest fuzzes one protocol line end to end, mirroring the
// bitstream fuzzers: any byte sequence must either fail to decode cleanly
// or decode, execute, and produce a response that re-encodes to valid JSON
// (the invariant serveConn relies on — an unencodable response silently
// kills the client's connection). It must never panic.
func FuzzDecodeRequest(f *testing.F) {
	// Seed corpus: the request examples of docs/PROTOCOL.md.
	f.Add([]byte(`{"op": "setup", "request": {"id": "press-42", "spec": {"pcr": 0.5, "scr": 0.05, "mbs": 8, "cdvt": 12}, "priority": 1, "route": [{"switch": "ring00", "in": 1, "out": 0}, {"switch": "ring01", "in": 0, "out": 0}], "delayBound": 64, "sourceCDV": 0}}`))
	f.Add([]byte(`{"op": "teardown", "id": "conn-id"}`))
	f.Add([]byte(`{"op": "list"}`))
	f.Add([]byte(`{"op": "bound", "route": [{"switch": "ring00", "in": 1, "out": 0}], "priority": 1}`))
	f.Add([]byte(`{"op": "inspect", "switch": "ring03"}`))
	f.Add([]byte(`{"op": "inspect"}`))
	f.Add([]byte(`{"op": "audit"}`))
	// Malformed and adversarial shapes.
	f.Add([]byte(`{"op": "setup"}`))
	f.Add([]byte(`{"op": "setup", "request": {"id": "", "spec": {"pcr": -1}}}`))
	f.Add([]byte(`{"op": "setup", "request": {"id": "x", "spec": {"pcr": 1e308, "scr": 1e-308, "mbs": 1e17}, "priority": -9, "route": [{"switch": "ring00"}]}}`))
	f.Add([]byte(`{"op": "bound", "route": [], "priority": 99}`))
	f.Add([]byte(`{"op": ""}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"op": "setup", "request": {"id": "y", "spec": {"pcr": 0.2, "scr": 0.2, "mbs": 1}, "priority": 1, "route": [{"switch": "ring00", "in": 0, "out": 0}], "sourceCDV": 1e300}}`))
	f.Add([]byte("\x00\xff{"))

	f.Fuzz(func(t *testing.T, line []byte) {
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			// serveConn answers malformed lines with an error response and
			// keeps the connection; nothing further to execute.
			return
		}
		srv := NewServer(fuzzNetwork(t))
		resp := srv.dispatch(req)

		// The response must survive the wire: encode, then decode again.
		data, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("response for %q does not marshal: %v\nresponse: %+v", line, err, resp)
		}
		var back Response
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("encoded response does not round-trip: %v\n%s", err, data)
		}
		if back.OK != resp.OK || back.Error != resp.Error || back.Rejected != resp.Rejected {
			t.Fatalf("response round-trip drifted: sent %+v, got %+v", resp, back)
		}
		// Numeric payloads must be JSON-representable (no NaN/Inf leaks).
		if math.IsNaN(back.Bound) || math.IsInf(back.Bound, 0) {
			t.Fatalf("non-finite bound %g leaked into the protocol", back.Bound)
		}
		if resp.Admission != nil {
			for _, d := range append(append([]float64(nil),
				resp.Admission.PerHopGuaranteed...), resp.Admission.PerHopComputed...) {
				if math.IsNaN(d) || math.IsInf(d, 0) {
					t.Fatalf("non-finite per-hop bound %g in admission", d)
				}
			}
		}
	})
}

// FuzzStateRoundTrip fuzzes the persistence layer: arbitrary bytes as a
// state file must either fail to load cleanly or load into requests that
// survive a Save/Load round trip and a Restore onto a fresh network without
// a panic — the invariant cacd relies on when restarting from a snapshot it
// did not necessarily write itself.
func FuzzStateRoundTrip(f *testing.F) {
	// Seed corpus: a genuine snapshot plus degenerate and hostile shapes.
	seed := []core.ConnRequest{
		{ID: "a", Spec: traffic.CBR(0.1), Priority: 1,
			Route: core.Route{{Switch: "ring00", In: 1, Out: 0}}, DelayBound: 64},
		{ID: "b", Spec: traffic.VBR(0.5, 0.05, 8), Priority: 2,
			Route: core.Route{{Switch: "ring01", In: 2, Out: 3}}, SourceCDV: 16},
	}
	if data, err := json.Marshal(seed); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[{"id": "", "spec": {"pcr": -1}}]`))
	f.Add([]byte(`[{"id": "x", "spec": {"pcr": 1e308, "scr": 1e-308, "mbs": 1e17}, "priority": -9, "route": [{"switch": "ring00"}]}]`))
	f.Add([]byte(`[{"id": "dup"}, {"id": "dup"}]`))
	f.Add([]byte("\x00\xff["))
	// Generated-topology snapshots: admitted fleets routed across a campus
	// hierarchy, with multi-hop routes and mixed CBR/VBR descriptors the
	// hand-written seeds above do not cover.
	f.Add(generatedCorpusSeed(f, 42))
	f.Add(generatedCorpusSeed(f, 123))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "state.json")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		store := NewStateStore(path)
		reqs, _, err := store.Load()
		if err != nil {
			// Rejected cleanly; nothing to round-trip.
			return
		}
		second := NewStateStore(filepath.Join(dir, "copy.json"))
		if err := second.Save(reqs); err != nil {
			t.Fatalf("loaded state does not re-save: %v", err)
		}
		back, _, err := second.Load()
		if err != nil {
			t.Fatalf("saved state does not re-load: %v", err)
		}
		if len(back) != len(reqs) {
			t.Fatalf("round trip changed length: %d -> %d", len(reqs), len(back))
		}
		for i := range reqs {
			if back[i].ID != reqs[i].ID || len(back[i].Route) != len(reqs[i].Route) {
				t.Fatalf("round trip drifted at %d: %+v -> %+v", i, reqs[i], back[i])
			}
		}
		// Restore runs every surviving request through the full CAC check;
		// it must report failures, never panic, whatever the shapes are.
		if _, _, _, err := Restore(fuzzNetwork(t), store); err != nil {
			t.Fatalf("Restore errored on loadable state: %v", err)
		}
	})
}
