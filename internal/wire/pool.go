// Pool is a small health-checked client connection pool for one
// address. Checkout prefers the most recently used idle connection —
// the one most likely still warm — and pings a connection that sat
// idle long enough to be suspect before handing it out, so a silently
// dead peer costs a health round trip instead of a failed operation.
package wire

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = errors.New("wire: pool closed")

// PoolConfig configures a Pool. Addr is required.
type PoolConfig struct {
	Addr string
	// Dial opens a client; nil means Dial (binary negotiation with JSON
	// fallback).
	Dial func(addr string) (*Client, error)
	// DialGate, when set, runs before every fresh dial; an error aborts
	// the dial. Reusing an idle connection never consults it — the gate
	// exists so a caller can suppress dial storms at a dead peer (the
	// coordinator's reconnect backoff window) without giving up
	// connections it already holds.
	DialGate func() error
	// MaxIdle bounds the parked idle connections; surplus returns are
	// closed. Defaults to 2.
	MaxIdle int
	// HealthAfter is the idle age beyond which checkout health-checks a
	// parked connection before reuse. Zero defaults to 30s; negative
	// disables the check.
	HealthAfter time.Duration
	// HealthTimeout bounds the health ping. Defaults to 1s.
	HealthTimeout time.Duration
}

// Pool pools client connections to one address. All methods are safe
// for concurrent use; a checked-out client must come back through
// exactly one of Put (healthy) or Discard (broken).
type Pool struct {
	cfg    PoolConfig
	mu     sync.Mutex
	idle   []pooledClient
	closed bool
}

type pooledClient struct {
	cl   *Client
	last time.Time
}

// NewPool returns a pool over cfg; no connection is dialed until the
// first Get.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Dial == nil {
		cfg.Dial = Dial
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = 2
	}
	if cfg.HealthAfter == 0 {
		cfg.HealthAfter = 30 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	return &Pool{cfg: cfg}
}

// Addr returns the address the pool is pinned to.
func (p *Pool) Addr() string { return p.cfg.Addr }

// Get checks out a connection: the most recently parked idle one
// (health-checked when stale), else a fresh dial. ctx bounds only the
// health ping; the dial uses the Dial function's own behavior.
func (p *Pool) Get(ctx context.Context) (*Client, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		n := len(p.idle)
		if n == 0 {
			p.mu.Unlock()
			break
		}
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		if p.cfg.HealthAfter >= 0 && time.Since(pc.last) > p.cfg.HealthAfter {
			hctx, cancel := context.WithTimeout(ctx, p.cfg.HealthTimeout)
			_, err := pc.cl.Health(hctx)
			cancel()
			if err != nil {
				_ = pc.cl.Close()
				continue // a stale dead entry; try the next one
			}
		}
		return pc.cl, nil
	}
	if p.cfg.DialGate != nil {
		if err := p.cfg.DialGate(); err != nil {
			return nil, err
		}
	}
	return p.cfg.Dial(p.cfg.Addr)
}

// Put returns a healthy connection to the idle set (closing it when the
// set is full or the pool closed).
func (p *Pool) Put(cl *Client) {
	if cl == nil {
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.cfg.MaxIdle {
		p.idle = append(p.idle, pooledClient{cl: cl, last: time.Now()})
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	_ = cl.Close()
}

// Discard closes a checked-out connection after a transport error.
func (p *Pool) Discard(cl *Client) {
	if cl != nil {
		_ = cl.Close()
	}
}

// Close closes every idle connection and makes future Gets fail;
// checked-out connections close when they come back.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, pc := range idle {
		_ = pc.cl.Close()
	}
}
