package experiments

import (
	"fmt"

	"atmcac/internal/rtnet"
	"atmcac/internal/sim"
)

// ValidationConfig parameterizes an RTnet CAC-versus-simulation run: the
// symmetric cyclic workload is admitted analytically, then the same
// connection set is driven through the cell-level simulator with conforming
// sources and the measured delays and occupancies are compared against the
// computed bounds.
type ValidationConfig struct {
	// RingNodes defaults to 8 and Terminals to 2 (a laptop-scale ring).
	RingNodes int
	Terminals int
	// Load is the total normalized cyclic load; default 0.4.
	Load float64
	// Slots is the simulation horizon; default 50000.
	Slots uint64
	// Mode selects greedy (worst-case) or randomized conforming sources.
	Mode sim.SourceMode
	// Seed drives randomized sources.
	Seed int64
	// Tracer, when set, receives every cell lifecycle event.
	Tracer sim.Tracer
	// Histograms enables per-VC delay distributions (reported through the
	// percentile fields of ValidationResult).
	Histograms bool
}

func (c ValidationConfig) withDefaults() ValidationConfig {
	if c.RingNodes == 0 {
		c.RingNodes = 8
	}
	if c.Terminals == 0 {
		c.Terminals = 2
	}
	if c.Load == 0 {
		c.Load = 0.4
	}
	if c.Slots == 0 {
		c.Slots = 50000
	}
	if c.Mode == 0 {
		c.Mode = sim.Greedy
	}
	return c
}

// ValidationResult reports a CAC-versus-simulation comparison.
type ValidationResult struct {
	// Feasible reports whether the CAC admitted the workload.
	Feasible bool
	// AnalyticBound is the worst end-to-end computed delay bound (cell
	// times) over all broadcast connections.
	AnalyticBound float64
	// MeasuredMaxDelay is the worst end-to-end queueing delay (slots)
	// observed at any sink.
	MeasuredMaxDelay uint64
	// QueueBudget is the per-hop FIFO size (cells).
	QueueBudget float64
	// MeasuredMaxOccupancy is the worst per-queue occupancy observed.
	MeasuredMaxOccupancy int
	// Drops counts cells lost to full queues (zero when the CAC is sound).
	Drops int
	// CellsDelivered counts cells that reached their sink.
	CellsDelivered int
	// DelayP50 and DelayP99 are the median and 99th-percentile measured
	// end-to-end delays across all cells (slots); populated only when
	// ValidationConfig.Histograms is set. Typical delays sit far below the
	// worst-case bound, which is the point of a worst case.
	DelayP50 uint64
	DelayP99 uint64
}

// Holds reports whether the simulation stayed within the analytic
// guarantees: no drops, measured delay within the end-to-end bound, and
// occupancy within the FIFO budget.
func (r ValidationResult) Holds() bool {
	return r.Feasible &&
		float64(r.MeasuredMaxDelay) <= r.AnalyticBound+1e-9 &&
		float64(r.MeasuredMaxOccupancy) <= r.QueueBudget+1e-9 &&
		r.Drops == 0
}

// ValidateRTnet admits a symmetric cyclic workload with the CAC and then
// simulates the identical connection set cell by cell, returning both the
// analytic and the measured worst cases.
//
// Cells are delivered to per-connection sink ports at the final ring node,
// so delivery-port contention (outside the analytic route, which covers the
// RingNodes-1 ring hops) is excluded consistently on both sides.
func ValidateRTnet(cfg ValidationConfig) (ValidationResult, error) {
	cfg = cfg.withDefaults()

	// Analytic side.
	rt, err := rtnet.New(rtnet.Config{
		RingNodes:        cfg.RingNodes,
		TerminalsPerNode: cfg.Terminals,
	})
	if err != nil {
		return ValidationResult{}, err
	}
	workload, err := rt.SymmetricWorkload(cfg.Load, 1)
	if err != nil {
		return ValidationResult{}, err
	}
	if err := rt.InstallAll(workload); err != nil {
		return ValidationResult{}, err
	}
	violations, err := rt.Audit()
	if err != nil {
		return ValidationResult{}, err
	}
	result := ValidationResult{
		Feasible:    len(violations) == 0,
		QueueBudget: rt.Config().QueueCells[1],
	}
	if !result.Feasible {
		return result, nil
	}
	bound, err := rt.MaxBroadcastBound(1)
	if err != nil {
		return ValidationResult{}, err
	}
	result.AnalyticBound = bound

	// Simulation side: the same ring, the same connection set.
	simNet := sim.New()
	queueCap := map[sim.Priority]int{1: int(result.QueueBudget)}
	switches := make([]*sim.Switch, cfg.RingNodes)
	for i := range switches {
		sw, err := simNet.AddSwitch(rtnet.SwitchName(i), queueCap)
		if err != nil {
			return ValidationResult{}, err
		}
		switches[i] = sw
	}
	for i := range switches {
		next := (i + 1) % cfg.RingNodes
		if err := simNet.Link(switches[i], 0, switches[next], 0); err != nil {
			return ValidationResult{}, err
		}
	}
	r := cfg.RingNodes
	for o := 0; o < r; o++ {
		for t := 0; t < cfg.Terminals; t++ {
			vc := o*cfg.Terminals + t
			// Transit hops: ring output port 0 at nodes o..o+r-2.
			for h := 0; h < r-1; h++ {
				if err := switches[(o+h)%r].SetRoute(vc, 0, 1); err != nil {
					return ValidationResult{}, err
				}
			}
			// Final receiver: a dedicated, uncontended sink port.
			if err := switches[(o+r-1)%r].SetRoute(vc, 100+vc, 1); err != nil {
				return ValidationResult{}, err
			}
			spec := workload[0].Spec // symmetric: all terminals share the spec
			err := simNet.AddSource(sim.SourceConfig{
				VC:     vc,
				Spec:   spec,
				Dest:   switches[o],
				InPort: t + 1,
				Mode:   cfg.Mode,
				Seed:   cfg.Seed + int64(vc)*7919,
			})
			if err != nil {
				return ValidationResult{}, err
			}
		}
	}
	if cfg.Tracer != nil {
		simNet.SetTracer(cfg.Tracer)
	}
	if cfg.Histograms {
		simNet.EnableHistograms()
	}
	stats, err := simNet.Run(cfg.Slots)
	if err != nil {
		return ValidationResult{}, err
	}
	if cfg.Histograms {
		// Pool every VC's distribution for the summary percentiles.
		pooled := sim.NewHistogram()
		for _, h := range stats.Histograms {
			pooled.Merge(h)
		}
		result.DelayP50 = pooled.Quantile(0.5)
		result.DelayP99 = pooled.Quantile(0.99)
	}
	for _, vs := range stats.PerVC {
		result.CellsDelivered += vs.Cells
		if vs.MaxDelay > result.MeasuredMaxDelay {
			result.MeasuredMaxDelay = vs.MaxDelay
		}
	}
	for key, qs := range stats.Queues {
		result.Drops += qs.Drops
		// Only ring ports are budgeted; sink ports are uncontended by
		// construction but are included anyway (their occupancy is 1).
		if qs.MaxOccupancy > result.MeasuredMaxOccupancy {
			result.MeasuredMaxOccupancy = qs.MaxOccupancy
		}
		_ = key
	}
	return result, nil
}

// String renders the comparison for reports.
func (r ValidationResult) String() string {
	if !r.Feasible {
		return "validation: workload rejected by CAC (nothing to validate)"
	}
	return fmt.Sprintf("validation: analytic bound %.1f cell times, measured max %d; budget %.0f cells, max occupancy %d; %d cells delivered, %d drops",
		r.AnalyticBound, r.MeasuredMaxDelay, r.QueueBudget, r.MeasuredMaxOccupancy, r.CellsDelivered, r.Drops)
}
