package experiments

import (
	"strings"
	"testing"
)

func TestFailoverReport(t *testing.T) {
	report, err := Failover(FailoverConfig{RingNodes: 8, Terminals: 2, Tolerance: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxLoadHealthy <= 0 || report.MaxLoadWrapped <= 0 {
		t.Fatalf("degenerate max loads: %+v", report)
	}
	// The wrapped ring keeps a usable fraction of the healthy capacity
	// (the secondary ring absorbs the load).
	if report.MaxLoadWrapped < report.MaxLoadHealthy/2 {
		t.Errorf("wrapped capacity %.3f below half of healthy %.3f",
			report.MaxLoadWrapped, report.MaxLoadHealthy)
	}
	// Routes lengthen: min stays >= healthy, max approaches 2(R-1)-1.
	if report.RouteHopsWrappedMin < report.RouteHopsHealthy {
		t.Errorf("wrapped min hops %d below healthy %d",
			report.RouteHopsWrappedMin, report.RouteHopsHealthy)
	}
	if report.RouteHopsWrappedMax <= report.RouteHopsHealthy {
		t.Errorf("wrapped max hops %d not above healthy %d",
			report.RouteHopsWrappedMax, report.RouteHopsHealthy)
	}
	if report.GuaranteeWrappedWorst <= report.GuaranteeHealthy {
		t.Errorf("wrapped guarantee %.0f not above healthy %.0f",
			report.GuaranteeWrappedWorst, report.GuaranteeHealthy)
	}
	// For an 8-node ring the worst wrapped guarantee (13*32=416) breaks
	// the 1 ms budget (367) that the healthy ring (224) met.
	if report.HighSpeedSurvives {
		t.Error("high-speed budget reported as surviving on an 8-node wrap")
	}
	out := report.String()
	for _, want := range []string{"max symmetric load", "BREAKS", "hops"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
