// Package experiments regenerates the evaluation artifacts of the paper's
// Section 5: Table 1 (cyclic transmission classes) and Figures 10-13
// (symmetric delay bounds, asymmetric capacity, multi-priority gains, and
// soft-vs-hard CAC). Each generator returns plottable series; the cmd tool
// and the benchmark harness render them as TSV.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
)

// ErrConfig reports invalid experiment parameters.
var ErrConfig = errors.New("experiments: invalid configuration")

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// WriteTSV renders series in a gnuplot-friendly tab-separated layout:
// blocks of "x<TAB>y" lines separated by blank lines, each preceded by a
// "# label" comment.
func WriteTSV(w io.Writer, series []Series) error {
	for i, s := range series {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s\n", s.Label); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%.6g\t%.6g\n", p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table1Row is one cyclic transmission class with both the paper's reported
// bandwidth and the wire-level (cell overhead included) bandwidth.
type Table1Row struct {
	Name           string
	PeriodMillis   float64
	DelayMillis    float64
	MemoryKB       float64
	PayloadMbps    float64 // the paper's Table 1 "bandwidth" column
	WireMbps       float64 // including 53/48 cell overhead
	NormalizedRate float64 // wire bandwidth on OC-3
	DelayCellTimes float64 // delay budget in OC-3 cell times
}

// Table1 computes the paper's Table 1 from first principles.
func Table1() ([]Table1Row, error) {
	classes := rtnet.Classes()
	rows := make([]Table1Row, 0, len(classes))
	for _, c := range classes {
		payload, err := c.Bandwidth()
		if err != nil {
			return nil, err
		}
		rate, err := c.NormalizedRate()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name:           c.Name,
			PeriodMillis:   float64(c.Period.Microseconds()) / 1000,
			DelayMillis:    float64(c.Delay.Microseconds()) / 1000,
			MemoryKB:       float64(c.MemoryBytes) / 1024,
			PayloadMbps:    payload / 1e6,
			WireMbps:       rate * 155.52,
			NormalizedRate: rate,
			DelayCellTimes: c.DelayCellTimes(),
		})
	}
	return rows, nil
}

// SymmetricConfig parameterizes Figure 10.
type SymmetricConfig struct {
	// RingNodes defaults to 16.
	RingNodes int
	// Terminals are the N values to sweep; default {1, 4, 8, 16}.
	Terminals []int
	// Loads are the total normalized loads B to sweep; default
	// 0.025..1.0 in steps of 0.025.
	Loads []float64
	// Priority of the cyclic traffic; default 1.
	Priority core.Priority
}

func (c SymmetricConfig) withDefaults() SymmetricConfig {
	if c.RingNodes == 0 {
		c.RingNodes = rtnet.DefaultRingNodes
	}
	if len(c.Terminals) == 0 {
		c.Terminals = []int{1, 4, 8, 16}
	}
	if len(c.Loads) == 0 {
		for b := 0.025; b <= 1.0+1e-9; b += 0.025 {
			c.Loads = append(c.Loads, b)
		}
	}
	if c.Priority == 0 {
		c.Priority = 1
	}
	return c
}

// Figure10 reproduces the paper's Figure 10: the worst-case end-to-end
// queueing delay bound of symmetric cyclic traffic as a function of the
// total load B, one series per terminals-per-node value N. A series stops
// at the largest admissible load (the CAC rejects beyond it).
func Figure10(cfg SymmetricConfig) ([]Series, error) {
	cfg = cfg.withDefaults()
	series := make([]Series, 0, len(cfg.Terminals))
	for _, nTerm := range cfg.Terminals {
		s := Series{Label: fmt.Sprintf("N=%d", nTerm)}
		for _, load := range cfg.Loads {
			bound, feasible, err := symmetricBound(cfg, nTerm, load)
			if err != nil {
				return nil, err
			}
			if !feasible {
				break // higher loads only get worse
			}
			s.Points = append(s.Points, Point{X: load, Y: bound})
		}
		series = append(series, s)
	}
	return series, nil
}

// symmetricBound evaluates one (N, B) cell of Figure 10: feasibility and
// the worst end-to-end bound.
func symmetricBound(cfg SymmetricConfig, nTerm int, load float64) (bound float64, feasible bool, err error) {
	n, err := rtnet.New(rtnet.Config{
		RingNodes:        cfg.RingNodes,
		TerminalsPerNode: nTerm,
	})
	if err != nil {
		return 0, false, err
	}
	w, err := n.SymmetricWorkload(load, cfg.Priority)
	if err != nil {
		return 0, false, err
	}
	if err := n.InstallAll(w); err != nil {
		return 0, false, err
	}
	violations, err := n.Audit()
	if err != nil {
		return 0, false, err
	}
	if len(violations) > 0 {
		return 0, false, nil
	}
	bound, err = n.MaxBroadcastBound(cfg.Priority)
	if err != nil {
		return 0, false, err
	}
	return bound, true, nil
}

// AsymmetricConfig parameterizes Figures 11-13.
type AsymmetricConfig struct {
	// RingNodes defaults to 16.
	RingNodes int
	// Terminals are the N values to sweep (Figure 11 uses {1, 8, 16};
	// Figures 12 and 13 use {16}).
	Terminals []int
	// Shares are the hot-terminal shares p to sweep; default 0.05..1.0 in
	// steps of 0.05.
	Shares []float64
	// Tolerance is the binary-search resolution on the supported load;
	// default 1/128.
	Tolerance float64
	// QueueCells configures the ring-node queues; default {1: 32}.
	QueueCells map[core.Priority]float64
	// HotPriority and OtherPriority assign priorities; default both 1.
	HotPriority   core.Priority
	OtherPriority core.Priority
	// Policy is the CDV accumulation policy; default hard.
	Policy core.CDVPolicy
}

func (c AsymmetricConfig) withDefaults() AsymmetricConfig {
	if c.RingNodes == 0 {
		c.RingNodes = rtnet.DefaultRingNodes
	}
	if len(c.Terminals) == 0 {
		c.Terminals = []int{1, 8, 16}
	}
	if len(c.Shares) == 0 {
		// p = 1.0 is excluded: with every other terminal silent the single
		// remaining connection is smooth and the supported load jumps to 1,
		// a degenerate point outside the paper's regime of interest.
		for p := 0.05; p <= 0.95+1e-9; p += 0.05 {
			c.Shares = append(c.Shares, p)
		}
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1.0 / 128
	}
	if c.QueueCells == nil {
		c.QueueCells = map[core.Priority]float64{1: rtnet.DefaultQueueCells}
	}
	if c.HotPriority == 0 {
		c.HotPriority = 1
	}
	if c.OtherPriority == 0 {
		c.OtherPriority = 1
	}
	if c.Policy == nil {
		c.Policy = core.HardCDV{}
	}
	return c
}

// maxAsymmetricLoad binary-searches the largest total load B whose
// asymmetric workload passes the audit. Admissibility is monotone in B
// (scaling every envelope up can only increase every bound).
func maxAsymmetricLoad(cfg AsymmetricConfig, nTerm int, share float64) (float64, error) {
	feasible := func(load float64) (bool, error) {
		n, err := rtnet.New(rtnet.Config{
			RingNodes:        cfg.RingNodes,
			TerminalsPerNode: nTerm,
			QueueCells:       cfg.QueueCells,
			Policy:           cfg.Policy,
		})
		if err != nil {
			return false, err
		}
		w, err := n.AsymmetricWorkload(load, share, cfg.HotPriority, cfg.OtherPriority)
		if err != nil {
			return false, err
		}
		if err := n.InstallAll(w); err != nil {
			return false, err
		}
		violations, err := n.Audit()
		if err != nil {
			return false, err
		}
		return len(violations) == 0, nil
	}
	lo, hi := 0.0, 1.0
	// Establish whether full load is feasible to skip the search.
	if ok, err := feasible(1.0); err != nil {
		return 0, err
	} else if ok {
		return 1.0, nil
	}
	for hi-lo > cfg.Tolerance {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Figure11 reproduces the paper's Figure 11: the total cyclic load the
// network can support as a function of the hot terminal's share p, one
// series per N.
func Figure11(cfg AsymmetricConfig) ([]Series, error) {
	cfg = cfg.withDefaults()
	series := make([]Series, 0, len(cfg.Terminals))
	for _, nTerm := range cfg.Terminals {
		s := Series{Label: fmt.Sprintf("N=%d", nTerm)}
		for _, p := range cfg.Shares {
			b, err := maxAsymmetricLoad(cfg, nTerm, p)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: p, Y: b})
		}
		series = append(series, s)
	}
	return series, nil
}

// Figure12Config parameterizes Figure 12.
type Figure12Config struct {
	// RingNodes defaults to 16, Terminals to 16.
	RingNodes int
	Terminals int
	// Shares as in AsymmetricConfig.
	Shares    []float64
	Tolerance float64
	// LowPriorityQueueCells is the FIFO size of the second (lower)
	// priority queue that carries the delay-tolerant connections;
	// default 256.
	LowPriorityQueueCells float64
}

// Figure12 reproduces the paper's Figure 12: supported asymmetric load with
// one priority level versus two. With two levels, connections that tolerate
// a larger delay bound — here the numerous cold cyclic connections, whose
// per-hop budget grows to the larger low-priority FIFO — are assigned the
// lower priority, exactly as the paper suggests ("connections requesting
// large delay bounds can be assigned low priority levels"). The hot
// terminal's connection keeps the tight priority-1 budget (alone at its
// priority it is smooth, so it easily meets it).
func Figure12(cfg Figure12Config) ([]Series, error) {
	if cfg.RingNodes == 0 {
		cfg.RingNodes = rtnet.DefaultRingNodes
	}
	if cfg.Terminals == 0 {
		cfg.Terminals = 16
	}
	if cfg.LowPriorityQueueCells == 0 {
		cfg.LowPriorityQueueCells = 256
	}
	one := AsymmetricConfig{
		RingNodes: cfg.RingNodes,
		Terminals: []int{cfg.Terminals},
		Shares:    cfg.Shares,
		Tolerance: cfg.Tolerance,
	}.withDefaults()
	two := one
	two.QueueCells = map[core.Priority]float64{
		1: rtnet.DefaultQueueCells,
		2: cfg.LowPriorityQueueCells,
	}
	two.HotPriority = 1
	two.OtherPriority = 2

	s1, err := Figure11(one)
	if err != nil {
		return nil, err
	}
	s2, err := Figure11(two)
	if err != nil {
		return nil, err
	}
	s1[0].Label = "1 priority"
	s2[0].Label = "2 priorities"
	return []Series{s1[0], s2[0]}, nil
}

// Figure13Config parameterizes Figure 13.
type Figure13Config struct {
	RingNodes int
	Terminals int
	Shares    []float64
	Tolerance float64
}

// Figure13 reproduces the paper's Figure 13: supported asymmetric load
// under the hard CAC (worst-case CDV summation) versus the soft CAC
// (square-root summation of upstream bounds).
func Figure13(cfg Figure13Config) ([]Series, error) {
	if cfg.RingNodes == 0 {
		cfg.RingNodes = rtnet.DefaultRingNodes
	}
	if cfg.Terminals == 0 {
		cfg.Terminals = 16
	}
	base := AsymmetricConfig{
		RingNodes: cfg.RingNodes,
		Terminals: []int{cfg.Terminals},
		Shares:    cfg.Shares,
		Tolerance: cfg.Tolerance,
	}.withDefaults()
	soft := base
	soft.Policy = core.SoftCDV{}

	hardSeries, err := Figure11(base)
	if err != nil {
		return nil, err
	}
	softSeries, err := Figure11(soft)
	if err != nil {
		return nil, err
	}
	hardSeries[0].Label = "hard CAC"
	softSeries[0].Label = "soft CAC"
	return []Series{softSeries[0], hardSeries[0]}, nil
}

// MaxSymmetricLoad finds the largest symmetric load admissible for a given
// N — the knee of a Figure 10 curve — by binary search.
func MaxSymmetricLoad(cfg SymmetricConfig, nTerm int, tolerance float64) (float64, error) {
	cfg = cfg.withDefaults()
	if tolerance <= 0 {
		tolerance = 1.0 / 128
	}
	lo, hi := 0.0, 1.0
	if _, ok, err := symmetricBound(cfg, nTerm, 1.0); err != nil {
		return 0, err
	} else if ok {
		return 1.0, nil
	}
	for hi-lo > tolerance {
		mid := (lo + hi) / 2
		_, ok, err := symmetricBound(cfg, nTerm, mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// SeriesMin returns the smallest Y of a series; it reports ok=false for an
// empty series.
func SeriesMin(s Series) (float64, bool) {
	if len(s.Points) == 0 {
		return 0, false
	}
	min := math.Inf(1)
	for _, p := range s.Points {
		if p.Y < min {
			min = p.Y
		}
	}
	return min, true
}
