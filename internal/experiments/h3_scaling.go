package experiments

import (
	"context"
	"fmt"

	"atmcac/internal/core"
	"atmcac/internal/routing"
	"atmcac/internal/topology"
	"atmcac/internal/workload"
)

func init() {
	Register(&Hypothesis{
		Name:  "h3-capacity-vs-topology",
		Title: "H3: Admission capacity scales with topology size, and shape sets route length",
		Statement: "For each generated topology family (multi-ring, fat tree, campus hierarchy), " +
			"growing the instance admits strictly more connections of the same per-host offered " +
			"load; and the shape sets the route length the CAC must price — fat-tree routes " +
			"never exceed five switches at any size, while multi-ring routes lengthen as rings " +
			"are added.",
		Family: "admission-control",
		Controlled: []string{
			"per-priority queue budgets (identical on every switch of every instance)",
			"offered load per host (same fleet distribution, offers proportional to host count)",
			"endpoint sampling (seeded uniform host pairs, shortest-path routes)",
			"delay bound (one generous bound, so queue budget is the binding constraint)",
		},
		Varied: "topology family and instance size (hosts per instance)",
		Seeds:  []uint64{42, 123, 456},
		Postmortem: "If capacity failed to grow with size inside a family, added switches are not " +
			"adding admission headroom — suspect the generator wiring (links missing, so routes " +
			"funnel through one bottleneck) or route selection (BFS not spreading load). If " +
			"route lengths are no longer what the shapes promise — a fat-tree route above five " +
			"switches, or multi-ring routes that stopped lengthening — the generators or the " +
			"BFS changed, and every capacity number downstream of them is suspect.",
		Run: runH3,
	})
}

// h3Instance is one generated topology of a family at a size step.
type h3Instance struct {
	family string
	step   int
	build  func() (*topology.Graph, error)
	hosts  []topology.NodeID
}

func h3Instances(scale Scale) []h3Instance {
	multiRing := func(rings, nodes, hostsPer int) h3Instance {
		var hosts []topology.NodeID
		for r := 0; r < rings; r++ {
			for i := 0; i < nodes; i++ {
				for h := 0; h < hostsPer; h++ {
					hosts = append(hosts, topology.MultiRingHost(r, i, h))
				}
			}
		}
		return h3Instance{
			family: "multi-ring",
			build: func() (*topology.Graph, error) {
				return topology.MultiRing(topology.MultiRingConfig{
					Rings: rings, NodesPerRing: nodes, HostsPerNode: hostsPer,
				})
			},
			hosts: hosts,
		}
	}
	fatTree := func(k, hostsPer int) h3Instance {
		var hosts []topology.NodeID
		for p := 0; p < k; p++ {
			for e := 0; e < k/2; e++ {
				for h := 0; h < hostsPer; h++ {
					hosts = append(hosts, topology.FatTreeHost(p, e, h))
				}
			}
		}
		return h3Instance{
			family: "fat-tree",
			build: func() (*topology.Graph, error) {
				return topology.FatTree(topology.FatTreeConfig{K: k, HostsPerEdge: hostsPer})
			},
			hosts: hosts,
		}
	}
	campus := func(b, f, hostsPer int) h3Instance {
		var hosts []topology.NodeID
		for bi := 0; bi < b; bi++ {
			for fi := 0; fi < f; fi++ {
				for h := 0; h < hostsPer; h++ {
					hosts = append(hosts, topology.CampusHost(bi, fi, h))
				}
			}
		}
		return h3Instance{
			family: "campus",
			build: func() (*topology.Graph, error) {
				return topology.Campus(topology.CampusConfig{
					Buildings: b, FloorsPerBuilding: f, HostsPerFloor: hostsPer,
				})
			},
			hosts: hosts,
		}
	}

	instances := []h3Instance{
		multiRing(1, 6, 1), multiRing(2, 6, 1),
		fatTree(2, 2), fatTree(4, 2),
		campus(1, 2, 2), campus(2, 3, 2),
	}
	if scale == ScaleFull {
		instances = append(instances,
			multiRing(3, 6, 1), fatTree(6, 2), campus(4, 4, 2))
	}
	// Assign per-family step indices in declaration order.
	steps := map[string]int{}
	for i := range instances {
		instances[i].step = steps[instances[i].family]
		steps[instances[i].family]++
	}
	return instances
}

// h3Result is one instance's measurement.
type h3Result struct {
	admitted int
	// meanLen and maxLen summarize route length (hops = switches) over
	// every offered non-degenerate pair.
	meanLen float64
	maxLen  int
}

// h3Measure offers a per-host-proportional fleet between seeded host pairs
// and returns the admitted count and route-length shape of the instance.
func h3Measure(seed uint64, inst h3Instance) (h3Result, error) {
	g, err := inst.build()
	if err != nil {
		return h3Result{}, err
	}
	n, err := routing.BuildNetwork(g, map[core.Priority]float64{1: 32, 2: 128}, core.HardCDV{})
	if err != nil {
		return h3Result{}, err
	}
	offered := 6 * len(inst.hosts)
	fleet, err := workload.SampleFleet(seed, workload.FleetConfig{}, offered)
	if err != nil {
		return h3Result{}, err
	}
	rng := workload.NewRNG(seed).Split("h3-pairs/" + inst.family)
	var res h3Result
	lenSum, routed := 0, 0
	for i, tmpl := range fleet {
		from := inst.hosts[rng.Intn(len(inst.hosts))]
		to := inst.hosts[rng.Intn(len(inst.hosts))]
		if from == to {
			continue // a degenerate pair counts as offered, not admitted
		}
		route, err := routing.Route(g, from, to)
		if err != nil {
			return h3Result{}, err
		}
		lenSum += len(route)
		routed++
		if len(route) > res.maxLen {
			res.maxLen = len(route)
		}
		_, err = n.Setup(context.Background(), core.ConnRequest{
			ID:         core.ConnID(fmt.Sprintf("h3-%04d", i)),
			Spec:       tmpl.Spec,
			Priority:   tmpl.Priority,
			Route:      route,
			DelayBound: 4000,
		})
		if err == nil {
			res.admitted++
		}
	}
	if routed > 0 {
		res.meanLen = float64(lenSum) / float64(routed)
	}
	if viols, err := n.Audit(); err != nil {
		return h3Result{}, err
	} else if len(viols) != 0 {
		return h3Result{}, fmt.Errorf("h3 %s step %d: %d audit violations after admission", inst.family, inst.step, len(viols))
	}
	return res, nil
}

func runH3(scale Scale, seed uint64) (SeedResult, error) {
	instances := h3Instances(scale)
	byFamily := map[string][]h3Result{}
	var metrics []Metric
	for _, inst := range instances {
		res, err := h3Measure(seed, inst)
		if err != nil {
			return SeedResult{}, err
		}
		byFamily[inst.family] = append(byFamily[inst.family], res)
		metrics = append(metrics,
			Metric{
				Name:  fmt.Sprintf("%s-%d-admitted", inst.family, inst.step),
				Value: float64(res.admitted),
			},
			Metric{
				Name:  fmt.Sprintf("%s-%d-mean-hops", inst.family, inst.step),
				Value: res.meanLen,
			},
		)
	}

	var checks []Check
	for _, family := range []string{"campus", "fat-tree", "multi-ring"} {
		steps := byFamily[family]
		grows := true
		detail := ""
		for i := 1; i < len(steps); i++ {
			if steps[i].admitted <= steps[i-1].admitted {
				grows = false
			}
			if detail != "" {
				detail += ", "
			}
			detail += fmt.Sprintf("step %d -> %d: %d -> %d", i-1, i, steps[i-1].admitted, steps[i].admitted)
		}
		checks = append(checks, Check{
			Name:   "capacity-grows-" + family,
			Pass:   grows,
			Detail: detail,
		})
	}
	ftMax := 0
	for _, res := range byFamily["fat-tree"] {
		if res.maxLen > ftMax {
			ftMax = res.maxLen
		}
	}
	checks = append(checks, Check{
		Name:   "fat-tree-routes-stay-short",
		Pass:   ftMax <= 5,
		Detail: fmt.Sprintf("longest fat-tree route at any size: %d switches (bound 5)", ftMax),
	})
	mr := byFamily["multi-ring"]
	mrFirst, mrLast := mr[0], mr[len(mr)-1]
	checks = append(checks, Check{
		Name: "multi-ring-routes-lengthen",
		Pass: mrLast.meanLen > mrFirst.meanLen,
		Detail: fmt.Sprintf("mean route length %.3f switches at smallest vs %.3f at largest",
			mrFirst.meanLen, mrLast.meanLen),
	})

	return SeedResult{Metrics: metrics, Checks: checks}, nil
}
