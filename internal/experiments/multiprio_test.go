package experiments

import (
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/sim"
)

// TestMultiPriorityValidation drives the Figure 12 configuration through
// both the CAC and the simulator: the hot terminal's connection at
// priority 1 (32-cell FIFOs) and the cold crowd at priority 2 (256-cell
// FIFOs). The analytic per-priority bounds must dominate the measured
// per-priority delays, queues must stay within their budgets, and the
// priority mechanism itself must be visible (the low-priority class sees
// strictly more queueing than the isolated high-priority connection).
func TestMultiPriorityValidation(t *testing.T) {
	const (
		ringNodes = 8
		terminals = 2
		load      = 0.4
		hotShare  = 0.3
	)
	queues := map[core.Priority]float64{1: 32, 2: 256}

	rt, err := rtnet.New(rtnet.Config{
		RingNodes:        ringNodes,
		TerminalsPerNode: terminals,
		QueueCells:       queues,
	})
	if err != nil {
		t.Fatal(err)
	}
	workload, err := rt.AsymmetricWorkload(load, hotShare, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InstallAll(workload); err != nil {
		t.Fatal(err)
	}
	violations, err := rt.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("two-priority workload rejected: %v", violations)
	}

	// Analytic per-connection end-to-end bounds.
	analytic := make([]float64, len(workload))
	for i, req := range workload {
		d, err := rt.Core().RouteBound(req.Route, req.Priority)
		if err != nil {
			t.Fatal(err)
		}
		analytic[i] = d
	}

	simNet, err := buildRingSim(ringNodes, map[sim.Priority]int{1: 32, 2: 256}, workload,
		func(i int, sc *sim.SourceConfig) {
			sc.Mode = sim.Random
			sc.Seed = int64(i+1) * 7907
		})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := simNet.Run(60000)
	if err != nil {
		t.Fatal(err)
	}

	var hotMax, coldMax uint64
	for i, req := range workload {
		vs := stats.PerVC[i]
		if vs.Cells == 0 {
			t.Fatalf("connection %s delivered nothing", req.ID)
		}
		if float64(vs.MaxDelay) > analytic[i]+1e-9 {
			t.Errorf("connection %s (prio %d): measured %d exceeds analytic %.1f",
				req.ID, req.Priority, vs.MaxDelay, analytic[i])
		}
		if req.Priority == 1 {
			if vs.MaxDelay > hotMax {
				hotMax = vs.MaxDelay
			}
		} else if vs.MaxDelay > coldMax {
			coldMax = vs.MaxDelay
		}
	}
	// The isolated priority-1 connection queues behind nothing.
	if hotMax > 0 {
		t.Errorf("hot priority-1 connection measured delay %d, want 0 (alone at its priority)", hotMax)
	}
	if coldMax == 0 {
		t.Error("cold priority-2 class saw no queueing; scenario exercises nothing")
	}
	for key, qs := range stats.Queues {
		if qs.Drops != 0 {
			t.Errorf("queue %s dropped %d cells", key, qs.Drops)
		}
	}
}
