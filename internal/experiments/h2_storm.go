package experiments

import (
	"fmt"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/faultinject"
	"atmcac/internal/overload"
	"atmcac/internal/rtnet"
	"atmcac/internal/workload"
)

func init() {
	Register(&Hypothesis{
		Name:  "h2-overload-degradation-storm",
		Title: "H2: Degradation order survives an adversarial MMPP storm",
		Statement: "Under a bursty MMPP arrival storm against the live control plane — including a " +
			"mid-storm link failure and repair — the overload limiter sheds strictly in class " +
			"order (reads before low-priority setups before high-priority setups, recovery " +
			"never shed), and high-priority setups retain admission goodput in the storm " +
			"windows where lower classes are already being shed.",
		Family: "overload-control",
		Controlled: []string{
			"ring topology and queue budgets (same rtnet config across seeds)",
			"limiter shape (rate, burst, and reserve fractions held fixed)",
			"event mix probabilities (read / low setup / high setup shares)",
			"fault schedule (one link failure and one repair at fixed event indices)",
		},
		Varied: "arrival pattern: seeded 2-state MMPP interarrival gaps (quiet spells vs bursts)",
		Seeds:  []uint64{42, 123, 456},
		Postmortem: "A falsification means the limiter's reserve thresholds no longer order the " +
			"classes: either a recovery/high request was shed while a cheaper class kept being " +
			"admitted in the same refill window (inspect overload.Class.reserveFraction and " +
			"the token accounting in Acquire), or high-priority goodput vanished in windows " +
			"where the reserve should have protected it. The window transcript in the report " +
			"pinpoints the first out-of-order shed.",
		Run: runH2,
	})
}

// h2Rank orders the shedding classes: a class sheds before every class
// with a lower rank, because its token reserve threshold is higher.
func h2Rank(ev faultinject.OverloadEvent) (rank int, countable bool) {
	switch ev.Kind {
	case faultinject.OvRead:
		return 3, true
	case faultinject.OvSetup:
		if ev.Priority > 1 {
			return 2, true
		}
		return 1, true
	default:
		return 0, false
	}
}

func runH2(scale Scale, seed uint64) (SeedResult, error) {
	nodes, events := 8, 240
	if scale == ScaleSmoke {
		nodes, events = 6, 80
	}
	failAt, restoreAt := events/2, events*3/4

	harness, err := faultinject.NewOverload(
		rtnet.Config{
			RingNodes:        nodes,
			TerminalsPerNode: 2,
			QueueCells:       map[core.Priority]float64{1: 32, 2: 128},
		},
		overload.LimiterConfig{Rate: 5, Burst: 8},
	)
	if err != nil {
		return SeedResult{}, err
	}
	defer harness.Close()

	// The storm clock: MMPP gaps in seconds drive the limiter's manual
	// clock, so quiet spells refill the bucket and bursts drain it.
	mmpp, err := workload.NewMMPP(seed, workload.MMPPConfig{
		QuietRate: 2, BurstRate: 50, MeanQuiet: 5, MeanBurst: 1,
	})
	if err != nil {
		return SeedResult{}, err
	}
	rng := workload.NewRNG(seed).Split("h2-mix")

	var script faultinject.OverloadScript
	prev := 0.0
	pending := 0.0
	setups := 0
	var established []core.ConnID
	for i := 0; i < events; i++ {
		at := mmpp.Next()
		pending += at - prev
		prev = at
		// The limiter refills on a coarse 250 ms tick: quiet-spell arrivals
		// each get their own refill, while burst arrivals pile into one
		// window and drain the bucket — the shape the degradation order
		// must survive.
		if pending >= 0.25 {
			script = append(script, faultinject.OverloadEvent{
				Kind: faultinject.OvAdvance,
				D:    time.Duration(pending * float64(time.Second)),
			})
			pending = 0
		}
		switch {
		case i == failAt:
			script = append(script, faultinject.OverloadEvent{Kind: faultinject.OvFail, Node: 2})
			continue
		case i == restoreAt:
			script = append(script, faultinject.OverloadEvent{Kind: faultinject.OvRestore, Node: 2})
			continue
		}
		p := rng.Float64()
		switch {
		case p < 0.30:
			script = append(script, faultinject.OverloadEvent{Kind: faultinject.OvRead})
		case p < 0.40 && len(established) > 0:
			id := established[0]
			established = established[1:]
			script = append(script, faultinject.OverloadEvent{Kind: faultinject.OvTeardown, ID: id})
		default:
			prio := core.Priority(2)
			if rng.Float64() < 0.5 {
				prio = 1
			}
			id := core.ConnID(fmt.Sprintf("h2-%04d", setups))
			setups++
			script = append(script, faultinject.OverloadEvent{
				Kind:     faultinject.OvSetup,
				ID:       id,
				Origin:   rng.Intn(nodes),
				Terminal: rng.Intn(2),
				PCR:      0.0005,
				Priority: prio,
			})
			established = append(established, id)
		}
	}

	outcomes, runErr := harness.Run(script)

	// Window analysis: within each refill window (between clock advances)
	// tokens only decrease, so once a class sheds, every class of equal or
	// higher rank must keep shedding until the next refill.
	orderOK := true
	orderDetail := "class order held in every refill window"
	var admitted, shed [4]int
	stormWindows, protectedWindows := 0, 0
	shedRank := 0 // 0 = nothing shed yet this window
	lowShedThisWindow, highOfferedThisWindow, highAdmittedThisWindow := false, false, false
	endWindow := func() {
		// A storm window sheds a lower class while high-priority work is
		// on offer — the configuration in which the reserve must protect
		// high-priority goodput.
		if lowShedThisWindow && highOfferedThisWindow {
			stormWindows++
			if highAdmittedThisWindow {
				protectedWindows++
			}
		}
		shedRank = 0
		lowShedThisWindow, highOfferedThisWindow, highAdmittedThisWindow = false, false, false
	}
	for i, out := range outcomes {
		if out.Event.Kind == faultinject.OvAdvance {
			endWindow()
			continue
		}
		rank, countable := h2Rank(out.Event)
		if !countable {
			continue
		}
		if rank == 1 {
			highOfferedThisWindow = true
		}
		if out.Shed {
			shed[rank]++
			if shedRank == 0 || rank < shedRank {
				shedRank = rank
			}
			if rank >= 2 {
				lowShedThisWindow = true
			}
		} else {
			admitted[rank]++
			if shedRank != 0 && rank >= shedRank && orderOK {
				orderOK = false
				orderDetail = fmt.Sprintf(
					"event %d (%s, rank %d) admitted after rank %d shed in the same window",
					i, out.Event.Kind, rank, shedRank)
			}
			if rank == 1 {
				highAdmittedThisWindow = true
			}
		}
	}
	endWindow()

	shedRate := func(r int) float64 {
		total := admitted[r] + shed[r]
		if total == 0 {
			return 0
		}
		return float64(shed[r]) / float64(total)
	}

	checks := []Check{
		{
			Name: "harness-invariants",
			Pass: runErr == nil,
			Detail: func() string {
				if runErr == nil {
					return "typed sheds, recovery never shed, connection accounting and audit clean"
				}
				return runErr.Error()
			}(),
		},
		{
			Name: "window-degradation-order",
			Pass: orderOK,
			Detail: fmt.Sprintf("%s (high adm/shed %d/%d, low %d/%d, read %d/%d)",
				orderDetail, admitted[1], shed[1], admitted[2], shed[2], admitted[3], shed[3]),
		},
		{
			Name: "shed-rate-ordering",
			Pass: shedRate(3) >= shedRate(2) && shedRate(2) >= shedRate(1),
			Detail: fmt.Sprintf("shed rates read %.3f >= low %.3f >= high %.3f",
				shedRate(3), shedRate(2), shedRate(1)),
		},
		{
			Name: "high-goodput-floor",
			Pass: stormWindows > 0 && protectedWindows == stormWindows && shed[2]+shed[3] > 0,
			Detail: fmt.Sprintf(
				"high-priority setups admitted in %d/%d windows that shed a lower class (%d total sheds)",
				protectedWindows, stormWindows, shed[1]+shed[2]+shed[3]),
		},
	}

	return SeedResult{
		Metrics: []Metric{
			{Name: "events", Value: float64(len(script))},
			{Name: "high-admitted", Value: float64(admitted[1])},
			{Name: "high-shed", Value: float64(shed[1])},
			{Name: "low-admitted", Value: float64(admitted[2])},
			{Name: "low-shed", Value: float64(shed[2])},
			{Name: "read-admitted", Value: float64(admitted[3])},
			{Name: "read-shed", Value: float64(shed[3])},
			{Name: "storm-windows", Value: float64(stormWindows)},
			{Name: "protected-windows", Value: float64(protectedWindows)},
		},
		Checks: checks,
	}, nil
}
