package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Table1 has %d rows, want 3", len(rows))
	}
	want := []struct {
		name         string
		periodMillis float64
		memKB        float64
		mbps         float64
	}{
		{"high speed", 1, 4, 32},
		{"medium speed", 30, 64, 17.5},
		{"low speed", 150, 128, 6.8},
	}
	for i, w := range want {
		r := rows[i]
		if r.Name != w.name {
			t.Errorf("row %d name = %q, want %q", i, r.Name, w.name)
		}
		if r.PeriodMillis != w.periodMillis || r.MemoryKB != w.memKB {
			t.Errorf("row %d = %+v, want period %g ms, memory %g KB", i, r, w.periodMillis, w.memKB)
		}
		if math.Abs(r.PayloadMbps-w.mbps)/w.mbps > 0.05 {
			t.Errorf("%s payload = %.2f Mbps, want about %g", r.Name, r.PayloadMbps, w.mbps)
		}
		if r.WireMbps <= r.PayloadMbps {
			t.Errorf("%s wire bandwidth %.2f not above payload %.2f", r.Name, r.WireMbps, r.PayloadMbps)
		}
	}
}

// smallSym keeps test sweeps fast: an 8-node ring and a coarse load grid.
func smallSym(terminals []int) SymmetricConfig {
	return SymmetricConfig{
		RingNodes: 8,
		Terminals: terminals,
		Loads:     []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
	}
}

func TestFigure10Shape(t *testing.T) {
	series, err := Figure10(smallSym([]int{1, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Label != "N=1" || series[1].Label != "N=8" {
		t.Fatalf("series = %+v", series)
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Label)
		}
		// Delay bounds increase monotonically with load.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y-1e-9 {
				t.Errorf("series %s not monotone: %v", s.Label, s.Points)
			}
		}
	}
	// Burstier nodes (larger N) support less load: the N=8 curve ends
	// earlier and sits above the N=1 curve at equal loads.
	n1, n8 := series[0], series[1]
	if len(n8.Points) >= len(n1.Points) {
		t.Errorf("N=8 supports %d load points, N=1 supports %d; want fewer for N=8",
			len(n8.Points), len(n1.Points))
	}
	for i := range n8.Points {
		if n8.Points[i].Y <= n1.Points[i].Y {
			t.Errorf("at B=%g: N=8 bound %g not above N=1 bound %g",
				n8.Points[i].X, n8.Points[i].Y, n1.Points[i].Y)
		}
	}
}

func TestFigure10PaperAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full 16-node sweep")
	}
	series, err := Figure10(SymmetricConfig{
		Terminals: []int{1, 16},
		Loads:     []float64{0.35, 0.5, 0.75},
	})
	if err != nil {
		t.Fatal(err)
	}
	n1, n16 := series[0], series[1]
	// N=1 supports 75% under 370 cell times.
	if len(n1.Points) != 3 {
		t.Fatalf("N=1 points = %v, want all three loads feasible", n1.Points)
	}
	if d := n1.Points[2].Y; d > 370 {
		t.Errorf("N=1 B=0.75 bound = %.0f, want <= 370", d)
	}
	// N=16 supports 35% but not 50%.
	if len(n16.Points) != 1 {
		t.Fatalf("N=16 points = %v, want only B=0.35 feasible", n16.Points)
	}
}

func TestMaxSymmetricLoad(t *testing.T) {
	cfg := smallSym([]int{1})
	b, err := MaxSymmetricLoad(cfg, 1, 1.0/64)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0.5 || b > 1 {
		t.Errorf("max symmetric load for N=1 on 8 nodes = %g, want in (0.5, 1]", b)
	}
	b16, err := MaxSymmetricLoad(cfg, 16, 1.0/64)
	if err != nil {
		t.Fatal(err)
	}
	if b16 >= b {
		t.Errorf("N=16 max load %g not below N=1 max load %g", b16, b)
	}
}

func smallAsym(terminals []int) AsymmetricConfig {
	return AsymmetricConfig{
		RingNodes: 8,
		Terminals: terminals,
		Shares:    []float64{0.1, 0.4, 0.7},
		Tolerance: 1.0 / 64,
	}
}

func TestFigure11Shape(t *testing.T) {
	series, err := Figure11(smallAsym([]int{1, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %+v", series)
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 || p.Y > 1 {
				t.Errorf("series %s point %+v outside (0,1]", s.Label, p)
			}
		}
	}
	// The bursty configuration (N=8) supports less load when asymmetry
	// grows; for the near-CBR N=1 case the effect is weaker at small ring
	// sizes, so monotonicity is asserted only for N=8.
	n8 := series[1]
	for i := 1; i < len(n8.Points); i++ {
		if n8.Points[i].Y > n8.Points[i-1].Y+1.0/32 {
			t.Errorf("series %s: supported load grows with p: %v", n8.Label, n8.Points)
		}
	}
	// More terminals per node support less traffic at every p.
	for i := range series[0].Points {
		if series[1].Points[i].Y > series[0].Points[i].Y+1.0/32 {
			t.Errorf("N=8 supports more than N=1 at p=%g", series[0].Points[i].X)
		}
	}
}

func TestFigure12TwoPrioritiesDominate(t *testing.T) {
	series, err := Figure12(Figure12Config{
		RingNodes: 8,
		Terminals: 8,
		Shares:    []float64{0.1, 0.4, 0.7},
		Tolerance: 1.0 / 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Label != "1 priority" || series[1].Label != "2 priorities" {
		t.Fatalf("series labels = %q, %q", series[0].Label, series[1].Label)
	}
	atLeastOneGain := false
	for i := range series[0].Points {
		one, two := series[0].Points[i].Y, series[1].Points[i].Y
		if two < one-1.0/32 {
			t.Errorf("two priorities support less (%g) than one (%g) at p=%g",
				two, one, series[0].Points[i].X)
		}
		if two > one+1.0/32 {
			atLeastOneGain = true
		}
	}
	if !atLeastOneGain {
		t.Error("two priority levels never supported extra traffic")
	}
}

func TestFigure13SoftDominatesHard(t *testing.T) {
	series, err := Figure13(Figure13Config{
		RingNodes: 8,
		Terminals: 8,
		Shares:    []float64{0.1, 0.4, 0.7},
		Tolerance: 1.0 / 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Label != "soft CAC" || series[1].Label != "hard CAC" {
		t.Fatalf("series labels = %q, %q", series[0].Label, series[1].Label)
	}
	atLeastOneGain := false
	for i := range series[0].Points {
		soft, hard := series[0].Points[i].Y, series[1].Points[i].Y
		if soft < hard-1.0/32 {
			t.Errorf("soft CAC supports less (%g) than hard (%g) at p=%g",
				soft, hard, series[0].Points[i].X)
		}
		if soft > hard+1.0/32 {
			atLeastOneGain = true
		}
	}
	if !atLeastOneGain {
		t.Error("soft CAC never admitted extra traffic")
	}
}

func TestWriteTSV(t *testing.T) {
	var sb strings.Builder
	err := WriteTSV(&sb, []Series{
		{Label: "a", Points: []Point{{1, 2}, {3, 4}}},
		{Label: "b", Points: []Point{{5, 6}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "# a\n1\t2\n3\t4\n\n# b\n5\t6\n"
	if got != want {
		t.Fatalf("WriteTSV = %q, want %q", got, want)
	}
}

func TestSeriesMin(t *testing.T) {
	if _, ok := SeriesMin(Series{}); ok {
		t.Error("SeriesMin of empty series reported ok")
	}
	min, ok := SeriesMin(Series{Points: []Point{{0, 3}, {1, 1}, {2, 2}}})
	if !ok || min != 1 {
		t.Errorf("SeriesMin = %g, %v; want 1, true", min, ok)
	}
}
