package experiments

import (
	"strings"
	"testing"
)

// TestSoftRiskReport exercises the soft-CAC risk probe: the soft policy
// must open a genuine admission gap over hard, the probed workload must be
// soft-admissible, and the report's bookkeeping must be consistent.
// (Whether the adversary realizes the worst case is an empirical outcome,
// not an assertion: the paper's justification for the soft scheme is
// precisely that it rarely happens.)
func TestSoftRiskReport(t *testing.T) {
	report, err := SoftRisk(SoftRiskConfig{Slots: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if report.SoftMaxLoad <= report.HardMaxLoad {
		t.Fatalf("no soft-over-hard gap: %+v", report)
	}
	if report.ProbeLoad <= report.HardMaxLoad || report.ProbeLoad >= report.SoftMaxLoad {
		t.Fatalf("probe load %g outside (%g, %g)", report.ProbeLoad,
			report.HardMaxLoad, report.SoftMaxLoad)
	}
	if report.QueueBudget != 32 {
		t.Errorf("queue budget = %g", report.QueueBudget)
	}
	if report.HardBoundViolated != (report.Drops > 0 || float64(report.MaxQueueDelay) > report.QueueBudget) {
		t.Error("HardBoundViolated inconsistent with drops/delays")
	}
	out := report.String()
	if !strings.Contains(out, "probing") || !strings.Contains(out, "budget") {
		t.Errorf("String() = %q", out)
	}
}

func TestSoftRiskNoGapPath(t *testing.T) {
	// With one node per... a configuration where both policies agree: a
	// 2-node ring has a single hop, so CDV accumulation never differs.
	report, err := SoftRisk(SoftRiskConfig{RingNodes: 2, Terminals: 1, Slots: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if report.ProbeLoad != 0 {
		t.Fatalf("single-hop ring produced a policy gap: %+v", report)
	}
	if !strings.Contains(report.String(), "nothing to probe") {
		t.Errorf("String() = %q", report.String())
	}
}
