package experiments

import (
	"context"
	"fmt"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/sim"
	"atmcac/internal/workload"
)

func init() {
	Register(&Hypothesis{
		Name:  "h1-soft-cdv-utilization",
		Title: "H1: Soft-CDV accumulation raises admitted utilization without delay-bound violations",
		Statement: "Replacing worst-case linear CDV accumulation (hard) with the square-root " +
			"accumulation rule (soft) admits at least as many connections of an identical " +
			"offered fleet on an identical ring — strictly more load at every seed — while a " +
			"cell-level replay of the soft-admitted set still meets every guaranteed delay " +
			"bound with zero drops.",
		Family: "admission-control",
		Controlled: []string{
			"ring topology (same node count, terminals, and per-priority queue budgets in both arms)",
			"offered fleet (same seeded CBR/VBR templates, offered in the same order)",
			"per-connection routes, priorities, and delay bounds",
			"simulator replay configuration (greedy conforming sources, same horizon)",
		},
		Varied: "CDV accumulation policy: core.HardCDV vs core.SoftCDV",
		Seeds:  []uint64{42, 123, 456},
		Postmortem: "A falsification means one of two mechanisms broke. If soft admitted " +
			"*fewer* connections than hard, the accumulation policies are inverted or the " +
			"sqrt rule regressed to over-counting — inspect core.SoftCDV.Accumulate. If the " +
			"replay violated a delay bound or dropped cells, the soft rule under-accounts " +
			"clumping on this workload and the paper's soft-CDV safety argument does not " +
			"extend to it — the admitted set, not the policy code, is the evidence to study.",
		Run: runH1,
	})
}

// h1Offer is one positioned fleet member: a template bound to a ring
// segment.
type h1Offer struct {
	tmpl   workload.ConnTemplate
	origin int
	term   int
	hops   int
}

func h1Offers(seed uint64, nodes, terminals, count int) ([]h1Offer, error) {
	fleet, err := workload.SampleFleet(seed, workload.FleetConfig{
		// VBR-heavy with large bursts so CDV clumping, not raw bandwidth,
		// is the binding constraint the two policies price differently.
		CBRFraction: 0.2,
		MBSMin:      8,
		MBSMax:      32,
	}, count)
	if err != nil {
		return nil, err
	}
	rng := workload.NewRNG(seed).Split("h1-placement")
	offers := make([]h1Offer, len(fleet))
	for i, tmpl := range fleet {
		offers[i] = h1Offer{
			tmpl:   tmpl,
			origin: rng.Intn(nodes),
			term:   rng.Intn(terminals),
			// Bias long segments: CDV accumulates per hop, so the policy
			// gap grows with route length.
			hops: 2 + rng.Intn(nodes-2),
		}
	}
	return offers, nil
}

// h1Admit offers the fleet in order to a fresh ring under the given policy
// and returns the admitted subset with its admission results.
func h1Admit(policy core.CDVPolicy, offers []h1Offer, nodes, terminals int,
	queues map[core.Priority]float64, delayBound float64) (*rtnet.Network, []int, []*core.Admission, error) {
	rt, err := rtnet.New(rtnet.Config{
		RingNodes:        nodes,
		TerminalsPerNode: terminals,
		QueueCells:       queues,
		Policy:           policy,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var admitted []int
	var adms []*core.Admission
	for i, off := range offers {
		route, err := rt.SegmentRoute(off.origin, off.term, off.hops)
		if err != nil {
			return nil, nil, nil, err
		}
		adm, err := rt.Core().Setup(context.Background(), core.ConnRequest{
			ID:         core.ConnID(fmt.Sprintf("h1-%04d", i)),
			Spec:       off.tmpl.Spec,
			Priority:   off.tmpl.Priority,
			Route:      route,
			DelayBound: delayBound,
		})
		if err != nil {
			continue // rejection is the measurement, not an error
		}
		admitted = append(admitted, i)
		adms = append(adms, adm)
	}
	return rt, admitted, adms, nil
}

// h1Replay drives the admitted set through the cell-level simulator with
// greedy conforming sources and returns the worst delay-vs-guarantee
// violation margin and the drop count.
func h1Replay(offers []h1Offer, admitted []int, adms []*core.Admission,
	nodes int, queues map[core.Priority]float64, slots uint64) (worstSlack float64, drops int, err error) {
	simNet := sim.New()
	caps := make(map[sim.Priority]int, len(queues))
	for p, c := range queues {
		caps[sim.Priority(p)] = int(c)
	}
	switches := make([]*sim.Switch, nodes)
	for i := range switches {
		sw, err := simNet.AddSwitch(rtnet.SwitchName(i), caps)
		if err != nil {
			return 0, 0, err
		}
		switches[i] = sw
	}
	for i := range switches {
		if err := simNet.Link(switches[i], 0, switches[(i+1)%nodes], 0); err != nil {
			return 0, 0, err
		}
	}
	for vc, idx := range admitted {
		off := offers[idx]
		prio := sim.Priority(off.tmpl.Priority)
		// Transit hops queue at the ring output port; the final queueing
		// point is remapped to a dedicated sink port, mirroring
		// ValidateRTnet's consistent exclusion of delivery-port contention.
		for h := 0; h < off.hops-1; h++ {
			if err := switches[(off.origin+h)%nodes].SetRoute(vc, 0, prio); err != nil {
				return 0, 0, err
			}
		}
		if err := switches[(off.origin+off.hops-1)%nodes].SetRoute(vc, 1000+vc, prio); err != nil {
			return 0, 0, err
		}
		err := simNet.AddSource(sim.SourceConfig{
			VC:     vc,
			Spec:   off.tmpl.Spec,
			Dest:   switches[off.origin],
			InPort: 200 + vc,
			Mode:   sim.Greedy,
			Seed:   int64(vc)*7919 + 17,
		})
		if err != nil {
			return 0, 0, err
		}
	}
	stats, err := simNet.Run(slots)
	if err != nil {
		return 0, 0, err
	}
	worstSlack = 1e18
	for vc := range admitted {
		slack := adms[vc].EndToEndGuaranteed - float64(stats.PerVC[vc].MaxDelay)
		if slack < worstSlack {
			worstSlack = slack
		}
	}
	for _, qs := range stats.Queues {
		drops += qs.Drops
	}
	return worstSlack, drops, nil
}

func runH1(scale Scale, seed uint64) (SeedResult, error) {
	nodes, terminals, count, slots := 10, 2, 160, uint64(40000)
	if scale == ScaleSmoke {
		nodes, count, slots = 6, 60, 20000
	}
	queues := map[core.Priority]float64{1: 32, 2: 128}
	const delayBound = 2000

	offers, err := h1Offers(seed, nodes, terminals, count)
	if err != nil {
		return SeedResult{}, err
	}
	hardNet, hardAdmitted, _, err := h1Admit(core.HardCDV{}, offers, nodes, terminals, queues, delayBound)
	if err != nil {
		return SeedResult{}, err
	}
	softNet, softAdmitted, softAdms, err := h1Admit(core.SoftCDV{}, offers, nodes, terminals, queues, delayBound)
	if err != nil {
		return SeedResult{}, err
	}

	// Utilization: mean admitted load per ring port, in fractions of link
	// bandwidth — each admitted connection loads `hops` ring ports with its
	// PCR.
	util := func(idxs []int) float64 {
		var sum float64
		for _, i := range idxs {
			sum += offers[i].tmpl.Spec.PCR * float64(offers[i].hops)
		}
		return sum / float64(nodes)
	}
	hardUtil, softUtil := util(hardAdmitted), util(softAdmitted)

	hardViol, err := hardNet.Audit()
	if err != nil {
		return SeedResult{}, err
	}
	softViol, err := softNet.Audit()
	if err != nil {
		return SeedResult{}, err
	}
	worstSlack, drops, err := h1Replay(offers, softAdmitted, softAdms, nodes, queues, slots)
	if err != nil {
		return SeedResult{}, err
	}

	return SeedResult{
		Metrics: []Metric{
			{Name: "offered", Value: float64(len(offers))},
			{Name: "hard-admitted", Value: float64(len(hardAdmitted))},
			{Name: "soft-admitted", Value: float64(len(softAdmitted))},
			{Name: "hard-ring-util", Value: hardUtil},
			{Name: "soft-ring-util", Value: softUtil},
			{Name: "replay-worst-slack", Value: worstSlack},
			{Name: "replay-drops", Value: float64(drops)},
		},
		Checks: []Check{
			{
				Name: "soft-admits-strictly-more",
				Pass: len(softAdmitted) > len(hardAdmitted),
				Detail: fmt.Sprintf("soft admitted %d, hard admitted %d of %d offered",
					len(softAdmitted), len(hardAdmitted), len(offers)),
			},
			{
				Name: "soft-raises-utilization",
				Pass: softUtil > hardUtil,
				Detail: fmt.Sprintf("soft ring utilization %.4g vs hard %.4g",
					softUtil, hardUtil),
			},
			{
				Name:   "audit-clean-both-policies",
				Pass:   len(hardViol) == 0 && len(softViol) == 0,
				Detail: fmt.Sprintf("hard violations %d, soft violations %d", len(hardViol), len(softViol)),
			},
			{
				Name: "replay-meets-delay-bounds",
				Pass: worstSlack >= 0 && drops == 0,
				Detail: fmt.Sprintf("worst slack %.4g cell times (guarantee minus measured), %d drops",
					worstSlack, drops),
			},
		},
	}, nil
}
