package experiments

import (
	"strings"
	"testing"

	"atmcac/internal/sim"
)

// TestSimulatedDelayWithinBound is the soundness experiment: on an RTnet
// ring admitted by the CAC, every conforming source schedule (greedy and
// randomized) must stay within the analytic delay bound, the FIFO budget,
// and suffer zero loss.
func TestSimulatedDelayWithinBound(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ValidationConfig
	}{
		{"greedy default", ValidationConfig{}},
		{"random default", ValidationConfig{Mode: sim.Random, Seed: 42}},
		{"greedy heavier", ValidationConfig{RingNodes: 8, Terminals: 4, Load: 0.5}},
		{"random heavier", ValidationConfig{RingNodes: 8, Terminals: 4, Load: 0.5, Mode: sim.Random, Seed: 7}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := ValidateRTnet(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Feasible {
				t.Fatal("validation workload rejected by CAC; pick a lighter load")
			}
			if res.CellsDelivered == 0 {
				t.Fatal("simulation delivered no cells")
			}
			if !res.Holds() {
				t.Errorf("analytic guarantees violated: %s", res)
			}
			if float64(res.MeasuredMaxDelay) > res.AnalyticBound {
				t.Errorf("measured delay %d exceeds analytic bound %.1f",
					res.MeasuredMaxDelay, res.AnalyticBound)
			}
		})
	}
}

// TestValidationDetectsInfeasible: an overloaded workload is reported as
// rejected rather than silently simulated.
func TestValidationDetectsInfeasible(t *testing.T) {
	res, err := ValidateRTnet(ValidationConfig{RingNodes: 8, Terminals: 16, Load: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("overloaded workload reported feasible")
	}
	if res.Holds() {
		t.Error("Holds() true for an infeasible workload")
	}
	if !strings.Contains(res.String(), "rejected") {
		t.Errorf("String() = %q", res.String())
	}
}

func TestValidationStringFeasible(t *testing.T) {
	res, err := ValidateRTnet(ValidationConfig{Slots: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "analytic bound") {
		t.Errorf("String() = %q", res.String())
	}
}
