package experiments

import "testing"

func TestTightnessSweep(t *testing.T) {
	series, err := Tightness(TightnessConfig{
		RingNodes: 6, Terminals: 2,
		Loads: []float64{0.2, 0.4},
		Slots: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %+v", series)
	}
	analytic, measured := series[0], series[1]
	if len(analytic.Points) != len(measured.Points) || len(analytic.Points) == 0 {
		t.Fatalf("point counts: %d vs %d", len(analytic.Points), len(measured.Points))
	}
	for i := range analytic.Points {
		if measured.Points[i].Y > analytic.Points[i].Y {
			t.Errorf("load %g: measured %g above bound %g",
				analytic.Points[i].X, measured.Points[i].Y, analytic.Points[i].Y)
		}
	}
	// The bound grows with load.
	last := len(analytic.Points) - 1
	if analytic.Points[last].Y <= analytic.Points[0].Y {
		t.Errorf("analytic bound not growing: %+v", analytic.Points)
	}
}

func TestTightnessStopsAtAdmissionLimit(t *testing.T) {
	series, err := Tightness(TightnessConfig{
		RingNodes: 8, Terminals: 16,
		Loads: []float64{0.2, 0.95},
		Slots: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(series[0].Points); got != 1 {
		t.Fatalf("points = %d, want the sweep to stop at the admission limit", got)
	}
}
