package experiments

import (
	"testing"

	"atmcac/internal/rtnet"
	"atmcac/internal/sim"
)

// TestWrappedRingSimulationWithinBounds validates the degraded-mode
// analysis end to end: after a link failure and wrap, the CAC's
// per-connection bounds on the dual-direction ring must dominate the
// measured delays of the simulated wrapped topology, where a connection
// legitimately traverses the same switch twice (source-routed VCs).
func TestWrappedRingSimulationWithinBounds(t *testing.T) {
	const (
		ringNodes = 6
		terminals = 2
		load      = 0.4
		failed    = 2
		queue     = 32
	)
	// Analytic side.
	rt, err := rtnet.New(rtnet.Config{RingNodes: ringNodes, TerminalsPerNode: terminals})
	if err != nil {
		t.Fatal(err)
	}
	workload, err := rt.SymmetricWorkloadWrapped(load, 1, failed)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InstallAll(workload); err != nil {
		t.Fatal(err)
	}
	if v, err := rt.Audit(); err != nil || len(v) > 0 {
		t.Fatalf("wrapped workload rejected: %v %v", v, err)
	}
	analytic := make([]float64, len(workload))
	for i, req := range workload {
		d, err := rt.Core().RouteBound(req.Route, 1)
		if err != nil {
			t.Fatal(err)
		}
		analytic[i] = d
	}

	// Simulation side: a dual ring. Primary out port 0 -> next node;
	// secondary out port 100 -> previous node.
	simNet := sim.New()
	switches := make([]*sim.Switch, ringNodes)
	for i := range switches {
		sw, err := simNet.AddSwitch(rtnet.SwitchName(i), map[sim.Priority]int{1: queue})
		if err != nil {
			t.Fatal(err)
		}
		switches[i] = sw
	}
	for i := range switches {
		next := (i + 1) % ringNodes
		prev := (i - 1 + ringNodes) % ringNodes
		if err := simNet.Link(switches[i], 0, switches[next], 0); err != nil {
			t.Fatal(err)
		}
		if err := simNet.Link(switches[i], 100, switches[prev], 100); err != nil {
			t.Fatal(err)
		}
	}
	for vc, req := range workload {
		hops := make([]sim.PathHop, 0, len(req.Route)+1)
		lastReceiver := -1
		for _, hop := range req.Route {
			idx, err := switchIndex(hop.Switch)
			if err != nil {
				t.Fatal(err)
			}
			out := 0
			lastReceiver = (idx + 1) % ringNodes
			if hop.Out == rtnet.SecondaryRingOutPort {
				out = 100
				lastReceiver = (idx - 1 + ringNodes) % ringNodes
			}
			hops = append(hops, sim.PathHop{Switch: switches[idx], Out: out, Prio: 1})
		}
		// Final receiver delivers to a dedicated sink port.
		hops = append(hops, sim.PathHop{Switch: switches[lastReceiver], Out: 1000 + vc, Prio: 1})
		if err := simNet.SetPath(vc, hops); err != nil {
			t.Fatal(err)
		}
		origin, err := switchIndex(req.Route[0].Switch)
		if err != nil {
			t.Fatal(err)
		}
		if err := simNet.AddSource(sim.SourceConfig{
			VC: vc, Spec: req.Spec, Dest: switches[origin], InPort: 1 + vc%terminals,
			Mode: sim.Greedy,
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := simNet.Run(60000)
	if err != nil {
		t.Fatal(err)
	}
	sawSecondary := false
	for key, qs := range stats.Queues {
		if qs.Drops != 0 {
			t.Errorf("queue %s dropped %d cells", key, qs.Drops)
		}
	}
	for i := 0; i < ringNodes; i++ {
		if qs, ok := stats.Queues[sim.QueueKey(rtnet.SwitchName(i), 100, 1)]; ok && qs.MaxDelay > 0 {
			sawSecondary = true
		}
	}
	for vc, req := range workload {
		vs := stats.PerVC[vc]
		if vs.Cells == 0 {
			t.Fatalf("connection %s delivered nothing", req.ID)
		}
		if float64(vs.MaxDelay) > analytic[vc]+1e-9 {
			t.Errorf("connection %s: measured %d exceeds wrapped-route bound %.1f (route %d hops)",
				req.ID, vs.MaxDelay, analytic[vc], len(req.Route))
		}
	}
	if !sawSecondary {
		t.Log("note: no queueing observed on secondary-direction ports this run")
	}
}
