package experiments

import (
	"fmt"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
)

// FailoverConfig parameterizes the ring-wrap experiment.
type FailoverConfig struct {
	// RingNodes defaults to 16, Terminals to 4.
	RingNodes int
	Terminals int
	// FailedLink is the failed primary link's transmitting node; default 3.
	FailedLink int
	// Tolerance is the binary-search resolution; default 1/128.
	Tolerance float64
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.RingNodes == 0 {
		c.RingNodes = rtnet.DefaultRingNodes
	}
	if c.Terminals == 0 {
		c.Terminals = 4
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1.0 / 128
	}
	return c
}

// FailoverReport compares the healthy ring with the wrapped (post-failure)
// ring for the symmetric cyclic workload.
type FailoverReport struct {
	Config FailoverConfig
	// MaxLoadHealthy and MaxLoadWrapped are the largest admissible
	// symmetric loads.
	MaxLoadHealthy float64
	MaxLoadWrapped float64
	// RouteHopsHealthy is the broadcast route length on the healthy ring;
	// RouteHopsWrappedMin/Max bracket the wrapped route lengths (they vary
	// with the origin's distance from the wrap point).
	RouteHopsHealthy    int
	RouteHopsWrappedMin int
	RouteHopsWrappedMax int
	// GuaranteeHealthy and GuaranteeWrappedWorst are the contractual
	// end-to-end bounds (cell times) for the standard 32-cell queues.
	GuaranteeHealthy      float64
	GuaranteeWrappedWorst float64
	// HighSpeedBudget is the 1 ms cyclic class budget in cell times;
	// HighSpeedSurvives reports whether the worst wrapped guarantee still
	// meets it.
	HighSpeedBudget   float64
	HighSpeedSurvives bool
}

// Failover runs the ring-wrap experiment: RTnet's FDDI-style wrap keeps the
// network connected after a single link failure (the secondary ring absorbs
// the load), but routes lengthen and tight end-to-end budgets can break —
// quantifying the degraded mode the paper's Section 5 fault-tolerance claim
// implies.
func Failover(cfg FailoverConfig) (FailoverReport, error) {
	cfg = cfg.withDefaults()
	report := FailoverReport{Config: cfg}

	feasible := func(wrapped bool, load float64) (bool, error) {
		n, err := rtnet.New(rtnet.Config{
			RingNodes:        cfg.RingNodes,
			TerminalsPerNode: cfg.Terminals,
		})
		if err != nil {
			return false, err
		}
		var w []core.ConnRequest
		if wrapped {
			w, err = n.SymmetricWorkloadWrapped(load, 1, cfg.FailedLink)
		} else {
			w, err = n.SymmetricWorkload(load, 1)
		}
		if err != nil {
			return false, err
		}
		if err := n.InstallAll(w); err != nil {
			return false, err
		}
		violations, err := n.Audit()
		if err != nil {
			return false, err
		}
		return len(violations) == 0, nil
	}
	maxLoad := func(wrapped bool) (float64, error) {
		if ok, err := feasible(wrapped, 1.0); err != nil {
			return 0, err
		} else if ok {
			return 1.0, nil
		}
		lo, hi := 0.0, 1.0
		for hi-lo > cfg.Tolerance {
			mid := (lo + hi) / 2
			ok, err := feasible(wrapped, mid)
			if err != nil {
				return 0, err
			}
			if ok {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo, nil
	}

	var err error
	if report.MaxLoadHealthy, err = maxLoad(false); err != nil {
		return FailoverReport{}, fmt.Errorf("healthy max load: %w", err)
	}
	if report.MaxLoadWrapped, err = maxLoad(true); err != nil {
		return FailoverReport{}, fmt.Errorf("wrapped max load: %w", err)
	}

	n, err := rtnet.New(rtnet.Config{RingNodes: cfg.RingNodes, TerminalsPerNode: cfg.Terminals})
	if err != nil {
		return FailoverReport{}, err
	}
	report.RouteHopsHealthy = cfg.RingNodes - 1
	report.RouteHopsWrappedMin = 2 * cfg.RingNodes
	for origin := 0; origin < cfg.RingNodes; origin++ {
		route, err := n.WrappedBroadcastRoute(origin, 0, cfg.FailedLink)
		if err != nil {
			return FailoverReport{}, err
		}
		if len(route) < report.RouteHopsWrappedMin {
			report.RouteHopsWrappedMin = len(route)
		}
		if len(route) > report.RouteHopsWrappedMax {
			report.RouteHopsWrappedMax = len(route)
		}
	}
	report.GuaranteeHealthy = float64(report.RouteHopsHealthy) * rtnet.DefaultQueueCells
	report.GuaranteeWrappedWorst = float64(report.RouteHopsWrappedMax) * rtnet.DefaultQueueCells
	report.HighSpeedBudget = rtnet.Classes()[0].DelayCellTimes()
	report.HighSpeedSurvives = report.GuaranteeWrappedWorst <= report.HighSpeedBudget
	return report, nil
}

// String renders the report for the cmd tool.
func (r FailoverReport) String() string {
	survive := "meets"
	if !r.HighSpeedSurvives {
		survive = "BREAKS"
	}
	return fmt.Sprintf(
		"failover (%d nodes, %d terminals/node, link %d fails):\n"+
			"  max symmetric load: healthy %.3f, wrapped %.3f\n"+
			"  broadcast routes: healthy %d hops; wrapped %d-%d hops\n"+
			"  e2e guarantee: healthy %.0f cell times; wrapped worst %.0f\n"+
			"  high-speed 1 ms budget (%.0f cell times): wrapped worst case %s it",
		r.Config.RingNodes, r.Config.Terminals, r.Config.FailedLink,
		r.MaxLoadHealthy, r.MaxLoadWrapped,
		r.RouteHopsHealthy, r.RouteHopsWrappedMin, r.RouteHopsWrappedMax,
		r.GuaranteeHealthy, r.GuaranteeWrappedWorst,
		r.HighSpeedBudget, survive)
}
