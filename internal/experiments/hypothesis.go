package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the falsifiable-hypothesis harness: a registry of
// experiments that each state a claim about the admission-control system,
// declare their controlled variables and seeds, run deterministically, and
// judge themselves with machine-checked predicates. A hypothesis run emits
// a FINDINGS.md so the claim, the design and the evidence travel together
// in the repo, and CI re-runs the predicates so a regression falsifies the
// document instead of silently invalidating it.

// Scale selects how big a hypothesis run is. Smoke keeps CI fast; full is
// the scale the committed FINDINGS.md artifacts are generated at.
type Scale string

// Hypothesis run scales.
const (
	ScaleSmoke Scale = "smoke"
	ScaleFull  Scale = "full"
)

// ParseScale converts a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case ScaleSmoke, ScaleFull:
		return Scale(s), nil
	default:
		return "", fmt.Errorf("unknown scale %q (want %q or %q)", s, ScaleSmoke, ScaleFull)
	}
}

// Metric is one named measurement of a hypothesis run. Metrics are ordered
// slices, not maps, so reports render identically on every run.
type Metric struct {
	Name  string
	Value float64
}

// Check is one machine-checked predicate verdict.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// SeedResult is the outcome of one seeded run of a hypothesis.
type SeedResult struct {
	Seed    uint64
	Metrics []Metric
	Checks  []Check
}

// Hypothesis is a registered falsifiable experiment.
type Hypothesis struct {
	// Name is the slug used on the command line and as the artifact
	// directory name, e.g. "h1-soft-cdv-utilization".
	Name string
	// Title is the one-line human heading.
	Title string
	// Statement is the falsifiable claim, quoted verbatim in FINDINGS.md.
	Statement string
	// Family groups related hypotheses, e.g. "admission-control".
	Family string
	// Controlled lists the variables held fixed across the comparison.
	Controlled []string
	// Varied names the single variable the experiment moves.
	Varied string
	// Seeds are the fixed seeds every run uses; determinism is part of the
	// contract, so the same seeds must reproduce the same FINDINGS.md.
	Seeds []uint64
	// Postmortem explains, ahead of time, what a falsification would mean
	// mechanistically. It is emitted only in falsified reports.
	Postmortem string
	// Run executes one seeded trial at the given scale.
	Run func(scale Scale, seed uint64) (SeedResult, error)
}

// Report is the judged outcome of running a hypothesis at one scale.
type Report struct {
	Hypothesis *Hypothesis
	Scale      Scale
	Results    []SeedResult
}

// Confirmed reports whether every predicate passed for every seed.
func (r *Report) Confirmed() bool {
	for _, res := range r.Results {
		for _, c := range res.Checks {
			if !c.Pass {
				return false
			}
		}
	}
	return true
}

// FailedChecks lists every failing predicate as "seed/check: detail".
func (r *Report) FailedChecks() []string {
	var out []string
	for _, res := range r.Results {
		for _, c := range res.Checks {
			if !c.Pass {
				out = append(out, fmt.Sprintf("seed %d / %s: %s", res.Seed, c.Name, c.Detail))
			}
		}
	}
	return out
}

var hypothesisRegistry = map[string]*Hypothesis{}

// Register adds a hypothesis to the registry; duplicate or malformed
// registrations panic, since they are programming errors in init funcs.
func Register(h *Hypothesis) {
	switch {
	case h == nil || h.Name == "" || h.Run == nil || len(h.Seeds) == 0:
		panic("experiments: Register of incomplete hypothesis")
	case hypothesisRegistry[h.Name] != nil:
		panic(fmt.Sprintf("experiments: duplicate hypothesis %q", h.Name))
	}
	hypothesisRegistry[h.Name] = h
}

// Hypotheses returns every registered hypothesis sorted by name.
func Hypotheses() []*Hypothesis {
	out := make([]*Hypothesis, 0, len(hypothesisRegistry))
	for _, h := range hypothesisRegistry {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupHypothesis finds a hypothesis by name.
func LookupHypothesis(name string) (*Hypothesis, bool) {
	h, ok := hypothesisRegistry[name]
	return h, ok
}

// RunHypothesis executes every declared seed at the given scale. A run
// error (as opposed to a failed predicate) aborts: it means the experiment
// could not produce evidence either way.
func RunHypothesis(h *Hypothesis, scale Scale) (*Report, error) {
	rep := &Report{Hypothesis: h, Scale: scale}
	for _, seed := range h.Seeds {
		res, err := h.Run(scale, seed)
		if err != nil {
			return nil, fmt.Errorf("hypothesis %s seed %d: %w", h.Name, seed, err)
		}
		res.Seed = seed
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// WriteFindings renders the report as a FINDINGS.md document. The output
// is a pure function of the report, so re-running at the same seeds and
// scale reproduces the committed artifact byte for byte.
func (r *Report) WriteFindings(w io.Writer) error {
	h := r.Hypothesis
	status := "CONFIRMED"
	if !r.Confirmed() {
		status = "FALSIFIED"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", h.Title)
	fmt.Fprintf(&b, "- **Status**: %s\n", status)
	fmt.Fprintf(&b, "- **Family**: %s\n", h.Family)
	fmt.Fprintf(&b, "- **Scale**: %s\n", r.Scale)
	fmt.Fprintf(&b, "- **Seeds**: %s\n", seedList(h.Seeds))
	fmt.Fprintf(&b, "\n## Hypothesis\n\n> %s\n", h.Statement)
	fmt.Fprintf(&b, "\n## Experiment Design\n\n")
	fmt.Fprintf(&b, "- **Controlled variables**:\n")
	for _, c := range h.Controlled {
		fmt.Fprintf(&b, "  - %s\n", c)
	}
	fmt.Fprintf(&b, "- **Varied variable**: %s\n", h.Varied)
	fmt.Fprintf(&b, "- **Predicates**: every check in the table below must pass for every seed.\n")

	fmt.Fprintf(&b, "\n## Results\n\n")
	if len(r.Results) > 0 {
		fmt.Fprintf(&b, "| Seed |")
		for _, m := range r.Results[0].Metrics {
			fmt.Fprintf(&b, " %s |", m.Name)
		}
		fmt.Fprintf(&b, "\n|---|")
		for range r.Results[0].Metrics {
			fmt.Fprintf(&b, "---|")
		}
		fmt.Fprintf(&b, "\n")
		for _, res := range r.Results {
			fmt.Fprintf(&b, "| %d |", res.Seed)
			for _, m := range res.Metrics {
				fmt.Fprintf(&b, " %s |", formatMetric(m.Value))
			}
			fmt.Fprintf(&b, "\n")
		}
	}

	fmt.Fprintf(&b, "\n## Checks\n\n| Seed | Check | Verdict | Detail |\n|---|---|---|---|\n")
	for _, res := range r.Results {
		for _, c := range res.Checks {
			verdict := "pass"
			if !c.Pass {
				verdict = "FAIL"
			}
			fmt.Fprintf(&b, "| %d | %s | %s | %s |\n", res.Seed, c.Name, verdict, c.Detail)
		}
	}

	if status == "FALSIFIED" {
		fmt.Fprintf(&b, "\n## Postmortem\n\n%s\n\nFailing predicates:\n\n", h.Postmortem)
		for _, f := range r.FailedChecks() {
			fmt.Fprintf(&b, "- %s\n", f)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFindingsFile writes the report to dir/<name>/FINDINGS.md, creating
// the directory, and returns the path written.
func (r *Report) WriteFindingsFile(dir string) (string, error) {
	sub := filepath.Join(dir, r.Hypothesis.Name)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(sub, "FINDINGS.md")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := r.WriteFindings(f)
	cerr := f.Close()
	if werr != nil {
		return "", werr
	}
	return path, cerr
}

func seedList(seeds []uint64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ", ")
}

// formatMetric renders counts without decimals and ratios with four
// significant digits, keeping the tables stable and readable.
func formatMetric(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
