package experiments

import (
	"fmt"

	"atmcac/internal/rtnet"
	"atmcac/internal/sim"
)

// TightnessConfig parameterizes the bound-tightness study.
type TightnessConfig struct {
	// RingNodes defaults to 8 and Terminals to 2.
	RingNodes int
	Terminals int
	// Loads are the symmetric loads to sweep; default 0.1..0.6 step 0.1.
	Loads []float64
	// Slots is the per-point simulation horizon; default 40000.
	Slots uint64
}

func (c TightnessConfig) withDefaults() TightnessConfig {
	if c.RingNodes == 0 {
		c.RingNodes = 8
	}
	if c.Terminals == 0 {
		c.Terminals = 2
	}
	if len(c.Loads) == 0 {
		for b := 0.1; b <= 0.6+1e-9; b += 0.1 {
			c.Loads = append(c.Loads, b)
		}
	}
	if c.Slots == 0 {
		c.Slots = 40000
	}
	return c
}

// Tightness sweeps the symmetric load and reports, per admissible point,
// the analytic worst-case end-to-end bound next to the worst delay actually
// measured with greedy (adversarial) sources — quantifying how conservative
// the worst-case analysis is in practice. Returns two series sharing the
// load axis: "analytic bound" and "measured max (greedy)".
func Tightness(cfg TightnessConfig) ([]Series, error) {
	cfg = cfg.withDefaults()
	analytic := Series{Label: "analytic bound"}
	measured := Series{Label: "measured max (greedy)"}
	for _, load := range cfg.Loads {
		res, err := ValidateRTnet(ValidationConfig{
			RingNodes: cfg.RingNodes,
			Terminals: cfg.Terminals,
			Load:      load,
			Slots:     cfg.Slots,
			Mode:      sim.Greedy,
		})
		if err != nil {
			return nil, fmt.Errorf("tightness at load %g: %w", load, err)
		}
		if !res.Feasible {
			break // the CAC's admission limit ends the sweep
		}
		if !res.Holds() {
			return nil, fmt.Errorf("tightness at load %g: guarantee violated: %s", load, res)
		}
		analytic.Points = append(analytic.Points, Point{X: load, Y: res.AnalyticBound})
		measured.Points = append(measured.Points, Point{X: load, Y: float64(res.MeasuredMaxDelay)})
	}
	if len(analytic.Points) == 0 {
		return nil, fmt.Errorf("tightness: no admissible load on a %d-node ring with %d terminals (%d cells)",
			cfg.RingNodes, cfg.Terminals, rtnet.DefaultQueueCells)
	}
	return []Series{analytic, measured}, nil
}
