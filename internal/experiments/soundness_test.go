package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/sim"
	"atmcac/internal/traffic"
)

// randomScenario is a randomly generated multi-hop admission problem: a
// line of switches and a set of connections over random contiguous
// subpaths with random VBR descriptors.
type randomScenario struct {
	hops    int
	queue   float64
	conns   []randomConn
	jitterW uint64
	mode    sim.SourceMode
}

type randomConn struct {
	spec  traffic.Spec
	first int // first switch index
	last  int // last switch index (inclusive)
}

func genScenario(rng *rand.Rand) randomScenario {
	sc := randomScenario{
		hops:  2 + rng.Intn(3),
		queue: 64,
		mode:  sim.Greedy,
	}
	if rng.Intn(2) == 0 {
		sc.mode = sim.Random
	}
	if rng.Intn(2) == 0 {
		sc.jitterW = uint64(8 + rng.Intn(48))
	}
	k := 2 + rng.Intn(5)
	for i := 0; i < k; i++ {
		pcr := 0.05 + 0.45*rng.Float64()
		scr := pcr * (0.05 + 0.3*rng.Float64())
		// Keep the aggregate sustained rate comfortably stable.
		scr = scr / float64(k)
		if scr > pcr {
			scr = pcr
		}
		mbs := float64(1 + rng.Intn(12))
		first := rng.Intn(sc.hops)
		last := first + rng.Intn(sc.hops-first)
		sc.conns = append(sc.conns, randomConn{
			spec:  traffic.VBR(pcr, scr, mbs),
			first: first,
			last:  last,
		})
	}
	return sc
}

// analyticBounds installs the scenario into a CAC network and returns each
// connection's end-to-end computed bound, or feasible=false when the random
// draw exceeds the queue budgets.
func analyticBounds(t *testing.T, sc randomScenario) (bounds []float64, feasible bool) {
	t.Helper()
	n := core.NewNetwork(core.HardCDV{})
	for h := 0; h < sc.hops; h++ {
		if _, err := n.AddSwitch(core.SwitchConfig{
			Name:       fmt.Sprintf("sw%d", h),
			QueueCells: map[core.Priority]float64{1: sc.queue},
		}); err != nil {
			t.Fatal(err)
		}
	}
	routes := make([]core.Route, len(sc.conns))
	for i, c := range sc.conns {
		route := make(core.Route, 0, c.last-c.first+1)
		for h := c.first; h <= c.last; h++ {
			in := core.PortID(0) // transit: the shared inter-switch link
			if h == c.first {
				in = core.PortID(100 + i) // entry: the connection's own access link
			}
			route = append(route, core.Hop{Switch: fmt.Sprintf("sw%d", h), In: in, Out: 0})
		}
		routes[i] = route
		err := n.Install(core.ConnRequest{
			ID:        core.ConnID(fmt.Sprintf("c%d", i)),
			Spec:      c.spec,
			Priority:  1,
			Route:     route,
			SourceCDV: float64(sc.jitterW),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		return nil, false
	}
	bounds = make([]float64, len(sc.conns))
	for i := range sc.conns {
		d, err := n.RouteBound(routes[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		bounds[i] = d
	}
	return bounds, true
}

// simulate drives the identical scenario cell by cell and returns each
// connection's measured worst-case end-to-end queueing delay.
func simulate(t *testing.T, sc randomScenario, seed int64) []uint64 {
	t.Helper()
	n := sim.New()
	switches := make([]*sim.Switch, sc.hops)
	for h := range switches {
		sw, err := n.AddSwitch(fmt.Sprintf("sw%d", h), map[sim.Priority]int{1: int(sc.queue)})
		if err != nil {
			t.Fatal(err)
		}
		switches[h] = sw
	}
	for h := 0; h+1 < sc.hops; h++ {
		if err := n.Link(switches[h], 0, switches[h+1], 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range sc.conns {
		for h := c.first; h < c.last; h++ {
			if err := switches[h].SetRoute(i, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
		// Final hop: a dedicated sink port.
		if err := switches[c.last].SetRoute(i, 1000+i, 1); err != nil {
			t.Fatal(err)
		}
		if err := n.AddSource(sim.SourceConfig{
			VC: i, Spec: c.spec, Dest: switches[c.first], InPort: 100 + i,
			Mode: sc.mode, Seed: seed + int64(i)*977,
			JitterWindow: sc.jitterW,
			Start:        uint64(seed%7) * uint64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := n.Run(40000)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, len(sc.conns))
	for i := range sc.conns {
		vs := stats.PerVC[i]
		if vs.Cells == 0 {
			t.Fatalf("connection %d delivered nothing", i)
		}
		out[i] = vs.MaxDelay
	}
	return out
}

// Model alignment note: in the simulation a connection exits its last
// switch via a dedicated, uncontended sink port, while the analytic route
// books its last hop on the shared output port 0 (where RouteBound reads
// the full competing aggregate's bound). The analytic side therefore
// over-counts the final hop, which keeps the comparison sound in the
// direction being tested (analytic >= simulated).

// TestRandomizedEndToEndSoundness fuzzes whole admission problems: for
// every feasible random scenario, every conforming source schedule must
// stay within the CAC's per-connection end-to-end bound, and no queue may
// drop a cell.
func TestRandomizedEndToEndSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	tested := 0
	for trial := 0; trial < 40; trial++ {
		sc := genScenario(rng)
		bounds, feasible := analyticBounds(t, sc)
		if !feasible {
			continue
		}
		tested++
		measured := simulate(t, sc, int64(trial+1))
		for i := range sc.conns {
			if float64(measured[i]) > bounds[i]+1e-9 {
				t.Errorf("trial %d conn %d (%v, hops %d-%d, jitter %d, mode %d): measured %d > bound %.2f",
					trial, i, sc.conns[i].spec, sc.conns[i].first, sc.conns[i].last,
					sc.jitterW, sc.mode, measured[i], bounds[i])
			}
		}
	}
	if tested < 10 {
		t.Fatalf("only %d of 40 random scenarios were feasible; generator too aggressive", tested)
	}
	t.Logf("validated %d feasible random scenarios", tested)
}
