package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/sim"
)

// buildRingSim maps a set of RTnet broadcast connection requests (primary
// ring only) onto a cell-level simulation of the ring, honouring each
// request's priority. Each request's VC is its index; delivery uses a
// per-connection sink port. The sourceCfg hook fills per-source fields
// (mode, seed, jitter) on a prepared config.
func buildRingSim(ringNodes int, queueCaps map[sim.Priority]int, reqs []core.ConnRequest,
	sourceCfg func(i int, cfg *sim.SourceConfig)) (*sim.Network, error) {

	simNet := sim.New()
	switches := make([]*sim.Switch, ringNodes)
	for i := range switches {
		sw, err := simNet.AddSwitch(rtnet.SwitchName(i), queueCaps)
		if err != nil {
			return nil, err
		}
		switches[i] = sw
	}
	for i := range switches {
		if err := simNet.Link(switches[i], 0, switches[(i+1)%ringNodes], 0); err != nil {
			return nil, err
		}
	}
	for i, req := range reqs {
		origin, err := switchIndex(req.Route[0].Switch)
		if err != nil {
			return nil, err
		}
		prio := sim.Priority(req.Priority)
		for h := range req.Route {
			if err := switches[(origin+h)%ringNodes].SetRoute(i, 0, prio); err != nil {
				return nil, err
			}
		}
		last := (origin + len(req.Route)) % ringNodes
		if err := switches[last].SetRoute(i, 1000+i, prio); err != nil {
			return nil, err
		}
		cfg := sim.SourceConfig{
			VC:     i,
			Spec:   req.Spec,
			Dest:   switches[origin],
			InPort: int(req.Route[0].In),
		}
		if sourceCfg != nil {
			sourceCfg(i, &cfg)
		}
		if err := simNet.AddSource(cfg); err != nil {
			return nil, err
		}
	}
	return simNet, nil
}

// switchIndex parses the node number out of an rtnet switch name.
func switchIndex(name string) (int, error) {
	digits := strings.TrimPrefix(name, "ring")
	i, err := strconv.Atoi(digits)
	if err != nil {
		return 0, fmt.Errorf("experiments: not an RTnet switch name: %q", name)
	}
	return i, nil
}

// SoftRiskConfig parameterizes the soft-CAC risk experiment.
type SoftRiskConfig struct {
	// RingNodes defaults to 8, Terminals to 2.
	RingNodes int
	Terminals int
	// HotShare is the asymmetric hot-terminal share; default 0.3 (where
	// hard and soft diverge noticeably, per Figure 13).
	HotShare float64
	// Slots is the simulation horizon; default 60000.
	Slots uint64
	// Seed drives the randomized sources.
	Seed int64
}

func (c SoftRiskConfig) withDefaults() SoftRiskConfig {
	if c.RingNodes == 0 {
		c.RingNodes = 8
	}
	if c.Terminals == 0 {
		c.Terminals = 2
	}
	if c.HotShare == 0 {
		c.HotShare = 0.3
	}
	if c.Slots == 0 {
		c.Slots = 60000
	}
	return c
}

// SoftRiskReport quantifies what the soft CAC risks: it finds a load the
// soft policy admits but the hard policy rejects, then stresses that
// soft-admitted configuration in the cell-level simulator with adversarial
// jittered sources on budget-sized queues.
type SoftRiskReport struct {
	Config SoftRiskConfig
	// HardMaxLoad and SoftMaxLoad bracket the policies' admission limits.
	HardMaxLoad float64
	SoftMaxLoad float64
	// ProbeLoad is the soft-admitted, hard-rejected load that was
	// simulated (midpoint of the gap). Zero when the policies agree to
	// within the search resolution (no gap to probe).
	ProbeLoad float64
	// Drops counts cells lost at the budget-sized FIFOs during the
	// adversarial run; MaxQueueDelay is the worst single-hop queueing
	// delay observed against the QueueBudget.
	Drops         int
	MaxQueueDelay uint64
	QueueBudget   float64
	// HardBoundViolated reports whether the adversary pushed any single
	// hop past the per-hop budget the hard CAC enforces — the event whose
	// improbability the soft CAC bets on.
	HardBoundViolated bool
}

// String renders the report.
func (r SoftRiskReport) String() string {
	if r.ProbeLoad == 0 {
		return fmt.Sprintf("soft-risk: hard and soft admit the same load (%.3f); nothing to probe",
			r.HardMaxLoad)
	}
	verdict := "the adversary did not realize the worst case within the horizon"
	if r.HardBoundViolated {
		verdict = "the adversary exceeded the per-hop budget — the hard CAC's caution was warranted"
	}
	return fmt.Sprintf(
		"soft-risk: hard admits %.3f, soft admits %.3f; probing %.3f (soft-only)\n"+
			"  adversarial run: max single-hop delay %d vs budget %.0f cells, %d drops\n"+
			"  %s",
		r.HardMaxLoad, r.SoftMaxLoad, r.ProbeLoad,
		r.MaxQueueDelay, r.QueueBudget, r.Drops, verdict)
}

// SoftRisk runs the experiment.
func SoftRisk(cfg SoftRiskConfig) (SoftRiskReport, error) {
	cfg = cfg.withDefaults()
	report := SoftRiskReport{Config: cfg, QueueBudget: rtnet.DefaultQueueCells}

	maxLoad := func(policy core.CDVPolicy) (float64, error) {
		base := AsymmetricConfig{
			RingNodes: cfg.RingNodes,
			Terminals: []int{cfg.Terminals},
			Policy:    policy,
			Tolerance: 1.0 / 256,
		}.withDefaults()
		return maxAsymmetricLoad(base, cfg.Terminals, cfg.HotShare)
	}
	var err error
	if report.HardMaxLoad, err = maxLoad(core.HardCDV{}); err != nil {
		return SoftRiskReport{}, err
	}
	if report.SoftMaxLoad, err = maxLoad(core.SoftCDV{}); err != nil {
		return SoftRiskReport{}, err
	}
	if report.SoftMaxLoad <= report.HardMaxLoad+1.0/128 {
		return report, nil // no exploitable gap
	}
	report.ProbeLoad = (report.HardMaxLoad + report.SoftMaxLoad) / 2

	// Build the soft-admitted workload and verify it really is admitted by
	// soft and rejected by hard.
	softNet, err := rtnet.New(rtnet.Config{
		RingNodes:        cfg.RingNodes,
		TerminalsPerNode: cfg.Terminals,
		Policy:           core.SoftCDV{},
	})
	if err != nil {
		return SoftRiskReport{}, err
	}
	workload, err := softNet.AsymmetricWorkload(report.ProbeLoad, cfg.HotShare, 1, 1)
	if err != nil {
		return SoftRiskReport{}, err
	}
	if err := softNet.InstallAll(workload); err != nil {
		return SoftRiskReport{}, err
	}
	if v, err := softNet.Audit(); err != nil || len(v) > 0 {
		return SoftRiskReport{}, fmt.Errorf("probe load not soft-admissible: %v %v", v, err)
	}

	// Adversarial simulation: greedy sources behind jitter stages of one
	// hop's budget (physically plausible upstream distortion), on queues
	// sized exactly to the budget.
	simNet, err := buildRingSim(cfg.RingNodes,
		map[sim.Priority]int{1: rtnet.DefaultQueueCells}, workload,
		func(i int, sc *sim.SourceConfig) {
			sc.Mode = sim.Random
			sc.Seed = cfg.Seed + int64(i)*104729
			sc.JitterWindow = rtnet.DefaultQueueCells
			sc.Start = uint64(i % 5)
		})
	if err != nil {
		return SoftRiskReport{}, err
	}
	stats, err := simNet.Run(cfg.Slots)
	if err != nil {
		return SoftRiskReport{}, err
	}
	for _, qs := range stats.Queues {
		report.Drops += qs.Drops
		if qs.MaxDelay > report.MaxQueueDelay {
			report.MaxQueueDelay = qs.MaxDelay
		}
	}
	report.HardBoundViolated = report.Drops > 0 ||
		float64(report.MaxQueueDelay) > report.QueueBudget
	return report, nil
}
