package experiments

import (
	"strings"
	"testing"
)

func TestRegistryContainsShippedHypotheses(t *testing.T) {
	want := []string{
		"h1-soft-cdv-utilization",
		"h2-overload-degradation-storm",
		"h3-capacity-vs-topology",
	}
	all := Hypotheses()
	if len(all) != len(want) {
		t.Fatalf("registry holds %d hypotheses, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("registry[%d] = %q, want %q (sorted by name)", i, all[i].Name, name)
		}
		h, ok := LookupHypothesis(name)
		if !ok {
			t.Fatalf("LookupHypothesis(%q) missed", name)
		}
		if h.Statement == "" || h.Family == "" || len(h.Controlled) == 0 ||
			h.Varied == "" || h.Postmortem == "" {
			t.Errorf("%s: incomplete declaration %+v", name, h)
		}
		if len(h.Seeds) < 3 {
			t.Errorf("%s: %d seeds, want >= 3", name, len(h.Seeds))
		}
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("smoke"); err != nil || s != ScaleSmoke {
		t.Errorf("ParseScale(smoke) = %v, %v", s, err)
	}
	if s, err := ParseScale("full"); err != nil || s != ScaleFull {
		t.Errorf("ParseScale(full) = %v, %v", s, err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted an unknown scale")
	}
}

// TestHypothesesConfirmedAtSmoke is the predicate-regression gate CI runs:
// every registered hypothesis must run from its fixed seeds and every
// machine-checked predicate must pass.
func TestHypothesesConfirmedAtSmoke(t *testing.T) {
	for _, h := range Hypotheses() {
		h := h
		t.Run(h.Name, func(t *testing.T) {
			rep, err := RunHypothesis(h, ScaleSmoke)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Confirmed() {
				t.Fatalf("falsified:\n  %s", strings.Join(rep.FailedChecks(), "\n  "))
			}
		})
	}
}

// TestFindingsDeterministic pins the reproducibility contract of the
// committed artifacts: two runs at the same scale render byte-identical
// FINDINGS.md documents.
func TestFindingsDeterministic(t *testing.T) {
	for _, h := range Hypotheses() {
		h := h
		t.Run(h.Name, func(t *testing.T) {
			render := func() string {
				rep, err := RunHypothesis(h, ScaleSmoke)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				var b strings.Builder
				if err := rep.WriteFindings(&b); err != nil {
					t.Fatalf("render: %v", err)
				}
				return b.String()
			}
			a, b := render(), render()
			if a != b {
				t.Fatal("two identical runs rendered different FINDINGS.md")
			}
			for _, want := range []string{
				"# " + h.Title,
				"- **Status**: CONFIRMED",
				"## Hypothesis",
				"## Experiment Design",
				"## Results",
				"## Checks",
				h.Statement,
			} {
				if !strings.Contains(a, want) {
					t.Errorf("FINDINGS.md missing %q", want)
				}
			}
			if strings.Contains(a, "## Postmortem") {
				t.Error("confirmed report carries a postmortem section")
			}
		})
	}
}

// TestFindingsFalsifiedRendersPostmortem exercises the falsified path with
// a synthetic hypothesis, without needing a real experiment to regress.
func TestFindingsFalsifiedRendersPostmortem(t *testing.T) {
	h := &Hypothesis{
		Name:       "synthetic",
		Title:      "Synthetic: always falsified",
		Statement:  "this claim is wrong by construction",
		Family:     "harness-test",
		Controlled: []string{"nothing"},
		Varied:     "nothing",
		Seeds:      []uint64{7},
		Postmortem: "the harness is under test",
		Run: func(Scale, uint64) (SeedResult, error) {
			return SeedResult{
				Metrics: []Metric{{Name: "x", Value: 1.5}},
				Checks:  []Check{{Name: "always-fails", Pass: false, Detail: "by design"}},
			}, nil
		},
	}
	rep, err := RunHypothesis(h, ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Confirmed() {
		t.Fatal("synthetic hypothesis confirmed")
	}
	var b strings.Builder
	if err := rep.WriteFindings(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"- **Status**: FALSIFIED",
		"## Postmortem",
		"the harness is under test",
		"seed 7 / always-fails: by design",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("falsified FINDINGS.md missing %q", want)
		}
	}
	if got := rep.FailedChecks(); len(got) != 1 {
		t.Errorf("FailedChecks = %v, want exactly one entry", got)
	}
}

func TestWriteFindingsFile(t *testing.T) {
	h, _ := LookupHypothesis("h1-soft-cdv-utilization")
	rep, err := RunHypothesis(h, ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := rep.WriteFindingsFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "h1-soft-cdv-utilization/FINDINGS.md") {
		t.Errorf("unexpected artifact path %q", path)
	}
}
