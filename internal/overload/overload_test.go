package overload

import (
	"context"
	"sync"
	"testing"
	"time"
)

// drain admits as many requests of class c as the limiter allows,
// returning the count (releases immediately so only the bucket gates).
func drain(l *Limiter, c Class, max int) int {
	n := 0
	for i := 0; i < max; i++ {
		d, release := l.Acquire(c)
		if !d.Admitted {
			break
		}
		release()
		n++
	}
	return n
}

func TestLimiterDegradationOrder(t *testing.T) {
	// Burst 16: reads admitted while tokens >= 9, lows while >= 5,
	// highs while >= 1.
	clk := NewManualClock()
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 16, Now: clk.Now})

	if got := drain(l, ClassRead, 100); got != 8 {
		t.Errorf("reads drained %d tokens, want 8 (down to the 50%% reserve)", got)
	}
	if got := drain(l, ClassSetupLow, 100); got != 4 {
		t.Errorf("low setups drained %d, want 4 (down to the 25%% reserve)", got)
	}
	if got := drain(l, ClassSetupHigh, 100); got != 4 {
		t.Errorf("high setups drained %d, want 4 (down to empty)", got)
	}
	// Everything non-recovery is now shed; recovery still proceeds.
	for _, c := range []Class{ClassRead, ClassSetupLow, ClassSetupHigh} {
		d, release := l.Acquire(c)
		if d.Admitted {
			t.Fatalf("%s admitted on an empty bucket", c)
		}
		if release != nil {
			t.Fatalf("%s shed with non-nil release", c)
		}
		if d.RetryAfter <= 0 {
			t.Errorf("%s shed without a retry-after hint", c)
		}
	}
	d, release := l.Acquire(ClassRecovery)
	if !d.Admitted {
		t.Fatal("recovery shed — teardowns must always make progress")
	}
	release()

	if floor := l.HighPriorityFloor(); floor != 4 {
		t.Errorf("HighPriorityFloor = %d, want 4", floor)
	}

	st := l.Stats()
	// Each drain's terminating attempt plus the explicit probe above.
	if st.Shed["read"] != 2 || st.Shed["setup-low"] != 2 || st.Shed["setup-high"] != 2 {
		t.Errorf("shed counters = %v, want two per non-recovery class", st.Shed)
	}
	if st.Admitted["recovery"] != 1 {
		t.Errorf("recovery admitted counter = %v", st.Admitted)
	}
}

func TestLimiterHighPriorityFloorUnderAdversarialOrder(t *testing.T) {
	// Even if read and low traffic consumes the bucket first, the low
	// reserve leaves floor(Burst/4) tokens only high setups can use.
	clk := NewManualClock()
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 16, Now: clk.Now})
	drain(l, ClassRead, 100)
	drain(l, ClassSetupLow, 100)
	if got, want := drain(l, ClassSetupHigh, 100), l.HighPriorityFloor(); got < want {
		t.Errorf("high-priority goodput %d below the documented floor %d", got, want)
	}
}

func TestLimiterRetryAfterTracksRefill(t *testing.T) {
	clk := NewManualClock()
	l := NewLimiter(LimiterConfig{Rate: 2, Burst: 4, Now: clk.Now})
	drain(l, ClassSetupHigh, 100) // empty the bucket
	d, _ := l.Acquire(ClassSetupHigh)
	if d.Admitted {
		t.Fatal("admitted on empty bucket")
	}
	// Needs 1 token at 2 tokens/s => 500ms.
	if d.RetryAfter != 500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 500ms", d.RetryAfter)
	}
	clk.Advance(500 * time.Millisecond)
	d, release := l.Acquire(ClassSetupHigh)
	if !d.Admitted {
		t.Fatalf("still shed after the hinted refill: %+v", d)
	}
	release()
}

func TestLimiterConcurrencyCap(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxInFlight: 2})
	d1, r1 := l.Acquire(ClassSetupHigh)
	d2, r2 := l.Acquire(ClassSetupHigh)
	if !d1.Admitted || !d2.Admitted {
		t.Fatal("first two not admitted")
	}
	if d, _ := l.Acquire(ClassSetupHigh); d.Admitted {
		t.Fatal("third in-flight admitted past MaxInFlight=2")
	} else if d.Reason != "concurrency" {
		t.Errorf("Reason = %q, want concurrency", d.Reason)
	}
	// Recovery bypasses the window.
	if d, release := l.Acquire(ClassRecovery); !d.Admitted {
		t.Fatal("recovery blocked by the concurrency window")
	} else {
		release()
	}
	r1()
	if d, release := l.Acquire(ClassSetupHigh); !d.Admitted {
		t.Fatal("slot not reusable after release")
	} else {
		release()
	}
	r2()
}

func TestLimiterConcurrentAccounting(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxInFlight: 4})
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, release := l.Acquire(ClassSetupHigh)
			if d.Admitted {
				mu.Lock()
				admitted++
				mu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after all releases, want 0", st.InFlight)
	}
	if got := st.Admitted[ClassSetupHigh.String()]; got != uint64(admitted) {
		t.Errorf("admitted counter %d != observed %d", got, admitted)
	}
	if st.TotalShed()+uint64(admitted) != 64 {
		t.Errorf("admitted %d + shed %d != 64 requests", admitted, st.TotalShed())
	}
}

func TestBreakerOpensAndProbes(t *testing.T) {
	clk := NewManualClock()
	b := NewRouteBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Now: clk.Now})
	const route = "ring00>ring01>ring02"
	for i := 0; i < 2; i++ {
		b.RecordFailure(route)
		if !b.Allow(route) {
			t.Fatalf("open after only %d failures", i+1)
		}
	}
	b.RecordFailure(route)
	if b.Allow(route) {
		t.Fatal("not open after threshold failures")
	}
	if b.OpenCount() != 1 {
		t.Errorf("OpenCount = %d, want 1", b.OpenCount())
	}
	clk.Advance(time.Second)
	if !b.Allow(route) {
		t.Fatal("cooldown elapsed but probe refused")
	}
	// A failing probe re-opens immediately.
	b.RecordFailure(route)
	if b.Allow(route) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	clk.Advance(time.Second)
	b.RecordSuccess(route)
	if !b.Allow(route) || b.OpenCount() != 0 {
		t.Fatal("success did not close the breaker")
	}
	// Closed means the failure count restarts from zero.
	b.RecordFailure(route)
	if !b.Allow(route) {
		t.Fatal("single failure after close tripped the breaker")
	}
}

func TestBackoffHonorsHintAndGrows(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond,
		Jitter: 0.5, Rand: func() float64 { return 0.5 }} // jitter factor 1.0
	if got := b.Next(0); got != 10*time.Millisecond {
		t.Errorf("first delay = %v, want 10ms", got)
	}
	if got := b.Next(0); got != 20*time.Millisecond {
		t.Errorf("second delay = %v, want 20ms", got)
	}
	// The server hint wins when it exceeds the exponential component.
	if got := b.Next(300 * time.Millisecond); got != 300*time.Millisecond {
		t.Errorf("hinted delay = %v, want 300ms", got)
	}
	for i := 0; i < 10; i++ {
		if got := b.Next(0); got > 80*time.Millisecond {
			t.Fatalf("delay %v exceeded Max", got)
		}
	}
}

func TestSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); err != context.Canceled {
		t.Errorf("Sleep on cancelled ctx = %v, want Canceled", err)
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Errorf("Sleep = %v", err)
	}
}
