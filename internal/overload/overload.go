// Package overload implements control-plane overload protection for the
// central CAC server: a token-bucket + concurrency limiter with
// priority-aware shedding, a per-route circuit breaker for crankback, and
// bounded exponential backoff with jitter for clients.
//
// The paper's admission control (Section 4.3) protects the data plane —
// once admitted, a connection's delay bound holds — but a setup storm can
// saturate the control plane itself and delay or drop the admission
// decisions hard real-time callers depend on. This package makes the
// degradation explicit and ordered: read-only operations are shed first,
// then low-priority setups, then high-priority setups; teardown and
// link-failure recovery are never shed, so the control plane can always
// unload itself. A shed request receives a typed "overloaded" answer with
// a retry-after hint, never a hang or a silent drop.
package overload

import (
	"sync"
	"time"
)

// Class orders control-plane operations by shedding priority. Lower
// values degrade last.
type Class int

const (
	// ClassRecovery covers operations that reduce or repair load —
	// teardown, fail-link, restore-link — plus the health probe operators
	// need to observe an overload. Never shed.
	ClassRecovery Class = iota
	// ClassSetupHigh is a priority-1 (hard real-time) connection setup.
	ClassSetupHigh
	// ClassSetupLow is a setup at priority 2 or below.
	ClassSetupLow
	// ClassRead is a read-only query: list, bound, inspect, audit.
	// Shed first.
	ClassRead

	numClasses
)

// String names the class for counters and error messages.
func (c Class) String() string {
	switch c {
	case ClassRecovery:
		return "recovery"
	case ClassSetupHigh:
		return "setup-high"
	case ClassSetupLow:
		return "setup-low"
	case ClassRead:
		return "read"
	default:
		return "unknown"
	}
}

// reserveFraction is the share of the token bucket kept out of reach of
// this class: a class is admitted only while the bucket holds more than
// reserveFraction*Burst tokens. Reads see the largest reserve (shed
// first); high-priority setups may drain the bucket to empty; recovery
// ignores the bucket entirely.
func (c Class) reserveFraction() float64 {
	switch c {
	case ClassSetupLow:
		return 0.25
	case ClassRead:
		return 0.5
	default:
		return 0
	}
}

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// ManualClock is a hand-advanced clock for deterministic overload
// injection: time moves only when the harness says so. Safe for
// concurrent use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock starts a manual clock at an arbitrary fixed origin.
func NewManualClock() *ManualClock {
	return &ManualClock{t: time.Unix(0, 0)}
}

// Now returns the current manual time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
