package overload

import (
	"context"
	"math/rand"
	"time"
)

// Backoff computes bounded exponential retry delays with jitter,
// honoring a server-provided retry-after hint: the delay is never
// shorter than the hint (the server knows its refill schedule) and the
// exponential component keeps uncoordinated clients from re-converging
// on the same instant.
//
// The zero value is usable; Next mutates the attempt counter, so a
// Backoff is per-request state, not shared.
type Backoff struct {
	// Base is the first exponential delay. Defaults to 10ms.
	Base time.Duration
	// Max caps the exponential component (the hint may exceed it).
	// Defaults to 2s.
	Max time.Duration
	// Jitter is the relative jitter amplitude in [0, 1): each delay is
	// scaled by a uniform factor in [1-Jitter, 1+Jitter]. Defaults to
	// 0.2.
	Jitter float64
	// Rand returns a uniform sample in [0, 1); nil means math/rand.
	// Injectable for deterministic tests.
	Rand func() float64

	attempt int
}

// Next returns the delay before the next retry, given the server's
// retry-after hint (zero when the response carried none).
func (b *Backoff) Next(retryAfter time.Duration) time.Duration {
	base, max, jitter := b.Base, b.Max, b.Jitter
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if jitter <= 0 || jitter >= 1 {
		jitter = 0.2
	}
	d := base << b.attempt
	if d > max || d <= 0 { // <= 0 guards shift overflow
		d = max
	}
	if b.attempt < 30 {
		b.attempt++
	}
	r := rand.Float64
	if b.Rand != nil {
		r = b.Rand
	}
	d = time.Duration(float64(d) * (1 + jitter*(2*r()-1)))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// Attempts returns how many delays have been handed out.
func (b *Backoff) Attempts() int { return b.attempt }

// Sleep waits for d or until ctx is done, returning ctx.Err in the
// latter case — so a retry loop always respects the caller's deadline.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
