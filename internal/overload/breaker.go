package overload

import (
	"sync"
	"time"
)

// BreakerConfig parameterizes a RouteBreaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens a
	// route's breaker. Defaults to 3.
	Threshold int
	// Cooldown is how long an open breaker suppresses the route before
	// letting probes through again. Defaults to one second.
	Cooldown time.Duration
	// Now is the clock; nil means time.Now.
	Now Clock
}

// RouteBreaker is a per-route circuit breaker for crankback: after a
// link failure, every setup probing the dead route fails its CAC or
// link check, and unbounded re-probing turns one failure into a
// crankback storm. The breaker trips a route after Threshold
// consecutive failures and suppresses it for Cooldown, after which the
// next attempt is a probe: success closes the breaker, failure re-opens
// it for another cooldown.
type RouteBreaker struct {
	cfg BreakerConfig

	mu     sync.Mutex
	routes map[string]*routeState
}

type routeState struct {
	fails     int
	openUntil time.Time
}

// NewRouteBreaker returns a breaker over cfg.
func NewRouteBreaker(cfg BreakerConfig) *RouteBreaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &RouteBreaker{cfg: cfg, routes: make(map[string]*routeState)}
}

// Allow reports whether the route may be attempted now. An open breaker
// whose cooldown has elapsed allows the attempt (the probe) but stays
// primed: only RecordSuccess closes it.
func (b *RouteBreaker) Allow(route string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.routes[route]
	if !ok {
		return true
	}
	return !b.cfg.Now().Before(st.openUntil)
}

// RecordSuccess closes the route's breaker.
func (b *RouteBreaker) RecordSuccess(route string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.routes, route)
}

// RecordFailure counts one failed attempt; at Threshold consecutive
// failures the route opens for Cooldown. Failures past the threshold
// (e.g. the post-cooldown probe) re-arm the cooldown immediately.
func (b *RouteBreaker) RecordFailure(route string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.routes[route]
	if !ok {
		st = &routeState{}
		b.routes[route] = st
	}
	st.fails++
	if st.fails >= b.cfg.Threshold {
		st.openUntil = b.cfg.Now().Add(b.cfg.Cooldown)
	}
}

// OpenCount returns how many routes are currently suppressed.
func (b *RouteBreaker) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	open := 0
	for _, st := range b.routes {
		if now.Before(st.openUntil) {
			open++
		}
	}
	return open
}
