package overload

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// LimiterConfig parameterizes a Limiter.
type LimiterConfig struct {
	// Rate is the sustained control-plane admission rate in requests per
	// second (the token refill rate). Zero disables the token bucket —
	// only the concurrency cap applies.
	Rate float64
	// Burst is the bucket capacity in requests. The class reserves are
	// fractions of Burst, so it also fixes the degradation ladder: reads
	// shed below Burst/2 tokens, low-priority setups below Burst/4,
	// high-priority setups only when the bucket is empty. Defaults to
	// max(1, Rate) when zero and a rate is set.
	Burst float64
	// MaxInFlight caps concurrently executing non-recovery requests.
	// Zero means unlimited.
	MaxInFlight int
	// Now is the clock; nil means time.Now. Injectable for deterministic
	// tests.
	Now Clock
}

// Decision is the outcome of one Acquire.
type Decision struct {
	// Admitted is false when the request was shed.
	Admitted bool
	// RetryAfter hints when the shed class is likely admissible again.
	RetryAfter time.Duration
	// Reason says which limit shed the request ("rate" or "concurrency").
	Reason string
}

// Stats is a snapshot of the limiter's counters, keyed by class name.
// Exposed through the server's health report so operators can see an
// overload while it happens.
type Stats struct {
	Admitted map[string]uint64 `json:"admitted,omitempty"`
	Shed     map[string]uint64 `json:"shed,omitempty"`
	InFlight int               `json:"inFlight"`
}

// TotalShed sums shed counts over all classes.
func (s Stats) TotalShed() uint64 {
	var n uint64
	for _, v := range s.Shed {
		n += v
	}
	return n
}

// Limiter is a token-bucket + concurrency limiter with priority-aware
// shedding. Recovery-class requests are never shed and bypass the
// concurrency cap, so teardowns and link repairs always make progress —
// the control plane can unload itself even when saturated.
type Limiter struct {
	cfg LimiterConfig

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inflight int
	admitted [numClasses]uint64
	shed     [numClasses]uint64
}

// NewLimiter returns a limiter over cfg. A zero cfg admits everything
// (useful as an explicit no-op).
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = math.Max(1, cfg.Rate)
	}
	return &Limiter{cfg: cfg, tokens: cfg.Burst, last: cfg.Now()}
}

// refillLocked advances the bucket to the current time.
func (l *Limiter) refillLocked(now time.Time) {
	if l.cfg.Rate <= 0 {
		return
	}
	if dt := now.Sub(l.last).Seconds(); dt > 0 {
		l.tokens = math.Min(l.cfg.Burst, l.tokens+dt*l.cfg.Rate)
	}
	l.last = now
}

// Acquire admits or sheds one request of the given class. When admitted,
// release must be called exactly once after the request finishes; when
// shed, release is nil and the Decision carries the retry-after hint.
func (l *Limiter) Acquire(c Class) (Decision, func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.cfg.Now()
	l.refillLocked(now)

	if c == ClassRecovery {
		// Recovery always proceeds and does not touch the bucket: it
		// neither blocks on an empty bucket nor eats into the tokens
		// reserved for high-priority setups, so the HighPriorityFloor
		// guarantee holds even while repairs run.
		l.admitted[c]++
		return Decision{Admitted: true}, func() {}
	}

	if l.cfg.MaxInFlight > 0 && l.inflight >= l.cfg.MaxInFlight {
		l.shed[c]++
		return Decision{
			Admitted:   false,
			RetryAfter: l.retryAfterLocked(c),
			Reason:     "concurrency",
		}, nil
	}
	// The class may only drain the bucket down to its reserve: the
	// tokens below reserveFraction*Burst are held back for more
	// important classes, which is what makes the degradation order
	// deterministic rather than arrival-order luck.
	if l.cfg.Rate > 0 && l.tokens < 1+c.reserveFraction()*l.cfg.Burst {
		l.shed[c]++
		return Decision{
			Admitted:   false,
			RetryAfter: l.retryAfterLocked(c),
			Reason:     "rate",
		}, nil
	}
	if l.cfg.Rate > 0 {
		l.tokens--
	}
	l.inflight++
	l.admitted[c]++
	return Decision{Admitted: true}, func() {
		l.mu.Lock()
		l.inflight--
		l.mu.Unlock()
	}
}

// retryAfterLocked estimates when class c will next be admissible: the
// refill time from the current level to the class's admission threshold,
// floored at one millisecond so clients never spin.
func (l *Limiter) retryAfterLocked(c Class) time.Duration {
	const floor = time.Millisecond
	if l.cfg.Rate <= 0 {
		// Concurrency-only shedding: no refill schedule to predict, so
		// hint a modest fixed pause.
		return 50 * time.Millisecond
	}
	need := 1 + c.reserveFraction()*l.cfg.Burst - l.tokens
	if need <= 0 {
		return floor
	}
	d := time.Duration(need / l.cfg.Rate * float64(time.Second))
	if d < floor {
		d = floor
	}
	return d
}

// Stats snapshots the counters.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Admitted: make(map[string]uint64),
		Shed:     make(map[string]uint64),
		InFlight: l.inflight,
	}
	for c := Class(0); c < numClasses; c++ {
		if l.admitted[c] > 0 {
			st.Admitted[c.String()] = l.admitted[c]
		}
		if l.shed[c] > 0 {
			st.Shed[c.String()] = l.shed[c]
		}
	}
	return st
}

// TokensNow advances the bucket to the current time and returns the
// token level — a scrape-time gauge for the observability layer. With no
// rate configured it returns 0.
func (l *Limiter) TokensNow() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(l.cfg.Now())
	return l.tokens
}

// InFlight returns the number of admitted non-recovery requests currently
// executing.
func (l *Limiter) InFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// HighPriorityFloor returns the number of high-priority setups a full
// bucket admits even under the most adversarial concurrent arrival
// order: read and low-priority traffic cannot drain the bucket below the
// low-priority reserve, so at least reserveLow*Burst tokens remain for
// ClassSetupHigh. The overload soak test asserts goodput against this
// documented floor.
func (l *Limiter) HighPriorityFloor() int {
	if l.cfg.Rate <= 0 {
		return 0
	}
	return int(math.Floor(ClassSetupLow.reserveFraction() * l.cfg.Burst))
}

// String describes the limiter configuration for logs.
func (l *Limiter) String() string {
	return fmt.Sprintf("overload.Limiter{rate=%g/s burst=%g maxInFlight=%d}",
		l.cfg.Rate, l.cfg.Burst, l.cfg.MaxInFlight)
}
