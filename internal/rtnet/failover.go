package rtnet

import (
	"fmt"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// RTnet's fault tolerance (paper Section 5): the ring nodes are connected
// by dual counter-rotating 155 Mbps links, and a single link or node
// failure is healed by an FDDI-style hardware wrap: the two nodes adjacent
// to the failure fold the primary ring onto the secondary, producing one
// logical ring that traverses every node twice — once in each direction —
// over 2(R-1) directed links.
//
// The CAC consequence is that broadcast routes lengthen (up to about twice
// as many queueing points) and every connection must be re-validated
// against the wrapped topology; WrappedBroadcastRoute and the workload
// helpers below compute the degraded-mode admission problem.

// Secondary-ring ports of a ring node. The primary ring uses
// RingInPort/RingOutPort (0); terminals use 1..N; the secondary ring uses
// a disjoint range.
const (
	SecondaryRingInPort  core.PortID = 100
	SecondaryRingOutPort core.PortID = 100
)

// wrappedLink is one directed link of the healed logical ring.
type wrappedLink struct {
	from      int  // transmitting ring node
	secondary bool // true when the link belongs to the secondary ring
	to        int  // receiving ring node
}

// wrappedRing returns the directed links of the logical ring after the
// primary link failedFrom -> failedFrom+1 fails: the primary segment from
// failedFrom+1 all the way around to failedFrom, then the secondary
// segment back. Every node appears as a transmitter exactly twice except
// the wrap nodes, which transmit once on each ring like everyone else —
// the asymmetry is only in which links are unused.
func (n *Network) wrappedRing(failedFrom int) []wrappedLink {
	r := n.cfg.RingNodes
	links := make([]wrappedLink, 0, 2*(r-1))
	// Primary: failedFrom+1 -> failedFrom+2 -> ... -> failedFrom.
	for i := 0; i < r-1; i++ {
		from := (failedFrom + 1 + i) % r
		links = append(links, wrappedLink{from: from, to: (from + 1) % r})
	}
	// Secondary: failedFrom -> failedFrom-1 -> ... -> failedFrom+1.
	for i := 0; i < r-1; i++ {
		from := (failedFrom - i + r) % r
		links = append(links, wrappedLink{from: from, secondary: true, to: (from - 1 + r) % r})
	}
	return links
}

// WrappedBroadcastRoute returns the broadcast route of terminal t at node
// origin after the primary ring link failedFrom -> failedFrom+1 has failed
// and the ring has wrapped. The route follows the logical ring from the
// origin's position until every other ring node has received the cell,
// which can take up to 2(RingNodes-1)-1 queueing points — the capacity
// cost of degraded mode.
func (n *Network) WrappedBroadcastRoute(origin, t, failedFrom int) (core.Route, error) {
	r := n.cfg.RingNodes
	if origin < 0 || origin >= r {
		return nil, fmt.Errorf("%w: origin node %d", ErrConfig, origin)
	}
	if t < 0 || t >= n.cfg.TerminalsPerNode {
		return nil, fmt.Errorf("%w: terminal %d", ErrConfig, t)
	}
	if failedFrom < 0 || failedFrom >= r {
		return nil, fmt.Errorf("%w: failed link from node %d", ErrConfig, failedFrom)
	}
	ring := n.wrappedRing(failedFrom)
	// Find the first link transmitted by the origin node; the logical ring
	// visits every node, so one exists.
	start := -1
	for i, l := range ring {
		if l.from == origin {
			start = i
			break
		}
	}
	if start == -1 {
		return nil, fmt.Errorf("%w: origin %d not on wrapped ring", ErrConfig, origin)
	}
	visited := make(map[int]bool, r)
	visited[origin] = true
	route := core.Route{}
	for i := 0; i < len(ring) && len(visited) < r; i++ {
		l := ring[(start+i)%len(ring)]
		in, out := RingInPort, RingOutPort
		if l.secondary {
			in, out = SecondaryRingInPort, SecondaryRingOutPort
		}
		if len(route) == 0 {
			in = TerminalPort(t)
		} else {
			// The inbound direction is that of the previous logical link.
			prev := ring[(start+i-1+len(ring))%len(ring)]
			if prev.secondary {
				in = SecondaryRingInPort
			} else {
				in = RingInPort
			}
		}
		route = append(route, core.Hop{Switch: SwitchName(l.from), In: in, Out: out})
		visited[l.to] = true
	}
	if len(visited) < r {
		return nil, fmt.Errorf("%w: wrapped ring does not cover all nodes", ErrConfig)
	}
	return route, nil
}

// SymmetricWorkloadWrapped builds the symmetric cyclic workload of
// SymmetricWorkload over the wrapped (degraded) topology.
func (n *Network) SymmetricWorkloadWrapped(load float64, prio core.Priority, failedFrom int) ([]core.ConnRequest, error) {
	total := n.cfg.RingNodes * n.cfg.TerminalsPerNode
	if !(load > 0) || load > 1 {
		return nil, fmt.Errorf("%w: total load %g not in (0, 1]", ErrConfig, load)
	}
	pcr := load / float64(total)
	reqs := make([]core.ConnRequest, 0, total)
	for i := 0; i < n.cfg.RingNodes; i++ {
		for t := 0; t < n.cfg.TerminalsPerNode; t++ {
			route, err := n.WrappedBroadcastRoute(i, t, failedFrom)
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, core.ConnRequest{
				ID:       ConnectionID(i, t),
				Spec:     traffic.CBR(pcr),
				Priority: prio,
				Route:    route,
			})
		}
	}
	return reqs, nil
}

// MaxWrappedRouteBound returns the largest end-to-end computed bound over
// all wrapped broadcast routes under the installed load.
func (n *Network) MaxWrappedRouteBound(prio core.Priority, failedFrom int) (float64, error) {
	worst := 0.0
	for i := 0; i < n.cfg.RingNodes; i++ {
		route, err := n.WrappedBroadcastRoute(i, 0, failedFrom)
		if err != nil {
			return 0, err
		}
		d, err := n.coreN.RouteBound(route, prio)
		if err != nil {
			return 0, err
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}
