package rtnet

import (
	"fmt"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// RTnet's fault tolerance (paper Section 5): the ring nodes are connected
// by dual counter-rotating 155 Mbps links, and a single link or node
// failure is healed by an FDDI-style hardware wrap: the two nodes adjacent
// to the failure fold the primary ring onto the secondary, producing one
// logical ring that traverses every node twice — once in each direction —
// over 2(R-1) directed links.
//
// The CAC consequence is that broadcast routes lengthen (up to about twice
// as many queueing points) and every connection must be re-validated
// against the wrapped topology; WrappedBroadcastRoute and the workload
// helpers below compute the degraded-mode admission problem.

// Secondary-ring ports of a ring node. The primary ring uses
// RingInPort/RingOutPort (0); terminals use 1..N; the secondary ring uses
// a disjoint range.
const (
	SecondaryRingInPort  core.PortID = 100
	SecondaryRingOutPort core.PortID = 100
)

// wrappedLink is one directed link of the healed logical ring.
type wrappedLink struct {
	from      int  // transmitting ring node
	secondary bool // true when the link belongs to the secondary ring
	to        int  // receiving ring node
}

// wrappedRing returns the directed links of the logical ring after the
// primary link failedFrom -> failedFrom+1 fails: the primary segment from
// failedFrom+1 all the way around to failedFrom, then the secondary
// segment back. Every node appears as a transmitter exactly twice except
// the wrap nodes, which transmit once on each ring like everyone else —
// the asymmetry is only in which links are unused.
func (n *Network) wrappedRing(failedFrom int) []wrappedLink {
	r := n.cfg.RingNodes
	links := make([]wrappedLink, 0, 2*(r-1))
	// Primary: failedFrom+1 -> failedFrom+2 -> ... -> failedFrom.
	for i := 0; i < r-1; i++ {
		from := (failedFrom + 1 + i) % r
		links = append(links, wrappedLink{from: from, to: (from + 1) % r})
	}
	// Secondary: failedFrom -> failedFrom-1 -> ... -> failedFrom+1.
	for i := 0; i < r-1; i++ {
		from := (failedFrom - i + r) % r
		links = append(links, wrappedLink{from: from, secondary: true, to: (from - 1 + r) % r})
	}
	return links
}

// wrappedRouteFrom walks the logical wrapped ring from terminal t at node
// origin, appending one queueing point per traversed link, until stop
// reports the receiving node completes the route. It is the common core of
// WrappedBroadcastRoute and WrappedRouteTo.
func (n *Network) wrappedRouteFrom(origin, t, failedFrom int, stop func(to int) bool) (core.Route, error) {
	r := n.cfg.RingNodes
	if origin < 0 || origin >= r {
		return nil, fmt.Errorf("%w: origin node %d", ErrConfig, origin)
	}
	if t < 0 || t >= n.cfg.TerminalsPerNode {
		return nil, fmt.Errorf("%w: terminal %d", ErrConfig, t)
	}
	if failedFrom < 0 || failedFrom >= r {
		return nil, fmt.Errorf("%w: failed link from node %d", ErrConfig, failedFrom)
	}
	ring := n.wrappedRing(failedFrom)
	// Find the first link transmitted by the origin node; the logical ring
	// visits every node, so one exists.
	start := -1
	for i, l := range ring {
		if l.from == origin {
			start = i
			break
		}
	}
	if start == -1 {
		return nil, fmt.Errorf("%w: origin %d not on wrapped ring", ErrConfig, origin)
	}
	route := core.Route{}
	for i := 0; i < len(ring); i++ {
		l := ring[(start+i)%len(ring)]
		in, out := RingInPort, RingOutPort
		if l.secondary {
			in, out = SecondaryRingInPort, SecondaryRingOutPort
		}
		if len(route) == 0 {
			in = TerminalPort(t)
		} else {
			// The inbound direction is that of the previous logical link.
			prev := ring[(start+i-1+len(ring))%len(ring)]
			if prev.secondary {
				in = SecondaryRingInPort
			} else {
				in = RingInPort
			}
		}
		route = append(route, core.Hop{Switch: SwitchName(l.from), In: in, Out: out})
		if stop(l.to) {
			return route, nil
		}
	}
	return nil, fmt.Errorf("%w: wrapped ring does not cover all nodes", ErrConfig)
}

// WrappedBroadcastRoute returns the broadcast route of terminal t at node
// origin after the primary ring link failedFrom -> failedFrom+1 has failed
// and the ring has wrapped. The route follows the logical ring from the
// origin's position until every other ring node has received the cell,
// which can take up to 2(RingNodes-1)-1 queueing points — the capacity
// cost of degraded mode.
func (n *Network) WrappedBroadcastRoute(origin, t, failedFrom int) (core.Route, error) {
	visited := make(map[int]bool, n.cfg.RingNodes)
	visited[origin] = true
	return n.wrappedRouteFrom(origin, t, failedFrom, func(to int) bool {
		visited[to] = true
		return len(visited) == n.cfg.RingNodes
	})
}

// WrappedRouteTo returns the route of a unicast connection from terminal t
// of node origin to node dest after the primary ring link failedFrom ->
// failedFrom+1 has failed: the cell follows the logical wrapped ring from
// the origin until dest receives it, which can take up to 2(RingNodes-1)-1
// queueing points. It is the degraded-mode replacement of SegmentRoute.
func (n *Network) WrappedRouteTo(origin, t, dest, failedFrom int) (core.Route, error) {
	if dest < 0 || dest >= n.cfg.RingNodes || dest == origin {
		return nil, fmt.Errorf("%w: destination node %d", ErrConfig, dest)
	}
	return n.wrappedRouteFrom(origin, t, failedFrom, func(to int) bool { return to == dest })
}

// NodeIndex parses a ring-node switch name (as produced by SwitchName)
// back to its ring index.
func NodeIndex(name string) (int, error) {
	var i int
	if _, err := fmt.Sscanf(name, "ring%d", &i); err != nil || i < 0 || SwitchName(i) != name {
		return 0, fmt.Errorf("%w: %q is not a ring node name", ErrConfig, name)
	}
	return i, nil
}

// TerminalIndex is the inverse of TerminalPort: the 0-based terminal number
// attached at ring-node port p.
func TerminalIndex(p core.PortID) (int, error) {
	if p < 1 || p >= SecondaryRingInPort {
		return 0, fmt.Errorf("%w: port %d is not a terminal port", ErrConfig, p)
	}
	return int(p) - 1, nil
}

// PrimaryLink returns the directed primary ring link transmitted by node
// from (from -> from+1) in core link terms.
func (n *Network) PrimaryLink(from int) (core.Link, error) {
	if from < 0 || from >= n.cfg.RingNodes {
		return core.Link{}, fmt.Errorf("%w: ring node %d", ErrConfig, from)
	}
	return core.Link{
		From: SwitchName(from),
		To:   SwitchName((from + 1) % n.cfg.RingNodes),
	}, nil
}

// DeliveryLink returns the ring link a route's final transmission crosses,
// when the last hop transmits onto a ring (primary or secondary) port. The
// receiving node has no queueing point on the route, so this link is
// invisible to the core's consecutive-hop adjacency; failure handling must
// account for it separately (see ringRouteLinks).
func (n *Network) DeliveryLink(route core.Route) (core.Link, bool) {
	if len(route) == 0 {
		return core.Link{}, false
	}
	last := route[len(route)-1]
	i, err := NodeIndex(last.Switch)
	if err != nil {
		return core.Link{}, false
	}
	r := n.cfg.RingNodes
	var to int
	switch last.Out {
	case RingOutPort:
		to = (i + 1) % r
	case SecondaryRingOutPort:
		to = (i - 1 + r) % r
	default:
		// Delivery to a locally attached terminal crosses no ring link.
		return core.Link{}, false
	}
	return core.Link{From: SwitchName(i), To: SwitchName(to)}, true
}

// ringRouteLinks is the core.LinkMapper for ring routes: consecutive
// queueing points plus the final delivery link.
func (n *Network) ringRouteLinks(route core.Route) []core.Link {
	links := make([]core.Link, 0, len(route))
	for i := 0; i+1 < len(route); i++ {
		links = append(links, core.Link{From: route[i].Switch, To: route[i+1].Switch})
	}
	if l, ok := n.DeliveryLink(route); ok {
		links = append(links, l)
	}
	return links
}

// FailPrimaryLink marks primary ring link from -> from+1 down on the live
// CAC network and returns the evicted connection requests in ID order (see
// core.Network.FailLink; the installed ring link mapper makes the eviction
// scan and all setup checks cover final-delivery traversals too).
// Re-admission over wrapped routes is the failover engine's job.
func (n *Network) FailPrimaryLink(from int) ([]core.ConnRequest, error) {
	l, err := n.PrimaryLink(from)
	if err != nil {
		return nil, err
	}
	return n.coreN.FailLink(l.From, l.To)
}

// RestorePrimaryLink clears the failure mark of primary ring link
// from -> from+1.
func (n *Network) RestorePrimaryLink(from int) error {
	l, err := n.PrimaryLink(from)
	if err != nil {
		return err
	}
	return n.coreN.RestoreLink(l.From, l.To)
}

// RouteInfo describes a healthy-topology RTnet route in ring terms.
type RouteInfo struct {
	// Origin and Terminal identify the sender; Dest is the last ring node
	// to receive the cell.
	Origin, Terminal, Dest int
	// Broadcast marks a full broadcast route (every other node receives).
	Broadcast bool
}

// RouteEndpoints classifies a healthy-ring route (as produced by
// SegmentRoute or BroadcastRoute) back into ring terms, so a failure
// controller can recompute the equivalent wrapped route. Routes that do not
// follow the healthy primary ring — e.g. already-wrapped routes — are
// rejected.
func (n *Network) RouteEndpoints(route core.Route) (RouteInfo, error) {
	r := n.cfg.RingNodes
	if len(route) < 1 || len(route) > r-1 {
		return RouteInfo{}, fmt.Errorf("%w: route of %d hops is not a healthy-ring route", ErrConfig, len(route))
	}
	origin, err := NodeIndex(route[0].Switch)
	if err != nil {
		return RouteInfo{}, err
	}
	terminal, err := TerminalIndex(route[0].In)
	if err != nil {
		return RouteInfo{}, err
	}
	for h, hop := range route {
		i, err := NodeIndex(hop.Switch)
		if err != nil {
			return RouteInfo{}, err
		}
		if i != (origin+h)%r || hop.Out != RingOutPort || (h > 0 && hop.In != RingInPort) {
			return RouteInfo{}, fmt.Errorf("%w: hop %d of route does not follow the primary ring", ErrConfig, h)
		}
	}
	return RouteInfo{
		Origin:    origin,
		Terminal:  terminal,
		Dest:      (origin + len(route)) % r,
		Broadcast: len(route) == r-1,
	}, nil
}

// SymmetricWorkloadWrapped builds the symmetric cyclic workload of
// SymmetricWorkload over the wrapped (degraded) topology.
func (n *Network) SymmetricWorkloadWrapped(load float64, prio core.Priority, failedFrom int) ([]core.ConnRequest, error) {
	total := n.cfg.RingNodes * n.cfg.TerminalsPerNode
	if !(load > 0) || load > 1 {
		return nil, fmt.Errorf("%w: total load %g not in (0, 1]", ErrConfig, load)
	}
	pcr := load / float64(total)
	reqs := make([]core.ConnRequest, 0, total)
	for i := 0; i < n.cfg.RingNodes; i++ {
		for t := 0; t < n.cfg.TerminalsPerNode; t++ {
			route, err := n.WrappedBroadcastRoute(i, t, failedFrom)
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, core.ConnRequest{
				ID:       ConnectionID(i, t),
				Spec:     traffic.CBR(pcr),
				Priority: prio,
				Route:    route,
			})
		}
	}
	return reqs, nil
}

// MaxWrappedRouteBound returns the largest end-to-end computed bound over
// all wrapped broadcast routes under the installed load.
func (n *Network) MaxWrappedRouteBound(prio core.Priority, failedFrom int) (float64, error) {
	worst := 0.0
	for i := 0; i < n.cfg.RingNodes; i++ {
		route, err := n.WrappedBroadcastRoute(i, 0, failedFrom)
		if err != nil {
			return 0, err
		}
		d, err := n.coreN.RouteBound(route, prio)
		if err != nil {
			return 0, err
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}
