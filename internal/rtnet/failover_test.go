package rtnet

import (
	"context"
	"errors"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// coreConnRequest builds a CBR setup request with an end-to-end budget.
func coreConnRequest(id string, route core.Route, budget float64) core.ConnRequest {
	return core.ConnRequest{
		ID:         core.ConnID(id),
		Spec:       traffic.CBR(0.01),
		Priority:   1,
		Route:      route,
		DelayBound: budget,
	}
}

func TestWrappedRingCoversEveryLinkOnce(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 6})
	for failed := 0; failed < 6; failed++ {
		ring := n.wrappedRing(failed)
		if len(ring) != 10 { // 2*(R-1)
			t.Fatalf("failed=%d: wrapped ring has %d links, want 10", failed, len(ring))
		}
		// The broken primary link must not appear; every other directed
		// link appears exactly once; the ring is contiguous.
		seen := make(map[wrappedLink]bool, len(ring))
		for i, l := range ring {
			if !l.secondary && l.from == failed {
				t.Fatalf("failed=%d: broken primary link %d->%d used", failed, l.from, l.to)
			}
			if seen[l] {
				t.Fatalf("failed=%d: link %+v repeated", failed, l)
			}
			seen[l] = true
			next := ring[(i+1)%len(ring)]
			if l.to != next.from {
				t.Fatalf("failed=%d: ring not contiguous at %d: %+v -> %+v", failed, i, l, next)
			}
		}
	}
}

func TestWrappedBroadcastRouteCoversAllNodes(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 6, TerminalsPerNode: 2})
	for failed := 0; failed < 6; failed++ {
		for origin := 0; origin < 6; origin++ {
			route, err := n.WrappedBroadcastRoute(origin, 1, failed)
			if err != nil {
				t.Fatalf("failed=%d origin=%d: %v", failed, origin, err)
			}
			if len(route) < 5 || len(route) > 9 { // between R-1 and 2(R-1)-1
				t.Fatalf("failed=%d origin=%d: route length %d", failed, origin, len(route))
			}
			if route[0].In != TerminalPort(1) {
				t.Errorf("first hop enters via %d, want terminal port", route[0].In)
			}
			if route[0].Switch != SwitchName(origin) {
				t.Errorf("first hop at %s, want %s", route[0].Switch, SwitchName(origin))
			}
			// No hop transmits on the broken primary link.
			for _, hop := range route {
				if hop.Switch == SwitchName(failed) && hop.Out == RingOutPort {
					t.Errorf("failed=%d origin=%d: route uses broken link at %s",
						failed, origin, hop.Switch)
				}
			}
		}
	}
}

func TestWrappedBroadcastRouteValidation(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 4})
	if _, err := n.WrappedBroadcastRoute(9, 0, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("bad origin error = %v", err)
	}
	if _, err := n.WrappedBroadcastRoute(0, 9, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("bad terminal error = %v", err)
	}
	if _, err := n.WrappedBroadcastRoute(0, 0, 9); !errors.Is(err, ErrConfig) {
		t.Errorf("bad failed link error = %v", err)
	}
}

// TestWrapSurvivesDesignLoad is the fault-tolerance claim of Section 5
// verified through the CAC: the cyclic workload the healthy ring carries
// is still admissible after a link failure and wrap. The wrapped
// configuration activates the secondary ring (idle in normal operation),
// so per-queue contention does not double even though routes lengthen.
func TestWrapSurvivesDesignLoad(t *testing.T) {
	const load = 0.3
	wrapped := newRTnet(t, Config{RingNodes: 8, TerminalsPerNode: 2})
	ww, err := wrapped.SymmetricWorkloadWrapped(load, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrapped.InstallAll(ww); err != nil {
		t.Fatal(err)
	}
	violations, err := wrapped.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("wrapped ring rejects the design load %g: %v", load, violations)
	}
	bound, err := wrapped.MaxWrappedRouteBound(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Fatalf("wrapped bound = %g", bound)
	}
}

// TestWrapLengthensGuarantees: the true cost of degraded mode is route
// length — the contractual end-to-end bound (sum of fixed per-hop FIFO
// budgets) grows up to nearly 2x, so connections with tight delay budgets
// that fit on the healthy ring no longer fit after a wrap. For an 8-node
// ring: healthy guarantee 7 x 32 = 224 cell times, worst wrapped route
// 13 x 32 = 416, with the high-speed cyclic budget (367) in between.
func TestWrapLengthensGuarantees(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 8, TerminalsPerNode: 1})
	budget := Classes()[0].DelayCellTimes() // about 367 cell times

	healthyRoute, err := n.BroadcastRoute(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(len(healthyRoute)) * DefaultQueueCells; got > budget {
		t.Fatalf("healthy guarantee %g already over budget %g; test setup broken", got, budget)
	}

	worstLen := 0
	for origin := 0; origin < 8; origin++ {
		route, err := n.WrappedBroadcastRoute(origin, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(route) > worstLen {
			worstLen = len(route)
		}
	}
	if worstLen <= len(healthyRoute) {
		t.Fatalf("worst wrapped route (%d hops) not longer than healthy (%d)", worstLen, len(healthyRoute))
	}
	if got := float64(worstLen) * DefaultQueueCells; got <= budget {
		t.Fatalf("worst wrapped guarantee %g does not exceed the high-speed budget %g", got, budget)
	}

	// The CAC enforces it end to end: a high-speed-budget connection on
	// the longest wrapped route is refused, while the same request fits on
	// the healthy route.
	var longest int
	for origin := 0; origin < 8; origin++ {
		route, err := n.WrappedBroadcastRoute(origin, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(route) == worstLen {
			longest = origin
			break
		}
	}
	wrappedRoute, err := n.WrappedBroadcastRoute(longest, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = n.Core().Setup(context.Background(), coreConnRequest("tight-wrapped", wrappedRoute, budget))
	if err == nil {
		t.Error("high-speed budget admitted over the longest wrapped route")
	}
	if _, err := n.Core().Setup(context.Background(), coreConnRequest("tight-healthy", healthyRoute, budget)); err != nil {
		t.Errorf("high-speed budget rejected on the healthy route: %v", err)
	}
}

// TestWrappedQueuesAreSeparate: primary and secondary ring directions queue
// independently at each node — the wrap must not conflate them.
func TestWrappedQueuesAreSeparate(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 6, TerminalsPerNode: 1})
	w, err := n.SymmetricWorkloadWrapped(0.3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallAll(w); err != nil {
		t.Fatal(err)
	}
	primarySeen, secondarySeen := false, false
	for i := 0; i < 6; i++ {
		sw, ok := n.Core().Switch(SwitchName(i))
		if !ok {
			t.Fatal("missing switch")
		}
		for _, out := range sw.OutPorts() {
			switch out {
			case RingOutPort:
				primarySeen = true
			case SecondaryRingOutPort:
				secondarySeen = true
			}
		}
	}
	if !primarySeen || !secondarySeen {
		t.Fatalf("wrapped workload uses primary=%v secondary=%v ports, want both",
			primarySeen, secondarySeen)
	}
}
