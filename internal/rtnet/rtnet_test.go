package rtnet

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"atmcac/internal/core"
)

func newRTnet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigDefaults(t *testing.T) {
	n := newRTnet(t, Config{})
	cfg := n.Config()
	if cfg.RingNodes != 16 || cfg.TerminalsPerNode != 1 {
		t.Errorf("defaults = %d nodes, %d terminals; want 16, 1", cfg.RingNodes, cfg.TerminalsPerNode)
	}
	if cfg.QueueCells[1] != 32 {
		t.Errorf("default queue = %g, want 32", cfg.QueueCells[1])
	}
	if cfg.Policy.Name() != "hard" {
		t.Errorf("default policy = %q, want hard", cfg.Policy.Name())
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"one ring node", Config{RingNodes: 1}},
		{"negative terminals", Config{TerminalsPerNode: -1}},
		{"too many terminals", Config{TerminalsPerNode: 17}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("New error = %v, want ErrConfig", err)
			}
		})
	}
}

func TestTopologyShape(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 4, TerminalsPerNode: 3})
	g := n.Graph()
	// 4 ring switches + 12 terminals.
	if got := len(g.Nodes()); got != 16 {
		t.Errorf("nodes = %d, want 16", got)
	}
	// 4 ring links + 2 per terminal.
	if got := len(g.Links()); got != 4+24 {
		t.Errorf("links = %d, want 28", got)
	}
	// Every ring node is a registered CAC switch.
	for i := 0; i < 4; i++ {
		if _, ok := n.Core().Switch(SwitchName(i)); !ok {
			t.Errorf("switch %s missing from CAC network", SwitchName(i))
		}
	}
	// The physical path from a terminal on node 0 to a terminal on node 2
	// goes around the ring.
	path, err := g.Path(TerminalName(0, 0), TerminalName(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 { // term -> ring0 -> ring1 -> ring2 -> term
		t.Errorf("path length = %d, want 5 (%v)", len(path), path)
	}
}

func TestBroadcastRoute(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 4, TerminalsPerNode: 2})
	route, err := n.BroadcastRoute(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 3 {
		t.Fatalf("route length = %d, want 3", len(route))
	}
	if route[0].Switch != "ring02" || route[0].In != TerminalPort(1) || route[0].Out != RingOutPort {
		t.Errorf("first hop = %+v", route[0])
	}
	// Wrap-around: node 2 -> 3 -> 0.
	if route[1].Switch != "ring03" || route[2].Switch != "ring00" {
		t.Errorf("route = %+v, want ring03 then ring00", route)
	}
	for _, hop := range route[1:] {
		if hop.In != RingInPort {
			t.Errorf("transit hop enters via port %d, want ring-in %d", hop.In, RingInPort)
		}
	}
	if _, err := n.BroadcastRoute(9, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("bad origin error = %v", err)
	}
	if _, err := n.BroadcastRoute(0, 9); !errors.Is(err, ErrConfig) {
		t.Errorf("bad terminal error = %v", err)
	}
}

func TestConnectionIDsUnique(t *testing.T) {
	seen := make(map[core.ConnID]bool)
	for i := 0; i < 16; i++ {
		for tt := 0; tt < 16; tt++ {
			id := ConnectionID(i, tt)
			if seen[id] {
				t.Fatalf("duplicate connection ID %s", id)
			}
			seen[id] = true
		}
	}
}

func TestSymmetricWorkload(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 4, TerminalsPerNode: 2})
	reqs, err := n.SymmetricWorkload(0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 8 {
		t.Fatalf("workload size = %d, want 8", len(reqs))
	}
	for _, r := range reqs {
		if math.Abs(r.Spec.PCR-0.05) > 1e-12 {
			t.Errorf("PCR = %g, want 0.05", r.Spec.PCR)
		}
		if !r.Spec.IsCBR() {
			t.Errorf("spec %v is not CBR", r.Spec)
		}
		if len(r.Route) != 3 {
			t.Errorf("route length = %d, want 3", len(r.Route))
		}
	}
	if _, err := n.SymmetricWorkload(0, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("zero load error = %v", err)
	}
	if _, err := n.SymmetricWorkload(1.5, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("overload error = %v", err)
	}
}

func TestAsymmetricWorkload(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 4, TerminalsPerNode: 2})
	reqs, err := n.AsymmetricWorkload(0.4, 0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 8 {
		t.Fatalf("workload size = %d, want 8", len(reqs))
	}
	var sum float64
	var hot int
	for _, r := range reqs {
		sum += r.Spec.PCR
		if r.ID == ConnectionID(0, 0) {
			hot++
			if math.Abs(r.Spec.PCR-0.2) > 1e-12 {
				t.Errorf("hot PCR = %g, want 0.2", r.Spec.PCR)
			}
		} else if math.Abs(r.Spec.PCR-0.2/7) > 1e-12 {
			t.Errorf("cold PCR = %g, want %g", r.Spec.PCR, 0.2/7)
		}
	}
	if hot != 1 {
		t.Fatalf("hot connections = %d, want 1", hot)
	}
	if math.Abs(sum-0.4) > 1e-9 {
		t.Errorf("total PCR = %g, want 0.4", sum)
	}
}

func TestAsymmetricWorkloadFullShare(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 4, TerminalsPerNode: 1})
	reqs, err := n.AsymmetricWorkload(0.3, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].Spec.PCR != 0.3 {
		t.Fatalf("hotShare=1 workload = %+v, want only the hot connection", reqs)
	}
}

func TestAsymmetricWorkloadPriorities(t *testing.T) {
	n := newRTnet(t, Config{
		RingNodes: 4, TerminalsPerNode: 1,
		QueueCells: map[core.Priority]float64{1: 32, 2: 128},
	})
	reqs, err := n.AsymmetricWorkload(0.4, 0.5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		want := core.Priority(1)
		if r.ID == ConnectionID(0, 0) {
			want = 2
		}
		if r.Priority != want {
			t.Errorf("conn %s priority = %d, want %d", r.ID, r.Priority, want)
		}
	}
}

func TestAsymmetricWorkloadValidation(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 4, TerminalsPerNode: 1})
	if _, err := n.AsymmetricWorkload(0, 0.5, 1, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("zero load error = %v", err)
	}
	if _, err := n.AsymmetricWorkload(0.4, -0.1, 1, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("negative share error = %v", err)
	}
	if _, err := n.AsymmetricWorkload(0.4, 1.1, 1, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("share above one error = %v", err)
	}
}

func TestInstallAllAndAuditFeasible(t *testing.T) {
	n := newRTnet(t, Config{})
	w, err := n.SymmetricWorkload(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallAll(w); err != nil {
		t.Fatal(err)
	}
	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("20%% symmetric load on N=1 infeasible: %v", violations)
	}
}

func TestAuditInfeasibleHighLoad(t *testing.T) {
	n := newRTnet(t, Config{TerminalsPerNode: 16})
	w, err := n.SymmetricWorkload(0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallAll(w); err != nil {
		t.Fatal(err)
	}
	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("90% load with 16 terminals per node passed the audit")
	}
}

func TestRingPortBoundsSymmetric(t *testing.T) {
	n := newRTnet(t, Config{TerminalsPerNode: 4})
	w, err := n.SymmetricWorkload(0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallAll(w); err != nil {
		t.Fatal(err)
	}
	bounds, err := n.RingPortBounds(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 16 {
		t.Fatalf("bounds length = %d, want 16", len(bounds))
	}
	for i, d := range bounds {
		if math.Abs(d-bounds[0]) > 1e-6 {
			t.Fatalf("symmetric load gives asymmetric bounds: node %d has %g vs %g", i, d, bounds[0])
		}
		if d <= 0 {
			t.Fatalf("node %d bound = %g, want > 0", i, d)
		}
	}
	e2e, err := n.MaxBroadcastBound(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2e-15*bounds[0]) > 1e-6 {
		t.Errorf("MaxBroadcastBound = %g, want 15 * %g", e2e, bounds[0])
	}
}

// TestFigure10Anchors checks the paper's headline Figure 10 claims:
//   - N=1 supports 75% total load (115 Mbps) under 370 cell times (1 ms);
//   - N=16 supports about 35% (55 Mbps) under the same budget;
//   - N=16 does not support 50%.
func TestFigure10Anchors(t *testing.T) {
	run := func(nTerm int, load float64) (feasible bool, bound float64) {
		t.Helper()
		n := newRTnet(t, Config{TerminalsPerNode: nTerm})
		w, err := n.SymmetricWorkload(load, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InstallAll(w); err != nil {
			t.Fatal(err)
		}
		v, err := n.Audit()
		if err != nil {
			t.Fatal(err)
		}
		if len(v) > 0 {
			return false, 0
		}
		d, err := n.MaxBroadcastBound(1)
		if err != nil {
			t.Fatal(err)
		}
		return true, d
	}
	if ok, d := run(1, 0.75); !ok || d > 370 {
		t.Errorf("N=1 B=0.75: feasible=%v bound=%.0f, paper says feasible under 370 cell times", ok, d)
	}
	if ok, d := run(16, 0.35); !ok || d > 450 {
		t.Errorf("N=16 B=0.35: feasible=%v bound=%.0f, paper says feasible around 370-400 cell times", ok, d)
	}
	if ok, _ := run(16, 0.5); ok {
		t.Error("N=16 B=0.5: feasible, paper says about 35% is the limit")
	}
}

// TestBurstinessGrowsWithN: at equal total load, more terminals per node
// means burstier per-node traffic and a larger worst-case bound (the paper's
// first conclusion from Figure 10).
func TestBurstinessGrowsWithN(t *testing.T) {
	prev := -1.0
	for _, nTerm := range []int{1, 4, 8, 16} {
		n := newRTnet(t, Config{TerminalsPerNode: nTerm})
		w, err := n.SymmetricWorkload(0.3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InstallAll(w); err != nil {
			t.Fatal(err)
		}
		d, err := n.MaxBroadcastBound(1)
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Fatalf("bound with N=%d (%g) not larger than previous (%g)", nTerm, d, prev)
		}
		prev = d
	}
}

func TestClassesTable1(t *testing.T) {
	classes := Classes()
	if len(classes) != 3 {
		t.Fatalf("Classes() returned %d entries", len(classes))
	}
	// Paper Table 1 bandwidths in Mbps.
	want := []float64{32, 17.5, 6.8}
	for i, c := range classes {
		bw, err := c.Bandwidth()
		if err != nil {
			t.Fatal(err)
		}
		gotMbps := bw / 1e6
		if math.Abs(gotMbps-want[i])/want[i] > 0.05 {
			t.Errorf("%s bandwidth = %.2f Mbps, want about %g", c.Name, gotMbps, want[i])
		}
		rate, err := c.NormalizedRate()
		if err != nil {
			t.Fatal(err)
		}
		if rate <= 0 || rate >= 1 {
			t.Errorf("%s normalized rate = %g", c.Name, rate)
		}
		if c.DelayCellTimes() <= 0 {
			t.Errorf("%s delay budget = %g cell times", c.Name, c.DelayCellTimes())
		}
	}
	// The high-speed class delay budget is about 370 cell times (1 ms).
	if d := classes[0].DelayCellTimes(); d < 360 || d > 375 {
		t.Errorf("high-speed delay budget = %g cell times, want about 367", d)
	}
}

func TestTerminalSpec(t *testing.T) {
	c := Classes()[0]
	spec, err := c.TerminalSpec(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	full, err := c.NormalizedRate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spec.PCR*16-full) > 1e-12 {
		t.Errorf("16 terminal specs sum to %g, want %g", spec.PCR*16, full)
	}
	if _, err := c.TerminalSpec(0); !errors.Is(err, ErrConfig) {
		t.Errorf("TerminalSpec(0) error = %v", err)
	}
}

// TestAllCyclicClassesFeasibleTogether: the three cyclic transmission types
// can be supported simultaneously with a single priority on a modest RTnet,
// and the high-speed class meets its 1 ms end-to-end budget (Section 5).
func TestAllCyclicClassesFeasibleTogether(t *testing.T) {
	n := newRTnet(t, Config{TerminalsPerNode: 1})
	total := n.Config().RingNodes * n.Config().TerminalsPerNode
	var reqs []core.ConnRequest
	for ci, c := range Classes() {
		spec, err := c.TerminalSpec(total)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n.Config().RingNodes; i++ {
			route, err := n.BroadcastRoute(i, 0)
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, core.ConnRequest{
				ID:       core.ConnID(fmt.Sprintf("cyc%d-%02d", ci, i)),
				Spec:     spec,
				Priority: 1,
				Route:    route,
			})
		}
	}
	if err := n.InstallAll(reqs); err != nil {
		t.Fatal(err)
	}
	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("combined cyclic classes infeasible: %v", violations)
	}
	bound, err := n.MaxBroadcastBound(1)
	if err != nil {
		t.Fatal(err)
	}
	if budget := Classes()[0].DelayCellTimes(); bound > budget {
		t.Errorf("end-to-end bound %.0f exceeds the high-speed budget %.0f", bound, budget)
	}
}
