// Package rtnet models RTnet, the ATM-based real-time industrial control
// network of the paper's Section 5: a star-ring of 155 Mbps ring nodes, each
// attaching up to 16 terminals, with a 32-cell highest-priority FIFO queue
// per ring node, supporting real-time "cyclic transmission" (a network-wide
// shared memory periodically broadcast by every terminal).
//
// The package builds the physical topology, derives broadcast routes,
// generates the symmetric and asymmetric cyclic workloads evaluated in the
// paper's Figures 10-13, and exposes Table 1's cyclic transmission classes.
package rtnet

import (
	"errors"
	"fmt"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/topology"
	"atmcac/internal/traffic"
)

// RTnet constants from the paper's Section 5.
const (
	// DefaultRingNodes is the ring size of the evaluated configuration.
	DefaultRingNodes = 16
	// MaxTerminalsPerNode is the attachment limit of a ring node.
	MaxTerminalsPerNode = 16
	// DefaultQueueCells is the highest-priority FIFO queue size per ring
	// node: 32 cells, i.e. 32 cell times (about 87 us) of CDV per hop.
	DefaultQueueCells = 32
	// RingInPort and RingOutPort are the ring-side ports of a ring node.
	// Terminal-side ports are numbered 1..N in both directions.
	RingInPort  core.PortID = 0
	RingOutPort core.PortID = 0
)

// ErrConfig reports an invalid RTnet configuration.
var ErrConfig = errors.New("rtnet: invalid configuration")

// Config describes an RTnet instance.
type Config struct {
	// RingNodes is the number of ring nodes (>= 2); default 16.
	RingNodes int
	// TerminalsPerNode is the number of terminals attached to each ring
	// node (1..16); default 1.
	TerminalsPerNode int
	// QueueCells configures the per-priority FIFO queues of every ring
	// node; default {1: 32}.
	QueueCells map[core.Priority]float64
	// Policy is the CDV accumulation policy; default hard.
	Policy core.CDVPolicy
}

func (c Config) withDefaults() Config {
	if c.RingNodes == 0 {
		c.RingNodes = DefaultRingNodes
	}
	if c.TerminalsPerNode == 0 {
		c.TerminalsPerNode = 1
	}
	if c.QueueCells == nil {
		c.QueueCells = map[core.Priority]float64{1: DefaultQueueCells}
	}
	if c.Policy == nil {
		c.Policy = core.HardCDV{}
	}
	return c
}

func (c Config) validate() error {
	if c.RingNodes < 2 {
		return fmt.Errorf("%w: %d ring nodes", ErrConfig, c.RingNodes)
	}
	if c.TerminalsPerNode < 1 || c.TerminalsPerNode > MaxTerminalsPerNode {
		return fmt.Errorf("%w: %d terminals per node (1..%d)",
			ErrConfig, c.TerminalsPerNode, MaxTerminalsPerNode)
	}
	return nil
}

// SwitchName returns the name of ring node i.
func SwitchName(i int) string { return fmt.Sprintf("ring%02d", i) }

// TerminalName returns the topology node ID of terminal t (0-based) on ring
// node i.
func TerminalName(i, t int) topology.NodeID {
	return topology.NodeID(fmt.Sprintf("term%02d-%02d", i, t))
}

// TerminalPort returns the ring-node port used by terminal t (0-based):
// terminal ports are 1..N, with 0 reserved for the ring.
func TerminalPort(t int) core.PortID { return core.PortID(t + 1) }

// Network is an RTnet instance: the physical topology plus the CAC state of
// its ring nodes.
type Network struct {
	cfg   Config
	coreN *core.Network
	graph *topology.Graph
}

// New builds an RTnet with the given configuration.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{
		cfg:   cfg,
		coreN: core.NewNetwork(cfg.Policy),
		graph: topology.New(),
	}
	// Teach the core CAC which links a ring route really crosses: the
	// consecutive queueing points plus the final delivery link, which the
	// hop sequence alone cannot show (the receiving node does not queue).
	// This makes link-failure handling — setup refusal, commit
	// re-validation, eviction — exact for ring routes.
	n.coreN.SetLinkMapper(n.ringRouteLinks)
	ringName := func(i int) topology.NodeID { return topology.NodeID(SwitchName(i)) }
	if err := topology.Ring(n.graph, cfg.RingNodes, ringName, int(RingOutPort), int(RingInPort)); err != nil {
		return nil, fmt.Errorf("rtnet: build ring: %w", err)
	}
	for i := 0; i < cfg.RingNodes; i++ {
		if _, err := n.coreN.AddSwitch(core.SwitchConfig{
			Name:       SwitchName(i),
			QueueCells: cfg.QueueCells,
		}); err != nil {
			return nil, fmt.Errorf("rtnet: add switch: %w", err)
		}
		for t := 0; t < cfg.TerminalsPerNode; t++ {
			term := TerminalName(i, t)
			if err := n.graph.AddNode(term, topology.KindHost); err != nil {
				return nil, fmt.Errorf("rtnet: add terminal: %w", err)
			}
			up := topology.Link{From: term, FromPort: 0, To: ringName(i), ToPort: int(TerminalPort(t))}
			down := topology.Link{From: ringName(i), FromPort: int(TerminalPort(t)), To: term, ToPort: 0}
			if err := n.graph.AddLink(up); err != nil {
				return nil, fmt.Errorf("rtnet: attach terminal: %w", err)
			}
			if err := n.graph.AddLink(down); err != nil {
				return nil, fmt.Errorf("rtnet: attach terminal: %w", err)
			}
		}
	}
	return n, nil
}

// Config returns the effective configuration.
func (n *Network) Config() Config { return n.cfg }

// Core returns the CAC network.
func (n *Network) Core() *core.Network { return n.coreN }

// Graph returns the physical topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// SegmentRoute returns the route of a unicast connection entering the ring
// at terminal t of ring node origin and travelling hops ring hops
// downstream (1 <= hops <= RingNodes-1). Each hop is a queueing point at a
// ring node's ring output port. Point-to-point segments let concurrent
// setups touch disjoint parts of the ring, which is what the parallel
// admission path exploits.
func (n *Network) SegmentRoute(origin, t, hops int) (core.Route, error) {
	if origin < 0 || origin >= n.cfg.RingNodes {
		return nil, fmt.Errorf("%w: origin node %d", ErrConfig, origin)
	}
	if t < 0 || t >= n.cfg.TerminalsPerNode {
		return nil, fmt.Errorf("%w: terminal %d", ErrConfig, t)
	}
	if hops < 1 || hops > n.cfg.RingNodes-1 {
		return nil, fmt.Errorf("%w: %d hops (1..%d)", ErrConfig, hops, n.cfg.RingNodes-1)
	}
	route := make(core.Route, hops)
	for h := 0; h < hops; h++ {
		in := RingInPort
		if h == 0 {
			in = TerminalPort(t)
		}
		route[h] = core.Hop{
			Switch: SwitchName((origin + h) % n.cfg.RingNodes),
			In:     in,
			Out:    RingOutPort,
		}
	}
	return route, nil
}

// BroadcastRoute returns the route of a cyclic-transmission broadcast
// originating at terminal t of ring node origin: the cell enters the ring at
// the origin node and travels RingNodes-1 hops so every other node receives
// it. Each hop is a queueing point at a ring node's ring output port.
func (n *Network) BroadcastRoute(origin, t int) (core.Route, error) {
	return n.SegmentRoute(origin, t, n.cfg.RingNodes-1)
}

// ConnectionID names the broadcast connection of terminal t on node i.
func ConnectionID(i, t int) core.ConnID {
	return core.ConnID(fmt.Sprintf("bcast-%02d-%02d", i, t))
}

// BroadcastRequest builds the setup request for terminal t of node origin.
func (n *Network) BroadcastRequest(origin, t int, spec traffic.Spec, prio core.Priority) (core.ConnRequest, error) {
	route, err := n.BroadcastRoute(origin, t)
	if err != nil {
		return core.ConnRequest{}, err
	}
	return core.ConnRequest{
		ID:       ConnectionID(origin, t),
		Spec:     spec,
		Priority: prio,
		Route:    route,
	}, nil
}

// InstallAll bulk-loads a workload (offline planning path).
func (n *Network) InstallAll(reqs []core.ConnRequest) error {
	for _, req := range reqs {
		if err := n.coreN.Install(req); err != nil {
			return err
		}
	}
	return nil
}

// Audit validates every ring-node queue against its guarantee.
func (n *Network) Audit() ([]core.Violation, error) {
	return n.coreN.Audit()
}

// RingPortBounds returns the computed worst-case delay D'(ring out, p) of
// every ring node, indexed by node number.
func (n *Network) RingPortBounds(p core.Priority) ([]float64, error) {
	bounds := make([]float64, n.cfg.RingNodes)
	for i := range bounds {
		sw, ok := n.coreN.Switch(SwitchName(i))
		if !ok {
			return nil, fmt.Errorf("%w: missing switch %s", ErrConfig, SwitchName(i))
		}
		d, err := sw.ComputedBound(RingOutPort, p)
		if err != nil {
			return nil, fmt.Errorf("rtnet: bound at %s: %w", SwitchName(i), err)
		}
		bounds[i] = d
	}
	return bounds, nil
}

// MaxBroadcastBound returns the largest end-to-end computed queueing delay
// bound over all broadcast routes, at priority p: the worst connection's
// bound under the installed load (the paper's Figure 10 y-axis).
func (n *Network) MaxBroadcastBound(p core.Priority) (float64, error) {
	perNode, err := n.RingPortBounds(p)
	if err != nil {
		return 0, err
	}
	// The route from origin o sums nodes o..o+R-2; slide the window around
	// the ring.
	r := n.cfg.RingNodes
	worst := 0.0
	for o := 0; o < r; o++ {
		sum := 0.0
		for h := 0; h < r-1; h++ {
			sum += perNode[(o+h)%r]
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst, nil
}

// SymmetricWorkload builds the paper's symmetric cyclic traffic pattern:
// every terminal broadcasts a CBR connection with PCR = load/(R*N), where
// load is the total normalized traffic (B in Figure 10).
func (n *Network) SymmetricWorkload(load float64, prio core.Priority) ([]core.ConnRequest, error) {
	total := n.cfg.RingNodes * n.cfg.TerminalsPerNode
	if !(load > 0) || load > 1 {
		return nil, fmt.Errorf("%w: total load %g not in (0, 1]", ErrConfig, load)
	}
	pcr := load / float64(total)
	reqs := make([]core.ConnRequest, 0, total)
	for i := 0; i < n.cfg.RingNodes; i++ {
		for t := 0; t < n.cfg.TerminalsPerNode; t++ {
			req, err := n.BroadcastRequest(i, t, traffic.CBR(pcr), prio)
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, req)
		}
	}
	return reqs, nil
}

// AsymmetricWorkload builds the paper's asymmetric pattern: terminal 0 of
// node 0 generates hotShare of the total load and the remaining traffic is
// divided equally among the other terminals. hotPrio and otherPrio assign
// priorities (equal for the single-priority experiments; Figure 12 gives the
// hot connection a lower priority with its own larger queue).
func (n *Network) AsymmetricWorkload(load, hotShare float64, hotPrio, otherPrio core.Priority) ([]core.ConnRequest, error) {
	total := n.cfg.RingNodes * n.cfg.TerminalsPerNode
	if !(load > 0) || load > 1 {
		return nil, fmt.Errorf("%w: total load %g not in (0, 1]", ErrConfig, load)
	}
	if hotShare < 0 || hotShare > 1 {
		return nil, fmt.Errorf("%w: hot share %g not in [0, 1]", ErrConfig, hotShare)
	}
	if total < 2 && hotShare < 1 {
		return nil, fmt.Errorf("%w: asymmetric pattern needs at least 2 terminals", ErrConfig)
	}
	hotPCR := load * hotShare
	var otherPCR float64
	if total > 1 {
		otherPCR = load * (1 - hotShare) / float64(total-1)
	}
	reqs := make([]core.ConnRequest, 0, total)
	for i := 0; i < n.cfg.RingNodes; i++ {
		for t := 0; t < n.cfg.TerminalsPerNode; t++ {
			pcr, prio := otherPCR, otherPrio
			if i == 0 && t == 0 {
				pcr, prio = hotPCR, hotPrio
			}
			if pcr <= 0 {
				continue // a zero share contributes no connection
			}
			req, err := n.BroadcastRequest(i, t, traffic.CBR(pcr), prio)
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, req)
		}
	}
	return reqs, nil
}

// CyclicClass is one of RTnet's cyclic transmission service classes
// (Table 1 of the paper).
type CyclicClass struct {
	Name string
	// Period is the shared-memory update period.
	Period time.Duration
	// Delay is the maximum allowable update delay.
	Delay time.Duration
	// MemoryBytes is the maximum size of the shared memory segment.
	MemoryBytes int
}

// Classes are the three cyclic transmission types of Table 1.
func Classes() []CyclicClass {
	return []CyclicClass{
		{Name: "high speed", Period: time.Millisecond, Delay: time.Millisecond, MemoryBytes: 4 * 1024},
		{Name: "medium speed", Period: 30 * time.Millisecond, Delay: 30 * time.Millisecond, MemoryBytes: 64 * 1024},
		{Name: "low speed", Period: 150 * time.Millisecond, Delay: 150 * time.Millisecond, MemoryBytes: 128 * 1024},
	}
}

// Bandwidth returns the class's aggregate payload bandwidth in bits per
// second (the paper's Table 1 accounting: memory size over period).
func (c CyclicClass) Bandwidth() (float64, error) {
	return traffic.PayloadBandwidth(c.MemoryBytes, c.Period)
}

// NormalizedRate returns the class's aggregate cell rate normalized to an
// OC-3 link, including cell header overhead (what the CAC must reserve).
func (c CyclicClass) NormalizedRate() (float64, error) {
	wire, err := traffic.WireBandwidth(c.MemoryBytes, c.Period)
	if err != nil {
		return 0, err
	}
	return traffic.OC3.Normalize(wire), nil
}

// DelayCellTimes returns the class's delay budget in OC-3 cell times.
func (c CyclicClass) DelayCellTimes() float64 {
	return traffic.OC3.CellTimes(c.Delay)
}

// TerminalSpec returns the CBR descriptor of one terminal's share of the
// class, with the shared memory divided equally among total terminals.
func (c CyclicClass) TerminalSpec(totalTerminals int) (traffic.Spec, error) {
	if totalTerminals < 1 {
		return traffic.Spec{}, fmt.Errorf("%w: %d terminals", ErrConfig, totalTerminals)
	}
	rate, err := c.NormalizedRate()
	if err != nil {
		return traffic.Spec{}, err
	}
	return traffic.CBR(rate / float64(totalTerminals)), nil
}
