package rtnet

import (
	"context"
	"errors"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// TestWrappedRoutesThroughLiveSetup feeds the §5 wrapped-ring routes
// through the live hop-by-hop admission path (Network.Setup with the full
// Algorithm 4.1 check) after the primary link has actually been failed,
// instead of the offline Install+Audit planner the wrapped math was
// previously tested with.
func TestWrappedRoutesThroughLiveSetup(t *testing.T) {
	const (
		ringNodes = 6
		failed    = 2
	)
	n := newRTnet(t, Config{RingNodes: ringNodes})
	evicted, err := n.FailPrimaryLink(failed)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 0 {
		t.Fatalf("idle network evicted %v", evicted)
	}

	pcr := 0.3 / float64(ringNodes)
	for origin := 0; origin < ringNodes; origin++ {
		route, err := n.WrappedBroadcastRoute(origin, 0, failed)
		if err != nil {
			t.Fatal(err)
		}
		adm, err := n.Core().Setup(context.Background(), core.ConnRequest{
			ID: ConnectionID(origin, 0), Spec: traffic.CBR(pcr), Priority: 1, Route: route,
		})
		if err != nil {
			t.Fatalf("live setup of wrapped route from %d: %v", origin, err)
		}
		if want := float64(len(route)) * DefaultQueueCells; adm.EndToEndGuaranteed != want {
			t.Errorf("origin %d: guaranteed %g, want %g", origin, adm.EndToEndGuaranteed, want)
		}
		// The wrapped route must not traverse the failed primary link.
		l, _ := n.PrimaryLink(failed)
		for i := 0; i+1 < len(route); i++ {
			if route[i].Switch == l.From && route[i+1].Switch == l.To {
				t.Errorf("origin %d: wrapped route crosses failed link %s", origin, l)
			}
		}
	}
	if v, err := n.Audit(); err != nil || len(v) > 0 {
		t.Fatalf("audit after live wrapped setups: %v %v", v, err)
	}
	// Setups over the healthy-topology broadcast route are refused while
	// the link is down (they would traverse it for some origins).
	route, err := n.BroadcastRoute(failed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Core().Setup(context.Background(), core.ConnRequest{
		ID: "refused", Spec: traffic.CBR(pcr), Priority: 1, Route: route,
	}); !errors.Is(err, core.ErrLinkDown) {
		t.Fatalf("healthy-route setup over failed link = %v, want ErrLinkDown", err)
	}
}

// TestWrappedTeardownIdempotent: a wrapped route visits ring nodes twice
// (once per ring direction); teardown must release every hop entry exactly
// once per switch and a second teardown must report the connection unknown
// rather than double-freeing.
func TestWrappedTeardownIdempotent(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 5})
	route, err := n.WrappedBroadcastRoute(4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the route revisits at least one switch.
	visits := make(map[string]int)
	for _, hop := range route {
		visits[hop.Switch]++
	}
	twice := 0
	for _, c := range visits {
		if c == 2 {
			twice++
		}
	}
	if twice == 0 {
		t.Fatalf("wrapped route %v never revisits a switch", route)
	}
	if _, err := n.Core().Setup(context.Background(), core.ConnRequest{
		ID: "wrap", Spec: traffic.CBR(0.01), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	for name := range visits {
		sw, _ := n.Core().Switch(name)
		if !sw.Has("wrap") {
			t.Fatalf("switch %s missing the wrapped connection", name)
		}
	}
	if err := n.Core().Teardown("wrap"); err != nil {
		t.Fatalf("teardown of wrapped route: %v", err)
	}
	for name := range visits {
		sw, _ := n.Core().Switch(name)
		if sw.Has("wrap") {
			t.Errorf("switch %s still carries entries after teardown", name)
		}
		if sw.ConnectionCount() != 0 {
			t.Errorf("switch %s carries %d connections after teardown", name, sw.ConnectionCount())
		}
	}
	if err := n.Core().Teardown("wrap"); !errors.Is(err, core.ErrUnknownConn) {
		t.Fatalf("second teardown = %v, want ErrUnknownConn", err)
	}
}

// TestFailPrimaryLinkEvictsFinalDelivery: a route whose LAST transmission
// crosses the failed link has no queueing point at the receiving node, so
// the core consecutive-hop model cannot see the traversal; the rtnet layer
// must evict it from ring-topology knowledge.
func TestFailPrimaryLinkEvictsFinalDelivery(t *testing.T) {
	const failed = 2
	n := newRTnet(t, Config{RingNodes: 6})
	setup := func(id string, route core.Route) {
		t.Helper()
		if _, err := n.Core().Setup(context.Background(), core.ConnRequest{
			ID: core.ConnID(id), Spec: traffic.CBR(0.01), Priority: 1, Route: route,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Broadcast from failed+2: queueing points at 4,5,0,1,2 — node 2's
	// transmission to node 3 is the final delivery over the failed link.
	bcast, err := n.BroadcastRoute((failed+2)%6, 0)
	if err != nil {
		t.Fatal(err)
	}
	setup("bcast-last-hop", bcast)
	// Unicast terminating at failed+1: single hop at node 2 delivering to 3.
	uni, err := n.SegmentRoute(failed, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	setup("uni-into-dead", uni)
	// Unicast well clear of the failed link: hops at 3, 4, delivery to 5.
	clear, err := n.SegmentRoute(failed+1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	setup("survivor", clear)

	evicted, err := n.FailPrimaryLink(failed)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]core.ConnID, len(evicted))
	for i, req := range evicted {
		ids[i] = req.ID
	}
	if len(ids) != 2 || ids[0] != "bcast-last-hop" || ids[1] != "uni-into-dead" {
		t.Fatalf("evicted = %v, want [bcast-last-hop uni-into-dead]", ids)
	}
	if conns := n.Core().Connections(); len(conns) != 1 || conns[0] != "survivor" {
		t.Fatalf("admitted after failure = %v, want [survivor]", conns)
	}
}

func TestNodeAndTerminalIndex(t *testing.T) {
	for _, i := range []int{0, 3, 15, 42} {
		got, err := NodeIndex(SwitchName(i))
		if err != nil || got != i {
			t.Errorf("NodeIndex(SwitchName(%d)) = %d, %v", i, got, err)
		}
	}
	for _, bad := range []string{"", "ring", "ring-1", "ring3x", "term00-00", "sw0"} {
		if _, err := NodeIndex(bad); err == nil {
			t.Errorf("NodeIndex(%q) succeeded", bad)
		}
	}
	for tt := 0; tt < MaxTerminalsPerNode; tt++ {
		got, err := TerminalIndex(TerminalPort(tt))
		if err != nil || got != tt {
			t.Errorf("TerminalIndex(TerminalPort(%d)) = %d, %v", tt, got, err)
		}
	}
	for _, bad := range []core.PortID{RingInPort, SecondaryRingInPort, 200} {
		if _, err := TerminalIndex(bad); err == nil {
			t.Errorf("TerminalIndex(%d) succeeded", bad)
		}
	}
}

func TestRouteEndpoints(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 6, TerminalsPerNode: 2})
	for origin := 0; origin < 6; origin++ {
		for hops := 1; hops < 6; hops++ {
			route, err := n.SegmentRoute(origin, 1, hops)
			if err != nil {
				t.Fatal(err)
			}
			info, err := n.RouteEndpoints(route)
			if err != nil {
				t.Fatalf("origin=%d hops=%d: %v", origin, hops, err)
			}
			want := RouteInfo{
				Origin: origin, Terminal: 1, Dest: (origin + hops) % 6,
				Broadcast: hops == 5,
			}
			if info != want {
				t.Errorf("origin=%d hops=%d: info = %+v, want %+v", origin, hops, info, want)
			}
		}
	}
	// Wrapped routes are not healthy-ring routes.
	wrapped, err := n.WrappedBroadcastRoute(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RouteEndpoints(wrapped); err == nil {
		t.Error("RouteEndpoints accepted a wrapped route")
	}
	if _, err := n.RouteEndpoints(nil); err == nil {
		t.Error("RouteEndpoints accepted an empty route")
	}
}

// TestWrappedRouteTo checks degraded-mode unicast: the route reaches the
// destination without the failed link and matches SegmentRoute's endpoints.
func TestWrappedRouteTo(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 6})
	for failed := 0; failed < 6; failed++ {
		for origin := 0; origin < 6; origin++ {
			for dest := 0; dest < 6; dest++ {
				if dest == origin {
					if _, err := n.WrappedRouteTo(origin, 0, dest, failed); err == nil {
						t.Errorf("WrappedRouteTo(origin=dest=%d) succeeded", origin)
					}
					continue
				}
				route, err := n.WrappedRouteTo(origin, 0, dest, failed)
				if err != nil {
					t.Fatalf("failed=%d origin=%d dest=%d: %v", failed, origin, dest, err)
				}
				if len(route) < 1 || len(route) > 2*5-1 {
					t.Errorf("failed=%d origin=%d dest=%d: %d hops", failed, origin, dest, len(route))
				}
				if route[0].Switch != SwitchName(origin) || route[0].In != TerminalPort(0) {
					t.Errorf("route starts at %+v, want origin %d", route[0], origin)
				}
				for i := 0; i+1 < len(route); i++ {
					if route[i].Switch == SwitchName(failed) && route[i+1].Switch == SwitchName((failed+1)%6) &&
						route[i].Out == RingOutPort && route[i+1].In == RingInPort {
						t.Errorf("failed=%d origin=%d dest=%d: route uses the failed primary link", failed, origin, dest)
					}
				}
			}
		}
	}
}

// TestWrappedRouteToReachesDest verifies the last hop actually delivers to
// the destination by replaying the wrapped-ring link sequence.
func TestWrappedRouteToReachesDest(t *testing.T) {
	n := newRTnet(t, Config{RingNodes: 7})
	const failed = 3
	ring := n.wrappedRing(failed)
	for origin := 0; origin < 7; origin++ {
		for dest := 0; dest < 7; dest++ {
			if dest == origin {
				continue
			}
			route, err := n.WrappedRouteTo(origin, 0, dest, failed)
			if err != nil {
				t.Fatal(err)
			}
			// Find the walk's start and replay len(route) links.
			start := -1
			for i, l := range ring {
				if l.from == origin {
					start = i
					break
				}
			}
			last := ring[(start+len(route)-1)%len(ring)]
			if last.to != dest {
				t.Errorf("origin=%d dest=%d: walk of %d links ends at %d",
					origin, dest, len(route), last.to)
			}
		}
	}
}
