// Overload injection: a deterministic harness for the control-plane
// overload path. It runs a real wire server (TCP, newline-delimited JSON)
// over an RTnet ring with an overload limiter on a manual clock, and
// drives it with scripted arrival bursts — interleaved read / low-priority
// / high-priority traffic, link failures mid-storm, explicit clock
// advances for token refill. Because arrivals are sequential and the
// clock never moves on its own, the shed pattern of a script is exactly
// reproducible, so tests can assert the degradation order itself, not
// just coarse aggregates.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/failover"
	"atmcac/internal/overload"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// OverloadKind enumerates overload-script events.
type OverloadKind string

const (
	// OvSetup requests a broadcast connection (wrapped when a link is
	// down). Priority selects the shedding class: 1 is setup-high, >1 is
	// setup-low.
	OvSetup OverloadKind = "setup"
	// OvRead issues a read-only query (list) — the first class to shed.
	OvRead OverloadKind = "read"
	// OvTeardown releases a connection; recovery class, never shed.
	OvTeardown OverloadKind = "teardown"
	// OvFail fails primary ring link Node -> Node+1 mid-storm; recovery
	// class, never shed.
	OvFail OverloadKind = "fail"
	// OvRestore clears the failed link; recovery class, never shed.
	OvRestore OverloadKind = "restore"
	// OvAdvance moves the limiter clock forward by D, refilling tokens.
	OvAdvance OverloadKind = "advance"
)

// OverloadEvent is one scripted arrival or clock step.
type OverloadEvent struct {
	Kind OverloadKind

	// ID, Origin, Terminal, PCR, Priority, DelayBound shape an OvSetup;
	// ID also names an OvTeardown. Priority 0 means 1.
	ID         core.ConnID
	Origin     int
	Terminal   int
	PCR        float64
	Priority   core.Priority
	DelayBound float64

	// Node identifies primary link Node -> Node+1 for OvFail/OvRestore.
	Node int

	// D is the clock advance for OvAdvance.
	D time.Duration
}

// OverloadScript is a deterministic overload scenario.
type OverloadScript []OverloadEvent

// OverloadOutcome records how the server answered one event.
type OverloadOutcome struct {
	Event OverloadEvent
	// Shed is true when the server answered with a typed overloaded
	// response; RetryAfter is its hint.
	Shed       bool
	RetryAfter time.Duration
	// Err is any non-shed failure (e.g. a genuine CAC rejection).
	Err error
	// Report carries the re-admission outcomes of an OvFail.
	Report *wire.FailoverReport
}

// OverloadHarness drives a live wire server through an overload script.
type OverloadHarness struct {
	cfg        rtnet.Config
	net        *rtnet.Network
	clock      *overload.ManualClock
	limiter    *overload.Limiter
	srv        *wire.Server
	client     *wire.Client
	done       chan struct{}
	failedFrom int
	outcomes   []OverloadOutcome
	// setupsUp counts connections the script successfully established and
	// has not torn down — the accounting oracle for Verify.
	setupsUp int
}

// NewOverload starts a wire server over a fresh ring with the given
// limiter shape (its Now is replaced by the harness manual clock) on an
// ephemeral loopback port. Callers must Close the harness.
func NewOverload(cfg rtnet.Config, lim overload.LimiterConfig) (*OverloadHarness, error) {
	rt, err := rtnet.New(cfg)
	if err != nil {
		return nil, err
	}
	h := &OverloadHarness{
		cfg:        cfg,
		net:        rt,
		clock:      overload.NewManualClock(),
		failedFrom: -1,
		done:       make(chan struct{}),
	}
	lim.Now = h.clock.Now
	h.limiter = overload.NewLimiter(lim)
	h.srv = wire.NewServer(rt.Core())
	h.srv.SetLimiter(h.limiter)
	eng := failover.New(rt, failover.Options{
		MaxAttempts: 2,
		Sleep:       func(time.Duration) {},
	})
	h.srv.SetFailoverHandler(func(from, to string, evicted []core.ConnRequest) []wire.ReadmitOutcome {
		node, err := rtnet.NodeIndex(from)
		if err != nil {
			outs := make([]wire.ReadmitOutcome, 0, len(evicted))
			for _, r := range evicted {
				outs = append(outs, wire.ReadmitOutcome{ID: r.ID, Error: err.Error()})
			}
			return outs
		}
		rep := eng.Readmit(evicted, node, core.Link{From: from, To: to})
		outs := make([]wire.ReadmitOutcome, 0, len(rep.Outcomes))
		for _, o := range rep.Outcomes {
			out := wire.ReadmitOutcome{ID: o.ID, Readmitted: o.Readmitted, Attempts: o.Attempts}
			if o.Err != nil {
				out.Error = o.Err.Error()
			}
			outs = append(outs, out)
		}
		return outs
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(h.done)
		_ = h.srv.Serve(l)
	}()
	client, err := wire.Dial(l.Addr().String())
	if err != nil {
		_ = h.srv.Close()
		<-h.done
		return nil, err
	}
	h.client = client
	return h, nil
}

// Close tears the client and server down.
func (h *OverloadHarness) Close() error {
	cerr := h.client.Close()
	serr := h.srv.Close()
	<-h.done
	if serr != nil && serr != wire.ErrServerClosed {
		return serr
	}
	return cerr
}

// Clock exposes the limiter's manual clock.
func (h *OverloadHarness) Clock() *overload.ManualClock { return h.clock }

// Limiter exposes the installed limiter, e.g. for HighPriorityFloor.
func (h *OverloadHarness) Limiter() *overload.Limiter { return h.limiter }

// Outcomes returns the recorded event outcomes so far.
func (h *OverloadHarness) Outcomes() []OverloadOutcome { return h.outcomes }

// Apply executes one event against the live server. The returned error is
// a harness/script error; shed responses and CAC rejections land in the
// Outcome instead.
func (h *OverloadHarness) Apply(ev OverloadEvent) (OverloadOutcome, error) {
	out := OverloadOutcome{Event: ev}
	switch ev.Kind {
	case OvSetup:
		prio := ev.Priority
		if prio == 0 {
			prio = 1
		}
		var route core.Route
		var err error
		if h.failedFrom < 0 {
			route, err = h.net.BroadcastRoute(ev.Origin, ev.Terminal)
		} else {
			route, err = h.net.WrappedBroadcastRoute(ev.Origin, ev.Terminal, h.failedFrom)
		}
		if err != nil {
			return out, err
		}
		_, err = h.client.Setup(context.Background(), core.ConnRequest{
			ID:         ev.ID,
			Spec:       traffic.CBR(ev.PCR),
			Priority:   prio,
			Route:      route,
			DelayBound: ev.DelayBound,
		})
		h.recordResult(&out, err)
		if !out.Shed && out.Err == nil {
			h.setupsUp++
		}
	case OvRead:
		_, err := h.client.List(context.Background())
		h.recordResult(&out, err)
	case OvTeardown:
		err := h.client.Teardown(context.Background(), ev.ID)
		h.recordResult(&out, err)
		if !out.Shed && out.Err == nil {
			h.setupsUp--
		}
	case OvFail:
		if h.failedFrom >= 0 && h.failedFrom != ev.Node {
			return out, fmt.Errorf("%w: link %d->%d failed while %d->%d is down (wrap heals one failure)",
				ErrScript, ev.Node, ev.Node+1, h.failedFrom, h.failedFrom+1)
		}
		from := rtnet.SwitchName(ev.Node)
		to := rtnet.SwitchName((ev.Node + 1) % h.cfg.RingNodes)
		rep, err := h.client.FailLink(context.Background(), from, to)
		h.recordResult(&out, err)
		out.Report = rep
		if !out.Shed && out.Err == nil {
			h.failedFrom = ev.Node
			for _, o := range rep.Outcomes {
				if !o.Readmitted {
					h.setupsUp--
				}
			}
		}
	case OvRestore:
		if h.failedFrom != ev.Node {
			return out, fmt.Errorf("%w: restore of %d->%d but failed link is %d",
				ErrScript, ev.Node, ev.Node+1, h.failedFrom)
		}
		from := rtnet.SwitchName(ev.Node)
		to := rtnet.SwitchName((ev.Node + 1) % h.cfg.RingNodes)
		err := h.client.RestoreLink(context.Background(), from, to)
		h.recordResult(&out, err)
		if !out.Shed && out.Err == nil {
			h.failedFrom = -1
		}
	case OvAdvance:
		h.clock.Advance(ev.D)
	default:
		return out, fmt.Errorf("%w: unknown overload kind %q", ErrScript, ev.Kind)
	}
	h.outcomes = append(h.outcomes, out)
	return out, nil
}

// recordResult splits a client error into the typed shed outcome and
// everything else.
func (h *OverloadHarness) recordResult(out *OverloadOutcome, err error) {
	if err == nil {
		return
	}
	var oe *wire.OverloadError
	if errors.As(err, &oe) {
		out.Shed = true
		out.RetryAfter = oe.RetryAfter
		return
	}
	out.Err = err
}

// Run applies the whole script, then verifies the degradation invariants.
func (h *OverloadHarness) Run(script OverloadScript) ([]OverloadOutcome, error) {
	for i, ev := range script {
		if _, err := h.Apply(ev); err != nil {
			return h.outcomes, fmt.Errorf("faultinject: overload event %d (%s): %w", i, ev.Kind, err)
		}
	}
	return h.outcomes, h.Verify()
}

// Verify checks the overload invariants on the current state:
//
//   - every shed response is typed and carries a positive retry-after hint;
//   - recovery-class events (teardown, fail, restore) were never shed;
//   - the server's admitted-connection count equals the script's tally of
//     successful setups minus teardowns and failover losses — shedding and
//     retrying lost or duplicated nothing;
//   - the paper's admission invariants still hold (clean audit, hard
//     delay bounds kept, no dead-link traversal) — overload control
//     degraded throughput, never guarantees.
func (h *OverloadHarness) Verify() error {
	for i, out := range h.outcomes {
		if !out.Shed {
			continue
		}
		if out.RetryAfter <= 0 {
			return fmt.Errorf("faultinject: event %d (%s) shed without a retry-after hint", i, out.Event.Kind)
		}
		switch out.Event.Kind {
		case OvTeardown, OvFail, OvRestore:
			return fmt.Errorf("faultinject: recovery event %d (%s) was shed — degradation order violated",
				i, out.Event.Kind)
		}
	}
	up := len(h.net.Core().Connections())
	if up != h.setupsUp {
		return fmt.Errorf("faultinject: server carries %d connections, script established %d — admissions lost or duplicated",
			up, h.setupsUp)
	}
	inner := &Harness{cfg: h.cfg, net: h.net, failedFrom: h.failedFrom}
	return inner.Verify()
}
