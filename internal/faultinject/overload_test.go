package faultinject

import (
	"fmt"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/overload"
	"atmcac/internal/rtnet"
)

func overloadRing() rtnet.Config {
	return rtnet.Config{
		RingNodes:        8,
		TerminalsPerNode: 4,
		QueueCells:       map[core.Priority]float64{1: 32, 2: 128},
	}
}

// soakRound is one scripted burst: four interleaved (read, low, high)
// triples — 12 arrivals against a bucket of 8 — then teardown of the lows
// that survived, with the bucket already empty.
func soakRound(round int) OverloadScript {
	var s OverloadScript
	for i := 0; i < 4; i++ {
		s = append(s,
			OverloadEvent{Kind: OvRead},
			OverloadEvent{
				Kind: OvSetup, ID: lowID(round, i), Priority: 2,
				Origin: (round + i) % 8, Terminal: i % 4, PCR: 0.001,
			},
			OverloadEvent{
				Kind: OvSetup, ID: highID(round, i), Priority: 1,
				Origin: (round + i + 3) % 8, Terminal: (i + 1) % 4, PCR: 0.001,
				DelayBound: 2000,
			},
		)
	}
	return s
}

func lowID(round, i int) core.ConnID  { return core.ConnID(fmt.Sprintf("low-%d-%d", round, i)) }
func highID(round, i int) core.ConnID { return core.ConnID(fmt.Sprintf("high-%d-%d", round, i)) }

// TestOverloadSoak drives ten scripted bursts (12 arrivals each against a
// token bucket of 8) through a live wire server, failing a primary ring
// link mid-storm and restoring it a round later. It asserts the exact
// degradation order every round — reads shed first, then low-priority
// setups, high-priority setups never — plus the harness invariants: every
// shed response typed with a retry-after hint, recovery traffic (teardown,
// fail-link, restore-link) never shed even on an empty bucket, no lost or
// duplicated admissions, audit clean and hard bounds kept throughout.
func TestOverloadSoak(t *testing.T) {
	h, err := NewOverload(overloadRing(), overload.LimiterConfig{Rate: 1, Burst: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	floor := h.Limiter().HighPriorityFloor()
	if floor != 2 {
		t.Fatalf("HighPriorityFloor = %d with burst 8, want 2", floor)
	}

	const rounds = 10
	for round := 0; round < rounds; round++ {
		var script OverloadScript
		switch round {
		case 4:
			// Mid-storm partition: primary link 0 -> 1 goes down before the
			// burst; every connection traversing it is evicted and must be
			// re-admitted over the wrapped ring while the bucket drains.
			script = append(script, OverloadEvent{Kind: OvFail, Node: 0})
		case 5:
			script = append(script, OverloadEvent{Kind: OvRestore, Node: 0})
		}
		script = append(script, soakRound(round)...)
		// Teardowns with the bucket empty: recovery class must pass.
		script = append(script,
			OverloadEvent{Kind: OvTeardown, ID: lowID(round, 0)},
			OverloadEvent{Kind: OvTeardown, ID: lowID(round, 1)},
			// Refill the bucket completely for the next round.
			OverloadEvent{Kind: OvAdvance, D: 8 * time.Second},
		)
		before := len(h.Outcomes())
		if _, err := h.Run(script); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		assertRoundDegradation(t, round, h.Outcomes()[before:], floor)
	}

	// The mid-storm failover must have re-admitted every evicted
	// connection over the wrapped ring — load is far below capacity.
	for _, out := range h.Outcomes() {
		if out.Event.Kind != OvFail {
			continue
		}
		if out.Err != nil || out.Report == nil {
			t.Fatalf("fail-link outcome: err=%v report=%v", out.Err, out.Report)
		}
		for _, o := range out.Report.Outcomes {
			if !o.Readmitted {
				t.Errorf("connection %s not re-admitted after mid-storm failure: %s", o.ID, o.Error)
			}
		}
	}
}

// assertRoundDegradation checks one round's exact shed pattern: with a
// bucket of 8 and reserves 0.5/0.25/0 the interleaved (read, low, high)
// x4 burst must admit 2 reads, 2 lows and all 4 highs.
func assertRoundDegradation(t *testing.T, round int, outs []OverloadOutcome, floor int) {
	t.Helper()
	var readAdm, readShed, lowAdm, lowShed, highAdm, highShed int
	for _, out := range outs {
		if out.Err != nil {
			t.Fatalf("round %d: event %s %s failed: %v", round, out.Event.Kind, out.Event.ID, out.Err)
		}
		switch {
		case out.Event.Kind == OvRead && out.Shed:
			readShed++
		case out.Event.Kind == OvRead:
			readAdm++
		case out.Event.Kind == OvSetup && out.Event.Priority > 1 && out.Shed:
			lowShed++
		case out.Event.Kind == OvSetup && out.Event.Priority > 1:
			lowAdm++
		case out.Event.Kind == OvSetup && out.Shed:
			highShed++
		case out.Event.Kind == OvSetup:
			highAdm++
		case out.Shed:
			t.Fatalf("round %d: recovery event %s was shed", round, out.Event.Kind)
		}
	}
	if readAdm != 2 || readShed != 2 || lowAdm != 2 || lowShed != 2 || highAdm != 4 || highShed != 0 {
		t.Fatalf("round %d degradation order: reads %d/%d lows %d/%d highs %d/%d (admitted/shed), want 2/2 2/2 4/0",
			round, readAdm, readShed, lowAdm, lowShed, highAdm, highShed)
	}
	if highAdm < floor {
		t.Fatalf("round %d: high-priority goodput %d below floor %d", round, highAdm, floor)
	}
}

// TestOverloadReplayDeterministic runs the identical script on two fresh
// harnesses and demands the identical shed pattern — the manual clock and
// sequential arrivals leave no room for timing dependence.
func TestOverloadReplayDeterministic(t *testing.T) {
	script := OverloadScript{OverloadEvent{Kind: OvFail, Node: 2}}
	script = append(script, soakRound(0)...)
	script = append(script, OverloadEvent{Kind: OvRestore, Node: 2})
	script = append(script, OverloadEvent{Kind: OvAdvance, D: 3 * time.Second})
	script = append(script, soakRound(1)...)

	run := func() (string, error) {
		h, err := NewOverload(overloadRing(), overload.LimiterConfig{Rate: 1, Burst: 8})
		if err != nil {
			return "", err
		}
		defer h.Close()
		outs, err := h.Run(script)
		if err != nil {
			return "", err
		}
		pattern := ""
		for _, out := range outs {
			if out.Shed {
				pattern += "s"
			} else {
				pattern += "."
			}
		}
		return pattern, nil
	}
	first, err := run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("overload replay diverged:\nfirst:  %s\nsecond: %s", first, second)
	}
}
