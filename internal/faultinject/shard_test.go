package faultinject

import (
	"testing"
)

// TestShardHarnessSweep is the shard chaos soak: every protocol boundary
// crossed with every victim kind — coordinator kill, shard kill, shard
// partition — must recover to a uniform, residue-free fleet. The
// expected outcome of the interrupted setup is deterministic per cell:
// a coordinator that dies before its commit intent leaves presumed
// abort; after it, recovery re-drives the commit. A dead or partitioned
// shard only blocks the first prepare — any later fault resolves to
// admission once the coordinator can reach it again.
func TestShardHarnessSweep(t *testing.T) {
	points := []ShardPoint{ShardPrePrepare, ShardPostPrepare, ShardPreCommit, ShardMidCommit, ShardPostCommit}
	cases := []struct {
		name  string
		fault func(p ShardPoint) ShardFault
		// admitted reports whether the interrupted setup must survive.
		admitted func(p ShardPoint) bool
	}{
		{
			name:  "coordinator-crash",
			fault: func(p ShardPoint) ShardFault { return ShardFault{Point: p, Victim: VictimCoordinator} },
			admitted: func(p ShardPoint) bool {
				return p == ShardMidCommit || p == ShardPostCommit
			},
		},
		{
			name:     "shard-crash",
			fault:    func(p ShardPoint) ShardFault { return ShardFault{Point: p, Victim: "s1"} },
			admitted: func(p ShardPoint) bool { return p != ShardPrePrepare },
		},
		{
			name:     "shard-partition",
			fault:    func(p ShardPoint) ShardFault { return ShardFault{Point: p, Victim: "s2", Partition: true} },
			admitted: func(p ShardPoint) bool { return p != ShardPrePrepare },
		},
	}
	for _, tc := range cases {
		for _, p := range points {
			t.Run(tc.name+"/"+string(p), func(t *testing.T) {
				t.Parallel()
				h := &ShardHarness{Dir: t.TempDir()}
				res, err := h.Run(tc.fault(p))
				if err != nil {
					t.Fatal(err)
				}
				if want := tc.admitted(p); res.VictimAdmitted != want {
					t.Fatalf("interrupted setup admitted=%v, want %v (recovered %+v)",
						res.VictimAdmitted, want, res.Recovered)
				}
			})
		}
	}
}
