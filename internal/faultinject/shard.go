// Shard chaos: a deterministic harness for the cross-shard two-phase
// admission protocol. Three journaled shards (each a full wire server
// with its own durability files) and a coordinator with an intent log
// run over real TCP; the harness kills the coordinator or a shard at
// every protocol-critical instant — before any prepare, after all
// prepares, before the commit intent, after the first shard committed,
// after all shards committed — or partitions a shard away, then recovers
// and asserts the sharding oracle:
//
//   - no acked setup is lost: every connection acked before the fault is
//     admitted on its owning shards after recovery;
//   - no refused setup leaves residual bandwidth: an identical request
//     admits afterwards, and no prepared hold survives;
//   - the interrupted setup resolves uniformly: admitted on ALL its
//     owning shards or on NONE;
//   - delay bounds hold on every surviving admission (no shard reports
//     a guarantee violation).
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/shard"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// ShardPoint selects the protocol instant where the fault fires. The
// first five match the coordinator's boundary hooks, in protocol order.
type ShardPoint string

const (
	// ShardPrePrepare fires after the begin intent, before any prepare.
	ShardPrePrepare ShardPoint = "pre-prepare"
	// ShardPostPrepare fires after every shard holds a reservation.
	ShardPostPrepare ShardPoint = "post-prepare"
	// ShardPreCommit fires just before the commit intent is appended —
	// the last instant where presumed abort still applies.
	ShardPreCommit ShardPoint = "pre-commit"
	// ShardMidCommit fires after the first shard committed, with the
	// rest still holding prepares — the classic 2PC window.
	ShardMidCommit ShardPoint = "mid-commit"
	// ShardPostCommit fires after every shard committed, before the done
	// record.
	ShardPostCommit ShardPoint = "post-commit"
)

// VictimCoordinator names the coordinator as the process to kill.
const VictimCoordinator = "coordinator"

// ShardFault arms one fault: the process named Victim (the coordinator
// or a shard ID) dies at Point; with Partition set, the victim shard is
// cut off instead of killed — it stays alive (its reaper keeps running)
// but unreachable until the harness heals the link.
type ShardFault struct {
	Point     ShardPoint
	Victim    string
	Partition bool
}

// ShardResult reports one harness run.
type ShardResult struct {
	// VictimAdmitted is the uniform post-recovery outcome of the
	// interrupted setup.
	VictimAdmitted bool
	// Recovered summarizes the intent-log resolution that healed the
	// fleet.
	Recovered *shard.RecoverReport
}

// ShardHarness drives one armed fault through a three-shard fleet.
type ShardHarness struct {
	// Dir holds the shards' durability files and the intent log.
	Dir string
	// SwitchesPerShard shapes each shard's slice of the path (default 2).
	SwitchesPerShard int
	// PrepareTTL bounds the holds (default 5s: recovery, not the reaper,
	// resolves them in these scenarios).
	PrepareTTL time.Duration
}

func (h *ShardHarness) defaults() {
	if h.SwitchesPerShard == 0 {
		h.SwitchesPerShard = 2
	}
	if h.PrepareTTL == 0 {
		h.PrepareTTL = 5 * time.Second
	}
}

const shardCount = 3

// tcpProxy sits between the coordinator and one shard so the harness
// can partition the pair without killing either.
type tcpProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	cut   bool
	conns map[net.Conn]struct{}
}

func newTCPProxy(target string) (*tcpProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &tcpProxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

func (p *tcpProxy) addr() string { return p.ln.Addr().String() }

func (p *tcpProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		cut := p.cut
		if !cut {
			p.conns[c] = struct{}{}
		}
		p.mu.Unlock()
		if cut {
			_ = c.Close()
			continue
		}
		go p.pipe(c)
	}
}

func (p *tcpProxy) pipe(c net.Conn) {
	up, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		_ = c.Close()
		return
	}
	p.mu.Lock()
	if p.cut {
		p.mu.Unlock()
		_ = c.Close()
		_ = up.Close()
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	done := make(chan struct{}, 2)
	cp := func(dst, src net.Conn) {
		_, _ = io.Copy(dst, src)
		_ = dst.Close()
		_ = src.Close()
		done <- struct{}{}
	}
	go cp(up, c)
	go cp(c, up)
	<-done
	<-done
	p.mu.Lock()
	delete(p.conns, c)
	delete(p.conns, up)
	p.mu.Unlock()
}

// Cut severs present and future connections; Heal restores the link.
func (p *tcpProxy) Cut() {
	p.mu.Lock()
	p.cut = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

func (p *tcpProxy) Heal() {
	p.mu.Lock()
	p.cut = false
	p.mu.Unlock()
}

func (p *tcpProxy) Close() { _ = p.ln.Close(); p.Cut() }

// shardNode is one shard: a journaled wire server owning a slice of the
// switches, rebootable on a stable address.
type shardNode struct {
	id       string
	dir      string
	addr     string // stable across reboots (SO_REUSEADDR rebind)
	switches []string

	network *core.Network
	dur     *wire.Durable
	srv     *wire.Server
	done    chan struct{}
	alive   bool
}

// boot builds the network from the durable files and serves it. On the
// first boot addr is empty and an ephemeral port is chosen; reboots
// rebind the same address.
func (n *shardNode) boot() error {
	network := core.NewNetwork(core.HardCDV{})
	for _, sw := range n.switches {
		if _, err := network.AddSwitch(core.SwitchConfig{
			Name: sw, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			return err
		}
	}
	dur, err := wire.OpenDurable(wire.DurableConfig{
		StatePath: filepath.Join(n.dir, "state.json"),
		Mode:      wire.DurabilityJournalSync,
	})
	if err != nil {
		return err
	}
	if _, err := dur.Recover(network); err != nil {
		_ = dur.Close()
		return err
	}
	srv := wire.NewServer(network)
	srv.SetShardID(n.id)
	srv.SetDurable(dur)
	listenAddr := n.addr
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", listenAddr)
		if err == nil {
			break
		}
		if attempt >= 20 {
			_ = dur.Close()
			return fmt.Errorf("faultinject: rebind %s: %w", listenAddr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	n.addr = ln.Addr().String()
	n.network, n.dur, n.srv = network, dur, srv
	n.done = make(chan struct{})
	go func(done chan struct{}) { defer close(done); _ = srv.Serve(ln) }(n.done)
	n.alive = true
	return nil
}

// crash kills the shard without a final snapshot.
func (n *shardNode) crash() {
	if !n.alive {
		return
	}
	n.alive = false
	_ = n.srv.Close()
	<-n.done
	_ = n.dur.Close()
}

// list asks the live shard for its admitted connections.
func (n *shardNode) list() (map[core.ConnID]bool, *wire.HealthReport, *wire.ShardStatusReport, error) {
	cl, err := wire.Dial(n.addr)
	if err != nil {
		return nil, nil, nil, err
	}
	defer cl.Close()
	ids, err := cl.List(context.Background())
	if err != nil {
		return nil, nil, nil, err
	}
	set := make(map[core.ConnID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	health, err := cl.Health(context.Background())
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := cl.ShardReap(context.Background()); err != nil {
		return nil, nil, nil, err
	}
	st, err := cl.ShardStatus(context.Background())
	if err != nil {
		return nil, nil, nil, err
	}
	return set, health, st, nil
}

// errShardCrash is the sentinel the boundary hook aborts the coordinator
// with when the coordinator itself is the victim.
var errShardCrash = errors.New("faultinject: injected coordinator crash")

// Run executes the armed fault end to end. See the package comment for
// the oracle it asserts.
func (h *ShardHarness) Run(fault ShardFault) (*ShardResult, error) {
	h.defaults()
	if h.Dir == "" {
		return nil, fmt.Errorf("faultinject: ShardHarness needs a Dir")
	}

	// Boot the fleet: contiguous switch slices, one proxy per shard so a
	// partition is a link property, not a process death.
	nodes := make([]*shardNode, shardCount)
	proxies := make([]*tcpProxy, shardCount)
	spec := ""
	sw := 0
	for i := range nodes {
		var owned []string
		for j := 0; j < h.SwitchesPerShard; j++ {
			owned = append(owned, fmt.Sprintf("sw%d", sw))
			sw++
		}
		n := &shardNode{id: fmt.Sprintf("s%d", i), dir: filepath.Join(h.Dir, fmt.Sprintf("s%d", i)), switches: owned}
		if err := os.MkdirAll(n.dir, 0o755); err != nil {
			return nil, err
		}
		if err := n.boot(); err != nil {
			return nil, fmt.Errorf("faultinject: boot %s: %w", n.id, err)
		}
		defer n.crash()
		p, err := newTCPProxy(n.addr)
		if err != nil {
			return nil, err
		}
		defer p.Close()
		nodes[i], proxies[i] = n, p
		if spec != "" {
			spec += ";"
		}
		spec += fmt.Sprintf("%s@%s=%s", n.id, p.addr(), joinComma(owned))
	}
	m, err := shard.ParseMap(spec)
	if err != nil {
		return nil, err
	}
	logPath := filepath.Join(h.Dir, "intent.log")
	newCoord := func() (*shard.Coordinator, error) {
		c, err := shard.NewCoordinator(m, journal.OSFS{}, logPath)
		if err != nil {
			return nil, err
		}
		c.PrepareTTL = h.PrepareTTL
		c.OpTimeout = 500 * time.Millisecond
		c.Retries = 2
		return c, nil
	}
	coord, err := newCoord()
	if err != nil {
		return nil, err
	}
	defer func() { _ = coord.Close() }()
	ctx := context.Background()

	victimShard := -1
	for i, n := range nodes {
		if n.id == fault.Victim {
			victimShard = i
		}
	}
	if fault.Victim != VictimCoordinator && victimShard < 0 {
		return nil, fmt.Errorf("faultinject: unknown victim %q", fault.Victim)
	}
	if fault.Partition && victimShard < 0 {
		return nil, fmt.Errorf("faultinject: partition needs a shard victim")
	}

	// Acked background load: one local setup per shard plus one acked
	// cross-shard setup — the set that must survive whatever happens next.
	acked := make(map[core.ConnID][]int) // conn -> owning shard indexes
	port := core.PortID(1)
	for i, n := range nodes {
		id := core.ConnID(fmt.Sprintf("base-%s", n.id))
		req := core.ConnRequest{ID: id, Spec: traffic.CBR(0.05), Priority: 1,
			Route: routeOver(n.switches, port)}
		if _, err := coord.Setup(ctx, req); err != nil {
			return nil, fmt.Errorf("faultinject: background setup %s: %w", id, err)
		}
		acked[id] = []int{i}
	}
	port++
	baseX := core.ConnRequest{ID: "base-x", Spec: traffic.CBR(0.05), Priority: 1,
		Route: routeOver(append(append([]string{}, nodes[0].switches...), nodes[1].switches...), port)}
	if _, err := coord.Setup(ctx, baseX); err != nil {
		return nil, fmt.Errorf("faultinject: background cross-shard setup: %w", err)
	}
	acked["base-x"] = []int{0, 1}

	// Arm the fault at the boundary and fire the victim transaction: a
	// setup spanning all three shards.
	coord.SetTestHook(func(point, txn string) error {
		if ShardPoint(point) != fault.Point {
			return nil
		}
		coord.SetTestHook(nil)
		switch {
		case fault.Victim == VictimCoordinator:
			return errShardCrash
		case fault.Partition:
			proxies[victimShard].Cut()
		default:
			nodes[victimShard].crash()
		}
		return nil
	})
	port++
	var all []string
	for _, n := range nodes {
		all = append(all, n.switches...)
	}
	victimReq := core.ConnRequest{ID: "victim", Spec: traffic.CBR(0.05), Priority: 1,
		Route: routeOver(all, port), DelayBound: float64(len(all)) * 40}
	_, setupErr := coord.Setup(ctx, victimReq)

	// Recovery: restart whatever died, then resolve the intent log.
	if fault.Victim == VictimCoordinator {
		if !errors.Is(setupErr, errShardCrash) {
			return nil, fmt.Errorf("faultinject: coordinator fault at %s never fired (err=%v)", fault.Point, setupErr)
		}
		_ = coord.Close()
		if coord, err = newCoord(); err != nil {
			return nil, err
		}
	} else {
		if fault.Partition {
			proxies[victimShard].Heal()
		} else if err := nodes[victimShard].boot(); err != nil {
			return nil, fmt.Errorf("faultinject: reboot %s: %w", fault.Victim, err)
		}
		// The shard that died mid-protocol replayed its journal on boot:
		// commit records restored, bare prepares reaped — never admitted.
	}
	res := &ShardResult{}
	res.Recovered, err = coord.Recover(ctx)
	if err != nil {
		return nil, fmt.Errorf("faultinject: recover: %w", err)
	}
	if remaining := coord.InDoubt(); len(remaining) != 0 {
		return nil, fmt.Errorf("faultinject: transactions still in doubt after recovery: %v", remaining)
	}

	// Oracle. Collect every shard's view once.
	sets := make([]map[core.ConnID]bool, shardCount)
	for i, n := range nodes {
		set, health, st, err := n.list()
		if err != nil {
			return nil, fmt.Errorf("faultinject: inspect %s: %w", n.id, err)
		}
		if health.Violations != 0 {
			return nil, fmt.Errorf("faultinject: %s reports %d delay-bound violations", n.id, health.Violations)
		}
		if len(st.Prepared) != 0 {
			return nil, fmt.Errorf("faultinject: %s still holds %v after recovery", n.id, st.Prepared)
		}
		sets[i] = set
	}
	// No acked setup lost.
	for id, owners := range acked {
		for _, i := range owners {
			if !sets[i][id] {
				return nil, fmt.Errorf("faultinject: acked connection %s lost on %s", id, nodes[i].id)
			}
		}
	}
	// The interrupted setup resolved uniformly.
	on := 0
	for i := range nodes {
		if sets[i]["victim"] {
			on++
		}
	}
	switch on {
	case 0:
		res.VictimAdmitted = false
	case shardCount:
		res.VictimAdmitted = true
	default:
		return nil, fmt.Errorf("faultinject: interrupted setup admitted on %d of %d shards", on, shardCount)
	}
	// The coordinator must agree with the shards: an acked victim setup
	// may not have vanished, a refused one may not have landed.
	if setupErr == nil && !res.VictimAdmitted {
		return nil, fmt.Errorf("faultinject: acked victim setup lost")
	}
	// No refused setup leaves residual bandwidth: the identical request
	// (fresh ID) admits cleanly after recovery.
	probe := victimReq
	probe.ID = "probe"
	probe.Route = routeOver(all, port+1)
	if _, err := coord.Setup(ctx, probe); err != nil {
		return nil, fmt.Errorf("faultinject: post-recovery probe setup refused: %w", err)
	}
	if err := coord.Teardown(ctx, "probe"); err != nil {
		return nil, fmt.Errorf("faultinject: probe teardown: %w", err)
	}
	return res, nil
}

// routeOver builds one hop per switch, entering every queue at in.
func routeOver(switches []string, in core.PortID) core.Route {
	r := make(core.Route, len(switches))
	for i, sw := range switches {
		r[i] = core.Hop{Switch: sw, In: in, Out: 0}
	}
	return r
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
