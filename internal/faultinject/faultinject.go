// Package faultinject is a deterministic fault-injection harness for the
// live failure-handling path: scripted setup/teardown/fail/restore
// sequences over an RTnet ring, with invariant checks (no admitted
// connection traverses a dead link, hard guarantees hold after recovery,
// the state audit is clean) and a serial-replay oracle that re-runs a
// script on a fresh replica and demands the identical final state.
//
// Determinism is deliberate: the failover engine is run with a no-op Sleep
// so scripts never depend on wall-clock timing, and every event outcome —
// including CAC rejections — is recorded rather than raised, so a script
// describes a scenario, not a happy path.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/failover"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
)

// Kind enumerates script events.
type Kind string

const (
	// KindSetup admits a connection over the current topology (healthy or
	// wrapped, depending on link state).
	KindSetup Kind = "setup"
	// KindTeardown releases a connection.
	KindTeardown Kind = "teardown"
	// KindFail fails a primary ring link and runs the re-admission pass.
	KindFail Kind = "fail"
	// KindRestore clears a failed primary ring link.
	KindRestore Kind = "restore"
)

// Event is one scripted step.
type Event struct {
	Kind Kind

	// ID names the connection for KindSetup / KindTeardown.
	ID core.ConnID
	// Origin, Terminal place the sender for KindSetup.
	Origin, Terminal int
	// Hops selects a unicast segment of that many queueing points; 0 means
	// broadcast (the paper's workload).
	Hops int
	// PCR is the CBR peak cell rate for KindSetup.
	PCR float64
	// DelayBound is the optional hard end-to-end budget for KindSetup.
	DelayBound float64

	// Node identifies primary link Node -> Node+1 for KindFail/KindRestore.
	Node int
}

// Script is a deterministic event sequence.
type Script []Event

// Outcome records what one event did. Err holds per-event outcomes such as
// CAC rejections; it does not stop the script.
type Outcome struct {
	Event  Event
	Err    error
	Report *failover.Report
}

// ErrScript marks events the harness itself refuses (e.g. a second
// concurrent link failure, which the single-fault wrap model cannot heal).
var ErrScript = errors.New("faultinject: invalid script event")

// Harness drives one live network through a script.
type Harness struct {
	cfg rtnet.Config
	net *rtnet.Network
	eng *failover.Engine
	// failedFrom is the currently failed primary link's transmitting node,
	// -1 when the ring is healthy. The wrap model heals exactly one link
	// failure, so the harness enforces single-failure scripts.
	failedFrom int
	outcomes   []Outcome
}

// New builds a harness over a fresh network from cfg.
func New(cfg rtnet.Config) (*Harness, error) {
	net, err := rtnet.New(cfg)
	if err != nil {
		return nil, err
	}
	eng := failover.New(net, failover.Options{
		MaxAttempts: 2,
		Sleep:       func(time.Duration) {},
	})
	return &Harness{cfg: cfg, net: net, eng: eng, failedFrom: -1}, nil
}

// Network exposes the live network, e.g. for concurrent stress around a
// script.
func (h *Harness) Network() *rtnet.Network { return h.net }

// Outcomes returns the recorded event outcomes so far.
func (h *Harness) Outcomes() []Outcome { return h.outcomes }

// Apply executes one event. The returned error is a harness/script error
// (unknown kind, unsupported double failure); admission rejections and
// re-admission degradations land in the Outcome instead.
func (h *Harness) Apply(ev Event) (Outcome, error) {
	out := Outcome{Event: ev}
	switch ev.Kind {
	case KindSetup:
		route, err := h.routeFor(ev)
		if err != nil {
			return out, err
		}
		req := core.ConnRequest{
			ID:         ev.ID,
			Spec:       traffic.CBR(ev.PCR),
			Priority:   1,
			Route:      route,
			DelayBound: ev.DelayBound,
		}
		_, out.Err = h.net.Core().Setup(context.Background(), req)
	case KindTeardown:
		out.Err = h.net.Core().Teardown(ev.ID)
	case KindFail:
		if h.failedFrom >= 0 && h.failedFrom != ev.Node {
			return out, fmt.Errorf("%w: link %d->%d failed while %d->%d is down (wrap heals one failure)",
				ErrScript, ev.Node, ev.Node+1, h.failedFrom, h.failedFrom+1)
		}
		rep, err := h.eng.HandlePrimaryLinkFailure(ev.Node)
		if err != nil {
			return out, err
		}
		h.failedFrom = ev.Node
		out.Report = &rep
		out.Err = rep.Err()
	case KindRestore:
		if h.failedFrom != ev.Node {
			return out, fmt.Errorf("%w: restore of %d->%d but failed link is %d",
				ErrScript, ev.Node, ev.Node+1, h.failedFrom)
		}
		if err := h.net.RestorePrimaryLink(ev.Node); err != nil {
			return out, err
		}
		h.failedFrom = -1
	default:
		return out, fmt.Errorf("%w: unknown kind %q", ErrScript, ev.Kind)
	}
	h.outcomes = append(h.outcomes, out)
	return out, nil
}

// routeFor picks the healthy or wrapped route matching current link state.
func (h *Harness) routeFor(ev Event) (core.Route, error) {
	switch {
	case h.failedFrom < 0 && ev.Hops == 0:
		return h.net.BroadcastRoute(ev.Origin, ev.Terminal)
	case h.failedFrom < 0:
		return h.net.SegmentRoute(ev.Origin, ev.Terminal, ev.Hops)
	case ev.Hops == 0:
		return h.net.WrappedBroadcastRoute(ev.Origin, ev.Terminal, h.failedFrom)
	default:
		dest := (ev.Origin + ev.Hops) % h.cfg.RingNodes
		return h.net.WrappedRouteTo(ev.Origin, ev.Terminal, dest, h.failedFrom)
	}
}

// Run applies the whole script, then verifies the invariants.
func (h *Harness) Run(script Script) ([]Outcome, error) {
	for i, ev := range script {
		if _, err := h.Apply(ev); err != nil {
			return h.outcomes, fmt.Errorf("faultinject: event %d (%s): %w", i, ev.Kind, err)
		}
	}
	return h.outcomes, h.Verify()
}

// Verify checks every harness invariant on the current state.
func (h *Harness) Verify() error {
	if err := h.VerifyNoDeadLinkTraversal(); err != nil {
		return err
	}
	if err := h.VerifyGuarantees(); err != nil {
		return err
	}
	return nil
}

// VerifyNoDeadLinkTraversal asserts that no admitted connection uses a
// failed link — neither between consecutive queueing points nor on its
// final delivery (the receiving node does not queue, so the core route
// cannot show that traversal; it is recovered from ring geometry).
func (h *Harness) VerifyNoDeadLinkTraversal() error {
	failed := h.net.Core().FailedLinks()
	if len(failed) == 0 {
		return nil
	}
	down := make(map[core.Link]struct{}, len(failed))
	for _, l := range failed {
		down[l] = struct{}{}
	}
	for _, req := range h.net.Core().AdmittedRequests() {
		for i := 0; i+1 < len(req.Route); i++ {
			l := core.Link{From: req.Route[i].Switch, To: req.Route[i+1].Switch}
			if _, dead := down[l]; dead {
				return fmt.Errorf("faultinject: connection %q admitted over dead link %s", req.ID, l)
			}
		}
		if l, crosses := h.net.DeliveryLink(req.Route); crosses {
			if _, dead := down[l]; dead {
				return fmt.Errorf("faultinject: connection %q delivers its last hop over dead link %s", req.ID, l)
			}
		}
	}
	return nil
}

// VerifyGuarantees asserts the paper's admission invariants still hold:
// the per-queue audit is clean, every connection with a hard DelayBound
// keeps EndToEndGuaranteed within it, and no route exceeds the wrapped
// worst case of 2(R-1)-1 queueing points.
func (h *Harness) VerifyGuarantees() error {
	if v, err := h.net.Core().Audit(); err != nil {
		return fmt.Errorf("faultinject: audit: %w", err)
	} else if len(v) > 0 {
		return fmt.Errorf("faultinject: audit found %d violations: %+v", len(v), v)
	}
	maxHops := 2*(h.cfg.RingNodes-1) - 1
	for _, req := range h.net.Core().AdmittedRequests() {
		if len(req.Route) > maxHops {
			return fmt.Errorf("faultinject: connection %q has %d queueing points, wrapped max is %d",
				req.ID, len(req.Route), maxHops)
		}
		if req.DelayBound <= 0 {
			continue
		}
		sum := 0.0
		for _, hop := range req.Route {
			sw, ok := h.net.Core().Switch(hop.Switch)
			if !ok {
				return fmt.Errorf("faultinject: connection %q routes through unknown switch %q", req.ID, hop.Switch)
			}
			d, ok := sw.GuaranteedBoundAt(hop.Out, req.Priority)
			if !ok {
				return fmt.Errorf("faultinject: no guaranteed bound at %s:%d", hop.Switch, hop.Out)
			}
			sum += d
		}
		if sum > req.DelayBound {
			return fmt.Errorf("faultinject: connection %q guaranteed %g exceeds its hard bound %g",
				req.ID, sum, req.DelayBound)
		}
	}
	return nil
}

// Snapshot renders the final network state deterministically: admitted
// connections (with full routes) and failed links, both sorted.
func (h *Harness) Snapshot() string {
	reqs := h.net.Core().AdmittedRequests()
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].ID < reqs[j].ID })
	var b strings.Builder
	for _, req := range reqs {
		fmt.Fprintf(&b, "%s d=%g:", req.ID, req.DelayBound)
		for _, hop := range req.Route {
			fmt.Fprintf(&b, " %s/%d/%d", hop.Switch, hop.In, hop.Out)
		}
		b.WriteByte('\n')
	}
	for _, l := range h.net.Core().FailedLinks() {
		fmt.Fprintf(&b, "down %s\n", l)
	}
	return b.String()
}

// ReplayAgrees is the serial-replay oracle: it runs the script on two
// fresh replicas and fails unless both end in the identical state — any
// hidden nondeterminism (map iteration, timing dependence, state leakage
// across events) shows up as a snapshot diff.
func ReplayAgrees(cfg rtnet.Config, script Script) error {
	snap := func() (string, error) {
		h, err := New(cfg)
		if err != nil {
			return "", err
		}
		if _, err := h.Run(script); err != nil {
			return "", err
		}
		return h.Snapshot(), nil
	}
	first, err := snap()
	if err != nil {
		return err
	}
	second, err := snap()
	if err != nil {
		return err
	}
	if first != second {
		return fmt.Errorf("faultinject: serial replay diverged:\n--- first\n%s--- second\n%s", first, second)
	}
	return nil
}
