package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
)

var ringCfg = rtnet.Config{RingNodes: 6}

// fullCycle is the canonical scenario: load the healthy ring, fail a link,
// ride out degraded mode with churn, restore, admit again.
func fullCycle() Script {
	s := Script{}
	for origin := 0; origin < 6; origin++ {
		s = append(s, Event{Kind: KindSetup, ID: core.ConnID(fmt.Sprintf("h%d", origin)),
			Origin: origin, PCR: 0.05})
	}
	s = append(s,
		Event{Kind: KindFail, Node: 2},
		Event{Kind: KindTeardown, ID: "h0"},
		Event{Kind: KindSetup, ID: "d0", Origin: 0, PCR: 0.05},          // wrapped broadcast
		Event{Kind: KindSetup, ID: "d1", Origin: 4, Hops: 2, PCR: 0.02}, // wrapped unicast
		Event{Kind: KindRestore, Node: 2},
		Event{Kind: KindSetup, ID: "p0", Origin: 1, Hops: 3, PCR: 0.02}, // healthy again
	)
	return s
}

func TestScriptedFailureCycle(t *testing.T) {
	h, err := New(ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := h.Run(fullCycle())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Err != nil {
			t.Errorf("event %+v: %v", o.Event, o.Err)
		}
	}
	// The fail event produced a report: 5 broadcasts traverse link 2->3
	// (h3, from failed+1, does not) and all were re-admitted.
	var rep *Outcome
	for i := range outcomes {
		if outcomes[i].Event.Kind == KindFail {
			rep = &outcomes[i]
		}
	}
	if rep == nil || rep.Report == nil {
		t.Fatal("no failure report recorded")
	}
	if got := len(rep.Report.Outcomes); got != 5 {
		t.Fatalf("evicted %d connections, want 5: %+v", got, rep.Report.Outcomes)
	}
	if rep.Report.Readmitted() != 5 {
		t.Fatalf("re-admitted %d of 5: %+v", rep.Report.Readmitted(), rep.Report.Outcomes)
	}
	snap := h.Snapshot()
	if strings.Contains(snap, "down ") {
		t.Errorf("restored network still reports failed links:\n%s", snap)
	}
	if !strings.Contains(snap, "p0") || strings.Contains(snap, "h0 ") {
		t.Errorf("unexpected final state:\n%s", snap)
	}
}

func TestReplayOracleAgrees(t *testing.T) {
	if err := ReplayAgrees(ringCfg, fullCycle()); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedRejectionIsRecordedNotFatal: a hard bound that cannot survive
// the wrap shows up as a per-connection outcome and the invariants still
// hold (the connection is simply gone, not weakened).
func TestDegradedRejectionIsRecordedNotFatal(t *testing.T) {
	h, err := New(ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	script := Script{
		// Healthy broadcast from 4 is 5 hops (guaranteed 160 <= 200), but
		// its wrapped route is 9 hops (288 > 200).
		{Kind: KindSetup, ID: "tight", Origin: 4, PCR: 0.01, DelayBound: 200},
		{Kind: KindFail, Node: 2},
	}
	out, err := h.Apply(script[0])
	if err != nil || out.Err != nil {
		t.Fatalf("healthy setup: %v / %v", err, out.Err)
	}
	out, err = h.Apply(script[1])
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil || out.Report == nil || out.Report.Rejected() != 1 {
		t.Fatalf("fail outcome = %+v, want one rejected-degraded connection", out)
	}
	if !errors.Is(out.Report.Outcomes[0].Err, core.ErrRejected) {
		t.Fatalf("rejection error = %v, want ErrRejected", out.Report.Outcomes[0].Err)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("invariants after degraded rejection: %v", err)
	}
	if got := len(h.Network().Core().Connections()); got != 0 {
		t.Fatalf("%d connections still admitted, want 0", got)
	}
	// The oracle also accepts scripts with recorded degradations.
	if err := ReplayAgrees(ringCfg, script); err != nil {
		t.Fatal(err)
	}
}

func TestHarnessRefusesDoubleFailure(t *testing.T) {
	h, err := New(ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Apply(Event{Kind: KindFail, Node: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Apply(Event{Kind: KindFail, Node: 3}); !errors.Is(err, ErrScript) {
		t.Fatalf("second failure = %v, want ErrScript", err)
	}
	if _, err := h.Apply(Event{Kind: KindRestore, Node: 3}); !errors.Is(err, ErrScript) {
		t.Fatalf("mismatched restore = %v, want ErrScript", err)
	}
	if _, err := h.Apply(Event{Kind: "flood", Node: 0}); !errors.Is(err, ErrScript) {
		t.Fatalf("unknown kind = %v, want ErrScript", err)
	}
	// Re-failing the same link is a benign no-op event.
	if out, err := h.Apply(Event{Kind: KindFail, Node: 1}); err != nil || len(out.Report.Outcomes) != 0 {
		t.Fatalf("same-link refail: %+v / %v", out, err)
	}
}

// TestInvariantsCatchPlantedViolation: feed the verifier a state that does
// violate the dead-link invariant and make sure it actually fires — a
// verifier that can't fail verifies nothing. With the ring link mapper
// installed, core's eviction is exact and no such state is reachable, so
// the test deliberately downgrades the core to the consecutive-hop default
// mapper to reopen the final-delivery seam, then plants the violation.
func TestInvariantsCatchPlantedViolation(t *testing.T) {
	h, err := New(ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	coreN := h.Network().Core()
	coreN.SetLinkMapper(nil)
	// Single-hop unicast at node 5 delivering to node 0: the default
	// mapper sees no pair 5->0 in the one-hop route, so the conn survives
	// FailLink; ring geometry says its delivery crosses the dead link.
	seg, err := h.Network().SegmentRoute(5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coreN.Setup(context.Background(), core.ConnRequest{
		ID: "delivery", Spec: traffic.CBR(0.01), Priority: 1, Route: seg,
	}); err != nil {
		t.Fatal(err)
	}
	if evicted, err := coreN.FailLink(rtnet.SwitchName(5), rtnet.SwitchName(0)); err != nil || len(evicted) != 0 {
		t.Fatalf("FailLink = %v, %v; want the downgraded mapper to miss the conn", evicted, err)
	}
	err = h.VerifyNoDeadLinkTraversal()
	if err == nil || !strings.Contains(err.Error(), "delivery") {
		t.Fatalf("planted final-delivery violation not caught: %v", err)
	}
}

// TestSetupRefusesFinalDeliveryOverDeadLink: with the ring link mapper
// installed (the default for rtnet networks), the planted scenario above
// is unreachable — the setup itself is refused.
func TestSetupRefusesFinalDeliveryOverDeadLink(t *testing.T) {
	h, err := New(ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Network().FailPrimaryLink(5); err != nil {
		t.Fatal(err)
	}
	seg, err := h.Network().SegmentRoute(5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Network().Core().Setup(context.Background(), core.ConnRequest{
		ID: "delivery", Spec: traffic.CBR(0.01), Priority: 1, Route: seg,
	}); !errors.Is(err, core.ErrLinkDown) {
		t.Fatalf("setup delivering over dead link = %v, want ErrLinkDown", err)
	}
}

// TestConcurrentChurnUnderFailures drives setups/teardowns concurrently
// with fail/restore cycles (the -race target), then verifies all
// invariants at quiescence.
func TestConcurrentChurnUnderFailures(t *testing.T) {
	h, err := New(ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	n := h.Network()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				id := core.ConnID(fmt.Sprintf("w%d-%d", w, i))
				route, err := n.SegmentRoute((w+i)%6, 0, 1+i%4)
				if err != nil {
					t.Error(err)
					return
				}
				_, err = n.Core().Setup(context.Background(), core.ConnRequest{
					ID: id, Spec: traffic.CBR(0.002), Priority: 1, Route: route,
				})
				if err != nil && !errors.Is(err, core.ErrRejected) && !errors.Is(err, core.ErrLinkDown) {
					t.Errorf("setup %s: %v", id, err)
				}
				if err == nil && i%3 == 0 {
					if err := n.Core().Teardown(id); err != nil && !errors.Is(err, core.ErrUnknownConn) {
						t.Errorf("teardown %s: %v", id, err)
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 10; r++ {
			if _, err := n.FailPrimaryLink(2); err != nil {
				t.Errorf("fail: %v", err)
			}
			if err := n.RestorePrimaryLink(2); err != nil {
				t.Errorf("restore: %v", err)
			}
		}
		if _, err := n.FailPrimaryLink(2); err != nil {
			t.Errorf("final fail: %v", err)
		}
	}()
	wg.Wait()
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}
