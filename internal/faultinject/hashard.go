// HA shard chaos: the composed worst case of the shard and replica
// harnesses. Three shards, each a journaled replicated pair (sync-mode
// primary plus warm standby), fronted by a coordinator that is itself a
// replicated pair (active shipping its intent log to a tailing
// standby). The harness kills a shard primary — or the active
// coordinator — at every 2PC boundary, or partitions a pair's primary
// away from the coordinator, then asserts the combined oracle:
//
//   - no acked setup is lost: every connection acked before the fault
//     is admitted on each owning pair's surviving active member;
//   - no split-brain admission: the interrupted setup lands on ALL
//     active members or on NONE, and a partitioned ex-primary refuses
//     writes once superseded;
//   - zero residual holds after recovery, on every surviving member;
//   - no delay-bound violations on any surviving admission.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/obs"
	"atmcac/internal/overload"
	"atmcac/internal/replica"
	"atmcac/internal/shard"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// HAFault arms one composed fault: the process named Victim (a shard ID
// whose pair primary dies, or VictimCoordinator for the active
// coordinator) fails at Point. Partition cuts the coordinator's link to
// the victim pair's primary instead of killing it.
type HAFault struct {
	Point     ShardPoint
	Victim    string
	Partition bool
}

// HAResult reports one composed run.
type HAResult struct {
	// VictimAdmitted is the uniform post-fault outcome of the
	// interrupted setup across the pairs' active members.
	VictimAdmitted bool
	// CoordPromoted reports that the standby coordinator took over.
	CoordPromoted bool
	// ShardFailovers counts coordinator-driven shard failovers
	// (from the metrics registry).
	ShardFailovers uint64
	// Recovered summarizes the post-fault intent-log resolution.
	Recovered *shard.RecoverReport
}

// HAShardHarness drives one armed fault through three replicated shard
// pairs and a replicated coordinator pair.
type HAShardHarness struct {
	// Dir holds every member's durability files and both intent logs.
	Dir string
	// SwitchesPerShard shapes each shard's slice of the path (default 2).
	SwitchesPerShard int
	// PrepareTTL bounds the holds (default 5s).
	PrepareTTL time.Duration
	// CoordFailoverTimeout promotes the standby coordinator after this
	// much active-coordinator silence (default 400ms).
	CoordFailoverTimeout time.Duration
}

func (h *HAShardHarness) defaults() {
	if h.SwitchesPerShard == 0 {
		h.SwitchesPerShard = 2
	}
	if h.PrepareTTL == 0 {
		h.PrepareTTL = 5 * time.Second
	}
	if h.CoordFailoverTimeout == 0 {
		h.CoordFailoverTimeout = 400 * time.Millisecond
	}
}

// haMember is one member of a shard pair: a journaled wire server with
// replication attached on the appropriate side.
type haMember struct {
	id   string
	dir  string
	addr string

	network *core.Network
	dur     *wire.Durable
	srv     *wire.Server
	prim    *replica.Primary
	sb      *replica.Standby
	replLn  net.Listener
	done    chan struct{}
	alive   bool
}

// bootHAMember builds one pair member. A primary gets a replication
// listener (replLn) and sync-mode shipping; a standby follows
// primaryRepl and starts read-only.
func bootHAMember(id, dir string, switches []string, replLn net.Listener, primaryRepl string) (*haMember, error) {
	network := core.NewNetwork(core.HardCDV{})
	for _, sw := range switches {
		if _, err := network.AddSwitch(core.SwitchConfig{
			Name: sw, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dur, err := wire.OpenDurable(wire.DurableConfig{
		StatePath: filepath.Join(dir, "state.json"),
		Mode:      wire.DurabilityJournalSync,
	})
	if err != nil {
		return nil, err
	}
	if _, err := dur.Recover(network); err != nil {
		_ = dur.Close()
		return nil, err
	}
	srv := wire.NewServer(network)
	srv.SetShardID(id)
	srv.SetDurable(dur)
	m := &haMember{id: id, dir: dir, network: network, dur: dur, srv: srv, replLn: replLn}
	if replLn != nil {
		m.prim = replica.NewPrimary(srv, replica.PrimaryConfig{
			Mode:           replica.ModeSync,
			AckTimeout:     2 * time.Second,
			HeartbeatEvery: 50 * time.Millisecond,
		})
		srv.SetShipper(m.prim)
		go func() { _ = m.prim.Serve(replLn) }()
	}
	if primaryRepl != "" {
		srv.SetStandby(true)
		// FailoverTimeout stays zero: in this topology promotion is the
		// COORDINATOR's decision (shard-level failover), not the pair's.
		m.sb = replica.NewStandby(srv, replica.StandbyConfig{
			PrimaryAddr:      primaryRepl,
			ReconnectBackoff: overload.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
		})
		go func() { _ = m.sb.Run() }()
	}
	srv.SetReplicationStatus(replica.Status(m.prim, m.sb))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		m.crash()
		return nil, err
	}
	m.addr = ln.Addr().String()
	m.done = make(chan struct{})
	go func() { defer close(m.done); _ = srv.Serve(ln) }()
	m.alive = true
	return m, nil
}

// crash kills the member without a final snapshot. Idempotent.
func (m *haMember) crash() {
	if !m.alive && m.done == nil {
		return
	}
	m.alive = false
	if m.sb != nil {
		_ = m.sb.Close()
	}
	if m.prim != nil {
		_ = m.prim.Close()
	}
	_ = m.srv.Close()
	if m.done != nil {
		<-m.done
		m.done = nil
	}
	if m.replLn != nil {
		_ = m.replLn.Close()
	}
	_ = m.dur.Close()
}

// haPair is one replicated shard: primary behind a cuttable proxy,
// standby reachable directly.
type haPair struct {
	id       string
	switches []string
	primary  *haMember
	standby  *haMember
	proxy    *tcpProxy // between the coordinator and the primary
}

// activeAddr is where the coordinator's pool currently points.
func (p *haPair) activeMemberAddr(coord *shard.Coordinator) string {
	addr := coord.ActiveAddr(p.id)
	if addr == p.standby.addr {
		return p.standby.addr
	}
	// The pool drives the primary through the proxy; inspect it direct.
	return p.primary.addr
}

// inspect lists one live member's state (reaping expired holds first so
// the residual-hold oracle is about leaks, not pending TTLs).
func inspectMember(addr string) (map[core.ConnID]bool, *wire.HealthReport, *wire.ShardStatusReport, error) {
	cl, err := wire.Dial(addr)
	if err != nil {
		return nil, nil, nil, err
	}
	defer cl.Close()
	ids, err := cl.List(context.Background())
	if err != nil {
		return nil, nil, nil, err
	}
	set := make(map[core.ConnID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	health, err := cl.Health(context.Background())
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := cl.ShardReap(context.Background()); err != nil {
		return nil, nil, nil, err
	}
	st, err := cl.ShardStatus(context.Background())
	if err != nil {
		return nil, nil, nil, err
	}
	return set, health, st, nil
}

// Run executes the armed fault end to end against the composed fleet.
func (h *HAShardHarness) Run(fault HAFault) (*HAResult, error) {
	h.defaults()
	if h.Dir == "" {
		return nil, fmt.Errorf("faultinject: HAShardHarness needs a Dir")
	}

	// Boot three replicated pairs.
	pairs := make([]*haPair, shardCount)
	spec := ""
	sw := 0
	for i := range pairs {
		var owned []string
		for j := 0; j < h.SwitchesPerShard; j++ {
			owned = append(owned, fmt.Sprintf("sw%d", sw))
			sw++
		}
		id := fmt.Sprintf("s%d", i)
		replLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		prim, err := bootHAMember(id, filepath.Join(h.Dir, id+"-p"), owned, replLn, "")
		if err != nil {
			replLn.Close()
			return nil, fmt.Errorf("faultinject: boot %s primary: %w", id, err)
		}
		defer prim.crash()
		sb, err := bootHAMember(id, filepath.Join(h.Dir, id+"-s"), owned, nil, replLn.Addr().String())
		if err != nil {
			return nil, fmt.Errorf("faultinject: boot %s standby: %w", id, err)
		}
		defer sb.crash()
		proxy, err := newTCPProxy(prim.addr)
		if err != nil {
			return nil, err
		}
		defer proxy.Close()
		pairs[i] = &haPair{id: id, switches: owned, primary: prim, standby: sb, proxy: proxy}
		if spec != "" {
			spec += ";"
		}
		spec += fmt.Sprintf("%s@%s|%s=%s", id, proxy.addr(), sb.addr, joinComma(owned))
	}
	// Sync-mode shipping needs every standby attached before traffic.
	for _, p := range pairs {
		pp := p
		if !waitFor(5*time.Second, func() bool {
			cl, err := wire.Dial(pp.primary.addr)
			if err != nil {
				return false
			}
			defer cl.Close()
			rep, err := cl.Replication(context.Background())
			return err == nil && rep.Connected
		}) {
			return nil, fmt.Errorf("faultinject: %s standby never connected", p.id)
		}
	}
	m, err := shard.ParseMap(spec)
	if err != nil {
		return nil, err
	}

	// Boot the coordinator pair: active with a shipping intent log, a
	// standby coordinator tailing it.
	reg := obs.NewRegistry()
	tracer := obs.NewMetricsTracer(reg)
	activeLog := filepath.Join(h.Dir, "intent-active.log")
	standbyLog := filepath.Join(h.Dir, "intent-standby.log")
	newCoord := func(logPath string) (*shard.Coordinator, error) {
		c, err := shard.NewCoordinator(m, journal.OSFS{}, logPath)
		if err != nil {
			return nil, err
		}
		c.PrepareTTL = h.PrepareTTL
		c.OpTimeout = time.Second
		c.Retries = 2
		c.SetTracer(tracer)
		c.RegisterMetrics(reg)
		return c, nil
	}
	coord, err := newCoord(activeLog)
	if err != nil {
		return nil, err
	}
	defer func() { _ = coord.Close() }()
	intentPrim := shard.NewIntentPrimary(coord, tracer)
	intentPrim.HeartbeatEvery = 50 * time.Millisecond
	intentLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = intentPrim.Serve(intentLn) }()
	defer intentPrim.Close()
	coordSb, err := shard.NewStandbyCoordinator(shard.StandbyConfig{
		From: intentLn.Addr().String(), LogPath: standbyLog, FS: journal.OSFS{},
		FailoverTimeout: h.CoordFailoverTimeout, Tracer: tracer,
	})
	if err != nil {
		return nil, err
	}
	sbCtx, sbCancel := context.WithCancel(context.Background())
	defer sbCancel()
	sbDone := make(chan error, 1)
	go func() { sbDone <- coordSb.Run(sbCtx) }()
	defer coordSb.Close()
	if !waitFor(5*time.Second, intentPrim.Attached) {
		return nil, fmt.Errorf("faultinject: standby coordinator never attached")
	}
	ctx := context.Background()

	victimPair := -1
	for i, p := range pairs {
		if p.id == fault.Victim {
			victimPair = i
		}
	}
	if fault.Victim != VictimCoordinator && victimPair < 0 {
		return nil, fmt.Errorf("faultinject: unknown victim %q", fault.Victim)
	}
	if fault.Partition && victimPair < 0 {
		return nil, fmt.Errorf("faultinject: partition needs a shard victim")
	}

	// Acked background load: one local setup per pair plus one acked
	// cross-shard setup. Sync replication puts each on its standby
	// before the ack, so they must survive any single member's death.
	acked := make(map[core.ConnID][]int)
	port := core.PortID(1)
	for i, p := range pairs {
		id := core.ConnID(fmt.Sprintf("base-%s", p.id))
		req := core.ConnRequest{ID: id, Spec: traffic.CBR(0.05), Priority: 1,
			Route: routeOver(p.switches, port)}
		if _, err := coord.Setup(ctx, req); err != nil {
			return nil, fmt.Errorf("faultinject: background setup %s: %w", id, err)
		}
		acked[id] = []int{i}
	}
	port++
	baseX := core.ConnRequest{ID: "base-x", Spec: traffic.CBR(0.05), Priority: 1,
		Route: routeOver(append(append([]string{}, pairs[0].switches...), pairs[1].switches...), port)}
	if _, err := coord.Setup(ctx, baseX); err != nil {
		return nil, fmt.Errorf("faultinject: background cross-shard setup: %w", err)
	}
	acked["base-x"] = []int{0, 1}

	// Arm the fault and fire the victim transaction across all shards.
	coord.SetTestHook(func(point, txn string) error {
		if ShardPoint(point) != fault.Point {
			return nil
		}
		coord.SetTestHook(nil)
		switch {
		case fault.Victim == VictimCoordinator:
			return errShardCrash
		case fault.Partition:
			pairs[victimPair].proxy.Cut()
		default:
			pairs[victimPair].primary.crash()
		}
		return nil
	})
	port++
	var all []string
	for _, p := range pairs {
		all = append(all, p.switches...)
	}
	victimReq := core.ConnRequest{ID: "victim", Spec: traffic.CBR(0.05), Priority: 1,
		Route: routeOver(all, port), DelayBound: float64(len(all)) * 40}
	_, setupErr := coord.Setup(ctx, victimReq)

	res := &HAResult{}
	if fault.Victim == VictimCoordinator {
		// The active coordinator dies mid-protocol; its standby must
		// promote, and the promoted log must drive recovery.
		if !errors.Is(setupErr, errShardCrash) {
			return nil, fmt.Errorf("faultinject: coordinator fault at %s never fired (err=%v)", fault.Point, setupErr)
		}
		intentPrim.Close()
		_ = coord.Close()
		select {
		case err := <-sbDone:
			if err != nil {
				return nil, fmt.Errorf("faultinject: standby coordinator run: %w", err)
			}
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("faultinject: standby coordinator never promoted")
		}
		res.CoordPromoted = true
		succ, err := newCoord(standbyLog)
		if err != nil {
			return nil, err
		}
		coord = succ
		defer func() { _ = succ.Close() }()
		if got, want := coord.Epoch(), uint64(2); got != want {
			return nil, fmt.Errorf("faultinject: promoted coordinator term = %d, want %d", got, want)
		}
	} else if setupErr != nil {
		// A single shard-pair fault must NOT lose the in-flight setup:
		// shard-level failover completes it on the survivor.
		return nil, fmt.Errorf("faultinject: setup across %s fault did not survive failover: %v", fault.Point, setupErr)
	}

	res.Recovered, err = coord.Recover(ctx)
	if err != nil {
		return nil, fmt.Errorf("faultinject: recover: %w", err)
	}
	if remaining := coord.InDoubt(); len(remaining) != 0 {
		return nil, fmt.Errorf("faultinject: transactions still in doubt after recovery: %v", remaining)
	}
	// Liveness first: a fresh setup over the whole path must admit and
	// tear down cleanly on the surviving fleet. At a post-commit fault
	// nothing before this touches the dead member, so this is also what
	// forces the pool's failover to the survivor.
	var all2 []string
	for _, p := range pairs {
		all2 = append(all2, p.switches...)
	}
	probe := core.ConnRequest{ID: "probe", Spec: traffic.CBR(0.05), Priority: 1,
		Route: routeOver(all2, port+1), DelayBound: float64(len(all2)) * 40}
	if _, err := coord.Setup(ctx, probe); err != nil {
		return nil, fmt.Errorf("faultinject: post-recovery probe setup refused: %w", err)
	}
	if err := coord.Teardown(ctx, "probe"); err != nil {
		return nil, fmt.Errorf("faultinject: probe teardown: %w", err)
	}
	res.ShardFailovers = reg.Counter("atmcac_shard_failovers_total").Value()
	if fault.Victim != VictimCoordinator && res.ShardFailovers == 0 {
		return nil, fmt.Errorf("faultinject: shard fault resolved without a recorded failover")
	}

	// Oracle. Inspect each pair's surviving active member.
	sets := make([]map[core.ConnID]bool, shardCount)
	for i, p := range pairs {
		addr := p.activeMemberAddr(coord)
		set, health, st, err := inspectMember(addr)
		if err != nil {
			return nil, fmt.Errorf("faultinject: inspect %s active member: %w", p.id, err)
		}
		if health.Violations != 0 {
			return nil, fmt.Errorf("faultinject: %s reports %d delay-bound violations", p.id, health.Violations)
		}
		if len(st.Prepared) != 0 {
			return nil, fmt.Errorf("faultinject: %s still holds %v after recovery", p.id, st.Prepared)
		}
		sets[i] = set
	}
	for id, owners := range acked {
		for _, i := range owners {
			if !sets[i][id] {
				return nil, fmt.Errorf("faultinject: acked connection %s lost on %s", id, pairs[i].id)
			}
		}
	}
	on := 0
	for i := range pairs {
		if sets[i]["victim"] {
			on++
		}
	}
	switch on {
	case 0:
		res.VictimAdmitted = false
	case shardCount:
		res.VictimAdmitted = true
	default:
		return nil, fmt.Errorf("faultinject: interrupted setup admitted on %d of %d pairs", on, shardCount)
	}
	if setupErr == nil && !res.VictimAdmitted {
		return nil, fmt.Errorf("faultinject: acked victim setup lost")
	}
	if fault.Victim != VictimCoordinator && !res.VictimAdmitted {
		return nil, fmt.Errorf("faultinject: shard failover failed to complete the in-flight setup")
	}

	// A partitioned ex-primary, once superseded, must not accept writes:
	// its next replicated mutation is refused (the promoted standby
	// rejects its stale-epoch ship) and the refusal fences it.
	if fault.Partition {
		pairs[victimPair].proxy.Heal()
		zcl, err := wire.Dial(pairs[victimPair].primary.addr)
		if err != nil {
			return nil, fmt.Errorf("faultinject: redial partitioned ex-primary: %w", err)
		}
		zombie := core.ConnRequest{ID: "zombie", Spec: traffic.CBR(0.02), Priority: 1,
			Route: routeOver(pairs[victimPair].switches, port+5)}
		if _, zerr := zcl.Setup(context.Background(), zombie); zerr == nil {
			_ = zcl.Close()
			return nil, fmt.Errorf("faultinject: superseded ex-primary accepted a write")
		}
		fenced := waitFor(5*time.Second, func() bool {
			rep, rerr := zcl.Replication(context.Background())
			return rerr == nil && rep.Role == "fenced"
		})
		_ = zcl.Close()
		if !fenced {
			return nil, fmt.Errorf("faultinject: superseded ex-primary never fenced")
		}
	}
	return res, nil
}
