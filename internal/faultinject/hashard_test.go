package faultinject

import (
	"testing"
)

// TestHAShardHarnessSweep is the composed HA soak: every 2PC boundary
// crossed with every victim kind over replicated pairs. The outcomes
// differ from the unreplicated sweep in exactly the way HA promises:
// a shard-primary death or partition no longer costs the in-flight
// setup — the coordinator fails over to the pair's standby, promotes
// it and completes the transaction, so the victim setup must be
// admitted at EVERY point. Killing the active coordinator still
// resolves by decision record, now read from the promoted standby
// coordinator's shipped copy of the intent log: presumed abort before
// the commit intent, re-driven commit after it.
func TestHAShardHarnessSweep(t *testing.T) {
	points := []ShardPoint{ShardPrePrepare, ShardPostPrepare, ShardPreCommit, ShardMidCommit, ShardPostCommit}
	cases := []struct {
		name  string
		fault func(p ShardPoint) HAFault
		// admitted reports whether the interrupted setup must survive.
		admitted func(p ShardPoint) bool
	}{
		{
			name:  "coordinator-crash",
			fault: func(p ShardPoint) HAFault { return HAFault{Point: p, Victim: VictimCoordinator} },
			admitted: func(p ShardPoint) bool {
				return p == ShardMidCommit || p == ShardPostCommit
			},
		},
		{
			name:     "shard-primary-crash",
			fault:    func(p ShardPoint) HAFault { return HAFault{Point: p, Victim: "s1"} },
			admitted: func(ShardPoint) bool { return true },
		},
		{
			name:     "pair-partition",
			fault:    func(p ShardPoint) HAFault { return HAFault{Point: p, Victim: "s2", Partition: true} },
			admitted: func(ShardPoint) bool { return true },
		},
	}
	for _, tc := range cases {
		for _, p := range points {
			tc, p := tc, p
			t.Run(tc.name+"/"+string(p), func(t *testing.T) {
				t.Parallel()
				h := &HAShardHarness{Dir: t.TempDir()}
				res, err := h.Run(tc.fault(p))
				if err != nil {
					t.Fatal(err)
				}
				if want := tc.admitted(p); res.VictimAdmitted != want {
					t.Fatalf("interrupted setup admitted=%v, want %v (recovered %+v)",
						res.VictimAdmitted, want, res.Recovered)
				}
				if coordFault := tc.fault(p).Victim == VictimCoordinator; coordFault != res.CoordPromoted {
					t.Fatalf("coordinator promoted=%v for victim %q", res.CoordPromoted, tc.fault(p).Victim)
				}
				if tc.fault(p).Victim != VictimCoordinator && res.ShardFailovers == 0 {
					t.Fatal("shard fault resolved without a recorded shard failover")
				}
			})
		}
	}
}
