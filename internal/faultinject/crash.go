// Crash injection: a deterministic harness for the durability path. A
// CrashFS sits under the server's snapshot store and write-ahead journal
// and kills the persistence stack at an exact write/sync/truncate/rename
// boundary — modelling a process kill or a power loss (optionally with a
// torn half-written tail). The CrashHarness then drives a live wire
// server through a scripted admission sequence, crashes it at every
// boundary in turn, restarts from the surviving files, and asserts the
// recovery contract: the recovered admitted set equals the acked set
// exactly — no acked admission lost, no unacked or torn-down admission
// resurrected.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/failover"
	"atmcac/internal/journal"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// ErrCrash is returned by every CrashFS operation at and after the
// injected crash point — the filesystem is dead from then on, exactly as
// it is to a killed process.
var ErrCrash = errors.New("faultinject: injected crash")

// LossModel selects what survives of a file's tail at the crash point.
type LossModel int

const (
	// KeepAll models a process kill: every write that completed survives
	// (the OS still holds the data), only the crashing operation is lost.
	KeepAll LossModel = iota
	// DropUnsynced models a power loss: bytes written but not yet fsynced
	// are gone.
	DropUnsynced
	// TearUnsynced models a power loss that persisted half of the
	// unsynced tail — a torn frame the recovery path must detect,
	// preserve as evidence, and truncate.
	TearUnsynced
)

// String labels the model for test names.
func (m LossModel) String() string {
	switch m {
	case KeepAll:
		return "process-kill"
	case DropUnsynced:
		return "power-loss"
	case TearUnsynced:
		return "power-loss-torn"
	}
	return fmt.Sprintf("LossModel(%d)", int(m))
}

// CrashFS implements journal.FS over the real filesystem, counting every
// durability boundary (write, sync, truncate, rename, directory sync) and
// failing permanently once the armed boundary is reached. At the crash it
// rewrites the tracked files per the loss model, so what a restarted
// server reads is what a real crash would have left.
type CrashFS struct {
	inner journal.FS
	model LossModel

	mu      sync.Mutex
	crashAt int // boundary index that fails; -1 never crashes
	ops     int
	crashed bool
	files   map[string]*crashTrack
}

// crashTrack follows one file's written vs synced length.
type crashTrack struct {
	size   int64
	synced int64
}

// NewCrashFS returns a filesystem that fails at boundary crashAt
// (0-based; -1 disables injection) under the given loss model.
func NewCrashFS(crashAt int, model LossModel) *CrashFS {
	return &CrashFS{
		inner:   journal.OSFS{},
		model:   model,
		crashAt: crashAt,
		files:   make(map[string]*crashTrack),
	}
}

// Boundaries returns how many durability boundaries executed so far — a
// dry run with injection disabled measures a scenario's boundary count.
func (c *CrashFS) Boundaries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether the armed boundary was reached.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// ForceCrash kills the filesystem now, regardless of the armed write
// boundary, applying the loss model to every tracked file. The
// replication harness crashes at protocol instants (pre-append,
// post-append, post-ship) that are not write boundaries.
func (c *CrashFS) ForceCrash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return
	}
	c.crashed = true
	c.applyLoss()
}

// track returns the bookkeeping entry for path, creating it sized to the
// file's current on-disk length (a journal carried over from a previous
// epoch starts fully synced).
func (c *CrashFS) track(path string) *crashTrack {
	t, ok := c.files[path]
	if !ok {
		var size int64
		if info, err := os.Stat(path); err == nil {
			size = info.Size()
		}
		t = &crashTrack{size: size, synced: size}
		c.files[path] = t
	}
	return t
}

// boundary runs exec as one durability boundary, or crashes instead.
func (c *CrashFS) boundary(exec func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrash
	}
	if c.ops == c.crashAt {
		c.crashed = true
		c.applyLoss()
		return ErrCrash
	}
	c.ops++
	return exec()
}

// applyLoss rewrites every tracked file to what the loss model says
// survives the crash. Called with mu held.
func (c *CrashFS) applyLoss() {
	if c.model == KeepAll {
		return
	}
	for path, t := range c.files {
		keep := t.synced
		if c.model == TearUnsynced {
			keep = t.synced + (t.size-t.synced+1)/2
		}
		if keep < t.size {
			_ = os.Truncate(path, keep)
		}
	}
}

// crashFile wraps one handle, reporting each mutation as a boundary.
type crashFile struct {
	c    *CrashFS
	f    journal.File
	path string
}

func (f *crashFile) Write(p []byte) (int, error) {
	err := f.c.boundary(func() error {
		n, werr := f.f.Write(p)
		f.c.track(f.path).size += int64(n)
		return werr
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

func (f *crashFile) Sync() error {
	return f.c.boundary(func() error {
		if err := f.f.Sync(); err != nil {
			return err
		}
		t := f.c.track(f.path)
		t.synced = t.size
		return nil
	})
}

func (f *crashFile) Truncate(size int64) error {
	return f.c.boundary(func() error {
		if err := f.f.Truncate(size); err != nil {
			return err
		}
		t := f.c.track(f.path)
		t.size = size
		if t.synced > size {
			t.synced = size
		}
		return nil
	})
}

// Close is not a boundary: closing neither persists nor loses data, and
// after a crash the real handle must still be released.
func (f *crashFile) Close() error {
	err := f.f.Close()
	f.c.mu.Lock()
	crashed := f.c.crashed
	f.c.mu.Unlock()
	if crashed {
		return ErrCrash
	}
	return err
}

// OpenFile implements journal.FS. Opening is not a boundary (it does not
// move data), but a crashed filesystem refuses it.
func (c *CrashFS) OpenFile(name string, flag int, perm os.FileMode) (journal.File, error) {
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return nil, ErrCrash
	}
	if flag&os.O_TRUNC != 0 {
		t := c.track(name)
		t.size = 0
		if t.synced > 0 {
			t.synced = 0
		}
	} else {
		c.track(name)
	}
	c.mu.Unlock()
	f, err := c.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &crashFile{c: c, f: f, path: name}, nil
}

// ReadFile implements journal.FS.
func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	c.mu.Lock()
	crashed := c.crashed
	c.mu.Unlock()
	if crashed {
		return nil, ErrCrash
	}
	return c.inner.ReadFile(name)
}

// WriteFile implements journal.FS as one write boundary.
func (c *CrashFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return c.boundary(func() error {
		if err := c.inner.WriteFile(name, data, perm); err != nil {
			return err
		}
		t := c.track(name)
		t.size = int64(len(data))
		t.synced = 0
		return nil
	})
}

// Rename implements journal.FS as one boundary; the tracking entry moves
// with the file and counts as synced once the directory is synced, which
// SaveState does right after.
func (c *CrashFS) Rename(oldname, newname string) error {
	return c.boundary(func() error {
		if err := c.inner.Rename(oldname, newname); err != nil {
			return err
		}
		if t, ok := c.files[oldname]; ok {
			c.files[newname] = t
			delete(c.files, oldname)
		}
		return nil
	})
}

// Remove implements journal.FS.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	crashed := c.crashed
	if !crashed {
		delete(c.files, name)
	}
	c.mu.Unlock()
	if crashed {
		return ErrCrash
	}
	return c.inner.Remove(name)
}

// Stat implements journal.FS.
func (c *CrashFS) Stat(name string) (fs.FileInfo, error) {
	c.mu.Lock()
	crashed := c.crashed
	c.mu.Unlock()
	if crashed {
		return nil, ErrCrash
	}
	return c.inner.Stat(name)
}

// Truncate implements journal.FS as one boundary.
func (c *CrashFS) Truncate(name string, size int64) error {
	return c.boundary(func() error {
		if err := c.inner.Truncate(name, size); err != nil {
			return err
		}
		t := c.track(name)
		t.size = size
		if t.synced > size {
			t.synced = size
		}
		return nil
	})
}

// SyncDir implements journal.FS as one boundary; a synced directory
// makes the files renamed into it durable. (File-data sync state is
// unchanged — renames of already-synced files are what it persists.)
func (c *CrashFS) SyncDir(name string) error {
	return c.boundary(func() error {
		return c.inner.SyncDir(name)
	})
}

// CrashHarness drives one scripted admission sequence against a live
// wire server whose persistence runs through a CrashFS, then restarts
// and verifies recovery. Scripts reuse the faultinject Script/Event
// vocabulary (setup / teardown / fail / restore).
type CrashHarness struct {
	// Ring and Terminals shape the RTnet network (defaults 4 and 2).
	Ring, Terminals int
	// Mode is the durability mode under test (default journal-sync).
	Mode wire.DurabilityMode
	// Loss is the crash's loss model (default DropUnsynced).
	Loss LossModel
	// CompactRecords forces frequent compaction so crash points land
	// inside it (default 3).
	CompactRecords int
	// StatePath locates the snapshot; the journal is StatePath+".journal".
	StatePath string
	// Script is the op sequence; every event must carry a PCR small
	// enough that CAC admits it, so ack bookkeeping stays deterministic.
	Script Script
}

func (h *CrashHarness) defaults() {
	if h.Ring == 0 {
		h.Ring = 4
	}
	if h.Terminals == 0 {
		h.Terminals = 2
	}
	if h.Mode == "" {
		h.Mode = wire.DurabilityJournalSync
	}
	if h.CompactRecords == 0 {
		h.CompactRecords = 3
	}
}

// crashEpoch is one server lifetime between boots.
type crashEpoch struct {
	rt     *rtnet.Network
	srv    *wire.Server
	dur    *wire.Durable
	client *wire.Client
	done   chan struct{}
	report *wire.RecoveryReport
}

// boot builds a network, recovers it from the files through fsys, and
// serves it on an ephemeral port.
func (h *CrashHarness) boot(fsys journal.FS) (*crashEpoch, error) {
	rt, err := rtnet.New(rtnet.Config{
		RingNodes:        h.Ring,
		TerminalsPerNode: h.Terminals,
	})
	if err != nil {
		return nil, err
	}
	dur, err := wire.OpenDurable(wire.DurableConfig{
		StatePath:      h.StatePath,
		Mode:           h.Mode,
		FS:             fsys,
		CompactRecords: h.CompactRecords,
	})
	if err != nil {
		return nil, err
	}
	rep, err := dur.Recover(rt.Core())
	if err != nil {
		_ = dur.Close()
		return nil, err
	}
	srv := wire.NewServer(rt.Core())
	srv.SetDurable(dur)
	eng := failover.New(rt, failover.Options{MaxAttempts: 2, Sleep: func(time.Duration) {}})
	srv.SetFailoverHandler(func(from, to string, evicted []core.ConnRequest) []wire.ReadmitOutcome {
		node, nerr := rtnet.NodeIndex(from)
		outs := make([]wire.ReadmitOutcome, 0, len(evicted))
		if nerr != nil {
			for _, r := range evicted {
				outs = append(outs, wire.ReadmitOutcome{ID: r.ID, Error: nerr.Error()})
			}
			return outs
		}
		rep := eng.Readmit(evicted, node, core.Link{From: from, To: to})
		for _, o := range rep.Outcomes {
			out := wire.ReadmitOutcome{ID: o.ID, Readmitted: o.Readmitted, Attempts: o.Attempts}
			if o.Err != nil {
				out.Error = o.Err.Error()
			}
			outs = append(outs, out)
		}
		return outs
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = dur.Close()
		return nil, err
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	client, err := wire.Dial(l.Addr().String())
	if err != nil {
		_ = srv.Close()
		_ = dur.Close()
		<-done
		return nil, err
	}
	return &crashEpoch{rt: rt, srv: srv, dur: dur, client: client, done: done, report: rep}, nil
}

// stop tears an epoch down without a final snapshot — a crash, not a
// graceful drain.
func (e *crashEpoch) stop() {
	_ = e.client.Close()
	_ = e.srv.Close()
	<-e.done
	_ = e.dur.Close()
}

// CrashResult reports one injected-crash run.
type CrashResult struct {
	// CrashedAt is the boundary that was killed; -1 when the script
	// finished before the armed boundary was reached.
	CrashedAt int
	// TornRepaired reports that recovery found and repaired a torn tail.
	TornRepaired bool
}

// expectation tracks the acked admission set during a script.
type expectation struct {
	ids map[core.ConnID]struct{}
	// ambiguous is set when the crash interrupted an op whose durable
	// outcome is legitimately either pre- or post-op (a fail-link or
	// restore-link whose warning-only persistence was killed).
	ambiguous bool
	pre       map[core.ConnID]struct{}
}

func newExpectation() *expectation {
	return &expectation{ids: make(map[core.ConnID]struct{})}
}

func (e *expectation) clone() map[core.ConnID]struct{} {
	cp := make(map[core.ConnID]struct{}, len(e.ids))
	for id := range e.ids {
		cp[id] = struct{}{}
	}
	return cp
}

func idsString(m map[core.ConnID]struct{}) string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// Run executes the script with a crash armed at boundary crashAt
// (-1: none), restarts after the crash, verifies the recovery contract,
// finishes the remaining script on the recovered server, and verifies
// again. It returns what happened for the caller's coverage accounting.
func (h *CrashHarness) Run(crashAt int) (*CrashResult, *CrashFS, error) {
	h.defaults()
	if h.StatePath == "" {
		return nil, nil, fmt.Errorf("faultinject: CrashHarness needs a StatePath")
	}
	cfs := NewCrashFS(crashAt, h.Loss)
	res := &CrashResult{CrashedAt: -1}
	exp := newExpectation()

	epoch, err := h.boot(cfs)
	next := 0
	if err != nil {
		// The crash landed inside boot-time recovery/compaction; nothing
		// was served, nothing was acked beyond what the files already
		// held (an empty set on the harness's fresh directory). Fall
		// through to the restart below.
		if !cfs.Crashed() {
			return nil, cfs, fmt.Errorf("faultinject: boot: %w", err)
		}
		res.CrashedAt = crashAt
	} else {
		failedFrom := -1
		for ; next < len(h.Script); next++ {
			ev := h.Script[next]
			pre := exp.clone()
			ok, err := h.applyWire(epoch, ev, exp, &failedFrom)
			if err != nil {
				epoch.stop()
				return nil, cfs, err
			}
			if crashed := cfs.Crashed(); crashed {
				res.CrashedAt = crashAt
				if !ok {
					// The op was refused (journal append failed, state
					// rolled back): its effect must not be recovered, and
					// exp already excludes it.
				} else if ev.Kind == KindFail || ev.Kind == KindRestore {
					// A warning-only op acked while the crash fired: the
					// record may or may not be durable, so both the pre-
					// and post-op sets are legal recovery outcomes.
					exp.ambiguous = true
					exp.pre = pre
				}
				next++
				break
			}
			if !ok {
				epoch.stop()
				return nil, cfs, fmt.Errorf("faultinject: event %d (%s %s) failed without a crash",
					next, ev.Kind, ev.ID)
			}
		}
		epoch.stop()
	}

	// Second epoch on the pristine filesystem: recover, check the
	// contract, finish the script, check again after a clean shutdown.
	epoch2, err := h.boot(journal.OSFS{})
	if err != nil {
		return nil, cfs, fmt.Errorf("faultinject: recovery boot: %w", err)
	}
	if epoch2.report.TornPath != "" {
		res.TornRepaired = true
	}
	if len(epoch2.report.Failed) > 0 {
		epoch2.stop()
		return nil, cfs, fmt.Errorf("faultinject: recovery rejected %d stored connections: %+v",
			len(epoch2.report.Failed), epoch2.report.Failed)
	}
	if err := h.checkRecovered(epoch2, exp); err != nil {
		epoch2.stop()
		return nil, cfs, err
	}
	failedFrom := -1
	for _, l := range epoch2.rt.Core().FailedLinks() {
		if node, err := rtnet.NodeIndex(l.From); err == nil {
			failedFrom = node
		}
	}
	exp.ambiguous = false
	for ; next < len(h.Script); next++ {
		if _, err := h.applyWire(epoch2, h.Script[next], exp, &failedFrom); err != nil {
			epoch2.stop()
			return nil, cfs, err
		}
	}
	if err := h.checkRecovered(epoch2, exp); err != nil {
		epoch2.stop()
		return nil, cfs, err
	}
	if v, err := epoch2.rt.Core().Audit(); err != nil || len(v) > 0 {
		epoch2.stop()
		return nil, cfs, fmt.Errorf("faultinject: audit after recovery: violations=%v err=%v", v, err)
	}
	epoch2.stop()
	return res, cfs, nil
}

// checkRecovered asserts the recovery contract against the live state.
func (h *CrashHarness) checkRecovered(e *crashEpoch, exp *expectation) error {
	got := make(map[core.ConnID]struct{})
	for _, id := range e.rt.Core().Connections() {
		got[id] = struct{}{}
	}
	want := exp.ids
	if idsString(got) == idsString(want) {
		return nil
	}
	if exp.ambiguous && exp.pre != nil && idsString(got) == idsString(exp.pre) {
		// The interrupted warning-only op may legally be absent.
		return nil
	}
	return fmt.Errorf("faultinject: recovered set {%s} != acked set {%s}%s",
		idsString(got), idsString(want), ambiguousNote(exp))
}

func ambiguousNote(exp *expectation) string {
	if exp.ambiguous && exp.pre != nil {
		return fmt.Sprintf(" (also accepted: {%s})", idsString(exp.pre))
	}
	return ""
}

// applyWire executes one event over the wire client, updating the acked
// expectation. It returns ok=false when the crash interrupted the op
// (error response, dead connection, or a persistence warning on a
// warning-only op) — the epoch is over.
func (h *CrashHarness) applyWire(e *crashEpoch, ev Event, exp *expectation, failedFrom *int) (bool, error) {
	switch ev.Kind {
	case KindSetup:
		var route core.Route
		var err error
		if *failedFrom < 0 {
			route, err = e.rt.BroadcastRoute(ev.Origin, ev.Terminal)
		} else {
			route, err = e.rt.WrappedBroadcastRoute(ev.Origin, ev.Terminal, *failedFrom)
		}
		if err != nil {
			return false, fmt.Errorf("faultinject: route for %s: %w", ev.ID, err)
		}
		_, serr := e.client.Setup(context.Background(), core.ConnRequest{
			ID: ev.ID, Spec: traffic.CBR(ev.PCR), Priority: 1,
			Route: route, DelayBound: ev.DelayBound,
		})
		if serr != nil {
			if isDuplicate(serr) {
				// Replayed after a restart against an op that did land.
				exp.ids[ev.ID] = struct{}{}
				return true, nil
			}
			// A journal-refused setup was rolled back and not acked.
			return false, nil
		}
		exp.ids[ev.ID] = struct{}{}
		return true, nil
	case KindTeardown:
		if terr := e.client.Teardown(context.Background(), ev.ID); terr != nil {
			if isUnknownConn(terr) {
				delete(exp.ids, ev.ID)
				return true, nil
			}
			return false, nil
		}
		delete(exp.ids, ev.ID)
		return true, nil
	case KindFail:
		report, ferr := e.client.FailLink(context.Background(), rtnet.SwitchName(ev.Node), rtnet.SwitchName((ev.Node+1)%h.Ring))
		if ferr != nil {
			return false, nil
		}
		for _, o := range report.Outcomes {
			if !o.Readmitted {
				delete(exp.ids, o.ID)
			}
		}
		*failedFrom = ev.Node
		return true, nil
	case KindRestore:
		if rerr := e.client.RestoreLink(context.Background(), rtnet.SwitchName(ev.Node), rtnet.SwitchName((ev.Node+1)%h.Ring)); rerr != nil {
			return false, nil
		}
		*failedFrom = -1
		return true, nil
	default:
		return false, fmt.Errorf("%w: unknown kind %q", ErrScript, ev.Kind)
	}
}

func isDuplicate(err error) bool {
	return err != nil && strings.Contains(err.Error(), "duplicate")
}

func isUnknownConn(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown connection")
}
