package faultinject

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// crashScript exercises every journaled op kind: healthy setups, a
// teardown, a link failure with wrapped re-admission, setups under wrap,
// a restore, and a post-recovery setup. PCRs are small enough that every
// admission passes CAC, so ack bookkeeping is deterministic.
func crashScript() Script {
	s := Script{}
	for origin := 0; origin < 4; origin++ {
		s = append(s, Event{Kind: KindSetup, ID: core.ConnID(fmt.Sprintf("h%d", origin)),
			Origin: origin, PCR: 0.02})
	}
	s = append(s,
		Event{Kind: KindTeardown, ID: "h1"},
		Event{Kind: KindFail, Node: 1},
		Event{Kind: KindSetup, ID: "w0", Origin: 0, PCR: 0.02}, // wrapped broadcast
		Event{Kind: KindTeardown, ID: "h2"},
		Event{Kind: KindRestore, Node: 1},
		Event{Kind: KindSetup, ID: "p0", Origin: 2, PCR: 0.02}, // healthy again
	)
	return s
}

// countBoundaries dry-runs the scenario with injection disabled and
// returns how many durability boundaries one clean pass executes.
func countBoundaries(t *testing.T, h *CrashHarness) int {
	t.Helper()
	dir := t.TempDir()
	probe := *h
	probe.StatePath = filepath.Join(dir, "state.json")
	res, cfs, err := probe.Run(-1)
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if res.CrashedAt != -1 || cfs.Crashed() {
		t.Fatalf("dry run crashed: %+v", res)
	}
	n := cfs.Boundaries()
	if n == 0 {
		t.Fatal("dry run hit no durability boundaries")
	}
	return n
}

// runEveryBoundary kills the persistence path at each boundary in turn
// and demands that recovery restores exactly the acked admission set.
func runEveryBoundary(t *testing.T, h CrashHarness) {
	t.Helper()
	n := countBoundaries(t, &h)
	t.Logf("scenario has %d durability boundaries (mode=%s loss=%s)", n, h.Mode, h.Loss)
	torn := 0
	for k := 0; k < n; k++ {
		run := h
		run.StatePath = filepath.Join(t.TempDir(), "state.json")
		res, cfs, err := run.Run(k)
		if err != nil {
			t.Fatalf("crash at boundary %d/%d: %v", k, n, err)
		}
		if res.CrashedAt != k {
			t.Fatalf("boundary %d: crash did not fire (CrashedAt=%d)", k, res.CrashedAt)
		}
		if !cfs.Crashed() {
			t.Fatalf("boundary %d: CrashFS not marked crashed", k)
		}
		if res.TornRepaired {
			torn++
		}
	}
	if h.Loss == TearUnsynced && torn == 0 {
		t.Error("tearing loss model never produced a repaired torn tail")
	}
	if h.Loss != TearUnsynced && torn != 0 {
		t.Errorf("loss model %s produced %d torn tails, want 0", h.Loss, torn)
	}
}

// TestCrashJournalSyncPowerLoss is the strongest contract: with per-record
// fsync, a power loss (unsynced tail dropped) at any boundary recovers
// exactly the acked set.
func TestCrashJournalSyncPowerLoss(t *testing.T) {
	runEveryBoundary(t, CrashHarness{
		Mode:   wire.DurabilityJournalSync,
		Loss:   DropUnsynced,
		Script: crashScript(),
	})
}

// TestCrashJournalSyncTornTail adds the torn-write case: the power loss
// persists half of the unsynced tail, and recovery must detect the torn
// frame, preserve it as evidence, truncate, and still restore exactly the
// acked set.
func TestCrashJournalSyncTornTail(t *testing.T) {
	runEveryBoundary(t, CrashHarness{
		Mode:   wire.DurabilityJournalSync,
		Loss:   TearUnsynced,
		Script: crashScript(),
	})
}

// TestCrashJournalProcessKill checks the no-fsync journal mode against
// the fault it is specified to survive: a process kill, where completed
// writes persist. Recovery is exact there too.
func TestCrashJournalProcessKill(t *testing.T) {
	runEveryBoundary(t, CrashHarness{
		Mode:   wire.DurabilityJournal,
		Loss:   KeepAll,
		Script: crashScript(),
	})
}

// TestCrashMidCompaction pins crash coverage inside compaction: with
// CompactRecords=1 every append triggers a snapshot fold, so every
// boundary of the write-temp / sync / rename / sync-dir / truncate-journal
// sequence is killed in some iteration.
func TestCrashMidCompaction(t *testing.T) {
	runEveryBoundary(t, CrashHarness{
		Mode:           wire.DurabilityJournalSync,
		Loss:           DropUnsynced,
		CompactRecords: 1,
		Script:         crashScript(),
	})
}

// TestCrashChurn crashes the persistence stack while concurrent clients
// churn setups and teardowns, then verifies per-observed-outcome
// durability: a cleanly acked setup with no teardown attempt is
// recovered; a cleanly acked teardown is not; a refused setup never
// resurrects.
func TestCrashChurn(t *testing.T) {
	for _, crashAt := range []int{5, 17, 42} {
		t.Run(fmt.Sprintf("boundary%d", crashAt), func(t *testing.T) {
			churnOnce(t, crashAt)
		})
	}
}

func churnOnce(t *testing.T, crashAt int) {
	const workers, opsPerWorker = 6, 8
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")
	cfs := NewCrashFS(crashAt, DropUnsynced)

	rt, err := rtnet.New(rtnet.Config{RingNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	dur, err := wire.OpenDurable(wire.DurableConfig{
		StatePath: statePath,
		Mode:      wire.DurabilityJournalSync,
		FS:        cfs,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	outcomes := make(map[core.ConnID]*churnOutcome)

	if _, err := dur.Recover(rt.Core()); err != nil {
		// The crash landed inside boot-time recovery; nothing was acked,
		// so recovery from the surviving files must restore the empty set.
		if !cfs.Crashed() {
			t.Fatal(err)
		}
		_ = dur.Close()
		verifyChurnRecovery(t, statePath, outcomes)
		return
	}
	srv := wire.NewServer(rt.Core())
	srv.SetDurable(dur)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := wire.Dial(l.Addr().String())
			if err != nil {
				return
			}
			defer client.Close()
			origin := w % 4
			for i := 0; i < opsPerWorker; i++ {
				id := core.ConnID(fmt.Sprintf("c%d-%d", w, i))
				route, err := rt.BroadcastRoute(origin, 0)
				if err != nil {
					t.Errorf("route: %v", err)
					return
				}
				_, serr := client.Setup(context.Background(), core.ConnRequest{
					ID: id, Spec: traffic.CBR(0.005), Priority: 1, Route: route,
				})
				mu.Lock()
				outcomes[id] = &churnOutcome{setupOK: serr == nil}
				mu.Unlock()
				if serr != nil {
					continue
				}
				if i%2 == 1 { // tear down every other admitted connection
					terr := client.Teardown(context.Background(), id)
					mu.Lock()
					outcomes[id].tornTried = true
					outcomes[id].tornOK = terr == nil
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	_ = srv.Close()
	<-done
	_ = dur.Close()
	if !cfs.Crashed() {
		t.Fatalf("churn finished before boundary %d was reached (%d boundaries executed)",
			crashAt, cfs.Boundaries())
	}
	verifyChurnRecovery(t, statePath, outcomes)
}

// churnOutcome is what one churn client observed for one connection.
type churnOutcome struct {
	setupOK   bool
	tornTried bool
	tornOK    bool
}

// verifyChurnRecovery restarts on the pristine filesystem and checks
// each connection's recovered fate against its observed ack.
func verifyChurnRecovery(t *testing.T, statePath string, outcomes map[core.ConnID]*churnOutcome) {
	t.Helper()
	rt2, err := rtnet.New(rtnet.Config{RingNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	dur2, err := wire.OpenDurable(wire.DurableConfig{
		StatePath: statePath,
		Mode:      wire.DurabilityJournalSync,
		FS:        journal.OSFS{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur2.Close()
	rep, err := dur2.Recover(rt2.Core())
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	recovered := make(map[core.ConnID]bool)
	for _, id := range rt2.Core().Connections() {
		recovered[id] = true
	}
	for id, o := range outcomes {
		switch {
		case !o.setupOK:
			if recovered[id] {
				t.Errorf("connection %s: setup was refused yet it was recovered", id)
			}
		case o.tornTried && o.tornOK:
			if recovered[id] {
				t.Errorf("connection %s: teardown was acked yet it was recovered", id)
			}
		case !o.tornTried:
			if !recovered[id] && !readmissionFailed(rep, id) {
				t.Errorf("connection %s: setup was acked yet it was lost", id)
			}
		}
		// tornTried && !tornOK is legitimately ambiguous: the teardown was
		// refused (conn stays) or its rollback failed (conn gone).
		delete(recovered, id)
	}
	for id := range recovered {
		t.Errorf("recovered connection %s was never attempted", id)
	}
	if v, err := rt2.Core().Audit(); err != nil || len(v) > 0 {
		t.Fatalf("audit after churn recovery: violations=%v err=%v", v, err)
	}
}

// readmissionFailed reports whether recovery itself rejected id at the
// CAC re-admission step (reported once, pruned from the next snapshot).
func readmissionFailed(rep *wire.RecoveryReport, id core.ConnID) bool {
	for _, f := range rep.Failed {
		if f.ID == id {
			return true
		}
	}
	return false
}

// TestCrashFSBoundaryDeterminism guards the harness itself: the same
// scripted scenario executes the same number of boundaries twice in a
// row, so per-boundary coverage is exhaustive rather than sampled.
func TestCrashFSBoundaryDeterminism(t *testing.T) {
	h := CrashHarness{Mode: wire.DurabilityJournalSync, Loss: DropUnsynced, Script: crashScript()}
	a := countBoundaries(t, &h)
	b := countBoundaries(t, &h)
	if a != b {
		t.Fatalf("boundary count not deterministic: %d then %d", a, b)
	}
}

// TestCrashFSModels unit-tests the loss models directly on one file.
func TestCrashFSModels(t *testing.T) {
	write := func(t *testing.T, cfs *CrashFS, path string) {
		t.Helper()
		f, err := cfs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("synced|")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("unsynced")); err != nil {
			t.Fatal(err)
		}
		// The next boundary is armed: this sync crashes.
		if err := f.Sync(); err != ErrCrash {
			t.Fatalf("sync = %v, want ErrCrash", err)
		}
		_ = f.Close()
	}
	cases := []struct {
		model LossModel
		want  string
	}{
		{KeepAll, "synced|unsynced"},
		{DropUnsynced, "synced|"},
		{TearUnsynced, "synced|unsy"},
	}
	for _, tc := range cases {
		t.Run(tc.model.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "f")
			cfs := NewCrashFS(3, tc.model) // write, sync, write, then crash
			write(t, cfs, path)
			data, err := journal.OSFS{}.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != tc.want {
				t.Fatalf("surviving content = %q, want %q", data, tc.want)
			}
			// The filesystem is poisoned from the crash on.
			if _, err := cfs.ReadFile(path); err != ErrCrash {
				t.Fatalf("post-crash read = %v, want ErrCrash", err)
			}
		})
	}
}
