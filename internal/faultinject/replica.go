// Replication chaos: a deterministic harness for the hot-standby pair.
// A primary and a warm standby run as two full wire servers (own
// network, own durability files, own replication endpoints) connected
// by a real TCP stream. The harness kills the primary at every
// replication-critical instant — before the local append, after the
// append but before the ship, after the ship but before the client ack,
// and at every filesystem write boundary including mid-compaction — or
// partitions the replication link, then promotes the standby and
// asserts the takeover oracle: the promoted standby's admission state
// equals the serial replay of the acked operations, with only the
// single interrupted operation allowed to be either pre- or post-state.
// The fenced ex-primary must refuse writes (split-brain guard), and a
// rejoin as standby of the new primary must converge to its state.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/failover"
	"atmcac/internal/journal"
	"atmcac/internal/overload"
	"atmcac/internal/replica"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// ReplicaPoint selects where the harness kills or cuts.
type ReplicaPoint string

const (
	// PointPreAppend kills the primary before the record is journaled:
	// the operation must vanish everywhere.
	PointPreAppend ReplicaPoint = "pre-append"
	// PointPostAppend kills between the local append and the ship: the
	// record is durable only on the dead primary; the operation was
	// never acked, and a sync-mode rejoin must not resurrect it.
	PointPostAppend ReplicaPoint = "post-append"
	// PointPostShip kills between the standby's acknowledgement and the
	// client ack: the record is durable on both, the client never heard.
	PointPostShip ReplicaPoint = "post-ship"
	// PointFSBoundary kills the primary's filesystem at an armed write
	// boundary (see CrashFS) — the sweep covers appends, snapshot
	// writes and every instant of a compaction.
	PointFSBoundary ReplicaPoint = "fs-boundary"
	// PointPartition cuts the replication link without killing anyone:
	// sync-mode writes on the primary must be refused and rolled back,
	// the promoted standby must fence the old primary, and the fenced
	// node must refuse writes with the split-brain code.
	PointPartition ReplicaPoint = "partition"
)

// ReplicaFault arms one fault: a protocol point at the OpIndex-th
// journaled operation, an FS boundary, or a partition after OpIndex
// acked operations.
type ReplicaFault struct {
	Point    ReplicaPoint
	OpIndex  int
	Boundary int
}

// ReplicaResult reports one harness run.
type ReplicaResult struct {
	// CrashedAtOp is the script index the fault interrupted (-1: none).
	CrashedAtOp int
	// PromotedEpoch is the standby's term after takeover.
	PromotedEpoch uint64
	// StandbyState is the promoted standby's admission state key.
	StandbyState string
}

// ReplicaHarness drives one scripted admission sequence against a
// replicated pair and verifies the takeover contract.
type ReplicaHarness struct {
	// Ring and Terminals shape both networks (defaults 4 and 2).
	Ring, Terminals int
	// Mode is the replication mode under test (default sync — the mode
	// whose takeover oracle is exact).
	Mode replica.Mode
	// Loss is the primary-side crash loss model (default DropUnsynced).
	Loss LossModel
	// CompactRecords forces frequent compaction so faults land inside
	// it (default 3).
	CompactRecords int
	// Dir holds the pair's durability files (primary/, standby/).
	Dir string
	// Script is the op sequence (same vocabulary as CrashHarness).
	Script Script
}

func (h *ReplicaHarness) defaults() {
	if h.Ring == 0 {
		h.Ring = 4
	}
	if h.Terminals == 0 {
		h.Terminals = 2
	}
	if h.Mode == "" {
		h.Mode = replica.ModeSync
	}
	if h.CompactRecords == 0 {
		h.CompactRecords = 3
	}
}

// replicaNode is one member of the pair: a full wire server with its
// own durability files, replication listener and shipping primary; the
// standby role adds the consuming loop.
type replicaNode struct {
	rt     *rtnet.Network
	srv    *wire.Server
	dur    *wire.Durable
	client *wire.Client
	ln     net.Listener
	replLn net.Listener
	done   chan struct{}

	mu       sync.Mutex
	prim     *replica.Primary
	sb       *replica.Standby
	stopOnce sync.Once
}

// partitionDial is an injectable dialer whose link the harness can cut:
// cutting refuses new dials and severs every live connection.
type partitionDial struct {
	mu    sync.Mutex
	cut   bool
	conns map[net.Conn]struct{}
}

func newPartitionDial() *partitionDial {
	return &partitionDial{conns: make(map[net.Conn]struct{})}
}

func (p *partitionDial) dial(addr string) (net.Conn, error) {
	p.mu.Lock()
	cut := p.cut
	p.mu.Unlock()
	if cut {
		return nil, fmt.Errorf("faultinject: replication link partitioned")
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.cut {
		p.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("faultinject: replication link partitioned")
	}
	p.conns[conn] = struct{}{}
	p.mu.Unlock()
	return conn, nil
}

// Cut severs the link; Heal restores it.
func (p *partitionDial) Cut() {
	p.mu.Lock()
	p.cut = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *partitionDial) Heal() {
	p.mu.Lock()
	p.cut = false
	p.mu.Unlock()
}

// bootNode builds one pair member on its own ephemeral ports. replLn
// is pre-created by the caller so the standby knows the primary's
// replication address before the primary boots.
func (h *ReplicaHarness) bootNode(statePath string, fsys journal.FS, replLn net.Listener, cp *wire.CrashPoints) (*replicaNode, error) {
	rt, err := rtnet.New(rtnet.Config{RingNodes: h.Ring, TerminalsPerNode: h.Terminals})
	if err != nil {
		return nil, err
	}
	dur, err := wire.OpenDurable(wire.DurableConfig{
		StatePath:      statePath,
		Mode:           wire.DurabilityJournalSync,
		FS:             fsys,
		CompactRecords: h.CompactRecords,
	})
	if err != nil {
		return nil, err
	}
	if _, err := dur.Recover(rt.Core()); err != nil {
		_ = dur.Close()
		return nil, err
	}
	srv := wire.NewServer(rt.Core())
	srv.SetDurable(dur)
	srv.SetCrashPoints(cp)
	eng := failover.New(rt, failover.Options{MaxAttempts: 2, Sleep: func(time.Duration) {}})
	srv.SetFailoverHandler(func(from, to string, evicted []core.ConnRequest) []wire.ReadmitOutcome {
		node, nerr := rtnet.NodeIndex(from)
		outs := make([]wire.ReadmitOutcome, 0, len(evicted))
		if nerr != nil {
			for _, r := range evicted {
				outs = append(outs, wire.ReadmitOutcome{ID: r.ID, Error: nerr.Error()})
			}
			return outs
		}
		rep := eng.Readmit(evicted, node, core.Link{From: from, To: to})
		for _, o := range rep.Outcomes {
			out := wire.ReadmitOutcome{ID: o.ID, Readmitted: o.Readmitted, Attempts: o.Attempts}
			if o.Err != nil {
				out.Error = o.Err.Error()
			}
			outs = append(outs, out)
		}
		return outs
	})
	n := &replicaNode{rt: rt, srv: srv, dur: dur, replLn: replLn}
	n.prim = replica.NewPrimary(srv, replica.PrimaryConfig{
		Mode:           h.Mode,
		AckTimeout:     2 * time.Second,
		HeartbeatEvery: 50 * time.Millisecond,
	})
	srv.SetShipper(n.prim)
	srv.SetReplicationStatus(func(rep *wire.ReplicationReport) {
		n.mu.Lock()
		prim, sb := n.prim, n.sb
		n.mu.Unlock()
		replica.Status(prim, sb)(rep)
	})
	if replLn != nil {
		go n.prim.Serve(replLn)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.stop()
		return nil, err
	}
	n.ln = ln
	n.done = make(chan struct{})
	go func() { defer close(n.done); _ = srv.Serve(ln) }()
	client, err := wire.Dial(ln.Addr().String())
	if err != nil {
		n.stop()
		return nil, err
	}
	n.client = client
	return n, nil
}

// startStandby puts the node in the consuming role, following
// primaryAddr through the (cuttable) dialer.
func (n *replicaNode) startStandby(primaryAddr string, dial func(string) (net.Conn, error)) {
	n.srv.SetStandby(true)
	sb := replica.NewStandby(n.srv, replica.StandbyConfig{
		PrimaryAddr:      primaryAddr,
		Dial:             dial,
		ReconnectBackoff: overload.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
	})
	n.mu.Lock()
	n.sb = sb
	n.mu.Unlock()
	go sb.Run()
}

func (n *replicaNode) standby() *replica.Standby {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sb
}

// stop kills the node without a final snapshot — a crash, not a drain.
// Idempotent, so a mid-scenario stop and the deferred cleanup coexist.
func (n *replicaNode) stop() {
	n.stopOnce.Do(func() {
		if sb := n.standby(); sb != nil {
			_ = sb.Close()
		}
		if n.prim != nil {
			_ = n.prim.Close()
		}
		if n.client != nil {
			_ = n.client.Close()
		}
		_ = n.srv.Close()
		if n.done != nil {
			<-n.done
		}
		if n.replLn != nil {
			_ = n.replLn.Close()
		}
		_ = n.dur.Close()
	})
}

// stateKey canonicalizes a network's admission state for comparison:
// sorted connection IDs plus sorted failed links. nil is the empty
// state (a primary whose boot never finished).
func stateKey(c *core.Network) string {
	if c == nil {
		return "conns{} down{}"
	}
	ids := make([]string, 0)
	for _, id := range c.Connections() {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	links := make([]string, 0)
	for _, l := range c.FailedLinks() {
		links = append(links, l.From+"->"+l.To)
	}
	sort.Strings(links)
	return "conns{" + strings.Join(ids, ",") + "} down{" + strings.Join(links, ",") + "}"
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// Run executes the armed fault scenario end to end: boot the pair, wait
// for the stream, apply the script until the fault fires, fail the
// primary over, verify the takeover oracle on the promoted standby,
// rejoin the ex-primary as the new standby, and verify convergence plus
// post-failover liveness. See the point constants for per-fault
// semantics.
func (h *ReplicaHarness) Run(fault ReplicaFault) (*ReplicaResult, *CrashFS, error) {
	h.defaults()
	if h.Dir == "" {
		return nil, nil, fmt.Errorf("faultinject: ReplicaHarness needs a Dir")
	}
	if fault.Point == PointPartition {
		res, err := h.runPartition(fault)
		return res, nil, err
	}
	return h.runCrash(fault)
}

// runCrash kills the primary at the armed instant and fails over. With
// PointFSBoundary and Boundary -1 nothing is armed: the whole script
// runs clean and the failover is exercised fault-free — the dry run
// that also measures the scenario's boundary count.
func (h *ReplicaHarness) runCrash(fault ReplicaFault) (*ReplicaResult, *CrashFS, error) {
	pdir := filepath.Join(h.Dir, "primary")
	sdir := filepath.Join(h.Dir, "standby")
	for _, d := range []string{pdir, sdir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, err
		}
	}
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	sReplLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		replLn.Close()
		return nil, nil, err
	}
	crashAt := -1
	if fault.Point == PointFSBoundary {
		crashAt = fault.Boundary
	}
	cfs := NewCrashFS(crashAt, h.Loss)

	// The standby boots first (with its own replication listener, which
	// it will serve from after promotion) so it is already dialing and
	// retrying when the primary comes up — including when the primary's
	// boot itself crashes.
	sn, err := h.bootNode(filepath.Join(sdir, "state.json"), journal.OSFS{}, sReplLn, nil)
	if err != nil {
		replLn.Close()
		sReplLn.Close()
		return nil, cfs, fmt.Errorf("faultinject: standby boot: %w", err)
	}
	defer sn.stop()
	pdial := newPartitionDial()
	sn.startStandby(replLn.Addr().String(), pdial.dial)

	res := &ReplicaResult{CrashedAtOp: -1}
	var opIndex atomic.Int32 // index of the journaled op currently executing
	opIndex.Store(-1)
	var crashTarget atomic.Pointer[replicaNode]
	crash := func() {
		cfs.ForceCrash()
		if n := crashTarget.Load(); n != nil {
			_ = n.prim.Close()
			go n.srv.Close() // async: Close waits for the very handler running this hook
		}
	}
	cp := &wire.CrashPoints{
		PreAppend: func(string) {
			n := opIndex.Add(1)
			if fault.Point == PointPreAppend && int(n) == fault.OpIndex {
				crash()
			}
		},
		PostAppend: func(string, uint64) {
			if fault.Point == PointPostAppend && int(opIndex.Load()) == fault.OpIndex {
				crash()
			}
		},
		PostShip: func(string, uint64) {
			if fault.Point == PointPostShip && int(opIndex.Load()) == fault.OpIndex {
				crash()
			}
		},
	}

	pn, err := h.bootNode(filepath.Join(pdir, "state.json"), cfs, replLn, cp)
	preKey, postKey := stateKey(nil), stateKey(nil)
	if err != nil {
		// The crash landed inside boot: nothing was served or acked, so
		// the takeover must produce the empty state.
		if !cfs.Crashed() {
			return nil, cfs, fmt.Errorf("faultinject: primary boot: %w", err)
		}
		res.CrashedAtOp = 0
	} else {
		crashTarget.Store(pn)
		defer pn.stop()
		if !waitFor(5*time.Second, func() bool {
			rep, rerr := pn.client.Replication(context.Background())
			return rerr == nil && rep.Connected
		}) {
			return nil, cfs, fmt.Errorf("faultinject: standby never connected")
		}
		failedFrom := -1
		for i, ev := range h.Script {
			preKey = stateKey(pn.rt.Core())
			_, aerr := h.apply(pn, ev, &failedFrom)
			postKey = stateKey(pn.rt.Core())
			if cfs.Crashed() {
				res.CrashedAtOp = i
				break
			}
			if aerr != nil {
				return nil, cfs, fmt.Errorf("faultinject: event %d (%s %s) failed without a crash: %v",
					i, ev.Kind, ev.ID, aerr)
			}
			preKey = postKey
		}
		if res.CrashedAtOp == -1 && fault.Point != PointFSBoundary {
			return nil, cfs, fmt.Errorf("faultinject: fault %s@%d never fired (script too short)",
				fault.Point, fault.OpIndex)
		}
		if res.CrashedAtOp == -1 && crashAt >= 0 {
			return nil, cfs, fmt.Errorf("faultinject: boundary %d never reached (%d executed)",
				crashAt, cfs.Boundaries())
		}
		// Kill whatever survives of the primary (a hook crash leaves the
		// process half-alive on purpose; a clean dry run leaves it all).
		pn.stop()
	}

	// Failover: promote the standby and check the takeover oracle — its
	// state must be the serial replay of the acked operations, with only
	// the interrupted operation allowed to be in either state.
	epoch, err := sn.standby().Promote()
	if err != nil {
		return nil, cfs, fmt.Errorf("faultinject: promote: %w", err)
	}
	res.PromotedEpoch = epoch
	got := stateKey(sn.rt.Core())
	res.StandbyState = got
	if got != postKey && got != preKey {
		return nil, cfs, fmt.Errorf("faultinject: takeover state %s != acked state %s (nor pre-op %s)",
			got, postKey, preKey)
	}
	if v, aerr := sn.rt.Core().Audit(); aerr != nil || len(v) > 0 {
		return nil, cfs, fmt.Errorf("faultinject: audit on promoted standby: violations=%v err=%v", v, aerr)
	}

	// Rejoin: restart the ex-primary from its surviving files as the
	// standby of the new primary, and require convergence. Its journal
	// may hold an un-acked tail the new term never saw; the lower-epoch
	// hello forces a full resync that erases it.
	return res, cfs, h.rejoinAndVerify(pdir, sn)
}

// rejoinAndVerify boots the ex-primary's files as a standby of the new
// primary (sn), waits for convergence, and then requires post-failover
// liveness: a fresh setup on the new primary must be admitted and
// replicated.
func (h *ReplicaHarness) rejoinAndVerify(exDir string, sn *replicaNode) error {
	rn, err := h.bootNode(filepath.Join(exDir, "state.json"), journal.OSFS{}, nil, nil)
	if err != nil {
		return fmt.Errorf("faultinject: ex-primary rejoin boot: %w", err)
	}
	defer rn.stop()
	rdial := newPartitionDial()
	rn.startStandby(sn.replLn.Addr().String(), rdial.dial)
	want := stateKey(sn.rt.Core())
	if !waitFor(5*time.Second, func() bool { return stateKey(rn.rt.Core()) == want }) {
		return fmt.Errorf("faultinject: rejoined ex-primary state %s never converged to %s",
			stateKey(rn.rt.Core()), want)
	}
	// Liveness: the promoted primary admits and replicates new work.
	failedFrom := -1
	for _, l := range sn.rt.Core().FailedLinks() {
		if node, nerr := rtnet.NodeIndex(l.From); nerr == nil {
			failedFrom = node
		}
	}
	ev := Event{Kind: KindSetup, ID: "post-failover", Origin: 0, PCR: 0.02}
	// A sync-mode refusal is clean (compensated, no mutation) and can
	// happen transiently if the freshly rejoined standby's session blips;
	// retry briefly before declaring the promoted primary dead.
	var ok bool
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, err = h.apply(sn, ev, &failedFrom); err != nil || ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil || !ok {
		return fmt.Errorf("faultinject: post-failover setup refused (ok=%v err=%v)", ok, err)
	}
	want = stateKey(sn.rt.Core())
	if !waitFor(5*time.Second, func() bool { return stateKey(rn.rt.Core()) == want }) {
		return fmt.Errorf("faultinject: post-failover setup did not replicate to the rejoined standby")
	}
	return nil
}

// runPartition cuts the replication link, verifies sync-mode refusal
// and rollback on the primary, promotes the standby, and verifies the
// old primary is fenced with the split-brain code — with no zombie
// mutation landing anywhere.
func (h *ReplicaHarness) runPartition(fault ReplicaFault) (*ReplicaResult, error) {
	pdir := filepath.Join(h.Dir, "primary")
	sdir := filepath.Join(h.Dir, "standby")
	for _, d := range []string{pdir, sdir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sReplLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		replLn.Close()
		return nil, err
	}
	sn, err := h.bootNode(filepath.Join(sdir, "state.json"), journal.OSFS{}, sReplLn, nil)
	if err != nil {
		replLn.Close()
		sReplLn.Close()
		return nil, fmt.Errorf("faultinject: standby boot: %w", err)
	}
	defer sn.stop()
	pdial := newPartitionDial()
	sn.startStandby(replLn.Addr().String(), pdial.dial)
	pn, err := h.bootNode(filepath.Join(pdir, "state.json"), journal.OSFS{}, replLn, nil)
	if err != nil {
		return nil, fmt.Errorf("faultinject: primary boot: %w", err)
	}
	defer pn.stop()
	if !waitFor(5*time.Second, func() bool {
		rep, rerr := pn.client.Replication(context.Background())
		return rerr == nil && rep.Connected
	}) {
		return nil, fmt.Errorf("faultinject: standby never connected")
	}

	res := &ReplicaResult{CrashedAtOp: -1}
	failedFrom := -1
	cutAt := fault.OpIndex
	if cutAt > len(h.Script) {
		cutAt = len(h.Script)
	}
	for i := 0; i < cutAt; i++ {
		if ok, aerr := h.apply(pn, h.Script[i], &failedFrom); aerr != nil || !ok {
			return nil, fmt.Errorf("faultinject: pre-cut event %d failed (ok=%v err=%v)", i, ok, aerr)
		}
	}
	ackedKey := stateKey(pn.rt.Core())
	pdial.Cut()
	res.CrashedAtOp = cutAt

	// Every further sync-mode mutation must be refused — and rolled
	// back, so the primary's state stays exactly the acked set.
	refused := 0
	for i := cutAt; i < len(h.Script); i++ {
		ok, aerr := h.apply(pn, h.Script[i], &failedFrom)
		if aerr != nil {
			return nil, fmt.Errorf("faultinject: partitioned event %d errored: %v", i, aerr)
		}
		if ev := h.Script[i]; ev.Kind == KindSetup || ev.Kind == KindTeardown {
			if ok {
				return nil, fmt.Errorf("faultinject: partitioned %s %s was acked in %s mode",
					ev.Kind, ev.ID, h.Mode)
			}
			refused++
		}
	}
	if got := stateKey(pn.rt.Core()); got != ackedKey {
		return nil, fmt.Errorf("faultinject: partitioned primary state %s != acked state %s (rollback failed)",
			got, ackedKey)
	}

	// Fail over across the partition: heal the link just before the
	// promotion so the fence notification can reach the old primary.
	pdial.Heal()
	epoch, err := sn.standby().Promote()
	if err != nil {
		return nil, fmt.Errorf("faultinject: promote: %w", err)
	}
	res.PromotedEpoch = epoch
	got := stateKey(sn.rt.Core())
	res.StandbyState = got
	if got != ackedKey {
		return nil, fmt.Errorf("faultinject: takeover state %s != acked state %s", got, ackedKey)
	}

	// The old primary must fence itself and refuse writes with the
	// split-brain code; its state must not mutate (no zombie writes).
	if !waitFor(5*time.Second, func() bool {
		rep, rerr := pn.client.Replication(context.Background())
		return rerr == nil && rep.Role == "fenced"
	}) {
		return nil, fmt.Errorf("faultinject: ex-primary never fenced")
	}
	route, rerr := pn.rt.BroadcastRoute(0, 0)
	if rerr != nil {
		return nil, rerr
	}
	_, serr := pn.client.Setup(context.Background(), core.ConnRequest{ID: "zombie", Spec: traffic.CBR(0.02), Priority: 1, Route: route})
	var remote *wire.RemoteError
	if !errors.As(serr, &remote) || remote.Code != wire.CodeFenced {
		return nil, fmt.Errorf("faultinject: fenced ex-primary setup error = %v, want code %s", serr, wire.CodeFenced)
	}
	if gotP := stateKey(pn.rt.Core()); gotP != ackedKey {
		return nil, fmt.Errorf("faultinject: fenced ex-primary mutated: %s != %s", gotP, ackedKey)
	}

	// Rejoin and liveness, same contract as the crash path.
	pn.stop()
	return res, h.rejoinAndVerify(pdir, sn)
}

// apply executes one script event over the node's wire client. ok=false
// means the operation was refused or the connection died — not acked.
func (h *ReplicaHarness) apply(n *replicaNode, ev Event, failedFrom *int) (bool, error) {
	switch ev.Kind {
	case KindSetup:
		var route core.Route
		var err error
		if *failedFrom < 0 {
			route, err = n.rt.BroadcastRoute(ev.Origin, ev.Terminal)
		} else {
			route, err = n.rt.WrappedBroadcastRoute(ev.Origin, ev.Terminal, *failedFrom)
		}
		if err != nil {
			return false, fmt.Errorf("faultinject: route for %s: %w", ev.ID, err)
		}
		_, serr := n.client.Setup(context.Background(), core.ConnRequest{
			ID: ev.ID, Spec: traffic.CBR(ev.PCR), Priority: 1,
			Route: route, DelayBound: ev.DelayBound,
		})
		return serr == nil, nil
	case KindTeardown:
		return n.client.Teardown(context.Background(), ev.ID) == nil, nil
	case KindFail:
		if _, ferr := n.client.FailLink(context.Background(), rtnet.SwitchName(ev.Node), rtnet.SwitchName((ev.Node+1)%h.Ring)); ferr != nil {
			return false, nil
		}
		*failedFrom = ev.Node
		return true, nil
	case KindRestore:
		if rerr := n.client.RestoreLink(context.Background(), rtnet.SwitchName(ev.Node), rtnet.SwitchName((ev.Node+1)%h.Ring)); rerr != nil {
			return false, nil
		}
		*failedFrom = -1
		return true, nil
	default:
		return false, fmt.Errorf("%w: unknown kind %q", ErrScript, ev.Kind)
	}
}
