package faultinject

import (
	"fmt"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/replica"
)

// replicaScript is the takeover scenario: setups, a teardown, a link
// failure with re-admission, a setup under wrap, and a restore — every
// journaled op kind crosses the replication stream.
func replicaScript() Script {
	return Script{
		Event{Kind: KindSetup, ID: core.ConnID("r0"), Origin: 0, PCR: 0.02},
		Event{Kind: KindSetup, ID: core.ConnID("r1"), Origin: 1, PCR: 0.02},
		Event{Kind: KindSetup, ID: core.ConnID("r2"), Origin: 2, PCR: 0.02},
		Event{Kind: KindTeardown, ID: "r1"},
		Event{Kind: KindFail, Node: 1},
		Event{Kind: KindSetup, ID: "rw", Origin: 0, PCR: 0.02},
		Event{Kind: KindRestore, Node: 1},
		Event{Kind: KindSetup, ID: "r3", Origin: 3, PCR: 0.02},
	}
}

// journaledOps counts the script events that reach the journal (all of
// them — every kind in the vocabulary is journaled).
func journaledOps(s Script) int { return len(s) }

// TestReplicaTakeoverClean is the fault-free baseline: full script,
// manual failover, exact state takeover, ex-primary rejoin.
func TestReplicaTakeoverClean(t *testing.T) {
	h := ReplicaHarness{Dir: t.TempDir(), Script: replicaScript()}
	res, _, err := h.Run(ReplicaFault{Point: PointFSBoundary, Boundary: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedAtOp != -1 {
		t.Fatalf("clean run crashed at op %d", res.CrashedAtOp)
	}
	if res.PromotedEpoch == 0 {
		t.Fatal("promotion did not advance the epoch")
	}
}

// TestReplicaCrashPoints kills the primary at every protocol instant of
// every journaled operation: before the append, between append and
// ship, and between the standby's ack and the client's. The promoted
// standby must hold exactly the acked state (the interrupted op may be
// in either).
func TestReplicaCrashPoints(t *testing.T) {
	script := replicaScript()
	points := []ReplicaPoint{PointPreAppend, PointPostAppend, PointPostShip}
	for _, point := range points {
		for op := 0; op < journaledOps(script); op++ {
			t.Run(fmt.Sprintf("%s/op%d", point, op), func(t *testing.T) {
				t.Parallel()
				h := ReplicaHarness{Dir: t.TempDir(), Script: script}
				res, _, err := h.Run(ReplicaFault{Point: point, OpIndex: op})
				if err != nil {
					t.Fatal(err)
				}
				if res.CrashedAtOp == -1 {
					t.Fatal("fault never fired")
				}
			})
		}
	}
}

// TestReplicaCrashFSBoundaries sweeps the primary's filesystem write
// boundaries — appends, snapshot writes, and every instant of a
// compaction — while replication is live, under the power-loss model.
func TestReplicaCrashFSBoundaries(t *testing.T) {
	script := replicaScript()
	dry := ReplicaHarness{Dir: t.TempDir(), Script: script}
	_, cfs, err := dry.Run(ReplicaFault{Point: PointFSBoundary, Boundary: -1})
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	n := cfs.Boundaries()
	if n == 0 {
		t.Fatal("dry run hit no durability boundaries")
	}
	t.Logf("scenario has %d primary-side durability boundaries", n)
	stride := 1
	if testing.Short() {
		stride = 4
	}
	for k := 0; k < n; k += stride {
		k := k
		t.Run(fmt.Sprintf("boundary%d", k), func(t *testing.T) {
			t.Parallel()
			h := ReplicaHarness{Dir: t.TempDir(), Script: script, Loss: DropUnsynced}
			res, run, err := h.Run(ReplicaFault{Point: PointFSBoundary, Boundary: k})
			if err != nil {
				t.Fatal(err)
			}
			if !run.Crashed() {
				t.Fatalf("boundary %d never fired", k)
			}
			_ = res
		})
	}
}

// TestReplicaPartition cuts the replication link mid-script: sync-mode
// writes on the primary must be refused and rolled back, the promoted
// standby must fence the old primary across the healed link, the fenced
// node must refuse writes with the split-brain code without mutating,
// and the ex-primary must converge after rejoining as a standby.
func TestReplicaPartition(t *testing.T) {
	// Cut after the restore event so the partitioned tail is purely
	// ack-gated ops (warning-only ops would ack despite the partition).
	script := replicaScript()
	for _, cutAt := range []int{7, 8} {
		t.Run(fmt.Sprintf("cut%d", cutAt), func(t *testing.T) {
			t.Parallel()
			h := ReplicaHarness{Dir: t.TempDir(), Script: script}
			res, _, err := h.Run(ReplicaFault{Point: PointPartition, OpIndex: cutAt})
			if err != nil {
				t.Fatal(err)
			}
			if res.PromotedEpoch == 0 {
				t.Fatal("promotion did not advance the epoch")
			}
		})
	}
}

// TestReplicaAsyncPartitionAllowsProgress pins the async-mode contract
// under partition: writes keep acking (catch-up heals the standby
// later), which is exactly the loss window the sync mode closes.
func TestReplicaAsyncPartitionAllowsProgress(t *testing.T) {
	h := ReplicaHarness{
		Dir:  t.TempDir(),
		Mode: replica.ModeAsync,
		// Only pre-cut events run under replication; the tail after the
		// cut is applied with the link down.
		Script: Script{
			Event{Kind: KindSetup, ID: core.ConnID("a0"), Origin: 0, PCR: 0.02},
			Event{Kind: KindSetup, ID: core.ConnID("a1"), Origin: 1, PCR: 0.02},
		},
	}
	// A partition in async mode refuses nothing, so runPartition's
	// sync-mode assertions do not apply; drive the pieces directly via
	// the crash path instead: cut is modelled by killing the link at
	// post-ship of op 1 — the op still acks (async never waits).
	res, _, err := h.Run(ReplicaFault{Point: PointPostShip, OpIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedAtOp != 1 {
		t.Fatalf("fault fired at op %d, want 1", res.CrashedAtOp)
	}
}
