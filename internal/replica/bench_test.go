package replica_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/overload"
	"atmcac/internal/replica"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// BenchmarkReplicatedSetup measures the client-visible mutation latency
// through a live loopback primary/standby pair in each replication
// mode. Async pays only the local journal append; semi-sync adds the
// wait for the standby's connection-level ack; sync waits for the
// standby to confirm this very record. The client is dialed and the
// standby session established once, off the clock; each timed iteration
// is then one admit+release cycle — exactly two replicated appends over
// the warm connection, with no per-iteration dials and no timer
// start/stop churn to swamp the mode deltas.
func BenchmarkReplicatedSetup(b *testing.B) {
	for _, mode := range []replica.Mode{replica.ModeAsync, replica.ModeSemiSync, replica.ModeSync} {
		b.Run(string(mode), func(b *testing.B) {
			dir := b.TempDir()
			pn := bootNode(b, filepath.Join(dir, "primary.json"), true)
			defer pn.stop()
			pn.prim = replica.NewPrimary(pn.srv, replica.PrimaryConfig{
				Mode:           mode,
				AckTimeout:     5 * time.Second,
				HeartbeatEvery: 50 * time.Millisecond,
			})
			pn.srv.SetShipper(pn.prim)
			go pn.prim.Serve(pn.replLn)

			sn := bootNode(b, filepath.Join(dir, "standby.json"), false)
			defer sn.stop()
			sn.srv.SetStandby(true)
			sn.sb = replica.NewStandby(sn.srv, replica.StandbyConfig{
				PrimaryAddr:      pn.replLn.Addr().String(),
				ReconnectBackoff: overload.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
			})
			go sn.sb.Run()

			route, err := pn.rt.BroadcastRoute(0, 0)
			if err != nil {
				b.Fatal(err)
			}
			req := core.ConnRequest{ID: "bench", Spec: traffic.CBR(0.001), Priority: 1, Route: route}

			// Wait for the standby session, then warm up with one full
			// admission so every mode measures steady-state shipping,
			// not the initial catch-up handshake.
			if !waitFor(5*time.Second, func() bool {
				rep := wire.ReplicationReport{Role: "primary"}
				replica.Status(pn.prim, nil)(&rep)
				return rep.Connected
			}) {
				b.Fatal("standby never connected")
			}
			if _, err := pn.client.Setup(context.Background(), req); err != nil {
				b.Fatal(err)
			}
			if err := pn.client.Teardown(context.Background(), req.ID); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pn.client.Setup(context.Background(), req); err != nil {
					b.Fatal(err)
				}
				if err := pn.client.Teardown(context.Background(), req.ID); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
		})
	}
}
