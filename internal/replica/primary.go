package replica

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"atmcac/internal/journal"
	"atmcac/internal/obs"
	"atmcac/internal/wire"
)

// PrimaryConfig tunes the shipping side of replication.
type PrimaryConfig struct {
	// Mode is the acknowledgement discipline (async, semi-sync, sync).
	Mode Mode
	// MaxLag bounds lastShipped-acked for semi-sync mode, in records.
	// Defaults to 64.
	MaxLag uint64
	// AckTimeout bounds how long a sync or semi-sync Ship waits for the
	// standby before giving up (the operation is then compensated and
	// refused). Defaults to 5s.
	AckTimeout time.Duration
	// HeartbeatEvery is the keepalive interval feeding the standby's
	// failover timer. Defaults to 1s.
	HeartbeatEvery time.Duration
	// WriteTimeout bounds a single stream write. Defaults to 5s.
	WriteTimeout time.Duration
	// Tracer receives repl-ship and repl-ack events; nil disables.
	Tracer obs.Tracer
}

func (c *PrimaryConfig) fill() {
	if c.Mode == "" {
		c.Mode = ModeAsync
	}
	if c.MaxLag == 0 {
		c.MaxLag = 64
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
}

// Primary accepts standby sessions, feeds each one its catch-up delta,
// and ships every subsequent journal record per the configured mode. It
// implements wire.Shipper; install it with Server.SetShipper. One
// standby session is live at a time — a newer handshake supersedes the
// old stream (the standby that lost reconnects and catches up).
type Primary struct {
	srv *wire.Server
	cfg PrimaryConfig

	mu          sync.Mutex
	cond        *sync.Cond
	ln          net.Listener
	conn        net.Conn
	ackedSeq    uint64
	lastShipped uint64
	shippedAt   map[uint64]time.Time
	closed      bool
}

// NewPrimary wires a shipping primary to srv. The caller still must
// srv.SetShipper(p) and run Serve on a listener.
func NewPrimary(srv *wire.Server, cfg PrimaryConfig) *Primary {
	cfg.fill()
	p := &Primary{srv: srv, cfg: cfg, shippedAt: make(map[uint64]time.Time)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Serve accepts standby connections until the listener closes.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return fmt.Errorf("replica: primary is closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go p.handshake(conn)
	}
}

// Close stops accepting and drops the live session. Ships after Close
// behave as if no standby were connected.
func (p *Primary) Close() error {
	p.mu.Lock()
	p.closed = true
	ln, conn := p.ln, p.conn
	p.conn = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if conn != nil {
		conn.Close()
	}
	return nil
}

// handshake validates a standby's hello, streams its catch-up delta and
// atomically activates the live session. Epoch conflicts resolve here:
// a standby from a higher term means this node was superseded, so it
// fences itself instead of feeding anyone.
func (p *Primary) handshake(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(p.cfg.WriteTimeout))
	hello, err := ReadMsg(conn)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if hello.Type == MsgFence {
		// A promoted standby is telling us our term is over.
		if hello.Epoch > p.srv.Epoch() {
			p.srv.Fence(hello.Epoch)
		}
		p.writeTo(conn, Msg{Type: MsgAck, Epoch: hello.Epoch})
		conn.Close()
		return
	}
	if hello.Type != MsgHello {
		p.writeTo(conn, Msg{Type: MsgReject, Code: CodeCatchUp, Text: fmt.Sprintf("expected hello, got %s", hello.Type)})
		conn.Close()
		return
	}
	localEpoch := p.srv.Epoch()
	if hello.Epoch > localEpoch {
		// The dialer lived through a later term than ours: a newer
		// primary exists (or existed). Fence before it can be fed.
		p.srv.Fence(hello.Epoch)
		p.writeTo(conn, Msg{Type: MsgReject, Code: wire.CodeFenced, Epoch: hello.Epoch,
			Text: fmt.Sprintf("hello epoch %d above local term %d", hello.Epoch, localEpoch)})
		conn.Close()
		return
	}
	if fenced, by := p.srv.Fenced(); fenced {
		p.writeTo(conn, Msg{Type: MsgReject, Code: wire.CodeFenced, Epoch: by,
			Text: "node is a fenced ex-primary; resync from the current primary"})
		conn.Close()
		return
	}
	// A standby from an older term may hold journal records the new
	// term never saw (its stint as primary); its delta is not trusted —
	// force the full state.
	force := hello.Code == "full" || hello.Epoch < localEpoch
	lastSent := hello.Seq
	err = p.srv.CatchUp(hello.Seq, force,
		func(st wire.PersistentState) error {
			data, err := json.Marshal(st)
			if err != nil {
				return err
			}
			lastSent = st.LastSeq
			return p.writeTo(conn, Msg{Type: MsgState, Epoch: st.Epoch, Seq: st.LastSeq, Payload: data})
		},
		func(entries []journal.Entry) error {
			for _, e := range entries {
				if err := p.writeTo(conn, Msg{Type: MsgRecord, Epoch: e.Rec.Epoch, Seq: e.Seq, Payload: e.Payload}); err != nil {
					return err
				}
				lastSent = e.Seq
			}
			return nil
		},
		func() { p.attach(conn, hello.Seq, lastSent) },
	)
	if err != nil {
		p.writeTo(conn, Msg{Type: MsgReject, Code: CodeCatchUp, Text: err.Error()})
		conn.Close()
		return
	}
	go p.readLoop(conn)
	go p.heartbeatLoop(conn)
}

// attach makes conn the live session, superseding any previous one.
// Runs inside CatchUp's persistMu window, so no record can slip between
// the catch-up batch and the live stream.
func (p *Primary) attach(conn net.Conn, acked, lastSent uint64) {
	p.mu.Lock()
	old := p.conn
	p.conn = conn
	p.ackedSeq = acked
	p.lastShipped = lastSent
	for seq := range p.shippedAt {
		delete(p.shippedAt, seq)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// readLoop consumes acks (and rejections) from the live standby.
func (p *Primary) readLoop(conn net.Conn) {
	defer p.drop(conn)
	for {
		msg, err := ReadMsg(conn)
		if err != nil {
			return
		}
		switch msg.Type {
		case MsgAck:
			p.onAck(msg.Seq)
		case MsgReject:
			if msg.Code == wire.CodeFenced && msg.Epoch > p.srv.Epoch() {
				// The standby is past our term: it was promoted. Fence.
				p.srv.Fence(msg.Epoch)
			}
			// Any reject (divergence resync, decode failure) ends the
			// session; the standby reconnects with a fresh hello.
			return
		case MsgFence:
			if msg.Epoch > p.srv.Epoch() {
				p.srv.Fence(msg.Epoch)
			}
			return
		}
	}
}

func (p *Primary) onAck(seq uint64) {
	now := time.Now()
	p.mu.Lock()
	if seq > p.ackedSeq {
		p.ackedSeq = seq
	}
	var acked []time.Duration
	for s, at := range p.shippedAt {
		if s <= seq {
			acked = append(acked, now.Sub(at))
			delete(p.shippedAt, s)
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if tr := p.cfg.Tracer; tr != nil {
		epoch := p.srv.Epoch()
		for _, d := range acked {
			tr.Trace(obs.Event{Kind: obs.KindReplAck, Outcome: obs.OutcomeOK, Duration: d, Epoch: epoch})
		}
	}
}

// heartbeatLoop keeps the standby's failover timer fed while the
// session is live.
func (p *Primary) heartbeatLoop(conn net.Conn) {
	tick := time.NewTicker(p.cfg.HeartbeatEvery)
	defer tick.Stop()
	for range tick.C {
		p.mu.Lock()
		live := p.conn == conn
		p.mu.Unlock()
		if !live {
			return
		}
		if err := p.writeTo(conn, Msg{Type: MsgHeartbeat, Epoch: p.srv.Epoch()}); err != nil {
			p.drop(conn)
			return
		}
	}
}

// writeTo writes one framed message with the write deadline applied.
// Serialized with p.mu so ship, catch-up and heartbeat frames never
// interleave on the wire.
func (p *Primary) writeTo(conn net.Conn, m Msg) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	err := WriteMsg(conn, m)
	conn.SetWriteDeadline(time.Time{})
	return err
}

// drop closes conn and, if it was the live session, detaches it and
// wakes every Ship blocked on its acks.
func (p *Primary) drop(conn net.Conn) {
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	conn.Close()
}

// Ship implements wire.Shipper: forward one record and block per the
// configured mode. Called under the server's persistMu, immediately
// after the local append — so stream order equals journal order, and a
// refusal here happens before the client ack (the wire layer then
// compensates the append).
func (p *Primary) Ship(seq, epoch uint64, payload []byte) error {
	start := time.Now()
	err := p.ship(seq, epoch, payload, start)
	if tr := p.cfg.Tracer; tr != nil {
		outcome := obs.OutcomeOK
		if err != nil {
			outcome = obs.OutcomeError
		}
		tr.Trace(obs.Event{Kind: obs.KindReplShip, Outcome: outcome,
			Duration: time.Since(start), Bytes: int64(len(payload)), Epoch: epoch})
	}
	return err
}

func (p *Primary) ship(seq, epoch uint64, payload []byte, start time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn := p.conn
	if conn == nil {
		if p.cfg.Mode == ModeAsync {
			// No standby right now: catch-up heals the gap on reconnect.
			return nil
		}
		return fmt.Errorf("replica: %s replication: no standby connected", p.cfg.Mode)
	}
	conn.SetWriteDeadline(start.Add(p.cfg.WriteTimeout))
	err := WriteMsg(conn, Msg{Type: MsgRecord, Epoch: epoch, Seq: seq, Payload: payload})
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		if p.conn == conn {
			p.conn = nil
			p.cond.Broadcast()
		}
		conn.Close()
		if p.cfg.Mode == ModeAsync {
			return nil
		}
		return fmt.Errorf("replica: %s replication: ship seq %d: %w", p.cfg.Mode, seq, err)
	}
	p.lastShipped = seq
	if len(p.shippedAt) < 1<<16 {
		p.shippedAt[seq] = start
	}
	switch p.cfg.Mode {
	case ModeAsync:
		return nil
	case ModeSemiSync:
		if !p.waitLocked(func() bool { return p.lastShipped-p.ackedSeq <= p.cfg.MaxLag }, p.cfg.AckTimeout) {
			return fmt.Errorf("replica: semi-sync replication: standby lag %d exceeds %d after %v",
				p.lastShipped-p.ackedSeq, p.cfg.MaxLag, p.cfg.AckTimeout)
		}
	case ModeSync:
		if !p.waitLocked(func() bool { return p.ackedSeq >= seq }, p.cfg.AckTimeout) {
			return fmt.Errorf("replica: sync replication: seq %d unacknowledged after %v", seq, p.cfg.AckTimeout)
		}
	}
	return nil
}

// ShipBestEffort implements wire.Shipper for warning-only records and
// compensations: one write attempt, no wait, no failure.
func (p *Primary) ShipBestEffort(seq, epoch uint64, payload []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn := p.conn
	if conn == nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	err := WriteMsg(conn, Msg{Type: MsgRecord, Epoch: epoch, Seq: seq, Payload: payload})
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		if p.conn == conn {
			p.conn = nil
			p.cond.Broadcast()
		}
		conn.Close()
		return
	}
	if seq > p.lastShipped {
		p.lastShipped = seq
	}
}

// waitLocked blocks on the session condition until pred holds, the
// session drops, or timeout passes. Caller holds p.mu.
func (p *Primary) waitLocked(pred func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	for {
		if pred() {
			return true
		}
		if p.conn == nil || !time.Now().Before(deadline) {
			return false
		}
		p.cond.Wait()
	}
}

// decorate fills the stream-level fields of a replication report.
func (p *Primary) decorate(rep *wire.ReplicationReport) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep.Mode = string(p.cfg.Mode)
	rep.Connected = p.conn != nil
	rep.AckedSeq = p.ackedSeq
	if rep.LastSeq > p.ackedSeq {
		rep.Lag = rep.LastSeq - p.ackedSeq
	}
}

// RegisterMetrics exposes the primary's stream gauges on reg.
func (p *Primary) RegisterMetrics(reg *obs.Registry) {
	role := obs.L("role", "primary")
	reg.GaugeFunc("atmcac_repl_connected", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.conn != nil {
			return 1
		}
		return 0
	}, role)
	reg.Help("atmcac_repl_connected", "Whether a live replication stream is attached (by role).")
	reg.GaugeFunc("atmcac_repl_lag_records", func() float64 {
		last := p.srv.JournalWatermark()
		p.mu.Lock()
		acked := p.ackedSeq
		p.mu.Unlock()
		if last > acked {
			return float64(last - acked)
		}
		return 0
	}, role)
	reg.Help("atmcac_repl_lag_records", "Journal records not yet acknowledged by the standby.")
}
