// Package replica implements hot-standby replication by journal
// shipping. The primary streams every appended journal record — the
// exact payload bytes, re-framed with the journal's length+CRC32
// header — over a persistent connection to a standby, which appends
// them to its own journal byte-identically and keeps a warm in-memory
// network by idempotent replay. Acknowledgements flow back per record;
// the configured Mode decides how long the primary's write path blocks
// on them before acking its own client.
//
// Failover is fenced by a monotonic epoch carried in every shipped
// record and in the snapshot trailer: promotion bumps the epoch and
// persists it before the standby's write gate opens, and any node that
// observes a higher epoch fences itself out of the write path, so a
// partitioned ex-primary can never apply a split-brain mutation.
//
// The package owns only the transport: handshake, catch-up delivery,
// record/ack framing, reconnect backoff and the failover timer. All
// state decisions (what to ship, how to apply, when an epoch is stale)
// live behind the wire.Server seams — Shipper, ApplyShipped, CatchUp,
// InstallState, Promote, Fence.
package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"atmcac/internal/journal"
	"atmcac/internal/wire"
)

// Mode is the replication acknowledgement discipline.
type Mode string

const (
	// ModeAsync ships records without waiting: the primary acks its
	// client as soon as the record is locally durable. A failover can
	// lose the acked tail that never reached the standby.
	ModeAsync Mode = "async"
	// ModeSemiSync ships and then waits until the standby's
	// acknowledged watermark is within MaxLag records of the shipped
	// one — bounding, but not eliminating, acked-operation loss.
	ModeSemiSync Mode = "semi-sync"
	// ModeSync waits for the standby to acknowledge this very record
	// before the primary acks its client: zero acked-operation loss on
	// failover, at one replication round-trip per mutation.
	ModeSync Mode = "sync"
)

// ParseMode validates a mode string from a flag or config file.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeAsync, ModeSemiSync, ModeSync:
		return Mode(s), nil
	}
	return "", fmt.Errorf("replica: unknown replication mode %q (want async, semi-sync or sync)", s)
}

// Message types of the replication stream. Every message is a JSON
// Msg wrapped in a journal frame (length + CRC32), so stream corruption
// is caught by the same checksum discipline as the journal itself.
const (
	// MsgHello opens a standby's session: Epoch and Seq carry its
	// current term and journal watermark; Code "full" requests a full
	// state resync regardless of the watermark.
	MsgHello = "hello"
	// MsgState carries the primary's full durable state (payload:
	// wire.PersistentState JSON; Epoch/Seq: its term and watermark) —
	// the catch-up path when the journal delta is compacted away or the
	// standby diverged.
	MsgState = "state"
	// MsgRecord carries one journal record: Seq and Epoch from the
	// record, payload the exact journal payload bytes.
	MsgRecord = "record"
	// MsgAck acknowledges that the record at Seq (and everything below
	// it) is durable and applied on the standby.
	MsgAck = "ack"
	// MsgReject refuses the session or a record with a typed Code
	// (wire.CodeFenced for epoch conflicts, CodeResync for divergence).
	MsgReject = "reject"
	// MsgFence tells an ex-primary that the sender was promoted at
	// Epoch; the receiver fences itself.
	MsgFence = "fence"
	// MsgHeartbeat keeps the session alive and feeds the standby's
	// failover timer.
	MsgHeartbeat = "heartbeat"
)

// Reject codes internal to the replication stream (epoch conflicts
// reuse wire.CodeFenced).
const (
	// CodeResync asks the primary for a full-state session: the standby
	// could not apply a shipped record and considers itself diverged.
	CodeResync = "resync"
	// CodeCatchUp reports a primary-side catch-up failure.
	CodeCatchUp = "catch-up-failed"
)

// ErrStream reports a malformed replication message (bad frame, bad
// JSON, unknown type) — distinct from transport errors so callers can
// tell corruption from disconnection.
var ErrStream = errors.New("replica: malformed stream message")

// Msg is the replication stream envelope.
type Msg struct {
	Type    string          `json:"type"`
	Epoch   uint64          `json:"epoch,omitempty"`
	Seq     uint64          `json:"seq,omitempty"`
	Code    string          `json:"code,omitempty"`
	Text    string          `json:"msg,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// WriteMsg frames and writes one message.
func WriteMsg(w io.Writer, m Msg) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("replica: encode %s message: %w", m.Type, err)
	}
	return journal.WriteFrame(w, data)
}

// ReadMsg reads and decodes one framed message. A clean EOF at a frame
// boundary is io.EOF; a bad checksum or undecodable body is ErrStream.
func ReadMsg(r io.Reader) (Msg, error) {
	payload, err := journal.ReadFrame(r)
	if err != nil {
		if errors.Is(err, journal.ErrFrame) {
			return Msg{}, fmt.Errorf("%w: %v", ErrStream, err)
		}
		return Msg{}, err
	}
	var m Msg
	if err := json.Unmarshal(payload, &m); err != nil {
		return Msg{}, fmt.Errorf("%w: %v", ErrStream, err)
	}
	if m.Type == "" {
		return Msg{}, fmt.Errorf("%w: missing type", ErrStream)
	}
	return m, nil
}

// Status combines the primary- and standby-side report decorators for a
// node that may play either role (a standby keeps its Primary listener
// so it can serve a new standby after promotion). Each decorator fires
// only for the role the wire layer reports, so the fields never mix.
func Status(p *Primary, sb *Standby) func(*wire.ReplicationReport) {
	return func(rep *wire.ReplicationReport) {
		if sb != nil && rep.Role == "standby" {
			sb.decorate(rep)
		}
		if p != nil && rep.Role == "primary" {
			p.decorate(rep)
		}
	}
}
