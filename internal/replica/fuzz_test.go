package replica_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/replica"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// fuzzRoute builds one valid broadcast route for the fuzz network shape.
func fuzzRoute(tb testing.TB) core.Route {
	tb.Helper()
	rt, err := rtnet.New(rtnet.Config{RingNodes: propRing, TerminalsPerNode: propTerminals})
	if err != nil {
		tb.Fatal(err)
	}
	route, err := rt.BroadcastRoute(0, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return route
}

// seedStream is a well-formed replication byte stream: hello, a full
// state install, setup and teardown records, a duplicate, a stale-epoch
// record, heartbeats and a fence.
func seedStream(tb testing.TB) []byte {
	tb.Helper()
	route := fuzzRoute(tb)
	var buf bytes.Buffer
	write := func(m replica.Msg) {
		tb.Helper()
		if err := replica.WriteMsg(&buf, m); err != nil {
			tb.Fatal(err)
		}
	}
	write(replica.Msg{Type: replica.MsgHello, Epoch: 1, Seq: 0})
	st := wire.PersistentState{
		Connections: []core.ConnRequest{{ID: "seed", Spec: traffic.CBR(0.001), Priority: 1, Route: route}},
		LastSeq:     3,
		Epoch:       1,
	}
	stb, err := json.Marshal(st)
	if err != nil {
		tb.Fatal(err)
	}
	write(replica.Msg{Type: replica.MsgState, Epoch: 1, Seq: 3, Payload: stb})
	rec := func(seq, epoch uint64, r journal.Record) replica.Msg {
		r.Seq, r.Epoch = seq, epoch
		pb, merr := json.Marshal(r)
		if merr != nil {
			tb.Fatal(merr)
		}
		return replica.Msg{Type: replica.MsgRecord, Epoch: epoch, Seq: seq, Payload: pb}
	}
	setup := journal.Record{Op: journal.OpSetup, Request: &core.ConnRequest{
		ID: "f1", Spec: traffic.CBR(0.001), Priority: 1, Route: route,
	}}
	write(rec(4, 1, setup))
	write(replica.Msg{Type: replica.MsgHeartbeat, Epoch: 1})
	write(rec(4, 1, setup)) // duplicate: reconnect replay, must be a no-op
	write(rec(5, 2, journal.Record{Op: journal.OpTeardown, ID: "f1"}))
	write(rec(6, 1, setup)) // stale epoch after the bump: typed reject
	write(replica.Msg{Type: replica.MsgFence, Epoch: 3})
	write(replica.Msg{Type: replica.MsgHeartbeat, Epoch: 3})
	return buf.Bytes()
}

// consumeStream feeds raw bytes through the standby's ingestion
// discipline — frame decode, envelope decode, record apply or state
// install — against a real journal-backed server. Every outcome except a
// panic is acceptable: garbage must surface as a typed error (ErrStream
// at the frame layer, a reject from the apply layer) or be skipped.
func consumeStream(tb testing.TB, srv *wire.Server, data []byte) {
	tb.Helper()
	r := bytes.NewReader(data)
	for {
		msg, err := replica.ReadMsg(r)
		if err != nil {
			// Torn, truncated or bit-flipped frames land here (ErrStream),
			// as does clean EOF; either way the stream is over.
			return
		}
		switch msg.Type {
		case replica.MsgRecord:
			var rec journal.Record
			if json.Unmarshal(msg.Payload, &rec) != nil {
				continue // the real standby resyncs; the bytes never apply
			}
			_ = srv.ApplyShipped(rec, msg.Payload)
		case replica.MsgState:
			var st wire.PersistentState
			if json.Unmarshal(msg.Payload, &st) != nil {
				continue
			}
			st.Epoch = msg.Epoch
			_ = srv.InstallState(st)
		case replica.MsgFence:
			srv.Fence(msg.Epoch)
		}
	}
}

// FuzzReplicationStream mutates replication streams — truncations, bit
// flips, duplicated frames, stale epochs, garbage JSON — and requires
// the ingestion path to never panic and to stay idempotent: consuming
// the same stream twice must leave the server in exactly the state one
// pass produced.
func FuzzReplicationStream(f *testing.F) {
	valid := seedStream(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40 // bit flip mid-stream
	f.Add(flipped)
	f.Add(append(bytes.Clone(valid), valid...)) // duplicated stream
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200})

	f.Fuzz(func(t *testing.T, data []byte) {
		rt, err := rtnet.New(rtnet.Config{
			RingNodes:        propRing,
			TerminalsPerNode: propTerminals,
			QueueCells:       map[core.Priority]float64{1: 1e6},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := wire.NewServer(rt.Core())
		dur, err := wire.OpenDurable(wire.DurableConfig{
			StatePath: filepath.Join(t.TempDir(), "state.json"),
			FS:        journal.OSFS{},
			Mode:      wire.DurabilityJournal,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer dur.Close()
		if _, err := dur.Recover(rt.Core()); err != nil {
			t.Fatal(err)
		}
		srv.SetDurable(dur)
		defer srv.Close()

		consumeStream(t, srv, data)
		once := stateKey(rt.Core())
		onceEpoch := srv.Epoch()
		consumeStream(t, srv, data)
		if got := stateKey(rt.Core()); got != once {
			t.Fatalf("second pass changed the state: %s -> %s", once, got)
		}
		if got := srv.Epoch(); got != onceEpoch {
			t.Fatalf("second pass changed the epoch: %d -> %d", onceEpoch, got)
		}
	})
}
