package replica_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/overload"
	"atmcac/internal/replica"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
	"atmcac/internal/workload"
)

const (
	propRing      = 4
	propTerminals = 2
)

// node is one replicated CAC server booted for the property test.
type node struct {
	rt     *rtnet.Network
	srv    *wire.Server
	dur    *wire.Durable
	client *wire.Client
	ln     net.Listener
	replLn net.Listener
	prim   *replica.Primary
	sb     *replica.Standby
}

func (n *node) stop() {
	if n.sb != nil {
		n.sb.Close()
	}
	if n.prim != nil {
		n.prim.Close()
	}
	if n.client != nil {
		n.client.Close()
	}
	n.srv.Close()
	n.dur.Close()
}

// bootNode builds a journal-sync durable wire server on an ephemeral
// port. withRepl additionally opens a replication listener.
func bootNode(t testing.TB, statePath string, withRepl bool) *node {
	t.Helper()
	rt, err := rtnet.New(rtnet.Config{
		RingNodes:        propRing,
		TerminalsPerNode: propTerminals,
		QueueCells:       map[core.Priority]float64{1: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &node{rt: rt, srv: wire.NewServer(rt.Core())}
	n.dur, err = wire.OpenDurable(wire.DurableConfig{
		StatePath: statePath,
		FS:        journal.OSFS{},
		Mode:      wire.DurabilityJournalSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.dur.Recover(rt.Core()); err != nil {
		t.Fatal(err)
	}
	n.srv.SetDurable(n.dur)
	if withRepl {
		n.replLn, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
	}
	n.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go n.srv.Serve(n.ln)
	n.client, err = wire.Dial(n.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func stateKey(c *core.Network) string {
	ids := make([]string, 0)
	for _, id := range c.Connections() {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	links := make([]string, 0)
	for _, l := range c.FailedLinks() {
		links = append(links, l.From+"->"+l.To)
	}
	sort.Strings(links)
	return "conns{" + strings.Join(ids, ",") + "} down{" + strings.Join(links, ",") + "}"
}

func waitFor(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// TestPropertyChurnReplicates drives a seeded setup/teardown churn
// through a sync-mode primary and asserts two properties per seed: the
// warm standby's in-memory admission state equals the primary's after
// every acked operation, and the standby's replicated on-disk bytes —
// snapshot plus shipped journal — recover to exactly that state through
// the normal wire state round-trip on a fresh network.
func TestPropertyChurnReplicates(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			pn := bootNode(t, filepath.Join(dir, "primary.json"), true)
			defer pn.stop()
			pn.prim = replica.NewPrimary(pn.srv, replica.PrimaryConfig{
				Mode:           replica.ModeSync,
				AckTimeout:     5 * time.Second,
				HeartbeatEvery: 50 * time.Millisecond,
			})
			pn.srv.SetShipper(pn.prim)
			go pn.prim.Serve(pn.replLn)

			sPath := filepath.Join(dir, "standby.json")
			sn := bootNode(t, sPath, false)
			defer sn.stop()
			sn.srv.SetStandby(true)
			sn.sb = replica.NewStandby(sn.srv, replica.StandbyConfig{
				PrimaryAddr:      pn.replLn.Addr().String(),
				ReconnectBackoff: overload.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
			})
			go sn.sb.Run()

			// Sync mode refuses mutations until a standby session exists;
			// wait for the handshake before the churn starts.
			if !waitFor(5*time.Second, func() bool {
				rep := wire.ReplicationReport{Role: "primary"}
				replica.Status(pn.prim, nil)(&rep)
				return rep.Connected
			}) {
				t.Fatal("standby never connected to the primary")
			}

			events, err := workload.Churn(seed, mustGamma(t, seed), workload.ChurnConfig{MeanHold: 3}, 60)
			if err != nil {
				t.Fatal(err)
			}
			established := map[int]bool{}
			acked := 0
			for _, ev := range events {
				id := core.ConnID(fmt.Sprintf("c%03d", ev.Index))
				switch ev.Kind {
				case workload.EvSetup:
					route, rerr := pn.rt.BroadcastRoute(ev.Index%propRing, ev.Index%propTerminals)
					if rerr != nil {
						t.Fatal(rerr)
					}
					_, serr := pn.client.Setup(context.Background(), core.ConnRequest{
						ID: id, Spec: traffic.CBR(0.001), Priority: 1, Route: route,
					})
					if serr == nil {
						established[ev.Index] = true
						acked++
					} else if !errors.Is(serr, core.ErrRejected) {
						t.Fatalf("setup %s: %v", id, serr)
					}
				case workload.EvTeardown:
					if !established[ev.Index] {
						continue
					}
					if terr := pn.client.Teardown(context.Background(), id); terr != nil {
						t.Fatalf("teardown %s: %v", id, terr)
					}
					delete(established, ev.Index)
					acked++
				}
			}
			if acked == 0 {
				t.Fatal("churn acked no operations")
			}

			// Property 1: the warm standby holds exactly the primary's state.
			want := stateKey(pn.rt.Core())
			if !waitFor(5*time.Second, func() bool { return stateKey(sn.rt.Core()) == want }) {
				t.Fatalf("standby state %s never converged to %s", stateKey(sn.rt.Core()), want)
			}

			// Property 2: the standby's replicated bytes recover to the same
			// state on a fresh network — the wire state round-trip.
			sn.stop()
			rt2, err := rtnet.New(rtnet.Config{
				RingNodes:        propRing,
				TerminalsPerNode: propTerminals,
				QueueCells:       map[core.Priority]float64{1: 1e6},
			})
			if err != nil {
				t.Fatal(err)
			}
			dur2, err := wire.OpenDurable(wire.DurableConfig{
				StatePath: sPath,
				FS:        journal.OSFS{},
				Mode:      wire.DurabilityJournalSync,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer dur2.Close()
			rep, err := dur2.Recover(rt2.Core())
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Failed) > 0 {
				t.Fatalf("recovery from replicated bytes lost %d connections: %+v", len(rep.Failed), rep.Failed)
			}
			if got := stateKey(rt2.Core()); got != want {
				t.Fatalf("recovered state %s != primary state %s", got, want)
			}
		})
	}
}

func mustGamma(t *testing.T, seed uint64) workload.Arrivals {
	t.Helper()
	a, err := workload.NewGamma(seed, workload.GammaConfig{Rate: 1, CV: 1})
	if err != nil {
		t.Fatal(err)
	}
	return a
}
