package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"atmcac/internal/journal"
	"atmcac/internal/obs"
	"atmcac/internal/overload"
	"atmcac/internal/wire"
)

// ErrSuperseded reports that the dialed peer refused this node as
// stale: the local epoch is ahead of the peer's, so this node should be
// (or already is) the primary — following would invert the roles.
var ErrSuperseded = errors.New("replica: peer is behind this node's epoch")

// StandbyConfig tunes the consuming side of replication.
type StandbyConfig struct {
	// PrimaryAddr is the primary's replication listener.
	PrimaryAddr string
	// Dial opens the replication connection; nil means net.Dial("tcp").
	// Injectable so the chaos harness can partition the link.
	Dial func(addr string) (net.Conn, error)
	// FailoverTimeout promotes this standby automatically once the
	// primary has been silent for this long. Zero disables automatic
	// failover (promotion then only happens via cacctl promote).
	FailoverTimeout time.Duration
	// ReconnectBackoff shapes the jittered dial retry delays. The
	// zero value uses overload's defaults (10ms base, 2s cap).
	ReconnectBackoff overload.Backoff
	// WriteTimeout bounds a single ack write. Defaults to 5s.
	WriteTimeout time.Duration
	// Tracer is reserved for stream events; nil disables.
	Tracer obs.Tracer
}

// Standby maintains the replication session from the consuming side:
// dial the primary with jittered backoff, hand every shipped record to
// the server's idempotent ingestion path, acknowledge what is durable,
// and promote itself — fencing the old primary — when the primary goes
// silent past the failover timeout.
type Standby struct {
	srv *wire.Server
	cfg StandbyConfig

	mu         sync.Mutex
	conn       net.Conn
	appliedSeq uint64
	needFull   bool
	promoted   bool

	stopOnce sync.Once
	stopped  chan struct{}
}

// NewStandby wires a consuming standby to srv. The caller still must
// srv.SetStandby(true) and run Run in a goroutine.
func NewStandby(srv *wire.Server, cfg StandbyConfig) *Standby {
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	return &Standby{srv: srv, cfg: cfg, stopped: make(chan struct{})}
}

// Close stops the session loop without promoting.
func (s *Standby) Close() error {
	s.stopOnce.Do(func() { close(s.stopped) })
	s.mu.Lock()
	conn := s.conn
	s.conn = nil
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	return nil
}

// Run drives the replication session until Close, promotion, or a
// terminal role conflict. It returns nil after a promotion (manual or
// automatic) — the node is then the primary and the standby loop's job
// is done.
func (s *Standby) Run() error {
	bo := s.cfg.ReconnectBackoff
	var lostSince time.Time // zero while the primary is reachable
	for {
		select {
		case <-s.stopped:
			return nil
		default:
		}
		if s.autoPromote(lostSince) {
			return nil
		}
		conn, err := s.cfg.Dial(s.cfg.PrimaryAddr)
		if err != nil {
			if lostSince.IsZero() {
				lostSince = time.Now()
			}
			if !s.sleep(bo.Next(0)) {
				return nil
			}
			continue
		}
		contact, err := s.session(conn)
		conn.Close()
		select {
		case <-s.stopped:
			return nil
		default:
		}
		if errors.Is(err, ErrSuperseded) {
			return err
		}
		if contact {
			// The primary was alive this session: restart the loss
			// clock and the backoff schedule.
			lostSince = time.Now()
			bo = s.cfg.ReconnectBackoff
		} else if lostSince.IsZero() {
			lostSince = time.Now()
		}
		if !s.sleep(bo.Next(0)) {
			return nil
		}
	}
}

// session runs one connected stint: hello, then consume until the
// stream breaks. Reports whether the primary showed any sign of life.
func (s *Standby) session(conn net.Conn) (contact bool, err error) {
	s.mu.Lock()
	s.conn = conn
	hello := Msg{Type: MsgHello, Epoch: s.srv.Epoch(), Seq: s.srv.JournalWatermark()}
	if s.needFull {
		hello.Code = "full"
	}
	s.mu.Unlock()
	if err := s.write(conn, hello); err != nil {
		return false, err
	}
	defer func() {
		s.mu.Lock()
		if s.conn == conn {
			s.conn = nil
		}
		s.mu.Unlock()
	}()
	for {
		if s.cfg.FailoverTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.FailoverTimeout))
		}
		msg, err := ReadMsg(conn)
		if err != nil {
			return contact, err
		}
		contact = true
		switch msg.Type {
		case MsgHeartbeat:
			// Nothing to do: the read itself fed the failover timer.
		case MsgRecord:
			var rec journal.Record
			if uerr := json.Unmarshal(msg.Payload, &rec); uerr != nil {
				// A corrupt payload would poison the standby journal;
				// resync from scratch instead of applying it.
				s.requestResync(conn, CodeResync, fmt.Sprintf("undecodable record seq %d: %v", msg.Seq, uerr))
				return contact, fmt.Errorf("%w: record seq %d: %v", ErrStream, msg.Seq, uerr)
			}
			if aerr := s.srv.ApplyShipped(rec, msg.Payload); aerr != nil {
				if errors.Is(aerr, wire.ErrStaleEpoch) {
					// The sender's term is over; tell it so.
					s.write(conn, Msg{Type: MsgReject, Code: wire.CodeFenced, Epoch: s.srv.Epoch(),
						Text: aerr.Error()})
					return contact, aerr
				}
				// Divergence (apply failed) or a broken local journal:
				// ask for a full state session.
				s.requestResync(conn, CodeResync, aerr.Error())
				return contact, aerr
			}
			s.mu.Lock()
			if rec.Seq > s.appliedSeq {
				s.appliedSeq = rec.Seq
			}
			s.mu.Unlock()
			if err := s.write(conn, Msg{Type: MsgAck, Seq: rec.Seq}); err != nil {
				return contact, err
			}
		case MsgState:
			var st wire.PersistentState
			if uerr := json.Unmarshal(msg.Payload, &st); uerr != nil {
				return contact, fmt.Errorf("%w: state payload: %v", ErrStream, uerr)
			}
			st.Epoch = msg.Epoch
			if ierr := s.srv.InstallState(st); ierr != nil {
				if errors.Is(ierr, wire.ErrStaleEpoch) {
					s.write(conn, Msg{Type: MsgReject, Code: wire.CodeFenced, Epoch: s.srv.Epoch(),
						Text: ierr.Error()})
				}
				return contact, ierr
			}
			s.mu.Lock()
			s.needFull = false
			s.appliedSeq = st.LastSeq
			s.mu.Unlock()
			if err := s.write(conn, Msg{Type: MsgAck, Seq: st.LastSeq}); err != nil {
				return contact, err
			}
		case MsgReject:
			if msg.Code == wire.CodeFenced {
				// The peer says our epoch is ahead of its term: we are
				// the newer node and must not follow it.
				return contact, fmt.Errorf("%w: %s", ErrSuperseded, msg.Text)
			}
			return contact, fmt.Errorf("replica: session rejected (%s): %s", msg.Code, msg.Text)
		case MsgFence:
			// A newer primary found us. Fence and resync as a follower
			// of whoever we dial next time.
			if msg.Epoch > s.srv.Epoch() {
				s.srv.Fence(msg.Epoch)
			}
			s.mu.Lock()
			s.needFull = true
			s.mu.Unlock()
			return contact, fmt.Errorf("replica: fenced at epoch %d", msg.Epoch)
		}
	}
}

// requestResync marks the local state divergent and tells the primary,
// so the next hello opens a full-state session.
func (s *Standby) requestResync(conn net.Conn, code, text string) {
	s.mu.Lock()
	s.needFull = true
	s.mu.Unlock()
	s.write(conn, Msg{Type: MsgReject, Code: code, Text: text})
}

func (s *Standby) write(conn net.Conn, m Msg) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	err := WriteMsg(conn, m)
	conn.SetWriteDeadline(time.Time{})
	return err
}

// autoPromote fires the failover once the primary has been silent past
// the timeout. The jitter lives in the dial backoff that precedes each
// check, so two standbys (in a future multi-standby world) would not
// race the promotion deterministically.
func (s *Standby) autoPromote(lostSince time.Time) bool {
	if s.cfg.FailoverTimeout <= 0 || lostSince.IsZero() || time.Since(lostSince) < s.cfg.FailoverTimeout {
		return false
	}
	epoch, err := s.srv.Promote()
	if err != nil {
		// Fenced (a newer primary exists): stay a standby and keep
		// dialing — the fence already blocks split-brain writes.
		return false
	}
	s.markPromoted()
	go s.notifyFence(epoch)
	return true
}

// Promote performs a manual (operator-driven) failover: stop following,
// take over at a new epoch, and tell the old primary it is fenced.
func (s *Standby) Promote() (uint64, error) {
	epoch, err := s.srv.Promote()
	if err != nil {
		return 0, err
	}
	s.markPromoted()
	s.Close()
	go s.notifyFence(epoch)
	return epoch, nil
}

func (s *Standby) markPromoted() {
	s.mu.Lock()
	s.promoted = true
	s.mu.Unlock()
}

// notifyFence tells the old primary (best-effort, with backoff) that a
// newer term exists so it fences itself the moment it is reachable.
// Even if every attempt fails, the fence still lands the next time the
// ex-primary touches the stream: any hello or record it exchanges
// carries the lower epoch and is rejected.
func (s *Standby) notifyFence(epoch uint64) {
	var bo overload.Backoff
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 && !s.sleepDetached(bo.Next(0)) {
			return
		}
		conn, err := s.cfg.Dial(s.cfg.PrimaryAddr)
		if err != nil {
			continue
		}
		werr := s.write(conn, Msg{Type: MsgFence, Epoch: epoch})
		if werr == nil {
			conn.SetReadDeadline(time.Now().Add(s.cfg.WriteTimeout))
			_, rerr := ReadMsg(conn) // wait for the ack so the write flushed
			conn.Close()
			if rerr == nil {
				return
			}
			continue
		}
		conn.Close()
	}
}

// sleep waits d or until Close; reports false when closed.
func (s *Standby) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stopped:
		return false
	}
}

// sleepDetached is sleep for goroutines that may outlive Run (fence
// notification keeps retrying briefly even after the loop stopped —
// unless Close raced the promotion, in which case stopping is fine).
func (s *Standby) sleepDetached(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
	return true
}

// decorate fills the stream-level fields of a replication report.
func (s *Standby) decorate(rep *wire.ReplicationReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep.Connected = s.conn != nil
	rep.AckedSeq = s.appliedSeq
}

// RegisterMetrics exposes the standby's stream gauges on reg.
func (s *Standby) RegisterMetrics(reg *obs.Registry) {
	role := obs.L("role", "standby")
	reg.GaugeFunc("atmcac_repl_connected", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.conn != nil {
			return 1
		}
		return 0
	}, role)
	reg.Help("atmcac_repl_connected", "Whether a live replication stream is attached (by role).")
	reg.GaugeFunc("atmcac_repl_applied_seq", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.appliedSeq)
	}, role)
	reg.Help("atmcac_repl_applied_seq", "Highest journal sequence applied from the primary.")
}
