package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"atmcac/internal/traffic"
)

func TestPortOverrideValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     SwitchConfig
		wantErr bool
	}{
		{"valid override", SwitchConfig{
			Name:           "a",
			QueueCells:     map[Priority]float64{1: 32},
			PortQueueCells: map[PortID]map[Priority]float64{0: {1: 128}},
		}, false},
		{"override of unconfigured priority", SwitchConfig{
			Name:           "a",
			QueueCells:     map[Priority]float64{1: 32},
			PortQueueCells: map[PortID]map[Priority]float64{0: {2: 128}},
		}, true},
		{"zero override", SwitchConfig{
			Name:           "a",
			QueueCells:     map[Priority]float64{1: 32},
			PortQueueCells: map[PortID]map[Priority]float64{0: {1: 0}},
		}, true},
		{"nan override", SwitchConfig{
			Name:           "a",
			QueueCells:     map[Priority]float64{1: 32},
			PortQueueCells: map[PortID]map[Priority]float64{0: {1: math.NaN()}},
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSwitch(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewSwitch error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGuaranteedBoundAt(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{
		Name:           "a",
		QueueCells:     map[Priority]float64{1: 32, 2: 64},
		PortQueueCells: map[PortID]map[Priority]float64{7: {1: 256}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := sw.GuaranteedBoundAt(0, 1); !ok || d != 32 {
		t.Errorf("port 0 prio 1 = %g, %v; want base 32", d, ok)
	}
	if d, ok := sw.GuaranteedBoundAt(7, 1); !ok || d != 256 {
		t.Errorf("port 7 prio 1 = %g, %v; want override 256", d, ok)
	}
	// The override map does not cover priority 2: base applies.
	if d, ok := sw.GuaranteedBoundAt(7, 2); !ok || d != 64 {
		t.Errorf("port 7 prio 2 = %g, %v; want base 64", d, ok)
	}
	if _, ok := sw.GuaranteedBoundAt(0, 9); ok {
		t.Error("unconfigured priority reported")
	}
}

func TestNewSwitchCopiesOverrides(t *testing.T) {
	overrides := map[PortID]map[Priority]float64{0: {1: 128}}
	sw, err := NewSwitch(SwitchConfig{
		Name:           "a",
		QueueCells:     map[Priority]float64{1: 32},
		PortQueueCells: overrides,
	})
	if err != nil {
		t.Fatal(err)
	}
	overrides[0][1] = 1
	if d, _ := sw.GuaranteedBoundAt(0, 1); d != 128 {
		t.Fatalf("mutating caller's overrides changed the switch: %g", d)
	}
}

// TestPortOverrideChangesAdmission: the same traffic fits on the port with
// the larger FIFO and is rejected on the tight one; rejection errors carry
// the per-port limit.
func TestPortOverrideChangesAdmission(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{
		Name:           "a",
		QueueCells:     map[Priority]float64{1: 4},
		PortQueueCells: map[PortID]map[Priority]float64{1: {1: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	admit := func(out PortID, count int) (int, *RejectionError) {
		admitted := 0
		for i := 0; i < count; i++ {
			_, err := sw.Admit(HopRequest{
				Conn: ConnID(fmt.Sprintf("p%d-c%d", out, i)),
				Spec: traffic.CBR(0.005),
				In:   PortID(100 + i), Out: out, Priority: 1,
			})
			if err != nil {
				var rej *RejectionError
				if !errors.As(err, &rej) {
					t.Fatalf("unexpected error: %v", err)
				}
				return admitted, rej
			}
			admitted++
		}
		return admitted, nil
	}
	tightAdmitted, tightRej := admit(0, 32)
	if tightRej == nil {
		t.Fatal("tight port admitted everything")
	}
	if tightRej.Limit != 4 {
		t.Errorf("tight rejection limit = %g, want 4", tightRej.Limit)
	}
	looseAdmitted, looseRej := admit(1, 32)
	if looseRej != nil {
		t.Fatalf("loose port rejected after %d: %v", looseAdmitted, looseRej)
	}
	if looseAdmitted <= tightAdmitted {
		t.Errorf("loose port admitted %d, tight %d; want more on the larger FIFO",
			looseAdmitted, tightAdmitted)
	}
}

// TestPortOverrideFeedsCDV: a route through the overridden (larger) port
// accumulates more CDV downstream, visible in the end-to-end guarantee.
func TestPortOverrideFeedsCDV(t *testing.T) {
	n := NewNetwork(HardCDV{})
	if _, err := n.AddSwitch(SwitchConfig{
		Name:           "sw0",
		QueueCells:     map[Priority]float64{1: 32},
		PortQueueCells: map[PortID]map[Priority]float64{5: {1: 200}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSwitch(SwitchConfig{
		Name:       "sw1",
		QueueCells: map[Priority]float64{1: 32},
	}); err != nil {
		t.Fatal(err)
	}
	base, err := n.Setup(context.Background(), ConnRequest{
		ID: "via-base", Spec: traffic.CBR(0.01), Priority: 1,
		Route: Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 0, Out: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	override, err := n.Setup(context.Background(), ConnRequest{
		ID: "via-override", Spec: traffic.CBR(0.01), Priority: 1,
		Route: Route{{Switch: "sw0", In: 2, Out: 5}, {Switch: "sw1", In: 0, Out: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.EndToEndGuaranteed != 64 {
		t.Errorf("base guarantee = %g, want 64", base.EndToEndGuaranteed)
	}
	if override.EndToEndGuaranteed != 232 {
		t.Errorf("override guarantee = %g, want 200+32", override.EndToEndGuaranteed)
	}
	if override.PerHopGuaranteed[0] != 200 {
		t.Errorf("override hop 0 guarantee = %g, want 200", override.PerHopGuaranteed[0])
	}
}
