package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"atmcac/internal/traffic"
)

// randomConnSet is a quick-generable set of connection requests over a
// 3-switch line with random specs, entry ports and CDVs.
type randomConnSet struct {
	Specs []traffic.Spec
	CDVs  []float64
	Ins   []int
}

// Generate implements quick.Generator.
func (randomConnSet) Generate(r *rand.Rand, _ int) reflect.Value {
	k := 2 + r.Intn(5)
	set := randomConnSet{}
	for i := 0; i < k; i++ {
		pcr := 0.05 + 0.4*r.Float64()
		scr := pcr * (0.05 + 0.3*r.Float64()) / float64(k)
		set.Specs = append(set.Specs, traffic.VBR(pcr, scr, float64(1+r.Intn(10))))
		set.CDVs = append(set.CDVs, 64*r.Float64())
		set.Ins = append(set.Ins, 1+r.Intn(6))
	}
	return reflect.ValueOf(set)
}

// admitAll admits the set onto a fresh switch in the given order; it
// returns the switch and whether every connection was admitted.
func admitAll(t *testing.T, set randomConnSet, order []int, queue float64) (*Switch, bool) {
	t.Helper()
	sw, err := NewSwitch(SwitchConfig{Name: "sw", QueueCells: map[Priority]float64{1: queue}})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range order {
		_, err := sw.Admit(HopRequest{
			Conn: ConnID(fmt.Sprintf("c%d", i)),
			Spec: set.Specs[i],
			In:   PortID(set.Ins[i]), Out: 0, Priority: 1,
			CDV: set.CDVs[i],
		})
		if errors.Is(err, ErrRejected) {
			return sw, false
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return sw, true
}

// TestPropAdmissionOrderIndependent: with fixed per-switch bounds, the
// final computed bound of a fully-admitted set does not depend on the
// admission order — the property that justifies offline planning.
func TestPropAdmissionOrderIndependent(t *testing.T) {
	f := func(set randomConnSet, seed int64) bool {
		order := make([]int, len(set.Specs))
		for i := range order {
			order[i] = i
		}
		fwd, okFwd := admitAll(t, set, order, 1e6)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		shuffled, okShuf := admitAll(t, set, order, 1e6)
		if !okFwd || !okShuf {
			// With an effectively unlimited queue everything is admitted
			// unless the set is unstable; both orders must then agree on
			// infeasibility of some prefix, which a huge queue reduces to
			// the unstable case only — also order-independent.
			return okFwd == okShuf
		}
		d1, err1 := fwd.ComputedBound(0, 1)
		d2, err2 := shuffled.ComputedBound(0, 1)
		if err1 != nil || err2 != nil {
			return (err1 == nil) == (err2 == nil)
		}
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropAdmittedPrefixPassesAudit: whatever prefix the sequential
// admission accepts onto a tight queue is audit-clean.
func TestPropAdmittedPrefixPassesAudit(t *testing.T) {
	f := func(set randomConnSet) bool {
		n := NewNetwork(HardCDV{})
		if _, err := n.AddSwitch(SwitchConfig{Name: "sw", QueueCells: map[Priority]float64{1: 12}}); err != nil {
			t.Fatal(err)
		}
		for i := range set.Specs {
			_, err := n.Setup(context.Background(), ConnRequest{
				ID:        ConnID(fmt.Sprintf("c%d", i)),
				Spec:      set.Specs[i],
				Priority:  1,
				Route:     Route{{Switch: "sw", In: PortID(set.Ins[i]), Out: 0}},
				SourceCDV: set.CDVs[i],
			})
			if err != nil && !errors.Is(err, ErrRejected) {
				t.Fatal(err)
			}
		}
		violations, err := n.Audit()
		if err != nil {
			t.Fatal(err)
		}
		return len(violations) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropTeardownRestoresBounds: admit a base set, record the bound,
// admit and tear down an extra connection, and the bound returns exactly.
func TestPropTeardownRestoresBounds(t *testing.T) {
	f := func(set randomConnSet, extraSeed int64) bool {
		n := NewNetwork(HardCDV{})
		if _, err := n.AddSwitch(SwitchConfig{Name: "sw", QueueCells: map[Priority]float64{1: 1e6}}); err != nil {
			t.Fatal(err)
		}
		route := Route{{Switch: "sw", In: 1, Out: 0}}
		for i := range set.Specs {
			if _, err := n.Setup(context.Background(), ConnRequest{
				ID:        ConnID(fmt.Sprintf("c%d", i)),
				Spec:      set.Specs[i],
				Priority:  1,
				Route:     Route{{Switch: "sw", In: PortID(set.Ins[i]), Out: 0}},
				SourceCDV: set.CDVs[i],
			}); err != nil {
				return errors.Is(err, ErrRejected)
			}
		}
		before, errBefore := n.RouteBound(route, 1)
		rng := rand.New(rand.NewSource(extraSeed))
		extra := ConnRequest{
			ID:       "extra",
			Spec:     traffic.VBR(0.3, 0.01, float64(1+rng.Intn(8))),
			Priority: 1,
			Route:    Route{{Switch: "sw", In: 9, Out: 0}},
		}
		if _, err := n.Setup(context.Background(), extra); err != nil {
			return errors.Is(err, ErrRejected)
		}
		if err := n.Teardown("extra"); err != nil {
			t.Fatal(err)
		}
		after, errAfter := n.RouteBound(route, 1)
		if errBefore != nil || errAfter != nil {
			return (errBefore == nil) == (errAfter == nil)
		}
		// Aggregates are recomputed from a map whose iteration order varies,
		// so float summation order (and the last few ulps) can differ.
		return math.Abs(before-after) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropBoundMonotoneUnderAdmission: each successive admission can only
// raise the port's computed bound.
func TestPropBoundMonotoneUnderAdmission(t *testing.T) {
	f := func(set randomConnSet) bool {
		sw, err := NewSwitch(SwitchConfig{Name: "sw", QueueCells: map[Priority]float64{1: 1e6}})
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		for i := range set.Specs {
			_, err := sw.Admit(HopRequest{
				Conn: ConnID(fmt.Sprintf("c%d", i)),
				Spec: set.Specs[i],
				In:   PortID(set.Ins[i]), Out: 0, Priority: 1,
				CDV: set.CDVs[i],
			})
			if errors.Is(err, ErrRejected) {
				return true // unstable tail; earlier prefix was monotone
			}
			if err != nil {
				t.Fatal(err)
			}
			d, err := sw.ComputedBound(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if d < prev-1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
