package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"atmcac/internal/traffic"
)

func newTestSwitch(t *testing.T, queues map[Priority]float64) *Switch {
	t.Helper()
	sw, err := NewSwitch(SwitchConfig{Name: "sw", QueueCells: queues})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestNewSwitchValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     SwitchConfig
		wantErr bool
	}{
		{"valid", SwitchConfig{Name: "a", QueueCells: map[Priority]float64{1: 32}}, false},
		{"two priorities", SwitchConfig{Name: "a", QueueCells: map[Priority]float64{1: 32, 2: 128}}, false},
		{"no queues", SwitchConfig{Name: "a"}, true},
		{"priority zero", SwitchConfig{Name: "a", QueueCells: map[Priority]float64{0: 32}}, true},
		{"negative priority", SwitchConfig{Name: "a", QueueCells: map[Priority]float64{-1: 32}}, true},
		{"zero size", SwitchConfig{Name: "a", QueueCells: map[Priority]float64{1: 0}}, true},
		{"negative size", SwitchConfig{Name: "a", QueueCells: map[Priority]float64{1: -4}}, true},
		{"nan size", SwitchConfig{Name: "a", QueueCells: map[Priority]float64{1: math.NaN()}}, true},
		{"inf size", SwitchConfig{Name: "a", QueueCells: map[Priority]float64{1: math.Inf(1)}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSwitch(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewSwitch error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadConfig) {
				t.Errorf("error %v does not wrap ErrBadConfig", err)
			}
		})
	}
}

func TestNewSwitchCopiesConfig(t *testing.T) {
	queues := map[Priority]float64{1: 32}
	sw, err := NewSwitch(SwitchConfig{Name: "a", QueueCells: queues})
	if err != nil {
		t.Fatal(err)
	}
	queues[1] = 1
	if d, _ := sw.GuaranteedBound(1); d != 32 {
		t.Fatalf("mutating caller's map changed the switch: bound = %g", d)
	}
}

func TestGuaranteedBound(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 32, 2: 128})
	if d, ok := sw.GuaranteedBound(1); !ok || d != 32 {
		t.Errorf("GuaranteedBound(1) = %g, %v; want 32, true", d, ok)
	}
	if d, ok := sw.GuaranteedBound(2); !ok || d != 128 {
		t.Errorf("GuaranteedBound(2) = %g, %v; want 128, true", d, ok)
	}
	if _, ok := sw.GuaranteedBound(3); ok {
		t.Error("GuaranteedBound(3) reported an unconfigured priority")
	}
}

func TestAdmitBasic(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 32})
	res, err := sw.Admit(HopRequest{
		Conn: "c1", Spec: traffic.CBR(0.1), In: 0, Out: 1, Priority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Guaranteed != 32 {
		t.Errorf("Guaranteed = %g, want 32", res.Guaranteed)
	}
	d, ok := res.Bounds[1]
	if !ok {
		t.Fatal("Bounds missing the connection's priority")
	}
	// A single conforming CBR connection never queues behind itself.
	if d != 0 {
		t.Errorf("single CBR connection bound = %g, want 0", d)
	}
	if !sw.Has("c1") {
		t.Error("admitted connection not present")
	}
	if got := sw.ConnectionCount(); got != 1 {
		t.Errorf("ConnectionCount = %d, want 1", got)
	}
}

func TestCheckDoesNotCommit(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 32})
	if _, err := sw.Check(HopRequest{Conn: "c1", Spec: traffic.CBR(0.1), In: 0, Out: 1, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if sw.Has("c1") {
		t.Error("Check committed the connection")
	}
	if got := sw.ConnectionCount(); got != 0 {
		t.Errorf("ConnectionCount = %d, want 0", got)
	}
}

func TestAdmitDuplicate(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 32})
	req := HopRequest{Conn: "c1", Spec: traffic.CBR(0.1), In: 0, Out: 1, Priority: 1}
	if _, err := sw.Admit(req); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Admit(req); !errors.Is(err, ErrDuplicateConn) {
		t.Fatalf("second Admit error = %v, want ErrDuplicateConn", err)
	}
	if _, err := sw.Check(req); !errors.Is(err, ErrDuplicateConn) {
		t.Fatalf("Check of admitted conn error = %v, want ErrDuplicateConn", err)
	}
}

func TestRelease(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 32})
	req := HopRequest{Conn: "c1", Spec: traffic.CBR(0.1), In: 0, Out: 1, Priority: 1}
	if _, err := sw.Admit(req); err != nil {
		t.Fatal(err)
	}
	if err := sw.Release("c1"); err != nil {
		t.Fatal(err)
	}
	if sw.Has("c1") {
		t.Error("released connection still present")
	}
	if err := sw.Release("c1"); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("double Release error = %v, want ErrUnknownConn", err)
	}
	// The slot is reusable.
	if _, err := sw.Admit(req); err != nil {
		t.Fatalf("re-admission after release failed: %v", err)
	}
}

func TestValidateRequest(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 32})
	tests := []struct {
		name string
		req  HopRequest
		want error
	}{
		{"empty conn", HopRequest{Spec: traffic.CBR(0.1), In: 0, Out: 1, Priority: 1}, ErrBadConfig},
		{"unknown priority", HopRequest{Conn: "c", Spec: traffic.CBR(0.1), In: 0, Out: 1, Priority: 9}, ErrBadConfig},
		{"invalid spec", HopRequest{Conn: "c", Spec: traffic.VBR(0, 0, 0), In: 0, Out: 1, Priority: 1}, traffic.ErrInvalidSpec},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := sw.Admit(tt.req); !errors.Is(err, tt.want) {
				t.Errorf("Admit error = %v, want %v", err, tt.want)
			}
		})
	}
}

// TestAdmitUntilRejection fills one output port with bursty connections on
// distinct incoming links until the FIFO budget rejects one, and verifies
// the rejection leaves the switch state untouched.
func TestAdmitUntilRejection(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 8})
	admitted := 0
	var rejection *RejectionError
	for i := 0; i < 64; i++ {
		_, err := sw.Admit(HopRequest{
			Conn: ConnID(fmt.Sprintf("c%d", i)),
			Spec: traffic.CBR(0.01),
			In:   PortID(i + 1), Out: 0, Priority: 1,
		})
		if err != nil {
			if !errors.As(err, &rejection) {
				t.Fatalf("unexpected error type: %v", err)
			}
			break
		}
		admitted++
	}
	if rejection == nil {
		t.Fatal("64 simultaneous bursts on an 8-cell queue were all admitted")
	}
	// Simultaneous unit-rate first cells from k distinct links give a bound
	// of about k-1 cell times; a budget of 8 admits 9.
	if admitted != 9 {
		t.Errorf("admitted %d connections, want 9", admitted)
	}
	if !errors.Is(rejection, ErrRejected) {
		t.Error("RejectionError does not wrap ErrRejected")
	}
	if rejection.Switch != "sw" || rejection.Priority != 1 {
		t.Errorf("rejection = %+v, want switch sw priority 1", rejection)
	}
	if got := sw.ConnectionCount(); got != admitted {
		t.Errorf("rejection mutated state: count %d, want %d", got, admitted)
	}
	// The computed bound of the committed set stays within the budget.
	d, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d > 8+1e-9 {
		t.Errorf("committed bound %g exceeds budget 8", d)
	}
}

// TestFilteringEffectOfSharedLink: the same connections arriving via one
// shared incoming link are pre-smoothed by that link and produce a zero
// bound, while the same set on distinct links bursts simultaneously. This is
// the "filtering effect" the paper exploits for tighter bounds.
func TestFilteringEffectOfSharedLink(t *testing.T) {
	const k = 10
	shared := newTestSwitch(t, map[Priority]float64{1: 32})
	distinct := newTestSwitch(t, map[Priority]float64{1: 32})
	for i := 0; i < k; i++ {
		id := ConnID(fmt.Sprintf("c%d", i))
		if _, err := shared.Admit(HopRequest{Conn: id, Spec: traffic.CBR(0.05), In: 1, Out: 0, Priority: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := distinct.Admit(HopRequest{Conn: id, Spec: traffic.CBR(0.05), In: PortID(i + 1), Out: 0, Priority: 1}); err != nil {
			t.Fatal(err)
		}
	}
	dShared, err := shared.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dDistinct, err := distinct.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dShared != 0 {
		t.Errorf("shared-link bound = %g, want 0 (link pre-filters the aggregate)", dShared)
	}
	if math.Abs(dDistinct-(k-1)) > 1e-9 {
		t.Errorf("distinct-link bound = %g, want %d (simultaneous unit-rate cells)", dDistinct, k-1)
	}
}

func TestAdmitRejectsUnstable(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 1e6})
	if _, err := sw.Admit(HopRequest{Conn: "a", Spec: traffic.CBR(0.6), In: 1, Out: 0, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := sw.Admit(HopRequest{Conn: "b", Spec: traffic.CBR(0.6), In: 2, Out: 0, Priority: 1})
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("error = %v, want RejectionError", err)
	}
	if !math.IsInf(rej.Bound, 1) {
		t.Errorf("unstable rejection bound = %g, want +Inf", rej.Bound)
	}
}

// TestLowerPriorityProtection: a new high-priority connection that would
// push an existing lower-priority queue past its budget is rejected (Steps
// 5-6 of Section 4.3).
func TestLowerPriorityProtection(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 1000, 2: 25})
	// Lower-priority load close to its own budget.
	for i := 0; i < 20; i++ {
		if _, err := sw.Admit(HopRequest{
			Conn: ConnID(fmt.Sprintf("low%d", i)),
			Spec: traffic.CBR(0.02),
			In:   PortID(i + 1), Out: 0, Priority: 2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	dLow, err := sw.ComputedBound(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dLow > 25 {
		t.Fatalf("setup broken: low-priority bound %g already over budget", dLow)
	}
	// A heavy high-priority burst steals service from priority 2; its own
	// generous budget passes but priority 2's does not.
	_, err = sw.Admit(HopRequest{
		Conn: "high", Spec: traffic.VBR(1, 0.4, 40), In: 30, Out: 0, Priority: 1,
	})
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("error = %v, want RejectionError protecting the lower priority", err)
	}
	if rej.Priority != 2 {
		t.Errorf("rejection at priority %d, want 2", rej.Priority)
	}
	if sw.Has("high") {
		t.Error("rejected connection was committed")
	}
}

// TestHigherPriorityUnaffected: admitting a low-priority connection does not
// evaluate (and cannot reject on) higher-priority queues.
func TestHigherPriorityUnaffected(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 4, 2: 1000})
	// Fill priority 1 to its limit.
	for i := 0; i < 5; i++ {
		if _, err := sw.Admit(HopRequest{
			Conn: ConnID(fmt.Sprintf("hi%d", i)),
			Spec: traffic.CBR(0.01),
			In:   PortID(i + 1), Out: 0, Priority: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A low-priority connection must still be admissible; its own bound
	// accounts for the priority-1 interference.
	res, err := sw.Admit(HopRequest{
		Conn: "low", Spec: traffic.CBR(0.01), In: 10, Out: 0, Priority: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Bounds[1]; ok {
		t.Error("low-priority admission reported a bound for the higher priority")
	}
	if res.Bounds[2] <= 0 {
		t.Errorf("low-priority bound = %g, want > 0 (delayed behind priority 1)", res.Bounds[2])
	}
}

func TestCDVWorsensBound(t *testing.T) {
	mk := func(cdv float64) float64 {
		sw := newTestSwitch(t, map[Priority]float64{1: 1000})
		for i := 0; i < 8; i++ {
			if _, err := sw.Admit(HopRequest{
				Conn: ConnID(fmt.Sprintf("c%d", i)),
				Spec: traffic.VBR(0.5, 0.05, 10),
				In:   PortID(i + 1), Out: 0, Priority: 1,
				CDV: cdv,
			}); err != nil {
				t.Fatal(err)
			}
		}
		d, err := sw.ComputedBound(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d0, d64 := mk(0), mk(64)
	if d64 <= d0 {
		t.Errorf("bound with CDV=64 (%g) not larger than with CDV=0 (%g)", d64, d0)
	}
}

func TestComputedBoundEmptyPort(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 32})
	d, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("bound of empty port = %g, want 0", d)
	}
	if _, err := sw.ComputedBound(0, 9); !errors.Is(err, ErrBadConfig) {
		t.Errorf("ComputedBound with unknown priority error = %v, want ErrBadConfig", err)
	}
}

func TestMaxBacklogWithinBudget(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 8})
	for i := 0; i < 9; i++ {
		if _, err := sw.Admit(HopRequest{
			Conn: ConnID(fmt.Sprintf("c%d", i)),
			Spec: traffic.CBR(0.01),
			In:   PortID(i + 1), Out: 0, Priority: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	q, err := sw.MaxBacklog(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q > d+1e-9 {
		t.Errorf("backlog %g exceeds delay bound %g", q, d)
	}
	if q > 8+1e-9 {
		t.Errorf("backlog %g exceeds the 8-cell queue", q)
	}
	if _, err := sw.MaxBacklog(0, 9); !errors.Is(err, ErrBadConfig) {
		t.Errorf("MaxBacklog with unknown priority error = %v, want ErrBadConfig", err)
	}
}

func TestOutPorts(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 32})
	if got := sw.OutPorts(); len(got) != 0 {
		t.Fatalf("OutPorts of empty switch = %v", got)
	}
	for i, out := range []PortID{3, 1, 3} {
		if _, err := sw.Admit(HopRequest{
			Conn: ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.01),
			In: 0, Out: out, Priority: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	got := sw.OutPorts()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("OutPorts = %v, want [1 3]", got)
	}
}

func TestInstallSkipsCheck(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 1})
	// 8 simultaneous bursts would fail Admit on a 1-cell queue but Install
	// accepts them; the violation surfaces in the computed bound.
	for i := 0; i < 8; i++ {
		if err := sw.Install(HopRequest{
			Conn: ConnID(fmt.Sprintf("c%d", i)),
			Spec: traffic.CBR(0.01),
			In:   PortID(i + 1), Out: 0, Priority: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 1 {
		t.Errorf("bound = %g, want > 1 (installed set over budget)", d)
	}
	if err := sw.Install(HopRequest{Conn: "c0", Spec: traffic.CBR(0.01), In: 1, Out: 0, Priority: 1}); !errors.Is(err, ErrDuplicateConn) {
		t.Errorf("duplicate Install error = %v, want ErrDuplicateConn", err)
	}
}
