package core

import (
	"context"
	"errors"
)

// Stable machine-readable error codes. They name the admission-plane error
// taxonomy: wire protocol responses carry them in the code= field, the
// metrics layer labels rejection counters with them, and clients branch on
// them instead of parsing free-text messages. Codes are append-only — a
// published code never changes meaning.
const (
	// CodeQueueUnstable: the hop's queueing point would become unstable
	// (Section 4.3; the computed bound diverges).
	CodeQueueUnstable = "queue-unstable"
	// CodeQueueBudget: the hop's worst-case queueing delay D'(j,p) would
	// exceed the FIFO budget D(j,p).
	CodeQueueBudget = "queue-budget"
	// CodeDelayBound: the sum of per-hop guarantees exceeds the requested
	// end-to-end delay bound — rejected before any hop is checked.
	CodeDelayBound = "delay-bound"
	// CodeNoPriority: no priority level's end-to-end guarantee meets the
	// requested budget (AssignPriority).
	CodeNoPriority = "no-priority"
	// CodeRejected: a CAC rejection with no finer classification.
	CodeRejected = "rejected"
	// CodeLinkDown: the route traverses a failed inter-switch link.
	CodeLinkDown = "link-down"
	// CodeDuplicate: the connection ID is already admitted or in flight.
	CodeDuplicate = "duplicate-conn"
	// CodeUnknownConn: the connection is not carried by the network.
	CodeUnknownConn = "unknown-conn"
	// CodeUnknownSwitch: the route names a switch the network lacks.
	CodeUnknownSwitch = "unknown-switch"
	// CodeBadConfig: invalid request or configuration.
	CodeBadConfig = "bad-config"
	// CodeDeadline: the operation's context deadline expired.
	CodeDeadline = "deadline-exceeded"
	// CodeCanceled: the operation's context was canceled.
	CodeCanceled = "canceled"
	// CodeInternal: an error outside the published taxonomy.
	CodeInternal = "internal"
)

// ErrorCode maps an admission-plane error chain onto its stable code; nil
// maps to the empty string. RejectionError carries its own Kind so the four
// rejection flavors stay distinguishable through wrapping.
func ErrorCode(err error) string {
	if err == nil {
		return ""
	}
	var rej *RejectionError
	if errors.As(err, &rej) {
		if rej.Kind != "" {
			return rej.Kind
		}
		return CodeRejected
	}
	switch {
	case errors.Is(err, ErrRejected):
		return CodeRejected
	case errors.Is(err, ErrLinkDown):
		return CodeLinkDown
	case errors.Is(err, ErrDuplicateConn):
		return CodeDuplicate
	case errors.Is(err, ErrUnknownConn):
		return CodeUnknownConn
	case errors.Is(err, ErrUnknownSwitch):
		return CodeUnknownSwitch
	case errors.Is(err, ErrBadConfig):
		return CodeBadConfig
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	}
	return CodeInternal
}
