package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"atmcac/internal/traffic"
)

func TestPrepareCommitAdmits(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	req := ConnRequest{ID: "p1", Spec: traffic.CBR(0.1), Priority: 1, Route: route}

	adm, err := n.PrepareSetup(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if adm.EndToEndGuaranteed != 64 {
		t.Errorf("EndToEndGuaranteed = %g, want 64", adm.EndToEndGuaranteed)
	}
	// A prepared hold is not an admitted connection.
	if _, ok := n.AdmittedRequest("p1"); ok {
		t.Fatal("prepared hold visible as admitted connection")
	}
	// But it holds the ID: a competing setup with the same ID must fail.
	if _, err := n.Setup(context.Background(), req); !errors.Is(err, ErrDuplicateConn) {
		t.Fatalf("concurrent setup of prepared ID = %v, want ErrDuplicateConn", err)
	}

	if err := n.CommitPrepared(req); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.AdmittedRequest("p1"); !ok {
		t.Fatal("committed connection not admitted")
	}
	if err := n.Teardown("p1"); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareAbortLeavesNoResidue(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	req := ConnRequest{ID: "p2", Spec: traffic.CBR(0.1), Priority: 1, Route: route}

	if _, err := n.PrepareSetup(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if err := n.AbortPrepared(req); err != nil {
		t.Fatal(err)
	}
	// The ID is free and all hop capacity is back: the same request admits.
	if _, err := n.Setup(context.Background(), req); err != nil {
		t.Fatalf("setup after abort: %v", err)
	}
	if v, err := n.Audit(); err != nil || len(v) != 0 {
		t.Fatalf("audit after abort+setup: %v %v", v, err)
	}
}

// A prepared hold consumes real hop capacity: with the queue budget held
// by prepared-but-uncommitted streams, a competing connection must be
// rejected until the holds are aborted.
func TestPrepareHoldsCapacity(t *testing.T) {
	n := NewNetwork(HardCDV{})
	if _, err := n.AddSwitch(SwitchConfig{Name: "sw0", QueueCells: map[Priority]float64{1: 3}}); err != nil {
		t.Fatal(err)
	}
	var holds []ConnRequest
	for i := 0; i < 4; i++ {
		req := ConnRequest{
			ID: ConnID(fmt.Sprintf("hold%d", i)), Spec: traffic.CBR(0.01), Priority: 1,
			Route: Route{{Switch: "sw0", In: PortID(10 + i), Out: 0}},
		}
		if _, err := n.PrepareSetup(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		holds = append(holds, req)
	}

	rival := ConnRequest{
		ID: "rival", Spec: traffic.CBR(0.01), Priority: 1,
		Route: Route{{Switch: "sw0", In: 1, Out: 0}},
	}
	if _, err := n.Setup(context.Background(), rival); !errors.Is(err, ErrRejected) {
		t.Fatalf("setup against a full hold = %v, want ErrRejected", err)
	}
	for _, h := range holds {
		if err := n.AbortPrepared(h); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Setup(context.Background(), rival); err != nil {
		t.Fatalf("setup after holds released: %v", err)
	}
}

// A link that fails while the hold is pending must refuse the commit and
// release the hold completely.
func TestCommitPreparedRefusedByFailedLink(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	req := ConnRequest{ID: "p3", Spec: traffic.CBR(0.1), Priority: 1, Route: route}
	if _, err := n.PrepareSetup(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := n.FailLink("sw0", "sw1"); err != nil {
		t.Fatal(err)
	}
	if err := n.CommitPrepared(req); err == nil {
		t.Fatal("commit over a failed link succeeded")
	}
	if _, ok := n.AdmittedRequest("p3"); ok {
		t.Fatal("refused commit left an admitted connection")
	}
	if err := n.RestoreLink("sw0", "sw1"); err != nil {
		t.Fatal(err)
	}
	// The refused commit released everything: the ID and capacity are free.
	if _, err := n.Setup(context.Background(), req); err != nil {
		t.Fatalf("setup after refused commit: %v", err)
	}
}
