package core

import (
	"context"
	"fmt"
)

// Two-phase admission hooks.
//
// A multi-hop setup that spans control-plane shards cannot use Setup
// directly: the coordinator must be able to hold a route's reservations
// on one shard while it negotiates with the others, and later turn the
// hold into an admission or release it without ever exposing a
// half-committed connection. PrepareSetup / CommitPrepared /
// AbortPrepared split setupOnce at exactly the reserveID→commitID seam
// the single-shard path already uses, so a prepared hold has the same
// capacity footprint as an in-flight setup: the hop reservations are
// real (they consume bandwidth and block competing admissions) but the
// ID stays pending — invisible to Connections, AdmittedRequest, and
// Teardown until committed.

// PrepareSetup runs phase 1 of a two-phase admission: it validates the
// request, claims its ID, and reserves every hop of the route through
// the normal CAC check, but stops short of committing the connection.
// On success the ID is held pending and the caller owns the hold; it
// MUST resolve it with CommitPrepared or AbortPrepared (an orphaned
// hold strands bandwidth until an expiry reaper aborts it). On error
// nothing is held.
func (n *Network) PrepareSetup(ctx context.Context, req ConnRequest) (*Admission, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: prepare of %q abandoned: %w", req.ID, err)
	}
	if err := n.routeLinkDown(req.Route); err != nil {
		return nil, fmt.Errorf("%w (prepare of %q refused)", err, req.ID)
	}
	if err := n.reserveID(req.ID); err != nil {
		return nil, err
	}
	adm, err := n.setupHops(ctx, req, n.getTracer())
	if err != nil {
		n.abandonID(req.ID)
		return nil, err
	}
	return adm, nil
}

// CommitPrepared runs phase 2: it promotes a hold created by
// PrepareSetup(req) into an admitted connection. Like the single-shard
// commit it re-validates link state inside the critical section; if a
// route link failed while the hold was pending the commit is refused
// and the hold is fully released (hop reservations returned, ID freed),
// so a failed commit never leaves residue.
func (n *Network) CommitPrepared(req ConnRequest) error {
	if err := n.commitID(req); err != nil {
		_ = n.releaseRoute(req.ID, req.Route)
		return err
	}
	return nil
}

// AbortPrepared releases a hold created by PrepareSetup(req): every hop
// reservation is returned and the ID becomes free again. It is the
// expiry hook the orphan reaper uses, and it is safe to call with the
// same req at most once per successful PrepareSetup.
func (n *Network) AbortPrepared(req ConnRequest) error {
	err := n.releaseRoute(req.ID, req.Route)
	n.abandonID(req.ID)
	return err
}
