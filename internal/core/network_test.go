package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"atmcac/internal/traffic"
)

func TestHardCDVAccumulate(t *testing.T) {
	p := HardCDV{}
	if got := p.Accumulate(nil); got != 0 {
		t.Errorf("Accumulate(nil) = %g, want 0", got)
	}
	if got := p.Accumulate([]float64{32, 32, 32}); got != 96 {
		t.Errorf("Accumulate = %g, want 96", got)
	}
	if p.Name() != "hard" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestSoftCDVAccumulate(t *testing.T) {
	p := SoftCDV{}
	if got := p.Accumulate(nil); got != 0 {
		t.Errorf("Accumulate(nil) = %g, want 0", got)
	}
	if got := p.Accumulate([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Accumulate([3 4]) = %g, want 5", got)
	}
	// Soft accumulation is never larger than hard.
	bounds := []float64{32, 32, 32, 32}
	if (SoftCDV{}).Accumulate(bounds) >= (HardCDV{}).Accumulate(bounds) {
		t.Error("soft CDV not smaller than hard CDV on a multi-hop route")
	}
	if p.Name() != "soft" {
		t.Errorf("Name = %q", p.Name())
	}
}

// twoHopNetwork builds sw0 -> sw1 with 32-cell highest-priority queues.
func twoHopNetwork(t *testing.T, policy CDVPolicy) (*Network, Route) {
	t.Helper()
	n := NewNetwork(policy)
	for i := 0; i < 2; i++ {
		if _, err := n.AddSwitch(SwitchConfig{
			Name:       fmt.Sprintf("sw%d", i),
			QueueCells: map[Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
	}
	route := Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	return n, route
}

func TestNewNetworkDefaultsToHard(t *testing.T) {
	n := NewNetwork(nil)
	if n.Policy().Name() != "hard" {
		t.Errorf("default policy = %q, want hard", n.Policy().Name())
	}
}

func TestAddSwitchDuplicate(t *testing.T) {
	n := NewNetwork(HardCDV{})
	cfg := SwitchConfig{Name: "a", QueueCells: map[Priority]float64{1: 32}}
	if _, err := n.AddSwitch(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSwitch(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("duplicate AddSwitch error = %v, want ErrBadConfig", err)
	}
	if _, err := n.AddSwitch(SwitchConfig{Name: "bad"}); err == nil {
		t.Fatal("AddSwitch with invalid config succeeded")
	}
}

func TestSwitchLookup(t *testing.T) {
	n, _ := twoHopNetwork(t, HardCDV{})
	if _, ok := n.Switch("sw0"); !ok {
		t.Error("Switch(sw0) not found")
	}
	if _, ok := n.Switch("nope"); ok {
		t.Error("Switch(nope) found")
	}
	names := n.SwitchNames()
	if len(names) != 2 || names[0] != "sw0" || names[1] != "sw1" {
		t.Errorf("SwitchNames = %v", names)
	}
}

func TestSetupTwoHops(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	adm, err := n.Setup(context.Background(), ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adm.EndToEndGuaranteed != 64 {
		t.Errorf("EndToEndGuaranteed = %g, want 64", adm.EndToEndGuaranteed)
	}
	if len(adm.PerHopGuaranteed) != 2 || adm.PerHopGuaranteed[0] != 32 {
		t.Errorf("PerHopGuaranteed = %v", adm.PerHopGuaranteed)
	}
	if len(adm.PerHopComputed) != 2 {
		t.Fatalf("PerHopComputed = %v", adm.PerHopComputed)
	}
	var sum float64
	for _, d := range adm.PerHopComputed {
		sum += d
	}
	if math.Abs(sum-adm.EndToEndComputed) > 1e-12 {
		t.Errorf("EndToEndComputed = %g, want sum of per-hop %g", adm.EndToEndComputed, sum)
	}
	for _, name := range []string{"sw0", "sw1"} {
		sw, _ := n.Switch(name)
		if !sw.Has("c1") {
			t.Errorf("switch %s does not carry c1", name)
		}
	}
	ids := n.Connections()
	if len(ids) != 1 || ids[0] != "c1" {
		t.Errorf("Connections = %v", ids)
	}
}

func TestSetupValidation(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	tests := []struct {
		name string
		req  ConnRequest
		want error
	}{
		{"empty id", ConnRequest{Spec: traffic.CBR(0.1), Priority: 1, Route: route}, ErrBadConfig},
		{"bad spec", ConnRequest{ID: "x", Spec: traffic.VBR(0, 0, 0), Priority: 1, Route: route}, traffic.ErrInvalidSpec},
		{"empty route", ConnRequest{ID: "x", Spec: traffic.CBR(0.1), Priority: 1}, ErrBadConfig},
		{"negative delay", ConnRequest{ID: "x", Spec: traffic.CBR(0.1), Priority: 1, Route: route, DelayBound: -1}, ErrBadConfig},
		{"unknown switch", ConnRequest{ID: "x", Spec: traffic.CBR(0.1), Priority: 1,
			Route: Route{{Switch: "nope", In: 1, Out: 0}}}, ErrUnknownSwitch},
		{"unknown priority", ConnRequest{ID: "x", Spec: traffic.CBR(0.1), Priority: 7, Route: route}, ErrBadConfig},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := n.Setup(context.Background(), tt.req); !errors.Is(err, tt.want) {
				t.Errorf("Setup error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestSetupDuplicate(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	req := ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route}
	if _, err := n.Setup(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Setup(context.Background(), req); !errors.Is(err, ErrDuplicateConn) {
		t.Fatalf("duplicate Setup error = %v, want ErrDuplicateConn", err)
	}
}

func TestSetupEndToEndBudgetCheck(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	// Two 32-cell hops guarantee 64; a request for 50 must be refused
	// before touching any switch.
	_, err := n.Setup(context.Background(), ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route, DelayBound: 50,
	})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("Setup error = %v, want ErrRejected", err)
	}
	sw, _ := n.Switch("sw0")
	if sw.ConnectionCount() != 0 {
		t.Error("rejected setup left state at sw0")
	}
	// A request for exactly 64 passes.
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "c2", Spec: traffic.CBR(0.1), Priority: 1, Route: route, DelayBound: 64,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSetupRollbackOnMidRouteRejection: sw1 is pre-loaded near its limit so
// the second hop rejects; the first hop's commitment must be rolled back.
func TestSetupRollbackOnMidRouteRejection(t *testing.T) {
	n := NewNetwork(HardCDV{})
	if _, err := n.AddSwitch(SwitchConfig{Name: "sw0", QueueCells: map[Priority]float64{1: 1000}}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSwitch(SwitchConfig{Name: "sw1", QueueCells: map[Priority]float64{1: 3}}); err != nil {
		t.Fatal(err)
	}
	sw1, _ := n.Switch("sw1")
	// Pre-load sw1 with simultaneous bursts on distinct links up to its
	// 3-cell budget.
	for i := 0; i < 4; i++ {
		if _, err := sw1.Admit(HopRequest{
			Conn: ConnID(fmt.Sprintf("bg%d", i)), Spec: traffic.CBR(0.01),
			In: PortID(10 + i), Out: 0, Priority: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	route := Route{{Switch: "sw0", In: 1, Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	_, err := n.Setup(context.Background(), ConnRequest{ID: "c1", Spec: traffic.CBR(0.01), Priority: 1, Route: route})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("Setup error = %v, want ErrRejected", err)
	}
	sw0, _ := n.Switch("sw0")
	if sw0.Has("c1") {
		t.Error("hop 0 commitment not rolled back after mid-route rejection")
	}
	if len(n.Connections()) != 0 {
		t.Error("rejected connection recorded at network level")
	}
}

func TestTeardown(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	if _, err := n.Setup(context.Background(), ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route}); err != nil {
		t.Fatal(err)
	}
	if err := n.Teardown("c1"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sw0", "sw1"} {
		sw, _ := n.Switch(name)
		if sw.Has("c1") {
			t.Errorf("teardown left c1 at %s", name)
		}
	}
	if err := n.Teardown("c1"); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("double Teardown error = %v, want ErrUnknownConn", err)
	}
}

// TestCDVAccumulationAcrossHops: hop h of a hard-CDV network sees
// CDV = 32*h, so the per-hop computed bound is non-decreasing along a route
// carrying identical cross traffic.
func TestCDVAccumulationAcrossHops(t *testing.T) {
	n := NewNetwork(HardCDV{})
	const hops = 4
	route := make(Route, hops)
	for i := 0; i < hops; i++ {
		name := fmt.Sprintf("sw%d", i)
		if _, err := n.AddSwitch(SwitchConfig{Name: name, QueueCells: map[Priority]float64{1: 1000}}); err != nil {
			t.Fatal(err)
		}
		route[i] = Hop{Switch: name, In: 1, Out: 0}
	}
	// A bursty VBR connection plus a fixed competitor at every hop.
	for i := 0; i < hops; i++ {
		sw, _ := n.Switch(fmt.Sprintf("sw%d", i))
		if _, err := sw.Admit(HopRequest{
			Conn: ConnID(fmt.Sprintf("cross%d", i)), Spec: traffic.VBR(0.8, 0.2, 16),
			In: 2, Out: 0, Priority: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	adm, err := n.Setup(context.Background(), ConnRequest{ID: "c1", Spec: traffic.VBR(0.5, 0.1, 8), Priority: 1, Route: route})
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h < hops; h++ {
		if adm.PerHopComputed[h] < adm.PerHopComputed[h-1]-1e-9 {
			t.Errorf("per-hop bounds not non-decreasing along the route: %v", adm.PerHopComputed)
		}
	}
	if adm.PerHopComputed[hops-1] <= adm.PerHopComputed[0] {
		t.Errorf("accumulated CDV had no effect: %v", adm.PerHopComputed)
	}
}

// TestSoftCDVAdmitsMoreThanHard: identical networks, the soft policy
// produces smaller clumping and hence smaller bounds.
func TestSoftCDVAdmitsMoreThanHard(t *testing.T) {
	bound := func(policy CDVPolicy) float64 {
		n := NewNetwork(policy)
		const hops = 6
		route := make(Route, hops)
		for i := 0; i < hops; i++ {
			name := fmt.Sprintf("sw%d", i)
			if _, err := n.AddSwitch(SwitchConfig{Name: name, QueueCells: map[Priority]float64{1: 64}}); err != nil {
				t.Fatal(err)
			}
			route[i] = Hop{Switch: name, In: 1, Out: 0}
		}
		for c := 0; c < 6; c++ {
			if _, err := n.Setup(context.Background(), ConnRequest{
				ID: ConnID(fmt.Sprintf("c%d", c)), Spec: traffic.CBR(0.01),
				Priority: 1,
				Route:    routeWithIn(route, PortID(c+1)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		d, err := n.RouteBound(route, 1)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	hard, soft := bound(HardCDV{}), bound(SoftCDV{})
	if soft >= hard {
		t.Errorf("soft route bound %g not smaller than hard %g", soft, hard)
	}
}

// routeWithIn returns a copy of route with every In port replaced, so that
// parallel connections enter each switch on distinct links.
func routeWithIn(route Route, in PortID) Route {
	out := make(Route, len(route))
	copy(out, route)
	for i := range out {
		out[i].In = in
	}
	return out
}

func TestInstallAndAuditCleanSet(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	for i := 0; i < 4; i++ {
		if err := n.Install(ConnRequest{
			ID: ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.05), Priority: 1,
			Route: routeWithIn(route, PortID(i+1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("Audit of a feasible set reported %v", violations)
	}
}

func TestInstallAndAuditOverload(t *testing.T) {
	n := NewNetwork(HardCDV{})
	if _, err := n.AddSwitch(SwitchConfig{Name: "sw0", QueueCells: map[Priority]float64{1: 2}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := n.Install(ConnRequest{
			ID: ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.05), Priority: 1,
			Route: Route{{Switch: "sw0", In: PortID(i + 1), Out: 0}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 {
		t.Fatalf("Audit = %v, want exactly one violation", violations)
	}
	v := violations[0]
	if v.Switch != "sw0" || v.Priority != 1 || v.Limit != 2 || v.Bound <= 2 {
		t.Errorf("violation = %+v", v)
	}
	if v.String() == "" {
		t.Error("Violation.String empty")
	}
}

func TestAuditReportsUnstable(t *testing.T) {
	n := NewNetwork(HardCDV{})
	if _, err := n.AddSwitch(SwitchConfig{Name: "sw0", QueueCells: map[Priority]float64{1: 32}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := n.Install(ConnRequest{
			ID: ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.5), Priority: 1,
			Route: Route{{Switch: "sw0", In: PortID(i + 1), Out: 0}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !math.IsInf(violations[0].Bound, 1) {
		t.Fatalf("Audit = %v, want one unstable (+Inf) violation", violations)
	}
}

// TestSetupAgreesWithInstallAudit: any set admitted sequentially by Setup
// passes Audit — the fixed per-switch bounds make admission order
// irrelevant, which is what the offline planning path relies on.
func TestSetupAgreesWithInstallAudit(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	admitted := 0
	for i := 0; i < 40; i++ {
		_, err := n.Setup(context.Background(), ConnRequest{
			ID: ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.VBR(0.2, 0.02, 4), Priority: 1,
			Route: routeWithIn(route, PortID(i+1)),
		})
		if errors.Is(err, ErrRejected) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		admitted++
	}
	if admitted == 0 || admitted == 40 {
		t.Fatalf("admitted %d connections; scenario does not exercise the limit", admitted)
	}
	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("sequentially admitted set fails Audit: %v", violations)
	}
}

func TestRouteBound(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	if _, err := n.Setup(context.Background(), ConnRequest{ID: "c1", Spec: traffic.VBR(0.5, 0.05, 8), Priority: 1, Route: route}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Setup(context.Background(), ConnRequest{ID: "c2", Spec: traffic.VBR(0.5, 0.05, 8), Priority: 1,
		Route: routeWithIn(route, 2)}); err != nil {
		t.Fatal(err)
	}
	d, err := n.RouteBound(route, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("RouteBound = %g, want > 0", d)
	}
	if _, err := n.RouteBound(Route{{Switch: "nope"}}, 1); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("RouteBound error = %v, want ErrUnknownSwitch", err)
	}
}

// TestConcurrentSetupTeardown exercises the engine under parallel setup and
// teardown of disjoint connections.
func TestConcurrentSetupTeardown(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				id := ConnID(fmt.Sprintf("g%d-k%d", g, k))
				_, err := n.Setup(context.Background(), ConnRequest{
					ID: id, Spec: traffic.CBR(0.001), Priority: 1,
					Route: routeWithIn(route, PortID(g+1)),
				})
				if err != nil {
					errs <- err
					return
				}
				if err := n.Teardown(id); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(n.Connections()); got != 0 {
		t.Errorf("connections remaining after teardown: %d", got)
	}
}

func TestAssignPriority(t *testing.T) {
	n := NewNetwork(HardCDV{})
	queues := map[Priority]float64{1: 32, 2: 128, 3: 512}
	route := make(Route, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("ap%d", i)
		if _, err := n.AddSwitch(SwitchConfig{Name: name, QueueCells: queues}); err != nil {
			t.Fatal(err)
		}
		route[i] = Hop{Switch: name, In: 1, Out: 0}
	}
	tests := []struct {
		budget float64
		want   Priority
	}{
		{2000, 3}, // 3*512 = 1536 fits: least urgent wins
		{1000, 2}, // 3*128 = 384 fits, 1536 does not
		{200, 1},  // only 3*32 = 96 fits
		{96, 1},   // exact fit
	}
	for _, tt := range tests {
		got, err := n.AssignPriority(route, tt.budget)
		if err != nil {
			t.Fatalf("budget %g: %v", tt.budget, err)
		}
		if got != tt.want {
			t.Errorf("budget %g: priority %d, want %d", tt.budget, got, tt.want)
		}
	}
	// Impossible budget.
	if _, err := n.AssignPriority(route, 50); !errors.Is(err, ErrRejected) {
		t.Errorf("impossible budget error = %v, want ErrRejected", err)
	}
	// Validation.
	if _, err := n.AssignPriority(nil, 100); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty route error = %v", err)
	}
	if _, err := n.AssignPriority(route, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero budget error = %v", err)
	}
	if _, err := n.AssignPriority(Route{{Switch: "ghost"}}, 100); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("unknown switch error = %v", err)
	}
}

// TestAssignPriorityHonoursPortOverrides: a larger per-port FIFO on the
// route changes which priorities fit.
func TestAssignPriorityHonoursPortOverrides(t *testing.T) {
	n := NewNetwork(HardCDV{})
	if _, err := n.AddSwitch(SwitchConfig{
		Name:           "sw",
		QueueCells:     map[Priority]float64{1: 32, 2: 128},
		PortQueueCells: map[PortID]map[Priority]float64{5: {2: 1000}},
	}); err != nil {
		t.Fatal(err)
	}
	base := Route{{Switch: "sw", In: 1, Out: 0}}
	over := Route{{Switch: "sw", In: 1, Out: 5}}
	// Budget 200: on the base port priority 2 (128) fits; on the overridden
	// port priority 2's guarantee is 1000, so only priority 1 fits.
	p, err := n.AssignPriority(base, 200)
	if err != nil || p != 2 {
		t.Fatalf("base port priority = %d (%v), want 2", p, err)
	}
	p, err = n.AssignPriority(over, 200)
	if err != nil || p != 1 {
		t.Fatalf("override port priority = %d (%v), want 1", p, err)
	}
}

// TestSetupContextCancelledLeavesNoResidue: a setup abandoned by its
// context before completing must admit nothing and leave no partial
// per-hop reservations — the invariant the wire server's propagated
// client deadline relies on.
func TestSetupContextCancelledLeavesNoResidue(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := n.SetupContext(ctx, ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SetupContext with cancelled ctx = %v, want context.Canceled", err)
	}
	for _, name := range []string{"sw0", "sw1"} {
		sw, _ := n.Switch(name)
		if sw.Has("c1") {
			t.Errorf("switch %s carries the abandoned connection", name)
		}
	}
	if ids := n.Connections(); len(ids) != 0 {
		t.Errorf("abandoned setup recorded: %v", ids)
	}
	// The same request goes through once the caller retries without the
	// dead context.
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Errorf("retry after abandonment: %v", err)
	}
}
