package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// boundVector is a quick-generable vector of non-negative per-hop delay
// bounds (in cell times), the domain of CDVPolicy.Accumulate.
type boundVector []float64

// Generate implements quick.Generator.
func (boundVector) Generate(r *rand.Rand, _ int) reflect.Value {
	v := make(boundVector, r.Intn(12))
	for i := range v {
		// Mix magnitudes: sub-cell CDVs up to multi-thousand-cell bounds.
		v[i] = math.Abs(r.NormFloat64()) * math.Pow(10, float64(r.Intn(4)))
	}
	return reflect.ValueOf(v)
}

// TestPropSoftNeverExceedsHard: for every non-negative bound vector the
// soft (square-root of sum of squares) accumulation is at most the hard
// (plain sum) accumulation — the l2/l1 norm inequality that makes the soft
// policy an optimistic relaxation, never a harder requirement.
func TestPropSoftNeverExceedsHard(t *testing.T) {
	f := func(v boundVector) bool {
		soft := SoftCDV{}.Accumulate(v)
		hard := HardCDV{}.Accumulate(v)
		if math.IsNaN(soft) || math.IsNaN(hard) || soft < 0 || hard < 0 {
			return false
		}
		// Relative tolerance for the float square root.
		return soft <= hard*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropCDVAccumulateMonotone: increasing any single element of the
// bound vector can only increase (or keep) both accumulations — an
// upstream switch granting a looser guarantee never shrinks the clumping
// a downstream hop must tolerate.
func TestPropCDVAccumulateMonotone(t *testing.T) {
	f := func(v boundVector, idx uint8, bump float64) bool {
		if len(v) == 0 {
			return true
		}
		bump = math.Abs(bump)
		if math.IsInf(bump, 0) || math.IsNaN(bump) {
			return true
		}
		i := int(idx) % len(v)
		raised := append(boundVector(nil), v...)
		raised[i] += bump
		for _, policy := range []CDVPolicy{HardCDV{}, SoftCDV{}} {
			before := policy.Accumulate(v)
			after := policy.Accumulate(raised)
			if after < before-1e-9 {
				t.Logf("%s: raising v[%d] by %g dropped %g -> %g", policy.Name(), i, bump, before, after)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropCDVZeroAndSingleton pins the edge cases both policies must agree
// on: the empty vector accumulates to zero, and a single upstream bound
// passes through unchanged under either policy.
func TestPropCDVZeroAndSingleton(t *testing.T) {
	if got := (SoftCDV{}).Accumulate(nil); got != 0 {
		t.Errorf("SoftCDV.Accumulate(nil) = %g", got)
	}
	if got := (HardCDV{}).Accumulate(nil); got != 0 {
		t.Errorf("HardCDV.Accumulate(nil) = %g", got)
	}
	f := func(d float64) bool {
		d = math.Abs(d)
		if math.IsInf(d, 0) || math.IsNaN(d) {
			return true
		}
		// Stay inside the physical domain: d*d must not overflow (a delay
		// bound of 1e9 cell times is already ~45 minutes on OC-3).
		d = math.Mod(d, 1e9)
		soft := SoftCDV{}.Accumulate([]float64{d})
		hard := HardCDV{}.Accumulate([]float64{d})
		return math.Abs(soft-d) <= 1e-9*math.Max(1, d) && hard == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
