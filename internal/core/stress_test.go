package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"atmcac/internal/traffic"
)

// ---------------------------------------------------------------------------
// Deterministic concurrency stress suite for the snapshot-based admission
// hot path. Every test here is meant to run under -race (and does in CI,
// with -count=3): the goroutine scripts are seeded and per-goroutine
// deterministic, so the only nondeterminism is the interleaving the
// scheduler (and the race detector) explores.
// ---------------------------------------------------------------------------

// stressTopology builds a line of nSwitches switches with the given queue
// size, plus the segment routes each worker uses.
func stressTopology(t testing.TB, nSwitches int, queue float64) *Network {
	t.Helper()
	n := NewNetwork(HardCDV{})
	for i := 0; i < nSwitches; i++ {
		if _, err := n.AddSwitch(SwitchConfig{
			Name:       fmt.Sprintf("sw%02d", i),
			QueueCells: map[Priority]float64{1: queue},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// stressOp is one scripted operation of a worker.
type stressOp struct {
	kind string // "admit", "release", "query"
	req  ConnRequest
	id   ConnID
}

// stressScript builds the deterministic op sequence of worker g: admit a
// few connections on a 2-3 hop line segment, interleave bound queries, and
// release a deterministic subset, leaving the rest admitted.
func stressScript(g, nSwitches, connsPerWorker int) []stressOp {
	rng := rand.New(rand.NewSource(int64(1000 + g)))
	var ops []stressOp
	for c := 0; c < connsPerWorker; c++ {
		id := ConnID(fmt.Sprintf("g%02d-c%02d", g, c))
		first := rng.Intn(nSwitches - 1)
		hops := 2 + rng.Intn(2) // 2 or 3 hops
		route := make(Route, 0, hops)
		for h := 0; h < hops && first+h < nSwitches; h++ {
			route = append(route, Hop{
				Switch: fmt.Sprintf("sw%02d", first+h),
				In:     PortID(1 + g), // distinct in-port per worker
				Out:    0,
			})
		}
		ops = append(ops, stressOp{kind: "admit", id: id, req: ConnRequest{
			ID:        id,
			Spec:      traffic.VBR(0.004, 0.0005, 4),
			Priority:  1,
			Route:     route,
			SourceCDV: float64(rng.Intn(64)),
		}})
		ops = append(ops, stressOp{kind: "query"})
		if c%3 == 1 {
			ops = append(ops, stressOp{kind: "release", id: id})
		}
	}
	return ops
}

// runScript executes a worker script against n. With mustAdmit, every admit
// must succeed (the generous-capacity regime); otherwise CAC rejections are
// tolerated and recorded.
func runScript(t testing.TB, n *Network, ops []stressOp, mustAdmit bool) (admitted, rejected []ConnID) {
	t.Helper()
	live := make(map[ConnID]bool)
	for _, op := range ops {
		switch op.kind {
		case "admit":
			_, err := n.Setup(context.Background(), op.req)
			switch {
			case err == nil:
				live[op.req.ID] = true
			case errors.Is(err, ErrRejected) && !mustAdmit:
				rejected = append(rejected, op.req.ID)
			default:
				t.Errorf("setup %q: %v", op.req.ID, err)
				return
			}
		case "release":
			if !live[op.id] {
				continue
			}
			if err := n.Teardown(op.id); err != nil {
				t.Errorf("teardown %q: %v", op.id, err)
				return
			}
			delete(live, op.id)
		case "query":
			// Bound queries race against commits; they must never error on
			// a stable load (generous regime) and must be finite.
			for _, name := range []string{"sw00", "sw01"} {
				sw, _ := n.Switch(name)
				d, err := sw.ComputedBound(0, 1)
				if err != nil && mustAdmit {
					t.Errorf("bound at %s: %v", name, err)
					return
				}
				if err == nil && (math.IsNaN(d) || d < 0) {
					t.Errorf("bound at %s: %g", name, d)
					return
				}
			}
		}
	}
	for id := range live {
		admitted = append(admitted, id)
	}
	return admitted, rejected
}

// networkBounds collects every (switch, out, priority) computed bound of
// ports carrying traffic.
func networkBounds(t testing.TB, n *Network) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, name := range n.SwitchNames() {
		sw, _ := n.Switch(name)
		for _, port := range sw.OutPorts() {
			for _, p := range sw.Priorities() {
				if !sw.snapshot().hasTraffic(port, p) {
					continue
				}
				d, err := sw.ComputedBound(port, p)
				if err != nil {
					t.Fatalf("bound %s/%d/%d: %v", name, port, p, err)
				}
				out[fmt.Sprintf("%s/%d/%d", name, port, p)] = d
			}
		}
	}
	return out
}

// TestStressConcurrentAdmitReleaseOracle runs 16 workers of interleaved
// Setup/Teardown/ComputedBound against one network with generous queues
// (every admit must succeed regardless of interleaving), then replays the
// identical scripts serially on a fresh network and asserts both executions
// agree on the admitted set and on every computed bound.
func TestStressConcurrentAdmitReleaseOracle(t *testing.T) {
	const (
		workers        = 16
		nSwitches      = 8
		connsPerWorker = 6
	)
	scripts := make([][]stressOp, workers)
	for g := range scripts {
		scripts[g] = stressScript(g, nSwitches, connsPerWorker)
	}

	concurrent := stressTopology(t, nSwitches, 1e6)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			runScript(t, concurrent, scripts[g], true)
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Oracle: the same ops, serially, in worker-major order. Because every
	// admission succeeds in both executions and each worker only releases
	// its own connections, the final admitted sets must be identical, and
	// (by admission-order independence of the bit-stream aggregates) so
	// must every computed bound.
	serial := stressTopology(t, nSwitches, 1e6)
	for g := 0; g < workers; g++ {
		runScript(t, serial, scripts[g], true)
	}
	if t.Failed() {
		return
	}

	gotIDs := concurrent.Connections()
	wantIDs := serial.Connections()
	if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
		t.Fatalf("admitted sets differ:\nconcurrent: %v\nserial:     %v", gotIDs, wantIDs)
	}
	gotBounds := networkBounds(t, concurrent)
	wantBounds := networkBounds(t, serial)
	if len(gotBounds) != len(wantBounds) {
		t.Fatalf("loaded queues differ: %d vs %d", len(gotBounds), len(wantBounds))
	}
	for k, want := range wantBounds {
		got, ok := gotBounds[k]
		if !ok {
			t.Fatalf("queue %s loaded serially but not concurrently", k)
		}
		// Aggregates sum in map order, so only the last few ulps may move.
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("bound %s: concurrent %.15g, serial %.15g", k, got, want)
		}
	}
}

// TestStressTightQueueNoLeaks drives 16 workers against a deliberately
// tight queue so the CAC rejects a load-dependent subset, and asserts the
// safety invariants that must hold under every interleaving: the final
// state is audit-clean, every admitted connection is present at each hop of
// its route, every rejected connection left no residue anywhere, and the
// surviving set replayed serially is admissible with identical bounds.
func TestStressTightQueueNoLeaks(t *testing.T) {
	const (
		workers        = 16
		nSwitches      = 6
		connsPerWorker = 5
	)
	scripts := make([][]stressOp, workers)
	for g := range scripts {
		scripts[g] = stressScript(g, nSwitches, connsPerWorker)
	}
	n := stressTopology(t, nSwitches, 14)

	rejectedCh := make(chan []ConnID, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, rejected := runScript(t, n, scripts[g], false)
			rejectedCh <- rejected
		}(g)
	}
	wg.Wait()
	close(rejectedCh)
	if t.Failed() {
		return
	}
	var rejected []ConnID
	for r := range rejectedCh {
		rejected = append(rejected, r...)
	}

	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("audit after concurrent load: %v", violations)
	}

	admitted := make(map[ConnID]ConnRequest)
	for _, req := range n.AdmittedRequests() {
		admitted[req.ID] = req
	}
	for id, req := range admitted {
		for _, hop := range req.Route {
			sw, _ := n.Switch(hop.Switch)
			if !sw.Has(id) {
				t.Fatalf("admitted %q missing at %s", id, hop.Switch)
			}
		}
	}
	for _, id := range rejected {
		if _, ok := admitted[id]; ok {
			continue // re-admitted later by its own worker script? ids are unique; cannot happen
		}
		for _, name := range n.SwitchNames() {
			sw, _ := n.Switch(name)
			if sw.Has(id) {
				t.Fatalf("rejected %q leaked a reservation at %s", id, name)
			}
		}
	}

	// The surviving set is an admissible set: serial replay admits all of
	// it and lands on the same bounds.
	replay := stressTopology(t, nSwitches, 14)
	for _, req := range n.AdmittedRequests() {
		if _, err := replay.Setup(context.Background(), req); err != nil {
			t.Fatalf("serial replay of surviving %q: %v", req.ID, err)
		}
	}
	got := networkBounds(t, n)
	want := networkBounds(t, replay)
	for k, w := range want {
		if g, ok := got[k]; !ok || math.Abs(g-w) > 1e-9 {
			t.Fatalf("bound %s: concurrent %.15g, replay %.15g", k, got[k], w)
		}
	}
}

// TestStressSwitchConcurrentMixedOps hammers a single switch with admits,
// releases, duplicate admits, renames and lock-free read queries from many
// goroutines; the race detector checks the snapshot machinery, and the
// final reconciliation checks nothing was lost or duplicated.
func TestStressSwitchConcurrentMixedOps(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Name: "sw", QueueCells: map[Priority]float64{1: 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const rounds = 30
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := ConnID(fmt.Sprintf("w%02d-r%02d", g, r))
				req := HopRequest{
					Conn: id, Spec: traffic.VBR(0.003, 0.0004, 4),
					In: PortID(1 + g), Out: 0, Priority: 1, CDV: float64(32 * (r % 4)),
				}
				if _, err := sw.Admit(req); err != nil {
					t.Errorf("admit %q: %v", id, err)
					return
				}
				// A re-admission of the same hop must always be refused.
				if _, err := sw.Admit(req); !errors.Is(err, ErrDuplicateConn) {
					t.Errorf("duplicate admit %q: %v", id, err)
					return
				}
				if !sw.Has(id) {
					t.Errorf("admitted %q not visible", id)
					return
				}
				if d, err := sw.ComputedBound(0, 1); err != nil || d < 0 {
					t.Errorf("bound: %g, %v", d, err)
					return
				}
				if _, _, err := sw.PortEnvelope(0, 1); err != nil {
					t.Errorf("envelope: %v", err)
					return
				}
				switch r % 3 {
				case 0:
					if err := sw.Release(id); err != nil {
						t.Errorf("release %q: %v", id, err)
						return
					}
				case 1:
					alias := ConnID(fmt.Sprintf("w%02d-r%02d-renamed", g, r))
					if err := sw.Rename(id, alias); err != nil {
						t.Errorf("rename %q: %v", id, err)
						return
					}
					if err := sw.Release(alias); err != nil {
						t.Errorf("release renamed %q: %v", alias, err)
						return
					}
				default:
					// keep it admitted
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Exactly the "keep" rounds survive.
	kept := 0
	for r := 0; r < rounds; r++ {
		if r%3 == 2 {
			kept++
		}
	}
	if got, want := sw.ConnectionCount(), workers*kept; got != want {
		t.Fatalf("ConnectionCount = %d, want %d", got, want)
	}
	for g := 0; g < workers; g++ {
		for r := 0; r < rounds; r++ {
			id := ConnID(fmt.Sprintf("w%02d-r%02d", g, r))
			if want := r%3 == 2; sw.Has(id) != want {
				t.Fatalf("Has(%q) = %v, want %v", id, !want, want)
			}
		}
	}
}

// TestStressDuplicateSetupRace issues the same connection ID from many
// goroutines at once; exactly one setup may win, everyone else must get
// ErrDuplicateConn, and the winner's reservations must be intact.
func TestStressDuplicateSetupRace(t *testing.T) {
	n := stressTopology(t, 3, 1e6)
	req := ConnRequest{
		ID:       "contested",
		Spec:     traffic.CBR(0.01),
		Priority: 1,
		Route:    Route{{Switch: "sw00", In: 1, Out: 0}, {Switch: "sw01", In: 0, Out: 0}},
	}
	const racers = 16
	var wins, dups int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := n.Setup(context.Background(), req)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				wins++
			case errors.Is(err, ErrDuplicateConn):
				dups++
			default:
				t.Errorf("setup: %v", err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if wins != 1 || dups != racers-1 {
		t.Fatalf("wins = %d, duplicates = %d (want 1 and %d)", wins, dups, racers-1)
	}
	for _, name := range []string{"sw00", "sw01"} {
		sw, _ := n.Switch(name)
		if !sw.Has("contested") {
			t.Fatalf("winner's reservation missing at %s", name)
		}
	}
	if err := n.Teardown("contested"); err != nil {
		t.Fatal(err)
	}
}
