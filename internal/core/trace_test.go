package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"atmcac/internal/obs"
	"atmcac/internal/traffic"
)

// recorder collects trace events for assertions.
type recorder struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *recorder) Trace(ev obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *recorder) byKind(k obs.Kind) []obs.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []obs.Event
	for _, ev := range r.events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

func TestSetupEmitsTraceEvents(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	rec := &recorder{}
	n.SetTracer(rec)

	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.2), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	setups := rec.byKind(obs.KindSetup)
	if len(setups) != 1 {
		t.Fatalf("setup events = %d, want 1", len(setups))
	}
	ev := setups[0]
	if ev.Outcome != obs.OutcomeAccepted || ev.Conn != "c1" || ev.Hops != 2 || ev.Retries != 0 {
		t.Fatalf("setup event = %+v", ev)
	}
	hops := rec.byKind(obs.KindHopCheck)
	if len(hops) != 2 {
		t.Fatalf("hop events = %d, want 2", len(hops))
	}
	for _, h := range hops {
		if h.Outcome != obs.OutcomeAccepted {
			t.Fatalf("hop event = %+v", h)
		}
		if h.Slack < 0 {
			t.Fatalf("accepted hop has negative slack %v", h.Slack)
		}
	}

	if err := n.Teardown("c1"); err != nil {
		t.Fatal(err)
	}
	tds := rec.byKind(obs.KindTeardown)
	if len(tds) != 1 || tds[0].Outcome != obs.OutcomeOK {
		t.Fatalf("teardown events = %+v", tds)
	}
}

func TestSetupRejectionTraceCarriesCode(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	rec := &recorder{}

	// A 1-cell end-to-end bound cannot be met: guarantees sum to 64.
	_, err := n.Setup(context.Background(), ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.2), Priority: 1, Route: route, DelayBound: 1,
	}, WithTracer(rec))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	setups := rec.byKind(obs.KindSetup)
	if len(setups) != 1 {
		t.Fatalf("setup events = %d, want 1", len(setups))
	}
	if setups[0].Outcome != obs.OutcomeRejected || setups[0].Code != CodeDelayBound {
		t.Fatalf("rejection event = %+v, want rejected/%s", setups[0], CodeDelayBound)
	}
}

func TestWithRetryBudgetRetriesRejections(t *testing.T) {
	n, _ := twoHopNetwork(t, HardCDV{})
	rec := &recorder{}

	// Saturate sw0's priority-1 queue with simultaneous bursts arriving on
	// distinct input ports (same clumping the mid-route rejection test
	// uses) until a further bursty setup is rejected.
	hogRoute := func(i int) Route {
		return Route{{Switch: "sw0", In: PortID(10 + i), Out: 0}, {Switch: "sw1", In: 1, Out: 0}}
	}
	spec := traffic.VBR(1, 0.005, 8)
	var hogs []ConnID
	for i := 0; ; i++ {
		id := ConnID(fmt.Sprintf("hog%d", i))
		_, err := n.Setup(context.Background(), ConnRequest{
			ID: id, Spec: spec, Priority: 1, Route: hogRoute(i),
		})
		if err != nil {
			if !errors.Is(err, ErrRejected) {
				t.Fatal(err)
			}
			break
		}
		hogs = append(hogs, id)
		if i > 100 {
			t.Fatal("network never saturated")
		}
	}

	// Still saturated: every attempt rejects, so the whole budget is
	// consumed and reported on the setup event.
	wantRoute := hogRoute(200)
	_, err := n.Setup(context.Background(), ConnRequest{
		ID: "want", Spec: spec, Priority: 1, Route: wantRoute,
	}, WithTracer(rec), WithRetryBudget(2))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("saturated setup err = %v, want ErrRejected", err)
	}
	setups := rec.byKind(obs.KindSetup)
	if len(setups) != 1 || setups[0].Retries != 2 {
		t.Fatalf("setup event = %+v, want Retries=2", setups[0])
	}

	for _, id := range hogs {
		if err := n.Teardown(id); err != nil {
			t.Fatal(err)
		}
	}

	rec2 := &recorder{}
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "want", Spec: spec, Priority: 1, Route: wantRoute,
	}, WithTracer(rec2), WithRetryBudget(1)); err != nil {
		t.Fatalf("setup after teardown: %v", err)
	}
	if evs := rec2.byKind(obs.KindSetup); len(evs) != 1 || evs[0].Retries != 0 {
		t.Fatalf("post-release setup = %+v, want Retries=0", evs)
	}
}

func TestRetryBudgetDoesNotRetryNonRejections(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	rec := &recorder{}
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "dup", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := n.Setup(context.Background(), ConnRequest{
		ID: "dup", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}, WithTracer(rec), WithRetryBudget(5))
	if !errors.Is(err, ErrDuplicateConn) {
		t.Fatalf("err = %v, want ErrDuplicateConn", err)
	}
	if evs := rec.byKind(obs.KindSetup); len(evs) != 1 || evs[0].Retries != 0 {
		t.Fatalf("duplicate setup retried: %+v", evs)
	}
	if evs := rec.byKind(obs.KindSetup); evs[0].Outcome != obs.OutcomeError || evs[0].Code != CodeDuplicate {
		t.Fatalf("duplicate setup event = %+v", evs[0])
	}
}

func TestFailAndRestoreLinkEmitEvents(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	rec := &recorder{}
	n.SetTracer(rec)
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	evicted, err := n.FailLink("sw0", "sw1")
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted = %d, want 1", len(evicted))
	}
	fls := rec.byKind(obs.KindFailLink)
	if len(fls) != 1 || fls[0].Evicted != 1 || fls[0].Link != "sw0->sw1" {
		t.Fatalf("fail-link events = %+v", fls)
	}
	if err := n.RestoreLink("sw0", "sw1"); err != nil {
		t.Fatal(err)
	}
	if rls := rec.byKind(obs.KindRestoreLink); len(rls) != 1 {
		t.Fatalf("restore-link events = %+v", rls)
	}
}

func TestAuditEmitsEvent(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	rec := &recorder{}
	n.SetTracer(rec)
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	v, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	evs := rec.byKind(obs.KindAudit)
	if len(evs) != 1 || evs[0].Violations != len(v) {
		t.Fatalf("audit events = %+v (violations %d)", evs, len(v))
	}
}

func TestErrorCodeTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrRejected, CodeRejected},
		{fmt.Errorf("wrap: %w", ErrLinkDown), CodeLinkDown},
		{fmt.Errorf("wrap: %w", ErrDuplicateConn), CodeDuplicate},
		{ErrUnknownConn, CodeUnknownConn},
		{ErrUnknownSwitch, CodeUnknownSwitch},
		{ErrBadConfig, CodeBadConfig},
		{context.DeadlineExceeded, CodeDeadline},
		{context.Canceled, CodeCanceled},
		{errors.New("mystery"), CodeInternal},
		{&RejectionError{Kind: CodeQueueBudget}, CodeQueueBudget},
		{&RejectionError{Kind: CodeQueueUnstable}, CodeQueueUnstable},
		{fmt.Errorf("wrap: %w", &RejectionError{Kind: CodeDelayBound}), CodeDelayBound},
		{&RejectionError{}, CodeRejected},
	}
	for _, c := range cases {
		if got := ErrorCode(c.err); got != c.want {
			t.Errorf("ErrorCode(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestDeprecatedWrappersStillWork pins the compatibility surface: the
// pre-options SetupContext spelling must keep admitting.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	n, route := twoHopNetwork(t, HardCDV{})
	if _, err := n.SetupContext(context.Background(), ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	if got := n.Connections(); len(got) != 1 || got[0] != "c1" {
		t.Fatalf("Connections = %v", got)
	}
}
