package core

import (
	"fmt"
	"math"
	"testing"

	"atmcac/internal/traffic"
)

// TestCacheInvalidationOnMutations: repeated bound queries hit the memo,
// and every mutation (admit, install, release) invalidates it so results
// always reflect the current connection set.
func TestCacheInvalidationOnMutations(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 1e6})
	admit := func(i int) {
		t.Helper()
		if _, err := sw.Admit(HopRequest{
			Conn: ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.VBR(0.4, 0.01, 8),
			In: PortID(i), Out: 0, Priority: 1, CDV: 32,
		}); err != nil {
			t.Fatal(err)
		}
	}
	admit(1)
	d1, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated query: identical (memoized) result.
	d1again, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d1again {
		t.Fatalf("repeated bound differs: %g vs %g", d1, d1again)
	}
	// Admit invalidates.
	admit(2)
	d2, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Fatalf("bound after second admission %g not above %g (stale cache?)", d2, d1)
	}
	// Install invalidates.
	if err := sw.Install(HopRequest{
		Conn: "inst", Spec: traffic.VBR(0.4, 0.01, 8),
		In: 7, Out: 0, Priority: 1, CDV: 32,
	}); err != nil {
		t.Fatal(err)
	}
	d3, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d3 <= d2 {
		t.Fatalf("bound after install %g not above %g (stale cache?)", d3, d2)
	}
	// Release invalidates and restores the earlier value.
	if err := sw.Release("inst"); err != nil {
		t.Fatal(err)
	}
	d4, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d4-d2) > 1e-9 {
		t.Fatalf("bound after release %g, want %g", d4, d2)
	}
}

// TestCacheNotPoisonedByCheck: Check (and the candidate-including admission
// path) must not populate the memo with candidate-augmented aggregates.
func TestCacheNotPoisonedByCheck(t *testing.T) {
	sw := newTestSwitch(t, map[Priority]float64{1: 1e6})
	if _, err := sw.Admit(HopRequest{
		Conn: "base", Spec: traffic.VBR(0.4, 0.01, 8), In: 1, Out: 0, Priority: 1,
	}); err != nil {
		t.Fatal(err)
	}
	before, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A Check evaluates bounds with a hypothetical heavy connection.
	if _, err := sw.Check(HopRequest{
		Conn: "ghost", Spec: traffic.VBR(0.5, 0.1, 32), In: 2, Out: 0, Priority: 1, CDV: 96,
	}); err != nil {
		t.Fatal(err)
	}
	after, err := sw.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("Check changed the cached bound: %g vs %g", before, after)
	}
}
