package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"atmcac/internal/traffic"
)

// ringNetwork builds sw0 -> sw1 -> ... -> sw(n-1) -> sw0 with 32-cell
// highest-priority queues and returns a route builder over it.
func ringNetwork(t *testing.T, nodes int) (*Network, func(origin, hops int) Route) {
	t.Helper()
	n := NewNetwork(HardCDV{})
	for i := 0; i < nodes; i++ {
		if _, err := n.AddSwitch(SwitchConfig{
			Name:       fmt.Sprintf("sw%d", i),
			QueueCells: map[Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
	}
	route := func(origin, hops int) Route {
		r := make(Route, hops)
		for h := 0; h < hops; h++ {
			r[h] = Hop{Switch: fmt.Sprintf("sw%d", (origin+h)%nodes), In: 1, Out: 0}
		}
		return r
	}
	return n, route
}

func TestFailLinkEvictsTraversingConnections(t *testing.T) {
	n, route := ringNetwork(t, 4)
	// crosses traverses sw1 -> sw2; local stays on sw3 -> sw0.
	for _, c := range []struct {
		id ConnID
		r  Route
	}{
		{"crosses", route(0, 3)}, // sw0, sw1, sw2
		{"local", route(3, 2)},   // sw3, sw0
	} {
		if _, err := n.Setup(context.Background(), ConnRequest{
			ID: c.id, Spec: traffic.CBR(0.01), Priority: 1, Route: c.r,
		}); err != nil {
			t.Fatal(err)
		}
	}

	evicted, err := n.FailLink("sw1", "sw2")
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].ID != "crosses" {
		t.Fatalf("evicted = %+v, want [crosses]", evicted)
	}
	if got := n.Connections(); len(got) != 1 || got[0] != "local" {
		t.Fatalf("surviving connections = %v, want [local]", got)
	}
	// The evicted connection's reservations are gone at every switch.
	for _, name := range []string{"sw0", "sw1", "sw2"} {
		sw, _ := n.Switch(name)
		if sw.Has("crosses") {
			t.Errorf("switch %s still carries the evicted connection", name)
		}
	}
	// Teardown of an evicted connection reports unknown, not a double free.
	if err := n.Teardown("crosses"); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("teardown after eviction = %v, want ErrUnknownConn", err)
	}

	// Failing the same link again is a no-op.
	again, err := n.FailLink("sw1", "sw2")
	if err != nil || len(again) != 0 {
		t.Fatalf("second FailLink = %v, %v", again, err)
	}
}

func TestSetupAndInstallRefuseFailedLink(t *testing.T) {
	n, route := ringNetwork(t, 3)
	if _, err := n.FailLink("sw0", "sw1"); err != nil {
		t.Fatal(err)
	}
	req := ConnRequest{ID: "x", Spec: traffic.CBR(0.01), Priority: 1, Route: route(0, 2)}
	if _, err := n.Setup(context.Background(), req); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Setup over failed link = %v, want ErrLinkDown", err)
	}
	if err := n.Install(req); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Install over failed link = %v, want ErrLinkDown", err)
	}
	// A refused setup leaves no residue: the ID is reusable elsewhere.
	req.Route = route(1, 2) // sw1 -> sw2, avoids the failed link
	if _, err := n.Setup(context.Background(), req); err != nil {
		t.Fatalf("Setup on alternate route after refusal: %v", err)
	}
}

func TestRestoreLink(t *testing.T) {
	n, route := ringNetwork(t, 3)
	if err := n.RestoreLink("sw0", "sw1"); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("restore of a healthy link = %v, want ErrBadConfig", err)
	}
	if _, err := n.FailLink("sw0", "sw1"); err != nil {
		t.Fatal(err)
	}
	if !n.LinkDown("sw0", "sw1") {
		t.Fatal("LinkDown false after FailLink")
	}
	if links := n.FailedLinks(); len(links) != 1 || links[0] != (Link{From: "sw0", To: "sw1"}) {
		t.Fatalf("FailedLinks = %v", links)
	}
	if err := n.RestoreLink("sw0", "sw1"); err != nil {
		t.Fatal(err)
	}
	if n.LinkDown("sw0", "sw1") {
		t.Fatal("LinkDown true after RestoreLink")
	}
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "back", Spec: traffic.CBR(0.01), Priority: 1, Route: route(0, 2),
	}); err != nil {
		t.Fatalf("Setup after restore: %v", err)
	}
}

func TestFailLinkValidatesEndpoints(t *testing.T) {
	n, _ := ringNetwork(t, 2)
	if _, err := n.FailLink("sw0", "nope"); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("unknown endpoint = %v, want ErrUnknownSwitch", err)
	}
	if _, err := n.FailLink("sw0", "sw0"); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("self link = %v, want ErrBadConfig", err)
	}
	if _, err := n.FailLink("", "sw0"); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty endpoint = %v, want ErrBadConfig", err)
	}
}

// TestFailLinkSetupRace drives concurrent setups over a link while it fails
// and restores, then asserts the closing invariant: an admitted connection
// never traverses a link that is down at the end, and every admitted
// connection still holds reservations at all its switches.
// TestLinkMapperExtendsTraversal: a topology-installed LinkMapper lets
// failure handling see traversals the hop sequence cannot show. Here the
// mapper declares that every route also crosses the link out of its last
// switch (a final delivery), so both eviction and new setups honour it.
func TestLinkMapperExtendsTraversal(t *testing.T) {
	n, route := ringNetwork(t, 4)
	n.SetLinkMapper(func(r Route) []Link {
		links := make([]Link, 0, len(r))
		for i := 0; i+1 < len(r); i++ {
			links = append(links, Link{From: r[i].Switch, To: r[i+1].Switch})
		}
		if len(r) > 0 {
			last := r[len(r)-1].Switch
			var i int
			fmt.Sscanf(last, "sw%d", &i)
			links = append(links, Link{From: last, To: fmt.Sprintf("sw%d", (i+1)%4)})
		}
		return links
	})
	// One-hop route at sw1: consecutive-hop adjacency sees no link at all,
	// the mapper adds the delivery link sw1 -> sw2.
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "edge", Spec: traffic.CBR(0.01), Priority: 1, Route: route(1, 1),
	}); err != nil {
		t.Fatal(err)
	}
	evicted, err := n.FailLink("sw1", "sw2")
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].ID != "edge" {
		t.Fatalf("evicted = %+v, want [edge]", evicted)
	}
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "edge2", Spec: traffic.CBR(0.01), Priority: 1, Route: route(1, 1),
	}); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("setup with mapped delivery over dead link = %v, want ErrLinkDown", err)
	}
	// Clearing the mapper restores consecutive-hop adjacency.
	n.SetLinkMapper(nil)
	if _, err := n.Setup(context.Background(), ConnRequest{
		ID: "edge3", Spec: traffic.CBR(0.01), Priority: 1, Route: route(1, 1),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFailLinkSetupRace(t *testing.T) {
	const (
		nodes  = 6
		setups = 200
		rounds = 20
	)
	n, route := ringNetwork(t, nodes)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for g := 0; g < setups; g++ {
			id := ConnID(fmt.Sprintf("c%03d", g))
			_, err := n.Setup(context.Background(), ConnRequest{
				ID: id, Spec: traffic.CBR(0.0005), Priority: 1,
				Route: route(g%nodes, 2+g%3),
			})
			if err != nil && !errors.Is(err, ErrLinkDown) && !errors.Is(err, ErrRejected) {
				t.Errorf("setup %s: %v", id, err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if _, err := n.FailLink("sw1", "sw2"); err != nil {
				t.Errorf("fail: %v", err)
			}
			if err := n.RestoreLink("sw1", "sw2"); err != nil {
				t.Errorf("restore: %v", err)
			}
		}
		// Leave the link down for the final invariant check.
		if _, err := n.FailLink("sw1", "sw2"); err != nil {
			t.Errorf("final fail: %v", err)
		}
	}()
	wg.Wait()

	for _, req := range n.AdmittedRequests() {
		for i := 0; i+1 < len(req.Route); i++ {
			if req.Route[i].Switch == "sw1" && req.Route[i+1].Switch == "sw2" {
				t.Errorf("admitted connection %s traverses failed link sw1->sw2", req.ID)
			}
		}
		for _, hop := range req.Route {
			sw, ok := n.Switch(hop.Switch)
			if !ok || !sw.Has(req.ID) {
				t.Errorf("admitted connection %s lost its reservation at %s", req.ID, hop.Switch)
			}
		}
	}
}
