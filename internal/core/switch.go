// Package core implements the paper's Connection Admission Control engine
// (Section 4.3): per-switch admission state over the bit-stream algebra, the
// six-step delay-bound check for static-priority FIFO switches, hard and
// soft CDV accumulation policies, and network-level connection setup with
// commit/rollback semantics.
//
// Each switch guarantees a fixed queueing delay bound D(j,p) per output
// port j and priority p — the size, in cells, of the priority-p FIFO queue
// (a bound of D cell times also bounds the backlog by D cells, so the queue
// never overflows). A connection is admitted at a switch if and only if,
// with the connection included, the computed worst-case delay D'(j,p) stays
// within D(j,p) for the connection's priority and for every lower priority
// carrying real-time traffic.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"atmcac/internal/bitstream"
	"atmcac/internal/traffic"
)

// Priority is a static transmission priority level; 1 is the highest.
type Priority int

// PortID identifies a switch port. Incoming and outgoing port spaces are
// separate: a PortID is interpreted relative to its direction.
type PortID int

// ConnID identifies a connection network-wide.
type ConnID string

var (
	// ErrRejected reports a connection that failed the CAC check.
	ErrRejected = errors.New("core: connection rejected")
	// ErrUnknownConn reports an operation on a connection the switch or
	// network does not carry.
	ErrUnknownConn = errors.New("core: unknown connection")
	// ErrDuplicateConn reports an admission for an already-admitted ID.
	ErrDuplicateConn = errors.New("core: duplicate connection")
	// ErrBadConfig reports an invalid switch or network configuration.
	ErrBadConfig = errors.New("core: invalid configuration")
	// ErrUnknownSwitch reports a route hop through a switch the network
	// does not contain.
	ErrUnknownSwitch = errors.New("core: unknown switch")
)

// RejectionError describes why a CAC check failed at a switch.
type RejectionError struct {
	Switch   string
	Out      PortID
	Priority Priority
	Bound    float64 // computed worst-case delay D'(j,p); +Inf if unstable
	Limit    float64 // guaranteed bound D(j,p)
	Reason   string
	// Kind is the stable taxonomy code of this rejection flavor (one of
	// CodeQueueUnstable, CodeQueueBudget, CodeDelayBound, CodeNoPriority);
	// ErrorCode surfaces it through arbitrary wrapping.
	Kind string
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("core: connection rejected at switch %q out port %d priority %d: %s (bound %.4g, limit %.4g)",
		e.Switch, e.Out, e.Priority, e.Reason, e.Bound, e.Limit)
}

// Unwrap lets callers match with errors.Is(err, ErrRejected).
func (e *RejectionError) Unwrap() error { return ErrRejected }

// SwitchConfig configures a switch's real-time queues.
type SwitchConfig struct {
	// Name identifies the switch within a Network.
	Name string
	// QueueCells maps each real-time priority level to the size (in cells)
	// of its per-output-port FIFO queue. The size doubles as the fixed
	// queueing delay bound D(j,p), in cell times, that the switch
	// guarantees regardless of load.
	QueueCells map[Priority]float64
	// PortQueueCells optionally overrides QueueCells for specific output
	// ports — the paper's D(j,p) is per port j, so e.g. an uplink can
	// carry a larger FIFO than edge ports. Override keys must be a subset
	// of the priorities in QueueCells.
	PortQueueCells map[PortID]map[Priority]float64
}

func (c SwitchConfig) validate() error {
	if len(c.QueueCells) == 0 {
		return fmt.Errorf("%w: switch %q has no real-time priority queues", ErrBadConfig, c.Name)
	}
	for p, cells := range c.QueueCells {
		if p < 1 {
			return fmt.Errorf("%w: switch %q priority %d (priorities start at 1)", ErrBadConfig, c.Name, p)
		}
		if !(cells > 0) || math.IsInf(cells, 0) || math.IsNaN(cells) {
			return fmt.Errorf("%w: switch %q priority %d queue size %g", ErrBadConfig, c.Name, p, cells)
		}
	}
	for port, queues := range c.PortQueueCells {
		for p, cells := range queues {
			if _, ok := c.QueueCells[p]; !ok {
				return fmt.Errorf("%w: switch %q port %d overrides unconfigured priority %d",
					ErrBadConfig, c.Name, port, p)
			}
			if !(cells > 0) || math.IsInf(cells, 0) || math.IsNaN(cells) {
				return fmt.Errorf("%w: switch %q port %d priority %d queue size %g",
					ErrBadConfig, c.Name, port, p, cells)
			}
		}
	}
	return nil
}

// boundFor returns the fixed delay bound D(j,p) of an output port,
// honouring per-port overrides.
func (c SwitchConfig) boundFor(out PortID, p Priority) (float64, bool) {
	if queues, ok := c.PortQueueCells[out]; ok {
		if d, ok := queues[p]; ok {
			return d, true
		}
	}
	d, ok := c.QueueCells[p]
	return d, ok
}

// priorities returns the configured priority levels, highest (1) first.
func (c SwitchConfig) priorities() []Priority {
	out := make([]Priority, 0, len(c.QueueCells))
	for p := range c.QueueCells {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HopRequest is the per-switch admission request for one connection.
type HopRequest struct {
	Conn     ConnID
	Spec     traffic.Spec
	In       PortID
	Out      PortID
	Priority Priority
	// CDV is the accumulated maximum cell delay variation over upstream
	// queueing points, in cell times (Section 4.3).
	CDV float64
}

// HopResult reports the outcome of a successful check or admission.
type HopResult struct {
	// Bounds maps the connection's priority, and every lower configured
	// priority carrying traffic, to the computed worst-case queueing delay
	// D'(out, p) with the new connection included.
	Bounds map[Priority]float64
	// Guaranteed is the switch's fixed bound D(out, priority) for the new
	// connection's priority: its contribution to downstream CDV.
	Guaranteed float64
}

// entry is one admitted connection at a switch.
type entry struct {
	id      ConnID
	in      PortID
	out     PortID
	prio    Priority
	arrival bitstream.Stream // worst-case arrival after upstream CDV
}

// Switch holds the CAC state of one switching node. All methods are safe
// for concurrent use.
//
// Concurrency model: the admitted set lives in an immutable switchState
// snapshot published through an atomic pointer. Readers (bound queries,
// audits, the O(n) bitstream math of the CAC check) load the snapshot and
// never block. Writers (Admit, Install, Release, Rename) clone the state
// copy-on-write and publish the successor under a short critical section.
// Admit is two-phase: the expensive check runs lock-free against a
// snapshot, then the commit re-validates (by snapshot identity) under the
// lock and retries with bounded backoff if a concurrent commit invalidated
// the snapshot, finally falling back to a fully locked check+commit so
// progress is guaranteed.
//
// A connection may traverse the same switch more than once — a wrapped
// RTnet ring routes traffic through each node in both directions — so a
// connection maps to a list of hop entries, each with its own port pair
// and arrival envelope.
type Switch struct {
	cfg SwitchConfig

	// mu serializes writers only; readers go through state.
	mu    sync.Mutex
	state atomic.Pointer[switchState]
}

// switchState is an immutable snapshot of a switch's admitted set. The
// conns map and the entry slices it holds are never mutated after
// publication; writers build a successor state instead.
type switchState struct {
	conns map[ConnID][]entry

	// cache memoizes the assembled (Soa, Sof) streams per (out, priority)
	// for this snapshot. Because the snapshot is immutable the cache can
	// never go stale: a commit publishes a fresh state with an empty
	// cache, which is exactly the old "clear on mutation" semantics.
	cacheMu sync.Mutex
	cache   map[portPrio]cachedStreams
}

type portPrio struct {
	out  PortID
	prio Priority
}

type cachedStreams struct {
	soa bitstream.Stream
	sof bitstream.Stream
}

// maxOptimisticAdmits bounds the lock-free check/commit retries of Admit
// before it falls back to deciding under the writer lock.
const maxOptimisticAdmits = 3

// NewSwitch returns a switch with the given queue configuration.
func NewSwitch(cfg SwitchConfig) (*Switch, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	queues := make(map[Priority]float64, len(cfg.QueueCells))
	for p, v := range cfg.QueueCells {
		queues[p] = v
	}
	cfg.QueueCells = queues
	if len(cfg.PortQueueCells) > 0 {
		overrides := make(map[PortID]map[Priority]float64, len(cfg.PortQueueCells))
		for port, qs := range cfg.PortQueueCells {
			cp := make(map[Priority]float64, len(qs))
			for p, v := range qs {
				cp[p] = v
			}
			overrides[port] = cp
		}
		cfg.PortQueueCells = overrides
	}
	sw := &Switch{cfg: cfg}
	sw.state.Store(newSwitchState(make(map[ConnID][]entry)))
	return sw, nil
}

func newSwitchState(conns map[ConnID][]entry) *switchState {
	return &switchState{conns: conns, cache: make(map[portPrio]cachedStreams)}
}

// Name returns the switch name.
func (sw *Switch) Name() string { return sw.cfg.Name }

// GuaranteedBound returns the switch's base fixed delay bound for priority
// p (before per-port overrides), and whether the priority is configured.
func (sw *Switch) GuaranteedBound(p Priority) (float64, bool) {
	d, ok := sw.cfg.QueueCells[p]
	return d, ok
}

// GuaranteedBoundAt returns the fixed delay bound D(j,p) of output port
// out at priority p, honouring per-port overrides.
func (sw *Switch) GuaranteedBoundAt(out PortID, p Priority) (float64, bool) {
	return sw.cfg.boundFor(out, p)
}

// ConnectionCount returns the number of admitted connections.
func (sw *Switch) ConnectionCount() int {
	return len(sw.state.Load().conns)
}

// Has reports whether the switch carries the connection.
func (sw *Switch) Has(id ConnID) bool {
	_, ok := sw.state.Load().conns[id]
	return ok
}

// arrivalStream computes the worst-case arrival envelope of a connection at
// this switch: the source envelope of Algorithm 2.1 clumped by the
// accumulated upstream CDV (Algorithm 3.1).
func arrivalStream(spec traffic.Spec, cdv float64) (bitstream.Stream, error) {
	s, err := spec.Stream()
	if err != nil {
		return bitstream.Stream{}, err
	}
	return s.Delayed(cdv)
}

// duplicateHop reports whether the connection already has an entry with the
// same port pair: the only admission that is a true duplicate. A second
// traversal of the switch via different ports (a wrapped ring) is
// legitimate.
func (st *switchState) duplicateHop(req HopRequest) bool {
	for _, e := range st.conns[req.Conn] {
		if e.in == req.In && e.out == req.Out {
			return true
		}
	}
	return false
}

// Check runs the CAC check of Section 4.3 for a new connection without
// committing it. It evaluates against the current snapshot without
// blocking writers. It returns a *RejectionError (wrapping ErrRejected) if
// the connection cannot be accommodated.
func (sw *Switch) Check(req HopRequest) (HopResult, error) {
	arr, err := sw.validateRequest(req)
	if err != nil {
		return HopResult{}, err
	}
	st := sw.state.Load()
	if st.duplicateHop(req) {
		return HopResult{}, fmt.Errorf("%w: %q at switch %q ports %d->%d",
			ErrDuplicateConn, req.Conn, sw.cfg.Name, req.In, req.Out)
	}
	return sw.checkState(st, req, arr)
}

// Admit runs the CAC check and, on success, commits the connection.
//
// The check (the O(n) bitstream math) runs against an immutable snapshot
// with no lock held; the commit then re-validates under the writer lock
// that the snapshot is still current and publishes the successor state.
// If a concurrent commit invalidated the snapshot the admission retries
// with bounded backoff, and after maxOptimisticAdmits attempts it decides
// under the lock, so it always terminates with a decision that was valid
// against the state it committed into.
func (sw *Switch) Admit(req HopRequest) (HopResult, error) {
	arr, err := sw.validateRequest(req)
	if err != nil {
		return HopResult{}, err
	}
	for attempt := 0; attempt < maxOptimisticAdmits; attempt++ {
		if attempt > 0 {
			// A concurrent commit won the race; yield before re-reading so
			// the winner's successors have a chance to drain.
			runtime.Gosched()
			if attempt > 1 {
				time.Sleep(time.Duration(attempt) * 2 * time.Microsecond)
			}
		}
		st := sw.state.Load()
		if st.duplicateHop(req) {
			return HopResult{}, fmt.Errorf("%w: %q at switch %q ports %d->%d",
				ErrDuplicateConn, req.Conn, sw.cfg.Name, req.In, req.Out)
		}
		res, err := sw.checkState(st, req, arr)
		if err != nil {
			// A rejection is decided at the instant the snapshot was
			// loaded; concurrent releases after that instant do not
			// retroactively invalidate it.
			return HopResult{}, err
		}
		sw.mu.Lock()
		if sw.state.Load() == st {
			sw.commitLocked(st, req, arr)
			sw.mu.Unlock()
			return res, nil
		}
		sw.mu.Unlock()
	}
	// Contended: decide under the lock. No commit can interleave, so the
	// check is authoritative and progress is guaranteed.
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := sw.state.Load()
	if st.duplicateHop(req) {
		return HopResult{}, fmt.Errorf("%w: %q at switch %q ports %d->%d",
			ErrDuplicateConn, req.Conn, sw.cfg.Name, req.In, req.Out)
	}
	res, err := sw.checkState(st, req, arr)
	if err != nil {
		return HopResult{}, err
	}
	sw.commitLocked(st, req, arr)
	return res, nil
}

// commitLocked publishes the successor of st with req's entry appended.
// Caller holds sw.mu and has verified st is the current state.
func (sw *Switch) commitLocked(st *switchState, req HopRequest, arr bitstream.Stream) {
	next := st.cloneConns()
	next[req.Conn] = append(append([]entry(nil), next[req.Conn]...),
		entry{id: req.Conn, in: req.In, out: req.Out, prio: req.Priority, arrival: arr})
	sw.state.Store(newSwitchState(next))
}

// cloneConns shallow-copies the connection map; entry slices are shared
// with the parent state and must be re-sliced copy-on-write by the caller
// for any connection it modifies.
func (st *switchState) cloneConns() map[ConnID][]entry {
	next := make(map[ConnID][]entry, len(st.conns)+1)
	for id, entries := range st.conns {
		next[id] = entries
	}
	return next
}

// Install commits the connection without running the CAC check. It is used
// for offline planning (the paper's permanent-connection mode), where a
// whole connection set is loaded and then validated once with Audit.
func (sw *Switch) Install(req HopRequest) error {
	arr, err := sw.validateRequest(req)
	if err != nil {
		return err
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := sw.state.Load()
	if st.duplicateHop(req) {
		return fmt.Errorf("%w: %q at switch %q ports %d->%d",
			ErrDuplicateConn, req.Conn, sw.cfg.Name, req.In, req.Out)
	}
	sw.commitLocked(st, req, arr)
	return nil
}

// Release removes every hop entry of an admitted connection at this
// switch (a wrapped route may have several).
func (sw *Switch) Release(id ConnID) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := sw.state.Load()
	if _, ok := st.conns[id]; !ok {
		return fmt.Errorf("%w: %q at switch %q", ErrUnknownConn, id, sw.cfg.Name)
	}
	next := st.cloneConns()
	delete(next, id)
	sw.state.Store(newSwitchState(next))
	return nil
}

// Rename atomically re-labels an admitted connection, keeping every hop
// entry and its reservations intact. It is used by signaling crankback to
// promote a winning probe setup to the caller's connection ID.
func (sw *Switch) Rename(old, new ConnID) error {
	if new == "" {
		return fmt.Errorf("%w: empty connection ID", ErrBadConfig)
	}
	if old == new {
		return nil
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := sw.state.Load()
	entries, ok := st.conns[old]
	if !ok {
		return fmt.Errorf("%w: %q at switch %q", ErrUnknownConn, old, sw.cfg.Name)
	}
	if _, ok := st.conns[new]; ok {
		return fmt.Errorf("%w: %q at switch %q", ErrDuplicateConn, new, sw.cfg.Name)
	}
	renamed := make([]entry, len(entries))
	for i, e := range entries {
		e.id = new
		renamed[i] = e
	}
	next := st.cloneConns()
	delete(next, old)
	next[new] = renamed
	sw.state.Store(newSwitchState(next))
	return nil
}

func (sw *Switch) validateRequest(req HopRequest) (bitstream.Stream, error) {
	if req.Conn == "" {
		return bitstream.Stream{}, fmt.Errorf("%w: empty connection ID", ErrBadConfig)
	}
	if _, ok := sw.cfg.QueueCells[req.Priority]; !ok {
		return bitstream.Stream{}, fmt.Errorf("%w: switch %q has no priority %d queue",
			ErrBadConfig, sw.cfg.Name, req.Priority)
	}
	// Note: incoming and outgoing port ID spaces are independent (a hop may
	// legitimately use ring-in 0 and ring-out 0), so In == Out is allowed.
	arr, err := arrivalStream(req.Spec, req.CDV)
	if err != nil {
		return bitstream.Stream{}, err
	}
	return arr, nil
}

// checkState performs Steps 1-6 of Section 4.3 against the snapshot with
// the candidate arrival stream included. It takes no locks.
func (sw *Switch) checkState(st *switchState, req HopRequest, arr bitstream.Stream) (HopResult, error) {
	extra := &entry{id: req.Conn, in: req.In, out: req.Out, prio: req.Priority, arrival: arr}
	bounds := make(map[Priority]float64)
	for _, p := range sw.cfg.priorities() {
		if p < req.Priority {
			// Higher priorities are unaffected by the new connection.
			continue
		}
		if p > req.Priority && !st.hasTraffic(req.Out, p) {
			// Lower priority with no real-time traffic: nothing to protect.
			continue
		}
		limit, _ := sw.cfg.boundFor(req.Out, p)
		d, err := st.delayBound(req.Out, p, extra)
		if err != nil {
			if errors.Is(err, bitstream.ErrUnstable) {
				return HopResult{}, &RejectionError{
					Switch: sw.cfg.Name, Out: req.Out, Priority: p,
					Bound: math.Inf(1), Limit: limit,
					Reason: "queueing point would become unstable",
					Kind:   CodeQueueUnstable,
				}
			}
			return HopResult{}, err
		}
		if d > limit+bitstream.Eps {
			return HopResult{}, &RejectionError{
				Switch: sw.cfg.Name, Out: req.Out, Priority: p,
				Bound: d, Limit: limit,
				Reason: "worst-case queueing delay exceeds the FIFO budget",
				Kind:   CodeQueueBudget,
			}
		}
		bounds[p] = d
	}
	guaranteed, _ := sw.cfg.boundFor(req.Out, req.Priority)
	return HopResult{Bounds: bounds, Guaranteed: guaranteed}, nil
}

// hasTraffic reports whether any connection of priority p leaves via out.
func (st *switchState) hasTraffic(out PortID, p Priority) bool {
	for _, entries := range st.conns {
		for _, e := range entries {
			if e.out == out && e.prio == p {
				return true
			}
		}
	}
	return false
}

// snapshot returns the current immutable state (for same-package callers
// that need a consistent multi-query view, e.g. Network.Audit).
func (sw *Switch) snapshot() *switchState {
	return sw.state.Load()
}

// ComputedBound returns the current worst-case queueing delay D'(out, p)
// with the present connection set (no candidate).
func (sw *Switch) ComputedBound(out PortID, p Priority) (float64, error) {
	if _, ok := sw.cfg.QueueCells[p]; !ok {
		return 0, fmt.Errorf("%w: switch %q has no priority %d queue", ErrBadConfig, sw.cfg.Name, p)
	}
	return sw.state.Load().delayBound(out, p, nil)
}

// MaxBacklog returns the worst-case backlog (cells) of the priority-p queue
// at the given output port with the present connection set.
func (sw *Switch) MaxBacklog(out PortID, p Priority) (float64, error) {
	if _, ok := sw.cfg.QueueCells[p]; !ok {
		return 0, fmt.Errorf("%w: switch %q has no priority %d queue", ErrBadConfig, sw.cfg.Name, p)
	}
	soa, sof := sw.state.Load().portStreams(out, p, nil)
	return bitstream.MaxBacklog(soa, sof)
}

// PortEnvelope returns the assembled worst-case streams at an output port
// for priority p: the same-priority aggregate Soa(j,p) and the filtered
// higher-priority aggregate Sof(j)(p) that Algorithm 4.1 consumes. It is
// an observability hook for tooling; the streams are snapshots and safe to
// retain.
func (sw *Switch) PortEnvelope(out PortID, p Priority) (soa, sof bitstream.Stream, err error) {
	if _, ok := sw.cfg.QueueCells[p]; !ok {
		return bitstream.Stream{}, bitstream.Stream{},
			fmt.Errorf("%w: switch %q has no priority %d queue", ErrBadConfig, sw.cfg.Name, p)
	}
	soa, sof = sw.state.Load().portStreams(out, p, nil)
	return soa, sof, nil
}

// Priorities returns the configured priority levels, highest first.
func (sw *Switch) Priorities() []Priority {
	return sw.cfg.priorities()
}

// OutPorts returns the output ports that currently carry connections, in
// ascending order.
func (sw *Switch) OutPorts() []PortID {
	st := sw.state.Load()
	seen := make(map[PortID]bool)
	for _, entries := range st.conns {
		for _, e := range entries {
			seen[e.out] = true
		}
	}
	out := make([]PortID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// delayBound computes D'(out, p) using the paper's data structures,
// optionally including a candidate entry. It takes no switch-wide locks.
func (st *switchState) delayBound(out PortID, p Priority, extra *entry) (float64, error) {
	soa, sof := st.portStreams(out, p, extra)
	return bitstream.DelayBound(soa, sof)
}

// portStreams assembles, for output port out and priority p:
//
//	Soa(j,p)  — the aggregated same-priority arrival stream: per incoming
//	            link, the multiplexed connection envelopes Sia(i,j,p)
//	            filtered by the incoming link (Sif), summed over links.
//	Sof(j)(p) — the filtered aggregate of all higher priorities: per
//	            incoming link Sia(i,j)(<p) filtered (Sif), summed (Soa),
//	            then filtered by the outgoing link.
//
// Candidate-free results are memoized in the snapshot's cache. Concurrent
// queries for the same uncached key may compute the result redundantly;
// they produce identical streams, so the last store wins harmlessly.
func (st *switchState) portStreams(out PortID, p Priority, extra *entry) (soa, sof bitstream.Stream) {
	key := portPrio{out: out, prio: p}
	if extra == nil {
		st.cacheMu.Lock()
		c, ok := st.cache[key]
		st.cacheMu.Unlock()
		if ok {
			return c.soa, c.sof
		}
	}
	same := make(map[PortID][]bitstream.Stream)   // per incoming link, priority p
	higher := make(map[PortID][]bitstream.Stream) // per incoming link, priorities < p
	collect := func(e *entry) {
		if e.out != out {
			return
		}
		switch {
		case e.prio == p:
			same[e.in] = append(same[e.in], e.arrival)
		case e.prio < p:
			higher[e.in] = append(higher[e.in], e.arrival)
		}
	}
	for _, entries := range st.conns {
		for i := range entries {
			collect(&entries[i])
		}
	}
	if extra != nil {
		collect(extra)
	}
	soa = sumFiltered(same)
	if len(higher) > 0 {
		sof = sumFiltered(higher).Filtered()
	}
	if extra == nil {
		st.cacheMu.Lock()
		st.cache[key] = cachedStreams{soa: soa, sof: sof}
		st.cacheMu.Unlock()
	}
	return soa, sof
}

// sumFiltered filters each incoming link's aggregate by that link and
// multiplexes the results (the Sif streams summed into Soa).
func sumFiltered(byLink map[PortID][]bitstream.Stream) bitstream.Stream {
	filtered := make([]bitstream.Stream, 0, len(byLink))
	for _, streams := range byLink {
		filtered = append(filtered, bitstream.Sum(streams...).Filtered())
	}
	return bitstream.Sum(filtered...)
}
