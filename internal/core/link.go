package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"atmcac/internal/obs"
)

// ErrLinkDown reports an operation on a route that traverses a failed
// inter-switch link.
var ErrLinkDown = errors.New("core: link down")

// Link identifies a directed inter-switch link by the switches at its two
// ends. A route traverses the link when it queues at From and next at To.
type Link struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// String renders the link for errors and reports.
func (l Link) String() string { return l.From + "->" + l.To }

// LinkMapper enumerates every directed link a route traverses. The default
// maps consecutive queueing points: the cell leaves hop i's switch and
// arrives at hop i+1's switch over the link between them. A topology layer
// that knows about traversals the hop sequence cannot show — e.g. a ring
// route's final delivery to a node that has no queueing point on that
// route — installs an extended mapper via SetLinkMapper so failure
// handling (setup refusal, commit re-validation, eviction) sees every
// physical traversal.
type LinkMapper func(Route) []Link

// SetLinkMapper installs fn as the route link enumerator, replacing the
// consecutive-hop default (nil restores it). It is meant to be called by
// the topology layer during network construction.
func (n *Network) SetLinkMapper(fn LinkMapper) {
	n.linkMu.Lock()
	n.linkMapper = fn
	n.linkMu.Unlock()
}

// routeLinks enumerates the links the route traverses using the installed
// mapper, or consecutive-hop adjacency by default.
func (n *Network) routeLinks(route Route) []Link {
	n.linkMu.RLock()
	fn := n.linkMapper
	n.linkMu.RUnlock()
	if fn != nil {
		return fn(route)
	}
	links := make([]Link, 0, len(route))
	for i := 0; i+1 < len(route); i++ {
		links = append(links, Link{From: route[i].Switch, To: route[i+1].Switch})
	}
	return links
}

// routeLinkDown returns an ErrLinkDown-wrapping error when the route
// traverses a currently failed link.
func (n *Network) routeLinkDown(route Route) error {
	links := n.routeLinks(route)
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	if len(n.downLinks) == 0 {
		return nil
	}
	for _, l := range links {
		if _, down := n.downLinks[l]; down {
			return fmt.Errorf("%w: %s", ErrLinkDown, l)
		}
	}
	return nil
}

// LinkDown reports whether the directed link from -> to is marked failed.
func (n *Network) LinkDown(from, to string) bool {
	n.linkMu.RLock()
	defer n.linkMu.RUnlock()
	_, down := n.downLinks[Link{From: from, To: to}]
	return down
}

// FailedLinks returns the currently failed links in deterministic order.
func (n *Network) FailedLinks() []Link {
	n.linkMu.RLock()
	links := make([]Link, 0, len(n.downLinks))
	for l := range n.downLinks {
		links = append(links, l)
	}
	n.linkMu.RUnlock()
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	return links
}

// FailLink marks the directed link from -> to as failed and evicts every
// admitted connection whose route traverses it, releasing their
// reservations at every hop. The evicted requests are returned in ID order
// so a failure controller can attempt re-admission over alternate (e.g.
// wrapped-ring) routes.
//
// The mark is published before the admitted set is scanned, and every
// in-flight Setup re-validates its route against the link state inside its
// commit section: a setup racing with FailLink either commits first (and is
// then seen and evicted by the scan) or aborts with ErrLinkDown. In both
// cases no admitted connection traverses the failed link once FailLink
// returns. Failing an already-failed link is a no-op returning no evictions.
func (n *Network) FailLink(from, to string) ([]ConnRequest, error) {
	if from == "" || to == "" || from == to {
		return nil, fmt.Errorf("%w: invalid link %s->%s", ErrBadConfig, from, to)
	}
	for _, name := range []string{from, to} {
		if _, ok := n.Switch(name); !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSwitch, name)
		}
	}
	start := time.Now()
	l := Link{From: from, To: to}
	n.linkMu.Lock()
	if _, down := n.downLinks[l]; down {
		n.linkMu.Unlock()
		return nil, nil
	}
	n.downLinks[l] = struct{}{}
	n.linkMu.Unlock()

	// Collect and unregister the traversing connections atomically, then
	// release their switch reservations outside the lock.
	n.connMu.Lock()
	var evicted []ConnRequest
	for id, req := range n.admitted {
		for _, rl := range n.routeLinks(req.Route) {
			if rl == l {
				cp := req
				cp.Route = append(Route(nil), req.Route...)
				evicted = append(evicted, cp)
				delete(n.admitted, id)
				break
			}
		}
	}
	n.connMu.Unlock()
	sort.Slice(evicted, func(i, j int) bool { return evicted[i].ID < evicted[j].ID })
	for _, req := range evicted {
		// Release cannot fail here: the connection was admitted and its
		// switches cannot be removed from the network.
		_ = n.releaseRoute(req.ID, req.Route)
	}
	if tr := n.getTracer(); tr != nil {
		tr.Trace(obs.Event{
			Kind:     obs.KindFailLink,
			Link:     l.String(),
			Evicted:  len(evicted),
			Duration: time.Since(start),
		})
	}
	return evicted, nil
}

// RestoreLink clears the failure mark of the directed link from -> to. New
// setups may use the link again; evicted connections are not re-admitted
// automatically (re-admission is a policy decision — see internal/failover).
func (n *Network) RestoreLink(from, to string) error {
	l := Link{From: from, To: to}
	n.linkMu.Lock()
	if _, down := n.downLinks[l]; !down {
		n.linkMu.Unlock()
		return fmt.Errorf("%w: link %s is not failed", ErrBadConfig, l)
	}
	delete(n.downLinks, l)
	n.linkMu.Unlock()
	if tr := n.getTracer(); tr != nil {
		tr.Trace(obs.Event{
			Kind:    obs.KindRestoreLink,
			Link:    l.String(),
			Outcome: obs.OutcomeOK,
		})
	}
	return nil
}
