package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"atmcac/internal/bitstream"
	"atmcac/internal/obs"
	"atmcac/internal/traffic"
)

// CDVPolicy accumulates upstream per-hop delay bounds into the cell delay
// variation used to clump a connection's arrival envelope at the next hop
// (Section 4.3, discussion 1).
type CDVPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Accumulate combines the guaranteed delay bounds of the upstream
	// queueing points into a CDV, in cell times.
	Accumulate(upstreamBounds []float64) float64
}

// HardCDV is the hard real-time policy: the CDV is the plain sum of the
// upstream maximum queueing delays — the true worst case.
type HardCDV struct{}

// Name implements CDVPolicy.
func (HardCDV) Name() string { return "hard" }

// Accumulate implements CDVPolicy.
func (HardCDV) Accumulate(upstreamBounds []float64) float64 {
	sum := 0.0
	for _, d := range upstreamBounds {
		sum += d
	}
	return sum
}

// SoftCDV is the soft real-time policy the paper suggests: a square-root
// summation of upstream bounds, exploiting that a cell is very unlikely to
// suffer the maximum queueing delay at every hop simultaneously.
type SoftCDV struct{}

// Name implements CDVPolicy.
func (SoftCDV) Name() string { return "soft" }

// Accumulate implements CDVPolicy.
func (SoftCDV) Accumulate(upstreamBounds []float64) float64 {
	sum := 0.0
	for _, d := range upstreamBounds {
		sum += d * d
	}
	return math.Sqrt(sum)
}

var (
	_ CDVPolicy = HardCDV{}
	_ CDVPolicy = SoftCDV{}
)

// Hop is one queueing point on a connection's route.
type Hop struct {
	Switch string `json:"switch"`
	In     PortID `json:"in"`
	Out    PortID `json:"out"`
}

// Route is the ordered list of queueing points a connection traverses.
type Route []Hop

// ConnRequest is a network-level connection setup request, carrying the
// paper's (PCR, SCR, MBS, D) parameters plus the route and priority.
type ConnRequest struct {
	ID       ConnID       `json:"id"`
	Spec     traffic.Spec `json:"spec"`
	Priority Priority     `json:"priority"`
	Route    Route        `json:"route"`
	// DelayBound is the requested end-to-end queueing delay bound D in
	// cell times; 0 means no end-to-end requirement (per-hop guarantees
	// still apply).
	DelayBound float64 `json:"delayBound,omitempty"`
	// SourceCDV is the delay variation already accumulated before the
	// first hop (e.g. at the sending terminal), in cell times.
	SourceCDV float64 `json:"sourceCDV,omitempty"`
}

func (r ConnRequest) validate() error {
	if r.ID == "" {
		return fmt.Errorf("%w: empty connection ID", ErrBadConfig)
	}
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	if len(r.Route) == 0 {
		return fmt.Errorf("%w: connection %q has an empty route", ErrBadConfig, r.ID)
	}
	if r.DelayBound < 0 || r.SourceCDV < 0 {
		return fmt.Errorf("%w: connection %q has negative delay parameters", ErrBadConfig, r.ID)
	}
	return nil
}

// Admission summarizes a successful end-to-end connection setup.
type Admission struct {
	ID ConnID
	// PerHopGuaranteed are the fixed bounds D(j,p) of each hop: what the
	// network contractually guarantees and what feeds CDV accumulation.
	PerHopGuaranteed []float64
	// PerHopComputed are the load-dependent computed bounds D'(j,p) at
	// admission time — the quantity the paper's Figure 10 plots.
	PerHopComputed []float64
	// EndToEndGuaranteed is the sum of the fixed per-hop bounds.
	EndToEndGuaranteed float64
	// EndToEndComputed is the sum of the computed per-hop bounds.
	EndToEndComputed float64
}

// Violation reports a queue whose computed bound exceeds its guarantee,
// found by Network.Audit.
type Violation struct {
	Switch   string
	Out      PortID
	Priority Priority
	Bound    float64 // +Inf when the queueing point is unstable
	Limit    float64
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("switch %q out %d priority %d: bound %.4g > limit %.4g",
		v.Switch, v.Out, v.Priority, v.Bound, v.Limit)
}

// Network is a set of CAC switches with a shared CDV accumulation policy.
// It performs end-to-end connection setup (sequential hop-by-hop admission
// with rollback, mirroring the SETUP/REJECT signaling of Section 4.1) and
// offline planning (bulk install + audit, the mode the current RTnet uses
// for permanent connections).
//
// There is no network-wide admission lock: the switch registry is guarded
// by a read-write lock (reads are the hot path; switches are added at
// startup), connection bookkeeping by its own mutex, and all per-hop CAC
// state by the per-switch snapshot machinery, so concurrent setups on
// disjoint routes proceed fully in parallel and setups on overlapping
// routes serialize only inside each shared switch's short commit section.
type Network struct {
	policy CDVPolicy

	// switchMu guards the switch registry only.
	switchMu sync.RWMutex
	switches map[string]*Switch

	// connMu guards admitted and pending. A setup in flight reserves its
	// ID in pending so concurrent setups of the same ID are rejected as
	// duplicates instead of racing hop commits.
	connMu   sync.Mutex
	admitted map[ConnID]ConnRequest
	pending  map[ConnID]struct{}

	// linkMu guards downLinks, the set of failed inter-switch links, and
	// linkMapper, the topology-provided route link enumerator. FailLink
	// publishes the mark here before scanning admitted, and commitID
	// re-reads it under connMu, which closes the race between a link
	// failing and a setup over it committing (see FailLink).
	linkMu     sync.RWMutex
	downLinks  map[Link]struct{}
	linkMapper LinkMapper

	// trMu guards tracer, the network-wide trace sink installed with
	// SetTracer. Per-call sinks (WithTracer) fan out alongside it.
	trMu   sync.RWMutex
	tracer obs.Tracer
}

// NewNetwork returns an empty network using the given CDV policy.
func NewNetwork(policy CDVPolicy) *Network {
	if policy == nil {
		policy = HardCDV{}
	}
	return &Network{
		policy:    policy,
		switches:  make(map[string]*Switch),
		admitted:  make(map[ConnID]ConnRequest),
		pending:   make(map[ConnID]struct{}),
		downLinks: make(map[Link]struct{}),
	}
}

// Policy returns the network's CDV accumulation policy.
func (n *Network) Policy() CDVPolicy { return n.policy }

// SetTracer installs t as the network-wide trace sink: every Setup,
// Teardown, FailLink, RestoreLink and Audit emits structured obs events
// into it. nil disables tracing. Safe to call concurrently with admissions,
// though the intended use is once at startup.
func (n *Network) SetTracer(t obs.Tracer) {
	n.trMu.Lock()
	n.tracer = t
	n.trMu.Unlock()
}

// getTracer returns the installed network-wide sink (nil when tracing is
// off — emitters keep a fast-path nil check).
func (n *Network) getTracer() obs.Tracer {
	n.trMu.RLock()
	t := n.tracer
	n.trMu.RUnlock()
	return t
}

// AddSwitch creates and registers a switch.
func (n *Network) AddSwitch(cfg SwitchConfig) (*Switch, error) {
	sw, err := NewSwitch(cfg)
	if err != nil {
		return nil, err
	}
	n.switchMu.Lock()
	defer n.switchMu.Unlock()
	if _, ok := n.switches[cfg.Name]; ok {
		return nil, fmt.Errorf("%w: switch %q already exists", ErrBadConfig, cfg.Name)
	}
	n.switches[cfg.Name] = sw
	return sw, nil
}

// Switch returns a registered switch by name.
func (n *Network) Switch(name string) (*Switch, bool) {
	n.switchMu.RLock()
	defer n.switchMu.RUnlock()
	sw, ok := n.switches[name]
	return sw, ok
}

// SwitchNames returns the registered switch names in sorted order.
func (n *Network) SwitchNames() []string {
	n.switchMu.RLock()
	defer n.switchMu.RUnlock()
	names := make([]string, 0, len(n.switches))
	for name := range n.switches {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Connections returns the IDs of admitted connections in sorted order.
func (n *Network) Connections() []ConnID {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	ids := make([]ConnID, 0, len(n.admitted))
	for id := range n.admitted {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AdmittedRequests returns copies of the admitted connection requests in
// ID order — the network's durable state, used for persistence.
func (n *Network) AdmittedRequests() []ConnRequest {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	reqs := make([]ConnRequest, 0, len(n.admitted))
	for _, req := range n.admitted {
		cp := req
		cp.Route = make(Route, len(req.Route))
		copy(cp.Route, req.Route)
		reqs = append(reqs, cp)
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].ID < reqs[j].ID })
	return reqs
}

// AdmittedRequest returns a copy of one admitted connection request.
func (n *Network) AdmittedRequest(id ConnID) (ConnRequest, bool) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	req, ok := n.admitted[id]
	if !ok {
		return ConnRequest{}, false
	}
	cp := req
	cp.Route = append(Route(nil), req.Route...)
	return cp, true
}

// reserveID claims req.ID for an in-flight setup; the caller must resolve
// the reservation with commitID or abandonID.
func (n *Network) reserveID(id ConnID) error {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if _, ok := n.admitted[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateConn, id)
	}
	if _, ok := n.pending[id]; ok {
		return fmt.Errorf("%w: %q (setup in progress)", ErrDuplicateConn, id)
	}
	n.pending[id] = struct{}{}
	return nil
}

// commitID turns a reservation into an admission. It re-validates the
// route's link state inside the critical section: a link that failed after
// the pre-setup check must abort the commit (the caller rolls the hop
// reservations back), otherwise a connection over a dead link could slip
// past FailLink's eviction scan.
func (n *Network) commitID(req ConnRequest) error {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	delete(n.pending, req.ID)
	if err := n.routeLinkDown(req.Route); err != nil {
		return fmt.Errorf("%w (failed during setup of %q)", err, req.ID)
	}
	n.admitted[req.ID] = req
	return nil
}

// abandonID drops a reservation after a failed setup.
func (n *Network) abandonID(id ConnID) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	delete(n.pending, id)
}

// resolveRoute maps a route onto switches and collects their fixed bounds.
func (n *Network) resolveRoute(req ConnRequest) ([]*Switch, []float64, error) {
	n.switchMu.RLock()
	defer n.switchMu.RUnlock()
	switches := make([]*Switch, len(req.Route))
	guaranteed := make([]float64, len(req.Route))
	for i, hop := range req.Route {
		sw, ok := n.switches[hop.Switch]
		if !ok {
			return nil, nil, fmt.Errorf("%w: %q (hop %d of connection %q)",
				ErrUnknownSwitch, hop.Switch, i, req.ID)
		}
		d, ok := sw.GuaranteedBoundAt(hop.Out, req.Priority)
		if !ok {
			return nil, nil, fmt.Errorf("%w: switch %q has no priority %d queue",
				ErrBadConfig, hop.Switch, req.Priority)
		}
		switches[i] = sw
		guaranteed[i] = d
	}
	return switches, guaranteed, nil
}

// SetupOption customizes one Setup call via the functional-options
// pattern; the zero configuration (no options) is the plain admission.
type SetupOption func(*setupConfig)

type setupConfig struct {
	tracer      obs.Tracer
	retryBudget int
}

// WithTracer adds a per-call trace sink alongside the network-wide one
// installed by SetTracer. Events from this Setup fan out to both.
func WithTracer(t obs.Tracer) SetupOption {
	return func(c *setupConfig) { c.tracer = obs.Multi(c.tracer, t) }
}

// WithRetryBudget allows up to n whole-setup re-attempts after a CAC
// rejection (ErrRejected only — configuration and link errors do not
// retry, and a canceled context stops immediately). A rejected setup
// leaves no reservations behind, so a retry is a clean re-run; it can
// succeed when concurrent teardowns free capacity between attempts.
// The consumed retries are reported in the setup trace event.
func WithRetryBudget(n int) SetupOption {
	return func(c *setupConfig) {
		if n > 0 {
			c.retryBudget = n
		}
	}
}

// Setup establishes a connection hop by hop, mirroring the distributed
// SETUP procedure: each switch on the route runs the CAC check; the first
// rejection rolls back all upstream commitments and the error (wrapping
// ErrRejected for CAC failures) is returned.
//
// Each hop's admission is itself two-phase (snapshot check, then validated
// commit — see Switch.Admit), so concurrent setups hold no lock during the
// bit-stream math and serialize only inside the short per-switch commit
// sections they actually share.
//
// The context bounds the whole setup: the deadline is checked before each
// hop's admission, and an expired context rolls every upstream reservation
// back and returns the context error — a setup abandoned by its deadline
// never leaves partial reservations behind. An admitted connection is
// never evicted by a late cancellation: once the last hop commits, the
// setup completes. Options attach a per-call trace sink and a rejection
// retry budget; this is the one instrumented admission path — every other
// entry point (wire, failover, planning) funnels through it.
func (n *Network) Setup(ctx context.Context, req ConnRequest, opts ...SetupOption) (*Admission, error) {
	var cfg setupConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	tr := obs.Multi(n.getTracer(), cfg.tracer)

	start := time.Now()
	var adm *Admission
	var err error
	retries := 0
	for attempt := 0; ; attempt++ {
		adm, err = n.setupOnce(ctx, req, tr)
		if err == nil || attempt >= cfg.retryBudget ||
			!errors.Is(err, ErrRejected) || ctx.Err() != nil {
			retries = attempt
			break
		}
	}
	if tr != nil {
		ev := obs.Event{
			Kind:     obs.KindSetup,
			Conn:     string(req.ID),
			Hops:     len(req.Route),
			Retries:  retries,
			Duration: time.Since(start),
		}
		switch {
		case err == nil:
			ev.Outcome = obs.OutcomeAccepted
		case errors.Is(err, ErrRejected):
			ev.Outcome = obs.OutcomeRejected
			ev.Code = ErrorCode(err)
		default:
			ev.Outcome = obs.OutcomeError
			ev.Code = ErrorCode(err)
		}
		tr.Trace(ev)
	}
	return adm, err
}

// SetupContext is the pre-options spelling of Setup.
//
// Deprecated: call Setup(ctx, req) directly; it accepts the same context
// and adds functional options.
func (n *Network) SetupContext(ctx context.Context, req ConnRequest) (*Admission, error) {
	return n.Setup(ctx, req)
}

// setupOnce runs one full admission attempt: validation, link check, ID
// reservation, hop-by-hop CAC, commit.
func (n *Network) setupOnce(ctx context.Context, req ConnRequest, tr obs.Tracer) (*Admission, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: setup of %q abandoned: %w", req.ID, err)
	}
	if err := n.routeLinkDown(req.Route); err != nil {
		return nil, fmt.Errorf("%w (setup of %q refused)", err, req.ID)
	}
	if err := n.reserveID(req.ID); err != nil {
		return nil, err
	}

	adm, err := n.setupHops(ctx, req, tr)
	if err != nil {
		n.abandonID(req.ID)
		return nil, err
	}
	if err := n.commitID(req); err != nil {
		_ = n.releaseRoute(req.ID, req.Route)
		return nil, err
	}
	return adm, nil
}

// setupHops runs the hop-by-hop admission with rollback; the caller has
// reserved req.ID.
func (n *Network) setupHops(ctx context.Context, req ConnRequest, tr obs.Tracer) (*Admission, error) {
	switches, guaranteed, err := n.resolveRoute(req)
	if err != nil {
		return nil, err
	}
	e2eGuaranteed := HardCDV{}.Accumulate(guaranteed)
	if req.DelayBound > 0 && e2eGuaranteed > req.DelayBound {
		return nil, &RejectionError{
			Switch:   "(end-to-end)",
			Priority: req.Priority,
			Bound:    e2eGuaranteed,
			Limit:    req.DelayBound,
			Reason:   "sum of per-hop guarantees exceeds the requested delay bound",
			Kind:     CodeDelayBound,
		}
	}

	computed := make([]float64, 0, len(switches))
	for i, sw := range switches {
		if err := ctx.Err(); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = switches[j].Release(req.ID)
			}
			return nil, fmt.Errorf("core: setup of %q abandoned at hop %d: %w", req.ID, i, err)
		}
		cdv := req.SourceCDV + n.policy.Accumulate(guaranteed[:i])
		hopStart := time.Now()
		res, err := sw.Admit(HopRequest{
			Conn:     req.ID,
			Spec:     req.Spec,
			In:       req.Route[i].In,
			Out:      req.Route[i].Out,
			Priority: req.Priority,
			CDV:      cdv,
		})
		if tr != nil {
			ev := obs.Event{
				Kind:     obs.KindHopCheck,
				Conn:     string(req.ID),
				Switch:   req.Route[i].Switch,
				Duration: time.Since(hopStart),
			}
			if err != nil {
				ev.Outcome = obs.OutcomeRejected
				if !errors.Is(err, ErrRejected) {
					ev.Outcome = obs.OutcomeError
				}
				ev.Code = ErrorCode(err)
			} else {
				// Slack is how far the computed bound D'(j,p) sat below
				// the guarantee D(j,p) at admission, in cell times.
				ev.Outcome = obs.OutcomeAccepted
				ev.Slack = guaranteed[i] - res.Bounds[req.Priority]
			}
			tr.Trace(ev)
		}
		if err != nil {
			// REJECT travels back upstream: release earlier hops.
			for j := i - 1; j >= 0; j-- {
				// Release cannot fail here: the connection was just
				// admitted at hop j and IDs are unique per network.
				_ = switches[j].Release(req.ID)
			}
			return nil, err
		}
		computed = append(computed, res.Bounds[req.Priority])
	}

	adm := &Admission{
		ID:                 req.ID,
		PerHopGuaranteed:   guaranteed,
		PerHopComputed:     computed,
		EndToEndGuaranteed: e2eGuaranteed,
	}
	for _, d := range computed {
		adm.EndToEndComputed += d
	}
	return adm, nil
}

// Teardown releases a connection at every hop of its route.
func (n *Network) Teardown(id ConnID) error {
	start := time.Now()
	err := n.teardown(id)
	if tr := n.getTracer(); tr != nil {
		ev := obs.Event{
			Kind:     obs.KindTeardown,
			Conn:     string(id),
			Outcome:  obs.OutcomeOK,
			Duration: time.Since(start),
		}
		if err != nil {
			ev.Outcome = obs.OutcomeError
			ev.Code = ErrorCode(err)
		}
		tr.Trace(ev)
	}
	return err
}

func (n *Network) teardown(id ConnID) error {
	n.connMu.Lock()
	req, ok := n.admitted[id]
	if ok {
		delete(n.admitted, id)
	}
	n.connMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownConn, id)
	}
	return n.releaseRoute(id, req.Route)
}

// releaseRoute releases the connection's reservations at every switch of
// the route. A wrapped route may visit the same switch twice; Release
// removes all of the connection's hop entries at once, so each switch is
// released exactly once.
func (n *Network) releaseRoute(id ConnID, route Route) error {
	released := make(map[string]bool, len(route))
	for _, hop := range route {
		if released[hop.Switch] {
			continue
		}
		released[hop.Switch] = true
		sw, swOK := n.Switch(hop.Switch)
		if !swOK {
			return fmt.Errorf("%w: %q while tearing down %q", ErrUnknownSwitch, hop.Switch, id)
		}
		if err := sw.Release(id); err != nil {
			return fmt.Errorf("teardown %q: %w", id, err)
		}
	}
	return nil
}

// Install loads a connection at every hop without running CAC checks. It is
// the offline-planning path: with fixed per-switch bounds, admissibility of
// a connection set is order-independent, so a whole set can be installed
// and then validated once with Audit.
func (n *Network) Install(req ConnRequest) error {
	if err := req.validate(); err != nil {
		return err
	}
	if err := n.routeLinkDown(req.Route); err != nil {
		return fmt.Errorf("%w (install of %q refused)", err, req.ID)
	}
	if err := n.reserveID(req.ID); err != nil {
		return err
	}
	switches, guaranteed, err := n.resolveRoute(req)
	if err != nil {
		n.abandonID(req.ID)
		return err
	}
	for i, sw := range switches {
		cdv := req.SourceCDV + n.policy.Accumulate(guaranteed[:i])
		err := sw.Install(HopRequest{
			Conn:     req.ID,
			Spec:     req.Spec,
			In:       req.Route[i].In,
			Out:      req.Route[i].Out,
			Priority: req.Priority,
			CDV:      cdv,
		})
		if err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = switches[j].Release(req.ID)
			}
			n.abandonID(req.ID)
			return err
		}
	}
	if err := n.commitID(req); err != nil {
		_ = n.releaseRoute(req.ID, req.Route)
		return err
	}
	return nil
}

// Audit recomputes the worst-case delay bound of every (switch, output
// port, priority) queue carrying traffic and returns the queues whose bound
// exceeds their guarantee. An empty result means the installed connection
// set is admissible. Each switch is audited against one consistent
// snapshot; admissions committing concurrently are seen entirely or not at
// all per switch.
func (n *Network) Audit() ([]Violation, error) {
	start := time.Now()
	violations, err := n.audit()
	if tr := n.getTracer(); err == nil && tr != nil {
		tr.Trace(obs.Event{
			Kind:       obs.KindAudit,
			Violations: len(violations),
			Duration:   time.Since(start),
		})
	}
	return violations, err
}

func (n *Network) audit() ([]Violation, error) {
	n.switchMu.RLock()
	switches := make([]*Switch, 0, len(n.switches))
	for _, sw := range n.switches {
		switches = append(switches, sw)
	}
	n.switchMu.RUnlock()
	sort.Slice(switches, func(i, j int) bool { return switches[i].Name() < switches[j].Name() })

	var violations []Violation
	for _, sw := range switches {
		st := sw.snapshot()
		for _, out := range sw.OutPorts() {
			for _, p := range sw.cfg.priorities() {
				if !st.hasTraffic(out, p) {
					continue
				}
				limit, _ := sw.cfg.boundFor(out, p)
				d, err := st.delayBound(out, p, nil)
				if err != nil {
					if errors.Is(err, bitstream.ErrUnstable) {
						violations = append(violations, Violation{
							Switch: sw.Name(), Out: out, Priority: p,
							Bound: math.Inf(1), Limit: limit,
						})
						continue
					}
					return nil, err
				}
				if d > limit+1e-9 {
					violations = append(violations, Violation{
						Switch: sw.Name(), Out: out, Priority: p,
						Bound: d, Limit: limit,
					})
				}
			}
		}
	}
	return violations, nil
}

// AssignPriority picks the least urgent (numerically largest) priority of
// the ladder whose contractual end-to-end guarantee along the route still
// meets the requested budget — the paper's guidance that "connections
// requesting large delay bounds can be assigned low priority levels", made
// mechanical. The guarantee is the hard (sum) accumulation of the per-hop
// bounds of the candidate priority. It returns ErrRejected when even the
// highest priority cannot meet the budget.
func (n *Network) AssignPriority(route Route, budget float64) (Priority, error) {
	if len(route) == 0 || !(budget > 0) {
		return 0, fmt.Errorf("%w: AssignPriority needs a route and a positive budget", ErrBadConfig)
	}
	// Candidate priorities: those configured at every hop.
	first, ok := n.Switch(route[0].Switch)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownSwitch, route[0].Switch)
	}
	var best Priority
	found := false
	for _, p := range first.cfg.priorities() {
		total := 0.0
		feasible := true
		for _, hop := range route {
			sw, ok := n.Switch(hop.Switch)
			if !ok {
				return 0, fmt.Errorf("%w: %q", ErrUnknownSwitch, hop.Switch)
			}
			d, ok := sw.GuaranteedBoundAt(hop.Out, p)
			if !ok {
				feasible = false
				break
			}
			total += d
		}
		if !feasible || total > budget {
			continue
		}
		if !found || p > best {
			best = p
			found = true
		}
	}
	if !found {
		return 0, &RejectionError{
			Switch:   "(end-to-end)",
			Bound:    math.Inf(1),
			Limit:    budget,
			Reason:   "no priority level's guarantee meets the requested budget",
			Priority: 0,
			Kind:     CodeNoPriority,
		}
	}
	return best, nil
}

// RouteBound sums the current computed per-hop bounds D'(j,p) along a route
// for a given priority: the end-to-end worst-case queueing delay of a
// connection following that route under the present load (the quantity
// plotted in the paper's Figure 10).
func (n *Network) RouteBound(route Route, p Priority) (float64, error) {
	total := 0.0
	for i, hop := range route {
		sw, ok := n.Switch(hop.Switch)
		if !ok {
			return 0, fmt.Errorf("%w: %q (hop %d)", ErrUnknownSwitch, hop.Switch, i)
		}
		d, err := sw.ComputedBound(hop.Out, p)
		if err != nil {
			return 0, fmt.Errorf("route bound at switch %q hop %d: %w", hop.Switch, i, err)
		}
		total += d
	}
	return total, nil
}
