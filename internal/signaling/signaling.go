// Package signaling implements the distributed connection setup procedure
// of the paper's Section 4.1 over an in-process message fabric: a source
// sends a SETUP message carrying (PCR, SCR, MBS, D) along a preselected
// route; every switch runs the CAC check and forwards the SETUP downstream
// on success or sends a REJECT back upstream (releasing reservations hop by
// hop) on failure; the destination's CONNECTED message completes the setup.
//
// Each switching node runs one goroutine draining an unbounded mailbox, so
// the protocol is deadlock-free on cyclic (ring) topologies and processes
// admissions serially per node, exactly like a switch control processor.
package signaling

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"atmcac/internal/core"
	"atmcac/internal/overload"
)

var (
	// ErrClosed reports use of a closed fabric.
	ErrClosed = errors.New("signaling: fabric closed")
	// ErrUnknownNode reports a route hop through an unregistered node.
	ErrUnknownNode = errors.New("signaling: unknown node")
	// ErrDuplicate reports a connection ID already in use.
	ErrDuplicate = errors.New("signaling: duplicate connection")
	// ErrUnknownConn reports a disconnect for an unknown connection.
	ErrUnknownConn = errors.New("signaling: unknown connection")
	// ErrSuppressed reports a setup whose every candidate route is
	// currently suppressed by the per-route circuit breaker — the caller
	// should back off instead of probing dead routes.
	ErrSuppressed = errors.New("signaling: all candidate routes suppressed by circuit breaker")
)

// kind enumerates protocol messages.
type kind int

const (
	kindSetup kind = iota + 1
	kindReject
	kindConnected
	kindTeardown
)

// message is one protocol PDU.
type message struct {
	kind kind
	req  core.ConnRequest
	hop  int // index into req.Route this message is addressed to
	// guaranteed and computed per-hop bounds accumulated so far.
	guaranteed []float64
	computed   []float64
	// reject carries the downstream failure back upstream.
	rejectErr error
}

// Result is the outcome of a completed setup, mirroring core.Admission.
type Result struct {
	ID                 core.ConnID
	PerHopGuaranteed   []float64
	PerHopComputed     []float64
	EndToEndGuaranteed float64
	EndToEndComputed   float64
}

// Node is one switching node of the fabric: a CAC switch plus its control
// goroutine.
type Node struct {
	name   string
	sw     *core.Switch
	fabric *Fabric
	mb     *mailbox
	done   chan struct{}
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Switch exposes the node's CAC state (for inspection in tests and tools).
func (n *Node) Switch() *core.Switch { return n.sw }

// Fabric is a set of signaling nodes plus the origin-side bookkeeping for
// in-flight setups.
type Fabric struct {
	policy core.CDVPolicy

	mu          sync.Mutex
	nodes       map[string]*Node
	pending     map[core.ConnID]chan outcome
	established map[core.ConnID]core.ConnRequest
	downLinks   map[core.Link]struct{}
	closed      bool
}

type outcome struct {
	result *Result
	err    error
}

// NewFabric returns an empty fabric with the given CDV policy (nil means
// hard).
func NewFabric(policy core.CDVPolicy) *Fabric {
	if policy == nil {
		policy = core.HardCDV{}
	}
	return &Fabric{
		policy:      policy,
		nodes:       make(map[string]*Node),
		pending:     make(map[core.ConnID]chan outcome),
		established: make(map[core.ConnID]core.ConnRequest),
		downLinks:   make(map[core.Link]struct{}),
	}
}

// AddNode registers a switching node and starts its control goroutine.
func (f *Fabric) AddNode(cfg core.SwitchConfig) (*Node, error) {
	sw, err := core.NewSwitch(cfg)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if _, ok := f.nodes[cfg.Name]; ok {
		return nil, fmt.Errorf("%w: duplicate node %q", core.ErrBadConfig, cfg.Name)
	}
	n := &Node{
		name:   cfg.Name,
		sw:     sw,
		fabric: f,
		mb:     newMailbox(),
		done:   make(chan struct{}),
	}
	f.nodes[cfg.Name] = n
	go n.run()
	return n, nil
}

// Node returns a registered node.
func (f *Fabric) Node(name string) (*Node, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	return n, ok
}

// Close stops every node goroutine and waits for them to exit. In-flight
// setups receive ErrClosed.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	nodes := make([]*Node, 0, len(f.nodes))
	for _, n := range f.nodes {
		nodes = append(nodes, n)
	}
	pending := f.pending
	f.pending = make(map[core.ConnID]chan outcome)
	f.mu.Unlock()

	for _, n := range nodes {
		n.mb.close()
	}
	for _, n := range nodes {
		<-n.done
	}
	for _, ch := range pending {
		ch <- outcome{err: ErrClosed}
	}
}

// deliver routes a message to the node owning the given hop.
func (f *Fabric) deliver(msg message) {
	hop := msg.req.Route[msg.hop]
	f.mu.Lock()
	n, ok := f.nodes[hop.Switch]
	f.mu.Unlock()
	if !ok {
		// Routes are validated before the first SETUP leaves the origin,
		// so this indicates a node removed mid-flight; fail the setup.
		f.finish(msg.req.ID, outcome{err: fmt.Errorf("%w: %q", ErrUnknownNode, hop.Switch)})
		return
	}
	n.mb.put(msg)
}

// finish resolves a pending setup.
func (f *Fabric) finish(id core.ConnID, oc outcome) {
	f.mu.Lock()
	ch, ok := f.pending[id]
	if ok {
		delete(f.pending, id)
	}
	f.mu.Unlock()
	if ok {
		ch <- oc
	}
}

// Connect runs the distributed setup for req and blocks until CONNECTED,
// REJECT, or context cancellation. On success the connection is established
// at every hop; on rejection all upstream reservations have been released.
//
// Cancelling the context abandons the wait but does not abort the protocol:
// an eventually-successful setup stays established (call Disconnect to
// release it).
func (f *Fabric) Connect(ctx context.Context, req core.ConnRequest) (*Result, error) {
	if len(req.Route) == 0 {
		return nil, fmt.Errorf("%w: connection %q has an empty route", core.ErrBadConfig, req.ID)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := f.pending[req.ID]; ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, req.ID)
	}
	if _, ok := f.established[req.ID]; ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, req.ID)
	}
	for _, hop := range req.Route {
		if _, ok := f.nodes[hop.Switch]; !ok {
			f.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, hop.Switch)
		}
	}
	if l, down := f.routeDownLocked(req.Route); down {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (setup of %q refused)", core.ErrLinkDown, l, req.ID)
	}
	ch := make(chan outcome, 1)
	f.pending[req.ID] = ch
	f.mu.Unlock()

	f.deliver(message{kind: kindSetup, req: req, hop: 0})

	select {
	case oc := <-ch:
		if oc.err != nil {
			return nil, oc.err
		}
		if err := f.recordEstablished(req); err != nil {
			return nil, err
		}
		return oc.result, nil
	case <-ctx.Done():
		// Leave the pending entry so a late CONNECTED still records the
		// establishment; replace the channel consumer with bookkeeping.
		go func() {
			oc := <-ch
			if oc.err == nil {
				_ = f.recordEstablished(req)
			}
		}()
		return nil, ctx.Err()
	}
}

// SetupOptions tunes ConnectAnyOpts with the overload-control policy of
// one setup attempt.
type SetupOptions struct {
	// RetryBudget caps the total number of route attempts (parallel
	// probes plus serial crankback retries) one setup may spend. Zero
	// means the classic behaviour: one probe per candidate plus one
	// serial pass when every probe was rejected.
	RetryBudget int
	// Breaker, when non-nil, suppresses candidate routes whose breaker
	// is open and records each attempt's outcome, so routes behind a
	// failed link stop being probed after a few rejections instead of
	// feeding a crankback storm.
	Breaker *overload.RouteBreaker
}

// RouteKey derives the circuit-breaker key of a route: the ordered switch
// names. Port detail is deliberately dropped — what fails together (a
// link, a saturated switch) is shared by every port-level variant.
func RouteKey(route core.Route) string {
	names := make([]string, len(route))
	for i, hop := range route {
		names[i] = hop.Switch
	}
	return strings.Join(names, ">")
}

// candidate is one breaker-approved route with its caller-visible index.
type candidate struct {
	idx   int
	route core.Route
}

// record feeds one attempt outcome to the breaker: successes close the
// route, CAC rejections and dead links count toward opening it; errors
// that say nothing about the route (cancellation, closed fabric) are not
// recorded.
func (o SetupOptions) record(route core.Route, err error) {
	if o.Breaker == nil {
		return
	}
	switch {
	case err == nil:
		o.Breaker.RecordSuccess(RouteKey(route))
	case crankbackErr(err):
		o.Breaker.RecordFailure(RouteKey(route))
	}
}

// ConnectAny attempts the setup over the candidate routes and returns a
// success together with the index of the route that carried it — the
// crankback behaviour of ATM signaling: a REJECT releases every upstream
// reservation and the source retries over an alternate route.
//
// With more than one candidate the routes are evaluated in parallel: each
// candidate runs a full distributed setup under a hidden probe ID, the
// lowest-indexed viable outcome wins (mirroring the serial preference
// order), surplus successes are released, and the winner's reservations
// are atomically re-labelled to req.ID. Probes briefly reserve capacity on
// every candidate simultaneously, so if all of them are rejected — which
// can be an artifact of the probes contending with each other — the
// candidates are retried serially before the rejection is final. Decisions
// are therefore never more conservative than the serial crankback.
//
// Non-CAC errors abort the setup; if every route is rejected, the last
// rejection is returned. Like Connect, cancelling the context abandons the
// wait but does not abort the protocol. Connection IDs containing a NUL
// byte are reserved for probe attempts.
func (f *Fabric) ConnectAny(ctx context.Context, req core.ConnRequest, routes []core.Route) (*Result, int, error) {
	return f.ConnectAnyOpts(ctx, req, routes, SetupOptions{})
}

// ConnectAnyOpts is ConnectAny under an explicit overload-control policy:
// candidate routes suppressed by the circuit breaker are skipped (every
// candidate suppressed yields ErrSuppressed), attempt outcomes are
// recorded, and the crankback retry budget bounds how many route attempts
// the setup may spend before the last rejection becomes final.
func (f *Fabric) ConnectAnyOpts(ctx context.Context, req core.ConnRequest, routes []core.Route, opts SetupOptions) (*Result, int, error) {
	if len(routes) == 0 {
		return nil, -1, fmt.Errorf("%w: no candidate routes for %q", core.ErrBadConfig, req.ID)
	}
	cands := make([]candidate, 0, len(routes))
	for i, route := range routes {
		if opts.Breaker != nil && !opts.Breaker.Allow(RouteKey(route)) {
			continue
		}
		cands = append(cands, candidate{idx: i, route: route})
	}
	if len(cands) == 0 {
		return nil, -1, fmt.Errorf("%w: all %d candidates of %q", ErrSuppressed, len(routes), req.ID)
	}
	// The classic behaviour spends one probe per candidate plus one
	// serial pass to rule out probe self-contention.
	budget := opts.RetryBudget
	if budget <= 0 {
		budget = 2 * len(cands)
	}
	if len(cands) > budget {
		cands = cands[:budget]
	}
	if len(cands) == 1 {
		res, idx, err := f.connectAnySerial(ctx, req, cands, opts)
		return res, idx, err
	}

	// Reserve the caller's ID for the duration of the race so no concurrent
	// setup can take it before the winning probe is promoted. The channel is
	// a placeholder: no protocol message carries req.ID while probes run.
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, -1, ErrClosed
	}
	if _, ok := f.pending[req.ID]; ok {
		f.mu.Unlock()
		return nil, -1, fmt.Errorf("%w: %q", ErrDuplicate, req.ID)
	}
	if _, ok := f.established[req.ID]; ok {
		f.mu.Unlock()
		return nil, -1, fmt.Errorf("%w: %q", ErrDuplicate, req.ID)
	}
	reserve := make(chan outcome, 1)
	f.pending[req.ID] = reserve
	f.mu.Unlock()
	unreserve := func() {
		f.mu.Lock()
		if ch, ok := f.pending[req.ID]; ok && ch == reserve {
			delete(f.pending, req.ID)
		}
		f.mu.Unlock()
	}

	type attempt struct {
		res *Result
		err error
	}
	results := make([]attempt, len(cands))
	var wg sync.WaitGroup
	for i, cand := range cands {
		wg.Add(1)
		go func(i int, route core.Route) {
			defer wg.Done()
			probe := req
			probe.ID = probeID(req.ID, i)
			probe.Route = route
			res, err := f.Connect(ctx, probe)
			results[i] = attempt{res: res, err: err}
		}(i, cand.route)
	}
	wg.Wait()

	// Select exactly as the serial loop would: scan in candidate order and
	// let the first non-rejection outcome decide.
	winner := -1
	var abortErr, lastReject error
	for i := range results {
		opts.record(cands[i].route, results[i].err)
		if results[i].err == nil {
			if winner < 0 && abortErr == nil {
				winner = i
			} else {
				// Surplus success (or success after a fatal error): release.
				_ = f.Disconnect(context.Background(), probeID(req.ID, i))
			}
			continue
		}
		if crankbackErr(results[i].err) {
			lastReject = results[i].err
		} else if winner < 0 && abortErr == nil {
			abortErr = results[i].err
		}
	}
	if abortErr != nil {
		unreserve()
		return nil, -1, abortErr
	}
	if winner < 0 {
		// Every probe was rejected; rule out probe self-contention with the
		// classic serial crankback before reporting the rejection — unless
		// the retry budget is already spent.
		unreserve()
		remaining := budget - len(cands)
		if remaining <= 0 {
			return nil, -1, lastReject
		}
		if remaining < len(cands) {
			cands = cands[:remaining]
		}
		return f.connectAnySerial(ctx, req, cands, opts)
	}
	res, err := f.promote(probeID(req.ID, winner), req, cands[winner].route, *results[winner].res)
	unreserve()
	if err != nil {
		return nil, -1, err
	}
	return res, cands[winner].idx, nil
}

// crankbackErr reports whether a setup failure permits trying the next
// candidate route: CAC rejections and routes over failed links crank back;
// everything else aborts the setup.
func crankbackErr(err error) bool {
	return errors.Is(err, core.ErrRejected) || errors.Is(err, core.ErrLinkDown)
}

// connectAnySerial is the classic sequential crankback loop over
// breaker-approved, budget-trimmed candidates.
func (f *Fabric) connectAnySerial(ctx context.Context, req core.ConnRequest, cands []candidate, opts SetupOptions) (*Result, int, error) {
	var lastErr error
	for _, cand := range cands {
		attempt := req
		attempt.Route = cand.route
		res, err := f.Connect(ctx, attempt)
		opts.record(cand.route, err)
		if err == nil {
			return res, cand.idx, nil
		}
		if !crankbackErr(err) {
			return nil, -1, err
		}
		lastErr = err
	}
	return nil, -1, lastErr
}

// probeID derives the hidden attempt ID of candidate route i. The NUL byte
// keeps probes out of the caller-visible ID space.
func probeID(id core.ConnID, i int) core.ConnID {
	return core.ConnID(fmt.Sprintf("%s\x00alt%d", id, i))
}

// promote re-labels an established probe setup to the caller's connection
// ID: every switch on the winning route renames its reservations, then the
// fabric bookkeeping moves the establishment. The caller still holds the
// req.ID reservation, so no concurrent setup can collide with the new name.
func (f *Fabric) promote(probe core.ConnID, req core.ConnRequest, route core.Route, res Result) (*Result, error) {
	req.Route = route
	renamed := make(map[string]bool, len(route))
	for _, hop := range route {
		if renamed[hop.Switch] {
			continue
		}
		n, ok := f.Node(hop.Switch)
		if !ok {
			_ = f.Disconnect(context.Background(), probe)
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, hop.Switch)
		}
		if err := n.sw.Rename(probe, req.ID); err != nil {
			// Roll the partial rename back and release the probe.
			for _, h := range route {
				if renamed[h.Switch] {
					if rn, ok := f.Node(h.Switch); ok {
						_ = rn.sw.Rename(req.ID, probe)
					}
				}
			}
			_ = f.Disconnect(context.Background(), probe)
			return nil, fmt.Errorf("signaling: promote crankback winner %q: %w", req.ID, err)
		}
		renamed[hop.Switch] = true
	}
	f.mu.Lock()
	delete(f.established, probe)
	f.established[req.ID] = req
	f.mu.Unlock()
	res.ID = req.ID
	return &res, nil
}

// Disconnect releases an established connection at every hop and blocks
// until the teardown completes.
func (f *Fabric) Disconnect(ctx context.Context, id core.ConnID) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	req, ok := f.established[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownConn, id)
	}
	delete(f.established, id)
	ch := make(chan outcome, 1)
	f.pending[id] = ch
	f.mu.Unlock()

	f.deliver(message{kind: kindTeardown, req: req, hop: 0})
	select {
	case oc := <-ch:
		return oc.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Established returns the IDs of established connections.
func (f *Fabric) Established() []core.ConnID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]core.ConnID, 0, len(f.established))
	for id := range f.established {
		out = append(out, id)
	}
	return out
}

// run is the node's control loop.
func (n *Node) run() {
	defer close(n.done)
	for {
		msg, ok := n.mb.get()
		if !ok {
			return
		}
		switch msg.kind {
		case kindSetup:
			n.handleSetup(msg)
		case kindReject:
			n.handleReject(msg)
		case kindTeardown:
			n.handleTeardown(msg)
		case kindConnected:
			// CONNECTED is resolved at the fabric (the origin end system);
			// nodes never receive it.
		}
	}
}

// handleSetup runs the local CAC check and forwards SETUP or originates
// REJECT.
func (n *Node) handleSetup(msg message) {
	hop := msg.req.Route[msg.hop]
	cdv := msg.req.SourceCDV + n.fabric.policy.Accumulate(msg.guaranteed)
	res, err := n.sw.Admit(core.HopRequest{
		Conn:     msg.req.ID,
		Spec:     msg.req.Spec,
		In:       hop.In,
		Out:      hop.Out,
		Priority: msg.req.Priority,
		CDV:      cdv,
	})
	if err != nil {
		if msg.hop == 0 {
			n.fabric.finish(msg.req.ID, outcome{err: err})
			return
		}
		reject := msg
		reject.kind = kindReject
		reject.hop--
		reject.rejectErr = err
		n.fabric.deliver(reject)
		return
	}
	guaranteed := append(append([]float64(nil), msg.guaranteed...), res.Guaranteed)
	computed := append(append([]float64(nil), msg.computed...), res.Bounds[msg.req.Priority])

	// End-to-end budget check at the last hop (the destination knows the
	// full accumulated guarantee).
	if msg.hop == len(msg.req.Route)-1 {
		e2eGuaranteed := (core.HardCDV{}).Accumulate(guaranteed)
		if msg.req.DelayBound > 0 && e2eGuaranteed > msg.req.DelayBound {
			rejErr := &core.RejectionError{
				Switch:   n.name,
				Priority: msg.req.Priority,
				Bound:    e2eGuaranteed,
				Limit:    msg.req.DelayBound,
				Reason:   "accumulated per-hop guarantees exceed the requested end-to-end bound",
			}
			// Release locally and reject upstream.
			_ = n.sw.Release(msg.req.ID)
			if msg.hop == 0 {
				n.fabric.finish(msg.req.ID, outcome{err: rejErr})
				return
			}
			reject := msg
			reject.kind = kindReject
			reject.hop--
			reject.rejectErr = rejErr
			n.fabric.deliver(reject)
			return
		}
		result := &Result{
			ID:                 msg.req.ID,
			PerHopGuaranteed:   guaranteed,
			PerHopComputed:     computed,
			EndToEndGuaranteed: e2eGuaranteed,
		}
		for _, d := range computed {
			result.EndToEndComputed += d
		}
		n.fabric.finish(msg.req.ID, outcome{result: result})
		return
	}
	fwd := msg
	fwd.hop++
	fwd.guaranteed = guaranteed
	fwd.computed = computed
	n.fabric.deliver(fwd)
}

// handleReject releases the local reservation and propagates upstream.
func (n *Node) handleReject(msg message) {
	// The release cannot fail: this node admitted the connection when the
	// SETUP passed through.
	_ = n.sw.Release(msg.req.ID)
	if msg.hop == 0 {
		n.fabric.finish(msg.req.ID, outcome{err: msg.rejectErr})
		return
	}
	msg.hop--
	n.fabric.deliver(msg)
}

// handleTeardown releases and forwards downstream; the last hop resolves
// the disconnect.
func (n *Node) handleTeardown(msg message) {
	_ = n.sw.Release(msg.req.ID)
	if msg.hop == len(msg.req.Route)-1 {
		n.fabric.finish(msg.req.ID, outcome{})
		return
	}
	msg.hop++
	n.fabric.deliver(msg)
}
