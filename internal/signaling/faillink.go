package signaling

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"atmcac/internal/core"
)

// Link-fault handling at the signaling layer: the fabric mirrors
// core.Network's notion of failed inter-switch links so the distributed
// SETUP path refuses routes over dead links and established connections
// traversing a failing link are torn down through the normal distributed
// teardown, hop by hop.

// routeDownLocked returns the first failed link the route traverses.
// Caller holds f.mu.
func (f *Fabric) routeDownLocked(route core.Route) (core.Link, bool) {
	if len(f.downLinks) == 0 {
		return core.Link{}, false
	}
	for i := 0; i+1 < len(route); i++ {
		l := core.Link{From: route[i].Switch, To: route[i+1].Switch}
		if _, ok := f.downLinks[l]; ok {
			return l, true
		}
	}
	return core.Link{}, false
}

// FailLink marks the directed link from -> to as failed and disconnects
// every established connection whose route traverses it, returning their
// requests in ID order. Setups in flight across the link are torn down when
// they complete (see recordEstablished), so once FailLink returns no
// connection is, or will become, established over the link. Failing an
// already-failed link is a no-op returning no evictions.
func (f *Fabric) FailLink(from, to string) ([]core.ConnRequest, error) {
	if from == "" || to == "" || from == to {
		return nil, fmt.Errorf("%w: invalid link %s->%s", core.ErrBadConfig, from, to)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	for _, name := range []string{from, to} {
		if _, ok := f.nodes[name]; !ok {
			f.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
		}
	}
	l := core.Link{From: from, To: to}
	if _, down := f.downLinks[l]; down {
		f.mu.Unlock()
		return nil, nil
	}
	f.downLinks[l] = struct{}{}
	var evicted []core.ConnRequest
	for _, req := range f.established {
		for i := 0; i+1 < len(req.Route); i++ {
			if req.Route[i].Switch == from && req.Route[i+1].Switch == to {
				evicted = append(evicted, req)
				break
			}
		}
	}
	f.mu.Unlock()
	sort.Slice(evicted, func(i, j int) bool { return evicted[i].ID < evicted[j].ID })
	for _, req := range evicted {
		// A setup completing concurrently may have torn itself down already
		// (recordEstablished); unknown-connection is then the expected
		// outcome, not a failure.
		if err := f.Disconnect(context.Background(), req.ID); err != nil && !errors.Is(err, ErrUnknownConn) {
			return evicted, fmt.Errorf("signaling: evict %q: %w", req.ID, err)
		}
	}
	return evicted, nil
}

// RestoreLink clears the failure mark of the directed link from -> to.
func (f *Fabric) RestoreLink(from, to string) error {
	l := core.Link{From: from, To: to}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if _, down := f.downLinks[l]; !down {
		return fmt.Errorf("%w: link %s is not failed", core.ErrBadConfig, l)
	}
	delete(f.downLinks, l)
	return nil
}

// FailedLinks returns the currently failed links in deterministic order.
func (f *Fabric) FailedLinks() []core.Link {
	f.mu.Lock()
	links := make([]core.Link, 0, len(f.downLinks))
	for l := range f.downLinks {
		links = append(links, l)
	}
	f.mu.Unlock()
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	return links
}

// recordEstablished registers a completed setup — unless a link on its
// route failed while the SETUP was in flight, in which case the hop
// reservations are released through the distributed teardown and an
// ErrLinkDown-wrapping error is returned. Registering before checking
// makes the race with FailLink's eviction scan benign: whichever side sees
// the established entry first tears it down, the other observes
// ErrUnknownConn.
func (f *Fabric) recordEstablished(req core.ConnRequest) error {
	f.mu.Lock()
	l, down := f.routeDownLocked(req.Route)
	f.established[req.ID] = req
	f.mu.Unlock()
	if !down {
		return nil
	}
	if err := f.Disconnect(context.Background(), req.ID); err != nil && !errors.Is(err, ErrUnknownConn) {
		return fmt.Errorf("signaling: release %q after link failure: %w", req.ID, err)
	}
	return fmt.Errorf("%w: %s (failed during setup of %q)", core.ErrLinkDown, l, req.ID)
}
