package signaling

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// faultFabric builds n0 -> n1 -> ... with 32-cell priority-1 queues.
func faultFabric(t *testing.T, nodes int) (*Fabric, func(origin, hops int) core.Route) {
	t.Helper()
	f := NewFabric(nil)
	for i := 0; i < nodes; i++ {
		if _, err := f.AddNode(core.SwitchConfig{
			Name:       fmt.Sprintf("n%d", i),
			QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
	}
	route := func(origin, hops int) core.Route {
		r := make(core.Route, hops)
		for h := 0; h < hops; h++ {
			r[h] = core.Hop{Switch: fmt.Sprintf("n%d", origin+h), In: 1, Out: 0}
		}
		return r
	}
	return f, route
}

func TestFabricFailLinkEvictsTraversing(t *testing.T) {
	f, route := faultFabric(t, 4)
	defer f.Close()
	ctx := context.Background()
	for _, c := range []struct {
		id core.ConnID
		r  core.Route
	}{
		{"crosses", route(0, 3)}, // n0, n1, n2
		{"local", route(2, 2)},   // n2, n3
	} {
		if _, err := f.Connect(ctx, core.ConnRequest{
			ID: c.id, Spec: traffic.CBR(0.01), Priority: 1, Route: c.r,
		}); err != nil {
			t.Fatal(err)
		}
	}
	evicted, err := f.FailLink("n1", "n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].ID != "crosses" {
		t.Fatalf("evicted = %+v, want [crosses]", evicted)
	}
	if ids := f.Established(); len(ids) != 1 || ids[0] != "local" {
		t.Fatalf("established = %v, want [local]", ids)
	}
	for _, name := range []string{"n0", "n1", "n2"} {
		n, _ := f.Node(name)
		if n.Switch().Has("crosses") {
			t.Errorf("node %s still carries the evicted connection", name)
		}
	}
	// Idempotent on an already-failed link.
	if again, err := f.FailLink("n1", "n2"); err != nil || len(again) != 0 {
		t.Fatalf("second FailLink = %v, %v", again, err)
	}
	// A new setup over the failed link is refused before any SETUP leaves.
	if _, err := f.Connect(ctx, core.ConnRequest{
		ID: "late", Spec: traffic.CBR(0.01), Priority: 1, Route: route(0, 3),
	}); !errors.Is(err, core.ErrLinkDown) {
		t.Fatalf("Connect over failed link = %v, want ErrLinkDown", err)
	}
	if err := f.RestoreLink("n1", "n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect(ctx, core.ConnRequest{
		ID: "late", Spec: traffic.CBR(0.01), Priority: 1, Route: route(0, 3),
	}); err != nil {
		t.Fatalf("Connect after restore: %v", err)
	}
}

func TestFabricFailLinkValidation(t *testing.T) {
	f, _ := faultFabric(t, 2)
	defer f.Close()
	if _, err := f.FailLink("n0", "ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown endpoint = %v, want ErrUnknownNode", err)
	}
	if _, err := f.FailLink("n0", "n0"); !errors.Is(err, core.ErrBadConfig) {
		t.Fatalf("self link = %v, want ErrBadConfig", err)
	}
	if err := f.RestoreLink("n0", "n1"); !errors.Is(err, core.ErrBadConfig) {
		t.Fatalf("restore healthy link = %v, want ErrBadConfig", err)
	}
	if _, err := f.FailLink("n0", "n1"); err != nil {
		t.Fatal(err)
	}
	if links := f.FailedLinks(); len(links) != 1 || links[0] != (core.Link{From: "n0", To: "n1"}) {
		t.Fatalf("FailedLinks = %v", links)
	}
}

// TestConnectAnyCranksPastFailedLink: a candidate route over a dead link is
// skipped like a CAC rejection, not treated as a fatal setup error.
func TestConnectAnyCranksPastFailedLink(t *testing.T) {
	f, route := faultFabric(t, 4)
	defer f.Close()
	if _, err := f.FailLink("n0", "n1"); err != nil {
		t.Fatal(err)
	}
	res, idx, err := f.ConnectAny(context.Background(), core.ConnRequest{
		ID: "cb", Spec: traffic.CBR(0.01), Priority: 1,
	}, []core.Route{route(0, 2), route(2, 2)})
	if err != nil {
		t.Fatalf("ConnectAny: %v", err)
	}
	if idx != 1 || res.ID != "cb" {
		t.Fatalf("ConnectAny chose route %d (%+v), want 1", idx, res)
	}
}

// TestFabricFailLinkConnectRace races distributed setups across a link with
// fail/restore cycles and checks that no connection survives established
// over the finally-failed link.
func TestFabricFailLinkConnectRace(t *testing.T) {
	f, route := faultFabric(t, 5)
	defer f.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for g := 0; g < 120; g++ {
			id := core.ConnID(fmt.Sprintf("c%03d", g))
			_, err := f.Connect(ctx, core.ConnRequest{
				ID: id, Spec: traffic.CBR(0.0005), Priority: 1,
				Route: route(g%2, 3),
			})
			if err != nil && !errors.Is(err, core.ErrLinkDown) && !errors.Is(err, core.ErrRejected) {
				t.Errorf("connect %s: %v", id, err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 15; r++ {
			if _, err := f.FailLink("n2", "n3"); err != nil {
				t.Errorf("fail: %v", err)
			}
			if err := f.RestoreLink("n2", "n3"); err != nil {
				t.Errorf("restore: %v", err)
			}
		}
		if _, err := f.FailLink("n2", "n3"); err != nil {
			t.Errorf("final fail: %v", err)
		}
	}()
	wg.Wait()

	f.mu.Lock()
	defer f.mu.Unlock()
	for id, req := range f.established {
		for i := 0; i+1 < len(req.Route); i++ {
			if req.Route[i].Switch == "n2" && req.Route[i+1].Switch == "n3" {
				t.Errorf("connection %s established over failed link n2->n3", id)
			}
		}
	}
}
