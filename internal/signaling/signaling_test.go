package signaling

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/overload"
	"atmcac/internal/traffic"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// lineFabric builds sw0 -> sw1 -> sw2 with 32-cell queues.
func lineFabric(t *testing.T, queues map[core.Priority]float64) (*Fabric, core.Route) {
	t.Helper()
	if queues == nil {
		queues = map[core.Priority]float64{1: 32}
	}
	f := NewFabric(nil)
	t.Cleanup(f.Close)
	route := make(core.Route, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("sw%d", i)
		if _, err := f.AddNode(core.SwitchConfig{Name: name, QueueCells: queues}); err != nil {
			t.Fatal(err)
		}
		route[i] = core.Hop{Switch: name, In: 1, Out: 0}
	}
	return f, route
}

func TestConnectEstablishesEverywhere(t *testing.T) {
	f, route := lineFabric(t, nil)
	res, err := f.Connect(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "c1" {
		t.Errorf("result ID = %q", res.ID)
	}
	if res.EndToEndGuaranteed != 96 {
		t.Errorf("EndToEndGuaranteed = %g, want 96", res.EndToEndGuaranteed)
	}
	if len(res.PerHopComputed) != 3 || len(res.PerHopGuaranteed) != 3 {
		t.Errorf("per-hop slices = %v / %v", res.PerHopComputed, res.PerHopGuaranteed)
	}
	var sum float64
	for _, d := range res.PerHopComputed {
		sum += d
	}
	if math.Abs(sum-res.EndToEndComputed) > 1e-12 {
		t.Errorf("EndToEndComputed = %g, want %g", res.EndToEndComputed, sum)
	}
	for i := 0; i < 3; i++ {
		n, _ := f.Node(fmt.Sprintf("sw%d", i))
		if !n.Switch().Has("c1") {
			t.Errorf("node sw%d does not carry c1", i)
		}
	}
	ids := f.Established()
	if len(ids) != 1 || ids[0] != "c1" {
		t.Errorf("Established = %v", ids)
	}
}

func TestConnectValidation(t *testing.T) {
	f, route := lineFabric(t, nil)
	if _, err := f.Connect(testCtx(t), core.ConnRequest{ID: "x", Spec: traffic.CBR(0.1), Priority: 1}); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("empty route error = %v", err)
	}
	bad := core.Route{{Switch: "nope", In: 1, Out: 0}}
	if _, err := f.Connect(testCtx(t), core.ConnRequest{ID: "x", Spec: traffic.CBR(0.1), Priority: 1, Route: bad}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node error = %v", err)
	}
	if _, err := f.Connect(testCtx(t), core.ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect(testCtx(t), core.ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate error = %v", err)
	}
}

func TestRejectRollsBackUpstream(t *testing.T) {
	f, route := lineFabric(t, nil)
	// Saturate the last node so the third hop rejects.
	last, _ := f.Node("sw2")
	for i := 0; i < 40; i++ {
		_, err := last.Switch().Admit(core.HopRequest{
			Conn: core.ConnID(fmt.Sprintf("bg%d", i)), Spec: traffic.CBR(0.02),
			In: core.PortID(10 + i), Out: 0, Priority: 1,
		})
		if err != nil {
			break
		}
	}
	_, err := f.Connect(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.02), Priority: 1, Route: route,
	})
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("Connect error = %v, want ErrRejected", err)
	}
	var rej *core.RejectionError
	if !errors.As(err, &rej) || rej.Switch != "sw2" {
		t.Errorf("rejection detail = %v, want switch sw2", err)
	}
	for i := 0; i < 3; i++ {
		n, _ := f.Node(fmt.Sprintf("sw%d", i))
		if n.Switch().Has("c1") {
			t.Errorf("node sw%d still carries rejected c1", i)
		}
	}
	if len(f.Established()) != 0 {
		t.Error("rejected connection recorded as established")
	}
}

func TestEndToEndBudgetRejectedAtDestination(t *testing.T) {
	f, route := lineFabric(t, nil)
	// Three 32-cell hops guarantee 96 > requested 50.
	_, err := f.Connect(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route, DelayBound: 50,
	})
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("Connect error = %v, want ErrRejected", err)
	}
	for i := 0; i < 3; i++ {
		n, _ := f.Node(fmt.Sprintf("sw%d", i))
		if n.Switch().Has("c1") {
			t.Errorf("node sw%d still carries budget-rejected c1", i)
		}
	}
	// A request matching the guarantee succeeds.
	if _, err := f.Connect(testCtx(t), core.ConnRequest{
		ID: "c2", Spec: traffic.CBR(0.1), Priority: 1, Route: route, DelayBound: 96,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnect(t *testing.T) {
	f, route := lineFabric(t, nil)
	if _, err := f.Connect(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Disconnect(testCtx(t), "c1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		n, _ := f.Node(fmt.Sprintf("sw%d", i))
		if n.Switch().Has("c1") {
			t.Errorf("node sw%d still carries c1 after disconnect", i)
		}
	}
	if err := f.Disconnect(testCtx(t), "c1"); !errors.Is(err, ErrUnknownConn) {
		t.Errorf("double disconnect error = %v", err)
	}
	// The ID is reusable.
	if _, err := f.Connect(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentConnects races many setups through a shared bottleneck; the
// admitted subset must pass the audit and the rejected ones must leave no
// residue.
func TestConcurrentConnects(t *testing.T) {
	f, route := lineFabric(t, map[core.Priority]float64{1: 8})
	const attempts = 32
	var wg sync.WaitGroup
	results := make([]error, attempts)
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := make(core.Route, len(route))
			copy(r, route)
			for h := range r {
				r[h].In = core.PortID(i + 1)
			}
			_, err := f.Connect(testCtx(t), core.ConnRequest{
				ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.01),
				Priority: 1, Route: r,
			})
			results[i] = err
		}(i)
	}
	wg.Wait()
	admitted, rejected := 0, 0
	for i, err := range results {
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, core.ErrRejected):
			rejected++
		default:
			t.Errorf("connection %d unexpected error: %v", i, err)
		}
	}
	if admitted == 0 || rejected == 0 {
		t.Fatalf("admitted %d rejected %d; scenario does not exercise contention", admitted, rejected)
	}
	// Every node's committed state matches the admitted set and stays
	// within its budget.
	for i := 0; i < 3; i++ {
		n, _ := f.Node(fmt.Sprintf("sw%d", i))
		if got := n.Switch().ConnectionCount(); got != admitted {
			t.Errorf("node sw%d carries %d connections, want %d", i, got, admitted)
		}
		d, err := n.Switch().ComputedBound(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d > 8+1e-9 {
			t.Errorf("node sw%d bound %g exceeds budget", i, d)
		}
	}
	if got := len(f.Established()); got != admitted {
		t.Errorf("Established count = %d, want %d", got, admitted)
	}
}

func TestConnectContextCancelled(t *testing.T) {
	f, route := lineFabric(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.Connect(ctx, core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Connect error = %v, want context.Canceled", err)
	}
	// The protocol still completes in the background; eventually the
	// connection is established and can be disconnected.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(f.Established()) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(f.Established()) != 1 {
		t.Fatal("abandoned setup never completed in the background")
	}
	if err := f.Disconnect(testCtx(t), "c1"); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIsIdempotentAndFailsFast(t *testing.T) {
	f, route := lineFabric(t, nil)
	f.Close()
	f.Close() // second close is a no-op
	if _, err := f.Connect(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: route,
	}); !errors.Is(err, ErrClosed) {
		t.Errorf("Connect after Close error = %v, want ErrClosed", err)
	}
	if err := f.Disconnect(testCtx(t), "c1"); !errors.Is(err, ErrClosed) {
		t.Errorf("Disconnect after Close error = %v, want ErrClosed", err)
	}
	if _, err := f.AddNode(core.SwitchConfig{Name: "x", QueueCells: map[core.Priority]float64{1: 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("AddNode after Close error = %v, want ErrClosed", err)
	}
}

func TestAddNodeValidation(t *testing.T) {
	f := NewFabric(core.SoftCDV{})
	t.Cleanup(f.Close)
	if _, err := f.AddNode(core.SwitchConfig{Name: "a"}); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("invalid config error = %v", err)
	}
	if _, err := f.AddNode(core.SwitchConfig{Name: "a", QueueCells: map[core.Priority]float64{1: 8}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddNode(core.SwitchConfig{Name: "a", QueueCells: map[core.Priority]float64{1: 8}}); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("duplicate node error = %v", err)
	}
	if _, ok := f.Node("a"); !ok {
		t.Error("Node(a) not found")
	}
	if _, ok := f.Node("zz"); ok {
		t.Error("Node(zz) found")
	}
}

// TestSignalingMatchesSequentialSetup: the distributed protocol and the
// core.Network sequential path compute identical admissions for the same
// request.
func TestSignalingMatchesSequentialSetup(t *testing.T) {
	queues := map[core.Priority]float64{1: 64}
	f, route := lineFabric(t, queues)

	n := core.NewNetwork(core.HardCDV{})
	for i := 0; i < 3; i++ {
		if _, err := n.AddSwitch(core.SwitchConfig{Name: fmt.Sprintf("sw%d", i), QueueCells: queues}); err != nil {
			t.Fatal(err)
		}
	}
	// Load both with an identical background connection.
	bg := core.ConnRequest{ID: "bg", Spec: traffic.VBR(0.5, 0.1, 8), Priority: 1,
		Route: func() core.Route {
			r := make(core.Route, len(route))
			copy(r, route)
			for h := range r {
				r[h].In = 7
			}
			return r
		}()}
	if _, err := f.Connect(testCtx(t), bg); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Setup(context.Background(), bg); err != nil {
		t.Fatal(err)
	}
	probe := core.ConnRequest{ID: "probe", Spec: traffic.VBR(0.3, 0.05, 4), Priority: 1, Route: route}
	got, err := f.Connect(testCtx(t), probe)
	if err != nil {
		t.Fatal(err)
	}
	want, err := n.Setup(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.EndToEndComputed-want.EndToEndComputed) > 1e-9 {
		t.Errorf("signaling computed %g, sequential computed %g",
			got.EndToEndComputed, want.EndToEndComputed)
	}
	for h := range want.PerHopComputed {
		if math.Abs(got.PerHopComputed[h]-want.PerHopComputed[h]) > 1e-9 {
			t.Errorf("hop %d: signaling %g vs sequential %g",
				h, got.PerHopComputed[h], want.PerHopComputed[h])
		}
	}
}

// TestConnectAnyCrankback: the primary route is saturated; crankback
// establishes over the alternate and reports its index.
func TestConnectAnyCrankback(t *testing.T) {
	f := NewFabric(nil)
	t.Cleanup(f.Close)
	// Two parallel 2-hop paths: a0->a1 (tight) and b0->b1 (roomy).
	for _, cfg := range []core.SwitchConfig{
		{Name: "a0", QueueCells: map[core.Priority]float64{1: 2}},
		{Name: "a1", QueueCells: map[core.Priority]float64{1: 2}},
		{Name: "b0", QueueCells: map[core.Priority]float64{1: 64}},
		{Name: "b1", QueueCells: map[core.Priority]float64{1: 64}},
	} {
		if _, err := f.AddNode(cfg); err != nil {
			t.Fatal(err)
		}
	}
	primary := core.Route{{Switch: "a0", In: 1, Out: 0}, {Switch: "a1", In: 0, Out: 0}}
	alternate := core.Route{{Switch: "b0", In: 1, Out: 0}, {Switch: "b1", In: 0, Out: 0}}
	// Saturate the primary.
	a0, _ := f.Node("a0")
	for i := 0; i < 8; i++ {
		if _, err := a0.Switch().Admit(core.HopRequest{
			Conn: core.ConnID(fmt.Sprintf("bg%d", i)), Spec: traffic.CBR(0.01),
			In: core.PortID(10 + i), Out: 0, Priority: 1,
		}); err != nil {
			break
		}
	}
	res, idx, err := f.ConnectAny(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.01), Priority: 1,
	}, []core.Route{primary, alternate})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("carried by route %d, want the alternate (1)", idx)
	}
	if res.EndToEndGuaranteed != 128 {
		t.Errorf("guarantee = %g, want 128 (alternate queues)", res.EndToEndGuaranteed)
	}
	// The rejected primary left no residue and carries nothing of c1.
	for _, name := range []string{"a0", "a1"} {
		n, _ := f.Node(name)
		if n.Switch().Has("c1") {
			t.Errorf("crankback left c1 at %s", name)
		}
	}
	b0, _ := f.Node("b0")
	if !b0.Switch().Has("c1") {
		t.Error("alternate does not carry c1")
	}
	// Disconnect works against the route that actually carried it.
	if err := f.Disconnect(testCtx(t), "c1"); err != nil {
		t.Fatal(err)
	}
}

func TestConnectAnyAllRejected(t *testing.T) {
	f := NewFabric(nil)
	t.Cleanup(f.Close)
	if _, err := f.AddNode(core.SwitchConfig{Name: "a", QueueCells: map[core.Priority]float64{1: 1}}); err != nil {
		t.Fatal(err)
	}
	a, _ := f.Node("a")
	for i := 0; i < 8; i++ {
		if _, err := a.Switch().Admit(core.HopRequest{
			Conn: core.ConnID(fmt.Sprintf("bg%d", i)), Spec: traffic.CBR(0.01),
			In: core.PortID(10 + i), Out: 0, Priority: 1,
		}); err != nil {
			break
		}
	}
	routeA := core.Route{{Switch: "a", In: 1, Out: 0}}
	_, idx, err := f.ConnectAny(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.01), Priority: 1,
	}, []core.Route{routeA, routeA})
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("error = %v, want ErrRejected", err)
	}
	if idx != -1 {
		t.Errorf("index = %d, want -1", idx)
	}
}

func TestConnectAnyValidation(t *testing.T) {
	f := NewFabric(nil)
	t.Cleanup(f.Close)
	if _, _, err := f.ConnectAny(testCtx(t), core.ConnRequest{ID: "x"}, nil); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("no-routes error = %v", err)
	}
	// A non-CAC error (unknown node) aborts instead of cranking back.
	if _, err := f.AddNode(core.SwitchConfig{Name: "a", QueueCells: map[core.Priority]float64{1: 8}}); err != nil {
		t.Fatal(err)
	}
	_, _, err := f.ConnectAny(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.01), Priority: 1,
	}, []core.Route{{{Switch: "ghost", In: 1, Out: 0}}, {{Switch: "a", In: 1, Out: 0}}})
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("error = %v, want ErrUnknownNode (no crankback on operational errors)", err)
	}
}

// saturatedNode fills node name until its priority-1 output 0 rejects.
func saturatedNode(t *testing.T, f *Fabric, name string) {
	t.Helper()
	n, ok := f.Node(name)
	if !ok {
		t.Fatalf("no node %q", name)
	}
	for i := 0; i < 64; i++ {
		if _, err := n.Switch().Admit(core.HopRequest{
			Conn: core.ConnID(fmt.Sprintf("bg-%s-%d", name, i)), Spec: traffic.CBR(0.01),
			In: core.PortID(10 + i), Out: 0, Priority: 1,
		}); err != nil {
			return
		}
	}
	t.Fatalf("node %q did not saturate", name)
}

// breakerFabric builds a tight route a (rejects) and a roomy route b.
func breakerFabric(t *testing.T) (*Fabric, core.Route, core.Route) {
	t.Helper()
	f := NewFabric(nil)
	t.Cleanup(f.Close)
	for _, cfg := range []core.SwitchConfig{
		{Name: "a", QueueCells: map[core.Priority]float64{1: 1}},
		{Name: "b", QueueCells: map[core.Priority]float64{1: 64}},
	} {
		if _, err := f.AddNode(cfg); err != nil {
			t.Fatal(err)
		}
	}
	saturatedNode(t, f, "a")
	tight := core.Route{{Switch: "a", In: 1, Out: 0}}
	roomy := core.Route{{Switch: "b", In: 1, Out: 0}}
	return f, tight, roomy
}

// TestConnectAnyBreakerOpensFailingRoute: repeated setups over a
// (rejecting, roomy) candidate pair trip the tight route's breaker at the
// failure threshold, after which it is no longer probed — later setups go
// straight to the roomy route and still succeed.
func TestConnectAnyBreakerOpensFailingRoute(t *testing.T) {
	f, tight, roomy := breakerFabric(t)
	clock := overload.NewManualClock()
	br := overload.NewRouteBreaker(overload.BreakerConfig{
		Threshold: 2, Cooldown: time.Second, Now: clock.Now,
	})
	opts := SetupOptions{Breaker: br}
	for i := 0; i < 3; i++ {
		res, idx, err := f.ConnectAnyOpts(testCtx(t), core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(0.01), Priority: 1,
		}, []core.Route{tight, roomy}, opts)
		if err != nil || idx != 1 || res == nil {
			t.Fatalf("setup %d = (%v, %d, %v), want success over route 1", i, res, idx, err)
		}
	}
	// Two recorded rejections opened the tight route.
	if br.Allow(RouteKey(tight)) {
		t.Error("tight route still allowed after reaching the failure threshold")
	}
	if !br.Allow(RouteKey(roomy)) {
		t.Error("roomy route suppressed despite its successes")
	}
	if got := br.OpenCount(); got != 1 {
		t.Errorf("OpenCount = %d, want 1", got)
	}
	// After the cooldown a probe is allowed again.
	clock.Advance(time.Second)
	if !br.Allow(RouteKey(tight)) {
		t.Error("tight route not probeable after cooldown")
	}
}

// TestConnectAnyAllSuppressed: when every candidate's breaker is open the
// setup fails fast with ErrSuppressed instead of feeding the storm.
func TestConnectAnyAllSuppressed(t *testing.T) {
	f, tight, roomy := breakerFabric(t)
	clock := overload.NewManualClock()
	br := overload.NewRouteBreaker(overload.BreakerConfig{
		Threshold: 1, Cooldown: time.Minute, Now: clock.Now,
	})
	br.RecordFailure(RouteKey(tight))
	br.RecordFailure(RouteKey(roomy))
	_, idx, err := f.ConnectAnyOpts(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.01), Priority: 1,
	}, []core.Route{tight, roomy}, SetupOptions{Breaker: br})
	if !errors.Is(err, ErrSuppressed) {
		t.Fatalf("error = %v, want ErrSuppressed", err)
	}
	if idx != -1 {
		t.Errorf("index = %d, want -1", idx)
	}
	// The connection ID was not burned: once the cooldown passes the same
	// setup succeeds.
	clock.Advance(time.Minute)
	_, idx, err = f.ConnectAnyOpts(testCtx(t), core.ConnRequest{
		ID: "c1", Spec: traffic.CBR(0.01), Priority: 1,
	}, []core.Route{tight, roomy}, SetupOptions{Breaker: br})
	if err != nil || idx != 1 {
		t.Fatalf("setup after cooldown = (%d, %v), want route 1", idx, err)
	}
}

// TestConnectAnyRetryBudget: a budget of one bounds the setup to the
// first candidate — the roomy alternate is never tried, so the rejection
// is final; the classic (zero) budget cranks back to it and succeeds.
func TestConnectAnyRetryBudget(t *testing.T) {
	f, tight, roomy := breakerFabric(t)
	_, idx, err := f.ConnectAnyOpts(testCtx(t), core.ConnRequest{
		ID: "capped", Spec: traffic.CBR(0.01), Priority: 1,
	}, []core.Route{tight, roomy}, SetupOptions{RetryBudget: 1})
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("budget-1 setup = %v, want ErrRejected (no attempts left for the alternate)", err)
	}
	if idx != -1 {
		t.Errorf("index = %d, want -1", idx)
	}
	_, idx, err = f.ConnectAnyOpts(testCtx(t), core.ConnRequest{
		ID: "classic", Spec: traffic.CBR(0.01), Priority: 1,
	}, []core.Route{tight, roomy}, SetupOptions{})
	if err != nil || idx != 1 {
		t.Fatalf("classic setup = (%d, %v), want route 1", idx, err)
	}
}
