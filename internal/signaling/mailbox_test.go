package signaling

import (
	"sync"
	"testing"

	"atmcac/internal/core"
)

func msgWithHop(h int) message {
	return message{kind: kindSetup, hop: h, req: core.ConnRequest{ID: "m"}}
}

func TestMailboxFIFO(t *testing.T) {
	mb := newMailbox()
	for i := 0; i < 5; i++ {
		mb.put(msgWithHop(i))
	}
	for i := 0; i < 5; i++ {
		got, ok := mb.get()
		if !ok {
			t.Fatalf("get %d: closed", i)
		}
		if got.hop != i {
			t.Fatalf("message %d out of order: hop %d", i, got.hop)
		}
	}
}

func TestMailboxBlocksUntilPut(t *testing.T) {
	mb := newMailbox()
	done := make(chan message, 1)
	go func() {
		m, ok := mb.get()
		if !ok {
			t.Error("unexpected close")
		}
		done <- m
	}()
	mb.put(msgWithHop(7))
	if got := <-done; got.hop != 7 {
		t.Fatalf("got hop %d", got.hop)
	}
}

func TestMailboxCloseDrainsThenEnds(t *testing.T) {
	mb := newMailbox()
	mb.put(msgWithHop(1))
	mb.put(msgWithHop(2))
	mb.close()
	// Pending messages are still delivered after close.
	for i := 1; i <= 2; i++ {
		got, ok := mb.get()
		if !ok || got.hop != i {
			t.Fatalf("drain %d: got %v, %v", i, got.hop, ok)
		}
	}
	if _, ok := mb.get(); ok {
		t.Fatal("get succeeded on a drained, closed mailbox")
	}
	// Puts after close are dropped.
	mb.put(msgWithHop(3))
	if _, ok := mb.get(); ok {
		t.Fatal("message accepted after close")
	}
}

func TestMailboxCloseUnblocksReader(t *testing.T) {
	mb := newMailbox()
	done := make(chan bool, 1)
	go func() {
		_, ok := mb.get()
		done <- ok
	}()
	mb.close()
	if ok := <-done; ok {
		t.Fatal("blocked reader received a message from an empty closed mailbox")
	}
}

func TestMailboxConcurrentProducers(t *testing.T) {
	mb := newMailbox()
	const producers, per = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				mb.put(msgWithHop(p*per + i))
			}
		}(p)
	}
	received := make(chan int, 1)
	go func() {
		count := 0
		for count < producers*per {
			if _, ok := mb.get(); !ok {
				break
			}
			count++
		}
		received <- count
	}()
	wg.Wait()
	if got := <-received; got != producers*per {
		t.Fatalf("received %d of %d messages", got, producers*per)
	}
}
