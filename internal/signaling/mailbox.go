package signaling

import "sync"

// mailbox is an unbounded FIFO message queue with close semantics. Nodes
// forward messages to each other while processing their own inboxes; an
// unbounded queue keeps the ring topology deadlock-free without dropping
// protocol messages.
type mailbox struct {
	mu     sync.Mutex
	queue  []message
	notify chan struct{}
	closed bool
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

// put enqueues a message; it is a no-op on a closed mailbox.
func (m *mailbox) put(msg message) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// get blocks until a message is available or the mailbox closes; ok is
// false once the mailbox is closed and drained.
func (m *mailbox) get() (message, bool) {
	for {
		m.mu.Lock()
		if len(m.queue) > 0 {
			msg := m.queue[0]
			m.queue = m.queue[1:]
			m.mu.Unlock()
			return msg, true
		}
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return message{}, false
		}
		<-m.notify
	}
}

// close wakes any blocked reader; pending messages are still delivered.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}
