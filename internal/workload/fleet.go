package workload

import (
	"fmt"
	"math"
	"sort"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// FleetConfig parameterizes a mixed CBR/VBR connection fleet. Rates are
// normalized to the link (1 = link bandwidth), matching traffic.Spec.
type FleetConfig struct {
	// CBRFraction in [0, 1] is the share of CBR connections; the rest are
	// VBR. Default 0.5.
	CBRFraction float64
	// PCRMin and PCRMax bound the peak cell rate, sampled log-uniformly so
	// small and large connections are both represented. Defaults 0.005
	// and 0.08.
	PCRMin, PCRMax float64
	// SCRRatioMin and SCRRatioMax bound SCR/PCR for VBR connections.
	// Defaults 0.1 and 0.5.
	SCRRatioMin, SCRRatioMax float64
	// MBSMin and MBSMax bound the VBR maximum burst size in cells.
	// Defaults 2 and 32.
	MBSMin, MBSMax float64
	// HighPriorityFraction in [0, 1] is the share of priority-1
	// connections; the rest get LowPriority. Default 0.5.
	HighPriorityFraction float64
	// LowPriority is the priority assigned to the non-high share;
	// default 2.
	LowPriority core.Priority
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.CBRFraction == 0 {
		c.CBRFraction = 0.5
	}
	if c.PCRMin == 0 {
		c.PCRMin = 0.005
	}
	if c.PCRMax == 0 {
		c.PCRMax = 0.08
	}
	if c.SCRRatioMin == 0 {
		c.SCRRatioMin = 0.1
	}
	if c.SCRRatioMax == 0 {
		c.SCRRatioMax = 0.5
	}
	if c.MBSMin == 0 {
		c.MBSMin = 2
	}
	if c.MBSMax == 0 {
		c.MBSMax = 32
	}
	if c.HighPriorityFraction == 0 {
		c.HighPriorityFraction = 0.5
	}
	if c.LowPriority == 0 {
		c.LowPriority = 2
	}
	return c
}

func (c FleetConfig) validate() error {
	switch {
	case c.CBRFraction < 0 || c.CBRFraction > 1:
		return fmt.Errorf("%w: CBR fraction %g", ErrConfig, c.CBRFraction)
	case !(c.PCRMin > 0) || c.PCRMax > 1 || c.PCRMin > c.PCRMax:
		return fmt.Errorf("%w: PCR range [%g, %g]", ErrConfig, c.PCRMin, c.PCRMax)
	case !(c.SCRRatioMin > 0) || c.SCRRatioMax > 1 || c.SCRRatioMin > c.SCRRatioMax:
		return fmt.Errorf("%w: SCR ratio range [%g, %g]", ErrConfig, c.SCRRatioMin, c.SCRRatioMax)
	case c.MBSMin < 1 || c.MBSMin > c.MBSMax:
		return fmt.Errorf("%w: MBS range [%g, %g]", ErrConfig, c.MBSMin, c.MBSMax)
	case c.HighPriorityFraction < 0 || c.HighPriorityFraction > 1:
		return fmt.Errorf("%w: high-priority fraction %g", ErrConfig, c.HighPriorityFraction)
	case c.LowPriority < 1:
		return fmt.Errorf("%w: low priority %d", ErrConfig, c.LowPriority)
	}
	return nil
}

// ConnTemplate is one sampled fleet member: a traffic descriptor and the
// priority it requests. Routes and IDs are bound later by the scenario
// that offers the template to a network.
type ConnTemplate struct {
	Spec     traffic.Spec
	Priority core.Priority
}

// SampleFleet draws n connection templates from cfg, deterministically
// from seed.
func SampleFleet(seed uint64, cfg FleetConfig, n int) ([]ConnTemplate, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: fleet size %d", ErrConfig, n)
	}
	rng := NewRNG(seed).Split("fleet")
	out := make([]ConnTemplate, n)
	logMin, logMax := math.Log(cfg.PCRMin), math.Log(cfg.PCRMax)
	for i := range out {
		pcr := math.Exp(logMin + rng.Float64()*(logMax-logMin))
		var spec traffic.Spec
		if rng.Float64() < cfg.CBRFraction {
			spec = traffic.CBR(pcr)
		} else {
			ratio := cfg.SCRRatioMin + rng.Float64()*(cfg.SCRRatioMax-cfg.SCRRatioMin)
			mbs := math.Floor(cfg.MBSMin + rng.Float64()*(cfg.MBSMax-cfg.MBSMin))
			spec = traffic.VBR(pcr, pcr*ratio, mbs)
		}
		prio := cfg.LowPriority
		if rng.Float64() < cfg.HighPriorityFraction {
			prio = 1
		}
		out[i] = ConnTemplate{Spec: spec, Priority: prio}
	}
	return out, nil
}

// EventKind classifies a churn event.
type EventKind int

// Churn event kinds.
const (
	// EvSetup offers connection Index to the network.
	EvSetup EventKind = iota + 1
	// EvTeardown releases connection Index (always after its EvSetup).
	EvTeardown
)

// Event is one step of a churn schedule.
type Event struct {
	// At is the event time in the arrival process's time units.
	At float64
	// Kind is setup or teardown.
	Kind EventKind
	// Index identifies the connection (0..n-1), shared between a setup
	// and its teardown.
	Index int
}

// ChurnConfig parameterizes a churn schedule: connections arrive by an
// arrival process and hold for Gamma-distributed times.
type ChurnConfig struct {
	// MeanHold is the mean holding time in the arrival process's time
	// units; > 0.
	MeanHold float64
	// HoldCV is the holding-time coefficient of variation; default 1
	// (exponential holding).
	HoldCV float64
}

// Churn builds a deterministic setup/teardown schedule: n connection
// arrivals drawn from arrivals, each holding for a Gamma(MeanHold,
// HoldCV) duration. The result is sorted by time; ties keep teardowns
// before the setups of later connections so an ID is never doubly held.
func Churn(seed uint64, arrivals Arrivals, cfg ChurnConfig, n int) ([]Event, error) {
	if !(cfg.MeanHold > 0) {
		return nil, fmt.Errorf("%w: mean hold %g", ErrConfig, cfg.MeanHold)
	}
	if cfg.HoldCV == 0 {
		cfg.HoldCV = 1
	}
	if !(cfg.HoldCV > 0) {
		return nil, fmt.Errorf("%w: hold CV %g", ErrConfig, cfg.HoldCV)
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: churn size %d", ErrConfig, n)
	}
	hold := NewRNG(seed).Split("holding")
	shape := 1 / (cfg.HoldCV * cfg.HoldCV)
	scale := cfg.HoldCV * cfg.HoldCV * cfg.MeanHold
	events := make([]Event, 0, 2*n)
	for i := 0; i < n; i++ {
		at := arrivals.Next()
		events = append(events, Event{At: at, Kind: EvSetup, Index: i})
		events = append(events, Event{At: at + hold.Gamma(shape, scale), Kind: EvTeardown, Index: i})
	}
	// Deterministic total order: by time, teardown before setup on exact
	// ties, then by index — a tie never re-offers an ID before its release.
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind == EvTeardown
		}
		return a.Index < b.Index
	})
	return events, nil
}
