package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"testing"
)

// meanCV computes the empirical mean and coefficient of variation of the
// interarrival gaps of a sequence of absolute arrival times.
func meanCV(times []float64) (mean, cv float64) {
	gaps := make([]float64, 0, len(times))
	prev := 0.0
	for _, t := range times {
		gaps = append(gaps, t-prev)
		prev = t
	}
	sum := 0.0
	for _, g := range gaps {
		sum += g
	}
	mean = sum / float64(len(gaps))
	varSum := 0.0
	for _, g := range gaps {
		d := g - mean
		varSum += d * d
	}
	return mean, math.Sqrt(varSum/float64(len(gaps))) / mean
}

// hashTimes fingerprints an arrival sequence bit-exactly: two runs are
// byte-identical iff every float64 is.
func hashTimes(times []float64) [32]byte {
	buf := make([]byte, 8*len(times))
	for i, t := range times {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(t))
	}
	return sha256.Sum256(buf)
}

func TestGammaMeanAndCVWithinTolerance(t *testing.T) {
	const n = 60000
	for _, tc := range []struct {
		seed uint64
		rate float64
		cv   float64
	}{
		{seed: 42, rate: 2.0, cv: 0.5},
		{seed: 123, rate: 0.5, cv: 1.0},
		{seed: 456, rate: 5.0, cv: 3.5}, // the inference-sim reference storm CV
	} {
		g, err := NewGamma(tc.seed, GammaConfig{Rate: tc.rate, CV: tc.cv})
		if err != nil {
			t.Fatal(err)
		}
		mean, cv := meanCV(Times(g, n))
		if rel := math.Abs(mean-1/tc.rate) / (1 / tc.rate); rel > 0.05 {
			t.Errorf("seed %d: gamma mean %.4g, want %.4g (rel err %.3f)", tc.seed, mean, 1/tc.rate, rel)
		}
		if rel := math.Abs(cv-tc.cv) / tc.cv; rel > 0.08 {
			t.Errorf("seed %d: gamma CV %.4g, want %.4g (rel err %.3f)", tc.seed, cv, tc.cv, rel)
		}
	}
}

func TestGammaRejectsBadConfig(t *testing.T) {
	for _, cfg := range []GammaConfig{
		{Rate: 0, CV: 1}, {Rate: -1, CV: 1}, {Rate: 1, CV: 0}, {Rate: 1, CV: -2},
		{Rate: math.Inf(1), CV: 1}, {Rate: math.NaN(), CV: 1},
	} {
		if _, err := NewGamma(1, cfg); err == nil {
			t.Errorf("NewGamma(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestMMPPMeanRateMatchesStationary(t *testing.T) {
	const n = 80000
	for _, seed := range []uint64{42, 123, 456} {
		cfg := MMPPConfig{QuietRate: 0.5, BurstRate: 20, MeanQuiet: 40, MeanBurst: 5}
		m, err := NewMMPP(seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		times := Times(m, n)
		horizon := times[len(times)-1]
		empirical := float64(n) / horizon
		want := cfg.MeanRate()
		if rel := math.Abs(empirical-want) / want; rel > 0.10 {
			t.Errorf("seed %d: MMPP empirical rate %.4g, stationary %.4g (rel err %.3f)",
				seed, empirical, want, rel)
		}
		// Burstiness sanity: an MMPP with a 40x rate contrast must be
		// visibly burstier than Poisson.
		if _, cv := meanCV(times); cv < 1.2 {
			t.Errorf("seed %d: MMPP interarrival CV %.3f, expected > 1.2 (burstier than Poisson)", seed, cv)
		}
	}
}

func TestMMPPRejectsBadConfig(t *testing.T) {
	for _, cfg := range []MMPPConfig{
		{QuietRate: -1, BurstRate: 1, MeanQuiet: 1, MeanBurst: 1},
		{QuietRate: 0, BurstRate: 0, MeanQuiet: 1, MeanBurst: 1},
		{QuietRate: 0, BurstRate: 1, MeanQuiet: 0, MeanBurst: 1},
		{QuietRate: 0, BurstRate: 1, MeanQuiet: 1, MeanBurst: 0},
	} {
		if _, err := NewMMPP(1, cfg); err == nil {
			t.Errorf("NewMMPP(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestDiurnalEnvelopeIntegratesToTargetLoad(t *testing.T) {
	env := Envelope{Base: 3, Amplitude: 0.8, Period: 100}
	// Analytic check: over whole periods the sine cancels exactly.
	for _, periods := range []float64{1, 3, 10} {
		horizon := periods * env.Period
		got := env.Integrate(horizon, 20000)
		want := env.Base * horizon
		if rel := math.Abs(got-want) / want; rel > 1e-3 {
			t.Errorf("envelope integral over %g periods: %.6g, want %.6g", periods, got, want)
		}
	}
	// Empirical check: the thinned process realizes the mean rate.
	const n = 60000
	for _, seed := range []uint64{42, 123, 456} {
		d, err := NewDiurnal(seed, env)
		if err != nil {
			t.Fatal(err)
		}
		times := Times(d, n)
		empirical := float64(n) / times[len(times)-1]
		if rel := math.Abs(empirical-env.Base) / env.Base; rel > 0.05 {
			t.Errorf("seed %d: diurnal empirical rate %.4g, want %.4g (rel err %.3f)",
				seed, empirical, env.Base, rel)
		}
	}
}

func TestDiurnalRateFollowsEnvelopePhase(t *testing.T) {
	env := Envelope{Base: 2, Amplitude: 0.9, Period: 1000}
	d, err := NewDiurnal(7, env)
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals in the peak half-cycle [0, P/2) vs the trough
	// half-cycle [P/2, P) over many periods: the peak half must carry
	// visibly more of the load.
	var peak, trough int
	for i := 0; i < 40000; i++ {
		t := d.Next()
		phase := math.Mod(t, env.Period)
		if phase < env.Period/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Fatalf("diurnal phase inverted: %d arrivals in peak half, %d in trough half", peak, trough)
	}
	if ratio := float64(peak) / float64(trough); ratio < 2 {
		t.Errorf("diurnal modulation too weak: peak/trough ratio %.2f, want >= 2 at amplitude 0.9", ratio)
	}
}

// TestDeterminismByteIdentical pins the core reproducibility contract:
// the same seed yields the byte-identical sequence, a different seed a
// different one. CI runs this under -race -count=3, so any hidden shared
// state across constructions would also surface.
func TestDeterminismByteIdentical(t *testing.T) {
	const n = 20000
	gen := func(seed uint64) map[string][32]byte {
		out := make(map[string][32]byte)
		g, err := NewGamma(seed, GammaConfig{Rate: 2, CV: 3.5})
		if err != nil {
			t.Fatal(err)
		}
		out["gamma"] = hashTimes(Times(g, n))
		m, err := NewMMPP(seed, MMPPConfig{QuietRate: 0.5, BurstRate: 20, MeanQuiet: 40, MeanBurst: 5})
		if err != nil {
			t.Fatal(err)
		}
		out["mmpp"] = hashTimes(Times(m, n))
		d, err := NewDiurnal(seed, Envelope{Base: 3, Amplitude: 0.8, Period: 100})
		if err != nil {
			t.Fatal(err)
		}
		out["diurnal"] = hashTimes(Times(d, n))
		return out
	}
	a, b, other := gen(42), gen(42), gen(43)
	for name, ha := range a {
		if hb := b[name]; ha != hb {
			t.Errorf("%s: same seed produced different sequences", name)
		}
		if ho := other[name]; ha == ho {
			t.Errorf("%s: different seeds produced identical sequences", name)
		}
	}
}

func TestSampleFleetDeterministicAndValid(t *testing.T) {
	cfg := FleetConfig{}
	a, err := SampleFleet(42, cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleFleet(42, cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	var cbr, high int
	for i, tmpl := range a {
		if tmpl != b[i] {
			t.Fatalf("fleet sample %d differs across identical seeds: %+v vs %+v", i, tmpl, b[i])
		}
		if err := tmpl.Spec.Validate(); err != nil {
			t.Fatalf("fleet sample %d invalid: %v", i, err)
		}
		if tmpl.Spec.IsCBR() {
			cbr++
		}
		if tmpl.Priority == 1 {
			high++
		}
	}
	// Default fractions are 0.5; at n=500 the shares must land near them.
	if cbr < 180 || cbr > 320 {
		t.Errorf("CBR share %d/500 outside [180, 320] at configured fraction 0.5", cbr)
	}
	if high < 180 || high > 320 {
		t.Errorf("high-priority share %d/500 outside [180, 320] at configured fraction 0.5", high)
	}
}

func TestChurnScheduleInvariants(t *testing.T) {
	g, err := NewGamma(42, GammaConfig{Rate: 1, CV: 2})
	if err != nil {
		t.Fatal(err)
	}
	events, err := Churn(42, g, ChurnConfig{MeanHold: 10, HoldCV: 1.5}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 800 {
		t.Fatalf("churn produced %d events, want 800", len(events))
	}
	up := make(map[int]bool)
	prev := math.Inf(-1)
	for i, ev := range events {
		if ev.At < prev {
			t.Fatalf("event %d out of order: t=%g after t=%g", i, ev.At, prev)
		}
		prev = ev.At
		switch ev.Kind {
		case EvSetup:
			if up[ev.Index] {
				t.Fatalf("event %d: connection %d set up twice", i, ev.Index)
			}
			up[ev.Index] = true
		case EvTeardown:
			if !up[ev.Index] {
				t.Fatalf("event %d: teardown of %d before its setup", i, ev.Index)
			}
			delete(up, ev.Index)
		default:
			t.Fatalf("event %d: unknown kind %d", i, ev.Kind)
		}
	}
	if len(up) != 0 {
		t.Fatalf("%d connections never torn down", len(up))
	}
}

func TestSplitStreamsAreIndependent(t *testing.T) {
	r := NewRNG(99)
	a := r.Split("alpha")
	b := r.Split("beta")
	a2 := NewRNG(99).Split("alpha")
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		av, bv, a2v := a.Uint64(), b.Uint64(), a2.Uint64()
		if av == a2v {
			same++
		}
		if av == bv {
			diff++
		}
	}
	if same != 100 {
		t.Errorf("Split(label) not reproducible: only %d/100 draws matched", same)
	}
	if diff != 0 {
		t.Errorf("Split with different labels collided on %d/100 draws", diff)
	}
}
